#!/bin/sh
# check.sh — the repo's full verification gate, run by CI and before
# every commit: formatting, vet, build, and the test suite under the
# race detector (the concurrent pool runtime requires -race to count).
set -eu
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
echo "check.sh: all green"
