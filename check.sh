#!/bin/sh
# check.sh — the repo's full verification gate, run by CI and before
# every commit: formatting, vet, build, and the test suite under the
# race detector (the concurrent pool runtime requires -race to count).
set -eu
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# Poison leg: the membufpoison tag overwrites released arenas with a
# sentinel byte, so an eviction path that diffs or decodes against
# released template bytes corrupts its output visibly in the budget
# tests instead of passing on a lucky stale read.
go test -tags membufpoison ./internal/membuf ./internal/replica \
    ./internal/pool ./internal/serverpool .

# One-LRU guard: the unified replica registry owns the repo's only
# recency list. Nothing outside internal/replica may import
# container/list or define an LRU type — a second bespoke copy creeping
# back in is exactly the drift the unified runtime removed.
lru_guard() {
    offenders=$(grep -rl '"container/list"' --include='*.go' . \
        | grep -v '^\./internal/replica/' || true)
    if [ -n "$offenders" ]; then
        echo "one-LRU guard: container/list imported outside internal/replica:" >&2
        echo "$offenders" >&2
        exit 1
    fi
    offenders=$(grep -rliE 'type +[a-z0-9_]*lru[a-z0-9_]* +(struct|interface)' --include='*.go' . \
        | grep -v '^\./internal/replica/' || true)
    if [ -n "$offenders" ]; then
        echo "one-LRU guard: LRU type defined outside internal/replica:" >&2
        echo "$offenders" >&2
        exit 1
    fi
    echo "check.sh: one-LRU guard ok"
}
lru_guard

# Allocation gates: AllocsPerRun is unreliable under the race detector
# (instrumentation allocates), so the steady-state zero-alloc contract
# gets its own plain run — twice: once with the flight recorder off and
# once recording every call (BSOAP_TRACE=1), since "recording never
# allocates" is the tracer's core claim. The bench smoke
# (-benchtime=100x) confirms the figure benchmarks still execute and
# report allocs without paying for a full sweep.
go test -run 'TestSteadyState' .
BSOAP_TRACE=1 go test -count=1 -run 'TestSteadyState' .
# Propagation cost: the span header write and the slow-ring observe
# must be allocation-free too (their AllocsPerRun tests skip under
# -race, so they need this plain leg).
go test -run 'AllocFree|IsFree' ./internal/transport ./internal/trace
go test -run '^$' -bench 'Fig0[12]' -benchtime=100x -benchmem .

# Observability smoke: a real loadgen run against a discard server with
# the flight recorder on, then scrape both debug ports — /metrics must
# parse as valid Prometheus exposition (bsoap-inspect validates it) and
# /debug/trace must contain at least one complete call span.
obs_smoke() {
    tmp=$(mktemp -d)
    go build -o "$tmp/bsoap-server" ./cmd/bsoap-server
    go build -o "$tmp/bsoap-loadgen" ./cmd/bsoap-loadgen
    go build -o "$tmp/bsoap-inspect" ./cmd/bsoap-inspect
    "$tmp/bsoap-server" -mode discard -addr 127.0.0.1:29999 \
        -metrics 127.0.0.1:28124 -quiet &
    srv=$!
    sleep 0.5
    "$tmp/bsoap-loadgen" -addr 127.0.0.1:29999 -workers 2 -duration 4s \
        -trace -metrics 127.0.0.1:28123 -max-err 0 &
    lg=$!
    sleep 2
    "$tmp/bsoap-inspect" metrics -url http://127.0.0.1:28123/metrics
    "$tmp/bsoap-inspect" metrics -url http://127.0.0.1:28124/metrics
    timeline=$("$tmp/bsoap-inspect" trace -url http://127.0.0.1:28123/debug/trace -spans 5)
    echo "$timeline" | grep -q 'start sendDoubles' || {
        echo "obs smoke: no call-start event in the trace" >&2; exit 1; }
    echo "$timeline" | grep -q 'done: ' || {
        echo "obs smoke: no completed call span in the trace" >&2; exit 1; }
    wait "$lg"
    kill "$srv" 2>/dev/null || true
    wait "$srv" 2>/dev/null || true
    rm -rf "$tmp"
    echo "check.sh: observability smoke ok"
}
obs_smoke

# Server-scaling smoke: the serverpool runtime under 8 concurrent RPC
# clients must serve with zero failed calls and keep the server-side
# differential fast path at ≥90% — loadgen scrapes the server's own
# /metrics page and enforces both.
scaling_smoke() {
    tmp=$(mktemp -d)
    go build -o "$tmp/bsoap-server" ./cmd/bsoap-server
    go build -o "$tmp/bsoap-loadgen" ./cmd/bsoap-loadgen
    "$tmp/bsoap-server" -mode bench -addr 127.0.0.1:29998 \
        -metrics 127.0.0.1:28125 -quiet > "$tmp/srv.log" 2>&1 &
    srv=$!
    sleep 0.5
    "$tmp/bsoap-loadgen" -addr 127.0.0.1:29998 -workers 8 -duration 4s -rpc \
        -max-err 0 -server-metrics http://127.0.0.1:28125/metrics \
        -min-server-fast 90
    kill -TERM "$srv"
    wait "$srv" || { echo "scaling smoke: server exited nonzero" >&2; exit 1; }
    rm -rf "$tmp"
    echo "check.sh: server-scaling smoke ok"
}
scaling_smoke

# Drain smoke: SIGTERM mid-load must drain gracefully — the server
# exits 0 having aborted zero in-flight requests (clients racing the
# closed listener see errors; server-side cleanliness is the contract).
drain_smoke() {
    tmp=$(mktemp -d)
    go build -o "$tmp/bsoap-server" ./cmd/bsoap-server
    go build -o "$tmp/bsoap-loadgen" ./cmd/bsoap-loadgen
    "$tmp/bsoap-server" -mode bench -addr 127.0.0.1:29997 -quiet \
        > "$tmp/srv.log" 2>&1 &
    srv=$!
    sleep 0.5
    "$tmp/bsoap-loadgen" -addr 127.0.0.1:29997 -workers 4 -duration 6s -rpc \
        > "$tmp/lg.log" 2>&1 &
    lg=$!
    sleep 1.5
    kill -TERM "$srv"
    wait "$srv" || { echo "drain smoke: server exited nonzero" >&2; exit 1; }
    wait "$lg" || true
    grep -q 'drain complete (0 in-flight requests aborted)' "$tmp/srv.log" || {
        echo "drain smoke: no clean-drain line in server output:" >&2
        cat "$tmp/srv.log" >&2
        exit 1
    }
    rm -rf "$tmp"
    echo "check.sh: drain smoke ok"
}
drain_smoke

# Pipeline smoke: the async call path must actually pay. One worker,
# small messages (round-trip-bound, where pipelining is the paper's
# win), depth 8 against a read-ahead server: ≥4/3 the serial calls/s,
# zero failed calls, ≥90% server fast path. (The floor was 1.5× when
# the serial sender allocated per call; the allocation-free request
# head sped the serial baseline up enough that the localhost ratio now
# lands 1.4–1.9×.) A second run repeats the
# load through a 5% fault injector with the server draining mid-run:
# errors are fine, lost futures are not (loadgen exits nonzero if any
# future neither resolves nor errors).
pipeline_smoke() {
    tmp=$(mktemp -d)
    go build -o "$tmp/bsoap-server" ./cmd/bsoap-server
    go build -o "$tmp/bsoap-loadgen" ./cmd/bsoap-loadgen
    "$tmp/bsoap-server" -mode bench -addr 127.0.0.1:29996 -read-ahead 8 \
        -metrics 127.0.0.1:28126 -quiet > "$tmp/srv.log" 2>&1 &
    srv=$!
    sleep 0.5
    "$tmp/bsoap-loadgen" -addr 127.0.0.1:29996 -workers 1 -ops 8 -n 100 \
        -mix 100/0/0 -duration 3s -rpc -max-err 0 > "$tmp/serial.log"
    "$tmp/bsoap-loadgen" -addr 127.0.0.1:29996 -workers 1 -ops 8 -n 100 \
        -mix 100/0/0 -duration 3s -rpc -pipeline 8 -max-err 0 \
        -server-metrics http://127.0.0.1:28126/metrics -min-server-fast 90 \
        > "$tmp/piped.log"
    serial_rate=$(awk '/calls\/s/ {gsub("\\(",""); print int($3)}' "$tmp/serial.log")
    piped_rate=$(awk '/calls\/s/ {gsub("\\(",""); print int($3)}' "$tmp/piped.log")
    echo "check.sh: pipeline smoke: serial $serial_rate calls/s, depth-8 $piped_rate calls/s"
    [ "$piped_rate" -ge $((serial_rate * 4 / 3)) ] || {
        echo "pipeline smoke: depth-8 rate $piped_rate < 4/3x serial $serial_rate" >&2
        cat "$tmp/serial.log" "$tmp/piped.log" >&2
        exit 1
    }
    kill -TERM "$srv"
    wait "$srv" || { echo "pipeline smoke: server exited nonzero" >&2; exit 1; }

    "$tmp/bsoap-server" -mode bench -addr 127.0.0.1:29996 -read-ahead 8 -quiet \
        > "$tmp/srv2.log" 2>&1 &
    srv=$!
    sleep 0.5
    "$tmp/bsoap-loadgen" -addr 127.0.0.1:29996 -workers 2 -ops 8 -n 100 \
        -duration 4s -rpc -pipeline 8 -chaos 0.05 -max-err 100 \
        > "$tmp/chaos.log" 2>&1 &
    lg=$!
    sleep 1.5
    kill -TERM "$srv"
    wait "$srv" || true # drain under chaos: client conns may abort mid-request
    wait "$lg" || {
        echo "pipeline chaos smoke: loadgen failed (lost futures?):" >&2
        cat "$tmp/chaos.log" >&2
        exit 1
    }
    rm -rf "$tmp"
    echo "check.sh: pipeline smoke ok"
}
pipeline_smoke

# Memory-budget smoke: both sides run under a deliberately tiny
# template budget (64 KB — a couple of entries, far under the working
# set), so budget eviction churns continuously. The contract: zero
# failed calls (-max-err 0; eviction degrades calls to first-time
# sends / full parses, never errors) and budget evictions visible on
# both /metrics pages, read back through promtext.ReadValues
# (bsoap-inspect metrics -get).
budget_smoke() {
    tmp=$(mktemp -d)
    go build -o "$tmp/bsoap-server" ./cmd/bsoap-server
    go build -o "$tmp/bsoap-loadgen" ./cmd/bsoap-loadgen
    go build -o "$tmp/bsoap-inspect" ./cmd/bsoap-inspect
    "$tmp/bsoap-server" -mode bench -addr 127.0.0.1:29995 \
        -metrics 127.0.0.1:28127 -max-template-bytes 65536 -quiet \
        > "$tmp/srv.log" 2>&1 &
    srv=$!
    sleep 0.5
    "$tmp/bsoap-loadgen" -addr 127.0.0.1:29995 -workers 4 -ops 8 -n 100 \
        -duration 4s -rpc -metrics 127.0.0.1:28128 \
        -max-template-bytes 65536 -max-err 0 > "$tmp/lg.log" 2>&1 &
    lg=$!
    sleep 2.5
    cev=$("$tmp/bsoap-inspect" metrics -url http://127.0.0.1:28128/metrics \
        -get 'bsoap_client_template_evictions_total{reason="budget"}')
    sev=$("$tmp/bsoap-inspect" metrics -url http://127.0.0.1:28127/metrics \
        -get 'bsoap_server_template_evictions_total{reason="budget"}')
    wait "$lg" || {
        echo "budget smoke: loadgen failed under the budget:" >&2
        cat "$tmp/lg.log" >&2
        exit 1
    }
    kill -TERM "$srv"
    wait "$srv" || { echo "budget smoke: server exited nonzero" >&2; exit 1; }
    echo "check.sh: budget smoke: $cev client / $sev server budget evictions"
    awk -v c="$cev" -v s="$sev" 'BEGIN { exit (c+0 > 0 && s+0 > 0) ? 0 : 1 }' || {
        echo "budget smoke: expected nonzero budget evictions on both sides" >&2
        exit 1
    }
    rm -rf "$tmp"
    echo "check.sh: budget smoke ok"
}
budget_smoke

# Delta smoke: differential transmission under concurrency. 8 RPC
# workers on a content-match mix with negotiation on must save ≥50% of
# wire bytes vs what the calls represent (the config measures 61-63%;
# the floor leaves headroom for scheduler noise in replica binding),
# with zero failed calls, zero resyncs surfacing as errors, and the
# server-side differential fast path still ≥90% on the reconstructed
# bodies. The loadgen enforces all three and exits nonzero itself.
delta_smoke() {
    tmp=$(mktemp -d)
    go build -o "$tmp/bsoap-server" ./cmd/bsoap-server
    go build -o "$tmp/bsoap-loadgen" ./cmd/bsoap-loadgen
    "$tmp/bsoap-server" -mode bench -addr 127.0.0.1:29993 \
        -metrics 127.0.0.1:28131 -quiet > "$tmp/srv.log" 2>&1 &
    srv=$!
    sleep 0.5
    "$tmp/bsoap-loadgen" -addr 127.0.0.1:29993 -workers 8 -replicas 16 \
        -n 400 -mix 100/0/0 -duration 4s -rpc -delta -max-err 0 \
        -min-delta-saved 50 \
        -server-metrics http://127.0.0.1:28131/metrics -min-server-fast 90 \
        > "$tmp/lg.log" || {
        echo "delta smoke: loadgen failed:" >&2
        cat "$tmp/lg.log" >&2
        exit 1
    }
    grep 'delta:' "$tmp/lg.log"
    kill -TERM "$srv"
    wait "$srv" || { echo "delta smoke: server exited nonzero" >&2; exit 1; }
    rm -rf "$tmp"
    echo "check.sh: delta smoke ok"
}
delta_smoke

# Correlated-trace smoke: tracing on both processes, spans propagated
# over the wire, slow capture armed on both sides. The correlator must
# merge the two rings into cross-process timelines — its exit code
# asserts ≥1 merged call, zero orphaned server spans and zero bracket
# violations — and /debug/health must show nonzero slow captures on
# both sides.
correlate_smoke() {
    tmp=$(mktemp -d)
    go build -o "$tmp/bsoap-server" ./cmd/bsoap-server
    go build -o "$tmp/bsoap-loadgen" ./cmd/bsoap-loadgen
    go build -o "$tmp/bsoap-inspect" ./cmd/bsoap-inspect
    "$tmp/bsoap-server" -mode bench -addr 127.0.0.1:29994 \
        -metrics 127.0.0.1:28129 -trace -slow-threshold 1us -quiet \
        > "$tmp/srv.log" 2>&1 &
    srv=$!
    sleep 0.5
    # Bounded call count, untouched mix and per-leaf sampling keep both
    # rings far under one wrap — a lapped client ring sheds old spans
    # and the orphan gate below would trip on them. -hold keeps the
    # loadgen's debug endpoints alive after the run so both rings can
    # be scraped at rest.
    "$tmp/bsoap-loadgen" -addr 127.0.0.1:29994 -workers 8 -rpc -calls 200 \
        -mix 100/0/0 -trace -trace-sample 1000 -slow-threshold 1us \
        -metrics 127.0.0.1:28130 -max-err 0 -hold 30s > "$tmp/lg.log" 2>&1 &
    lg=$!
    held=0
    for _ in $(seq 1 100); do
        if grep -q 'holding debug endpoints' "$tmp/lg.log"; then held=1; break; fi
        kill -0 "$lg" 2>/dev/null || break
        sleep 0.2
    done
    [ "$held" = 1 ] || {
        echo "correlate smoke: loadgen never reached the hold window:" >&2
        cat "$tmp/lg.log" >&2
        exit 1
    }
    "$tmp/bsoap-inspect" health http://127.0.0.1:28130/debug/health \
        http://127.0.0.1:28129/debug/health > "$tmp/health.log"
    cat "$tmp/health.log"
    [ "$(grep -c 'slow capture' "$tmp/health.log")" = 2 ] || {
        echo "correlate smoke: expected slow-capture status from both processes" >&2
        exit 1
    }
    if grep -q ' 0 captured' "$tmp/health.log"; then
        echo "correlate smoke: a slow ring captured nothing" >&2
        exit 1
    fi
    "$tmp/bsoap-inspect" trace -correlate \
        http://127.0.0.1:28130/debug/trace http://127.0.0.1:28129/debug/trace \
        > "$tmp/corr.log" || {
        echo "correlate smoke: correlator failed:" >&2
        tail -40 "$tmp/corr.log" >&2
        exit 1
    }
    tail -1 "$tmp/corr.log"
    kill "$lg" 2>/dev/null || true
    wait "$lg" 2>/dev/null || true
    kill -TERM "$srv"
    wait "$srv" || { echo "correlate smoke: server exited nonzero" >&2; exit 1; }
    rm -rf "$tmp"
    echo "check.sh: correlate smoke ok"
}
correlate_smoke

# Coverage floors on the runtime packages the call path spans. These
# are ratchets, not targets: set just under the measured rate so a
# change that quietly sheds tests fails here, while timing-dependent
# paths (retry, redial) keep a couple points of slack. Raise them when
# coverage rises.
coverage_gate() {
    go test -cover ./internal/pool ./internal/transport ./internal/serverpool \
        ./internal/replica \
        > /tmp/cover.$$ || { cat /tmp/cover.$$; rm -f /tmp/cover.$$; exit 1; }
    awk '
        /internal\/pool/       { floor = 74 }
        /internal\/transport/  { floor = 84 }
        /internal\/serverpool/ { floor = 83 }
        /internal\/replica/    { floor = 80 }
        /coverage:/ {
            for (i = 1; i <= NF; i++) if ($i == "coverage:") pct = $(i+1) + 0
            printf "check.sh: coverage %s: %.1f%% (floor %d%%)\n", $2, pct, floor
            if (pct < floor) { bad = 1 }
        }
        END { exit bad }
    ' /tmp/cover.$$ || {
        echo "coverage gate: a package fell below its floor" >&2
        rm -f /tmp/cover.$$
        exit 1
    }
    rm -f /tmp/cover.$$
}
coverage_gate

# Fuzz smoke: run every fuzz target briefly so a parser regression that
# only random inputs catch fails the gate, not a user. FUZZTIME=0 skips
# (the corpus-replay runs in `go test` above still cover committed
# crashers); raise it locally for a deeper soak.
FUZZTIME=${FUZZTIME:-10s}
if [ "$FUZZTIME" != "0" ]; then
    go test -run='^$' -fuzz='^FuzzParser$'      -fuzztime="$FUZZTIME" ./internal/xmlparse
    go test -run='^$' -fuzz='^FuzzDecode$'      -fuzztime="$FUZZTIME" ./internal/soapdec
    go test -run='^$' -fuzz='^FuzzInline$'      -fuzztime="$FUZZTIME" ./internal/multiref
    go test -run='^$' -fuzz='^FuzzReadRequest$' -fuzztime="$FUZZTIME" ./internal/transport
    go test -run='^$' -fuzz='^FuzzPipelineResponses$' -fuzztime="$FUZZTIME" ./internal/transport
    go test -run='^$' -fuzz='^FuzzDeltaFrame$'  -fuzztime="$FUZZTIME" ./internal/wire
    go test -run='^$' -fuzz='^FuzzDeltaFrame$'  -fuzztime="$FUZZTIME" ./internal/serverpool
    go test -run='^$' -fuzz='^FuzzUnescape$'    -fuzztime="$FUZZTIME" ./internal/xsdlex
    go test -run='^$' -fuzz='^FuzzParseDouble$' -fuzztime="$FUZZTIME" ./internal/xsdlex
fi
echo "check.sh: all green"
