#!/bin/sh
# check.sh — the repo's full verification gate, run by CI and before
# every commit: formatting, vet, build, and the test suite under the
# race detector (the concurrent pool runtime requires -race to count).
set -eu
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# Allocation gates: AllocsPerRun is unreliable under the race detector
# (instrumentation allocates), so the steady-state zero-alloc contract
# gets its own plain run. The bench smoke (-benchtime=100x) confirms the
# figure benchmarks still execute and report allocs without paying for a
# full sweep.
go test -run 'TestSteadyState' .
go test -run '^$' -bench 'Fig0[12]' -benchtime=100x -benchmem .

# Fuzz smoke: run every fuzz target briefly so a parser regression that
# only random inputs catch fails the gate, not a user. FUZZTIME=0 skips
# (the corpus-replay runs in `go test` above still cover committed
# crashers); raise it locally for a deeper soak.
FUZZTIME=${FUZZTIME:-10s}
if [ "$FUZZTIME" != "0" ]; then
    go test -run='^$' -fuzz='^FuzzParser$'      -fuzztime="$FUZZTIME" ./internal/xmlparse
    go test -run='^$' -fuzz='^FuzzDecode$'      -fuzztime="$FUZZTIME" ./internal/soapdec
    go test -run='^$' -fuzz='^FuzzInline$'      -fuzztime="$FUZZTIME" ./internal/multiref
    go test -run='^$' -fuzz='^FuzzReadRequest$' -fuzztime="$FUZZTIME" ./internal/transport
    go test -run='^$' -fuzz='^FuzzUnescape$'    -fuzztime="$FUZZTIME" ./internal/xsdlex
    go test -run='^$' -fuzz='^FuzzParseDouble$' -fuzztime="$FUZZTIME" ./internal/xsdlex
fi
echo "check.sh: all green"
