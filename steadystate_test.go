// Steady-state allocation gates: the contract the buffer-ownership
// refactor establishes is that a warm send — the paper's measurement
// regime, where templates exist and calls repeat — performs ZERO heap
// allocations end to end. These tests enforce it with
// testing.AllocsPerRun rather than benchmarks, so a regression fails
// `go test ./...` instead of silently inflating allocs/op.
//
// The gates are skipped under the race detector (its instrumentation
// allocates); check.sh runs them explicitly without -race.
package bsoap_test

import (
	"os"
	"testing"

	"bsoap/internal/chunk"
	"bsoap/internal/core"
	"bsoap/internal/harness"
	"bsoap/internal/pool"
	"bsoap/internal/trace"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

// TestMain honours BSOAP_TRACE=1 by enabling the flight recorder for the
// whole test binary. check.sh re-runs the allocation gates this way: the
// zero-alloc contract must hold with tracing recording every call, not
// just with the hooks compiled to their disabled branch.
func TestMain(m *testing.M) {
	if os.Getenv("BSOAP_TRACE") == "1" {
		trace.Enable()
	}
	os.Exit(m.Run())
}

// gateAllocs asserts fn performs at most want allocations per run once
// warm.
func gateAllocs(t *testing.T, want float64, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	if got := testing.AllocsPerRun(100, fn); got > want {
		t.Errorf("steady-state allocs/op = %v, want <= %v", got, want)
	}
}

// TestSteadyStateAllocsMCM gates the cheapest path: a content match
// resends the saved template untouched.
func TestSteadyStateAllocsMCM(t *testing.T) {
	sink := transport.NewDiscardSink()
	stub := core.NewStub(core.Config{Chunk: chunk.Config{ChunkSize: 32 * 1024}}, sink)

	m := wire.NewMessage("urn:bench", "echo")
	arr := m.AddDoubleArray("values", 1000)
	for i := 0; i < 1000; i++ {
		arr.Set(i, float64(i))
	}
	if _, err := stub.Call(m); err != nil { // first-time send builds the template
		t.Fatal(err)
	}

	gateAllocs(t, 0, func() {
		if _, err := stub.Call(m); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSteadyStateAllocsPSM gates the differential path: every value
// dirty each call, rewritten in place under full stuffing (no shifts).
func TestSteadyStateAllocsPSM(t *testing.T) {
	sink := transport.NewDiscardSink()
	stub := core.NewStub(core.Config{
		Chunk: chunk.Config{ChunkSize: 32 * 1024},
		Width: core.WidthPolicy{Double: core.MaxWidth},
	}, sink)

	m := wire.NewMessage("urn:bench", "echo")
	arr := m.AddDoubleArray("values", 1000)
	for i := 0; i < 1000; i++ {
		arr.Set(i, float64(i))
	}
	if _, err := stub.Call(m); err != nil {
		t.Fatal(err)
	}

	v := 1.0
	gateAllocs(t, 0, func() {
		for i := 0; i < 1000; i++ {
			arr.Set(i, v)
		}
		v++
		if _, err := stub.Call(m); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSteadyStateAllocsPaSMSteal gates the partial-match path where a
// growing field is served by stealing a neighbour's padding. Three
// exact-width string leaves rotate which one holds the long value;
// because leaves are rewritten in ascending order, the field that just
// shrank always has donatable padding by the time a later field grows,
// so once the combined widths stabilize every expansion is served by a
// steal — never a shift or a chunk grow — and no call allocates.
func TestSteadyStateAllocsPaSMSteal(t *testing.T) {
	sink := transport.NewDiscardSink()
	stub := core.NewStub(core.Config{
		Chunk:          chunk.Config{ChunkSize: 32 * 1024},
		EnableStealing: true,
	}, sink)

	const long, short = "xxxxxxxxxxxxxxxx", "y"
	m := wire.NewMessage("urn:bench", "echo")
	leaves := []wire.StringRef{
		m.AddString("a", long),
		m.AddString("b", short),
		m.AddString("c", short),
	}

	phase := 0 // index of the leaf holding the long value
	call := func() {
		phase = (phase + 1) % 3
		for i, l := range leaves {
			if i == phase {
				l.Set(long)
			} else {
				l.Set(short)
			}
		}
		if _, err := stub.Call(m); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up past the transient shifts while total field width grows to
	// its fixed point (two leaves' worth of long values).
	if _, err := stub.Call(m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		call()
	}
	before := stub.Stats()
	gateAllocs(t, 0, call)
	after := stub.Stats()
	if after.Steals == before.Steals {
		t.Fatalf("workload did not exercise stealing (steals %d -> %d)", before.Steals, after.Steals)
	}
	if after.Shifts != before.Shifts || after.Grows != before.Grows {
		t.Fatalf("workload shifted/grew instead of stealing (shifts %d->%d grows %d->%d)",
			before.Shifts, after.Shifts, before.Grows, after.Grows)
	}
}

// TestSteadyStateAllocsDeltaMCM gates differential transmission on the
// cheapest path: a content match against a synchronized peer goes out
// as a zero-region patch frame — a 40-byte header proving the body is
// unchanged — and must not allocate.
func TestSteadyStateAllocsDeltaMCM(t *testing.T) {
	sink := transport.NewDeltaDiscardSink()
	stub := core.NewStub(core.Config{Chunk: chunk.Config{ChunkSize: 32 * 1024}}, sink)

	m := wire.NewMessage("urn:bench", "echo")
	arr := m.AddDoubleArray("values", 1000)
	for i := 0; i < 1000; i++ {
		arr.Set(i, float64(i))
	}
	// First call builds and sync-announces the template; the second is
	// the first patch-eligible one and warms the encoder scratch.
	for i := 0; i < 2; i++ {
		if _, err := stub.Call(m); err != nil {
			t.Fatal(err)
		}
	}

	before := sink.DeltaSends()
	gateAllocs(t, 0, func() {
		if _, err := stub.Call(m); err != nil {
			t.Fatal(err)
		}
	})
	if sink.DeltaSends() == before {
		t.Fatal("warm content matches did not go out as patch frames")
	}
}

// TestSteadyStateAllocsDeltaPatch gates the real patch path: scattered
// in-place rewrites each call (stuffed widths, so no shifts) become a
// multi-region frame — region walk, CRC over the whole body, header
// assembly, gather vector — with zero allocations once warm. The
// touches are scattered because region coalescing is adjacency-only;
// this keeps the frame genuinely multi-region rather than one run.
func TestSteadyStateAllocsDeltaPatch(t *testing.T) {
	sink := transport.NewDeltaDiscardSink()
	stub := core.NewStub(core.Config{
		Chunk: chunk.Config{ChunkSize: 32 * 1024},
		Width: core.WidthPolicy{Double: core.MaxWidth},
	}, sink)

	m := wire.NewMessage("urn:bench", "echo")
	arr := m.AddDoubleArray("values", 1000)
	for i := 0; i < 1000; i++ {
		arr.Set(i, float64(i))
	}

	v := 1.0
	call := func() {
		for i := 0; i < 1000; i += 100 {
			arr.Set(i, v)
		}
		v++
		if _, err := stub.Call(m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := stub.Call(m); err != nil {
		t.Fatal(err)
	}
	call() // warm the region and frame scratch

	before := sink.DeltaSends()
	gateAllocs(t, 0, call)
	after := sink.DeltaSends()
	if after == before {
		t.Fatal("warm scattered rewrites did not go out as patch frames")
	}
	if st := stub.Stats(); st.Shifts != 0 || st.Grows != 0 {
		t.Fatalf("workload shifted/grew (shifts %d, grows %d); frames were not pure rewrites", st.Shifts, st.Grows)
	}
}

// TestSteadyStateAllocsPool gates the concurrent runtime's whole warm
// path: checkout, replica acquire, differential send, metrics. The
// engine being allocation-free is not enough if the runtime around it
// churns per call.
func TestSteadyStateAllocsPool(t *testing.T) {
	p, _ := harness.DiscardPool(t, pool.Options{Size: 2})

	m := wire.NewMessage("urn:bench", "echo")
	arr := m.AddDoubleArray("values", 100)
	for i := 0; i < 100; i++ {
		arr.Set(i, float64(i))
	}
	// Warm every replica the store may route this message to.
	for i := 0; i < 20; i++ {
		if _, err := p.Call(m); err != nil {
			t.Fatal(err)
		}
	}

	gateAllocs(t, 0, func() {
		if _, err := p.Call(m); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSteadyStateAllocsOverlay gates the chunk-overlaying path: once the
// resident chunk is laid out, re-serializing an array many times its
// size must not allocate.
func TestSteadyStateAllocsOverlay(t *testing.T) {
	sink := transport.NewDiscardSink()
	stub := core.NewStub(core.Config{
		Chunk: chunk.Config{ChunkSize: 4 * 1024},
		Width: core.WidthPolicy{Double: core.MaxWidth},
	}, sink)

	m := wire.NewMessage("urn:bench", "echo")
	arr := m.AddDoubleArray("values", 2000)
	for i := 0; i < 2000; i++ {
		arr.Set(i, float64(i))
	}
	if _, err := stub.CallOverlay(m, sink); err != nil {
		t.Fatal(err)
	}

	v := 1.0
	gateAllocs(t, 0, func() {
		arr.Set(0, v)
		v++
		if _, err := stub.CallOverlay(m, sink); err != nil {
			t.Fatal(err)
		}
	})
}
