package bsoap_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bsoap"
	"bsoap/internal/baseline"
	"bsoap/internal/chunk"
	"bsoap/internal/faultwire"
	"bsoap/internal/harness"
	"bsoap/internal/workload"
)

// expectSet is the conformance oracle: before every Call, the worker
// adds the canonical from-scratch serialization of the message's
// current values. A Call's values are stable for its whole duration
// (retries included), so every body the server accepts — including
// duplicates delivered by retried sends — must canonicalize to a
// member of this set.
type expectSet struct {
	mu sync.Mutex
	m  map[string]struct{}
}

func newExpectSet() *expectSet { return &expectSet{m: make(map[string]struct{})} }

func (s *expectSet) add(b []byte) {
	s.mu.Lock()
	s.m[string(b)] = struct{}{}
	s.mu.Unlock()
}

func (s *expectSet) has(b []byte) bool {
	s.mu.Lock()
	_, ok := s.m[string(b)]
	s.mu.Unlock()
	return ok
}

// TestConformanceMatchClasses is the deterministic half of the suite:
// one worker, one connection, one template replica, and a scripted
// connection reset on the fifth write. It proves byte conformance
// through all four match classes and through the
// failed-send → suspect-template → degraded-FTS recovery path.
func TestConformanceMatchClasses(t *testing.T) {
	inj := faultwire.NewScripted(faultwire.Options{},
		faultwire.Step{Op: faultwire.OpWrite, Skip: 4, Kind: faultwire.Reset})
	rec, p := harness.Recorder(t, inj, bsoap.PoolOptions{
		Size:             1,
		Replicas:         1,
		MaxRetries:       2,
		RedialBackoff:    time.Millisecond,
		RedialBackoffMax: 10 * time.Millisecond,
	})

	w := workload.NewDoubles(16, workload.FillMin)
	ref := baseline.NewGSOAPLike()
	expected := newExpectSet()
	call := func(step string) bsoap.CallInfo {
		t.Helper()
		expected.add(canon(ref.Serialize(w.Msg)))
		ci, err := p.Call(w.Msg)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		return ci
	}

	if ci := call("first-time"); ci.Match != bsoap.FirstTime {
		t.Fatalf("call 1 match = %v, want first-time", ci.Match)
	}
	if ci := call("content"); ci.Match != bsoap.ContentMatch {
		t.Fatalf("call 2 match = %v, want content match", ci.Match)
	}
	w.Arr.Set(0, workload.MinDouble2) // same width: in-place rewrite
	if ci := call("structural"); ci.Match != bsoap.StructuralMatch {
		t.Fatalf("call 3 match = %v, want structural match", ci.Match)
	}
	w.Arr.Set(1, workload.MaxDouble) // 1 char -> 24 chars: shifts
	if ci := call("partial"); ci.Match != bsoap.PartialMatch {
		t.Fatalf("call 4 match = %v, want partial match", ci.Match)
	}
	// Call 5's write hits the scripted reset: the pool repairs the
	// connection and retries, and because the failed send poisoned the
	// template, the retry is a degraded first-time send.
	w.Arr.Set(2, workload.MinDouble2)
	if ci := call("degraded"); ci.Match != bsoap.FirstTime || !ci.Degraded {
		t.Fatalf("call 5: match=%v degraded=%v, want degraded first-time", ci.Match, ci.Degraded)
	}
	// The rebuilt template serves content matches again.
	if ci := call("recovered"); ci.Match != bsoap.ContentMatch {
		t.Fatalf("call 6 match = %v, want content match", ci.Match)
	}

	// The reset killed write 5 before any bytes left, so the server
	// accepted exactly the six successful sends — each byte-equivalent
	// to a from-scratch serialization of the values at call time.
	bodies := rec.Bodies()
	if len(bodies) != 6 {
		t.Fatalf("server accepted %d bodies, want 6", len(bodies))
	}
	for i, b := range bodies {
		if !expected.has(canon(b)) {
			t.Errorf("accepted body %d diverges from every from-scratch serialization:\n%s", i, b)
		}
	}

	st := p.Stats()
	if st.DegradedFTS != 1 || st.Retries != 1 {
		t.Errorf("degraded_fts=%d retries=%d, want 1/1", st.DegradedFTS, st.Retries)
	}
	if st.FaultsInjected != 1 {
		t.Errorf("faults_injected=%d, want 1", st.FaultsInjected)
	}
}

// TestConformanceUnderChaos is the probabilistic half: concurrent
// workers drive random mutations (touches, growths forcing shifts and
// steals, resizes) through a shared pool while faultwire resets 5% of
// writes and sprinkles partial writes, mid-stream closes, dial failures
// and latency spikes. Calls may fail; what may never happen is the
// server accepting a body that is not byte-equivalent (modulo padding)
// to a from-scratch serialization of some call's values.
func TestConformanceUnderChaos(t *testing.T) {
	inj := faultwire.New(faultwire.Options{
		Seed: 42,
		Probs: faultwire.Probabilities{
			Reset:          0.05,
			PartialWrite:   0.02,
			MidStreamClose: 0.02,
			DialError:      0.02,
			ReadDelay:      0.01,
			WriteDelay:     0.01,
		},
		Delay: 200 * time.Microsecond,
	})
	rec, p := harness.Recorder(t, inj, bsoap.PoolOptions{
		Size:             4,
		MaxRetries:       3,
		DialAttempts:     6,
		RedialBackoff:    time.Millisecond,
		RedialBackoffMax: 10 * time.Millisecond,
		RetryBudget:      30 * time.Second,
		Config: bsoap.Config{
			Width:          bsoap.WidthPolicy{Double: 18, Int: 9},
			EnableStealing: true,
			Chunk:          chunk.Config{ChunkSize: 512},
		},
	})

	const (
		workers        = 4
		callsPerWorker = 80
	)
	expected := newExpectSet()
	var okCalls, failedCalls atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wk) + 1))
			ref := baseline.NewGSOAPLike()
			targets := []*target{
				doublesTarget("doubles", 32),
				intsTarget("ints", 32),
				miosTarget("mios", 8),
			}
			for c := 0; c < callsPerWorker; c++ {
				tg := targets[rng.Intn(len(targets))]
				tg.mutate(rng)
				// The oracle entry must exist before any bytes can reach
				// the wire: even a send that ultimately fails may have
				// delivered a complete request.
				expected.add(canon(ref.Serialize(tg.msg)))
				if _, err := p.Call(tg.msg); err != nil {
					failedCalls.Add(1)
				} else {
					okCalls.Add(1)
				}
			}
		}(wk)
	}
	wg.Wait()

	if okCalls.Load() == 0 {
		t.Fatal("no call survived the chaos; injection rates are too hot to prove anything")
	}
	if inj.Faults() == 0 {
		t.Fatal("no faults injected; the chaos run proved nothing")
	}
	bodies := rec.Bodies()
	if len(bodies) == 0 {
		t.Fatal("server accepted no bodies")
	}
	diverged := 0
	for i, b := range bodies {
		if !expected.has(canon(b)) {
			diverged++
			if diverged <= 3 {
				t.Errorf("accepted body %d diverges from every from-scratch serialization:\n%s", i, b)
			}
		}
	}
	if diverged > 0 {
		t.Fatalf("%d of %d accepted bodies diverged (faults injected: %d %v)",
			diverged, len(bodies), inj.Faults(), inj.FaultsByKind())
	}
	t.Logf("chaos: %d ok, %d failed, %d accepted bodies, %d faults %v, stats: degraded_fts=%d retry_budget_exhausted=%d",
		okCalls.Load(), failedCalls.Load(), len(bodies), inj.Faults(), inj.FaultsByKind(),
		p.Stats().DegradedFTS, p.Stats().RetryBudgetExhausted)
}
