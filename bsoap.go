// Package bsoap is a Go implementation of differential serialization
// for SOAP, reproducing "Differential Serialization for Optimized SOAP
// Performance" (Abu-Ghazaleh, Lewis, Govindaraju — HPDC 2004).
//
// Rather than re-serializing every outgoing SOAP message from scratch,
// a bsoap Stub saves the serialized form of the last message of each
// structure as a template, tracks which in-memory values have changed
// through the message's Set accessors, and on the next call rewrites
// only the changed bytes — or resends the template verbatim when
// nothing changed at all.
//
// # Quick start
//
//	msg := bsoap.NewMessage("urn:demo", "sendVector")
//	vec := msg.AddDoubleArray("values", 1000)
//	// ... vec.Set(i, v) ...
//
//	sender, _ := bsoap.Dial("localhost:8080", bsoap.SenderOptions{})
//	stub := bsoap.NewStub(bsoap.Config{}, sender)
//
//	stub.Call(msg)      // first-time send: full serialization
//	vec.Set(7, 3.25)
//	stub.Call(msg)      // rewrites exactly one value in the template
//	stub.Call(msg)      // message content match: zero serialization
//
// # Stuffing, chunking, stealing, overlaying
//
// Config selects the paper's supporting techniques: WidthPolicy stuffs
// fields with whitespace so growing values never shift
// (bsoap.MaxWidth), chunk.Config bounds the cost of shifts that do
// happen, EnableStealing consumes neighbour padding before shifting,
// and Stub.CallOverlay streams huge arrays through a single resident
// chunk.
//
// # Server side
//
// The server, soapdec and diffdeser internal packages implement the
// receiving end, including the paper's future-work differential
// deserialization; see the examples directory for complete services.
package bsoap

import (
	"bsoap/internal/core"
	"bsoap/internal/pool"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

// Core engine types, re-exported.
type (
	// Config tunes a Stub; see core.Config.
	Config = core.Config
	// WidthPolicy is the stuffing policy (field widths per scalar kind).
	WidthPolicy = core.WidthPolicy
	// Stub is a differential-serialization client endpoint.
	Stub = core.Stub
	// Store is a template store shareable between stubs.
	Store = core.Store
	// CallInfo describes how one call was served.
	CallInfo = core.CallInfo
	// Stats accumulates per-stub counters.
	Stats = core.Stats
	// MatchKind classifies a call (content match, structural match, …).
	MatchKind = core.MatchKind
	// Sink consumes complete serialized messages.
	Sink = core.Sink
	// StreamSink consumes overlay-streamed messages.
	StreamSink = core.StreamSink
)

// Message model types, re-exported.
type (
	// Message is an in-memory RPC message with dirty-tracked values.
	Message = wire.Message
	// Type describes a wire type.
	Type = wire.Type
	// Field is a struct member.
	Field = wire.Field
	// IntRef, DoubleRef, StringRef, BoolRef, StructRef and the array
	// refs are the get/set accessors that keep dirty bits accurate.
	IntRef         = wire.IntRef
	DoubleRef      = wire.DoubleRef
	StringRef      = wire.StringRef
	BoolRef        = wire.BoolRef
	StructRef      = wire.StructRef
	IntArrayRef    = wire.IntArrayRef
	DoubleArrayRef = wire.DoubleArrayRef
	StringArrayRef = wire.StringArrayRef
	StructArrayRef = wire.StructArrayRef
)

// Transport types, re-exported.
type (
	// Sender frames messages as HTTP POSTs over one connection.
	Sender = transport.Sender
	// SenderOptions configure a Sender.
	SenderOptions = transport.SenderOptions
	// DiscardSink consumes messages in-process (benchmarks).
	DiscardSink = transport.DiscardSink
)

// Concurrent client runtime, re-exported.
type (
	// Pool is a concurrent differential-serialization client: many
	// goroutines share pooled connections, a sharded template store
	// (template reuse survives across workers) and a metrics registry.
	Pool = pool.Pool
	// PoolOptions configure a Pool.
	PoolOptions = pool.Options
	// PoolStats is a snapshot of the pool's metrics registry.
	PoolStats = pool.Stats
	// PoolMetrics is the live registry (JSON endpoint, http.Handler).
	PoolMetrics = pool.Metrics
	// Future is the completion handle of a pipelined call (see
	// Pool.CallAsync and PoolOptions.PipelineDepth).
	Future = pool.Future
)

// Match kinds, re-exported.
const (
	FirstTime         = core.FirstTime
	ContentMatch      = core.ContentMatch
	StructuralMatch   = core.StructuralMatch
	PartialMatch      = core.PartialMatch
	FullSerialization = core.FullSerialization
)

// MaxWidth selects a type's maximum lexical width in a WidthPolicy.
const MaxWidth = core.MaxWidth

// Scalar types.
var (
	TInt    = wire.TInt
	TDouble = wire.TDouble
	TString = wire.TString
	TBool   = wire.TBool
)

// NewMessage creates an empty message for the given operation.
func NewMessage(namespace, operation string) *Message {
	return wire.NewMessage(namespace, operation)
}

// StructOf builds a struct type from fields.
func StructOf(name string, fields ...Field) *Type { return wire.StructOf(name, fields...) }

// ArrayOf builds an array type.
func ArrayOf(elem *Type) *Type { return wire.ArrayOf(elem) }

// NewStub creates a differential-serialization stub sending through
// sink.
func NewStub(cfg Config, sink Sink) *Stub { return core.NewStub(cfg, sink) }

// NewStubWithStore creates a stub over a shared template store.
func NewStubWithStore(cfg Config, sink Sink, store *Store) *Stub {
	return core.NewStubWithStore(cfg, sink, store)
}

// NewStore creates a template store retaining perOp templates per
// operation (0 selects the default).
func NewStore(perOp int) *Store { return core.NewStore(perOp) }

// Dial connects to a SOAP endpoint over TCP with the paper's socket
// options and returns a Sender usable as the stub's Sink (and, for
// overlay, StreamSink).
func Dial(addr string, opts SenderOptions) (*Sender, error) { return transport.Dial(addr, opts) }

// NewDiscardSink returns an in-process sink for benchmarking pure
// serialization-side cost.
func NewDiscardSink() *DiscardSink { return transport.NewDiscardSink() }

// NewPool builds a concurrent client runtime: a bounded pool of lazily
// dialed connections (with automatic redial on failure) sharing a
// sharded template store, so calls from any number of goroutines keep
// the differential-serialization benefit of warm templates.
func NewPool(opts PoolOptions) (*Pool, error) { return pool.New(opts) }
