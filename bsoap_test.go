package bsoap_test

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bsoap"
	"bsoap/internal/server"
	"bsoap/internal/soapdec"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

// TestPublicAPIQuickstart exercises the facade exactly as the README
// shows it.
func TestPublicAPIQuickstart(t *testing.T) {
	msg := bsoap.NewMessage("urn:demo", "sendVector")
	vec := msg.AddDoubleArray("values", 100)
	for i := 0; i < vec.Len(); i++ {
		vec.Set(i, float64(i)+0.5)
	}
	sink := bsoap.NewDiscardSink()
	stub := bsoap.NewStub(bsoap.Config{}, sink)

	ci, err := stub.Call(msg)
	if err != nil || ci.Match != bsoap.FirstTime {
		t.Fatalf("first call: %+v, %v", ci, err)
	}
	vec.Set(7, 3.5) // same serialized width: rewritten in place
	ci, err = stub.Call(msg)
	if err != nil || ci.Match != bsoap.StructuralMatch || ci.ValuesRewritten != 1 {
		t.Fatalf("second call: %+v, %v", ci, err)
	}
	ci, err = stub.Call(msg)
	if err != nil || ci.Match != bsoap.ContentMatch {
		t.Fatalf("third call: %+v, %v", ci, err)
	}
	if sink.Sends() != 3 {
		t.Fatalf("sink saw %d sends", sink.Sends())
	}
}

// TestPublicAPITypes covers type construction through the facade.
func TestPublicAPITypes(t *testing.T) {
	mio := bsoap.StructOf("ns1:MIO",
		bsoap.Field{Name: "x", Type: bsoap.TInt},
		bsoap.Field{Name: "y", Type: bsoap.TInt},
		bsoap.Field{Name: "v", Type: bsoap.TDouble},
	)
	arr := bsoap.ArrayOf(mio)
	if arr.Elem != mio || mio.LeavesPerValue() != 3 {
		t.Fatal("type construction broken")
	}

	msg := bsoap.NewMessage("urn:demo", "op")
	ref := msg.AddStructArray("mios", mio, 4)
	ref.SetDouble(2, 2, math.Pi)
	if ref.Double(2, 2) != math.Pi {
		t.Fatal("struct array accessors broken")
	}
}

// TestSharedStoreFacade verifies the future-work template sharing
// through the public constructors.
func TestSharedStoreFacade(t *testing.T) {
	store := bsoap.NewStore(2)
	sinkA, sinkB := bsoap.NewDiscardSink(), bsoap.NewDiscardSink()
	a := bsoap.NewStubWithStore(bsoap.Config{}, sinkA, store)
	b := bsoap.NewStubWithStore(bsoap.Config{}, sinkB, store)

	msg := bsoap.NewMessage("urn:demo", "op")
	arr := msg.AddDoubleArray("v", 10)
	arr.Set(0, 1)
	if _, err := a.Call(msg); err != nil {
		t.Fatal(err)
	}
	ci, err := b.Call(msg)
	if err != nil || ci.Match != bsoap.ContentMatch {
		t.Fatalf("shared template not reused: %+v, %v", ci, err)
	}
}

// TestPoolFacade drives the concurrent runtime through the public API:
// a pool over a loopback server, goroutines sharing templates, and the
// metrics snapshot accounting for every call.
func TestPoolFacade(t *testing.T) {
	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool, err := bsoap.NewPool(bsoap.PoolOptions{Addr: srv.Addr(), Size: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	var wg sync.WaitGroup
	const workers, iters = 4, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			msg := bsoap.NewMessage("urn:demo", "sendVector")
			vec := msg.AddDoubleArray("values", 100)
			for i := 0; i < vec.Len(); i++ {
				vec.Set(i, 0.5)
			}
			for i := 0; i < iters; i++ {
				if _, err := pool.Call(msg); err != nil {
					t.Error(err)
					return
				}
				vec.Set(i%vec.Len(), 1.5)
			}
		}()
	}
	wg.Wait()

	st := pool.Stats()
	if st.Calls != workers*iters || st.Errors != 0 {
		t.Fatalf("calls=%d errors=%d, want %d/0", st.Calls, st.Errors, workers*iters)
	}
	if st.FirstTimeSends > 2 {
		t.Fatalf("first-time sends = %d, want ≤ Replicas (templates shared across goroutines)", st.FirstTimeSends)
	}
	var got bsoap.PoolStats = st // the snapshot type is exported
	if got.WarmCalls() != st.ContentMatches+st.StructuralMatches+st.PartialMatches {
		t.Fatal("WarmCalls accounting broken")
	}
}

// TestEndToEndOverlayStreaming drives the whole stack through the
// chunk-overlay path: overlay engine → HTTP/1.1 chunked transfer →
// transport server → SOAP dispatch → handler, verifying the values that
// arrive.
func TestEndToEndOverlayStreaming(t *testing.T) {
	var lastSum atomic.Value
	endpoint := server.New(server.Options{})
	resp := wire.NewMessage("urn:calc", "sumResponse")
	total := resp.AddDouble("total", 0)
	endpoint.Register(&soapdec.Schema{
		Namespace: "urn:calc",
		Op:        "sum",
		Params:    []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
	}, func(req *wire.Message) (*wire.Message, error) {
		var s float64
		for i := 0; i < req.NumLeaves(); i++ {
			s += req.LeafDouble(i)
		}
		lastSum.Store(s)
		total.Set(s)
		return resp, nil
	})

	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{
		Handler: endpoint.HTTPHandler(),
		Respond: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sender, err := bsoap.Dial(srv.Addr(), bsoap.SenderOptions{
		Version:        transport.HTTP11,
		ExpectResponse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	// 5000 elements at max stuffing span many 32K portions.
	msg := bsoap.NewMessage("urn:calc", "sum")
	vec := msg.AddDoubleArray("values", 5000)
	want := 0.0
	for i := 0; i < vec.Len(); i++ {
		vec.Set(i, float64(i%100))
		want += float64(i % 100)
	}
	stub := bsoap.NewStub(bsoap.Config{
		Width: bsoap.WidthPolicy{Double: bsoap.MaxWidth},
	}, sender)

	for round := 0; round < 3; round++ {
		if _, err := stub.CallOverlay(msg, sender); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got, _ := lastSum.Load().(float64)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("round %d: server summed %g, want %g", round, got, want)
		}
		// Change one value for the next round.
		vec.Set(round, 1000)
		want += 1000 - float64(round%100)
	}
}

// TestConnectionDropMidStream injects a failure: the server goes away
// between sends; the client surfaces an error and the message's dirty
// state survives for a retry against a new connection.
func TestConnectionDropMidStream(t *testing.T) {
	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	sender, err := bsoap.Dial(addr, bsoap.SenderOptions{})
	if err != nil {
		t.Fatal(err)
	}

	msg := bsoap.NewMessage("urn:demo", "op")
	arr := msg.AddDoubleArray("v", 2000)
	stub := bsoap.NewStub(bsoap.Config{}, sender)
	if _, err := stub.Call(msg); err != nil {
		t.Fatal(err)
	}

	// Kill the server and the connection.
	srv.Close()
	sender.Close()

	arr.Set(3, 42)
	var sawErr bool
	// A write into a closed socket may need a couple of sends to
	// surface the error through TCP buffering.
	for i := 0; i < 10 && !sawErr; i++ {
		if _, err := stub.Call(msg); err != nil {
			sawErr = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawErr {
		t.Fatal("no error from sends into a dead connection")
	}
	if !msg.AnyDirty() {
		t.Fatal("dirty state lost on send failure")
	}

	// Recovery: new server, new connection, same stub state via a new
	// stub sharing nothing — message data is intact.
	srv2, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	sender2, err := bsoap.Dial(srv2.Addr(), bsoap.SenderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sender2.Close()
	stub2 := bsoap.NewStub(bsoap.Config{}, sender2)
	if _, err := stub2.Call(msg); err != nil {
		t.Fatalf("retry after reconnect: %v", err)
	}
	if arr.Get(3) != 42 {
		t.Fatal("data lost across reconnect")
	}
}
