//go:build race

package bsoap_test

// raceEnabled skips the AllocsPerRun gates under the race detector,
// whose instrumentation allocates.
const raceEnabled = true
