// Benchmarks regenerating the paper's twelve evaluation figures as
// testing.B targets — one benchmark per figure, sub-benchmarks per
// series and array size. cmd/bsoap-bench produces the full
// paper-shaped sweeps; these targets integrate the same measurements
// with `go test -bench`.
//
//	go test -bench=Fig02 -benchmem
package bsoap_test

import (
	"fmt"
	"testing"

	"bsoap/internal/baseline"
	"bsoap/internal/chunk"
	"bsoap/internal/core"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
	"bsoap/internal/workload"
)

// benchSizes keeps `go test -bench=.` affordable; cmd/bsoap-bench
// sweeps the paper's full 1–100K range.
var benchSizes = []int{100, 1000, 10000}

func sizeName(n int) string { return fmt.Sprintf("n=%d", n) }

func cfg32K() core.Config { return core.Config{Chunk: chunk.Config{ChunkSize: 32 * 1024}} }

// benchFullSerialization measures a full-serialization engine.
func benchFullSerialization(b *testing.B, m *wire.Message, disableDiffBSOAP bool, ser baseline.Serializer) {
	sink := transport.NewDiscardSink()
	if ser != nil {
		client := baseline.NewClient(ser, sink)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Call(m); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	c := cfg32K()
	c.DisableDiff = disableDiffBSOAP
	stub := core.NewStub(c, sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stub.Call(m); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDiff measures a differential stub: one untimed first send, then
// per-iteration mutate (untimed would distort; touches are cheap and
// part of the application's work in the paper's model) and send.
func benchDiff(b *testing.B, m *wire.Message, c core.Config, mutate func()) {
	sink := transport.NewDiscardSink()
	stub := core.NewStub(c, sink)
	if _, err := stub.Call(m); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mutate != nil {
			mutate()
		}
		if _, err := stub.Call(m); err != nil {
			b.Fatal(err)
		}
	}
}

// mcmBench runs a Figures 1–3 style comparison for one element type.
func mcmBench(b *testing.B, build func(n int) *wire.Message, withXSOAP bool) {
	for _, n := range benchSizes {
		m := build(n)
		if withXSOAP {
			b.Run("series=XSOAP/"+sizeName(n), func(b *testing.B) {
				benchFullSerialization(b, m, false, baseline.NewXSOAPLike())
			})
		}
		b.Run("series=gSOAP/"+sizeName(n), func(b *testing.B) {
			benchFullSerialization(b, m, false, baseline.NewGSOAPLike())
		})
		b.Run("series=bSOAPFull/"+sizeName(n), func(b *testing.B) {
			benchFullSerialization(b, m, true, nil)
		})
		b.Run("series=ContentMatch/"+sizeName(n), func(b *testing.B) {
			benchDiff(b, m, cfg32K(), nil)
		})
	}
}

// BenchmarkFig01MessageContentMatchMIO reproduces Figure 1.
func BenchmarkFig01MessageContentMatchMIO(b *testing.B) {
	mcmBench(b, func(n int) *wire.Message {
		return workload.NewMIOs(n, workload.FillIntermediate).Msg
	}, false)
}

// BenchmarkFig02MessageContentMatchDouble reproduces Figure 2.
func BenchmarkFig02MessageContentMatchDouble(b *testing.B) {
	mcmBench(b, func(n int) *wire.Message {
		return workload.NewDoubles(n, workload.FillIntermediate).Msg
	}, true)
}

// BenchmarkFig03MessageContentMatchInt reproduces Figure 3.
func BenchmarkFig03MessageContentMatchInt(b *testing.B) {
	mcmBench(b, func(n int) *wire.Message {
		return workload.NewInts(n, workload.FillIntermediate).Msg
	}, false)
}

// BenchmarkFig04StructuralMatchMIO reproduces Figure 4: dirty fractions
// of MIO doubles rewritten in place.
func BenchmarkFig04StructuralMatchMIO(b *testing.B) {
	for _, pct := range []int{100, 75, 50, 25} {
		frac := float64(pct) / 100
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("series=reser%d/%s", pct, sizeName(n)), func(b *testing.B) {
				w := workload.NewMIOs(n, workload.FillIntermediate)
				benchDiff(b, w.Msg, cfg32K(), func() { w.TouchDoublesFraction(frac) })
			})
		}
	}
}

// BenchmarkFig05StructuralMatchDouble reproduces Figure 5.
func BenchmarkFig05StructuralMatchDouble(b *testing.B) {
	for _, pct := range []int{100, 75, 50, 25} {
		frac := float64(pct) / 100
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("series=reser%d/%s", pct, sizeName(n)), func(b *testing.B) {
				w := workload.NewDoubles(n, workload.FillIntermediate)
				benchDiff(b, w.Msg, cfg32K(), func() { w.TouchFraction(frac) })
			})
		}
	}
}

// benchWorstShift rebuilds a minimal-width template each iteration
// (excluded from the timer) and measures one grow-everything send.
func benchWorstShift(b *testing.B, chunkSize int, build func(n int) (*wire.Message, func()), n int) {
	sink := transport.NewDiscardSink()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		stub := core.NewStub(core.Config{Chunk: chunk.Config{ChunkSize: chunkSize}}, sink)
		m, grow := build(n)
		if _, err := stub.Call(m); err != nil {
			b.Fatal(err)
		}
		grow()
		b.StartTimer()
		if _, err := stub.Call(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig06WorstCaseShiftMIO reproduces Figure 6: every MIO grows
// 3→46 characters.
func BenchmarkFig06WorstCaseShiftMIO(b *testing.B) {
	build := func(n int) (*wire.Message, func()) {
		w := workload.NewMIOs(n, workload.FillMin)
		return w.Msg, func() { w.SetAll(workload.MaxInt, workload.MaxInt, workload.MaxDouble) }
	}
	for _, ck := range []int{32 * 1024, 8 * 1024} {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("series=shift%dK/%s", ck/1024, sizeName(n)), func(b *testing.B) {
				benchWorstShift(b, ck, build, n)
			})
		}
	}
	for _, n := range benchSizes {
		b.Run("series=noshift/"+sizeName(n), func(b *testing.B) {
			w := workload.NewMIOs(n, workload.FillMax)
			benchDiff(b, w.Msg, cfg32K(), func() { w.TouchDoublesFraction(1) })
		})
	}
}

// BenchmarkFig07WorstCaseShiftDouble reproduces Figure 7: every double
// grows 1→24 characters.
func BenchmarkFig07WorstCaseShiftDouble(b *testing.B) {
	build := func(n int) (*wire.Message, func()) {
		w := workload.NewDoubles(n, workload.FillMin)
		return w.Msg, func() { w.SetAll(workload.MaxDouble) }
	}
	for _, ck := range []int{32 * 1024, 8 * 1024} {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("series=shift%dK/%s", ck/1024, sizeName(n)), func(b *testing.B) {
				benchWorstShift(b, ck, build, n)
			})
		}
	}
	for _, n := range benchSizes {
		b.Run("series=noshift/"+sizeName(n), func(b *testing.B) {
			w := workload.NewDoubles(n, workload.FillMax)
			benchDiff(b, w.Msg, cfg32K(), func() { w.TouchFraction(1) })
		})
	}
}

// BenchmarkFig08ShiftPercentMIO reproduces Figure 8: fractions of
// 36-character MIOs grow to 46 characters.
func BenchmarkFig08ShiftPercentMIO(b *testing.B) {
	for _, pct := range []int{100, 75, 50, 25} {
		frac := float64(pct) / 100
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("series=shift%d/%s", pct, sizeName(n)), func(b *testing.B) {
				benchWorstShift(b, 32*1024, func(n int) (*wire.Message, func()) {
					w := workload.NewMIOs(n, workload.FillIntermediate)
					return w.Msg, func() {
						w.GrowFraction(frac, workload.MaxInt, workload.MaxInt, workload.MaxDouble)
					}
				}, n)
			})
		}
	}
}

// BenchmarkFig09ShiftPercentDouble reproduces Figure 9: fractions of
// 18-character doubles grow to 24 characters.
func BenchmarkFig09ShiftPercentDouble(b *testing.B) {
	for _, pct := range []int{100, 75, 50, 25} {
		frac := float64(pct) / 100
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("series=shift%d/%s", pct, sizeName(n)), func(b *testing.B) {
				benchWorstShift(b, 32*1024, func(n int) (*wire.Message, func()) {
					w := workload.NewDoubles(n, workload.FillIntermediate)
					return w.Msg, func() { w.GrowFraction(frac, workload.MaxDouble) }
				}, n)
			})
		}
	}
}

// BenchmarkFig10StuffingMIO reproduces Figure 10: minimal MIOs in
// max/intermediate/min-width fields plus the full closing-tag shift.
func BenchmarkFig10StuffingMIO(b *testing.B) {
	maxPolicy := core.WidthPolicy{Int: core.MaxWidth, Double: core.MaxWidth}
	for _, n := range benchSizes {
		b.Run("series=maxTagShift/"+sizeName(n), func(b *testing.B) {
			benchWorstShift(b, 32*1024, func(n int) (*wire.Message, func()) {
				w := workload.NewMIOs(n, workload.FillMax)
				return w.Msg, func() { w.SetAll(workload.MinInt, workload.MinInt, workload.MinDouble) }
			}, n)
		})
	}
	for _, v := range []struct {
		name   string
		policy core.WidthPolicy
	}{
		{"maxWidth", maxPolicy},
		{"interWidth", core.WidthPolicy{Int: 9, Double: 18}},
		{"minWidth", core.WidthPolicy{}},
	} {
		for _, n := range benchSizes {
			b.Run("series="+v.name+"/"+sizeName(n), func(b *testing.B) {
				w := workload.NewMIOs(n, workload.FillMin)
				c := cfg32K()
				c.Width = v.policy
				benchDiff(b, w.Msg, c, func() { w.TouchDoublesFraction(1) })
			})
		}
	}
}

// BenchmarkFig11StuffingDouble reproduces Figure 11.
func BenchmarkFig11StuffingDouble(b *testing.B) {
	for _, n := range benchSizes {
		b.Run("series=maxTagShift/"+sizeName(n), func(b *testing.B) {
			benchWorstShift(b, 32*1024, func(n int) (*wire.Message, func()) {
				w := workload.NewDoubles(n, workload.FillMax)
				return w.Msg, func() { w.SetAll(workload.MinDouble) }
			}, n)
		})
	}
	for _, v := range []struct {
		name   string
		policy core.WidthPolicy
	}{
		{"maxWidth", core.WidthPolicy{Double: core.MaxWidth}},
		{"interWidth", core.WidthPolicy{Double: 18}},
		{"minWidth", core.WidthPolicy{}},
	} {
		for _, n := range benchSizes {
			b.Run("series="+v.name+"/"+sizeName(n), func(b *testing.B) {
				w := workload.NewDoubles(n, workload.FillMin)
				c := cfg32K()
				c.Width = v.policy
				benchDiff(b, w.Msg, c, func() { w.TouchFraction(1) })
			})
		}
	}
}

// BenchmarkFig12ChunkOverlay reproduces Figure 12: overlaid sends
// versus fully resident 100% value re-serialization.
func BenchmarkFig12ChunkOverlay(b *testing.B) {
	cfg := core.Config{
		Chunk: chunk.Config{ChunkSize: 32 * 1024},
		Width: core.WidthPolicy{Int: core.MaxWidth, Double: core.MaxWidth},
	}
	for _, n := range benchSizes {
		b.Run("series=overlayDouble/"+sizeName(n), func(b *testing.B) {
			sink := transport.NewDiscardSink()
			w := workload.NewDoubles(n, workload.FillMax)
			stub := core.NewStub(cfg, sink)
			if _, err := stub.CallOverlay(w.Msg, sink); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.TouchFraction(1)
				if _, err := stub.CallOverlay(w.Msg, sink); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("series=residentDouble/"+sizeName(n), func(b *testing.B) {
			w := workload.NewDoubles(n, workload.FillMax)
			benchDiff(b, w.Msg, cfg, func() { w.TouchFraction(1) })
		})
		b.Run("series=overlayMIO/"+sizeName(n), func(b *testing.B) {
			sink := transport.NewDiscardSink()
			w := workload.NewMIOs(n, workload.FillMax)
			stub := core.NewStub(cfg, sink)
			if _, err := stub.CallOverlay(w.Msg, sink); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.TouchDoublesFraction(1)
				if _, err := stub.CallOverlay(w.Msg, sink); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("series=residentMIO/"+sizeName(n), func(b *testing.B) {
			w := workload.NewMIOs(n, workload.FillMax)
			benchDiff(b, w.Msg, cfg, func() { w.TouchDoublesFraction(1) })
		})
	}
}
