// Quickstart: the differential serialization effect in thirty lines.
//
// A message is sent three times: the first send serializes everything
// and records the template, the second rewrites exactly one changed
// value, and the third — with nothing changed — resends the saved bytes
// without serializing at all.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bsoap"
)

func main() {
	// A message: one operation with a 1000-element vector of doubles.
	msg := bsoap.NewMessage("urn:quickstart", "sendVector")
	vec := msg.AddDoubleArray("values", 1000)
	for i := 0; i < vec.Len(); i++ {
		vec.Set(i, float64(i)*0.125)
	}

	// Sends go to an in-process sink here; bsoap.Dial gives the same
	// Stub a real TCP endpoint.
	sink := bsoap.NewDiscardSink()
	stub := bsoap.NewStub(bsoap.Config{}, sink)

	report := func(what string) {
		ci, err := stub.Call(msg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s → %-26s %6d bytes, %d values serialized\n",
			what, ci.Match, ci.Bytes, ci.ValuesRewritten)
	}

	report("first send")

	vec.Set(42, 3.25) // one update through the tracked accessor
	report("after one Set")

	report("no changes")

	st := stub.Stats()
	fmt.Printf("\nstats: %d calls — %d first-time, %d structural match, %d content match\n",
		st.Calls, st.FirstTimeSends, st.StructuralMatches, st.ContentMatches)
}
