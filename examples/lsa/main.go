// Linear System Analyzer example (paper §3.4): solver components
// iterate on Ax = b, and every refined solution vector is published
// over SOAP. Because the vector's size and form never change between
// iterations, every send after the first is a structural match — only
// the values that actually moved are re-serialized, and once the
// iteration converges the sends collapse into content matches.
//
//	go run ./examples/lsa [-n 400] [-solver gauss-seidel] [-tol 1e-10]
package main

import (
	"flag"
	"fmt"
	"log"

	"bsoap"
	"bsoap/internal/lsa"
	"bsoap/internal/transport"
)

func main() {
	var (
		n      = flag.Int("n", 400, "system dimension")
		solver = flag.String("solver", "gauss-seidel", "jacobi | gauss-seidel")
		tol    = flag.Float64("tol", 1e-10, "residual tolerance")
	)
	flag.Parse()

	// A local monitoring service playing the remote component: it
	// receives every refined vector. A discard server suffices — the
	// interesting work is on the sending side.
	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	sender, err := bsoap.Dial(srv.Addr(), bsoap.SenderOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()

	var comp lsa.Solver
	switch *solver {
	case "jacobi":
		comp = lsa.Jacobi{}
	case "gauss-seidel":
		comp = lsa.GaussSeidel{}
	default:
		log.Fatalf("unknown solver %q", *solver)
	}

	sys := lsa.NewDiagonallyDominant(*n, 20040607)

	// The published message: iteration counter, residual, and the
	// solution vector, all updated through tracked accessors.
	msg := bsoap.NewMessage("urn:lsa", "solutionUpdate")
	iterRef := msg.AddInt("iteration", 0)
	resRef := msg.AddDouble("residual", 0)
	vecRef := msg.AddDoubleArray("x", *n)

	stub := bsoap.NewStub(bsoap.Config{}, sender)

	x, iters, err := lsa.Solve(sys, comp, *tol, 5000,
		func(iter int, x []float64, res float64) error {
			iterRef.Set(int32(iter))
			resRef.Set(res)
			for i, v := range x {
				vecRef.Set(i, v) // unchanged components stay clean
			}
			ci, err := stub.Call(msg)
			if err != nil {
				return err
			}
			if iter <= 5 || iter%25 == 0 {
				fmt.Printf("iter %4d: residual %.3e — %s, %d/%d values re-serialized\n",
					iter, res, ci.Match, ci.ValuesRewritten, msg.NumLeaves())
			}
			return nil
		})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}

	fmt.Printf("\nconverged in %d iterations (final residual %.3e) using %s\n",
		iters, lsa.Residual(sys, x), comp.Name())
	st := stub.Stats()
	fmt.Printf("SOAP sends: %d total — %d first-time, %d structural matches, %d content matches\n",
		st.Calls, st.FirstTimeSends, st.StructuralMatches+st.PartialMatches, st.ContentMatches)
	fmt.Printf("values re-serialized: %d of %d sent (%.1f%% of a full re-serialization per send)\n",
		st.ValuesRewritten, st.Calls*int64(msg.NumLeaves()),
		100*float64(st.ValuesRewritten)/float64(st.Calls*int64(msg.NumLeaves())))
}
