// Metadata Catalog Service example (paper §3.4): every request to the
// MCS conforms to a fixed metadata schema, so the SOAP payload shape is
// identical call after call. The client's add/query messages become
// structural matches, and the server — running with differential
// deserialization — stops fully parsing the repeats.
//
//	go run ./examples/mcs [-files 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"bsoap"
	"bsoap/internal/mcs"
	"bsoap/internal/server"
	"bsoap/internal/transport"
)

// rpcSink adapts a Sender's round-trip path so stub.Call both sends the
// request and collects the response body.
type rpcSink struct {
	sender *transport.Sender
	last   []byte
}

func (r *rpcSink) Send(bufs net.Buffers) error {
	resp, err := r.sender.Roundtrip(bufs)
	if err != nil {
		return err
	}
	if resp.Status != 200 {
		return fmt.Errorf("server returned %d: %s", resp.Status, resp.Body)
	}
	r.last = resp.Body
	return nil
}

func main() {
	files := flag.Int("files", 200, "files to register")
	flag.Parse()

	// Server: in-memory catalog behind a SOAP endpoint with
	// differential deserialization.
	schema := []string{"owner", "experiment", "format", "site"}
	catalog := mcs.NewCatalog(schema)
	endpoint := server.New(server.Options{DifferentialDeserialization: true})
	mcs.Bind(endpoint, catalog)
	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{
		Handler: endpoint.HTTPHandler(),
		Respond: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("MCS serving on %s (schema: %v)\n\n", srv.Addr(), schema)

	sender, err := bsoap.Dial(srv.Addr(), bsoap.SenderOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()
	sink := &rpcSink{sender: sender}

	// The client reuses ONE add message for every registration; since
	// values are padded to stable shapes by the schema, each request is
	// a structural match after the first.
	owners := []string{"alice", "bob00", "carol", "dave0"}
	exps := []string{"climate-2026", "fusion-burst", "genome-assembly"}
	formats := []string{"hdf50", "ncdf4", "fits0"}

	addMsg := bsoap.NewMessage(mcs.Namespace, "mcsAdd")
	name := addMsg.AddString("logicalName", "")
	vals := addMsg.AddStringArray("values", len(schema))
	stub := bsoap.NewStub(bsoap.Config{}, sink)

	for i := 0; i < *files; i++ {
		name.Set(fmt.Sprintf("run-%06d.dat", i))
		vals.Set(0, owners[i%len(owners)])
		vals.Set(1, exps[i%len(exps)])
		vals.Set(2, formats[i%len(formats)])
		vals.Set(3, fmt.Sprintf("site-%02d", i%8))
		if _, err := stub.Call(addMsg); err != nil {
			log.Fatalf("add %d: %v", i, err)
		}
	}
	fmt.Printf("registered %d files; catalog holds %d entries\n", *files, catalog.Len())

	// Queries: same fixed shape, only the predicate values change.
	qMsg := bsoap.NewMessage(mcs.Namespace, "mcsQuery")
	attr := qMsg.AddString("attribute", "")
	value := qMsg.AddString("value", "")
	for _, q := range []struct{ a, v string }{
		{"owner", "alice"},
		{"experiment", "fusion-burst"},
		{"format", "hdf50"},
		{"owner", "nosuchuser"},
	} {
		attr.Set(q.a)
		value.Set(q.v)
		if _, err := stub.Call(qMsg); err != nil {
			log.Fatalf("query: %v", err)
		}
		names, err := catalog.Query(q.a, q.v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %s=%s → %d files (first page returned over SOAP)\n",
			q.a, q.v, len(names))
	}

	cs := stub.Stats()
	fmt.Printf("\nclient sends: %d — %d first-time, %d structural, %d partial, %d content matches\n",
		cs.Calls, cs.FirstTimeSends, cs.StructuralMatches, cs.PartialMatches, cs.ContentMatches)
	ss := endpoint.Stats()
	fmt.Printf("server decodes: %d full parses, %d differential (%d values reparsed)\n",
		ss.FullParses, ss.DiffDecodes, ss.ValuesReparsed)
	rs := endpoint.ResponseStats()
	fmt.Printf("server responses: %d first-time, %d structural, %d content matches\n",
		rs.FirstTimeSends, rs.StructuralMatches+rs.PartialMatches, rs.ContentMatches)
}
