// Web-service example (paper §3.4): "Google and Amazon.com provide a
// Web services interface. The XML Schema used for the responses to user
// requests is always the same; only the values change." A search
// service answers every query with a fixed-shape result page, so its
// response stub serializes only the values that differ from the
// previous response — the perfect-structural-match win the paper
// predicts for heavily used servers.
//
// The client first fetches the service's WSDL over GET and builds its
// request message from the parsed description.
//
//	go run ./examples/webindex [-queries 30]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"

	"bsoap"
	"bsoap/internal/server"
	"bsoap/internal/soapdec"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
	"bsoap/internal/wsdl"
)

// pageSize fixes the response shape: every response carries exactly
// this many result slots.
const pageSize = 8

// corpus is the searchable "product index".
var corpus = []string{
	"mesh interface toolkit", "linear system analyzer", "metadata catalog",
	"condor flock manager", "grid service container", "soap message router",
	"xml schema validator", "differential serializer", "chunked buffer arena",
	"floating point encoder", "scatter gather sender", "template store cache",
	"dirty bit tracker", "structural match engine", "whitespace stuffer",
	"closing tag shifter", "field width stealer", "chunk overlay streamer",
}

// search scores corpus entries against a query (shared terms, then
// name order for determinism).
func search(query string) (titles []string, scores []float64) {
	terms := strings.Fields(strings.ToLower(query))
	type hit struct {
		title string
		score float64
	}
	var hits []hit
	for _, doc := range corpus {
		s := 0.0
		for _, t := range terms {
			if strings.Contains(doc, t) {
				s += 1.0 / float64(len(terms))
			}
		}
		if s > 0 {
			hits = append(hits, hit{doc, s})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].score != hits[j].score {
			return hits[i].score > hits[j].score
		}
		return hits[i].title < hits[j].title
	})
	for _, h := range hits {
		titles = append(titles, h.title)
		scores = append(scores, h.score)
	}
	return titles, scores
}

// rpcSink performs request/response round trips through the stub.
type rpcSink struct {
	sender *transport.Sender
	last   []byte
}

func (r *rpcSink) Send(bufs net.Buffers) error {
	resp, err := r.sender.Roundtrip(bufs)
	if err != nil {
		return err
	}
	if resp.Status != 200 {
		return fmt.Errorf("server returned %d: %s", resp.Status, resp.Body)
	}
	r.last = resp.Body
	return nil
}

func main() {
	queries := flag.Int("queries", 30, "number of search queries to issue")
	flag.Parse()

	// --- Service side -------------------------------------------------
	searchSchema := &soapdec.Schema{
		Namespace: "urn:webindex",
		Op:        "search",
		Params: []soapdec.ParamSpec{
			{Name: "query", Type: wire.TString},
			{Name: "maxResults", Type: wire.TInt},
		},
	}
	endpoint := server.New(server.Options{DifferentialDeserialization: true})

	// One response message reused for every query: fixed page shape.
	resp := wire.NewMessage("urn:webindex", "searchResponse")
	total := resp.AddInt("total", 0)
	titles := resp.AddStringArray("titles", pageSize)
	scores := resp.AddDoubleArray("scores", pageSize)
	endpoint.Register(searchSchema, func(req *wire.Message) (*wire.Message, error) {
		q := req.LeafString(0)
		ts, ss := search(q)
		total.Set(int32(len(ts)))
		for i := 0; i < pageSize; i++ {
			if i < len(ts) {
				titles.Set(i, ts[i])
				scores.Set(i, ss[i])
			} else {
				titles.Set(i, "")
				scores.Set(i, 0)
			}
		}
		return resp, nil
	})

	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{
		Handler: endpoint.HTTPHandler(),
		Respond: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	doc, err := wsdl.Generate(&wsdl.Service{
		Name:       "WebIndex",
		Namespace:  "urn:webindex",
		Endpoint:   "http://" + srv.Addr() + "/",
		Operations: []*soapdec.Schema{searchSchema},
	})
	if err != nil {
		log.Fatal(err)
	}
	endpoint.SetWSDL(doc)

	// --- Client side ----------------------------------------------------
	// Discover the service: fetch and parse its WSDL, then build the
	// request message from the recovered schema.
	wsdlResp, err := transport.Fetch(srv.Addr(), "/?wsdl")
	if err != nil {
		log.Fatal(err)
	}
	svc, err := wsdl.Parse(wsdlResp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered service %q at %s with %d operation(s)\n",
		svc.Name, svc.Endpoint, len(svc.Operations))

	op := svc.Operations[0]
	req := bsoap.NewMessage(op.Namespace, op.Op)
	var queryRef bsoap.StringRef
	for _, p := range op.Params {
		switch p.Type.Kind {
		case wire.String:
			queryRef = req.AddString(p.Name, "")
		case wire.Int:
			req.AddInt(p.Name, pageSize)
		}
	}

	sender, err := bsoap.Dial(srv.Addr(), bsoap.SenderOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()
	sink := &rpcSink{sender: sender}
	stub := bsoap.NewStub(bsoap.Config{}, sink)

	words := []string{"mesh", "grid", "soap", "xml", "chunk", "field", "match", "tag"}
	for i := 0; i < *queries; i++ {
		q := words[i%len(words)] + " " + words[(i/2+3)%len(words)]
		queryRef.Set(q)
		if _, err := stub.Call(req); err != nil {
			log.Fatalf("query %d: %v", i, err)
		}
		if i < 4 {
			ts, _ := search(q)
			fmt.Printf("query %-14q → %d hits\n", q, len(ts))
		}
	}

	cs := stub.Stats()
	fmt.Printf("\nclient requests: %d — %d first-time, %d structural, %d partial, %d content matches\n",
		cs.Calls, cs.FirstTimeSends, cs.StructuralMatches, cs.PartialMatches, cs.ContentMatches)
	rs := endpoint.ResponseStats()
	fmt.Printf("server responses: %d first-time, %d structural, %d partial, %d content matches\n",
		rs.FirstTimeSends, rs.StructuralMatches, rs.PartialMatches, rs.ContentMatches)
	fmt.Printf("server response values re-serialized: %d (vs %d if fully serialized each time)\n",
		rs.ValuesRewritten, rs.Calls*int64(resp.NumLeaves()))
	ss := endpoint.Stats()
	fmt.Printf("server request decodes: %d full, %d differential\n", ss.FullParses, ss.DiffDecodes)
}
