// Condor flocking example (paper §3.4): pools periodically exchange
// ClassAd descriptions of their machines. Between exchanges most
// resource attributes are unchanged, so bSOAP automatically
// re-serializes only the differences — quiet periods are pure message
// content matches, busy periods sparse structural matches — without any
// change to the resource manager itself.
//
//	go run ./examples/condor [-machines 500] [-rounds 20] [-churn 0.05]
package main

import (
	"flag"
	"fmt"
	"log"

	"bsoap"
	"bsoap/internal/classad"
	"bsoap/internal/server"
	"bsoap/internal/soapdec"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

func main() {
	var (
		machines = flag.Int("machines", 500, "machines per pool")
		rounds   = flag.Int("rounds", 20, "exchange rounds")
		churn    = flag.Float64("churn", 0.05, "fraction of machines changing per busy round")
	)
	flag.Parse()

	// The flock collector: receives updates, acks with the ad count.
	endpoint := server.New(server.Options{DifferentialDeserialization: true})
	resp := wire.NewMessage(classad.Namespace, "flockUpdateResponse")
	accepted := resp.AddInt("accepted", 0)
	endpoint.Register(&soapdec.Schema{
		Namespace: classad.Namespace,
		Op:        "flockUpdate",
		Params: []soapdec.ParamSpec{
			{Name: "pool", Type: wire.TString},
			{Name: "ads", Type: wire.ArrayOf(classad.AdType())},
		},
	}, func(req *wire.Message) (*wire.Message, error) {
		_, ads, err := classad.DecodeAds(req)
		if err != nil {
			return nil, err
		}
		accepted.Set(int32(len(ads)))
		return resp, nil
	})
	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{
		Handler: endpoint.HTTPHandler(),
		Respond: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	sender, err := bsoap.Dial(srv.Addr(), bsoap.SenderOptions{ExpectResponse: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()

	pool := classad.NewPool("pool-binghamton", *machines, 1)
	exchange := classad.NewExchange(pool)

	// Stuff numeric fields so load changes never shift the template.
	stub := bsoap.NewStub(bsoap.Config{
		Width: bsoap.WidthPolicy{Int: bsoap.MaxWidth, Double: bsoap.MaxWidth},
	}, sender)

	fmt.Printf("flocking %d machines to %s for %d rounds\n\n", *machines, srv.Addr(), *rounds)
	for round := 1; round <= *rounds; round++ {
		// Alternate quiet and busy periods.
		busy := round%3 == 0
		changed := 0
		if busy {
			changed = pool.Tick(*churn)
		}
		exchange.Sync()
		ci, err := stub.Call(exchange.Msg)
		if err != nil {
			log.Fatalf("round %d: %v", round, err)
		}
		fmt.Printf("round %2d: %2d machines changed → %-26s %5d values re-serialized\n",
			round, changed, ci.Match, ci.ValuesRewritten)
	}

	st := stub.Stats()
	total := st.Calls * int64(exchange.Msg.NumLeaves())
	fmt.Printf("\nclient: %d exchanges — %d content matches, %d structural; "+
		"%d of %d values re-serialized (%.2f%%)\n",
		st.Calls, st.ContentMatches, st.StructuralMatches+st.PartialMatches,
		st.ValuesRewritten, total, 100*float64(st.ValuesRewritten)/float64(total))
	ss := endpoint.Stats()
	fmt.Printf("server: %d full parses, %d differential decodes (%d values reparsed)\n",
		ss.FullParses, ss.DiffDecodes, ss.ValuesReparsed)
}
