//go:build !race

package bsoap_test

const raceEnabled = false
