package bsoap_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bsoap"
	"bsoap/internal/faultwire"
	"bsoap/internal/harness"
	"bsoap/internal/server"
	"bsoap/internal/serverpool"
	"bsoap/internal/transport"
	"bsoap/internal/workload"
)

// TestServerPoolMultiClientConformance runs eight concurrent clients,
// each with its own connection and message shape, against the sharded
// runtime with self-check verification on: every differential fast-path
// decode is re-parsed from scratch and compared leaf by leaf, so any
// cross-replica interference or stale-template reuse fails the run.
// Run under -race this is also the concurrency check on the whole
// serve path.
func TestServerPoolMultiClientConformance(t *testing.T) {
	sm := transport.NewServerMetrics()
	rt, srv := harness.BenchRuntime(t,
		serverpool.Options{DifferentialDeserialization: true, SelfCheck: true, Metrics: sm},
		transport.ServerOptions{Metrics: sm})

	const clients = 8
	const rounds = 40
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			pool := harness.ClientPool(t, srv.Addr())
			d := workload.NewDoubles(16+4*id, workload.FillIntermediate) // distinct shape per client
			for r := 0; r < rounds; r++ {
				if r%3 == 1 {
					d.TouchFraction(0.25)
				}
				if _, err := pool.Call(d.Msg); err != nil {
					errs <- err
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := rt.Stats()
	if st.Requests != clients*rounds {
		t.Fatalf("runtime handled %d requests, want %d", st.Requests, clients*rounds)
	}
	if st.SelfCheckFails != 0 {
		t.Fatalf("self-check fails: %d", st.SelfCheckFails)
	}
	// Each client's connection owns a replica, so only its first request
	// (and none after) full-parses: the fast-path rate stays ≥ 90%.
	rate := float64(st.DiffDecodes) / float64(st.Requests)
	if rate < 0.9 {
		t.Fatalf("fast-path rate %.2f < 0.90 (full=%d diff=%d)", rate, st.FullParses, st.DiffDecodes)
	}
	if snap := sm.Snapshot(); snap.DDSFastPath != st.DiffDecodes {
		t.Fatalf("metrics fast path %d != runtime %d", snap.DDSFastPath, st.DiffDecodes)
	}
}

// TestServerPoolConformanceUnderChaos is the fault-injected version:
// every client connection runs through a faultwire injector resetting
// writes, truncating streams and failing dials, so the runtime sees
// redials (fresh replicas mid-stream), retried duplicate deliveries and
// abandoned connections. Calls may fail; what may never happen is a
// fast-path decode that differs from a from-scratch parse of the same
// body — SelfCheck re-parses every accepted request and compares leaf
// by leaf, and a single divergence fails the run.
func TestServerPoolConformanceUnderChaos(t *testing.T) {
	sm := transport.NewServerMetrics()
	rt, srv := harness.BenchRuntime(t,
		serverpool.Options{DifferentialDeserialization: true, SelfCheck: true, Metrics: sm},
		transport.ServerOptions{Metrics: sm})

	inj := faultwire.New(faultwire.Options{
		Seed: 7,
		Probs: faultwire.Probabilities{
			Reset:          0.04,
			PartialWrite:   0.02,
			MidStreamClose: 0.02,
			DialError:      0.02,
		},
	})

	const clients = 8
	const rounds = 40
	var okCalls, failedCalls atomic.Int64
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			opts := bsoap.PoolOptions{
				Size:             1,
				Addr:             srv.Addr(),
				MaxRetries:       3,
				DialAttempts:     6,
				RedialBackoff:    time.Millisecond,
				RedialBackoffMax: 10 * time.Millisecond,
				RetryBudget:      30 * time.Second,
			}
			opts.Sender.Dialer = inj.Dial(nil)
			pool := harness.Pool(t, opts)
			d := workload.NewDoubles(16+4*id, workload.FillIntermediate)
			for r := 0; r < rounds; r++ {
				if r%3 == 1 {
					d.TouchFraction(0.25)
				}
				if _, err := pool.Call(d.Msg); err != nil {
					failedCalls.Add(1)
				} else {
					okCalls.Add(1)
				}
			}
		}(id)
	}
	wg.Wait()

	if okCalls.Load() == 0 {
		t.Fatal("no call survived the chaos; injection rates are too hot to prove anything")
	}
	if inj.Faults() == 0 {
		t.Fatal("no faults injected; the chaos run proved nothing")
	}
	st := rt.Stats()
	if st.Requests == 0 {
		t.Fatal("runtime decoded no requests")
	}
	if st.SelfCheckFails != 0 {
		t.Fatalf("self-check fails: %d (of %d requests, faults %v)",
			st.SelfCheckFails, st.Requests, inj.FaultsByKind())
	}
	t.Logf("chaos: %d ok, %d failed calls, %d requests decoded (%d full / %d fast), %d faults %v",
		okCalls.Load(), failedCalls.Load(), st.Requests, st.FullParses, st.DiffDecodes,
		inj.Faults(), inj.FaultsByKind())
}

// TestServerDrainUnderLoad shuts the server down gracefully while
// clients are mid-burst: Shutdown must return nil (clean drain), abort
// zero in-flight requests, and every request the transport accepted
// must have been dispatched to the runtime — nothing dropped on the
// floor between read and handle.
func TestServerDrainUnderLoad(t *testing.T) {
	sm := transport.NewServerMetrics()
	rt, srv := harness.BenchRuntime(t,
		serverpool.Options{DifferentialDeserialization: true, Metrics: sm},
		transport.ServerOptions{Metrics: sm})

	const clients = 4
	var started atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			pool := harness.ClientPool(t, srv.Addr())
			d := workload.NewDoubles(64, workload.FillIntermediate)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once the drain begins (closed
				// listener, closed keep-alive conns); what matters is the
				// server-side accounting below.
				if _, err := pool.Call(d.Msg); err == nil {
					started.Add(1)
				}
			}
		}(id)
	}

	// Let the load ramp, then drain mid-flight.
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < 50 {
		if time.Now().After(deadline) {
			t.Fatal("load never ramped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	snap := sm.Snapshot()
	if snap.DrainAborted != 0 {
		t.Fatalf("drain_aborted = %d, want 0", snap.DrainAborted)
	}
	if handled := rt.Stats().Requests; handled != snap.Requests {
		t.Fatalf("transport received %d requests but runtime handled %d", snap.Requests, handled)
	}
}

// harness.BenchRuntime's server.Handler alias must stay interchangeable
// with the locked endpoint's handler type (factories feed both).
var _ server.Handler = serverpool.Handler(nil)
