module bsoap

go 1.22
