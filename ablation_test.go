// Ablation benchmarks for the design choices DESIGN.md calls out:
// stealing versus shifting, trailing-slack sizing, and template-store
// sharing. These go beyond the paper's figures to quantify the
// individual techniques.
package bsoap_test

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"testing"

	"bsoap/internal/baseline"
	"bsoap/internal/chunk"
	"bsoap/internal/core"
	"bsoap/internal/transport"
	"bsoap/internal/workload"
)

// BenchmarkAblationStealing compares serving sparse field expansions by
// stealing neighbour padding versus shifting the chunk tail. The
// workload stuffs doubles to 18 chars, then grows 1% of them to 24 —
// each growth needs 6 bytes that a neighbour's padding can donate.
func BenchmarkAblationStealing(b *testing.B) {
	for _, enabled := range []bool{true, false} {
		name := "steal=off"
		if enabled {
			name = "steal=on"
		}
		for _, n := range []int{1000, 10000} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				sink := transport.NewDiscardSink()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					stub := core.NewStub(core.Config{
						Chunk:          chunk.Config{ChunkSize: 32 * 1024},
						Width:          core.WidthPolicy{Double: 18},
						EnableStealing: enabled,
					}, sink)
					w := workload.NewDoubles(n, workload.FillMin)
					if _, err := stub.Call(w.Msg); err != nil {
						b.Fatal(err)
					}
					w.GrowFraction(0.01, workload.MaxDouble)
					b.StartTimer()
					if _, err := stub.Call(w.Msg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationTrailingSlack quantifies the slack reservation: with
// no slack every expansion reallocates or splits; with generous slack
// expansions are pure memmoves.
func BenchmarkAblationTrailingSlack(b *testing.B) {
	for _, slack := range []int{64, 1024, 8 * 1024} {
		b.Run(fmt.Sprintf("slack=%d", slack), func(b *testing.B) {
			sink := transport.NewDiscardSink()
			n := 5000
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				stub := core.NewStub(core.Config{
					Chunk: chunk.Config{ChunkSize: 32 * 1024, TrailingSlack: slack},
				}, sink)
				w := workload.NewDoubles(n, workload.FillIntermediate)
				if _, err := stub.Call(w.Msg); err != nil {
					b.Fatal(err)
				}
				w.GrowFraction(0.05, workload.MaxDouble)
				b.StartTimer()
				if _, err := stub.Call(w.Msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// slowStream simulates a transport whose writes cost real time (spin,
// not sleep, to stay benchmark-friendly), making the overlap bought by
// pipelined send visible.
type slowStream struct {
	perChunk int // spin iterations per chunk
	sinkSum  int
}

func (s *slowStream) BeginStream() error { return nil }
func (s *slowStream) StreamChunk(p []byte) error {
	x := 0
	for i := 0; i < s.perChunk; i++ {
		x += i ^ len(p)
	}
	s.sinkSum += x
	return nil
}
func (s *slowStream) EndStream() error { return nil }

// BenchmarkAblationPipelinedOverlay compares sequential chunk overlay
// against pipelined send (companion paper [3]) over a transport with
// non-trivial per-chunk cost.
func BenchmarkAblationPipelinedOverlay(b *testing.B) {
	cfg := core.Config{
		Chunk: chunk.Config{ChunkSize: 32 * 1024},
		Width: core.WidthPolicy{Double: core.MaxWidth},
	}
	n := 20000
	for _, mode := range []string{"sequential", "pipelined"} {
		b.Run(mode, func(b *testing.B) {
			stream := &slowStream{perChunk: 200000}
			w := workload.NewDoubles(n, workload.FillMax)
			stub := core.NewStub(cfg, transport.NewDiscardSink())
			call := stub.CallOverlay
			if mode == "pipelined" {
				call = stub.CallOverlayPipelined
			}
			if _, err := call(w.Msg, stream); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.TouchFraction(1)
				if _, err := call(w.Msg, stream); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCompression compares the two bandwidth strategies
// the paper's related work contrasts: gzip compression (gSOAP's
// option) re-compresses the whole message every send and trades CPU
// for wire bytes; differential serialization reuses the template and
// pays neither. The custom wirebytes/op metric shows what each puts on
// the wire.
func BenchmarkAblationCompression(b *testing.B) {
	n := 10000
	// Typical fill: every value distinct, so compression ratios are
	// realistic rather than degenerate.
	newWorkload := func() *workload.Doubles { return workload.NewDoubles(n, workload.FillTypical) }

	b.Run("fullSerialization", func(b *testing.B) {
		w := newWorkload()
		ser := baseline.NewGSOAPLike()
		var bytesOut int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bytesOut += int64(len(ser.Serialize(w.Msg)))
		}
		b.ReportMetric(float64(bytesOut)/float64(b.N), "wirebytes/op")
	})

	b.Run("fullSerializationGzip", func(b *testing.B) {
		w := newWorkload()
		ser := baseline.NewGSOAPLike()
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		var bytesOut int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			data := ser.Serialize(w.Msg)
			buf.Reset()
			zw.Reset(&buf)
			if _, err := zw.Write(data); err != nil {
				b.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				b.Fatal(err)
			}
			bytesOut += int64(buf.Len())
		}
		b.ReportMetric(float64(bytesOut)/float64(b.N), "wirebytes/op")
	})

	b.Run("differentialContentMatch", func(b *testing.B) {
		w := newWorkload()
		sink := transport.NewDiscardSink()
		stub := core.NewStub(core.Config{}, sink)
		if _, err := stub.Call(w.Msg); err != nil {
			b.Fatal(err)
		}
		var bytesOut int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ci, err := stub.Call(w.Msg)
			if err != nil {
				b.Fatal(err)
			}
			bytesOut += int64(ci.Bytes)
		}
		b.ReportMetric(float64(bytesOut)/float64(b.N), "wirebytes/op")
	})
}

// BenchmarkAblationDirtyScan measures the engine's fixed per-call cost
// of scanning the DUT table for dirty bits when almost nothing changed —
// the overhead a content-match-heavy application pays per send.
func BenchmarkAblationDirtyScan(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sink := transport.NewDiscardSink()
			w := workload.NewDoubles(n, workload.FillIntermediate)
			stub := core.NewStub(core.Config{}, sink)
			if _, err := stub.Call(w.Msg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stub.Call(w.Msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
