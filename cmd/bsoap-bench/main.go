// Command bsoap-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	bsoap-bench -fig all                 # every figure, in-process sink
//	bsoap-bench -fig 1,2,7 -reps 100 -max-size 100000
//	bsoap-bench -fig 2 -tcp 127.0.0.1:9999   # against bsoap-server -mode discard
//	bsoap-bench -fig all -csv results/       # also write CSV per figure
//
// Without -tcp, sends go to an in-process discard sink, isolating pure
// serialization cost. With -tcp, each send is a framed HTTP POST over a
// persistent connection to a discard server, matching the paper's dummy
// server methodology (the timed interval still ends at the final write).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bsoap/internal/bench"
	"bsoap/internal/transport"
)

func main() {
	var (
		figs    = flag.String("fig", "all", "comma-separated figure numbers (1-12) or 'all'")
		reps    = flag.Int("reps", 25, "timed repetitions per data point (paper used 100)")
		maxSize = flag.Int("max-size", 10000, "largest array size swept (paper used 100000)")
		tcp     = flag.String("tcp", "", "send over TCP to a discard server at host:port instead of in-process")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files into")
		jsonOut = flag.String("json", "", "write machine-readable results (ns/op, B/op, allocs/op per point) to this path; 'auto' selects BENCH_<date>.json")
	)
	flag.Parse()

	ids, err := parseFigs(*figs)
	if err != nil {
		fatal(err)
	}

	opts := bench.Options{Reps: *reps, MaxSize: *maxSize}
	if *tcp != "" {
		sender, err := transport.Dial(*tcp, transport.SenderOptions{Version: transport.HTTP11})
		if err != nil {
			fatal(fmt.Errorf("connecting to discard server: %w", err))
		}
		defer sender.Close()
		opts.Sink = sender
		opts.StreamSink = sender
		fmt.Printf("# sending over TCP to %s\n", *tcp)
	} else {
		fmt.Printf("# in-process discard sink (pure serialization-side cost)\n")
	}
	fmt.Printf("# reps=%d max-size=%d\n\n", *reps, *maxSize)

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	runners := bench.Figures()
	var figures []*bench.Figure
	for _, id := range ids {
		start := time.Now()
		fig, err := runners[id](opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		figures = append(figures, fig)
		if err := fig.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("# %s completed in %v\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, fig.ID+".csv"))
			if err != nil {
				fatal(err)
			}
			if err := fig.WriteCSV(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	if *jsonOut != "" {
		path := *jsonOut
		if path == "auto" {
			path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
		}
		doc := struct {
			Date    string          `json:"date"`
			Reps    int             `json:"reps"`
			MaxSize int             `json:"max_size"`
			Sink    string          `json:"sink"`
			Figures []*bench.Figure `json:"figures"`
		}{
			Date:    time.Now().Format(time.RFC3339),
			Reps:    *reps,
			MaxSize: *maxSize,
			Sink:    sinkName(*tcp),
			Figures: figures,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s\n", path)
	}
}

// sinkName names the measurement sink for the JSON metadata.
func sinkName(tcp string) string {
	if tcp != "" {
		return "tcp " + tcp
	}
	return "in-process discard"
}

// parseFigs turns "1,2,12" or "all" into figure IDs.
func parseFigs(spec string) ([]string, error) {
	if spec == "all" || spec == "" {
		return bench.FigureIDs(), nil
	}
	var out []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		id := part
		if bench.Figures()[id] == nil {
			var n int
			if _, err := fmt.Sscanf(part, "%d", &n); err != nil {
				return nil, fmt.Errorf("unknown figure %q (use 1-12, fig01-fig12, or extension IDs like extD1)", part)
			}
			id = fmt.Sprintf("fig%02d", n)
		}
		if bench.Figures()[id] == nil {
			return nil, fmt.Errorf("unknown figure %q (use 1-12, fig01-fig12, or extension IDs like extD1)", part)
		}
		out = append(out, id)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bsoap-bench:", err)
	os.Exit(1)
}
