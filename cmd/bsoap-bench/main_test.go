package main

import "testing"

func TestParseFigs(t *testing.T) {
	ids, err := parseFigs("all")
	if err != nil || len(ids) < 13 {
		t.Fatalf("all: %v, %v", ids, err)
	}
	ids, err = parseFigs("1, 2,12")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fig01", "fig02", "fig12"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v", ids)
		}
	}
	ids, err = parseFigs("fig07")
	if err != nil || ids[0] != "fig07" {
		t.Fatalf("fig07: %v, %v", ids, err)
	}
	ids, err = parseFigs("extD1")
	if err != nil || ids[0] != "extD1" {
		t.Fatalf("extD1: %v, %v", ids, err)
	}
	for _, bad := range []string{"13", "0", "figXX", "banana", "1,banana"} {
		if _, err := parseFigs(bad); err == nil {
			t.Errorf("parseFigs(%q) accepted", bad)
		}
	}
}
