// Command bsoap-wsdl works with WSDL service descriptions.
//
//	bsoap-wsdl -service mcs               # print a built-in service's WSDL
//	bsoap-wsdl -fetch 127.0.0.1:9999      # fetch a live endpoint's WSDL and summarize it
//	bsoap-wsdl -validate service.wsdl     # parse a WSDL file and summarize it
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bsoap/internal/classad"
	"bsoap/internal/mcs"
	"bsoap/internal/soapdec"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
	"bsoap/internal/wsdl"
)

func main() {
	var (
		service  = flag.String("service", "", "print WSDL for a built-in service: calc | mcs | flock")
		fetch    = flag.String("fetch", "", "fetch WSDL from host:port and summarize")
		validate = flag.String("validate", "", "parse a WSDL file and summarize")
	)
	flag.Parse()

	switch {
	case *service != "":
		doc, err := builtinWSDL(*service)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(doc)
		fmt.Println()
	case *fetch != "":
		resp, err := transport.Fetch(*fetch, "/?wsdl")
		if err != nil {
			fatal(err)
		}
		if resp.Status != 200 {
			fatal(fmt.Errorf("endpoint returned %d", resp.Status))
		}
		summarize(resp.Body)
	case *validate != "":
		doc, err := os.ReadFile(*validate)
		if err != nil {
			fatal(err)
		}
		summarize(doc)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// builtinWSDL renders the description of one of the bundled services.
func builtinWSDL(name string) ([]byte, error) {
	switch name {
	case "calc":
		return wsdl.Generate(&wsdl.Service{
			Name: "Calc", Namespace: "urn:calc", Endpoint: "http://localhost:9999/",
			Operations: []*soapdec.Schema{{
				Namespace: "urn:calc", Op: "sum",
				Params: []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
			}},
		})
	case "mcs":
		return wsdl.Generate(&wsdl.Service{
			Name: "MetadataCatalog", Namespace: mcs.Namespace, Endpoint: "http://localhost:9999/",
			Operations: []*soapdec.Schema{mcs.AddSchema(), mcs.QuerySchema(), mcs.DeleteSchema()},
		})
	case "flock":
		return wsdl.Generate(&wsdl.Service{
			Name: "FlockCollector", Namespace: classad.Namespace, Endpoint: "http://localhost:9999/",
			Operations: []*soapdec.Schema{{
				Namespace: classad.Namespace, Op: "flockUpdate",
				Params: []soapdec.ParamSpec{
					{Name: "pool", Type: wire.TString},
					{Name: "ads", Type: wire.ArrayOf(classad.AdType())},
				},
			}},
		})
	}
	return nil, fmt.Errorf("unknown built-in service %q (calc | mcs | flock)", name)
}

// summarize parses a WSDL document and prints its operations.
func summarize(doc []byte) {
	svc, err := wsdl.Parse(doc)
	if err != nil {
		fatal(fmt.Errorf("invalid WSDL: %w", err))
	}
	fmt.Printf("service  %s\n", svc.Name)
	fmt.Printf("namespace %s\n", svc.Namespace)
	if svc.Endpoint != "" {
		fmt.Printf("endpoint %s\n", svc.Endpoint)
	}
	fmt.Printf("operations (%d):\n", len(svc.Operations))
	for _, op := range svc.Operations {
		var parts []string
		for _, p := range op.Params {
			var sig strings.Builder
			p.Type.Signature(&sig)
			parts = append(parts, p.Name+": "+sig.String())
		}
		fmt.Printf("  %s(%s)\n", op.Op, strings.Join(parts, ", "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bsoap-wsdl:", err)
	os.Exit(1)
}
