// Command bsoap-server runs the receiving side of the experiments and
// examples.
//
// Modes:
//
//	-mode discard   read and drop requests without parsing (the paper's
//	                dummy server; pair with bsoap-bench -tcp)
//	-mode sum       SOAP service summing a double array
//	-mode mcs       Metadata Catalog Service over an in-memory catalog
//	-mode flock     Condor flock collector printing received ClassAd stats
//	-mode bench     acknowledge the loadgen workload operations
//	                (sendDoubles/sendInts/sendMIOs)
//	-mode record    keep every accepted request body in memory and
//	                answer 200 (conformance/chaos runs; bound retention
//	                with -record-limit)
//
// SOAP modes run on the concurrent serverpool runtime: each connection
// gets its own differential-deserializer replica and response stub, so
// concurrent clients decode in parallel without thrashing shared
// templates. -locked falls back to the single-mutex endpoint (the
// scaling baseline). With -diff, requests decode through differential
// deserialization; decode statistics are reported on shutdown.
//
// Admission control: -max-conns and -max-inflight reject excess load
// with fast 503s, -request-timeout bounds each request read.
// -read-ahead N overlaps parsing with handling for pipelined clients:
// up to N requests are read ahead per connection while the handler
// runs, with responses still written strictly in request order.
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, then the
// process reports "drain complete" and exits 0. -drain-timeout bounds
// the wait; a second signal hard-stops immediately.
//
// -metrics :8124 exposes the server's registry while it runs: JSON at
// http://localhost:8124/, Prometheus text exposition at /metrics, and
// the flight-recorder ring at /debug/trace (enable it with -trace to
// record decode and response-path template decisions).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof flag: live heap/alloc profiles
	"os"
	"os/signal"
	"syscall"
	"time"

	"bsoap/internal/classad"
	"bsoap/internal/health"
	"bsoap/internal/mcs"
	"bsoap/internal/server"
	"bsoap/internal/serverpool"
	"bsoap/internal/soapdec"
	"bsoap/internal/trace"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
	"bsoap/internal/workload"
	"bsoap/internal/wsdl"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9999", "listen address")
		mode     = flag.String("mode", "discard", "discard | sum | mcs | flock | bench | record")
		respond  = flag.Bool("respond", true, "answer every request (discard mode defaults to silent)")
		diff     = flag.Bool("diff", true, "use differential deserialization in SOAP modes")
		delta    = flag.Bool("delta", true, "accept differential transmission (serverpool runtime: hold each client template's last body, apply patch frames against it)")
		locked   = flag.Bool("locked", false, "single-mutex endpoint instead of the sharded serverpool runtime")
		selfchk  = flag.Bool("selfcheck", false, "re-verify every differential fast-path decode against a full parse")
		quiet    = flag.Bool("quiet", false, "suppress per-connection error logging")
		recCap   = flag.Int("record-limit", 10000, "record mode: max bodies kept in memory (0 = unbounded)")
		pprofSrv = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) — verify the receive path's allocation profile under load")
		metrics  = flag.String("metrics", "", "serve server metrics on this address (e.g. :8124): JSON at /, Prometheus at /metrics, /debug/trace, /debug/trace/slow, /debug/health")
		traceOn  = flag.Bool("trace", false, "enable the flight recorder (records decode and response-path template decisions)")

		slowThresh = flag.Duration("slow-threshold", 0, "capture full event sets of requests slower than this server-side (0 = off)")
		slowQuant  = flag.Float64("slow-quantile", 0, "capture requests slower than this rolling latency quantile, e.g. 0.99 (0 = off; overrides -slow-threshold)")

		maxConns     = flag.Int("max-conns", 0, "admission: max open connections, excess rejected 503 (0 = unlimited)")
		maxInflight  = flag.Int("max-inflight", 0, "admission: max requests handled at once, excess shed 503 (0 = unlimited)")
		readAhead    = flag.Int("read-ahead", 0, "parse up to N pipelined requests ahead per connection while the handler runs (responses stay in order; 0 = read one at a time)")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request read deadline once its first byte arrives (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline on SIGINT/SIGTERM before force-closing")
		maxReplicas  = flag.Int("max-replicas", 256, "serverpool: max resident per-connection replicas (LRU beyond)")
		maxTmplB     = flag.Int64("max-template-bytes", 0, "serverpool: replica template memory budget in bytes (0 = unbudgeted); LRU replicas are evicted to stay under it")
		clientAff    = flag.Bool("client-affine", false, "serverpool: key replicas by remote host instead of connection")
	)
	flag.Parse()

	if *pprofSrv != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				fmt.Fprintln(os.Stderr, "bsoap-server: pprof endpoint:", err)
			}
		}()
		fmt.Printf("bsoap-server: pprof on http://%s/debug/pprof/\n", *pprofSrv)
	}

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "bsoap-server: ", log.LstdFlags)
	}

	if *traceOn {
		trace.Enable()
	}
	if *slowThresh > 0 {
		trace.SetSlowThreshold(*slowThresh)
	}
	if *slowQuant > 0 {
		trace.SetSlowQuantile(*slowQuant)
	}
	sm := transport.NewServerMetrics()

	var (
		ep  *server.SOAP
		rt  *serverpool.Runtime
		rec *server.Recorder
	)
	opts := transport.ServerOptions{
		Logger: logger, Metrics: sm,
		MaxConns: *maxConns, MaxInFlight: *maxInflight, RequestTimeout: *reqTimeout,
		ReadAhead: *readAhead,
	}

	var svcName, svcNS string
	var ops []opSpec
	switch *mode {
	case "discard":
		opts.Respond = false // Send Time measurements never wait
	case "record":
		rec = server.NewRecorder(*recCap)
		opts.Handler = rec.HTTPHandler()
		opts.Respond = true
	case "sum":
		svcName, svcNS, ops = "Calc", "urn:calc", sumOps()
	case "mcs":
		svcName, svcNS = "MetadataCatalog", mcs.Namespace
	case "flock":
		svcName, svcNS, ops = "FlockCollector", classad.Namespace, flockOps(logger)
	case "bench":
		svcName, svcNS, ops = "Bench", workload.Namespace, benchOps()
	default:
		fmt.Fprintf(os.Stderr, "bsoap-server: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	soapMode := svcName != ""
	if soapMode {
		catalog := mcs.NewCatalog([]string{"owner", "experiment", "format", "site"})
		if *locked {
			ep = server.New(server.Options{DifferentialDeserialization: *diff})
			if *mode == "mcs" {
				mcs.Bind(ep, catalog)
			}
			for _, o := range ops {
				ep.Register(o.schema, o.factory())
			}
			opts.Handler = ep.HTTPHandler()
		} else {
			rt = serverpool.New(serverpool.Options{
				DifferentialDeserialization: *diff,
				Delta:                       *delta,
				MaxReplicas:                 *maxReplicas,
				MaxTemplateBytes:            *maxTmplB,
				SelfCheck:                   *selfchk,
				Metrics:                     sm,
				Affinity:                    affinity(*clientAff),
			})
			if *mode == "mcs" {
				mcs.BindRuntime(rt, catalog)
			}
			for _, o := range ops {
				rt.Register(o.schema, o.factory)
			}
			opts.Handler = rt.HTTPHandler()
		}
		opts.Respond = *respond
	}

	srv, err := transport.Listen(*addr, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsoap-server:", err)
		os.Exit(1)
	}
	if soapMode {
		schemas := make([]*soapdec.Schema, 0, len(ops))
		for _, o := range ops {
			schemas = append(schemas, o.schema)
		}
		if *mode == "mcs" {
			schemas = []*soapdec.Schema{mcs.AddSchema(), mcs.QuerySchema(), mcs.DeleteSchema()}
		}
		doc, werr := wsdl.Generate(&wsdl.Service{
			Name: svcName, Namespace: svcNS, Endpoint: "http://" + srv.Addr() + "/", Operations: schemas,
		})
		if werr != nil {
			log.Printf("bsoap-server: wsdl generation failed: %v", werr)
		} else if ep != nil {
			ep.SetWSDL(doc)
		} else {
			rt.SetWSDL(doc)
		}
	}
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/", sm.StatsHandler())
		mux.Handle("/metrics", sm.PrometheusHandler())
		mux.Handle("/debug/trace", trace.Handler())
		mux.Handle("/debug/trace/slow", trace.SlowHandler())
		mux.Handle("/debug/health", health.NewProbe("bsoap-server").Handler())
		if rt != nil {
			mux.Handle("/debug/templates", rt.TemplatesHandler())
		}
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintln(os.Stderr, "bsoap-server: metrics endpoint:", err)
			}
		}()
		fmt.Printf("bsoap-server: metrics on http://%s/ (JSON), /metrics (Prometheus), /debug/trace, /debug/trace/slow, /debug/health, /debug/templates\n", *metrics)
	}
	runtimeName := "serverpool"
	if !soapMode {
		runtimeName = *mode
	} else if *locked {
		runtimeName = "locked"
	}
	fmt.Printf("bsoap-server: mode=%s runtime=%s listening on %s\n", *mode, runtimeName, srv.Addr())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful drain: stop accepting, let in-flight requests finish. A
	// second signal (or the drain deadline) hard-stops.
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "bsoap-server: second signal, hard stop")
		srv.Close()
		os.Exit(1)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	drainErr := srv.Shutdown(ctx)
	cancel()
	aborted := sm.Snapshot().DrainAborted
	if drainErr != nil {
		fmt.Printf("bsoap-server: drain timed out after %s (%d in-flight requests aborted)\n", *drainTimeout, aborted)
	} else {
		fmt.Printf("bsoap-server: drain complete (%d in-flight requests aborted)\n", aborted)
	}

	fmt.Printf("bsoap-server: served %d requests, %d body bytes\n", srv.Requests(), srv.Bytes())
	if rec != nil {
		fmt.Printf("bsoap-server: recorded %d bodies (%d dropped by -record-limit)\n", rec.Count(), rec.Dropped())
	}
	switch {
	case ep != nil:
		st := ep.Stats()
		fmt.Printf("bsoap-server: decodes: %d full parses, %d differential (%d values reparsed)\n",
			st.FullParses, st.DiffDecodes, st.ValuesReparsed)
		rs := ep.ResponseStats()
		fmt.Printf("bsoap-server: responses: %d first-time, %d content matches, %d structural\n",
			rs.FirstTimeSends, rs.ContentMatches, rs.StructuralMatches)
	case rt != nil:
		st := rt.Stats()
		fmt.Printf("bsoap-server: decodes: %d full parses, %d differential (%d values reparsed), %d self-check fails\n",
			st.FullParses, st.DiffDecodes, st.ValuesReparsed, st.SelfCheckFails)
		if st.DeltaApplied > 0 || st.DeltaSyncs > 0 || st.DeltaResyncs > 0 {
			fmt.Printf("bsoap-server: delta: %d patches applied, %d base syncs, %d resyncs\n",
				st.DeltaApplied, st.DeltaSyncs, st.DeltaResyncs)
		}
		fmt.Printf("bsoap-server: replicas: %d resident, %d evicted, %d template keys evicted\n",
			st.Replicas, st.ReplicaEvictions, st.DDSKeyEvictions)
		if ss := sm.Snapshot(); ss.ReplicaBudgetEvictions > 0 || ss.TemplateBytesHighWater > 0 {
			fmt.Printf("bsoap-server: template memory: %.1f KB resident (high water %.1f KB), %d budget evictions\n",
				float64(ss.TemplateBytes)/1e3, float64(ss.TemplateBytesHighWater)/1e3, ss.ReplicaBudgetEvictions)
		}
		rs := rt.ResponseStats()
		fmt.Printf("bsoap-server: responses: %d first-time, %d content matches, %d structural\n",
			rs.FirstTimeSends, rs.ContentMatches, rs.StructuralMatches)
	}
	if drainErr != nil {
		os.Exit(1)
	}
}

func affinity(clientAffine bool) serverpool.Affinity {
	if clientAffine {
		return serverpool.AffinityClient
	}
	return serverpool.AffinityConn
}

// opSpec couples an operation schema with a per-replica handler factory
// (the serverpool runtime instantiates one handler per replica; the
// locked endpoint calls the factory once).
type opSpec struct {
	schema  *soapdec.Schema
	factory serverpool.HandlerFactory
}

// sumOps declares sum(values: double[]) → sumResponse(total).
func sumOps() []opSpec {
	schema := &soapdec.Schema{
		Namespace: "urn:calc",
		Op:        "sum",
		Params:    []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
	}
	return []opSpec{{schema: schema, factory: func() server.Handler {
		resp := wire.NewMessage("urn:calc", "sumResponse")
		total := resp.AddDouble("total", 0)
		return func(req *wire.Message) (*wire.Message, error) {
			var s float64
			for i := 0; i < req.NumLeaves(); i++ {
				s += req.LeafDouble(i)
			}
			total.Set(s)
			return resp, nil
		}
	}}}
}

// flockOps accepts Condor flock updates and tracks pool load.
func flockOps(logger *log.Logger) []opSpec {
	schema := &soapdec.Schema{
		Namespace: classad.Namespace,
		Op:        "flockUpdate",
		Params: []soapdec.ParamSpec{
			{Name: "pool", Type: wire.TString},
			{Name: "ads", Type: wire.ArrayOf(classad.AdType())},
		},
	}
	return []opSpec{{schema: schema, factory: func() server.Handler {
		resp := wire.NewMessage(classad.Namespace, "flockUpdateResponse")
		accepted := resp.AddInt("accepted", 0)
		return func(req *wire.Message) (*wire.Message, error) {
			pool, ads, err := classad.DecodeAds(req)
			if err != nil {
				return nil, err
			}
			busy := 0
			var load float64
			for _, ad := range ads {
				if ad.State == 1 {
					busy++
				}
				load += ad.LoadAvg
			}
			if logger != nil {
				logger.Printf("flock: pool %q: %d ads, %d busy, avg load %.2f",
					pool, len(ads), busy, load/float64(max(1, len(ads))))
			}
			accepted.Set(int32(len(ads)))
			return resp, nil
		}
	}}}
}

// benchOps acknowledges the loadgen workload operations: each response
// reports the element count received, through a fixed-shape message
// that gives the response stub content/structural matches.
func benchOps() []opSpec {
	ack := func(respOp string) serverpool.HandlerFactory {
		return func() server.Handler {
			resp := wire.NewMessage(workload.Namespace, respOp)
			n := resp.AddInt("n", 0)
			return func(req *wire.Message) (*wire.Message, error) {
				n.Set(int32(req.NumLeaves()))
				return resp, nil
			}
		}
	}
	return []opSpec{
		{schema: &soapdec.Schema{
			Namespace: workload.Namespace, Op: "sendDoubles",
			Params: []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
		}, factory: ack("sendDoublesResponse")},
		{schema: &soapdec.Schema{
			Namespace: workload.Namespace, Op: "sendInts",
			Params: []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TInt)}},
		}, factory: ack("sendIntsResponse")},
		{schema: &soapdec.Schema{
			Namespace: workload.Namespace, Op: "sendMIOs",
			Params: []soapdec.ParamSpec{{Name: "mios", Type: wire.ArrayOf(workload.MIOType())}},
		}, factory: ack("sendMIOsResponse")},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
