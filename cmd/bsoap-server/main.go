// Command bsoap-server runs the receiving side of the experiments and
// examples.
//
// Modes:
//
//	-mode discard   read and drop requests without parsing (the paper's
//	                dummy server; pair with bsoap-bench -tcp)
//	-mode sum       SOAP service summing a double array
//	-mode mcs       Metadata Catalog Service over an in-memory catalog
//	-mode flock     Condor flock collector printing received ClassAd stats
//	-mode record    keep every accepted request body in memory and
//	                answer 200 (conformance/chaos runs; bound retention
//	                with -record-limit)
//
// With -diff, SOAP modes decode requests through differential
// deserialization and report decode statistics on shutdown.
//
// -metrics :8124 exposes the server's registry while it runs: JSON at
// http://localhost:8124/, Prometheus text exposition at /metrics, and
// the flight-recorder ring at /debug/trace (enable it with -trace to
// record the response path's template decisions).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof flag: live heap/alloc profiles
	"os"
	"os/signal"
	"syscall"

	"bsoap/internal/classad"
	"bsoap/internal/mcs"
	"bsoap/internal/server"
	"bsoap/internal/soapdec"
	"bsoap/internal/trace"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
	"bsoap/internal/wsdl"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9999", "listen address")
		mode     = flag.String("mode", "discard", "discard | sum | mcs | flock | record")
		respond  = flag.Bool("respond", true, "answer every request (discard mode defaults to silent)")
		diff     = flag.Bool("diff", true, "use differential deserialization in SOAP modes")
		quiet    = flag.Bool("quiet", false, "suppress per-connection error logging")
		recCap   = flag.Int("record-limit", 10000, "record mode: max bodies kept in memory (0 = unbounded)")
		pprofSrv = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) — verify the receive path's allocation profile under load")
		metrics  = flag.String("metrics", "", "serve server metrics on this address (e.g. :8124): JSON at /, Prometheus at /metrics, /debug/trace")
		traceOn  = flag.Bool("trace", false, "enable the flight recorder (records the response path's template decisions)")
	)
	flag.Parse()

	if *pprofSrv != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				fmt.Fprintln(os.Stderr, "bsoap-server: pprof endpoint:", err)
			}
		}()
		fmt.Printf("bsoap-server: pprof on http://%s/debug/pprof/\n", *pprofSrv)
	}

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "bsoap-server: ", log.LstdFlags)
	}

	if *traceOn {
		trace.Enable()
	}
	sm := transport.NewServerMetrics()

	var endpoint *server.SOAP
	var rec *server.Recorder
	opts := transport.ServerOptions{Logger: logger, Metrics: sm}
	switch *mode {
	case "discard":
		opts.Respond = false // Send Time measurements never wait
	case "record":
		rec = server.NewRecorder(*recCap)
		opts.Handler = rec.HTTPHandler()
		opts.Respond = true
	case "sum":
		endpoint = newSumEndpoint(*diff)
	case "mcs":
		endpoint = newMCSEndpoint(*diff)
	case "flock":
		endpoint = newFlockEndpoint(*diff)
	default:
		fmt.Fprintf(os.Stderr, "bsoap-server: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if endpoint != nil {
		opts.Handler = endpoint.HTTPHandler()
		opts.Respond = *respond
	}

	srv, err := transport.Listen(*addr, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsoap-server:", err)
		os.Exit(1)
	}
	if endpoint != nil {
		switch *mode {
		case "sum":
			installWSDL(endpoint, "Calc", "urn:calc", srv.Addr(), []*soapdec.Schema{{
				Namespace: "urn:calc", Op: "sum",
				Params: []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
			}})
		case "mcs":
			installWSDL(endpoint, "MetadataCatalog", mcs.Namespace, srv.Addr(),
				[]*soapdec.Schema{mcs.AddSchema(), mcs.QuerySchema(), mcs.DeleteSchema()})
		case "flock":
			installWSDL(endpoint, "FlockCollector", classad.Namespace, srv.Addr(),
				[]*soapdec.Schema{{
					Namespace: classad.Namespace, Op: "flockUpdate",
					Params: []soapdec.ParamSpec{
						{Name: "pool", Type: wire.TString},
						{Name: "ads", Type: wire.ArrayOf(classad.AdType())},
					},
				}})
		}
	}
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/", sm.StatsHandler())
		mux.Handle("/metrics", sm.PrometheusHandler())
		mux.Handle("/debug/trace", trace.Handler())
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintln(os.Stderr, "bsoap-server: metrics endpoint:", err)
			}
		}()
		fmt.Printf("bsoap-server: metrics on http://%s/ (JSON), /metrics (Prometheus), /debug/trace\n", *metrics)
	}
	fmt.Printf("bsoap-server: mode=%s listening on %s\n", *mode, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	srv.Close()
	fmt.Printf("bsoap-server: served %d requests, %d body bytes\n", srv.Requests(), srv.Bytes())
	if rec != nil {
		fmt.Printf("bsoap-server: recorded %d bodies (%d dropped by -record-limit)\n", rec.Count(), rec.Dropped())
	}
	if endpoint != nil {
		st := endpoint.Stats()
		fmt.Printf("bsoap-server: decodes: %d full parses, %d differential (%d values reparsed)\n",
			st.FullParses, st.DiffDecodes, st.ValuesReparsed)
		rs := endpoint.ResponseStats()
		fmt.Printf("bsoap-server: responses: %d first-time, %d content matches, %d structural\n",
			rs.FirstTimeSends, rs.ContentMatches, rs.StructuralMatches)
	}
}

// installWSDL publishes a GET-able service description for the
// endpoint's operations.
func installWSDL(ep *server.SOAP, name, ns, addr string, ops []*soapdec.Schema) {
	doc, err := wsdl.Generate(&wsdl.Service{
		Name: name, Namespace: ns, Endpoint: "http://" + addr + "/", Operations: ops,
	})
	if err != nil {
		log.Printf("bsoap-server: wsdl generation failed: %v", err)
		return
	}
	ep.SetWSDL(doc)
}

// newSumEndpoint registers sum(values: double[]) → sumResponse(total).
func newSumEndpoint(diff bool) *server.SOAP {
	ep := server.New(server.Options{DifferentialDeserialization: diff})
	resp := wire.NewMessage("urn:calc", "sumResponse")
	total := resp.AddDouble("total", 0)
	schema := &soapdec.Schema{
		Namespace: "urn:calc",
		Op:        "sum",
		Params:    []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
	}
	ep.Register(schema, func(req *wire.Message) (*wire.Message, error) {
		var s float64
		for i := 0; i < req.NumLeaves(); i++ {
			s += req.LeafDouble(i)
		}
		total.Set(s)
		return resp, nil
	})
	return ep
}

// newMCSEndpoint serves the metadata catalog over the standard schema.
func newMCSEndpoint(diff bool) *server.SOAP {
	ep := server.New(server.Options{DifferentialDeserialization: diff})
	catalog := mcs.NewCatalog([]string{"owner", "experiment", "format", "site"})
	mcs.Bind(ep, catalog)
	return ep
}

// newFlockEndpoint accepts Condor flock updates and tracks pool load.
func newFlockEndpoint(diff bool) *server.SOAP {
	ep := server.New(server.Options{DifferentialDeserialization: diff})
	resp := wire.NewMessage(classad.Namespace, "flockUpdateResponse")
	accepted := resp.AddInt("accepted", 0)
	ep.Register(&soapdec.Schema{
		Namespace: classad.Namespace,
		Op:        "flockUpdate",
		Params: []soapdec.ParamSpec{
			{Name: "pool", Type: wire.TString},
			{Name: "ads", Type: wire.ArrayOf(classad.AdType())},
		},
	}, func(req *wire.Message) (*wire.Message, error) {
		pool, ads, err := classad.DecodeAds(req)
		if err != nil {
			return nil, err
		}
		busy := 0
		var load float64
		for _, ad := range ads {
			if ad.State == 1 {
				busy++
			}
			load += ad.LoadAvg
		}
		log.Printf("flock: pool %q: %d ads, %d busy, avg load %.2f",
			pool, len(ads), busy, load/float64(max(1, len(ads))))
		accepted.Set(int32(len(ads)))
		return resp, nil
	})
	return ep
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
