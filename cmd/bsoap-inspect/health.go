// `bsoap-inspect health` fetches one or more /debug/health endpoints
// and renders each process's build identity, uptime, and tracing state
// on a few lines — the first command to run against a misbehaving
// deployment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"time"

	"bsoap/internal/health"
)

// runHealth implements `bsoap-inspect health`.
func runHealth(args []string) {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8123/debug/health", "health endpoint (positional URLs override)")
	_ = fs.Parse(args)
	urls := fs.Args()
	if len(urls) == 0 {
		urls = []string{*url}
	}
	for i, u := range urls {
		if i > 0 {
			fmt.Println()
		}
		body, err := fetch(u)
		if err != nil {
			fatal(err)
		}
		var r health.Report
		if err := json.Unmarshal(body, &r); err != nil {
			fatal(fmt.Errorf("decoding %s: %w", u, err))
		}
		printHealth(u, &r)
	}
}

func printHealth(url string, r *health.Report) {
	build := r.GoVersion
	if r.Revision != "" {
		rev := r.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		build += ", rev " + rev
		if r.DirtyBuild {
			build += "+dirty"
		}
	}
	fmt.Printf("%s (%s): pid %d, up %v, %d goroutines (%s)\n",
		r.Program, url, r.PID,
		(time.Duration(r.UptimeSeconds * float64(time.Second))).Round(time.Second),
		r.Goroutines, build)
	t := r.Trace
	state := "off"
	if t.Enabled {
		state = "on"
	}
	fmt.Printf("  trace: %s — %d events recorded, %d spans, ring %d\n",
		state, t.Recorded, t.Spans, t.RingSize)
	switch t.SlowMode {
	case "off":
		fmt.Printf("  slow capture: off\n")
	default:
		fmt.Printf("  slow capture: %s, threshold %v, %d captured (ring %d)\n",
			t.SlowMode, time.Duration(t.SlowThresholdNs), t.SlowCaptured, t.SlowRingSize)
	}
}
