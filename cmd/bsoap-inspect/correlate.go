// `bsoap-inspect trace -correlate clientURL serverURL` merges the two
// processes' flight-recorder rings into cross-process call timelines.
//
// The client propagates its span id over the X-BSoap-Trace header; the
// server adopts it, so both rings record events under the same id. A
// server request group counts as correlated only when it contains a
// KindServerSpan link event — that event is recorded exclusively for
// propagated spans, which keeps locally numbered spans of untraced
// clients (both processes count spans from 1) from colliding.
//
// For every merged call the correlator sums each side's KindStage
// events into a per-stage breakdown and checks the physical nesting
// invariant: the server's stage total (queue→write) happens inside the
// client's wire window, so it can never exceed the client's stage total.
// A violation, an orphaned server span (link event but no client
// events), or zero merged calls exits nonzero — check.sh leans on that.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"bsoap/internal/trace"
)

// bracketSlackNs absorbs measurement noise when comparing durations
// from two different processes. Clock-rate drift is ppm-scale, but the
// stage intervals are wall-clock and include goroutine scheduling
// delay: under CPU contention the server can be descheduled for
// milliseconds between its last write syscall and the stage's closing
// clock read, extending the measured interval past the client's
// already-closed window. The check exists to catch attribution bugs —
// double-counted stages, wrong units — which overshoot by orders of
// magnitude, so generous slack keeps the gate reliable without
// blunting it.
const bracketSlackNs = int64(25 * time.Millisecond)

// sideEvents is one span's events from one ring, recording order.
type sideEvents struct {
	evs []trace.EventJSON
}

func (s *sideEvents) stageSums() (per map[trace.Stage]int64, total int64) {
	per = make(map[trace.Stage]int64)
	for _, ev := range s.evs {
		if k, _ := trace.KindFromString(ev.Kind); k == trace.KindStage {
			per[trace.Stage(ev.A)] += ev.B
			total += ev.B
		}
	}
	return per, total
}

// runCorrelate fetches both rings, merges them, prints the timelines,
// and returns the process exit code.
func runCorrelate(w io.Writer, clientURL, serverURL string) int {
	cd, err := fetchDump(clientURL)
	if err != nil {
		fatal(err)
	}
	sd, err := fetchDump(serverURL)
	if err != nil {
		fatal(err)
	}

	client := groupSpans(cd)
	server := groupSpans(sd)

	// Server groups linked to a client span via KindServerSpan; only
	// these may be correlated (or declared orphaned). A server ring that
	// outlives several client runs holds one instance per run under the
	// same span id (every client counts spans from 1) — each instance
	// begins at its own link event, so keep only the newest one and pair
	// it with the client ring, which is always from the newest run.
	linked := make(map[uint64]*trace.EventJSON, len(server))
	collided := 0
	for span, g := range server {
		last := -1
		anchors := 0
		for i := range g.evs {
			if k, _ := trace.KindFromString(g.evs[i].Kind); k == trace.KindServerSpan {
				last = i
				anchors++
			}
		}
		if last < 0 {
			continue
		}
		if anchors > 1 {
			collided++
			// The newest instance starts just before its link event: the
			// transport records the server_queue stage, then the runtime
			// adopts the span.
			start := last
			for start > 0 {
				prev := g.evs[start-1]
				if k, _ := trace.KindFromString(prev.Kind); k == trace.KindStage && trace.Stage(prev.A) == trace.StageServerQueue {
					start--
					continue
				}
				break
			}
			g.evs = g.evs[start:]
			for i := range g.evs {
				if k, _ := trace.KindFromString(g.evs[i].Kind); k == trace.KindServerSpan {
					last = i
					break
				}
			}
		}
		linked[span] = &g.evs[last]
	}
	if collided > 0 {
		fmt.Fprintf(w, "note: %d spans held multiple server instances (server ring predates this client run); newest used\n", collided)
	}

	var merged, orphaned []uint64
	for span := range linked {
		if _, ok := client[span]; ok {
			merged = append(merged, span)
		} else {
			orphaned = append(orphaned, span)
		}
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a] < merged[b] })
	sort.Slice(orphaned, func(a, b int) bool { return orphaned[a] < orphaned[b] })

	violations := 0
	for _, span := range merged {
		if !printMerged(w, span, client[span], server[span], linked[span], cd.Ops, sd.Ops) {
			violations++
		}
	}

	fmt.Fprintf(w, "\ncorrelated %d calls, %d orphaned server spans, %d bracket violations\n",
		len(merged), len(orphaned), violations)
	for _, span := range orphaned {
		fmt.Fprintf(w, "  orphaned server span %d (link present, no client events — client ring lapped?)\n", span)
	}
	if len(merged) == 0 || len(orphaned) > 0 || violations > 0 {
		return 1
	}
	return 0
}

// printMerged renders one correlated call and reports whether the
// server's stage total nests inside the client's (the bracket check).
func printMerged(w io.Writer, span uint64, c, s *sideEvents, link *trace.EventJSON, cops, sops map[int64]string) bool {
	fmt.Fprintf(w, "\ncall %d (server sub-span %d, conn %d):\n", span, link.A, link.B)

	cper, ctotal := c.stageSums()
	sper, stotal := s.stageSums()
	fmt.Fprintf(w, "  client stages: %s  (total %v)\n", formatStages(cper), time.Duration(ctotal).Round(time.Microsecond))
	fmt.Fprintf(w, "  server stages: %s  (total %v)\n", formatStages(sper), time.Duration(stotal).Round(time.Microsecond))

	ok := stotal <= ctotal+bracketSlackNs
	if !ok {
		fmt.Fprintf(w, "  BRACKET VIOLATION: server stage total %v exceeds client stage total %v\n",
			time.Duration(stotal), time.Duration(ctotal))
	}

	// Merged timeline: each side's events in recording order, times
	// relative to that side's first event (the two processes' clocks are
	// not comparable, so no cross-side time axis is implied).
	fmt.Fprintln(w, "  timeline:")
	printSide(w, "client", c, cops)
	printSide(w, "server", s, sops)
	return ok
}

func printSide(w io.Writer, side string, s *sideEvents, ops map[int64]string) {
	if len(s.evs) == 0 {
		return
	}
	t0 := s.evs[0].Time
	for _, ev := range s.evs {
		dt := time.Duration(ev.Time - t0)
		fmt.Fprintf(w, "    [%s] %+10v  %s\n", side, dt.Round(time.Microsecond), renderEvent(ev, ops))
	}
}

// formatStages renders a per-stage duration map in stage-enum order.
func formatStages(per map[trace.Stage]int64) string {
	if len(per) == 0 {
		return "(none recorded)"
	}
	out := ""
	for st := trace.Stage(0); int(st) < trace.StageCount; st++ {
		ns, ok := per[st]
		if !ok {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%s %v", st, time.Duration(ns).Round(time.Microsecond))
	}
	return out
}

// groupSpans buckets a dump's events by span, dropping span 0 (events
// not bound to any call).
func groupSpans(d *trace.Dump) map[uint64]*sideEvents {
	out := make(map[uint64]*sideEvents)
	for _, ev := range d.Events {
		if ev.Span == 0 {
			continue
		}
		g := out[ev.Span]
		if g == nil {
			g = &sideEvents{}
			out[ev.Span] = g
		}
		g.evs = append(g.evs, ev)
	}
	return out
}

func fetchDump(url string) (*trace.Dump, error) {
	body, err := fetch(url)
	if err != nil {
		return nil, err
	}
	var d trace.Dump
	if err := json.Unmarshal(body, &d); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &d, nil
}
