// Subcommands that inspect a *running* process over its -metrics
// endpoint:
//
//	bsoap-inspect trace     -url http://127.0.0.1:8123/debug/trace
//	bsoap-inspect metrics   -url http://127.0.0.1:8123/metrics
//	bsoap-inspect templates http://127.0.0.1:8123/debug/templates ...
//
// `trace` fetches the flight-recorder ring and renders it as per-call
// timelines — one line per recorded event, grouped by span, with the
// binary A/B/C arguments decoded back into the engine's vocabulary
// ("field 7 grew 12→14", "stole 2 B pad from field 8"). `metrics`
// fetches a Prometheus scrape and validates it against the text
// exposition format, exiting nonzero on malformed output. `templates`
// fetches one or more /debug/templates dumps — client pool and server
// runtime serve the same uniform document — and renders each registry's
// entries and budget accounting.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/promtext"
	"bsoap/internal/replica"
	"bsoap/internal/trace"
)

// runTrace implements `bsoap-inspect trace`.
func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	var (
		url       = fs.String("url", "http://127.0.0.1:8123/debug/trace", "flight-recorder endpoint")
		clear     = fs.Bool("clear", false, "clear the ring after dumping")
		spans     = fs.Int("spans", 0, "show only the last N call spans (0 = all)")
		follow    = fs.Bool("follow", false, "poll the ring incrementally (?since= cursor) and stream new events")
		interval  = fs.Duration("interval", time.Second, "poll interval with -follow")
		correlate = fs.Bool("correlate", false, "merge a client and a server ring by span: trace -correlate clientURL serverURL")
	)
	_ = fs.Parse(args)

	if *correlate {
		urls := fs.Args()
		if len(urls) != 2 {
			fatal(fmt.Errorf("trace -correlate needs exactly two endpoints: clientURL serverURL"))
		}
		os.Exit(runCorrelate(os.Stdout, urls[0], urls[1]))
	}
	if *follow {
		followTrace(*url, *interval)
		return
	}

	u := *url
	if *clear {
		u += "?clear=1"
	}
	body, err := fetch(u)
	if err != nil {
		fatal(err)
	}
	var d trace.Dump
	if err := json.Unmarshal(body, &d); err != nil {
		fatal(fmt.Errorf("decoding %s: %w", *url, err))
	}
	printTimelines(os.Stdout, &d, *spans)
}

// followTrace polls the endpoint with the ?since= cursor, printing only
// events recorded after the previous poll, until interrupted.
func followTrace(url string, interval time.Duration) {
	sep := "?"
	if strings.ContainsRune(url, '?') {
		sep = "&"
	}
	var cursor uint64
	for {
		body, err := fetch(fmt.Sprintf("%s%ssince=%d", url, sep, cursor))
		if err != nil {
			fatal(err)
		}
		var d trace.Dump
		if err := json.Unmarshal(body, &d); err != nil {
			fatal(fmt.Errorf("decoding %s: %w", url, err))
		}
		if cursor > 0 && d.Recorded < cursor {
			// The ring was cleared under us: restart from its beginning.
			fmt.Println("-- ring cleared, cursor reset --")
			cursor = 0
			continue
		}
		for _, ev := range d.Events {
			fmt.Printf("%10d  span %-6d %s\n", ev.Seq, ev.Span, renderEvent(ev, d.Ops))
		}
		cursor = d.Next
		time.Sleep(interval)
	}
}

// printTimelines groups a dump's events by span and renders each call's
// decision trail in recording order.
func printTimelines(w io.Writer, d *trace.Dump, limit int) {
	fmt.Fprintf(w, "trace: %d events recorded, %d retained, %d overwritten\n",
		d.Recorded, len(d.Events), d.Dropped)

	// Span 0 carries events not bound to any call (fresh dials).
	bySpan := make(map[uint64][]trace.EventJSON)
	var order []uint64
	for _, ev := range d.Events {
		if _, seen := bySpan[ev.Span]; !seen {
			order = append(order, ev.Span)
		}
		bySpan[ev.Span] = append(bySpan[ev.Span], ev)
	}
	sort.Slice(order, func(a, b int) bool {
		return bySpan[order[a]][0].Seq < bySpan[order[b]][0].Seq
	})
	if limit > 0 {
		calls := 0
		for _, s := range order {
			if s != 0 {
				calls++
			}
		}
		for calls > limit && len(order) > 0 {
			if order[0] != 0 {
				calls--
			}
			delete(bySpan, order[0])
			order = order[1:]
		}
	}

	for _, span := range order {
		evs := bySpan[span]
		if span == 0 {
			fmt.Fprintf(w, "\nunbound events (no call span):\n")
		} else {
			fmt.Fprintf(w, "\ncall %d:\n", span)
		}
		t0 := evs[0].Time
		for _, ev := range evs {
			dt := time.Duration(ev.Time - t0)
			fmt.Fprintf(w, "  %+10v  %s\n", dt.Round(time.Microsecond), renderEvent(ev, d.Ops))
		}
	}
}

// shortMatch maps core.MatchKind values to the paper's abbreviations.
func shortMatch(a int64) string {
	switch core.MatchKind(a) {
	case core.FirstTime:
		return "FTS"
	case core.ContentMatch:
		return "MCM"
	case core.StructuralMatch:
		return "PSM"
	case core.PartialMatch:
		return "PaSM"
	case core.FullSerialization:
		return "full serialization"
	}
	return "?"
}

// renderEvent decodes one event's A/B/C arguments per its kind.
func renderEvent(ev trace.EventJSON, ops map[int64]string) string {
	op := func(id int64) string {
		if name, ok := ops[id]; ok {
			return name
		}
		return fmt.Sprintf("op#%d", id)
	}
	k, _ := trace.KindFromString(ev.Kind)
	switch k {
	case trace.KindCallStart:
		return fmt.Sprintf("start %s, %d dirty leaves", op(ev.A), ev.B)
	case trace.KindMatch:
		s := fmt.Sprintf("classified %s (%s)", shortMatch(ev.A), core.MatchKind(ev.A))
		if ev.B == 1 {
			s += " — degraded: suspect template discarded"
		}
		return s
	case trace.KindRewrite:
		if ev.B == ev.C {
			return fmt.Sprintf("field %d rewritten in place (%d B)", ev.A, ev.B)
		}
		return fmt.Sprintf("field %d grew %d→%d", ev.A, ev.B, ev.C)
	case trace.KindTagShift:
		return fmt.Sprintf("field %d closing tag shifted (serlen %d of width %d)", ev.A, ev.B, ev.C)
	case trace.KindShift:
		return fmt.Sprintf("shifted %d B within chunk %d (field %d)", ev.B, ev.C, ev.A)
	case trace.KindSteal:
		return fmt.Sprintf("stole %d B pad from field %d (for field %d)", ev.B, ev.C, ev.A)
	case trace.KindChunkGrow:
		return fmt.Sprintf("chunk %d reallocated (len %d, needed %d more)", ev.C, ev.A, ev.B)
	case trace.KindChunkSplit:
		return fmt.Sprintf("chunk %d split at offset %d (len %d)", ev.C, ev.B, ev.A)
	case trace.KindTemplateBuild:
		return fmt.Sprintf("template built for %s (%d B)", op(ev.A), ev.B)
	case trace.KindTemplateSuspect:
		return fmt.Sprintf("template %s marked suspect (send failed mid-template)", op(ev.A))
	case trace.KindTemplateRebind:
		return fmt.Sprintf("template %s rebound to a new message", op(ev.A))
	case trace.KindStaleRebind:
		return fmt.Sprintf("forced full rewrite of %s (returned to a stale replica)", op(ev.A))
	case trace.KindPoolCheckout:
		if ev.A == 1 {
			return "connection checked out (waited for a free slot)"
		}
		return "connection checked out"
	case trace.KindPoolRetry:
		return fmt.Sprintf("send retry #%d after connection repair", ev.A)
	case trace.KindDial, trace.KindRedial:
		verb := "dial"
		if k == trace.KindRedial {
			verb = "redial"
		}
		if ev.A == 1 {
			return fmt.Sprintf("%s ok in %v", verb, time.Duration(ev.B).Round(time.Microsecond))
		}
		return fmt.Sprintf("%s FAILED after %v", verb, time.Duration(ev.B).Round(time.Microsecond))
	case trace.KindDeadline:
		if ev.A == 1 {
			return "read deadline hit"
		}
		return "write deadline hit"
	case trace.KindCallEnd:
		return fmt.Sprintf("done: %s, %d B on wire (%d B serialized)", shortMatch(ev.A), ev.B, ev.C)
	case trace.KindCallErr:
		if ev.A < 0 {
			return "FAILED before reaching the engine (no healthy connection)"
		}
		return fmt.Sprintf("FAILED after %s, %d B attempted", shortMatch(ev.A), ev.B)
	case trace.KindOverlayPortion:
		return fmt.Sprintf("overlay portion streamed: items [%d,%d) — %d B", ev.A, ev.A+ev.B, ev.C)
	case trace.KindAsyncSubmit:
		return fmt.Sprintf("async submit %s (%d in flight)", op(ev.A), ev.B)
	case trace.KindAsyncComplete:
		if ev.A == 1 {
			return fmt.Sprintf("async complete in %v", time.Duration(ev.B).Round(time.Microsecond))
		}
		return fmt.Sprintf("async FAILED after %v", time.Duration(ev.B).Round(time.Microsecond))
	case trace.KindReplicaEvict:
		reason := "lru"
		if ev.B == 1 {
			reason = "budget"
		}
		return fmt.Sprintf("replica entry %s evicted (%s, %d B released)", op(ev.A), reason, ev.C)
	case trace.KindServerSpan:
		return fmt.Sprintf("server adopted client span (sub-span %d, conn %d)", ev.A, ev.B)
	case trace.KindStage:
		return fmt.Sprintf("stage %s: %v", trace.Stage(ev.A), time.Duration(ev.B).Round(time.Microsecond))
	}
	return fmt.Sprintf("%s a=%d b=%d c=%d", ev.Kind, ev.A, ev.B, ev.C)
}

// runTemplates implements `bsoap-inspect templates`: it fetches one or
// more /debug/templates endpoints — the client pool's and the server
// runtime's serve the same uniform document — and renders each registry
// as a table of (op, signature, affinity, replicas, bytes, in-flight,
// last use), with the registry's budget accounting in the header.
func runTemplates(args []string) {
	fs := flag.NewFlagSet("templates", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8123/debug/templates", "template-dump endpoint (positional URLs override)")
	_ = fs.Parse(args)
	urls := fs.Args()
	if len(urls) == 0 {
		urls = []string{*url}
	}
	for i, u := range urls {
		if i > 0 {
			fmt.Println()
		}
		body, err := fetch(u)
		if err != nil {
			fatal(err)
		}
		var d replica.Dump
		if err := json.Unmarshal(body, &d); err != nil {
			fatal(fmt.Errorf("decoding %s: %w", u, err))
		}
		printTemplates(os.Stdout, u, &d)
	}
}

// printTemplates renders one registry dump.
func printTemplates(w io.Writer, url string, d *replica.Dump) {
	budget := "unbudgeted"
	if d.BudgetBytes > 0 {
		budget = fmt.Sprintf("budget %.1f KB", float64(d.BudgetBytes)/1e3)
	}
	fmt.Fprintf(w, "%s side (%s): %d entries, %.1f KB resident (high water %.1f KB, %s), evictions %d lru / %d budget\n",
		d.Side, url, d.Entries, float64(d.Bytes)/1e3, float64(d.HighWaterBytes)/1e3, budget,
		d.EvictionsLRU, d.EvictionsBudget)
	if len(d.Templates) == 0 {
		return
	}
	fmt.Fprintf(w, "  %-16s %-18s %-22s %8s %10s %9s %10s\n",
		"OP", "SIGNATURE", "AFFINITY", "REPLICAS", "BYTES", "IN-FLIGHT", "IDLE")
	for _, t := range d.Templates {
		op, sig := t.Op, t.Signature
		if op == "" {
			op = "-"
		}
		if sig == "" {
			sig = "-"
		}
		if len(sig) > 18 {
			sig = sig[:15] + "..."
		}
		fmt.Fprintf(w, "  %-16s %-18s %-22s %8d %10d %9d %9dms\n",
			op, sig, t.Affinity, t.Replicas, t.Bytes, t.InFlight, t.IdleMS)
	}
}

// runMetrics implements `bsoap-inspect metrics`.
func runMetrics(args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	var (
		url  = fs.String("url", "http://127.0.0.1:8123/metrics", "Prometheus scrape endpoint")
		dump = fs.Bool("dump", false, "also print the raw exposition text")
		get  = fs.String("get", "", "print one sample's value and exit (bare name or name{label=\"value\"})")
	)
	_ = fs.Parse(args)

	body, err := fetch(*url)
	if err != nil {
		fatal(err)
	}
	if *get != "" {
		vals, err := promtext.ReadValues(bytes.NewReader(body))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *url, err))
		}
		v, ok := vals[*get]
		if !ok {
			fatal(fmt.Errorf("%s: no sample %q", *url, *get))
		}
		fmt.Printf("%g\n", v)
		return
	}
	if *dump {
		os.Stdout.Write(body)
	}
	st, err := promtext.Validate(bytes.NewReader(body))
	if err != nil {
		fatal(fmt.Errorf("%s: invalid Prometheus exposition: %w", *url, err))
	}
	names := make([]string, 0, len(st.Names))
	for n := range st.Names {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("valid Prometheus exposition: %d families, %d samples\n", st.Families, st.Samples)
	for _, n := range names {
		fmt.Printf("  %s\n", n)
	}
}

func fetch(url string) ([]byte, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body, nil
}
