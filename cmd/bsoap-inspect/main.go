// Command bsoap-inspect visualizes a template's internals: the chunk
// map and the DUT table after a scripted sequence of sends. It is the
// debugging lens for the engine's layout decisions — stuffing widths,
// closing-tag positions, shift-driven splits.
//
//	bsoap-inspect -type doubles -n 8 -width max
//	bsoap-inspect -type mios -n 6 -script "touch:0.5,grow:1.0,touch:0.25"
//
// Three subcommands instead inspect a running process over its -metrics
// endpoint (see remote.go):
//
//	bsoap-inspect trace     -url http://127.0.0.1:8123/debug/trace
//	bsoap-inspect metrics   -url http://127.0.0.1:8123/metrics
//	bsoap-inspect templates http://127.0.0.1:8123/debug/templates \
//	                        http://127.0.0.1:8124/debug/templates
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bsoap/internal/core"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
	"bsoap/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			runTrace(os.Args[2:])
			return
		case "metrics":
			runMetrics(os.Args[2:])
			return
		case "templates":
			runTemplates(os.Args[2:])
			return
		case "health":
			runHealth(os.Args[2:])
			return
		}
	}
	var (
		typ    = flag.String("type", "doubles", "doubles | mios")
		n      = flag.Int("n", 8, "array elements")
		width  = flag.String("width", "exact", "stuffing: exact | intermediate | max")
		script = flag.String("script", "touch:0.5", "comma-separated steps: touch:<frac> | grow:<frac>")
		dump   = flag.Bool("dump", false, "also print the serialized message bytes")
	)
	flag.Parse()

	var policy core.WidthPolicy
	switch *width {
	case "exact":
	case "intermediate":
		policy = core.WidthPolicy{Int: 9, Double: 18}
	case "max":
		policy = core.WidthPolicy{Int: core.MaxWidth, Double: core.MaxWidth}
	default:
		fatal(fmt.Errorf("unknown width policy %q", *width))
	}

	var msg *wire.Message
	var touch, grow func(frac float64)
	switch *typ {
	case "doubles":
		w := workload.NewDoubles(*n, workload.FillMin)
		msg = w.Msg
		touch = w.TouchFraction
		grow = func(f float64) { w.GrowFraction(f, workload.MaxDouble) }
	case "mios":
		w := workload.NewMIOs(*n, workload.FillMin)
		msg = w.Msg
		touch = w.TouchDoublesFraction
		grow = func(f float64) {
			w.GrowFraction(f, workload.MaxInt, workload.MaxInt, workload.MaxDouble)
		}
	default:
		fatal(fmt.Errorf("unknown workload type %q", *typ))
	}

	stub := core.NewStub(core.Config{Width: policy}, transport.NewDiscardSink())
	ci, err := stub.Call(msg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("send 0: %s\n", ci.Match)

	for i, step := range strings.Split(*script, ",") {
		step = strings.TrimSpace(step)
		if step == "" {
			continue
		}
		parts := strings.SplitN(step, ":", 2)
		frac := 1.0
		if len(parts) == 2 {
			f, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				fatal(fmt.Errorf("step %q: %w", step, err))
			}
			frac = f
		}
		switch parts[0] {
		case "touch":
			touch(frac)
		case "grow":
			grow(frac)
		default:
			fatal(fmt.Errorf("unknown step %q (touch|grow)", parts[0]))
		}
		ci, err := stub.Call(msg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("send %d (%s): %s — %d rewritten, %d tag shifts, %d shifts, %d splits\n",
			i+1, step, ci.Match, ci.ValuesRewritten, ci.TagShifts, ci.Shifts, ci.Splits)
	}

	tpl := stub.Template(msg.Operation(), msg.Signature())
	if tpl == nil {
		fatal(fmt.Errorf("no template recorded"))
	}

	fmt.Printf("\nchunk map (%d chunks, %d bytes total):\n", tpl.Buffer().NumChunks(), tpl.Buffer().Len())
	idx := 0
	for c := tpl.Buffer().Head(); c != nil; c = c.Next() {
		fmt.Printf("  chunk %2d: len %6d  cap %6d  slack %5d  entries [%d,%d)\n",
			idx, c.Len(), c.Cap(), c.Slack(), c.EntryLo, c.EntryHi)
		idx++
	}

	tab := tpl.Table()
	fmt.Printf("\nDUT table (%d entries):\n", tab.Len())
	limit := tab.Len()
	if limit > 48 {
		limit = 48
	}
	for i := 0; i < limit; i++ {
		e := tab.At(i)
		val := e.Chunk.Bytes()[e.Off : e.Off+e.SerLen]
		fmt.Printf("  %4d: %-11s off %6d  serlen %3d  width %3d  pad %3d  %q\n",
			i, e.Type.Name, e.Off, e.SerLen, e.Width, e.Pad(), val)
	}
	if tab.Len() > limit {
		fmt.Printf("  … %d more entries\n", tab.Len()-limit)
	}

	if *dump {
		fmt.Printf("\nserialized message (%d bytes):\n%s\n", len(tpl.Bytes()), tpl.Bytes())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bsoap-inspect:", err)
	os.Exit(1)
}
