// Command bsoap-send drives one client engine against a workload and
// prints per-send match classes and timings — a quick way to feel the
// differential serialization effect.
//
//	bsoap-send -engine bsoap -type doubles -n 10000 -count 10 -dirty 0.25
//	bsoap-send -engine gsoap -type mios -n 10000 -count 10
//	bsoap-send -addr 127.0.0.1:9999 ...       # over TCP instead of in-process
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bsoap/internal/baseline"
	"bsoap/internal/core"
	"bsoap/internal/fastconv"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
	"bsoap/internal/workload"
)

func main() {
	var (
		engine = flag.String("engine", "bsoap", "bsoap | bsoap-full | gsoap | xsoap")
		typ    = flag.String("type", "doubles", "doubles | ints | mios")
		n      = flag.Int("n", 10000, "array elements")
		count  = flag.Int("count", 10, "number of sends")
		dirty  = flag.Float64("dirty", 0.25, "fraction of values updated between sends")
		width  = flag.String("width", "exact", "stuffing: exact | intermediate | max")
		addr   = flag.String("addr", "", "send to host:port (default: in-process discard)")
		era    = flag.Bool("era2004", false, "emulate 2004-era conversion costs (exact big-integer dtoa)")
	)
	flag.Parse()

	if *era {
		restore := fastconv.SetDoubleConverter(fastconv.DragonDoubleConverter)
		defer restore()
		fmt.Println("# 2004-era conversion costs emulated (dragon dtoa)")
	}

	var sink core.Sink
	if *addr != "" {
		sender, err := transport.Dial(*addr, transport.SenderOptions{Version: transport.HTTP11})
		if err != nil {
			fatal(err)
		}
		defer sender.Close()
		sink = sender
	} else {
		sink = transport.NewDiscardSink()
	}

	var policy core.WidthPolicy
	switch *width {
	case "exact":
	case "intermediate":
		policy = core.WidthPolicy{Int: 9, Double: 18}
	case "max":
		policy = core.WidthPolicy{Int: core.MaxWidth, Double: core.MaxWidth}
	default:
		fatal(fmt.Errorf("unknown width policy %q", *width))
	}

	var msg *wire.Message
	var touch func(frac float64)
	switch *typ {
	case "doubles":
		d := workload.NewDoubles(*n, workload.FillIntermediate)
		msg, touch = d.Msg, d.TouchFraction
	case "ints":
		d := workload.NewInts(*n, workload.FillIntermediate)
		msg, touch = d.Msg, d.TouchFraction
	case "mios":
		d := workload.NewMIOs(*n, workload.FillIntermediate)
		msg, touch = d.Msg, d.TouchDoublesFraction
	default:
		fatal(fmt.Errorf("unknown workload type %q", *typ))
	}

	cfg := core.Config{Width: policy}
	switch *engine {
	case "bsoap", "bsoap-full":
		cfg.DisableDiff = *engine == "bsoap-full"
		stub := core.NewStub(cfg, sink)
		for i := 0; i < *count; i++ {
			if i > 0 {
				touch(*dirty)
			}
			start := time.Now()
			ci, err := stub.Call(msg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("send %2d: %-26s %8d bytes  %6d rewritten  %v\n",
				i+1, ci.Match, ci.Bytes, ci.ValuesRewritten,
				time.Since(start).Round(time.Microsecond))
		}
		st := stub.Stats()
		fmt.Printf("totals: %d calls — %d first-time, %d content, %d structural, %d partial, %d full\n",
			st.Calls, st.FirstTimeSends, st.ContentMatches, st.StructuralMatches,
			st.PartialMatches, st.FullSerializations)
	case "gsoap", "xsoap":
		var ser baseline.Serializer = baseline.NewGSOAPLike()
		if *engine == "xsoap" {
			ser = baseline.NewXSOAPLike()
		}
		client := baseline.NewClient(ser, sink)
		for i := 0; i < *count; i++ {
			if i > 0 {
				touch(*dirty)
			}
			start := time.Now()
			bytes, err := client.Call(msg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("send %2d: %-26s %8d bytes  %v\n",
				i+1, ser.Name()+" full", bytes, time.Since(start).Round(time.Microsecond))
		}
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bsoap-send:", err)
	os.Exit(1)
}
