// Command bsoap-loadgen drives the concurrent client runtime: N worker
// goroutines × M operations share one bsoap.Pool against a bsoap-server,
// then a throughput + match-class report shows how much serialization
// differential templates saved under load.
//
//	# terminal 1
//	go run ./cmd/bsoap-server -mode discard
//	# terminal 2
//	go run ./cmd/bsoap-loadgen -workers 8
//
// Use -inprocess to measure without a server (in-process discard sink),
// and -metrics :8123 to expose the live registry while the run is in
// flight: JSON at http://localhost:8123/, Prometheus text exposition at
// /metrics, the flight-recorder ring at /debug/trace (pair with -trace)
// and the live template store at /debug/templates.
//
// -chaos 0.05 runs the same load through a fault injector that resets
// 5% of socket operations (plus partial writes, mid-stream closes and
// dial failures at a quarter of that rate), reporting how the hardened
// transport degraded; -max-err sets the failed-call percentage above
// which the run exits nonzero.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof" // -pprof flag: live heap/alloc profiles
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bsoap"
	"bsoap/internal/faultwire"
	"bsoap/internal/health"
	"bsoap/internal/promtext"
	"bsoap/internal/trace"
	"bsoap/internal/transport"
	"bsoap/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9999", "bsoap-server address")
		inprocess = flag.Bool("inprocess", false, "use an in-process discard sink instead of a server")
		workers   = flag.Int("workers", 8, "concurrent worker goroutines")
		ops       = flag.Int("ops", 3, "distinct operations to spread calls over")
		n         = flag.Int("n", 1000, "array elements per message")
		duration  = flag.Duration("duration", 5*time.Second, "run length")
		calls     = flag.Int64("calls", 0, "stop after this many calls instead of -duration")
		hold      = flag.Duration("hold", 0, "keep serving -metrics debug endpoints this long after the run (so trace rings can be scraped/correlated post-run)")
		conns     = flag.Int("conns", 0, "pooled connections (default = workers, max 16)")
		replicas  = flag.Int("replicas", 4, "template replicas per operation structure")
		shards    = flag.Int("shards", 16, "template store shards")
		maxTmplB  = flag.Int64("max-template-bytes", 0, "template memory budget in bytes (0 = unbudgeted); LRU entries are evicted to stay under it")
		mix       = flag.String("mix", "60/30/10", "percent of iterations that are untouched/touched/grown")
		metrics   = flag.String("metrics", "", "serve live metrics on this address (e.g. :8123): JSON at /, Prometheus at /metrics, /debug/trace, /debug/trace/slow, /debug/health, /debug/templates")
		traceOn   = flag.Bool("trace", false, "enable the flight recorder (dump via -metrics /debug/trace or report a summary on exit)")
		traceSamp = flag.Uint64("trace-sample", 1, "record every Nth rewrite/tag-shift event (1 = all)")
		slowThr   = flag.Duration("slow-threshold", 0, "capture full event sets of calls slower end-to-end than this (0 = off)")
		slowQuant = flag.Float64("slow-quantile", 0, "capture calls slower than this rolling latency quantile, e.g. 0.99 (0 = off; overrides -slow-threshold)")
		pprofSrv  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) — verify the send path's allocation profile under load")
		rpc       = flag.Bool("rpc", false, "read one HTTP response per call (pair with a responding server, e.g. -mode record)")
		pipeline  = flag.Int("pipeline", 0, "pipeline depth: keep up to N async calls in flight per worker (requires a responding server; workers drive max(-ops, N) messages each so the window can fill)")
		maxErr    = flag.Float64("max-err", 0, "max tolerated error rate in percent before exiting nonzero")
		chaos     = flag.Float64("chaos", 0, "inject faults: connection-reset probability per socket op (plus partial writes, mid-stream closes and dial failures at a quarter of it)")
		chaosSeed = flag.Int64("chaos-seed", 1, "fault injector seed")
		srvMet    = flag.String("server-metrics", "", "scrape this server /metrics URL at end of run and report its differential-decode counters")
		minFast   = flag.Float64("min-server-fast", 0, "with -server-metrics: min server DDS fast-path percent before exiting nonzero")
		delta     = flag.Bool("delta", false, "negotiate differential transmission: send compact patch frames instead of full bodies once the server acknowledges holding the previous one")
		minSaved  = flag.Float64("min-delta-saved", 0, "with -delta: min percent of wire bytes saved versus represented bytes before exiting nonzero")
		bandwidth = flag.Int64("bandwidth", 0, "throttle aggregate socket throughput to this many bytes/sec (shared token bucket modelling a constrained link)")
	)
	flag.Parse()

	pcts, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsoap-loadgen:", err)
		os.Exit(2)
	}
	if *conns <= 0 {
		*conns = min(*workers, 16)
	}

	if *pipeline > 0 && *inprocess {
		fmt.Fprintln(os.Stderr, "bsoap-loadgen: -pipeline needs a real connection to a responding server; drop -inprocess")
		os.Exit(2)
	}
	popts := bsoap.PoolOptions{
		Size:             *conns,
		Shards:           *shards,
		Replicas:         *replicas,
		MaxTemplateBytes: *maxTmplB,
		PipelineDepth:    *pipeline,
		Config:           bsoap.Config{EnableStealing: true, Width: bsoap.WidthPolicy{Double: 18, Int: 9}},
	}
	popts.Sender.ExpectResponse = *rpc
	if *delta {
		popts.Delta = true
		if *pipeline == 0 {
			// Delta negotiation rides on responses: a fire-and-forget
			// serial sender would never see an ack and silently keep
			// sending full bodies.
			popts.Sender.ExpectResponse = true
		}
	}
	var inj *faultwire.Injector
	if *chaos > 0 {
		if *inprocess {
			fmt.Fprintln(os.Stderr, "bsoap-loadgen: -chaos needs a real connection; drop -inprocess")
			os.Exit(2)
		}
		inj = faultwire.New(faultwire.Options{
			Seed: *chaosSeed,
			Probs: faultwire.Probabilities{
				Reset:          *chaos,
				PartialWrite:   *chaos / 4,
				MidStreamClose: *chaos / 4,
				DialError:      *chaos / 4,
			},
		})
		popts.Sender.Dialer = inj.Dial(nil)
		// A faulty wire can also mean a wedged one: bound every socket
		// operation so a stalled peer costs a timeout, not a worker.
		popts.Sender.WriteTimeout = 10 * time.Second
		popts.Sender.ReadTimeout = 10 * time.Second
	}
	if *bandwidth > 0 {
		if *inprocess {
			fmt.Fprintln(os.Stderr, "bsoap-loadgen: -bandwidth needs a real connection; drop -inprocess")
			os.Exit(2)
		}
		popts.Sender.Dialer = faultwire.Bandwidth(*bandwidth).Dial(popts.Sender.Dialer)
	}
	if *inprocess {
		if *delta {
			// An always-capable in-process peer: measures the pure
			// client-side delta encode cost without a network.
			sink := transport.NewDeltaDiscardSink()
			popts.Dial = func() (bsoap.Sink, error) { return sink, nil }
		} else {
			sink := bsoap.NewDiscardSink()
			popts.Dial = func() (bsoap.Sink, error) { return sink, nil }
		}
	} else {
		popts.Addr = *addr
	}
	pool, err := bsoap.NewPool(popts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsoap-loadgen:", err)
		os.Exit(1)
	}
	defer pool.Close()
	if inj != nil {
		pool.Metrics().SetFaultSource(inj.Faults)
	}

	if *traceOn {
		trace.Enable()
		if *traceSamp > 1 {
			// Rewrites and tag shifts are the per-leaf kinds: a single
			// 1000-element PSM send is 1000 of each at rate 1.
			trace.Default.SetSampling(trace.KindRewrite, *traceSamp, 0)
			trace.Default.SetSampling(trace.KindTagShift, *traceSamp, 0)
		}
	}
	if *slowThr > 0 {
		trace.SetSlowThreshold(*slowThr)
	}
	if *slowQuant > 0 {
		trace.SetSlowQuantile(*slowQuant)
	}
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/", pool.Metrics())
		mux.Handle("/metrics", pool.Metrics().PrometheusHandler())
		mux.Handle("/debug/trace", trace.Handler())
		mux.Handle("/debug/trace/slow", trace.SlowHandler())
		mux.Handle("/debug/health", health.NewProbe("bsoap-loadgen").Handler())
		mux.Handle("/debug/templates", pool.TemplatesHandler())
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintln(os.Stderr, "bsoap-loadgen: metrics endpoint:", err)
			}
		}()
		fmt.Printf("bsoap-loadgen: metrics on http://%s/ (JSON), /metrics (Prometheus), /debug/trace, /debug/trace/slow, /debug/health, /debug/templates\n", *metrics)
	}
	if *pprofSrv != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				fmt.Fprintln(os.Stderr, "bsoap-loadgen: pprof endpoint:", err)
			}
		}()
		fmt.Printf("bsoap-loadgen: pprof on http://%s/debug/pprof/\n", *pprofSrv)
	}

	// Probe the target before spawning the fleet so a missing server is
	// one clear error, not -workers × -retries of them.
	probe := workload.NewDoubles(1, workload.FillMin)
	if _, err := pool.Call(probe.Msg); err != nil {
		if inj == nil {
			fmt.Fprintf(os.Stderr, "bsoap-loadgen: cannot reach %s: %v\n(start one with: go run ./cmd/bsoap-server -mode discard)\n", *addr, err)
			os.Exit(1)
		}
		// Under chaos the probe itself may eat an injected fault; the
		// run's error-rate accounting decides the exit code instead.
		fmt.Fprintf(os.Stderr, "bsoap-loadgen: probe failed (continuing under -chaos): %v\n", err)
	}

	var (
		stop      atomic.Bool
		done      atomic.Int64 // counts calls when -calls bounds the run
		errorsN   atomic.Int64
		submitted atomic.Int64 // -pipeline: futures handed out ...
		resolved  atomic.Int64 // ... and futures that came back
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(pool, w, *ops, *n, *pipeline, pcts, &stop, &done, &errorsN, &submitted, &resolved, *calls)
		}(w)
	}
	if *calls == 0 {
		time.Sleep(*duration)
		stop.Store(true)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(os.Stdout, pool, inj, *workers, *ops, *addr, *inprocess, elapsed)
	if *pipeline > 0 {
		// Every future handed out must have come back: a submitted call
		// that neither resolved nor errored is a bug in the async path,
		// never an acceptable cost of chaos or drain.
		if s, r := submitted.Load(), resolved.Load(); s != r {
			fmt.Fprintf(os.Stderr, "bsoap-loadgen: %d futures lost (%d submitted, %d resolved)\n", s-r, s, r)
			os.Exit(1)
		}
	}
	if *traceOn {
		d := trace.Default.Snapshot()
		fmt.Printf("  trace: %d events recorded, %d retained in the ring (%d overwritten)\n",
			d.Recorded, len(d.Events), d.Dropped)
	}

	if *srvMet != "" {
		if err := checkServerMetrics(*srvMet, *minFast); err != nil {
			fmt.Fprintln(os.Stderr, "bsoap-loadgen:", err)
			os.Exit(1)
		}
	}

	st := pool.Stats()
	if *minSaved > 0 {
		if pct := deltaSavedPct(st); pct < *minSaved {
			fmt.Fprintf(os.Stderr, "bsoap-loadgen: delta saved %.1f%% of wire bytes, below -min-delta-saved %.1f%%\n", pct, *minSaved)
			os.Exit(1)
		}
	}
	errRate := 0.0
	if st.Calls > 0 {
		errRate = 100 * float64(errorsN.Load()) / float64(st.Calls)
	}
	if errRate > *maxErr {
		fmt.Fprintf(os.Stderr, "bsoap-loadgen: error rate %.2f%% exceeds -max-err %.2f%% (%d of %d calls failed)\n",
			errRate, *maxErr, errorsN.Load(), st.Calls)
		os.Exit(1)
	}

	if *hold > 0 && *metrics != "" {
		fmt.Printf("bsoap-loadgen: holding debug endpoints on %s for %v\n", *metrics, *hold)
		time.Sleep(*hold)
	}
}

// runWorker drives one goroutine's share of the load. Each worker owns
// its messages (wire messages are single-goroutine); all template state
// is shared through the pool. With pipeline > 0 the worker submits
// through CallAsync, keeping a window of futures in flight — one per
// message at most, since a message must not be mutated or resubmitted
// until its previous future resolves.
func runWorker(pool *bsoap.Pool, id, ops, n, pipeline int, pcts [3]int, stop *atomic.Bool, done, errorsN, submitted, resolved *atomic.Int64, maxCalls int64) {
	type target struct {
		msg   *bsoap.Message
		touch func()
		grow  func()
	}
	if pipeline > ops {
		// One outstanding future per message: the window can only fill if
		// the worker has at least `pipeline` distinct messages to rotate.
		ops = pipeline
	}
	targets := make([]target, 0, ops)
	for j := 0; j < ops; j++ {
		// Same j on every worker → same operation + structure → shared
		// template entry. j ≥ 3 varies the array length, which is a new
		// structural signature and therefore a distinct template.
		size := n + 16*(j/3)
		switch j % 3 {
		case 0:
			d := workload.NewDoubles(size, workload.FillIntermediate)
			targets = append(targets, target{d.Msg,
				func() { d.TouchFraction(0.1) },
				func() { d.GrowFraction(0.02, workload.MaxDouble) }})
		case 1:
			t := workload.NewInts(size, workload.FillIntermediate)
			targets = append(targets, target{t.Msg,
				func() { t.TouchFraction(0.1) },
				func() { t.TouchFraction(0.3) }})
		case 2:
			m := workload.NewMIOs(size/2, workload.FillIntermediate)
			targets = append(targets, target{m.Msg,
				func() { m.TouchDoublesFraction(0.1) },
				func() { m.GrowFraction(0.02, workload.MaxInt, workload.MaxInt, workload.MaxDouble) }})
		}
	}

	rng := rand.New(rand.NewSource(int64(id) + 1))
	countErr := func(err error) {
		// Keep driving load: failed calls are counted and judged
		// against -max-err at the end, not allowed to silently shrink
		// the fleet one worker at a time.
		if errorsN.Add(1) == 1 {
			fmt.Fprintln(os.Stderr, "bsoap-loadgen: first failed call:", err)
		}
	}
	mutate := func(t target) {
		switch p := rng.Intn(100); {
		case p < pcts[0]:
			// untouched: content match when replica affinity holds
		case p < pcts[0]+pcts[1]:
			t.touch()
		default:
			t.grow()
		}
	}

	if pipeline > 0 {
		futs := make([]*bsoap.Future, len(targets))
		settle := func(idx int) {
			if futs[idx] == nil {
				return
			}
			if _, err := futs[idx].Wait(); err != nil {
				countErr(err)
			}
			resolved.Add(1)
			futs[idx] = nil
		}
		for i := 0; !stop.Load(); i++ {
			if maxCalls > 0 && done.Add(1) > maxCalls {
				break
			}
			idx := i % len(targets)
			t := targets[idx]
			settle(idx) // the message's previous future, if any, resolves first
			mutate(t)
			f, err := pool.CallAsync(t.msg)
			if err != nil {
				countErr(err)
				continue
			}
			submitted.Add(1)
			futs[idx] = f
		}
		for idx := range futs {
			settle(idx)
		}
		return
	}

	for i := 0; !stop.Load(); i++ {
		if maxCalls > 0 && done.Add(1) > maxCalls {
			return
		}
		t := targets[i%len(targets)]
		mutate(t)
		if _, err := pool.Call(t.msg); err != nil {
			countErr(err)
		}
	}
}

// checkServerMetrics scrapes the server's Prometheus page, prints its
// differential-decode summary, and errors when the fast-path rate falls
// below minFast percent.
func checkServerMetrics(url string, minFast float64) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: status %s", url, resp.Status)
	}
	vals, err := promtext.ReadValues(resp.Body)
	if err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	fast := vals["bsoap_server_dds_fast_path_total"]
	full := vals["bsoap_server_dds_full_parse_total"]
	rejected := vals["bsoap_server_rejected_conns_total"] + vals["bsoap_server_rejected_requests_total"]
	rate := 0.0
	if fast+full > 0 {
		rate = 100 * fast / (fast + full)
	}
	fmt.Printf("  server: %.0f requests · dds fast-path %.1f%% (%.0f fast / %.0f full) · %.0f rejected · %.0f replica evictions\n",
		vals["bsoap_server_requests_total"], rate, fast, full, rejected,
		vals["bsoap_server_replica_evictions_total"])
	if applied := vals["bsoap_server_delta_applied_total"]; applied > 0 || vals["bsoap_server_delta_resyncs_total"] > 0 {
		fmt.Printf("  server delta: %.0f patches applied, %.0f syncs, %.0f resyncs — %.1f MB of frames reconstructed %.1f MB of bodies\n",
			applied, vals["bsoap_server_delta_syncs_total"], vals["bsoap_server_delta_resyncs_total"],
			vals["bsoap_server_delta_wire_bytes_total"]/1e6, vals["bsoap_server_delta_represented_bytes_total"]/1e6)
	}
	if minFast > 0 {
		if fast+full == 0 {
			return fmt.Errorf("server reported no decodes; cannot judge -min-server-fast %.1f", minFast)
		}
		if rate < minFast {
			return fmt.Errorf("server dds fast-path %.1f%% below -min-server-fast %.1f%%", rate, minFast)
		}
	}
	return nil
}

// report prints the throughput + match-class summary.
func report(w *os.File, pool *bsoap.Pool, inj *faultwire.Injector, workers, ops int, addr string, inprocess bool, elapsed time.Duration) {
	st := pool.Stats()
	target := addr
	if inprocess {
		target = "in-process discard sink"
	}
	secs := elapsed.Seconds()
	pct := func(n int64) float64 {
		if st.Calls == 0 {
			return 0
		}
		return 100 * float64(n) / float64(st.Calls)
	}
	fmt.Fprintf(w, "bsoap-loadgen: %d workers × %d ops against %s for %.1fs\n", workers, ops, target, secs)
	fmt.Fprintf(w, "  calls        %10d   (%.0f calls/s, %.1f MB/s on wire)\n",
		st.Calls, float64(st.Calls)/secs, float64(st.BytesOnWire)/1e6/secs)
	fmt.Fprintf(w, "  match kinds: first-time %d (%.2f%%) · content %d (%.1f%%) · structural %d (%.1f%%) · partial %d (%.1f%%) · errors %d\n",
		st.FirstTimeSends, pct(st.FirstTimeSends),
		st.ContentMatches, pct(st.ContentMatches),
		st.StructuralMatches, pct(st.StructuralMatches),
		st.PartialMatches, pct(st.PartialMatches), st.Errors)
	saved := 0.0
	if st.BytesRepresented > 0 {
		saved = 100 * float64(st.BytesSaved) / float64(st.BytesRepresented)
	}
	fmt.Fprintf(w, "  bytes: %.1f MB on wire, %.1f MB serialized — %.1f%% saved by diffing\n",
		float64(st.BytesOnWire)/1e6, float64(st.BytesSerialized)/1e6, saved)
	if st.DeltaSends > 0 || st.DeltaResyncs > 0 {
		fmt.Fprintf(w, "  delta: %d patch sends, %d resyncs — %.1f MB on wire for %.1f MB represented (%.1f%% wire bytes saved)\n",
			st.DeltaSends, st.DeltaResyncs,
			float64(st.BytesOnWire)/1e6, float64(st.BytesRepresented)/1e6, deltaSavedPct(st))
	}
	fmt.Fprintf(w, "  repairs: %d values rewritten, %d tag shifts, %d shifts, %d steals, %d rebinds\n",
		st.ValuesRewritten, st.TagShifts, st.Shifts, st.Steals, st.TemplateRebinds)
	fmt.Fprintf(w, "  pool: %d checkouts (%d waited), %d dials, %d redials, %d dial failures, %d retries\n",
		st.Checkouts, st.CheckoutWaits, st.Dials, st.Redials, st.DialFailures, st.Retries)
	if st.AsyncCalls > 0 {
		fmt.Fprintf(w, "  pipeline: depth %d · %d async calls · %d submit stalls\n",
			st.PipelineDepth, st.AsyncCalls, st.PipelineStalls)
	}
	if inj != nil {
		byKind := inj.FaultsByKind()
		parts := make([]string, 0, len(byKind))
		for _, k := range []string{"reset", "partial-write", "mid-stream-close", "dial-error", "read-delay", "write-delay"} {
			if n := byKind[k]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s %d", k, n))
			}
		}
		detail := strings.Join(parts, " · ")
		if detail == "" {
			detail = "none"
		}
		fmt.Fprintf(w, "  chaos: %d faults injected (%s)\n", st.FaultsInjected, detail)
		fmt.Fprintf(w, "         %d degraded first-time sends, %d calls over retry budget\n",
			st.DegradedFTS, st.RetryBudgetExhausted)
	}
	fmt.Fprintf(w, "  latency: p50 %v · p90 %v · p99 %v · max %v\n",
		st.LatencyP50, st.LatencyP90, st.LatencyP99, st.LatencyMax)
	fmt.Fprintf(w, "  templates: %d resident across %d structures; %.1f%% of calls served warm\n",
		pool.TemplateCount(), pool.Entries(), pct(st.WarmCalls()))
	if st.TemplateBudgetEvictions > 0 || st.TemplateBytesHighWater > 0 {
		fmt.Fprintf(w, "  template memory: %.1f KB resident (high water %.1f KB) · %d budget evictions, %d total\n",
			float64(st.TemplateBytes)/1e3, float64(st.TemplateBytesHighWater)/1e3,
			st.TemplateBudgetEvictions, st.TemplateEvictions)
	}
}

// deltaSavedPct computes the wire-savings percentage differential
// transmission delivered: bytes kept off the wire relative to the bytes
// the calls represented.
func deltaSavedPct(st bsoap.PoolStats) float64 {
	if st.BytesRepresented == 0 {
		return 0
	}
	return 100 * float64(st.DeltaBytesSaved) / float64(st.BytesRepresented)
}

// parseMix parses "a/b/c" percentages summing to 100.
func parseMix(s string) ([3]int, error) {
	var p [3]int
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return p, fmt.Errorf("-mix wants untouched/touched/grown, e.g. 60/30/10")
	}
	sum := 0
	for i, part := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &p[i]); err != nil || p[i] < 0 {
			return p, fmt.Errorf("-mix %q: bad percentage %q", s, part)
		}
		sum += p[i]
	}
	if sum != 100 {
		return p, fmt.Errorf("-mix %q: percentages sum to %d, want 100", s, sum)
	}
	return p, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
