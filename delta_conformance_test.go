package bsoap_test

import (
	"bytes"
	"math/rand"
	"testing"

	"bsoap"
	"bsoap/internal/baseline"
	"bsoap/internal/harness"
	"bsoap/internal/workload"
)

// TestPoolDeltaEquivalence is the differential-transmission half of the
// equivalence suite: the same randomized mutation schedule as the
// baseline property test, run through a delta-negotiating pool against
// the recording server. Every body the server ends up holding — whether
// it arrived in full or was reconstructed from a patch frame — must be
// byte-equivalent (modulo padding) to a from-scratch serialization of
// the call's values, in call order, under all four policy configs.
func TestPoolDeltaEquivalence(t *testing.T) {
	const rounds = 400
	for _, tc := range equivalenceConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			rec, p := harness.Recorder(t, nil, bsoap.PoolOptions{
				Size:     1,
				Replicas: 1,
				Config:   tc.cfg,
				Delta:    true,
			})

			targets := []*target{
				doublesTarget("doubles-a", 64),
				doublesTarget("doubles-b", 64),
				intsTarget("ints", 64),
				miosTarget("mios", 16),
			}
			ref := baseline.NewGSOAPLike()
			rng := rand.New(rand.NewSource(7))
			want := make([][]byte, 0, rounds)

			for round := 0; round < rounds; round++ {
				tg := targets[rng.Intn(len(targets))]
				tg.mutate(rng)
				want = append(want, canon(ref.Serialize(tg.msg)))
				if _, err := p.Call(tg.msg); err != nil {
					t.Fatalf("round %d (%s): %v", round, tg.name, err)
				}
			}

			got := rec.Bodies()
			if len(got) != rounds {
				t.Fatalf("server holds %d bodies, want %d", len(got), rounds)
			}
			for i := range got {
				if !bytes.Equal(canon(got[i]), want[i]) {
					t.Fatalf("call %d: server body diverges from baseline\n got: %s\nwant: %s",
						i, canon(got[i]), want[i])
				}
			}

			st := p.Stats()
			if st.DeltaSends == 0 {
				t.Fatal("schedule never sent a patch frame; delta negotiation is broken")
			}
			if st.DeltaResyncs != 0 {
				t.Errorf("delta resyncs = %d, want 0 (nothing evicted server state)", st.DeltaResyncs)
			}
			if rec.DeltaApplied() != st.DeltaSends {
				t.Errorf("server applied %d patches, client sent %d", rec.DeltaApplied(), st.DeltaSends)
			}
			if st.BytesOnWire >= st.BytesRepresented {
				t.Errorf("wire bytes %d not below represented bytes %d despite %d patch sends",
					st.BytesOnWire, st.BytesRepresented, st.DeltaSends)
			}
		})
	}
}

// TestPoolDeltaPipelinedEquivalence runs the schedule through a depth-4
// pipelined delta pool and a serial full-body pool side by side: the
// bodies the delta server reconstructs must be byte-identical (modulo
// padding) to the serial pool's wire bytes, in the same order — patch
// framing composes with pipelining without reordering or corrupting
// anything.
func TestPoolDeltaPipelinedEquivalence(t *testing.T) {
	const depth = 4
	const rounds = 400

	for _, tc := range equivalenceConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			sink := &recordSink{}
			serial, err := bsoap.NewPool(bsoap.PoolOptions{
				Size:     1,
				Replicas: 1,
				Config:   tc.cfg,
				Dial:     func() (bsoap.Sink, error) { return sink, nil },
			})
			if err != nil {
				t.Fatal(err)
			}
			defer serial.Close()

			rec, piped := harness.Recorder(t, nil, bsoap.PoolOptions{
				Size:          1,
				Replicas:      1,
				Config:        tc.cfg,
				PipelineDepth: depth,
				Delta:         true,
			})

			mkTargets := func() []*target {
				return []*target{
					doublesTarget("doubles-a", 64),
					doublesTarget("doubles-b", 64),
					intsTarget("ints", 64),
					miosTarget("mios", 16),
				}
			}
			sTargets, pTargets := mkTargets(), mkTargets()
			sched := rand.New(rand.NewSource(11))
			sRng := rand.New(rand.NewSource(23))
			pRng := rand.New(rand.NewSource(23))
			pending := make([]*bsoap.Future, len(pTargets))

			for round := 0; round < rounds; round++ {
				i := sched.Intn(len(sTargets))
				st, pt := sTargets[i], pTargets[i]
				if pending[i] != nil {
					if _, err := pending[i].Wait(); err != nil {
						t.Fatalf("round %d (%s): wait: %v", round, pt.name, err)
					}
					pending[i] = nil
				}
				st.mutate(sRng)
				pt.mutate(pRng)
				if _, err := serial.Call(st.msg); err != nil {
					t.Fatalf("round %d (%s): serial: %v", round, st.name, err)
				}
				f, err := piped.CallAsync(pt.msg)
				if err != nil {
					t.Fatalf("round %d (%s): submit: %v", round, pt.name, err)
				}
				pending[i] = f
			}
			for i, f := range pending {
				if f == nil {
					continue
				}
				if _, err := f.Wait(); err != nil {
					t.Fatalf("drain (%s): %v", pTargets[i].name, err)
				}
			}

			got := rec.Bodies()
			if len(sink.msgs) != rounds || len(got) != rounds {
				t.Fatalf("serial recorded %d bodies, server holds %d, want %d each",
					len(sink.msgs), len(got), rounds)
			}
			for i := range got {
				want := canon(sink.msgs[i])
				if !bytes.Equal(canon(got[i]), want) {
					t.Fatalf("call %d: reconstructed body diverges from serial\n got: %s\nwant: %s",
						i, canon(got[i]), want)
				}
			}
			s := piped.Stats()
			if s.DeltaSends == 0 {
				t.Fatal("pipelined pool never sent a patch frame")
			}
			if s.AsyncCalls != rounds || s.FuturesPending != 0 || s.Errors != 0 {
				t.Fatalf("async_calls=%d futures_pending=%d errors=%d, want %d/0/0",
					s.AsyncCalls, s.FuturesPending, s.Errors, rounds)
			}
		})
	}
}

// TestDeltaResyncRecovery is the deterministic serial resync script: a
// patch-synchronized client loses its server-side base mid-stream and
// the very next patch must degrade losslessly — one 409, an immediate
// full resend on the same connection, no error surfaced, and patch
// traffic resuming on the call after.
func TestDeltaResyncRecovery(t *testing.T) {
	rec, p := harness.Recorder(t, nil, bsoap.PoolOptions{
		Size: 1, Replicas: 1, Delta: true,
	})

	w := workload.NewDoubles(16, workload.FillMin)
	ref := baseline.NewGSOAPLike()
	want := make([][]byte, 0, 8)
	call := func(step string) bsoap.CallInfo {
		t.Helper()
		want = append(want, canon(ref.Serialize(w.Msg)))
		ci, err := p.Call(w.Msg)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		return ci
	}

	if ci := call("first-time"); ci.DeltaSent || ci.Match != bsoap.FirstTime {
		t.Fatalf("call 1: delta_sent=%v match=%v, want full first-time", ci.DeltaSent, ci.Match)
	}
	if ci := call("patch"); !ci.DeltaSent {
		t.Fatal("call 2: content match did not go out as a patch frame")
	}
	w.Arr.Set(0, workload.MinDouble2)
	if ci := call("patch-dirty"); !ci.DeltaSent {
		t.Fatal("call 3: width-neutral rewrite did not go out as a patch frame")
	}

	// The server loses all bases (eviction, restart): the next patch is
	// refused and must recover within the same call.
	rec.ForgetBases()
	w.Arr.Set(1, workload.MinDouble2)
	ci := call("resync")
	if !ci.DeltaResync || ci.DeltaSent {
		t.Fatalf("call 4: delta_resync=%v delta_sent=%v, want a resynced full resend", ci.DeltaResync, ci.DeltaSent)
	}
	if ci.WireBytes <= ci.Bytes {
		t.Errorf("call 4: wire bytes %d should exceed body %d (refused frame + full body)", ci.WireBytes, ci.Bytes)
	}
	if ci := call("repatch"); !ci.DeltaSent || ci.DeltaResync {
		t.Fatalf("call 5: delta_sent=%v delta_resync=%v, want patch traffic restored", ci.DeltaSent, ci.DeltaResync)
	}

	// The refused patch was never recorded; every body the server holds
	// is byte-equivalent to the call's from-scratch serialization.
	got := rec.Bodies()
	if len(got) != len(want) {
		t.Fatalf("server holds %d bodies, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(canon(got[i]), want[i]) {
			t.Fatalf("call %d: server body diverges after resync\n got: %s\nwant: %s", i, canon(got[i]), want[i])
		}
	}
	if rec.DeltaResyncs() != 1 {
		t.Errorf("server refused %d patches, want 1", rec.DeltaResyncs())
	}
	if st := p.Stats(); st.DeltaResyncs != 1 || st.Errors != 0 {
		t.Errorf("delta_resyncs=%d errors=%d, want 1/0", st.DeltaResyncs, st.Errors)
	}
}

// TestDeltaResyncRecoveryPipelined is the same script through the async
// path: the rejected patch fails its pending in order, the future
// transparently resubmits as a full send, and the caller sees one
// successful call flagged delta_resync — never an error, never a lost
// or duplicated body.
func TestDeltaResyncRecoveryPipelined(t *testing.T) {
	rec, p := harness.Recorder(t, nil, bsoap.PoolOptions{
		Size: 1, Replicas: 1, Delta: true, PipelineDepth: 4,
	})

	w := workload.NewDoubles(16, workload.FillMin)
	ref := baseline.NewGSOAPLike()
	want := make([][]byte, 0, 8)
	call := func(step string) bsoap.CallInfo {
		t.Helper()
		want = append(want, canon(ref.Serialize(w.Msg)))
		f, err := p.CallAsync(w.Msg)
		if err != nil {
			t.Fatalf("%s: submit: %v", step, err)
		}
		ci, err := f.Wait()
		if err != nil {
			t.Fatalf("%s: wait: %v", step, err)
		}
		return ci
	}

	call("first-time")
	if ci := call("patch"); !ci.DeltaSent {
		t.Fatal("call 2: content match did not go out as a patch frame")
	}
	rec.ForgetBases()
	w.Arr.Set(0, workload.MinDouble2)
	if ci := call("resync"); !ci.DeltaResync {
		t.Fatalf("call 3: delta_resync=%v, want the future to resubmit in full", ci.DeltaResync)
	}
	if ci := call("repatch"); !ci.DeltaSent {
		t.Fatal("call 4: patch traffic did not resume after the resync")
	}

	got := rec.Bodies()
	if len(got) != len(want) {
		t.Fatalf("server holds %d bodies, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(canon(got[i]), want[i]) {
			t.Fatalf("call %d: server body diverges after pipelined resync\n got: %s\nwant: %s",
				i, canon(got[i]), want[i])
		}
	}
	if st := p.Stats(); st.DeltaResyncs != 1 || st.Errors != 0 || st.FuturesPending != 0 {
		t.Errorf("delta_resyncs=%d errors=%d futures_pending=%d, want 1/0/0",
			st.DeltaResyncs, st.Errors, st.FuturesPending)
	}
}
