package bsoap_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bsoap"
	"bsoap/internal/faultwire"
	"bsoap/internal/harness"
	"bsoap/internal/serverpool"
	"bsoap/internal/transport"
	"bsoap/internal/workload"
)

// TestPipelinedChaosSoak is the async path's survival property: four
// clients each keep a depth-8 pipeline full through a faultwire
// injector resetting 5% of writes, and the server is gracefully
// drained mid-load. Calls may fail — what may never happen is a future
// that neither resolves nor errors (a lost future), a server self-check
// divergence (a differential decode disagreeing with a from-scratch
// parse), or a client stats leak (futures_pending stuck nonzero).
func TestPipelinedChaosSoak(t *testing.T) {
	sm := transport.NewServerMetrics()
	rt, srv := harness.BenchRuntime(t,
		serverpool.Options{DifferentialDeserialization: true, SelfCheck: true, Metrics: sm},
		transport.ServerOptions{Metrics: sm, ReadAhead: 8})

	inj := faultwire.New(faultwire.Options{
		Seed: 17,
		Probs: faultwire.Probabilities{
			Reset:          0.05,
			MidStreamClose: 0.02,
			DialError:      0.02,
		},
	})

	const (
		clients = 4
		window  = 8 // in-flight futures per client == pipeline depth
		rounds  = 60
	)
	var submitted, resolved, okCalls, failedCalls, failedSubmits atomic.Int64
	stop := make(chan struct{})
	var stopOnce sync.Once

	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			opts := bsoap.PoolOptions{
				Size:             1,
				PipelineDepth:    window,
				Addr:             srv.Addr(),
				MaxRetries:       3,
				DialAttempts:     6,
				RedialBackoff:    time.Millisecond,
				RedialBackoffMax: 10 * time.Millisecond,
				RetryBudget:      30 * time.Second,
			}
			opts.Sender.Dialer = inj.Dial(nil)
			pool := harness.Pool(t, opts)

			msgs := make([]*workload.Doubles, window)
			for i := range msgs {
				msgs[i] = workload.NewDoubles(16+4*i, workload.FillIntermediate)
			}
			futs := make([]*bsoap.Future, window)
			settle := func(i int) {
				if futs[i] == nil {
					return
				}
				if _, err := futs[i].Wait(); err != nil {
					failedCalls.Add(1)
				} else {
					okCalls.Add(1)
				}
				resolved.Add(1)
				futs[i] = nil
			}

			for r := 0; r < rounds; r++ {
				select {
				case <-stop:
					r = rounds - 1 // drain pass: settle, no resubmit below
				default:
				}
				for i, m := range msgs {
					settle(i)
					if r == rounds-1 {
						continue
					}
					// The message's previous future is resolved: mutating
					// and resubmitting is safe.
					m.TouchFraction(0.3)
					f, err := pool.CallAsync(m.Msg)
					if err != nil {
						failedSubmits.Add(1)
						continue
					}
					submitted.Add(1)
					futs[i] = f
				}
			}
			for i := range futs {
				settle(i)
			}
			if got := pool.Stats().FuturesPending; got != 0 {
				t.Errorf("client %d: futures_pending = %d after drain", id, got)
			}
		}(id)
	}

	// Drain the server gracefully once the load has ramped, while
	// pipelines are still full.
	deadline := time.Now().Add(20 * time.Second)
	for okCalls.Load() < 100 {
		if time.Now().After(deadline) {
			t.Fatal("load never ramped")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	stopOnce.Do(func() { close(stop) })
	wg.Wait()

	if submitted.Load() != resolved.Load() {
		t.Fatalf("lost futures: %d submitted, %d resolved", submitted.Load(), resolved.Load())
	}
	if okCalls.Load() == 0 {
		t.Fatal("no call survived the chaos; injection rates are too hot to prove anything")
	}
	if inj.Faults() == 0 {
		t.Fatal("no faults injected; the soak proved nothing")
	}
	st := rt.Stats()
	if st.Requests == 0 {
		t.Fatal("runtime decoded no requests")
	}
	if st.SelfCheckFails != 0 {
		t.Fatalf("self-check fails: %d (of %d requests, faults %v)",
			st.SelfCheckFails, st.Requests, inj.FaultsByKind())
	}
	t.Logf("soak: %d submitted, %d ok, %d failed, %d failed submits, %d requests decoded (%d full / %d fast), %d faults %v",
		submitted.Load(), okCalls.Load(), failedCalls.Load(), failedSubmits.Load(),
		st.Requests, st.FullParses, st.DiffDecodes, inj.Faults(), inj.FaultsByKind())
}
