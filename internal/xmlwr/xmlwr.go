// Package xmlwr is a small streaming XML writer. The full-serialization
// baselines (gSOAP-like, XSOAP-like), the SOAP server's response path and
// the examples use it; the differential engine emits its own bytes because
// it must control field widths and record value positions.
package xmlwr

import (
	"errors"
	"fmt"

	"bsoap/internal/xsdlex"
)

// Writer builds an XML document in an internal buffer. The zero value is
// ready to use. Errors (mismatched End, attribute after content) are
// sticky and reported by Err or Result.
type Writer struct {
	buf     []byte
	stack   []string
	openTag bool // the latest start tag has not had its '>' emitted yet
	err     error
}

// NewWriter returns a writer with an initial capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Decl emits the standard XML declaration.
func (w *Writer) Decl() *Writer {
	w.closeOpenTag()
	w.buf = append(w.buf, `<?xml version="1.0" encoding="UTF-8"?>`...)
	w.buf = append(w.buf, '\n')
	return w
}

// Start opens an element. Attributes may follow until the first content.
func (w *Writer) Start(name string) *Writer {
	if w.err != nil {
		return w
	}
	w.closeOpenTag()
	w.buf = append(w.buf, '<')
	w.buf = append(w.buf, name...)
	w.stack = append(w.stack, name)
	w.openTag = true
	return w
}

// Attr adds an attribute to the element opened by the preceding Start.
func (w *Writer) Attr(name, value string) *Writer {
	if w.err != nil {
		return w
	}
	if !w.openTag {
		w.err = fmt.Errorf("xmlwr: attribute %q after element content", name)
		return w
	}
	w.buf = append(w.buf, ' ')
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, '=', '"')
	w.buf = xsdlex.EscapeText(w.buf, value)
	w.buf = append(w.buf, '"')
	return w
}

// Text appends escaped character data.
func (w *Writer) Text(s string) *Writer {
	if w.err != nil {
		return w
	}
	w.closeOpenTag()
	w.buf = xsdlex.EscapeText(w.buf, s)
	return w
}

// Int appends the lexical form of a 32-bit integer as character data.
func (w *Writer) Int(v int32) *Writer {
	if w.err != nil {
		return w
	}
	w.closeOpenTag()
	w.buf = xsdlex.AppendInt(w.buf, v)
	return w
}

// Double appends the lexical form of a double as character data.
func (w *Writer) Double(v float64) *Writer {
	if w.err != nil {
		return w
	}
	w.closeOpenTag()
	w.buf = xsdlex.AppendDouble(w.buf, v)
	return w
}

// Bool appends the lexical form of a boolean as character data.
func (w *Writer) Bool(v bool) *Writer {
	if w.err != nil {
		return w
	}
	w.closeOpenTag()
	w.buf = xsdlex.AppendBool(w.buf, v)
	return w
}

// Raw appends s verbatim, without escaping. The caller guarantees
// well-formedness.
func (w *Writer) Raw(s string) *Writer {
	if w.err != nil {
		return w
	}
	w.closeOpenTag()
	w.buf = append(w.buf, s...)
	return w
}

// End closes the most recently opened element.
func (w *Writer) End() *Writer {
	if w.err != nil {
		return w
	}
	if len(w.stack) == 0 {
		w.err = errors.New("xmlwr: End with no open element")
		return w
	}
	name := w.stack[len(w.stack)-1]
	w.stack = w.stack[:len(w.stack)-1]
	if w.openTag {
		// Empty element: use the self-closing form.
		w.buf = append(w.buf, '/', '>')
		w.openTag = false
		return w
	}
	w.buf = append(w.buf, '<', '/')
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, '>')
	return w
}

// Element writes <name>text</name> in one call.
func (w *Writer) Element(name, text string) *Writer {
	return w.Start(name).Text(text).End()
}

// Err reports the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Result returns the document bytes, failing if elements remain open or an
// earlier call errored.
func (w *Writer) Result() ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	if len(w.stack) != 0 {
		return nil, fmt.Errorf("xmlwr: %d element(s) left open (innermost %q)",
			len(w.stack), w.stack[len(w.stack)-1])
	}
	w.closeOpenTag()
	return w.buf, nil
}

// Len reports the bytes written so far (including any unclosed start tag).
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the writer for reuse, retaining the buffer's capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.stack = w.stack[:0]
	w.openTag = false
	w.err = nil
}

func (w *Writer) closeOpenTag() {
	if w.openTag {
		w.buf = append(w.buf, '>')
		w.openTag = false
	}
}
