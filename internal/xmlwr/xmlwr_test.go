package xmlwr

import (
	"strings"
	"testing"
)

func result(t *testing.T, w *Writer) string {
	t.Helper()
	b, err := w.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return string(b)
}

func TestSimpleDocument(t *testing.T) {
	w := NewWriter(64)
	w.Start("root").Start("a").Text("x").End().Start("b").Int(42).End().End()
	if got := result(t, w); got != "<root><a>x</a><b>42</b></root>" {
		t.Fatalf("got %q", got)
	}
}

func TestDecl(t *testing.T) {
	w := NewWriter(64)
	w.Decl().Start("r").End()
	want := `<?xml version="1.0" encoding="UTF-8"?>` + "\n<r/>"
	if got := result(t, w); got != want {
		t.Fatalf("got %q", got)
	}
}

func TestAttributes(t *testing.T) {
	w := NewWriter(64)
	w.Start("e").Attr("a", "1").Attr("b", `<&">`).Text("t").End()
	want := `<e a="1" b="&lt;&amp;&quot;&gt;">t</e>`
	if got := result(t, w); got != want {
		t.Fatalf("got %q", got)
	}
}

func TestSelfClosingEmptyElement(t *testing.T) {
	w := NewWriter(16)
	w.Start("empty").Attr("k", "v").End()
	if got := result(t, w); got != `<empty k="v"/>` {
		t.Fatalf("got %q", got)
	}
}

func TestTextEscaping(t *testing.T) {
	w := NewWriter(32)
	w.Start("t").Text("a<b & c>d").End()
	if got := result(t, w); got != "<t>a&lt;b &amp; c&gt;d</t>" {
		t.Fatalf("got %q", got)
	}
}

func TestNumericHelpers(t *testing.T) {
	w := NewWriter(64)
	w.Start("r").
		Start("i").Int(-7).End().
		Start("d").Double(2.5).End().
		Start("b").Bool(true).End().
		End()
	if got := result(t, w); got != "<r><i>-7</i><d>2.5</d><b>true</b></r>" {
		t.Fatalf("got %q", got)
	}
}

func TestRaw(t *testing.T) {
	w := NewWriter(32)
	w.Start("r").Raw("<pre/>").End()
	if got := result(t, w); got != "<r><pre/></r>" {
		t.Fatalf("got %q", got)
	}
}

func TestElementShorthand(t *testing.T) {
	w := NewWriter(32)
	w.Start("r").Element("k", "v").End()
	if got := result(t, w); got != "<r><k>v</k></r>" {
		t.Fatalf("got %q", got)
	}
}

func TestUnbalancedEndIsError(t *testing.T) {
	w := NewWriter(8)
	w.Start("a").End().End()
	if _, err := w.Result(); err == nil {
		t.Fatal("extra End not reported")
	}
}

func TestOpenElementsReportedByResult(t *testing.T) {
	w := NewWriter(8)
	w.Start("a").Start("b")
	if _, err := w.Result(); err == nil || !strings.Contains(err.Error(), `"b"`) {
		t.Fatalf("unclosed element error = %v", err)
	}
}

func TestAttrAfterContentIsError(t *testing.T) {
	w := NewWriter(8)
	w.Start("a").Text("x").Attr("k", "v").End()
	if _, err := w.Result(); err == nil {
		t.Fatal("attribute after content not reported")
	}
}

func TestErrorIsSticky(t *testing.T) {
	w := NewWriter(8)
	w.End() // error
	before := w.Err()
	w.Start("a").Text("x").End()
	if w.Err() != before {
		t.Fatal("later calls replaced the first error")
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(8)
	w.Start("a") // leave open, then reset
	w.Reset()
	w.Start("b").End()
	if got := result(t, w); got != "<b/>" {
		t.Fatalf("after reset: %q", got)
	}
}

func TestLen(t *testing.T) {
	w := NewWriter(8)
	if w.Len() != 0 {
		t.Fatal("fresh writer non-empty")
	}
	w.Start("ab")
	if w.Len() != len("<ab") {
		t.Fatalf("Len = %d", w.Len())
	}
}
