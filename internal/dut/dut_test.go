package dut

import (
	"testing"

	"bsoap/internal/chunk"
	"bsoap/internal/wire"
)

// buildTemplateLike appends n fixed-width double entries into one chunk,
// mimicking first-time serialization: <v>VAL</v> spans with width w.
func buildTemplateLike(t *testing.T, n, w int) (*chunk.Buffer, *Table) {
	t.Helper()
	b := chunk.New(chunk.Config{ChunkSize: 4096, TrailingSlack: 256})
	tab := &Table{}
	for i := 0; i < n; i++ {
		b.AppendString("<v>")
		pos := b.Reserve(w + len("</v>"))
		for j := 0; j < w; j++ {
			pos.C.Bytes()[pos.Off+j] = '1'
		}
		copy(pos.C.Bytes()[pos.Off+w:], "</v>")
		tab.Append(Entry{
			Type: wire.TDouble, Chunk: pos.C, Off: pos.Off,
			SerLen: w, Width: w, CloseTag: "</v>",
		})
	}
	tab.CheckInvariants()
	return b, tab
}

func TestAppendMaintainsChunkRanges(t *testing.T) {
	_, tab := buildTemplateLike(t, 10, 5)
	if tab.Len() != 10 {
		t.Fatalf("Len = %d", tab.Len())
	}
	c := tab.At(0).Chunk
	if c.EntryLo != 0 || c.EntryHi != 10 {
		t.Fatalf("chunk range [%d,%d)", c.EntryLo, c.EntryHi)
	}
}

func TestEntryGeometry(t *testing.T) {
	e := Entry{Off: 100, SerLen: 3, Width: 10, CloseTag: "</v>"}
	if e.SpanEnd() != 100+10+4 {
		t.Fatalf("SpanEnd = %d", e.SpanEnd())
	}
	if e.Pad() != 7 {
		t.Fatalf("Pad = %d", e.Pad())
	}
}

func TestFixupShift(t *testing.T) {
	b, tab := buildTemplateLike(t, 5, 4)
	c := b.Head()
	// Grow entry 2: the engine's convention is to open the gap at the
	// entry's SpanEnd, so the growing entry itself never moves.
	e2 := tab.At(2)
	pos := e2.SpanEnd()
	if !c.InsertGap(pos, 3) {
		t.Fatal("gap refused")
	}
	tab.FixupShift(c, pos, 3)
	e2.Width += 3
	// Rewrite entry 2's region: a 7-char value plus closing tag.
	copy(c.Bytes()[e2.Off:], "2222222</v>")
	e2.SerLen = 7
	tab.CheckInvariants()
	for i := 0; i < 5; i++ {
		e := tab.At(i)
		wantOff := 3 + i*11 // len("<v>") + i*span
		if i > 2 {
			wantOff += 3
		}
		if e.Off != wantOff {
			t.Errorf("entry %d Off = %d, want %d", i, e.Off, wantOff)
		}
	}
}

func TestFixupShiftOnlyAffectsSameChunk(t *testing.T) {
	b := chunk.New(chunk.Config{ChunkSize: 64, TrailingSlack: 8})
	tab := &Table{}
	// Two entries in two separate chunks.
	for i := 0; i < 2; i++ {
		b.CloseChunk()
		b.AppendString("<v>")
		pos := b.Reserve(4 + 4)
		copy(pos.C.Bytes()[pos.Off:], "1234</v>")
		tab.Append(Entry{Type: wire.TDouble, Chunk: pos.C, Off: pos.Off, SerLen: 4, Width: 4, CloseTag: "</v>"})
	}
	second := tab.At(1)
	before := second.Off
	first := tab.At(0)
	firstOff := first.Off
	if !first.Chunk.InsertGap(first.SpanEnd(), 2) {
		t.Fatal("gap refused")
	}
	tab.FixupShift(first.Chunk, first.SpanEnd(), 2)
	first.Width += 2
	if second.Off != before {
		t.Fatal("entry in other chunk moved")
	}
	if first.Off != firstOff {
		t.Fatalf("growing entry moved: Off = %d", first.Off)
	}
}

func TestFixupSplit(t *testing.T) {
	b, tab := buildTemplateLike(t, 6, 4)
	c := b.Head()
	// Split at the value start of entry 3.
	at := tab.At(3).Off
	nc := b.SplitChunk(c, at)
	tab.FixupSplit(c, nc, at)
	tab.CheckInvariants()

	if c.EntryLo != 0 || c.EntryHi != 3 {
		t.Fatalf("old chunk range [%d,%d)", c.EntryLo, c.EntryHi)
	}
	if nc.EntryLo != 3 || nc.EntryHi != 6 {
		t.Fatalf("new chunk range [%d,%d)", nc.EntryLo, nc.EntryHi)
	}
	for i := 3; i < 6; i++ {
		e := tab.At(i)
		if e.Chunk != nc {
			t.Fatalf("entry %d not re-pointed", i)
		}
	}
	if tab.At(3).Off != 0 {
		t.Fatalf("entry 3 Off = %d, want 0", tab.At(3).Off)
	}
	// Values must still read back.
	e := tab.At(3)
	if got := string(e.Chunk.Bytes()[e.Off : e.Off+e.SerLen]); got != "1111" {
		t.Fatalf("entry 3 value %q", got)
	}
}

func TestFixupSplitAllEntriesStay(t *testing.T) {
	b, tab := buildTemplateLike(t, 4, 4)
	c := b.Head()
	// Split after the last entry's span: no entries move.
	at := tab.At(3).SpanEnd()
	nc := b.SplitChunk(c, at)
	tab.FixupSplit(c, nc, at)
	if c.EntryLo != 0 || c.EntryHi != 4 {
		t.Fatalf("old chunk range [%d,%d)", c.EntryLo, c.EntryHi)
	}
	if nc.EntryLo != 0 || nc.EntryHi != 0 {
		t.Fatalf("new chunk range [%d,%d), want empty", nc.EntryLo, nc.EntryHi)
	}
	tab.CheckInvariants()
}

func TestFixupSplitAllEntriesMove(t *testing.T) {
	b, tab := buildTemplateLike(t, 4, 4)
	c := b.Head()
	nc := b.SplitChunk(c, 0)
	tab.FixupSplit(c, nc, 0)
	if nc.EntryLo != 0 || nc.EntryHi != 4 {
		t.Fatalf("new chunk range [%d,%d)", nc.EntryLo, nc.EntryHi)
	}
	if c.EntryLo != 0 || c.EntryHi != 0 {
		t.Fatalf("old chunk range [%d,%d), want empty", c.EntryLo, c.EntryHi)
	}
	tab.CheckInvariants()
}

func TestNonContiguousAppendPanics(t *testing.T) {
	b, tab := buildTemplateLike(t, 2, 4)
	c := b.Head()
	c.EntryHi = 1 // corrupt the range
	defer func() {
		if recover() == nil {
			t.Fatal("Append accepted non-contiguous entry")
		}
	}()
	tab.Append(Entry{Type: wire.TInt, Chunk: c, Off: 50, SerLen: 1, Width: 1, CloseTag: "</v>"})
}

func TestCheckInvariantsCatchesOverlap(t *testing.T) {
	_, tab := buildTemplateLike(t, 3, 4)
	tab.At(1).Off = tab.At(0).Off // force overlap
	defer func() {
		if recover() == nil {
			t.Fatal("overlap not caught")
		}
	}()
	tab.CheckInvariants()
}

func TestCheckInvariantsCatchesWidthViolation(t *testing.T) {
	_, tab := buildTemplateLike(t, 1, 4)
	tab.At(0).SerLen = 10
	defer func() {
		if recover() == nil {
			t.Fatal("SerLen > Width not caught")
		}
	}()
	tab.CheckInvariants()
}

func TestFirstOffAtOrAfter(t *testing.T) {
	b, tab := buildTemplateLike(t, 4, 4)
	c := b.Head()
	// Entry spans start at 3, 14, 25, 36 (len("<v>") + i*11).
	if off, ok := tab.FirstOffAtOrAfter(c, 0); !ok || off != 3 {
		t.Fatalf("at 0: %d, %v", off, ok)
	}
	if off, ok := tab.FirstOffAtOrAfter(c, 15); !ok || off != 25 {
		t.Fatalf("at 15: %d, %v", off, ok)
	}
	if _, ok := tab.FirstOffAtOrAfter(c, 1000); ok {
		t.Fatal("past-end lookup succeeded")
	}
	empty := b.Tail()
	if empty != c {
		if _, ok := tab.FirstOffAtOrAfter(empty, 0); ok {
			t.Fatal("entry-less chunk lookup succeeded")
		}
	}
}
