// Package dut implements the Data Update Tracking table (paper §3.1).
// Each entry associates one in-memory scalar leaf with its location in
// the serialized message template and carries the paper's five fields:
//
//   - a pointer to type information, including the maximum serialized size
//   - the dirty bit (held on the wire.Message, whose Set accessors
//     maintain it — the table and the message's leaves are index-aligned,
//     entry i ↔ leaf i)
//   - a pointer (chunk, offset) to the value's current location in the
//     serialized message
//   - the serialized length: characters currently used by the value
//   - the field width: characters allocated to the value (width ≥ length)
//
// Because entries point directly into the serialized form, finding a
// value's bytes is O(1); shifting and splitting fix the affected entries
// through the per-chunk entry ranges maintained here.
package dut

import (
	"fmt"
	"sort"

	"bsoap/internal/chunk"
	"bsoap/internal/wire"
)

// Entry tracks one scalar leaf of the message inside the template.
//
// The bytes owned by an entry are laid out as
//
//	VALUE</tag>␣␣␣…␣
//	^Off  ^Off+SerLen        ^Off+Width+len(CloseTag)
//
// the value, its floating closing tag, and whitespace padding filling the
// rest of the field width (stuffing). The opening tag precedes Off and is
// never rewritten.
type Entry struct {
	// Type is the scalar type descriptor (holds the maximum width).
	Type *wire.Type
	// Chunk and Off locate the first byte of the serialized value.
	Chunk *chunk.Chunk
	Off   int
	// SerLen is the character count of the most recently written value.
	SerLen int
	// Width is the allocated field width; always ≥ SerLen.
	Width int
	// CloseTag is the pre-rendered closing tag ("</item>"), rewritten in
	// place whenever the value's serialized length changes.
	CloseTag string
}

// SpanEnd returns the offset one past the entry's padded span (value,
// closing tag, padding).
func (e *Entry) SpanEnd() int { return e.Off + e.Width + len(e.CloseTag) }

// Pad reports the entry's unused width (stuffed whitespace).
func (e *Entry) Pad() int { return e.Width - e.SerLen }

// Table is the ordered collection of entries for one template. Entry i
// corresponds to message leaf i; entries appear in document order, and
// the entries residing in one chunk form a contiguous index range kept on
// the chunk (EntryLo/EntryHi).
type Table struct {
	Entries []Entry
}

// Append registers the next entry (for leaf len(Entries)) and updates the
// owning chunk's entry range.
func (t *Table) Append(e Entry) {
	i := len(t.Entries)
	t.Entries = append(t.Entries, e)
	c := e.Chunk
	if c.EntryHi <= c.EntryLo { // no entries yet
		c.EntryLo, c.EntryHi = i, i+1
		return
	}
	if c.EntryHi != i {
		panic(fmt.Sprintf("dut: non-contiguous append: chunk range [%d,%d), appending %d",
			c.EntryLo, c.EntryHi, i))
	}
	c.EntryHi = i + 1
}

// Len reports the number of entries.
func (t *Table) Len() int { return len(t.Entries) }

// At returns a pointer to entry i.
func (t *Table) At(i int) *Entry { return &t.Entries[i] }

// FixupShift adds delta to the offsets of every entry in chunk c whose
// value starts at or after pos. Called after c.InsertGap(pos, delta).
func (t *Table) FixupShift(c *chunk.Chunk, pos, delta int) {
	if c.EntryHi <= c.EntryLo {
		return
	}
	k := t.searchOff(c, pos)
	for i := k; i < c.EntryHi; i++ {
		t.Entries[i].Off += delta
	}
}

// FixupSplit re-points the entries moved by Buffer.SplitChunk(c, at) to
// the new chunk nc, adjusting their offsets and both chunks' entry
// ranges. Entries whose value begins at or after at belong to nc.
func (t *Table) FixupSplit(c, nc *chunk.Chunk, at int) {
	if c.EntryHi <= c.EntryLo {
		nc.EntryLo, nc.EntryHi = 0, 0
		return
	}
	k := t.searchOff(c, at)
	nc.EntryLo, nc.EntryHi = k, c.EntryHi
	c.EntryHi = k
	for i := k; i < nc.EntryHi; i++ {
		t.Entries[i].Chunk = nc
		t.Entries[i].Off -= at
	}
	if nc.EntryHi <= nc.EntryLo {
		nc.EntryLo, nc.EntryHi = 0, 0
	}
	if c.EntryHi <= c.EntryLo {
		c.EntryLo, c.EntryHi = 0, 0
	}
}

// FirstOffAtOrAfter returns the offset of the first entry in chunk c
// whose value starts at or after pos, if any. The template layer uses it
// to pick entry-aligned chunk split points.
func (t *Table) FirstOffAtOrAfter(c *chunk.Chunk, pos int) (int, bool) {
	if c.EntryHi <= c.EntryLo {
		return 0, false
	}
	k := t.searchOff(c, pos)
	if k >= c.EntryHi {
		return 0, false
	}
	return t.Entries[k].Off, true
}

// searchOff returns the index of the first entry in c's range whose Off
// is ≥ pos.
func (t *Table) searchOff(c *chunk.Chunk, pos int) int {
	lo, hi := c.EntryLo, c.EntryHi
	return lo + sort.Search(hi-lo, func(i int) bool {
		return t.Entries[lo+i].Off >= pos
	})
}

// CheckInvariants validates entry ordering, chunk ranges and span
// disjointness; tests call it after mutations. It panics on corruption.
func (t *Table) CheckInvariants() {
	for i := range t.Entries {
		e := &t.Entries[i]
		if e.SerLen > e.Width {
			panic(fmt.Sprintf("dut: entry %d SerLen %d > Width %d", i, e.SerLen, e.Width))
		}
		if e.Off < 0 || e.SpanEnd() > e.Chunk.Len() {
			panic(fmt.Sprintf("dut: entry %d span [%d,%d) outside chunk len %d",
				i, e.Off, e.SpanEnd(), e.Chunk.Len()))
		}
		if e.Chunk.EntryLo > i || i >= e.Chunk.EntryHi {
			panic(fmt.Sprintf("dut: entry %d outside its chunk's range [%d,%d)",
				i, e.Chunk.EntryLo, e.Chunk.EntryHi))
		}
		if i > 0 {
			p := &t.Entries[i-1]
			if p.Chunk == e.Chunk && p.SpanEnd() > e.Off {
				panic(fmt.Sprintf("dut: entries %d and %d overlap", i-1, i))
			}
		}
	}
}
