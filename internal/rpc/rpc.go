// Package rpc is the request/response client built on differential
// serialization: Call sends a message through a bSOAP stub, waits for
// the HTTP response, and decodes the response envelope against a
// schema. Examples and applications use it instead of hand-rolling the
// round-trip plumbing.
package rpc

import (
	"fmt"
	"net"

	"bsoap/internal/core"
	"bsoap/internal/soapdec"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
	"bsoap/internal/wsdl"
)

// Client couples a differential stub with a round-tripping sender and
// a set of response schemas. Not safe for concurrent use.
type Client struct {
	sender    *transport.Sender
	stub      *core.Stub
	sink      *roundtripSink
	responses map[string]*soapdec.Schema // response op local name → schema
}

// roundtripSink routes stub sends through Sender.Roundtrip, keeping the
// response body.
type roundtripSink struct {
	sender *transport.Sender
	last   []byte
}

// Send implements core.Sink.
func (r *roundtripSink) Send(bufs net.Buffers) error {
	resp, err := r.sender.Roundtrip(bufs)
	if err != nil {
		return err
	}
	if resp.Status/100 != 2 {
		return fmt.Errorf("rpc: server returned %d: %s", resp.Status, resp.Body)
	}
	r.last = resp.Body
	return nil
}

// Dial connects to a SOAP endpoint and returns a client.
func Dial(addr string, cfg core.Config) (*Client, error) {
	sender, err := transport.Dial(addr, transport.SenderOptions{Version: transport.HTTP11})
	if err != nil {
		return nil, err
	}
	sink := &roundtripSink{sender: sender}
	return &Client{
		sender:    sender,
		stub:      core.NewStub(cfg, sink),
		sink:      sink,
		responses: make(map[string]*soapdec.Schema),
	}, nil
}

// DiscoverAndDial fetches the WSDL from addr, then dials. The parsed
// service description is returned so callers can build request
// messages from it.
func DiscoverAndDial(addr string, cfg core.Config) (*Client, *wsdl.Service, error) {
	resp, err := transport.Fetch(addr, "/?wsdl")
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: fetching WSDL: %w", err)
	}
	if resp.Status != 200 {
		return nil, nil, fmt.Errorf("rpc: WSDL fetch returned %d", resp.Status)
	}
	svc, err := wsdl.Parse(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: parsing WSDL: %w", err)
	}
	c, err := Dial(addr, cfg)
	if err != nil {
		return nil, nil, err
	}
	return c, svc, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.sender.Close() }

// Stats returns the stub's differential counters.
func (c *Client) Stats() core.Stats { return c.stub.Stats() }

// ExpectResponse registers the schema used to decode responses whose
// operation element has the given local name (e.g. "sumResponse").
func (c *Client) ExpectResponse(schema *soapdec.Schema) {
	c.responses[schema.Op] = schema
}

// Call sends req differentially and decodes the response, returning
// the decoded message (nil for one-way calls whose server sends an
// empty 2xx) and the call classification.
func (c *Client) Call(req *wire.Message) (*wire.Message, core.CallInfo, error) {
	ci, err := c.stub.Call(req)
	if err != nil {
		return nil, ci, err
	}
	if len(c.sink.last) == 0 {
		return nil, ci, nil
	}
	res, err := soapdec.Decode(c.sink.last, c.lookupResponse, false)
	if err != nil {
		return nil, ci, fmt.Errorf("rpc: decoding response: %w", err)
	}
	return res.Msg, ci, nil
}

// RawResponse exposes the last response body (diagnostics).
func (c *Client) RawResponse() []byte { return c.sink.last }

func (c *Client) lookupResponse(opLocal string) (*soapdec.Schema, bool) {
	s, ok := c.responses[opLocal]
	return s, ok
}
