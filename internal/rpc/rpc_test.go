package rpc

import (
	"testing"

	"bsoap/internal/core"
	"bsoap/internal/server"
	"bsoap/internal/soapdec"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
	"bsoap/internal/wsdl"
)

// startCalc starts a sum service with WSDL, returning its address and
// a closer.
func startCalc(t *testing.T) (string, *server.SOAP, func()) {
	t.Helper()
	endpoint := server.New(server.Options{DifferentialDeserialization: true})
	resp := wire.NewMessage("urn:calc", "sumResponse")
	total := resp.AddDouble("total", 0)
	schema := &soapdec.Schema{
		Namespace: "urn:calc",
		Op:        "sum",
		Params:    []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
	}
	endpoint.Register(schema, func(req *wire.Message) (*wire.Message, error) {
		var s float64
		for i := 0; i < req.NumLeaves(); i++ {
			s += req.LeafDouble(i)
		}
		total.Set(s)
		return resp, nil
	})
	doc, err := wsdl.Generate(&wsdl.Service{
		Name: "Calc", Namespace: "urn:calc", Endpoint: "http://x/",
		Operations: []*soapdec.Schema{schema},
	})
	if err != nil {
		t.Fatal(err)
	}
	endpoint.SetWSDL(doc)
	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{
		Handler: endpoint.HTTPHandler(),
		Respond: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv.Addr(), endpoint, func() { srv.Close() }
}

func sumResponseSchema() *soapdec.Schema {
	return &soapdec.Schema{
		Namespace: "urn:calc",
		Op:        "sumResponse",
		Params:    []soapdec.ParamSpec{{Name: "total", Type: wire.TDouble}},
	}
}

func TestCallRoundTrip(t *testing.T) {
	addr, _, closeSrv := startCalc(t)
	defer closeSrv()

	c, err := Dial(addr, core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ExpectResponse(sumResponseSchema())

	req := wire.NewMessage("urn:calc", "sum")
	arr := req.AddDoubleArray("values", 10)
	for i := 0; i < 10; i++ {
		arr.Set(i, float64(i)) // 0+1+…+9 = 45
	}
	resp, ci, err := c.Call(req)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != core.FirstTime {
		t.Fatalf("first call: %v", ci.Match)
	}
	if resp.LeafDouble(0) != 45 {
		t.Fatalf("total = %g", resp.LeafDouble(0))
	}

	arr.Set(0, 100) // 145
	resp, ci, err = c.Call(req)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != core.StructuralMatch || ci.ValuesRewritten != 1 {
		t.Fatalf("second call: %+v", ci)
	}
	if resp.LeafDouble(0) != 145 {
		t.Fatalf("total = %g", resp.LeafDouble(0))
	}
}

func TestDiscoverAndDial(t *testing.T) {
	addr, _, closeSrv := startCalc(t)
	defer closeSrv()

	c, svc, err := DiscoverAndDial(addr, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if svc.Name != "Calc" || len(svc.Operations) != 1 {
		t.Fatalf("discovered: %+v", svc)
	}
	c.ExpectResponse(sumResponseSchema())

	// Build the request from the discovered schema.
	op := svc.Operations[0]
	req := wire.NewMessage(op.Namespace, op.Op)
	for _, p := range op.Params {
		if p.Type.Kind == wire.Array && p.Type.Elem == wire.TDouble {
			arr := req.AddDoubleArray(p.Name, 3)
			arr.Fill([]float64{1, 2, 3.5})
		}
	}
	resp, _, err := c.Call(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.LeafDouble(0) != 6.5 {
		t.Fatalf("total = %g", resp.LeafDouble(0))
	}
}

func TestUnknownResponseSchemaErrors(t *testing.T) {
	addr, _, closeSrv := startCalc(t)
	defer closeSrv()
	c, err := Dial(addr, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// No ExpectResponse registered.
	req := wire.NewMessage("urn:calc", "sum")
	req.AddDoubleArray("values", 1)
	if _, _, err := c.Call(req); err == nil {
		t.Fatal("unknown response schema accepted")
	}
}

func TestServerErrorSurfaces(t *testing.T) {
	addr, _, closeSrv := startCalc(t)
	defer closeSrv()
	c, err := Dial(addr, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req := wire.NewMessage("urn:calc", "nosuchop")
	req.AddInt("x", 1)
	if _, _, err := c.Call(req); err == nil {
		t.Fatal("unknown operation did not error")
	}
}

func TestStatsAccumulateAcrossCalls(t *testing.T) {
	addr, endpoint, closeSrv := startCalc(t)
	defer closeSrv()
	c, err := Dial(addr, core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ExpectResponse(sumResponseSchema())

	req := wire.NewMessage("urn:calc", "sum")
	arr := req.AddDoubleArray("values", 50)
	for i := 0; i < 50; i++ {
		arr.Set(i, 1)
	}
	for k := 0; k < 5; k++ {
		arr.Set(k, float64(k+2))
		if _, _, err := c.Call(req); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Calls != 5 || st.FirstTimeSends != 1 {
		t.Fatalf("client stats: %+v", st)
	}
	ss := endpoint.Stats()
	if ss.DiffDecodes != 4 {
		t.Fatalf("server stats: %+v", ss)
	}
}

func TestRawResponseAndDiscoverErrors(t *testing.T) {
	addr, _, closeSrv := startCalc(t)
	defer closeSrv()
	c, err := Dial(addr, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ExpectResponse(sumResponseSchema())
	req := wire.NewMessage("urn:calc", "sum")
	req.AddDoubleArray("values", 2)
	if _, _, err := c.Call(req); err != nil {
		t.Fatal(err)
	}
	if len(c.RawResponse()) == 0 {
		t.Fatal("no raw response retained")
	}
	// Discovery against a dead endpoint fails cleanly.
	if _, _, err := DiscoverAndDial("127.0.0.1:1", core.Config{}); err == nil {
		t.Fatal("discovery against closed port succeeded")
	}
}
