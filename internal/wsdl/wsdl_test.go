package wsdl

import (
	"strings"
	"testing"

	"bsoap/internal/mcs"
	"bsoap/internal/soapdec"
	"bsoap/internal/wire"
)

func mioType() *wire.Type {
	return wire.StructOf("ns1:MIO",
		wire.Field{Name: "x", Type: wire.TInt},
		wire.Field{Name: "y", Type: wire.TInt},
		wire.Field{Name: "value", Type: wire.TDouble},
	)
}

func sampleService() *Service {
	return &Service{
		Name:      "MeshExchange",
		Namespace: "urn:mesh",
		Endpoint:  "http://localhost:9999/",
		Operations: []*soapdec.Schema{
			{
				Namespace: "urn:mesh",
				Op:        "sendMIOs",
				Params: []soapdec.ParamSpec{
					{Name: "iteration", Type: wire.TInt},
					{Name: "mios", Type: wire.ArrayOf(mioType())},
				},
			},
			{
				Namespace: "urn:mesh",
				Op:        "sendScalars",
				Params: []soapdec.ParamSpec{
					{Name: "d", Type: wire.TDouble},
					{Name: "s", Type: wire.TString},
					{Name: "b", Type: wire.TBool},
				},
			},
		},
	}
}

func TestGenerateContainsExpectedSections(t *testing.T) {
	doc, err := Generate(sampleService())
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for _, want := range []string{
		`targetNamespace="urn:mesh"`,
		`<xsd:complexType name="MIO">`,
		`<xsd:complexType name="ArrayOfMIO">`,
		`maxOccurs="unbounded"`,
		`<message name="sendMIOsRequest">`,
		`<part name="mios" type="tns:ArrayOfMIO"/>`,
		`<portType name="MeshExchangePortType">`,
		`<soap:binding style="rpc"`,
		`<soap:address location="http://localhost:9999/"/>`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WSDL missing %q", want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	svc := sampleService()
	doc, err := Generate(svc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(doc)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, doc)
	}
	if got.Name != svc.Name || got.Namespace != svc.Namespace || got.Endpoint != svc.Endpoint {
		t.Fatalf("service header: %+v", got)
	}
	if len(got.Operations) != len(svc.Operations) {
		t.Fatalf("operations: %d vs %d", len(got.Operations), len(svc.Operations))
	}
	for i := range svc.Operations {
		if !EqualSchemas(got.Operations[i], svc.Operations[i]) {
			t.Errorf("operation %d differs:\n got %+v\nwant %+v",
				i, got.Operations[i], svc.Operations[i])
		}
	}
}

func TestRoundTripMCSService(t *testing.T) {
	svc := &Service{
		Name:      "MetadataCatalog",
		Namespace: mcs.Namespace,
		Endpoint:  "http://mcs.example:80/",
		Operations: []*soapdec.Schema{
			mcs.AddSchema(), mcs.QuerySchema(), mcs.DeleteSchema(),
		},
	}
	doc, err := Generate(svc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range svc.Operations {
		if !EqualSchemas(got.Operations[i], svc.Operations[i]) {
			t.Errorf("MCS operation %d did not round-trip", i)
		}
	}
}

func TestParsedSchemasActuallyDecode(t *testing.T) {
	// The schemas recovered from WSDL must drive the decoder.
	doc, err := Generate(sampleService())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(op string) (*soapdec.Schema, bool) {
		for _, s := range svc.Operations {
			if s.Op == op {
				return s, true
			}
		}
		return nil, false
	}
	body := `<E:Envelope><E:Body><ns1:sendScalars>` +
		`<d xsi:type="xsd:double">2.5</d><s>hi</s><b>true</b>` +
		`</ns1:sendScalars></E:Body></E:Envelope>`
	res, err := soapdec.Decode([]byte(body), lookup, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.LeafDouble(0) != 2.5 || res.Msg.LeafString(1) != "hi" || !res.Msg.LeafBool(2) {
		t.Fatalf("decoded: %g %q %v", res.Msg.LeafDouble(0), res.Msg.LeafString(1), res.Msg.LeafBool(2))
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(&Service{Namespace: "urn:x"}); err == nil {
		t.Error("nameless service accepted")
	}
	if _, err := Generate(&Service{Name: "X", Namespace: "urn:x",
		Operations: []*soapdec.Schema{{Namespace: "urn:other", Op: "o"}}}); err == nil {
		t.Error("cross-namespace operation accepted")
	}
	// Two distinct struct types with the same local name collide.
	s1 := wire.StructOf("ns1:P", wire.Field{Name: "a", Type: wire.TInt})
	s2 := wire.StructOf("ns1:P", wire.Field{Name: "b", Type: wire.TDouble})
	if _, err := Generate(&Service{Name: "X", Namespace: "urn:x",
		Operations: []*soapdec.Schema{{
			Namespace: "urn:x", Op: "o",
			Params: []soapdec.ParamSpec{
				{Name: "p", Type: s1}, {Name: "q", Type: s2},
			},
		}}}); err == nil {
		t.Error("conflicting struct names accepted")
	}
}

func TestParseErrors(t *testing.T) {
	for name, doc := range map[string]string{
		"not xml":        "nope",
		"no namespace":   `<definitions name="X"></definitions>`,
		"missing type":   `<definitions targetNamespace="urn:x"><message name="oRequest"><part name="p" type="tns:Gone"/></message><portType><operation name="o"/></portType></definitions>`,
		"missing msg":    `<definitions targetNamespace="urn:x"><portType><operation name="o"/></portType></definitions>`,
		"truncated body": `<definitions targetNamespace="urn:x"><types>`,
	} {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestEqualSchemas(t *testing.T) {
	a := &soapdec.Schema{Namespace: "urn:x", Op: "o",
		Params: []soapdec.ParamSpec{{Name: "v", Type: wire.ArrayOf(wire.TDouble)}}}
	b := &soapdec.Schema{Namespace: "urn:x", Op: "o",
		Params: []soapdec.ParamSpec{{Name: "v", Type: wire.ArrayOf(wire.TDouble)}}}
	if !EqualSchemas(a, b) {
		t.Error("identical schemas unequal")
	}
	c := &soapdec.Schema{Namespace: "urn:x", Op: "o",
		Params: []soapdec.ParamSpec{{Name: "v", Type: wire.ArrayOf(wire.TInt)}}}
	if EqualSchemas(a, c) {
		t.Error("different element types equal")
	}
	d := &soapdec.Schema{Namespace: "urn:x", Op: "o2", Params: a.Params}
	if EqualSchemas(a, d) {
		t.Error("different ops equal")
	}
}
