// Package wsdl generates and parses WSDL 1.1 service descriptions for
// the operations this library serves. The paper situates SOAP inside
// the Web Services architecture, where "WSDL provides a precise
// description of a Web Service interface"; this package lets a bsoap
// service publish that description and a client recover the operation
// schemas (soapdec.Schema) needed to call it.
//
// The supported subset is the RPC/encoded style the rest of the
// repository speaks: scalar parts, struct complexTypes (sequences of
// scalars or structs) and item-sequence array types.
package wsdl

import (
	"fmt"
	"sort"
	"strings"

	"bsoap/internal/soapdec"
	"bsoap/internal/wire"
	"bsoap/internal/xmlparse"
	"bsoap/internal/xmlwr"
)

// Service describes one SOAP service: its operations plus addressing.
type Service struct {
	// Name is the WSDL service name.
	Name string
	// Namespace is the target namespace (must match the operations').
	Namespace string
	// Endpoint is the soap:address location.
	Endpoint string
	// Operations lists the request schemas.
	Operations []*soapdec.Schema
}

// namespace URIs used in generated documents.
const (
	nsWSDL = "http://schemas.xmlsoap.org/wsdl/"
	nsSOAP = "http://schemas.xmlsoap.org/wsdl/soap/"
	nsXSD  = "http://www.w3.org/2001/XMLSchema"
)

// Generate renders the WSDL document for svc.
func Generate(svc *Service) ([]byte, error) {
	if svc.Name == "" || svc.Namespace == "" {
		return nil, fmt.Errorf("wsdl: service needs a name and namespace")
	}
	for _, op := range svc.Operations {
		if op.Namespace != svc.Namespace {
			return nil, fmt.Errorf("wsdl: operation %q namespace %q differs from service namespace %q",
				op.Op, op.Namespace, svc.Namespace)
		}
	}

	w := xmlwr.NewWriter(4096)
	w.Decl()
	w.Start("definitions").
		Attr("name", svc.Name).
		Attr("targetNamespace", svc.Namespace).
		Attr("xmlns", nsWSDL).
		Attr("xmlns:soap", nsSOAP).
		Attr("xmlns:xsd", nsXSD).
		Attr("xmlns:tns", svc.Namespace)

	if err := writeTypes(w, svc); err != nil {
		return nil, err
	}

	// Messages: one per operation, one part per parameter.
	for _, op := range svc.Operations {
		w.Start("message").Attr("name", op.Op+"Request")
		for _, p := range op.Params {
			w.Start("part").Attr("name", p.Name).Attr("type", typeRef(p.Type)).End()
		}
		w.End()
	}

	// Port type.
	w.Start("portType").Attr("name", svc.Name+"PortType")
	for _, op := range svc.Operations {
		w.Start("operation").Attr("name", op.Op).
			Start("input").Attr("message", "tns:"+op.Op+"Request").End().
			End()
	}
	w.End()

	// Binding: RPC over HTTP.
	w.Start("binding").Attr("name", svc.Name+"Binding").Attr("type", "tns:"+svc.Name+"PortType")
	w.Start("soap:binding").Attr("style", "rpc").
		Attr("transport", "http://schemas.xmlsoap.org/soap/http").End()
	for _, op := range svc.Operations {
		w.Start("operation").Attr("name", op.Op).
			Start("soap:operation").Attr("soapAction", "").End().
			End()
	}
	w.End()

	// Service and port.
	w.Start("service").Attr("name", svc.Name).
		Start("port").Attr("name", svc.Name+"Port").Attr("binding", "tns:"+svc.Name+"Binding").
		Start("soap:address").Attr("location", svc.Endpoint).End().
		End().
		End()

	w.End() // definitions
	return w.Result()
}

// typeRef renders a parameter type reference: xsd scalars stay
// qualified; structs use tns:<local>; arrays use tns:ArrayOf<elem>.
func typeRef(t *wire.Type) string {
	switch t.Kind {
	case wire.Array:
		return "tns:ArrayOf" + localTypeName(t.Elem)
	case wire.Struct:
		return "tns:" + localTypeName(t)
	default:
		return t.Name // e.g. xsd:double
	}
}

// localTypeName strips any namespace prefix from a schema type name.
func localTypeName(t *wire.Type) string {
	if t.Kind.Scalar() {
		return xmlparse.Local(t.Name)
	}
	return xmlparse.Local(t.Name)
}

// writeTypes emits the xsd:schema with every struct and array
// complexType reachable from the operations, deterministically ordered.
func writeTypes(w *xmlwr.Writer, svc *Service) error {
	structs := map[string]*wire.Type{}
	arrays := map[string]*wire.Type{}
	var collect func(t *wire.Type) error
	collect = func(t *wire.Type) error {
		switch t.Kind {
		case wire.Array:
			name := "ArrayOf" + localTypeName(t.Elem)
			if prev, ok := arrays[name]; ok && prev.Elem != t.Elem {
				return fmt.Errorf("wsdl: conflicting array element types for %s", name)
			}
			arrays[name] = t
			return collect(t.Elem)
		case wire.Struct:
			name := localTypeName(t)
			if prev, ok := structs[name]; ok && prev != t {
				return fmt.Errorf("wsdl: two distinct struct types named %s", name)
			}
			structs[name] = t
			for _, f := range t.Fields {
				if err := collect(f.Type); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, op := range svc.Operations {
		for _, p := range op.Params {
			if err := collect(p.Type); err != nil {
				return err
			}
		}
	}
	if len(structs) == 0 && len(arrays) == 0 {
		return nil
	}

	w.Start("types")
	w.Start("xsd:schema").Attr("targetNamespace", svc.Namespace)
	for _, name := range sortedKeys(structs) {
		t := structs[name]
		w.Start("xsd:complexType").Attr("name", name)
		w.Start("xsd:sequence")
		for _, f := range t.Fields {
			w.Start("xsd:element").Attr("name", f.Name).Attr("type", typeRef(f.Type)).End()
		}
		w.End() // sequence
		w.End() // complexType
	}
	for _, name := range sortedKeys(arrays) {
		t := arrays[name]
		w.Start("xsd:complexType").Attr("name", name)
		w.Start("xsd:sequence")
		w.Start("xsd:element").Attr("name", "item").Attr("type", typeRef(t.Elem)).
			Attr("minOccurs", "0").Attr("maxOccurs", "unbounded").End()
		w.End()
		w.End()
	}
	w.End() // schema
	w.End() // types
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

// rawType is a complexType before resolution.
type rawType struct {
	name     string
	isArray  bool
	elemRef  string   // array element type reference
	fields   []string // struct field names
	fieldRef []string // struct field type references
}

// Parse recovers the service description from a WSDL document produced
// by Generate (or a compatible subset).
func Parse(doc []byte) (*Service, error) {
	p := xmlparse.NewParser(doc)
	tok, err := p.ExpectStart("definitions")
	if err != nil {
		return nil, fmt.Errorf("wsdl: %w", err)
	}
	svc := &Service{}
	for _, a := range tok.Attrs {
		switch xmlparse.Local(a.Name) {
		case "name":
			if a.Name == "name" {
				svc.Name = a.Value
			}
		case "targetNamespace":
			svc.Namespace = a.Value
		}
	}
	if svc.Namespace == "" {
		return nil, fmt.Errorf("wsdl: definitions without targetNamespace")
	}

	raw := map[string]*rawType{}
	type rawPart struct{ name, ref string }
	messages := map[string][]rawPart{}
	var opOrder []string // operation names in portType order

	for {
		tok, err := p.NextNonSpace()
		if err != nil {
			return nil, fmt.Errorf("wsdl: %w", err)
		}
		if tok.Kind == xmlparse.EndElement {
			break // </definitions>
		}
		if tok.Kind != xmlparse.StartElement {
			return nil, fmt.Errorf("wsdl: unexpected %v at top level", tok.Kind)
		}
		switch xmlparse.Local(tok.Name) {
		case "types":
			if err := parseTypes(p, raw); err != nil {
				return nil, err
			}
		case "message":
			name := attr(tok.Attrs, "name")
			var parts []rawPart
			if err := eachChild(p, func(c xmlparse.Token) error {
				if xmlparse.Local(c.Name) != "part" {
					return p.SkipElement()
				}
				parts = append(parts, rawPart{attr(c.Attrs, "name"), attr(c.Attrs, "type")})
				return p.SkipElement()
			}); err != nil {
				return nil, err
			}
			messages[name] = parts
		case "portType":
			if err := eachChild(p, func(c xmlparse.Token) error {
				if xmlparse.Local(c.Name) == "operation" {
					opOrder = append(opOrder, attr(c.Attrs, "name"))
				}
				return p.SkipElement()
			}); err != nil {
				return nil, err
			}
		case "service":
			if svc.Name == "" {
				svc.Name = attr(tok.Attrs, "name")
			}
			loc, err := findAddress(p)
			if err != nil {
				return nil, err
			}
			if loc != "" {
				svc.Endpoint = loc
			}
		default:
			if err := p.SkipElement(); err != nil {
				return nil, fmt.Errorf("wsdl: %w", err)
			}
		}
	}

	// Resolve complexTypes, then operations.
	resolved := map[string]*wire.Type{}
	var resolve func(ref string, depth int) (*wire.Type, error)
	resolve = func(ref string, depth int) (*wire.Type, error) {
		if depth > 32 {
			return nil, fmt.Errorf("wsdl: type reference cycle at %q", ref)
		}
		local := xmlparse.Local(ref)
		switch local {
		case "int":
			return wire.TInt, nil
		case "double", "float":
			return wire.TDouble, nil
		case "string":
			return wire.TString, nil
		case "boolean":
			return wire.TBool, nil
		}
		if t, ok := resolved[local]; ok {
			return t, nil
		}
		rt, ok := raw[local]
		if !ok {
			return nil, fmt.Errorf("wsdl: unresolved type reference %q", ref)
		}
		if rt.isArray {
			elem, err := resolve(rt.elemRef, depth+1)
			if err != nil {
				return nil, err
			}
			t := wire.ArrayOf(elem)
			resolved[local] = t
			return t, nil
		}
		fields := make([]wire.Field, len(rt.fields))
		for i := range rt.fields {
			ft, err := resolve(rt.fieldRef[i], depth+1)
			if err != nil {
				return nil, err
			}
			fields[i] = wire.Field{Name: rt.fields[i], Type: ft}
		}
		t := wire.StructOf("ns1:"+local, fields...)
		resolved[local] = t
		return t, nil
	}

	for _, opName := range opOrder {
		parts, ok := messages[opName+"Request"]
		if !ok {
			return nil, fmt.Errorf("wsdl: operation %q has no %sRequest message", opName, opName)
		}
		schema := &soapdec.Schema{Namespace: svc.Namespace, Op: opName}
		for _, part := range parts {
			t, err := resolve(part.ref, 0)
			if err != nil {
				return nil, fmt.Errorf("wsdl: operation %q part %q: %w", opName, part.name, err)
			}
			schema.Params = append(schema.Params, soapdec.ParamSpec{Name: part.name, Type: t})
		}
		svc.Operations = append(svc.Operations, schema)
	}
	return svc, nil
}

// parseTypes consumes <types> collecting complexType declarations.
func parseTypes(p *xmlparse.Parser, raw map[string]*rawType) error {
	return eachChild(p, func(schemaTok xmlparse.Token) error {
		if xmlparse.Local(schemaTok.Name) != "schema" {
			return p.SkipElement()
		}
		return eachChild(p, func(ct xmlparse.Token) error {
			if xmlparse.Local(ct.Name) != "complexType" {
				return p.SkipElement()
			}
			rt := &rawType{name: attr(ct.Attrs, "name")}
			if rt.name == "" {
				return fmt.Errorf("wsdl: anonymous complexType")
			}
			err := eachChild(p, func(seq xmlparse.Token) error {
				if xmlparse.Local(seq.Name) != "sequence" {
					return p.SkipElement()
				}
				return eachChild(p, func(el xmlparse.Token) error {
					if xmlparse.Local(el.Name) != "element" {
						return p.SkipElement()
					}
					name := attr(el.Attrs, "name")
					ref := attr(el.Attrs, "type")
					if attr(el.Attrs, "maxOccurs") == "unbounded" {
						rt.isArray = true
						rt.elemRef = ref
					} else {
						rt.fields = append(rt.fields, name)
						rt.fieldRef = append(rt.fieldRef, ref)
					}
					return p.SkipElement()
				})
			})
			if err != nil {
				return err
			}
			raw[rt.name] = rt
			return nil
		})
	})
}

// findAddress walks a <service> element for soap:address/@location.
func findAddress(p *xmlparse.Parser) (string, error) {
	var loc string
	err := eachChild(p, func(port xmlparse.Token) error {
		if xmlparse.Local(port.Name) != "port" {
			return p.SkipElement()
		}
		return eachChild(p, func(addr xmlparse.Token) error {
			if xmlparse.Local(addr.Name) == "address" {
				loc = attr(addr.Attrs, "location")
			}
			return p.SkipElement()
		})
	})
	return loc, err
}

// eachChild invokes fn for every child element of the element whose
// StartElement was just consumed; fn must consume the child completely
// (e.g. via SkipElement or nested eachChild). eachChild consumes the
// parent's EndElement.
func eachChild(p *xmlparse.Parser, fn func(tok xmlparse.Token) error) error {
	for {
		tok, err := p.NextNonSpace()
		if err != nil {
			return fmt.Errorf("wsdl: %w", err)
		}
		switch tok.Kind {
		case xmlparse.EndElement:
			return nil
		case xmlparse.StartElement:
			if err := fn(tok); err != nil {
				return err
			}
		default:
			return fmt.Errorf("wsdl: unexpected %v", tok.Kind)
		}
	}
}

// attr finds an attribute by local name.
func attr(attrs []xmlparse.Attr, local string) string {
	for _, a := range attrs {
		if xmlparse.Local(a.Name) == local {
			return a.Value
		}
	}
	return ""
}

// EqualSchemas reports whether two operation schemas are structurally
// identical (used by round-trip tests and clients validating a fetched
// WSDL against their expectations).
func EqualSchemas(a, b *soapdec.Schema) bool {
	if a.Op != b.Op || a.Namespace != b.Namespace || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i].Name != b.Params[i].Name {
			return false
		}
		var sa, sb strings.Builder
		a.Params[i].Type.Signature(&sa)
		b.Params[i].Type.Signature(&sb)
		if sa.String() != sb.String() {
			return false
		}
	}
	return true
}
