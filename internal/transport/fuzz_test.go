package transport

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// FuzzReadRequest asserts HTTP request parsing never panics on
// arbitrary input.
func FuzzReadRequest(f *testing.F) {
	seeds := []string{
		"",
		"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n",
		"GET /wsdl HTTP/1.1\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: 999999999999999999999\r\n\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
		"\r\n\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bufio.NewReader(strings.NewReader(string(data))))
		if err == nil && req == nil {
			t.Fatal("nil request without error")
		}
	})
}

// scriptedConn is a fake net.Conn whose read side replays a canned byte
// stream (then EOF) and whose write side discards — the response-stream
// analogue of strings.Reader for fuzzing the pipelined reader.
type scriptedConn struct {
	mu     sync.Mutex
	r      *bytes.Reader
	closed bool
}

func (c *scriptedConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	return c.r.Read(b)
}

func (c *scriptedConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	return len(b), nil
}

func (c *scriptedConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *scriptedConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *scriptedConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *scriptedConn) SetDeadline(time.Time) error      { return nil }
func (c *scriptedConn) SetReadDeadline(time.Time) error  { return nil }
func (c *scriptedConn) SetWriteDeadline(time.Time) error { return nil }

var _ io.ReadWriteCloser = (*scriptedConn)(nil)

// FuzzPipelineResponses feeds an arbitrary byte stream to the pipelined
// response reader: however the stream parses (valid responses, garbage
// framing, truncation mid-header or mid-body), the pipeline must not
// panic, and every submitted Pending must resolve — with its in-order
// response or with the pipeline's sticky error once the stream breaks.
func FuzzPipelineResponses(f *testing.F) {
	ok := "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi"
	seeds := []string{
		"",
		ok,
		ok + ok + ok,
		ok + "HTTP/1.1 500 Oops\r\nContent-Length: 0\r\n\r\n" + ok,
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nhi\r\n0\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\ntruncated",
		"HTTP/1.1 200\r\n\r\n",
		"garbage that is not HTTP at all",
		ok[:17],
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		conn := &scriptedConn{r: bytes.NewReader(data)}
		s := NewSender(conn, SenderOptions{Version: HTTP11})
		pl := NewPipeline(s, 4)
		var pending []*Pending
		for i := 0; i < 3; i++ {
			p, err := pl.SendAsync(net.Buffers{[]byte("<m/>")})
			if err != nil {
				break // pipeline already broken by a parsed-garbage read
			}
			pending = append(pending, p)
		}
		for i, p := range pending {
			select {
			case <-p.Done():
			case <-time.After(10 * time.Second):
				t.Fatalf("pending %d never resolved", i)
			}
			if p.Wait() == nil && p.Status()/100 != 2 {
				t.Fatalf("pending %d: nil error for status %d", i, p.Status())
			}
		}
		pl.Close()
	})
}
