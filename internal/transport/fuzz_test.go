package transport

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzReadRequest asserts HTTP request parsing never panics on
// arbitrary input.
func FuzzReadRequest(f *testing.F) {
	seeds := []string{
		"",
		"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n",
		"GET /wsdl HTTP/1.1\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: 999999999999999999999\r\n\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
		"\r\n\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bufio.NewReader(strings.NewReader(string(data))))
		if err == nil && req == nil {
			t.Fatal("nil request without error")
		}
	})
}
