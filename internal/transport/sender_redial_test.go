package transport

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
)

// oneShotServer accepts connections, serves exactly one request per
// connection (202), then closes it — so a Sender's second Send on the
// same connection fails and must Redial.
func oneShotServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, err := ReadRequest(bufio.NewReader(conn)); err != nil {
					return
				}
				_ = WriteResponse(conn, 202, "", nil)
			}(conn)
		}
	}()
	return ln
}

func TestSenderRedial(t *testing.T) {
	ln := oneShotServer(t)
	defer ln.Close()

	s, err := Dial(ln.Addr().String(), SenderOptions{ExpectResponse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	body := net.Buffers{[]byte("<env>1</env>")}
	if err := s.Send(body); err != nil {
		t.Fatalf("first send: %v", err)
	}

	// The server hung up after the first request: keep sending until the
	// failure surfaces (the first write after close can land in kernel
	// buffers), then recover with Redial.
	var sendErr error
	for i := 0; i < 10 && sendErr == nil; i++ {
		sendErr = s.Send(body)
	}
	if sendErr == nil {
		t.Fatal("send on closed connection never failed")
	}

	if err := s.Redial(); err != nil {
		t.Fatalf("redial: %v", err)
	}
	if err := s.Send(body); err != nil {
		t.Fatalf("send after redial: %v", err)
	}
}

func TestSenderCloseIdempotent(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	s := NewSender(c1, SenderOptions{})
	if err := s.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	// A raw double net.Conn close errors; the Sender must absorb it.
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestRedialRequiresDial(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	s := NewSender(c1, SenderOptions{})
	if err := s.Redial(); !errors.Is(err, ErrNotDialed) {
		t.Fatalf("Redial on wrapped conn: got %v, want ErrNotDialed", err)
	}
}

// TestSenderConcurrentClose exercises Close from many goroutines under
// the race detector: exactly one must reach the connection, the rest are
// no-ops.
func TestSenderConcurrentClose(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	s := NewSender(c1, SenderOptions{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Errorf("concurrent close: %v", err)
			}
		}()
	}
	wg.Wait()
}
