// Package transport carries serialized SOAP messages. It implements,
// from scratch over net.Conn, the slice of HTTP the paper's measurements
// rely on: POST framing with Content-Length (HTTP/1.0-style, with
// keep-alive) and HTTP/1.1 chunked transfer encoding for streamed sends,
// plus the discard server used to isolate client Send Time and an
// in-process sink for jitter-free benchmarking.
package transport

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Request is one parsed HTTP request.
type Request struct {
	Method  string
	Target  string
	Proto   string
	Headers map[string]string // keys lower-cased
	Body    []byte
}

// Response is one parsed HTTP response.
type Response struct {
	Proto   string
	Status  int
	Headers map[string]string
	Body    []byte
}

// ErrConnClosed reports a cleanly closed connection between messages.
var ErrConnClosed = errors.New("transport: connection closed")

// MaxHeaderBytes bounds a message's header section.
const MaxHeaderBytes = 64 * 1024

// MaxBodyBytes bounds a message body (defensive; experiments stay far
// below it).
const MaxBodyBytes = 1 << 30

// readHeaders parses "Key: Value" lines up to the blank line.
func readHeaders(br *bufio.Reader) (map[string]string, error) {
	h := make(map[string]string, 8)
	total := 0
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("transport: reading header: %w", err)
		}
		total += len(line)
		if total > MaxHeaderBytes {
			return nil, errors.New("transport: header section too large")
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			return h, nil
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("transport: malformed header line %q", line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:colon]))
		h[key] = strings.TrimSpace(line[colon+1:])
	}
}

// readBody consumes the message body per the framing headers,
// transparently decoding gzip content encoding.
func readBody(br *bufio.Reader, h map[string]string) ([]byte, error) {
	body, err := readRawBody(br, h)
	if err != nil {
		return nil, err
	}
	if ce, ok := h["content-encoding"]; ok {
		if !strings.EqualFold(ce, "gzip") {
			return nil, fmt.Errorf("transport: unsupported content encoding %q", ce)
		}
		zr, err := gzip.NewReader(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("transport: gzip body: %w", err)
		}
		out, err := io.ReadAll(io.LimitReader(zr, MaxBodyBytes+1))
		if err != nil {
			return nil, fmt.Errorf("transport: gzip body: %w", err)
		}
		if len(out) > MaxBodyBytes {
			return nil, errors.New("transport: decompressed body too large")
		}
		return out, nil
	}
	return body, nil
}

// readRawBody reads the framed (still possibly compressed) body bytes.
func readRawBody(br *bufio.Reader, h map[string]string) ([]byte, error) {
	if te, ok := h["transfer-encoding"]; ok {
		if !strings.EqualFold(te, "chunked") {
			return nil, fmt.Errorf("transport: unsupported transfer encoding %q", te)
		}
		return readChunkedBody(br)
	}
	cl, ok := h["content-length"]
	if !ok {
		return nil, errors.New("transport: message without content-length or chunked encoding")
	}
	n, err := strconv.ParseInt(cl, 10, 64)
	if err != nil || n < 0 || n > MaxBodyBytes {
		return nil, fmt.Errorf("transport: bad content-length %q", cl)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, fmt.Errorf("transport: reading body: %w", err)
	}
	return body, nil
}

// readChunkedBody decodes an HTTP/1.1 chunked body.
func readChunkedBody(br *bufio.Reader) ([]byte, error) {
	var body []byte
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("transport: reading chunk size: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if semi := strings.IndexByte(line, ';'); semi >= 0 {
			line = line[:semi] // chunk extensions, ignored
		}
		size, err := strconv.ParseUint(strings.TrimSpace(line), 16, 32)
		if err != nil {
			return nil, fmt.Errorf("transport: bad chunk size %q", line)
		}
		if size == 0 {
			// Trailer section: consume up to the final blank line.
			for {
				t, err := br.ReadString('\n')
				if err != nil {
					return nil, fmt.Errorf("transport: reading trailer: %w", err)
				}
				if strings.TrimRight(t, "\r\n") == "" {
					return body, nil
				}
			}
		}
		if len(body)+int(size) > MaxBodyBytes {
			return nil, errors.New("transport: chunked body too large")
		}
		off := len(body)
		body = append(body, make([]byte, size)...)
		if _, err := io.ReadFull(br, body[off:]); err != nil {
			return nil, fmt.Errorf("transport: reading chunk data: %w", err)
		}
		var crlf [2]byte
		if _, err := io.ReadFull(br, crlf[:]); err != nil || crlf != [2]byte{'\r', '\n'} {
			return nil, errors.New("transport: chunk data not CRLF-terminated")
		}
	}
}

// ReadRequest parses one HTTP request from br. io.EOF before the first
// byte maps to ErrConnClosed so servers distinguish clean closes.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		if err == io.EOF && line == "" {
			return nil, ErrConnClosed
		}
		return nil, fmt.Errorf("transport: reading request line: %w", err)
	}
	parts := strings.Fields(strings.TrimRight(line, "\r\n"))
	if len(parts) != 3 {
		return nil, fmt.Errorf("transport: malformed request line %q", line)
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2]}
	if req.Headers, err = readHeaders(br); err != nil {
		return nil, err
	}
	if req.Method == "GET" || req.Method == "HEAD" {
		return req, nil
	}
	if req.Body, err = readBody(br, req.Headers); err != nil {
		return nil, err
	}
	return req, nil
}

// ReadResponse parses one HTTP response from br.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		if err == io.EOF && line == "" {
			return nil, ErrConnClosed
		}
		return nil, fmt.Errorf("transport: reading status line: %w", err)
	}
	parts := strings.SplitN(strings.TrimRight(line, "\r\n"), " ", 3)
	if len(parts) < 2 {
		return nil, fmt.Errorf("transport: malformed status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("transport: bad status %q", parts[1])
	}
	resp := &Response{Proto: parts[0], Status: status}
	if resp.Headers, err = readHeaders(br); err != nil {
		return nil, err
	}
	if status == 204 || status == 304 {
		return resp, nil
	}
	if resp.Body, err = readBody(br, resp.Headers); err != nil {
		return nil, err
	}
	return resp, nil
}

// WriteResponse writes a complete HTTP/1.1 response with Content-Length
// framing.
func WriteResponse(w io.Writer, status int, contentType string, body []byte) error {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", status, statusText(status))
	if contentType != "" {
		fmt.Fprintf(&b, "Content-Type: %s\r\n", contentType)
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n", len(body))
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func statusText(status int) string {
	switch status {
	case 200:
		return "OK"
	case 202:
		return "Accepted"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	}
	return "Status"
}
