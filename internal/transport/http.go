// Package transport carries serialized SOAP messages. It implements,
// from scratch over net.Conn, the slice of HTTP the paper's measurements
// rely on: POST framing with Content-Length (HTTP/1.0-style, with
// keep-alive) and HTTP/1.1 chunked transfer encoding for streamed sends,
// plus the discard server used to isolate client Send Time and an
// in-process sink for jitter-free benchmarking.
package transport

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bsoap/internal/wire"
)

// Request is one parsed HTTP request. A Request reused across messages
// with ReadRequestInto keeps its header map, body array and string
// intern cache, so steady-state parsing on a keep-alive connection does
// not allocate; consumers that retain any part of a reused request past
// the next ReadRequestInto must copy it.
type Request struct {
	Method  string
	Target  string
	Proto   string
	Headers map[string]string // keys lower-cased
	Body    []byte

	// ConnID identifies the connection the request arrived on: unique
	// per accepted connection within one Server, stable across the
	// connection's keep-alive requests, never zero when set by a Server.
	// Handlers use it for connection-affine state (serverpool keys its
	// differential-deserializer replicas by it).
	ConnID uint64
	// RemoteAddr is the peer address of the connection (host:port),
	// for client-affine keying and logging. Set by the Server alongside
	// ConnID; zero for requests parsed outside a Server.
	RemoteAddr string

	// TraceSpan is the client's flight-recorder span id, parsed from the
	// X-BSoap-Trace header (hex); zero when the request carried none.
	// Server-side trace events record it so the inspector can join
	// client and server rings into one cross-process timeline.
	TraceSpan uint64

	// DeltaMode classifies the request's X-BSoap-Delta header: none, a
	// full body offered as a delta base (sync), or a patch frame body.
	// DeltaTID/DeltaEpoch carry the sync header's template identity.
	DeltaMode  DeltaMode
	DeltaTID   uint64
	DeltaEpoch uint64

	// DeltaAck* are outputs: a delta-capable handler sets them after
	// storing a sync request's body as a patch base, and the server
	// echoes them as the response's X-BSoap-Delta ack header — the
	// capability signal delta negotiation rides on.
	DeltaAck      bool
	DeltaAckTID   uint64
	DeltaAckEpoch uint64

	// recvNs is the UnixNano at which the Server finished reading the
	// request; dispatch attributes recv→dispatch time to the
	// server-queue latency stage. Zero outside a Server.
	recvNs int64

	scratch parseScratch
}

// DeltaMode classifies a request's differential-transmission intent.
type DeltaMode uint8

const (
	// DeltaNone is a plain request (no X-BSoap-Delta header).
	DeltaNone DeltaMode = iota
	// DeltaSync is a full body the client offers as a patch base.
	DeltaSync
	// DeltaPatch is a binary patch frame in place of the XML body.
	DeltaPatch
)

// Response is one parsed HTTP response. The reuse contract matches
// Request's: ReadResponseInto recycles the map, body and interns.
type Response struct {
	Proto   string
	Status  int
	Headers map[string]string
	Body    []byte

	scratch parseScratch
}

// parseScratch is the reusable state behind ReadRequestInto and
// ReadResponseInto: a line buffer for headers longer than the reader's
// window, the body backing array, and an intern cache mapping header and
// status strings to previously allocated copies. On a connection
// carrying the same shape of message repeatedly — the differential
// steady state — every lookup hits and parsing allocates nothing.
type parseScratch struct {
	line    []byte
	body    []byte
	interns map[string]string
}

// intern returns the cached string equal to b, allocating only on first
// sight. The cache is bounded; a pathological peer cycling values resets
// it rather than growing it without limit.
func (ps *parseScratch) intern(b []byte) string {
	if s, ok := ps.interns[string(b)]; ok { // no alloc: lookup conversion
		return s
	}
	if ps.interns == nil || len(ps.interns) >= maxInterned {
		ps.interns = make(map[string]string, 16)
	}
	s := string(b)
	ps.interns[s] = s
	return s
}

// maxInterned bounds a connection's intern cache.
const maxInterned = 1024

// ErrConnClosed reports a cleanly closed connection between messages.
var ErrConnClosed = errors.New("transport: connection closed")

// MaxHeaderBytes bounds a message's header section.
const MaxHeaderBytes = 64 * 1024

// MaxBodyBytes bounds a message body (defensive; experiments stay far
// below it).
const MaxBodyBytes = 1 << 30

// readLine returns the next \n-terminated line including the terminator.
// The fast path hands back a slice of br's internal buffer, valid only
// until the next read; lines longer than the buffer accumulate into
// *scratch. An incomplete final line is returned alongside its error.
func readLine(br *bufio.Reader, scratch *[]byte) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == nil || err != bufio.ErrBufferFull {
		return line, err
	}
	buf := append((*scratch)[:0], line...)
	for {
		line, err = br.ReadSlice('\n')
		buf = append(buf, line...)
		*scratch = buf
		if err != bufio.ErrBufferFull {
			return buf, err
		}
		if len(buf) > MaxHeaderBytes {
			return buf, errors.New("transport: line too long")
		}
	}
}

// trimCRLF strips one trailing "\n" or "\r\n".
func trimCRLF(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// lowerASCIIInPlace lowercases b where it lies. Callers pass slices of
// already-consumed reader buffer or scratch, which nothing else reads.
func lowerASCIIInPlace(b []byte) []byte {
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return b
}

// parseUintBytes is strconv.ParseUint(string(b), base, 32) without the
// string conversion or allocation; base is 10 or 16.
func parseUintBytes[T ~string | ~[]byte](b T, base uint64) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for i := 0; i < len(b); i++ {
		c := b[i]
		var d uint64
		switch {
		case '0' <= c && c <= '9':
			d = uint64(c - '0')
		case base == 16 && 'a' <= c && c <= 'f':
			d = uint64(c-'a') + 10
		case base == 16 && 'A' <= c && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		n = n*base + d
		if n > 1<<32 {
			return 0, false
		}
	}
	return n, true
}

// parseHex64 parses a full-range lowercase/uppercase hex uint64 — the
// X-BSoap-Trace span id, which parseUintBytes cannot carry (it rejects
// values above 1<<32, a guard sized for lengths and status codes).
func parseHex64(s string) (uint64, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	var n uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case '0' <= c && c <= '9':
			d = uint64(c - '0')
		case 'a' <= c && c <= 'f':
			d = uint64(c-'a') + 10
		case 'A' <= c && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		n = n<<4 | d
	}
	return n, true
}

// fields3 splits line into exactly three whitespace-separated tokens.
func fields3(line []byte) (a, b, c []byte, ok bool) {
	var out [3][]byte
	n := 0
	for i := 0; i < len(line); {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i == len(line) {
			break
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if n == 3 {
			return nil, nil, nil, false
		}
		out[n] = line[start:i]
		n++
	}
	return out[0], out[1], out[2], n == 3
}

// readHeadersInto parses "Key: Value" lines up to the blank line into h,
// which is cleared and reused (or allocated when nil).
func readHeadersInto(br *bufio.Reader, h map[string]string, ps *parseScratch) (map[string]string, error) {
	if h == nil {
		h = make(map[string]string, 8)
	} else {
		clear(h)
	}
	total := 0
	for {
		line, err := readLine(br, &ps.line)
		if err != nil {
			return nil, fmt.Errorf("transport: reading header: %w", err)
		}
		total += len(line)
		if total > MaxHeaderBytes {
			return nil, errors.New("transport: header section too large")
		}
		line = trimCRLF(line)
		if len(line) == 0 {
			return h, nil
		}
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("transport: malformed header line %q", line)
		}
		key := lowerASCIIInPlace(bytes.TrimSpace(line[:colon]))
		val := bytes.TrimSpace(line[colon+1:])
		h[ps.intern(key)] = ps.intern(val)
	}
}

// readBodyInto consumes the message body per the framing headers into
// ps.body, transparently decoding gzip content encoding (the decode
// path allocates; compressed connections are off the zero-alloc
// contract).
func readBodyInto(br *bufio.Reader, h map[string]string, ps *parseScratch) ([]byte, error) {
	body, err := readRawBodyInto(br, h, ps)
	if err != nil {
		return nil, err
	}
	if ce, ok := h["content-encoding"]; ok {
		if !strings.EqualFold(ce, "gzip") {
			return nil, fmt.Errorf("transport: unsupported content encoding %q", ce)
		}
		zr, err := gzip.NewReader(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("transport: gzip body: %w", err)
		}
		out, err := io.ReadAll(io.LimitReader(zr, MaxBodyBytes+1))
		if err != nil {
			return nil, fmt.Errorf("transport: gzip body: %w", err)
		}
		if len(out) > MaxBodyBytes {
			return nil, errors.New("transport: decompressed body too large")
		}
		return out, nil
	}
	return body, nil
}

// readRawBodyInto reads the framed (still possibly compressed) body
// bytes into ps.body.
func readRawBodyInto(br *bufio.Reader, h map[string]string, ps *parseScratch) ([]byte, error) {
	if te, ok := h["transfer-encoding"]; ok {
		if !strings.EqualFold(te, "chunked") {
			return nil, fmt.Errorf("transport: unsupported transfer encoding %q", te)
		}
		return readChunkedBodyInto(br, ps)
	}
	cl, ok := h["content-length"]
	if !ok {
		return nil, errors.New("transport: message without content-length or chunked encoding")
	}
	n, okn := parseUintBytes(cl, 10)
	if !okn || n > MaxBodyBytes {
		return nil, fmt.Errorf("transport: bad content-length %q", cl)
	}
	if uint64(cap(ps.body)) < n {
		ps.body = make([]byte, n)
	}
	body := ps.body[:n]
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, fmt.Errorf("transport: reading body: %w", err)
	}
	return body, nil
}

// readChunkedBodyInto decodes an HTTP/1.1 chunked body into ps.body.
func readChunkedBodyInto(br *bufio.Reader, ps *parseScratch) ([]byte, error) {
	body := ps.body[:0]
	for {
		line, err := readLine(br, &ps.line)
		if err != nil {
			return nil, fmt.Errorf("transport: reading chunk size: %w", err)
		}
		line = trimCRLF(line)
		if semi := bytes.IndexByte(line, ';'); semi >= 0 {
			line = line[:semi] // chunk extensions, ignored
		}
		size, ok := parseUintBytes(bytes.TrimSpace(line), 16)
		if !ok {
			return nil, fmt.Errorf("transport: bad chunk size %q", line)
		}
		if size == 0 {
			// Trailer section: consume up to the final blank line.
			for {
				t, err := readLine(br, &ps.line)
				if err != nil {
					return nil, fmt.Errorf("transport: reading trailer: %w", err)
				}
				if len(trimCRLF(t)) == 0 {
					ps.body = body
					return body, nil
				}
			}
		}
		if uint64(len(body))+size > MaxBodyBytes {
			return nil, errors.New("transport: chunked body too large")
		}
		off := len(body)
		need := off + int(size)
		for cap(body) < need {
			body = append(body[:cap(body)], 0)
		}
		body = body[:need]
		ps.body = body
		if _, err := io.ReadFull(br, body[off:]); err != nil {
			return nil, fmt.Errorf("transport: reading chunk data: %w", err)
		}
		var crlf [2]byte
		if _, err := io.ReadFull(br, crlf[:]); err != nil || crlf != [2]byte{'\r', '\n'} {
			return nil, errors.New("transport: chunk data not CRLF-terminated")
		}
	}
}

// ReadRequest parses one HTTP request from br. io.EOF before the first
// byte maps to ErrConnClosed so servers distinguish clean closes.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	req := &Request{}
	if err := ReadRequestInto(br, req); err != nil {
		return nil, err
	}
	return req, nil
}

// ReadRequestInto parses one HTTP request into req, reusing its header
// map, body backing and intern cache. Everything reachable from req is
// valid only until the next ReadRequestInto on it.
func ReadRequestInto(br *bufio.Reader, req *Request) error {
	line, err := readLine(br, &req.scratch.line)
	if err != nil {
		if err == io.EOF && len(line) == 0 {
			return ErrConnClosed
		}
		return fmt.Errorf("transport: reading request line: %w", err)
	}
	method, target, proto, ok := fields3(trimCRLF(line))
	if !ok {
		return fmt.Errorf("transport: malformed request line %q", line)
	}
	ps := &req.scratch
	req.Method = ps.intern(method)
	req.Target = ps.intern(target)
	req.Proto = ps.intern(proto)
	if req.Headers, err = readHeadersInto(br, req.Headers, ps); err != nil {
		return err
	}
	// Reset-then-parse: a keep-alive connection must not leak a previous
	// request's span onto one that carried no header.
	req.TraceSpan = 0
	if v, ok := req.Headers["x-bsoap-trace"]; ok {
		if span, okp := parseHex64(v); okp {
			req.TraceSpan = span
		}
	}
	// Same reset-then-parse discipline for delta negotiation state, both
	// the parsed inputs and the handler-set ack outputs.
	req.DeltaMode, req.DeltaTID, req.DeltaEpoch = DeltaNone, 0, 0
	req.DeltaAck, req.DeltaAckTID, req.DeltaAckEpoch = false, 0, 0
	if v, ok := req.Headers[wire.DeltaHeaderKey]; ok {
		if v == wire.DeltaValPatch {
			req.DeltaMode = DeltaPatch
		} else if tid, epoch, okp := wire.ParseDeltaSync(v); okp {
			req.DeltaMode, req.DeltaTID, req.DeltaEpoch = DeltaSync, tid, epoch
		}
	}
	req.Body = nil
	if req.Method == "GET" || req.Method == "HEAD" {
		return nil
	}
	req.Body, err = readBodyInto(br, req.Headers, ps)
	return err
}

// ReadResponse parses one HTTP response from br.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	resp := &Response{}
	if err := ReadResponseInto(br, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// ReadResponseInto parses one HTTP response into resp under the same
// reuse contract as ReadRequestInto.
func ReadResponseInto(br *bufio.Reader, resp *Response) error {
	line, err := readLine(br, &resp.scratch.line)
	if err != nil {
		if err == io.EOF && len(line) == 0 {
			return ErrConnClosed
		}
		return fmt.Errorf("transport: reading status line: %w", err)
	}
	line = trimCRLF(line)
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 {
		return fmt.Errorf("transport: malformed status line %q", line)
	}
	proto, rest := line[:sp], line[sp+1:]
	statusB := rest
	if sp2 := bytes.IndexByte(rest, ' '); sp2 >= 0 {
		statusB = rest[:sp2] // reason phrase ignored
	}
	status, ok := parseUintBytes(statusB, 10)
	if !ok {
		return fmt.Errorf("transport: bad status %q", statusB)
	}
	ps := &resp.scratch
	resp.Proto = ps.intern(proto)
	resp.Status = int(status)
	if resp.Headers, err = readHeadersInto(br, resp.Headers, ps); err != nil {
		return err
	}
	resp.Body = nil
	if resp.Status == 204 || resp.Status == 304 {
		return nil
	}
	resp.Body, err = readBodyInto(br, resp.Headers, ps)
	return err
}

// WriteResponse writes a complete HTTP/1.1 response with Content-Length
// framing. The header section is assembled in one stack buffer — no
// per-response builder.
func WriteResponse(w io.Writer, status int, contentType string, body []byte) error {
	return WriteResponseExtra(w, status, contentType, nil, body)
}

// WriteResponseExtra is WriteResponse with one raw extra header section
// spliced in before the blank line. extra must be complete CRLF-
// terminated header lines (e.g. "X-BSoap-Delta: ack=1.0\r\n"), or nil.
func WriteResponseExtra(w io.Writer, status int, contentType string, extra, body []byte) error {
	var hdr [224]byte
	b := append(hdr[:0], "HTTP/1.1 "...)
	b = strconv.AppendInt(b, int64(status), 10)
	b = append(b, ' ')
	b = append(b, statusText(status)...)
	b = append(b, crlf...)
	if contentType != "" {
		b = append(b, "Content-Type: "...)
		b = append(b, contentType...)
		b = append(b, crlf...)
	}
	b = append(b, extra...)
	b = append(b, "Content-Length: "...)
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, crlf...)
	b = append(b, crlf...)
	if _, err := w.Write(b); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	_, err := w.Write(body)
	return err
}

func statusText(status int) string {
	switch status {
	case 200:
		return "OK"
	case 202:
		return "Accepted"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 409:
		return "Conflict"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	}
	return "Status"
}
