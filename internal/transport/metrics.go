package transport

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"sync/atomic"

	"bsoap/internal/promtext"
)

// ServerMetrics is the server-side counterpart of pool.Metrics: a
// registry of counters a receiving endpoint cares about. One instance
// can back several Servers (e.g. a plain and a TLS listener) since every
// field is an independent atomic.
type ServerMetrics struct {
	requests     atomic.Int64
	bytesIn      atomic.Int64
	parseErrors  atomic.Int64
	deadlineHits atomic.Int64
	activeConns  atomic.Int64
	connsTotal   atomic.Int64
}

// NewServerMetrics returns an empty registry.
func NewServerMetrics() *ServerMetrics { return &ServerMetrics{} }

// ServerStats is a point-in-time snapshot of ServerMetrics, shaped for
// JSON.
type ServerStats struct {
	Requests     int64 `json:"requests"`
	BytesIn      int64 `json:"bytes_in"`
	ParseErrors  int64 `json:"parse_errors"`
	DeadlineHits int64 `json:"deadline_hits"`
	ActiveConns  int64 `json:"active_conns"`
	ConnsTotal   int64 `json:"conns_total"`
}

// Snapshot reads every counter. Counters are read independently, so a
// snapshot taken mid-request may be off by one between related fields.
func (m *ServerMetrics) Snapshot() ServerStats {
	return ServerStats{
		Requests:     m.requests.Load(),
		BytesIn:      m.bytesIn.Load(),
		ParseErrors:  m.parseErrors.Load(),
		DeadlineHits: m.deadlineHits.Load(),
		ActiveConns:  m.activeConns.Load(),
		ConnsTotal:   m.connsTotal.Load(),
	}
}

// connOpened / connClosed maintain the active-connection gauge.
func (m *ServerMetrics) connOpened() {
	m.activeConns.Add(1)
	m.connsTotal.Add(1)
}

func (m *ServerMetrics) connClosed() { m.activeConns.Add(-1) }

// recordRequest counts one fully received request body.
func (m *ServerMetrics) recordRequest(bodyLen int) {
	m.requests.Add(1)
	m.bytesIn.Add(int64(bodyLen))
}

// recordReadError classifies a failed request read: a timeout (possibly
// wrapped) is a deadline hit, anything else that isn't a clean close is
// a parse (or framing) error.
func (m *ServerMetrics) recordReadError(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		m.deadlineHits.Add(1)
		return
	}
	m.parseErrors.Add(1)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (m *ServerMetrics) WritePrometheus(w io.Writer) error {
	st := m.Snapshot()
	p := promtext.New(w)
	p.Counter("bsoap_server_requests_total", "Requests fully received.", st.Requests)
	p.Counter("bsoap_server_bytes_in_total", "Request body bytes received.", st.BytesIn)
	p.Counter("bsoap_server_parse_errors_total", "Requests aborted by a framing or parse error.", st.ParseErrors)
	p.Counter("bsoap_server_deadline_hits_total", "Request reads aborted by an I/O deadline.", st.DeadlineHits)
	p.Counter("bsoap_server_conns_total", "Connections accepted.", st.ConnsTotal)
	p.Gauge("bsoap_server_active_conns", "Connections currently open.", st.ActiveConns)
	return p.Err()
}

// PrometheusHandler serves the registry as a /metrics scrape target.
func (m *ServerMetrics) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", promtext.ContentType)
		_ = m.WritePrometheus(w)
	})
}

// StatsHandler serves the registry as indented JSON.
func (m *ServerMetrics) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
}
