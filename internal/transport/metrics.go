package transport

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"

	"bsoap/internal/promtext"
	"bsoap/internal/replica"
	"bsoap/internal/trace"
)

// ServerMetrics is the server-side counterpart of pool.Metrics: a
// registry of counters a receiving endpoint cares about. One instance
// can back several Servers (e.g. a plain and a TLS listener) since every
// field is an independent atomic.
type ServerMetrics struct {
	requests     atomic.Int64
	bytesIn      atomic.Int64
	parseErrors  atomic.Int64
	deadlineHits atomic.Int64
	activeConns  atomic.Int64
	connsTotal   atomic.Int64

	// Admission control and drain (the concurrent server runtime).
	inFlight         atomic.Int64
	rejectedConns    atomic.Int64
	rejectedRequests atomic.Int64
	drainAborted     atomic.Int64

	// Differential-deserialization outcomes, recorded by the serverpool
	// runtime (the transport itself never parses SOAP).
	ddsFastPath            atomic.Int64
	ddsFullParses          atomic.Int64
	ddsValuesReparsed      atomic.Int64
	ddsKeyEvictions        atomic.Int64
	replicaEvictions       atomic.Int64
	replicaBudgetEvictions atomic.Int64

	// Differential transmission (the delta-wire protocol): patch frames
	// applied, bases stored from sync-annotated full sends, resync
	// rejections, bases evicted, and the wire-vs-represented byte split
	// for delta-negotiated requests.
	deltaApplied       atomic.Int64
	deltaSyncs         atomic.Int64
	deltaResyncs       atomic.Int64
	deltaBaseEvictions atomic.Int64
	deltaWireBytes     atomic.Int64
	deltaRepresented   atomic.Int64

	// templateSource, when set, snapshots the serverpool replica
	// registry's byte accounting so the template-memory gauges come
	// straight from the budget enforcer.
	templateSource atomic.Pointer[func() replica.Counters]

	// Stages is the always-on per-stage latency attribution histogram
	// (server stages: server_queue, decode, handler, respond, write),
	// exposed as bsoap_server_stage_seconds. The transport records queue
	// and write; serverpool records decode, handler and respond.
	Stages trace.StageHist
}

// NewServerMetrics returns an empty registry.
func NewServerMetrics() *ServerMetrics { return &ServerMetrics{} }

// ServerStats is a point-in-time snapshot of ServerMetrics, shaped for
// JSON.
type ServerStats struct {
	Requests     int64 `json:"requests"`
	BytesIn      int64 `json:"bytes_in"`
	ParseErrors  int64 `json:"parse_errors"`
	DeadlineHits int64 `json:"deadline_hits"`
	ActiveConns  int64 `json:"active_conns"`
	ConnsTotal   int64 `json:"conns_total"`

	InFlight         int64 `json:"in_flight"`
	RejectedConns    int64 `json:"rejected_conns"`
	RejectedRequests int64 `json:"rejected_requests"`
	DrainAborted     int64 `json:"drain_aborted"`

	DDSFastPath       int64 `json:"dds_fast_path"`
	DDSFullParses     int64 `json:"dds_full_parses"`
	DDSValuesReparsed int64 `json:"dds_values_reparsed"`
	DDSKeyEvictions   int64 `json:"dds_key_evictions"`
	ReplicaEvictions  int64 `json:"replica_evictions"`

	// ReplicaBudgetEvictions is the subset of ReplicaEvictions driven by
	// the MaxTemplateBytes budget; the rest is the replica count cap.
	ReplicaBudgetEvictions int64 `json:"replica_budget_evictions"`

	// Differential transmission: DeltaApplied counts patch frames applied
	// to a held base; DeltaSyncs counts full bodies stored as bases;
	// DeltaResyncs counts 409 resync answers; DeltaBaseEvictions counts
	// bases dropped (cap, eviction, or checksum failure).
	// DeltaWireBytes/DeltaRepresented split delta-negotiated request
	// traffic into bytes that crossed the wire versus body bytes they
	// represent after reconstruction.
	DeltaApplied       int64 `json:"delta_applied"`
	DeltaSyncs         int64 `json:"delta_syncs"`
	DeltaResyncs       int64 `json:"delta_resyncs"`
	DeltaBaseEvictions int64 `json:"delta_base_evictions"`
	DeltaWireBytes     int64 `json:"delta_wire_bytes"`
	DeltaRepresented   int64 `json:"delta_represented_bytes"`
	// TemplateBytes gauges the replica registry's accounted template
	// memory; TemplateBytesHighWater is its lifetime maximum.
	TemplateBytes          int64 `json:"template_bytes"`
	TemplateBytesHighWater int64 `json:"template_bytes_high_water"`
}

// Snapshot reads every counter. Counters are read independently, so a
// snapshot taken mid-request may be off by one between related fields.
func (m *ServerMetrics) Snapshot() ServerStats {
	st := ServerStats{
		Requests:     m.requests.Load(),
		BytesIn:      m.bytesIn.Load(),
		ParseErrors:  m.parseErrors.Load(),
		DeadlineHits: m.deadlineHits.Load(),
		ActiveConns:  m.activeConns.Load(),
		ConnsTotal:   m.connsTotal.Load(),

		InFlight:         m.inFlight.Load(),
		RejectedConns:    m.rejectedConns.Load(),
		RejectedRequests: m.rejectedRequests.Load(),
		DrainAborted:     m.drainAborted.Load(),

		DDSFastPath:       m.ddsFastPath.Load(),
		DDSFullParses:     m.ddsFullParses.Load(),
		DDSValuesReparsed: m.ddsValuesReparsed.Load(),
		DDSKeyEvictions:   m.ddsKeyEvictions.Load(),
		ReplicaEvictions:  m.replicaEvictions.Load(),

		ReplicaBudgetEvictions: m.replicaBudgetEvictions.Load(),

		DeltaApplied:       m.deltaApplied.Load(),
		DeltaSyncs:         m.deltaSyncs.Load(),
		DeltaResyncs:       m.deltaResyncs.Load(),
		DeltaBaseEvictions: m.deltaBaseEvictions.Load(),
		DeltaWireBytes:     m.deltaWireBytes.Load(),
		DeltaRepresented:   m.deltaRepresented.Load(),
	}
	if f := m.templateSource.Load(); f != nil {
		c := (*f)()
		st.TemplateBytes = c.Bytes
		st.TemplateBytesHighWater = c.HighWater
	}
	return st
}

// RecordDDSDecode counts one decoded request: fast differential decodes
// versus full parses, plus how many leaf value regions the fast path
// re-lexed. The serverpool runtime calls this per request.
func (m *ServerMetrics) RecordDDSDecode(fastPath bool, valuesReparsed int) {
	if fastPath {
		m.ddsFastPath.Add(1)
		m.ddsValuesReparsed.Add(int64(valuesReparsed))
	} else {
		m.ddsFullParses.Add(1)
	}
}

// AddDDSKeyEvictions accumulates operation-key evictions from a
// replica's bounded deserializer.
func (m *ServerMetrics) AddDDSKeyEvictions(n int64) {
	if n > 0 {
		m.ddsKeyEvictions.Add(n)
	}
}

// RecordReplicaEviction counts one replica evicted by the serverpool
// registry; budget marks evictions driven by the MaxTemplateBytes
// budget rather than the replica count cap.
func (m *ServerMetrics) RecordReplicaEviction(budget bool) {
	m.replicaEvictions.Add(1)
	if budget {
		m.replicaBudgetEvictions.Add(1)
	}
}

// RecordDeltaApply counts one patch frame successfully applied to a held
// base: wire is the frame's size on the wire, represented the size of
// the body it reconstructs. The serverpool runtime calls this per patch.
func (m *ServerMetrics) RecordDeltaApply(wire, represented int) {
	m.deltaApplied.Add(1)
	m.deltaWireBytes.Add(int64(wire))
	m.deltaRepresented.Add(int64(represented))
}

// RecordDeltaSync counts one full body stored as a patch base (both its
// wire and represented sizes are the body itself).
func (m *ServerMetrics) RecordDeltaSync(bodyLen int) {
	m.deltaSyncs.Add(1)
	m.deltaWireBytes.Add(int64(bodyLen))
	m.deltaRepresented.Add(int64(bodyLen))
}

// RecordDeltaBaseEviction counts one patch base dropped — LRU pressure,
// replica eviction, or a checksum failure poisoning the base.
func (m *ServerMetrics) RecordDeltaBaseEviction() { m.deltaBaseEvictions.Add(1) }

// SetTemplateSource installs the function that snapshots the replica
// registry's byte accounting (serverpool wires this at startup).
func (m *ServerMetrics) SetTemplateSource(f func() replica.Counters) {
	m.templateSource.Store(&f)
}

// connOpened / connClosed maintain the active-connection gauge.
func (m *ServerMetrics) connOpened() {
	m.activeConns.Add(1)
	m.connsTotal.Add(1)
}

func (m *ServerMetrics) connClosed() { m.activeConns.Add(-1) }

// recordRequest counts one fully received request body.
func (m *ServerMetrics) recordRequest(bodyLen int) {
	m.requests.Add(1)
	m.bytesIn.Add(int64(bodyLen))
}

// recordReadError classifies a failed request read: a timeout (possibly
// wrapped) is a deadline hit, anything else that isn't a clean close is
// a parse (or framing) error.
func (m *ServerMetrics) recordReadError(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		m.deadlineHits.Add(1)
		return
	}
	m.parseErrors.Add(1)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (m *ServerMetrics) WritePrometheus(w io.Writer) error {
	st := m.Snapshot()
	p := promtext.New(w)
	p.Counter("bsoap_server_requests_total", "Requests fully received.", st.Requests)
	p.Counter("bsoap_server_received_bytes_total", "Request body bytes received.", st.BytesIn)
	// Deprecated alias of bsoap_server_received_bytes_total (pre-rename
	// name, kept parse-compatible for one release).
	p.Counter("bsoap_server_bytes_in_total", "Deprecated: use bsoap_server_received_bytes_total.", st.BytesIn)
	p.Counter("bsoap_server_parse_errors_total", "Requests aborted by a framing or parse error.", st.ParseErrors)
	p.Counter("bsoap_server_deadline_hits_total", "Request reads aborted by an I/O deadline.", st.DeadlineHits)
	p.Counter("bsoap_server_conns_total", "Connections accepted.", st.ConnsTotal)
	p.Gauge("bsoap_server_active_conns", "Connections currently open.", st.ActiveConns)
	p.Gauge("bsoap_server_in_flight_requests", "Requests currently being handled.", st.InFlight)
	p.Counter("bsoap_server_rejected_conns_total", "Connections rejected 503 by the MaxConns admission cap.", st.RejectedConns)
	p.Counter("bsoap_server_rejected_requests_total", "Requests rejected 503 by the MaxInFlight admission cap.", st.RejectedRequests)
	p.Counter("bsoap_server_drain_aborted_total", "In-flight requests force-closed when a Shutdown deadline expired.", st.DrainAborted)
	p.Counter("bsoap_server_dds_fast_path_total", "Requests decoded differentially (no full parse).", st.DDSFastPath)
	p.Counter("bsoap_server_dds_full_parse_total", "Requests decoded by a full schema-driven parse.", st.DDSFullParses)
	p.Counter("bsoap_server_dds_values_reparsed_total", "Leaf value regions re-lexed on the differential fast path.", st.DDSValuesReparsed)
	p.Counter("bsoap_server_dds_key_evictions_total", "Operation keys evicted from bounded deserializers.", st.DDSKeyEvictions)
	p.Counter("bsoap_server_replica_evictions_total", "Connection replicas evicted by the serverpool registry.", st.ReplicaEvictions)
	p.CounterWithLabel("bsoap_server_template_evictions_total", "Server replica entries evicted, by reason.", "reason",
		[]promtext.LabeledValue{
			{Label: "lru", Value: st.ReplicaEvictions - st.ReplicaBudgetEvictions},
			{Label: "budget", Value: st.ReplicaBudgetEvictions},
		})
	p.Gauge("bsoap_server_template_bytes", "Template memory accounted by the server replica registry.", st.TemplateBytes)
	p.Gauge("bsoap_server_template_bytes_high_water", "Lifetime maximum of bsoap_server_template_bytes.", st.TemplateBytesHighWater)
	p.Counter("bsoap_server_delta_applied_total", "Patch frames applied to a held base (differential transmission).", st.DeltaApplied)
	p.Counter("bsoap_server_delta_syncs_total", "Full bodies stored as patch bases.", st.DeltaSyncs)
	p.Counter("bsoap_server_delta_resyncs_total", "Patch frames rejected with 409 resync.", st.DeltaResyncs)
	p.Counter("bsoap_server_delta_base_evictions_total", "Patch bases dropped (cap, eviction, or checksum failure).", st.DeltaBaseEvictions)
	p.Counter("bsoap_server_delta_wire_bytes_total", "Bytes received on the wire for delta-negotiated requests.", st.DeltaWireBytes)
	p.Counter("bsoap_server_delta_represented_bytes_total", "Body bytes those delta-negotiated requests represent after reconstruction.", st.DeltaRepresented)
	p.HistogramWithLabel("bsoap_server_stage_seconds",
		"Server-side per-call latency attribution by pipeline stage.", "stage",
		StageSeconds(&m.Stages, serverStages))
	return p.Err()
}

// serverStages are the stages the server side attributes latency to.
var serverStages = []trace.Stage{
	trace.StageServerQueue, trace.StageDeltaApply, trace.StageDecode,
	trace.StageHandler, trace.StageRespond, trace.StageWrite,
}

// StageSeconds renders the given stages of a StageHist as labeled
// histogram series in seconds, attaching each stage's most recent
// traced span as an exemplar. Shared by the client and server
// registries (cold path: exposition only).
func StageSeconds(h *trace.StageHist, stages []trace.Stage) []promtext.LabeledHistogram {
	uppers := trace.StageBucketUppers()
	out := make([]promtext.LabeledHistogram, 0, len(stages))
	for _, st := range stages {
		counts := make([]int64, trace.StageBucketCount)
		n := h.Buckets(st, counts)
		lh := promtext.LabeledHistogram{
			Label:  st.String(),
			Uppers: uppers,
			Counts: counts,
			Sum:    h.SumSeconds(st),
			Count:  n,
		}
		if span, ns, ok := h.Exemplar(st); ok {
			lh.Exemplar = &promtext.Exemplar{
				LabelKey:   "span",
				LabelValue: strconv.FormatUint(span, 16),
				Value:      float64(ns) / 1e9,
			}
		}
		out = append(out, lh)
	}
	return out
}

// PrometheusHandler serves the registry as a /metrics scrape target.
func (m *ServerMetrics) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", promtext.ContentType)
		_ = m.WritePrometheus(w)
	})
}

// StatsHandler serves the registry as indented JSON.
func (m *ServerMetrics) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
}
