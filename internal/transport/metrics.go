package transport

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"sync/atomic"

	"bsoap/internal/promtext"
)

// ServerMetrics is the server-side counterpart of pool.Metrics: a
// registry of counters a receiving endpoint cares about. One instance
// can back several Servers (e.g. a plain and a TLS listener) since every
// field is an independent atomic.
type ServerMetrics struct {
	requests     atomic.Int64
	bytesIn      atomic.Int64
	parseErrors  atomic.Int64
	deadlineHits atomic.Int64
	activeConns  atomic.Int64
	connsTotal   atomic.Int64

	// Admission control and drain (the concurrent server runtime).
	inFlight         atomic.Int64
	rejectedConns    atomic.Int64
	rejectedRequests atomic.Int64
	drainAborted     atomic.Int64

	// Differential-deserialization outcomes, recorded by the serverpool
	// runtime (the transport itself never parses SOAP).
	ddsFastPath       atomic.Int64
	ddsFullParses     atomic.Int64
	ddsValuesReparsed atomic.Int64
	ddsKeyEvictions   atomic.Int64
	replicaEvictions  atomic.Int64
}

// NewServerMetrics returns an empty registry.
func NewServerMetrics() *ServerMetrics { return &ServerMetrics{} }

// ServerStats is a point-in-time snapshot of ServerMetrics, shaped for
// JSON.
type ServerStats struct {
	Requests     int64 `json:"requests"`
	BytesIn      int64 `json:"bytes_in"`
	ParseErrors  int64 `json:"parse_errors"`
	DeadlineHits int64 `json:"deadline_hits"`
	ActiveConns  int64 `json:"active_conns"`
	ConnsTotal   int64 `json:"conns_total"`

	InFlight         int64 `json:"in_flight"`
	RejectedConns    int64 `json:"rejected_conns"`
	RejectedRequests int64 `json:"rejected_requests"`
	DrainAborted     int64 `json:"drain_aborted"`

	DDSFastPath       int64 `json:"dds_fast_path"`
	DDSFullParses     int64 `json:"dds_full_parses"`
	DDSValuesReparsed int64 `json:"dds_values_reparsed"`
	DDSKeyEvictions   int64 `json:"dds_key_evictions"`
	ReplicaEvictions  int64 `json:"replica_evictions"`
}

// Snapshot reads every counter. Counters are read independently, so a
// snapshot taken mid-request may be off by one between related fields.
func (m *ServerMetrics) Snapshot() ServerStats {
	return ServerStats{
		Requests:     m.requests.Load(),
		BytesIn:      m.bytesIn.Load(),
		ParseErrors:  m.parseErrors.Load(),
		DeadlineHits: m.deadlineHits.Load(),
		ActiveConns:  m.activeConns.Load(),
		ConnsTotal:   m.connsTotal.Load(),

		InFlight:         m.inFlight.Load(),
		RejectedConns:    m.rejectedConns.Load(),
		RejectedRequests: m.rejectedRequests.Load(),
		DrainAborted:     m.drainAborted.Load(),

		DDSFastPath:       m.ddsFastPath.Load(),
		DDSFullParses:     m.ddsFullParses.Load(),
		DDSValuesReparsed: m.ddsValuesReparsed.Load(),
		DDSKeyEvictions:   m.ddsKeyEvictions.Load(),
		ReplicaEvictions:  m.replicaEvictions.Load(),
	}
}

// RecordDDSDecode counts one decoded request: fast differential decodes
// versus full parses, plus how many leaf value regions the fast path
// re-lexed. The serverpool runtime calls this per request.
func (m *ServerMetrics) RecordDDSDecode(fastPath bool, valuesReparsed int) {
	if fastPath {
		m.ddsFastPath.Add(1)
		m.ddsValuesReparsed.Add(int64(valuesReparsed))
	} else {
		m.ddsFullParses.Add(1)
	}
}

// AddDDSKeyEvictions accumulates operation-key evictions from a
// replica's bounded deserializer.
func (m *ServerMetrics) AddDDSKeyEvictions(n int64) {
	if n > 0 {
		m.ddsKeyEvictions.Add(n)
	}
}

// RecordReplicaEviction counts one connection replica evicted by the
// serverpool LRU.
func (m *ServerMetrics) RecordReplicaEviction() { m.replicaEvictions.Add(1) }

// connOpened / connClosed maintain the active-connection gauge.
func (m *ServerMetrics) connOpened() {
	m.activeConns.Add(1)
	m.connsTotal.Add(1)
}

func (m *ServerMetrics) connClosed() { m.activeConns.Add(-1) }

// recordRequest counts one fully received request body.
func (m *ServerMetrics) recordRequest(bodyLen int) {
	m.requests.Add(1)
	m.bytesIn.Add(int64(bodyLen))
}

// recordReadError classifies a failed request read: a timeout (possibly
// wrapped) is a deadline hit, anything else that isn't a clean close is
// a parse (or framing) error.
func (m *ServerMetrics) recordReadError(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		m.deadlineHits.Add(1)
		return
	}
	m.parseErrors.Add(1)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (m *ServerMetrics) WritePrometheus(w io.Writer) error {
	st := m.Snapshot()
	p := promtext.New(w)
	p.Counter("bsoap_server_requests_total", "Requests fully received.", st.Requests)
	p.Counter("bsoap_server_bytes_in_total", "Request body bytes received.", st.BytesIn)
	p.Counter("bsoap_server_parse_errors_total", "Requests aborted by a framing or parse error.", st.ParseErrors)
	p.Counter("bsoap_server_deadline_hits_total", "Request reads aborted by an I/O deadline.", st.DeadlineHits)
	p.Counter("bsoap_server_conns_total", "Connections accepted.", st.ConnsTotal)
	p.Gauge("bsoap_server_active_conns", "Connections currently open.", st.ActiveConns)
	p.Gauge("bsoap_server_in_flight_requests", "Requests currently being handled.", st.InFlight)
	p.Counter("bsoap_server_rejected_conns_total", "Connections rejected 503 by the MaxConns admission cap.", st.RejectedConns)
	p.Counter("bsoap_server_rejected_requests_total", "Requests rejected 503 by the MaxInFlight admission cap.", st.RejectedRequests)
	p.Counter("bsoap_server_drain_aborted_total", "In-flight requests force-closed when a Shutdown deadline expired.", st.DrainAborted)
	p.Counter("bsoap_server_dds_fast_path_total", "Requests decoded differentially (no full parse).", st.DDSFastPath)
	p.Counter("bsoap_server_dds_full_parse_total", "Requests decoded by a full schema-driven parse.", st.DDSFullParses)
	p.Counter("bsoap_server_dds_values_reparsed_total", "Leaf value regions re-lexed on the differential fast path.", st.DDSValuesReparsed)
	p.Counter("bsoap_server_dds_key_evictions_total", "Operation keys evicted from bounded deserializers.", st.DDSKeyEvictions)
	p.Counter("bsoap_server_replica_evictions_total", "Connection replicas evicted by the serverpool LRU.", st.ReplicaEvictions)
	return p.Err()
}

// PrometheusHandler serves the registry as a /metrics scrape target.
func (m *ServerMetrics) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", promtext.ContentType)
		_ = m.WritePrometheus(w)
	})
}

// StatsHandler serves the registry as indented JSON.
func (m *ServerMetrics) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
}
