package transport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"bsoap/internal/promtext"
)

// deadlineErr satisfies net.Error with Timeout() true.
type deadlineErr struct{}

func (deadlineErr) Error() string   { return "i/o timeout" }
func (deadlineErr) Timeout() bool   { return true }
func (deadlineErr) Temporary() bool { return true }

// TestServerMetricsClassification pins the deadline-vs-parse split,
// including wrapped timeouts (the read path wraps socket errors with
// context before they reach the registry).
func TestServerMetricsClassification(t *testing.T) {
	m := NewServerMetrics()
	m.recordReadError(deadlineErr{})
	m.recordReadError(fmt.Errorf("transport: read request: %w", deadlineErr{}))
	m.recordReadError(fmt.Errorf("transport: bad content-length"))

	st := m.Snapshot()
	if st.DeadlineHits != 2 {
		t.Errorf("deadline_hits = %d, want 2 (wrapped timeouts must classify as deadlines)", st.DeadlineHits)
	}
	if st.ParseErrors != 1 {
		t.Errorf("parse_errors = %d, want 1", st.ParseErrors)
	}
}

// TestServerMetricsCounters exercises the connection gauge and the
// request counters through their full lifecycle.
func TestServerMetricsCounters(t *testing.T) {
	m := NewServerMetrics()
	m.connOpened()
	m.connOpened()
	m.recordRequest(100)
	m.recordRequest(250)
	m.connClosed()

	st := m.Snapshot()
	if st.Requests != 2 || st.BytesIn != 350 {
		t.Errorf("requests/bytes = %d/%d, want 2/350", st.Requests, st.BytesIn)
	}
	if st.ActiveConns != 1 || st.ConnsTotal != 2 {
		t.Errorf("active/total conns = %d/%d, want 1/2", st.ActiveConns, st.ConnsTotal)
	}
}

// TestServerMetricsHandlers asserts both exposition shapes: the JSON
// endpoint round-trips through ServerStats, and the Prometheus endpoint
// passes the strict text-format parser with the expected families.
func TestServerMetricsHandlers(t *testing.T) {
	m := NewServerMetrics()
	m.connOpened()
	m.recordRequest(42)

	rec := httptest.NewRecorder()
	m.StatsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	var st ServerStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats endpoint: %v\n%s", err, rec.Body.Bytes())
	}
	if st.Requests != 1 || st.BytesIn != 42 || st.ActiveConns != 1 {
		t.Errorf("JSON snapshot = %+v, want requests=1 bytes_in=42 active_conns=1", st)
	}

	rec = httptest.NewRecorder()
	m.PrometheusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != promtext.ContentType {
		t.Errorf("content type = %q, want %q", got, promtext.ContentType)
	}
	ps, err := promtext.Validate(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, rec.Body.Bytes())
	}
	for _, name := range []string{
		"bsoap_server_requests_total",
		"bsoap_server_bytes_in_total",
		"bsoap_server_parse_errors_total",
		"bsoap_server_deadline_hits_total",
		"bsoap_server_conns_total",
		"bsoap_server_active_conns",
	} {
		if !ps.Names[name] {
			t.Errorf("exposition missing %s", name)
		}
	}
}
