package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pipelineOver dials a pipelined sender against srv.
func pipelineOver(t *testing.T, srv *Server, depth int) *Pipeline {
	t.Helper()
	s, err := Dial(srv.Addr(), SenderOptions{Version: HTTP11})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(s, depth)
	t.Cleanup(func() {
		pl.Close()
		s.Close()
	})
	return pl
}

func TestPipelineOrderedCompletion(t *testing.T) {
	var mu sync.Mutex
	var got []string
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Respond: true,
		Handler: func(req *Request) ([]byte, error) {
			mu.Lock()
			got = append(got, string(req.Body))
			mu.Unlock()
			return []byte("ok"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pl := pipelineOver(t, srv, 4)
	const n = 32
	pending := make([]*Pending, n)
	for i := range pending {
		p, err := pl.SendAsync(net.Buffers{[]byte(fmt.Sprintf("req-%03d", i))})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		pending[i] = p
	}
	for i, p := range pending {
		if err := p.Wait(); err != nil {
			t.Fatalf("pending %d: %v", i, err)
		}
		if p.Status() != 200 {
			t.Fatalf("pending %d status %d", i, p.Status())
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("server saw %d requests", len(got))
	}
	for i, b := range got {
		if want := fmt.Sprintf("req-%03d", i); b != want {
			t.Fatalf("request %d arrived as %q", i, b)
		}
	}
}

func TestPipelineDepthBoundAndStalls(t *testing.T) {
	release := make(chan struct{})
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Respond:   true,
		ReadAhead: 8,
		Handler: func(req *Request) ([]byte, error) {
			<-release
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pl := pipelineOver(t, srv, 2)
	var stalls atomic.Int64
	pl.OnStall = func() { stalls.Add(1) }

	// Two submits fill the pipeline without stalling.
	for i := 0; i < 2; i++ {
		if _, err := pl.SendAsync(net.Buffers{[]byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := pl.InFlight(); got != 2 {
		t.Fatalf("in flight = %d, want 2", got)
	}
	// The third must stall until a response frees a slot.
	done := make(chan error, 1)
	go func() {
		_, err := pl.SendAsync(net.Buffers{[]byte("y")})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("submit over depth returned early (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if stalls.Load() != 1 {
		t.Fatalf("stalls = %d, want 1", stalls.Load())
	}
}

func TestPipelineNon2xxFailsOnlyThatPending(t *testing.T) {
	var n atomic.Int64
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Respond: true,
		Handler: func(req *Request) ([]byte, error) {
			if n.Add(1) == 2 {
				return nil, fmt.Errorf("boom")
			}
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pl := pipelineOver(t, srv, 4)
	var pending []*Pending
	for i := 0; i < 3; i++ {
		p, err := pl.SendAsync(net.Buffers{[]byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	if err := pending[0].Wait(); err != nil {
		t.Fatalf("first: %v", err)
	}
	if err := pending[1].Wait(); err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("second should fail with a 500, got %v", err)
	}
	if err := pending[2].Wait(); err != nil {
		t.Fatalf("third: %v (a non-2xx must not break the pipeline)", err)
	}
	if pl.Broken() {
		t.Fatal("pipeline broken after an orderly non-2xx")
	}
}

// fakePeer reads `reads` requests off its end of a pipe, answers the
// first `answer` of them, then closes the connection. Reading everything
// first matters on a synchronous net.Pipe: the client's writes block
// until consumed, so the peer must drain all submits before hanging up.
func fakePeer(t *testing.T, conn net.Conn, reads, answer int) {
	t.Helper()
	go func() {
		br := bufio.NewReader(conn)
		for i := 0; i < reads; i++ {
			if _, err := ReadRequest(br); err != nil {
				conn.Close()
				return
			}
		}
		for i := 0; i < answer; i++ {
			if err := WriteResponse(conn, 200, "", nil); err != nil {
				conn.Close()
				return
			}
		}
		conn.Close()
	}()
}

func TestPipelineBreakFailsAllPending(t *testing.T) {
	client, server := net.Pipe()
	fakePeer(t, server, 3, 1) // one response, then the connection dies
	s := NewSender(client, SenderOptions{Version: HTTP11})
	pl := NewPipeline(s, 4)
	defer pl.Close()

	var pending []*Pending
	for i := 0; i < 3; i++ {
		p, err := pl.SendAsync(net.Buffers{[]byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	if err := pending[0].Wait(); err != nil {
		t.Fatalf("first: %v", err)
	}
	for i, p := range pending[1:] {
		if err := p.Wait(); err == nil {
			t.Fatalf("pending %d resolved nil after connection loss", i+1)
		}
	}
	if !pl.Broken() {
		t.Fatal("pipeline not broken after read failure")
	}
	if _, err := pl.SendAsync(net.Buffers{[]byte("x")}); err == nil {
		t.Fatal("submit on a broken pipeline accepted")
	}
}

func TestPipelineCloseResolvesEverything(t *testing.T) {
	client, server := net.Pipe()
	// The peer reads requests but never answers.
	go func() {
		br := bufio.NewReader(server)
		for {
			if _, err := ReadRequest(br); err != nil {
				return
			}
		}
	}()
	defer server.Close()

	s := NewSender(client, SenderOptions{Version: HTTP11})
	pl := NewPipeline(s, 2)
	var pending []*Pending
	for i := 0; i < 2; i++ {
		p, err := pl.SendAsync(net.Buffers{[]byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pending {
		select {
		case <-p.Done():
		default:
			t.Fatalf("pending %d unresolved after Close", i)
		}
		if err := p.Wait(); !errors.Is(err, ErrPipelineClosed) {
			t.Fatalf("pending %d: %v, want ErrPipelineClosed", i, err)
		}
	}
}

func TestPipelineOnCompleteFiresOncePerPending(t *testing.T) {
	client, server := net.Pipe()
	fakePeer(t, server, 4, 2)
	s := NewSender(client, SenderOptions{Version: HTTP11})
	pl := NewPipeline(s, 4)
	var completions atomic.Int64
	pl.OnComplete = func() { completions.Add(1) }

	var pending []*Pending
	for i := 0; i < 4; i++ {
		p, err := pl.SendAsync(net.Buffers{[]byte("x")})
		if err != nil {
			break // the break may surface as a write error on later submits
		}
		pending = append(pending, p)
	}
	pl.Close()
	for _, p := range pending {
		p.Wait()
	}
	if got := completions.Load(); got != int64(len(pending)) {
		t.Fatalf("OnComplete fired %d times for %d pendings", got, len(pending))
	}
}

// TestServerReadAheadWireOrder drives a raw pipelined byte stream at a
// read-ahead server and checks the responses come back strictly in
// request order even when the first request is the slowest to handle.
func TestServerReadAheadWireOrder(t *testing.T) {
	firstGate := make(chan struct{})
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Respond:   true,
		ReadAhead: 4,
		Handler: func(req *Request) ([]byte, error) {
			body := string(req.Body)
			if body == "req-0" {
				<-firstGate
			}
			return []byte("echo:" + body), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf("req-%d", i)
		fmt.Fprintf(conn, "POST / HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	}
	// All five are on the wire; the handler for req-0 is still blocked,
	// so the read-ahead queue is doing the buffering. Release it and the
	// responses must arrive 0..4.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(firstGate)
	}()
	br := bufio.NewReader(conn)
	for i := 0; i < 5; i++ {
		resp, err := ReadResponse(br)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if want := fmt.Sprintf("echo:req-%d", i); string(resp.Body) != want {
			t.Fatalf("response %d body %q, want %q", i, resp.Body, want)
		}
	}
}

func TestServerReadAheadDrain(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Respond:   true,
		ReadAhead: 4,
		Handler: func(req *Request) ([]byte, error) {
			time.Sleep(2 * time.Millisecond)
			return []byte("ok"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	pl := pipelineOver(t, srv, 4)
	var pending []*Pending
	for i := 0; i < 8; i++ {
		p, err := pl.SendAsync(net.Buffers{[]byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := srv.Metrics().Snapshot().DrainAborted; got != 0 {
		t.Fatalf("drain aborted %d requests", got)
	}
	// Every request submitted before the drain must have been answered.
	for i, p := range pending {
		if err := p.Wait(); err != nil {
			t.Fatalf("pending %d lost to drain: %v", i, err)
		}
	}
}

func TestServerReadAheadIdleDrainIsImmediate(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Respond:   true,
		ReadAhead: 4,
		Handler:   func(req *Request) ([]byte, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	pl := pipelineOver(t, srv, 2)
	p, err := pl.SendAsync(net.Buffers{[]byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	// The connection is parked idle; Shutdown must not hang on it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown of idle read-ahead conn: %v", err)
	}
}
