package transport

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
)

// Handler processes one parsed request and returns the response body, or
// an error which is reported as a 500.
type Handler func(req *Request) ([]byte, error)

// Server accepts persistent connections and feeds each request to a
// handler. With a nil handler it is the paper's dummy server: requests
// are read and discarded without parsing the SOAP payload, and a minimal
// 202 is returned only when the client asks for responses.
type Server struct {
	ln      net.Listener
	handler Handler
	respond bool
	logger  *log.Logger
	metrics *ServerMetrics
	wg      sync.WaitGroup
	closed  atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// ServerOptions configure a Server.
type ServerOptions struct {
	// Handler, when non-nil, receives every request; the discard server
	// leaves it nil.
	Handler Handler
	// Respond makes the server answer every request (202 for discard,
	// 200 with the handler's body otherwise). Dummy-server benchmarking
	// leaves it false.
	Respond bool
	// Logger receives per-connection errors; nil disables logging.
	Logger *log.Logger
	// Metrics receives the server's counters. Nil gets a private
	// registry, so Requests/Bytes always work; pass a shared one to
	// export it (bsoap-server -metrics does).
	Metrics *ServerMetrics
}

// Serve starts a server on ln; it returns immediately and serves until
// Close.
func Serve(ln net.Listener, opts ServerOptions) *Server {
	m := opts.Metrics
	if m == nil {
		m = NewServerMetrics()
	}
	s := &Server{
		ln: ln, handler: opts.Handler, respond: opts.Respond, logger: opts.Logger,
		metrics: m,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen starts a server on a fresh TCP listener on addr (use ":0" for
// an ephemeral port).
func Listen(addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return Serve(ln, opts), nil
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Requests reports how many requests have been fully received.
func (s *Server) Requests() int64 { return s.metrics.requests.Load() }

// Bytes reports total body bytes received.
func (s *Server) Bytes() int64 { return s.metrics.bytesIn.Load() }

// Metrics returns the server's registry (the one from ServerOptions, or
// the private default).
func (s *Server) Metrics() *ServerMetrics { return s.metrics }

// Close stops accepting, force-closes open connections, and waits for
// connection goroutines to exit.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// track registers conn for shutdown, reporting false if the server is
// already closing.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return
			}
			s.logf("accept: %v", err)
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
			_ = tc.SetReadBuffer(32 * 1024)
			_ = tc.SetWriteBuffer(32 * 1024)
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	s.metrics.connOpened()
	defer s.metrics.connClosed()
	defer s.untrack(conn)
	br := bufio.NewReaderSize(conn, 32*1024)
	// One Request per connection, reused across keep-alive messages:
	// handlers get storage that is recycled on the next read, and must
	// copy anything they keep (both in-tree handlers do).
	req := &Request{}
	for {
		err := ReadRequestInto(br, req)
		if err != nil {
			if !errors.Is(err, ErrConnClosed) && !s.closed.Load() {
				s.metrics.recordReadError(err)
				s.logf("read request: %v", err)
			}
			return
		}
		s.metrics.recordRequest(len(req.Body))

		if s.handler == nil {
			// Dummy server: the body has been drained; optionally ack.
			if s.respond {
				if err := WriteResponse(conn, 202, "", nil); err != nil {
					s.logf("write response: %v", err)
					return
				}
			}
			continue
		}
		body, err := s.handler(req)
		if err != nil {
			s.logf("handler: %v", err)
			if werr := WriteResponse(conn, 500, "text/plain", []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if s.respond || body != nil {
			if err := WriteResponse(conn, 200, "text/xml; charset=utf-8", body); err != nil {
				s.logf("write response: %v", err)
				return
			}
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}
