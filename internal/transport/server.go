package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bsoap/internal/trace"
	"bsoap/internal/wire"
)

// deltaResyncExtra is the response header that tells a delta client its
// patch was rejected and a full-body resend is required.
var deltaResyncExtra = []byte("X-BSoap-Delta: resync\r\n")

// Handler processes one parsed request and returns the response body, or
// an error which is reported as a 500.
type Handler func(req *Request) ([]byte, error)

// Server accepts persistent connections and feeds each request to a
// handler. With a nil handler it is the paper's dummy server: requests
// are read and discarded without parsing the SOAP payload, and a minimal
// 202 is returned only when the client asks for responses.
type Server struct {
	ln        net.Listener
	handler   Handler
	respond   bool
	logger    *log.Logger
	metrics   *ServerMetrics
	maxConns  int
	inflight  chan struct{} // nil = unlimited; buffered to MaxInFlight
	reqTO     time.Duration
	readAhead int
	wg        sync.WaitGroup
	closed    atomic.Bool
	draining  atomic.Bool
	lnOnce    sync.Once
	lnErr     error
	nextConn  atomic.Uint64
	numConns  atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]*connState
}

// connState tracks what a connection goroutine is doing, for drain: idle
// means blocked waiting for the first byte of a next request (safe to
// poke with a read deadline), not-idle means a request is being read,
// handled, or answered (drain must let it finish).
//
// The serial loop stores idle directly. Read-ahead connections split the
// work over two goroutines, so idle is derived instead: parked records
// whether the reader is waiting for a next first byte, pending counts
// requests parsed but not yet answered, and the connection is idle only
// when the reader is parked with nothing queued.
type connState struct {
	idle    atomic.Bool
	parked  atomic.Bool
	pending atomic.Int64
}

// noteIdle recomputes the derived idle flag. Both the reader (after
// parking) and the responder (after answering) call it after their own
// state change, so whichever runs last reads both final values and the
// flag converges to the truth.
func (st *connState) noteIdle() {
	st.idle.Store(st.parked.Load() && st.pending.Load() == 0)
}

// ServerOptions configure a Server.
type ServerOptions struct {
	// Handler, when non-nil, receives every request; the discard server
	// leaves it nil.
	Handler Handler
	// Respond makes the server answer every request (202 for discard,
	// 200 with the handler's body otherwise). Dummy-server benchmarking
	// leaves it false.
	Respond bool
	// Logger receives per-connection errors; nil disables logging.
	Logger *log.Logger
	// Metrics receives the server's counters. Nil gets a private
	// registry, so Requests/Bytes always work; pass a shared one to
	// export it (bsoap-server -metrics does).
	Metrics *ServerMetrics
	// MaxConns caps concurrently open connections. A connection accepted
	// beyond the cap is answered with an immediate 503 and closed — fast
	// rejection instead of an unbounded accept queue. 0 = unlimited.
	MaxConns int
	// MaxInFlight caps requests being handled at once across all
	// connections. A fully received request that cannot take a slot is
	// answered 503 without dispatching — the handler pool never queues
	// more work than it can bound. 0 = unlimited.
	MaxInFlight int
	// RequestTimeout bounds reading one request once its first byte has
	// arrived (idle keep-alive waits are not bounded). A read missing
	// the deadline closes the connection and counts a deadline hit.
	// 0 = no deadline.
	RequestTimeout time.Duration
	// ReadAhead enables server-side pipelining on handler connections: a
	// per-connection reader goroutine parses up to this many requests
	// ahead while earlier ones are being handled, and responses are still
	// written strictly in request order — pipelined and serial clients
	// are indistinguishable on the wire. 0 keeps the read→handle→respond
	// loop on one goroutine. Ignored when Handler is nil (the dummy
	// server has no handler latency to overlap).
	ReadAhead int
}

// Serve starts a server on ln; it returns immediately and serves until
// Close or Shutdown.
func Serve(ln net.Listener, opts ServerOptions) *Server {
	m := opts.Metrics
	if m == nil {
		m = NewServerMetrics()
	}
	s := &Server{
		ln: ln, handler: opts.Handler, respond: opts.Respond, logger: opts.Logger,
		metrics:   m,
		maxConns:  opts.MaxConns,
		reqTO:     opts.RequestTimeout,
		readAhead: opts.ReadAhead,
		conns:     make(map[net.Conn]*connState),
	}
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen starts a server on a fresh TCP listener on addr (use ":0" for
// an ephemeral port).
func Listen(addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return Serve(ln, opts), nil
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Requests reports how many requests have been fully received.
func (s *Server) Requests() int64 { return s.metrics.requests.Load() }

// Bytes reports total body bytes received.
func (s *Server) Bytes() int64 { return s.metrics.bytesIn.Load() }

// Metrics returns the server's registry (the one from ServerOptions, or
// the private default).
func (s *Server) Metrics() *ServerMetrics { return s.metrics }

// closeListener closes the listener exactly once (Shutdown followed by
// Close must not turn the second close into an error).
func (s *Server) closeListener() error {
	s.lnOnce.Do(func() { s.lnErr = s.ln.Close() })
	return s.lnErr
}

// Close is the hard stop: it stops accepting, force-closes every live
// connection — aborting any request currently being read or handled
// mid-flight, which its client sees as a connection error — and waits
// for connection goroutines to exit. Prefer Shutdown to let in-flight
// requests finish; Close is the escape hatch when draining is not an
// option (tests, emergency stop, or the force phase after a Shutdown
// deadline).
func (s *Server) Close() error {
	s.closed.Store(true)
	s.draining.Store(true)
	err := s.closeListener()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Shutdown gracefully drains the server: it stops accepting, lets every
// request already in flight (being read, handled, or answered) complete,
// closes idle connections, and returns once all connection goroutines
// have exited. If ctx expires first, remaining connections are
// force-closed — each one aborting a request mid-flight is counted in
// the drain_aborted metric — and ctx.Err() is returned without waiting
// further: a handler wedged on something other than connection I/O
// (like net/http, Shutdown cannot interrupt it) keeps its goroutine
// until it eventually returns. A nil return means a clean drain: zero
// in-flight requests were dropped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.closeListener()
	// Unblock connections parked waiting for a next request: a read
	// deadline in the past fails their wait immediately. A connection
	// whose first request byte wins the race keeps the deadline only
	// until the serve loop re-arms it for that (final) request.
	s.mu.Lock()
	for c, st := range s.conns {
		if st.idle.Load() {
			_ = c.SetReadDeadline(time.Unix(1, 0))
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		s.mu.Lock()
		for c, st := range s.conns {
			if !st.idle.Load() {
				s.metrics.drainAborted.Add(1)
			}
			c.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// track registers conn for shutdown, reporting false if the server is
// already closing.
func (s *Server) track(conn net.Conn, st *connState) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.conns[conn] = st
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() || s.draining.Load() {
				return
			}
			s.logf("accept: %v", err)
			return
		}
		if s.maxConns > 0 && s.numConns.Load() >= int64(s.maxConns) {
			// Fast rejection: tell the client the server is full rather
			// than letting connections queue unboundedly. The write is
			// deadline-bounded so a dead peer cannot stall the accept
			// loop.
			s.metrics.rejectedConns.Add(1)
			_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
			_ = WriteResponse(conn, 503, "", nil)
			conn.Close()
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
			_ = tc.SetReadBuffer(32 * 1024)
			_ = tc.SetWriteBuffer(32 * 1024)
		}
		s.numConns.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.numConns.Add(-1)
	defer conn.Close()
	if s.handler != nil && s.readAhead > 0 {
		s.serveConnPipelined(conn)
		return
	}
	st := &connState{}
	if !s.track(conn, st) {
		return
	}
	s.metrics.connOpened()
	defer s.metrics.connClosed()
	defer s.untrack(conn)
	br := bufio.NewReaderSize(conn, 32*1024)
	// One Request per connection, reused across keep-alive messages:
	// handlers get storage that is recycled on the next read, and must
	// copy anything they keep (all in-tree handlers do).
	req := &Request{
		ConnID:     s.nextConn.Add(1),
		RemoteAddr: conn.RemoteAddr().String(),
	}
	for {
		// Park idle until a next request begins (its first byte arrives).
		// Shutdown unblocks parked connections with a poisoned read
		// deadline; the busy/idle flag tells it which connections are
		// safe to poke versus mid-request.
		st.idle.Store(true)
		if s.draining.Load() {
			return
		}
		_, err := br.Peek(1)
		st.idle.Store(false)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return // clean close between requests
			}
			if s.draining.Load() {
				return // drain poke, not a peer failure
			}
			s.metrics.recordReadError(err)
			s.logf("await request: %v", err)
			return
		}
		// A request has begun: arm its deadline. This also clears a
		// drain poke that lost the race to the request's first byte —
		// that request is in flight now and must be allowed to finish.
		var deadline time.Time
		if s.reqTO > 0 {
			deadline = time.Now().Add(s.reqTO)
		}
		_ = conn.SetReadDeadline(deadline)

		if err := ReadRequestInto(br, req); err != nil {
			if !errors.Is(err, ErrConnClosed) && !s.draining.Load() {
				s.metrics.recordReadError(err)
				s.logf("read request: %v", err)
			}
			return
		}
		if s.reqTO > 0 {
			// The request is fully read; its deadline must not outlive it
			// into the next keep-alive wait.
			_ = conn.SetReadDeadline(time.Time{})
		}
		s.metrics.recordRequest(len(req.Body))
		req.recvNs = time.Now().UnixNano()

		if s.handler == nil {
			// Dummy server: the body has been drained; optionally ack.
			if s.respond {
				if err := WriteResponse(conn, 202, "", nil); err != nil {
					s.logf("write response: %v", err)
					return
				}
			}
			if s.draining.Load() {
				return
			}
			continue
		}
		if !s.dispatch(conn, req) {
			return
		}
		if s.draining.Load() {
			// The final request completed; no keep-alive during drain.
			return
		}
	}
}

// dispatch admits, handles and answers one fully received request. It
// returns false when the connection is no longer usable (a response
// write failed); admission sheds and handler errors are answered on the
// wire and keep the connection alive.
func (s *Server) dispatch(conn net.Conn, req *Request) bool {
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
		default:
			// Over the in-flight cap: shed this request now instead of
			// queueing it behind work we cannot bound.
			s.metrics.rejectedRequests.Add(1)
			return WriteResponse(conn, 503, "", nil) == nil
		}
	}
	// Latency attribution: time from fully-received to dispatched is the
	// server-queue stage (read-ahead queueing plus admission). The stage
	// events carry the client's propagated span so the inspector can
	// merge them into the client's timeline.
	now := time.Now().UnixNano()
	if req.recvNs > 0 {
		qns := now - req.recvNs
		s.metrics.Stages.Observe(trace.StageServerQueue, qns, req.TraceSpan)
		if req.TraceSpan != 0 && trace.Enabled() {
			trace.Rec(req.TraceSpan, trace.KindStage, int64(trace.StageServerQueue), qns, 0)
		}
	}
	s.metrics.inFlight.Add(1)
	body, err := s.handler(req)
	s.metrics.inFlight.Add(-1)
	if s.inflight != nil {
		<-s.inflight
	}
	if err != nil {
		if errors.Is(err, wire.ErrDeltaResync) {
			// A patch could not be applied (unknown base, epoch skew,
			// checksum failure): answer 409 with the resync header. The
			// request was fully read and the failure is a protocol state
			// mismatch, not a connection fault, so keep-alive continues and
			// the client's full-body resend arrives on this connection.
			s.metrics.deltaResyncs.Add(1)
			return WriteResponseExtra(conn, 409, "", deltaResyncExtra, nil) == nil
		}
		s.logf("handler: %v", err)
		return WriteResponse(conn, 500, "text/plain", []byte(err.Error())) == nil
	}
	ok := true
	if s.respond || body != nil {
		// A handler that stored a patch base asks for it to be
		// acknowledged; the ack is what flips the client delta-capable.
		var extra []byte
		var ackBuf [64]byte
		if req.DeltaAck {
			b := append(ackBuf[:0], "X-BSoap-Delta: "...)
			b = wire.AppendDeltaAck(b, req.DeltaAckTID, req.DeltaAckEpoch)
			extra = append(b, '\r', '\n')
		}
		wstart := time.Now()
		werr := WriteResponseExtra(conn, 200, "text/xml; charset=utf-8", extra, body)
		wns := time.Since(wstart).Nanoseconds()
		s.metrics.Stages.Observe(trace.StageWrite, wns, req.TraceSpan)
		if req.TraceSpan != 0 && trace.Enabled() {
			trace.Rec(req.TraceSpan, trace.KindStage, int64(trace.StageWrite), wns, 0)
		}
		if werr != nil {
			s.logf("write response: %v", werr)
			ok = false
		}
	}
	if req.TraceSpan != 0 && req.recvNs > 0 {
		// Feed the slow ring with the server's view of the call
		// (queue + handle + write).
		trace.ObserveCall(req.TraceSpan, time.Now().UnixNano()-req.recvNs)
	}
	return ok
}

// serveConnPipelined is serveConn for ReadAhead > 0: a reader goroutine
// parses requests ahead into a bounded queue while this goroutine
// handles and answers them strictly in order. A ring of ReadAhead+1
// Request objects cycles between the two, so the handler's request is
// untouched while later ones parse — the next-read-invalidates contract
// holds because a Request re-enters the free list only after its
// handler has returned.
func (s *Server) serveConnPipelined(conn net.Conn) {
	st := &connState{}
	if !s.track(conn, st) {
		return
	}
	s.metrics.connOpened()
	defer s.metrics.connClosed()
	defer s.untrack(conn)

	connID := s.nextConn.Add(1)
	remote := conn.RemoteAddr().String()
	free := make(chan *Request, s.readAhead+1)
	for i := 0; i < s.readAhead+1; i++ {
		free <- &Request{ConnID: connID, RemoteAddr: remote}
	}
	parsed := make(chan *Request, s.readAhead)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(parsed)
		br := bufio.NewReaderSize(conn, 32*1024)
		for {
			req := <-free
			st.parked.Store(true)
			st.noteIdle()
			if s.draining.Load() {
				return
			}
			_, err := br.Peek(1)
			st.parked.Store(false)
			st.idle.Store(false)
			if err != nil {
				if !errors.Is(err, io.EOF) && !s.draining.Load() {
					s.metrics.recordReadError(err)
					s.logf("await request: %v", err)
				}
				return
			}
			// Arm the request deadline. As in the serial loop, this also
			// clears a drain poke that lost the race to the first byte —
			// that request is in flight and must be allowed to finish.
			var deadline time.Time
			if s.reqTO > 0 {
				deadline = time.Now().Add(s.reqTO)
			}
			_ = conn.SetReadDeadline(deadline)
			if err := ReadRequestInto(br, req); err != nil {
				if !errors.Is(err, ErrConnClosed) && !s.draining.Load() {
					s.metrics.recordReadError(err)
					s.logf("read request: %v", err)
				}
				return
			}
			if s.reqTO > 0 {
				_ = conn.SetReadDeadline(time.Time{})
			}
			s.metrics.recordRequest(len(req.Body))
			req.recvNs = time.Now().UnixNano()
			st.pending.Add(1)
			st.noteIdle()
			parsed <- req
		}
	}()

	ok := true
	for req := range parsed {
		if ok {
			if ok = s.dispatch(conn, req); !ok {
				// Responses cannot be written: kill the connection so the
				// reader unblocks and winds the queue down. Remaining
				// parsed requests drain unanswered — their client already
				// lost the connection.
				conn.Close()
			}
		}
		st.pending.Add(-1)
		st.noteIdle()
		free <- req
		if s.draining.Load() && st.parked.Load() {
			// Drain began while the reader was already parked (so
			// Shutdown's idle poke may have missed it — the connection
			// was busy then): wake it with a poisoned deadline so both
			// goroutines wind down. A request mid-read is safe: its first
			// byte re-armed the real deadline above.
			_ = conn.SetReadDeadline(time.Unix(1, 0))
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}
