package transport

import (
	"bufio"
	"bytes"
	"log"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReadResponseVariants(t *testing.T) {
	// 204 has no body.
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(
		"HTTP/1.1 204 No Content\r\nX: y\r\n\r\n")))
	if err != nil || resp.Status != 204 || resp.Body != nil {
		t.Fatalf("204: %+v, %v", resp, err)
	}
	// Chunked response body.
	resp, err = ReadResponse(bufio.NewReader(strings.NewReader(
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n")))
	if err != nil || string(resp.Body) != "abc" {
		t.Fatalf("chunked: %+v, %v", resp, err)
	}
	// Errors.
	for name, raw := range map[string]string{
		"empty":      "",
		"garbage":    "NOPE\r\n\r\n",
		"bad status": "HTTP/1.1 abc OK\r\n\r\n",
		"bad header": "HTTP/1.1 200 OK\r\nNoColon\r\n\r\n",
		"no framing": "HTTP/1.1 200 OK\r\n\r\n",
		"short body": "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nab",
	} {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(""))); err != ErrConnClosed {
		t.Error("empty response should be ErrConnClosed")
	}
}

func TestStatusText(t *testing.T) {
	var buf bytes.Buffer
	for _, status := range []int{200, 202, 400, 404, 500, 418} {
		buf.Reset()
		if err := WriteResponse(&buf, status, "", nil); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "HTTP/1.1") {
			t.Fatalf("status %d: %q", status, buf.String())
		}
	}
}

func TestFetch(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Respond: true,
		Handler: func(req *Request) ([]byte, error) {
			if req.Method != "GET" {
				t.Errorf("method %q", req.Method)
			}
			return []byte("<wsdl/>"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := Fetch(srv.Addr(), "/?wsdl")
	if err != nil || resp.Status != 200 || string(resp.Body) != "<wsdl/>" {
		t.Fatalf("Fetch: %+v, %v", resp, err)
	}
	// Default target.
	if _, err := Fetch(srv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	// Unreachable address errors.
	if _, err := Fetch("127.0.0.1:1", "/"); err == nil {
		t.Fatal("fetch to closed port succeeded")
	}
}

func TestSendExpectResponseErrors(t *testing.T) {
	// Server answers 500: ExpectResponse surfaces it.
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Respond: true,
		Handler: func(req *Request) ([]byte, error) {
			return nil, errTest
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s, err := Dial(srv.Addr(), SenderOptions{Version: HTTP11, ExpectResponse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Send(net.Buffers{[]byte("x")}); err == nil {
		t.Fatal("500 response not surfaced")
	}
}

var errTest = &net.AddrError{Err: "synthetic", Addr: "test"}

func TestServerLogsErrors(t *testing.T) {
	var logBuf lockedBuffer
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Logger: log.New(&logBuf, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Send garbage, close, and give the server a moment to log.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("THIS IS NOT HTTP\r\n\r\n"))
	conn.Close()
	deadline := time.Now().Add(3 * time.Second)
	for logBuf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(logBuf.String(), "read request") {
		t.Fatalf("malformed request not logged: %q", logBuf.String())
	}
}

// lockedBuffer is a bytes.Buffer safe to poll while the server's
// connection goroutine writes log lines into it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestServeOnProvidedListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, ServerOptions{})
	defer srv.Close()
	sender, err := Dial(srv.Addr(), SenderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	if err := sender.Send(net.Buffers{[]byte("payload")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for srv.Requests() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.Requests() != 1 {
		t.Fatal("request not received")
	}
}
