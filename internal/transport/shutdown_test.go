package transport

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// rawPost writes one POST with the given body over conn.
func rawPost(t *testing.T, conn net.Conn, body string) {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s", len(body), body); err != nil {
		t.Fatalf("write request: %v", err)
	}
}

// readStatus reads one response and returns its status code.
func readStatus(t *testing.T, br *bufio.Reader) int {
	t.Helper()
	resp, err := ReadResponse(br)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.Status
}

func echoHandler(req *Request) ([]byte, error) {
	return append([]byte(nil), req.Body...), nil
}

// TestShutdownClosesIdleConns: a connection parked between keep-alive
// requests must not hold a drain open.
func TestShutdownClosesIdleConns(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerOptions{Handler: echoHandler, Respond: true})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	rawPost(t, conn, "hi")
	if st := readStatus(t, br); st != 200 {
		t.Fatalf("status = %d", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("idle drain took %v", elapsed)
	}
	if n := srv.Metrics().Snapshot().DrainAborted; n != 0 {
		t.Fatalf("drain_aborted = %d, want 0", n)
	}
	// The idle connection is closed from the server side.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("idle connection still open after drain")
	}
}

// TestShutdownWaitsForInFlight: a request being handled when Shutdown
// begins completes, and its response is delivered.
func TestShutdownWaitsForInFlight(t *testing.T) {
	entered := make(chan struct{})
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Handler: func(req *Request) ([]byte, error) {
			close(entered)
			time.Sleep(300 * time.Millisecond)
			return []byte("done"), nil
		},
		Respond: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	rawPost(t, conn, "x")
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := srv.Metrics().Snapshot()
	if st.DrainAborted != 0 {
		t.Fatalf("drain_aborted = %d, want 0", st.DrainAborted)
	}
	// The in-flight request's response was written before the close.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if code := readStatus(t, br); code != 200 {
		t.Fatalf("in-flight response status = %d", code)
	}
}

// TestShutdownDeadlineForceCloses: when the drain deadline expires, the
// wedged request is aborted and counted.
func TestShutdownDeadlineForceCloses(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Handler: func(req *Request) ([]byte, error) {
			close(entered)
			<-release
			return nil, nil
		},
		Respond: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rawPost(t, conn, "x")
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if n := srv.Metrics().Snapshot().DrainAborted; n != 1 {
		t.Fatalf("drain_aborted = %d, want 1", n)
	}
}

// TestMaxConnsFastRejection: a connection over the cap is answered 503
// and closed instead of queueing.
func TestMaxConnsFastRejection(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Handler:  echoHandler,
		Respond:  true,
		MaxConns: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	fbr := bufio.NewReader(first)
	rawPost(t, first, "a")
	if st := readStatus(t, fbr); st != 200 {
		t.Fatalf("first conn status = %d", st)
	}

	second, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(2 * time.Second))
	if st := readStatus(t, bufio.NewReader(second)); st != 503 {
		t.Fatalf("over-cap conn status = %d, want 503", st)
	}
	if n := srv.Metrics().Snapshot().RejectedConns; n != 1 {
		t.Fatalf("rejected_conns = %d, want 1", n)
	}
	// The first connection keeps working.
	rawPost(t, first, "b")
	if st := readStatus(t, fbr); st != 200 {
		t.Fatalf("first conn second request status = %d", st)
	}
}

// TestMaxInFlightSheds503: a request that cannot take an in-flight slot
// is answered 503 without dispatching, and the connection survives.
func TestMaxInFlightSheds503(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var handled atomic.Int64
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Handler: func(req *Request) ([]byte, error) {
			handled.Add(1)
			entered <- struct{}{}
			<-release
			return []byte("ok"), nil
		},
		Respond:     true,
		MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	slow, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	rawPost(t, slow, "slow")
	<-entered // the only slot is now held

	fast, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	fbr := bufio.NewReader(fast)
	rawPost(t, fast, "fast")
	fast.SetReadDeadline(time.Now().Add(2 * time.Second))
	if st := readStatus(t, fbr); st != 503 {
		t.Fatalf("over-cap request status = %d, want 503", st)
	}
	if n := srv.Metrics().Snapshot().RejectedRequests; n != 1 {
		t.Fatalf("rejected_requests = %d, want 1", n)
	}
	if n := handled.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want 1", n)
	}

	close(release)
	slow.SetReadDeadline(time.Now().Add(2 * time.Second))
	if st := readStatus(t, bufio.NewReader(slow)); st != 200 {
		t.Fatalf("slow request status = %d", st)
	}
	// The shed connection can retry once the slot frees.
	rawPost(t, fast, "retry")
	if st := readStatus(t, fbr); st != 200 {
		t.Fatalf("retry status = %d, want 200", st)
	}
}

// TestRequestTimeoutAppliesPerRequest: the deadline arms when a
// request's first byte arrives — a stalled mid-request peer is cut off
// and counted, while an idle keep-alive connection is not.
func TestRequestTimeoutAppliesPerRequest(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Handler:        echoHandler,
		Respond:        true,
		RequestTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Idle longer than the timeout, then send: must still be served.
	idle, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	time.Sleep(300 * time.Millisecond)
	ibr := bufio.NewReader(idle)
	rawPost(t, idle, "late but fine")
	idle.SetReadDeadline(time.Now().Add(2 * time.Second))
	if st := readStatus(t, ibr); st != 200 {
		t.Fatalf("idle-then-send status = %d", st)
	}

	// Stall mid-request: first byte sent, body never completed.
	stall, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	if _, err := fmt.Fprintf(stall, "POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for srv.Metrics().Snapshot().DeadlineHits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled request never hit the deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConnIdentity: each connection gets a distinct nonzero ConnID and
// its peer address, stable across keep-alive requests.
func TestConnIdentity(t *testing.T) {
	type ident struct {
		id   uint64
		addr string
	}
	ids := make(chan ident, 4)
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Handler: func(req *Request) ([]byte, error) {
			ids <- ident{req.ConnID, req.RemoteAddr}
			return nil, nil
		},
		Respond: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var got []ident
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(conn)
		for j := 0; j < 2; j++ {
			rawPost(t, conn, "x")
			readStatus(t, br)
			got = append(got, <-ids)
		}
		conn.Close()
	}
	if got[0].id == 0 || got[0].id != got[1].id {
		t.Fatalf("conn 1 ids: %d, %d (want equal, nonzero)", got[0].id, got[1].id)
	}
	if got[2].id != got[3].id || got[2].id == got[0].id {
		t.Fatalf("conn 2 ids: %d, %d (want equal, distinct from conn 1)", got[2].id, got[3].id)
	}
	if got[0].addr == "" || got[0].addr != got[1].addr {
		t.Fatalf("conn 1 addrs: %q, %q", got[0].addr, got[1].addr)
	}
}
