package transport

import (
	"fmt"
	"net"
	"sync"

	"bsoap/internal/wire"
)

// ErrPipelineClosed is the sticky error a Pipeline fails with when it is
// shut down by Close rather than by an I/O error: pendings still in
// flight (and any later SendAsync) resolve with it.
var ErrPipelineClosed = fmt.Errorf("transport: pipeline closed")

// Pending is the completion handle of one pipelined request: it resolves
// once the request's response has been read off the connection, or once
// the pipeline fails (every Pending resolves — a broken connection fails
// all of them rather than leaving any waiter blocked forever).
type Pending struct {
	done   chan struct{}
	status int
	err    error
}

// Done returns a channel that is closed when the outcome is available;
// after that Wait returns without blocking.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Wait blocks until the request's response has been read (or the
// pipeline failed) and returns the outcome: nil for a 2xx response, an
// error for a non-2xx status or a transport failure.
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// Status returns the response's HTTP status code, valid once Done is
// closed (zero when the pipeline failed before this response arrived).
func (p *Pending) Status() int {
	<-p.done
	return p.status
}

func (p *Pending) complete(status int, err error) {
	p.status = status
	p.err = err
	close(p.done)
}

// Pipeline layers depth-bounded HTTP request pipelining over one dialed
// Sender: up to depth requests ride the connection before the first
// response is read, and a dedicated reader goroutine completes the
// per-request Pending handles strictly in submission order (HTTP/1.x
// responses carry no request id — FIFO is the protocol's matching rule).
//
// The write itself happens on the submitter's goroutine under an
// internal mutex, not on a writer goroutine: the engine's scatter-gather
// buffers point straight into template chunks that are only stable while
// the caller holds its template replica, so handing them to another
// goroutine would force a copy on every send. Acquisition order under
// the mutex equals wire order equals completion order.
//
// Failure semantics: the first write or read error (and Close) breaks
// the pipeline permanently. Every Pending already submitted resolves
// with the response it got or with the sticky error; later SendAsync
// calls fail immediately. The Sender underneath can then be Redialed
// and wrapped in a fresh Pipeline. A non-2xx response fails only its own
// Pending — the response was fully read, so the connection stays usable.
type Pipeline struct {
	s     *Sender
	depth int

	// OnStall, when set, is invoked each time a SendAsync must wait for
	// in-flight responses because the pipeline is at depth. OnComplete is
	// invoked exactly once per Pending as it resolves (success, error, or
	// pipeline failure). Both must be set before the first SendAsync and
	// must be safe for concurrent use.
	OnStall    func()
	OnComplete func()

	// writeMu serializes request writes and queue pushes, so the pending
	// queue's order is exactly the wire's. The reader also takes it once,
	// after the sticky error is set, to fence out in-progress submits
	// before failing the queue's remainder.
	writeMu sync.Mutex
	queue   chan *Pending
	slots   chan struct{}

	broken chan struct{} // closed with the first failure
	done   chan struct{} // closed when the reader goroutine exits

	errMu sync.Mutex
	err   error
}

// NewPipeline wraps s for pipelined use, starting the reader goroutine.
// The Sender must not be used directly (Send/Roundtrip/streaming) until
// the pipeline is closed: its connection and read buffer now belong to
// the reader. depth < 1 is treated as 1.
func NewPipeline(s *Sender, depth int) *Pipeline {
	if depth < 1 {
		depth = 1
	}
	pl := &Pipeline{
		s:      s,
		depth:  depth,
		queue:  make(chan *Pending, depth),
		slots:  make(chan struct{}, depth),
		broken: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go pl.readLoop()
	return pl
}

// Sender returns the wrapped Sender.
func (pl *Pipeline) Sender() *Sender { return pl.s }

// Depth returns the configured in-flight bound.
func (pl *Pipeline) Depth() int { return pl.depth }

// InFlight reports how many requests are currently on the wire awaiting
// their response (approximate under concurrency).
func (pl *Pipeline) InFlight() int { return len(pl.slots) }

// Err returns the sticky error, nil while the pipeline is healthy.
func (pl *Pipeline) Err() error {
	pl.errMu.Lock()
	defer pl.errMu.Unlock()
	return pl.err
}

// Broken reports whether the pipeline has failed or been closed.
func (pl *Pipeline) Broken() bool { return pl.Err() != nil }

// fail records the first error and wakes everything blocked on pipeline
// health; later calls are no-ops (first error wins).
func (pl *Pipeline) fail(err error) {
	pl.errMu.Lock()
	if pl.err == nil {
		pl.err = err
		close(pl.broken)
	}
	pl.errMu.Unlock()
}

// SendAsync frames bufs as one request, puts it on the wire, and returns
// a Pending that resolves when its in-order response has been read. The
// write runs on the caller's goroutine (see the type comment); when
// depth requests are already in flight, SendAsync blocks until a
// response frees a slot, reporting the stall through OnStall. A write
// error breaks the pipeline and is returned directly — no Pending is
// created for a request that never got onto the wire.
func (pl *Pipeline) SendAsync(bufs net.Buffers) (*Pending, error) {
	return pl.sendAsync(bufs, deltaAsyncNone, 0, 0)
}

// SendFullAsync is SendAsync for a delta-annotated full-body send: the
// request carries an X-BSoap-Delta sync header so a capable peer stores
// the body as the patch base for tid at epoch. With Delta off it is
// identical to SendAsync.
func (pl *Pipeline) SendFullAsync(bufs net.Buffers, tid, epoch uint64) (*Pending, error) {
	if !pl.s.opts.Delta {
		return pl.sendAsync(bufs, deltaAsyncNone, 0, 0)
	}
	return pl.sendAsync(bufs, deltaAsyncSync, tid, epoch)
}

// SendDeltaAsync is SendAsync for a pre-encoded patch frame. The
// resulting Pending resolves with wire.ErrDeltaResync when the server
// demands resynchronization (after the sender's sync map has been
// cleared); the connection and pipeline stay healthy, so the caller can
// resubmit the call as a full-body send on the same pipeline.
func (pl *Pipeline) SendDeltaAsync(bufs net.Buffers, tid, newEpoch uint64) (*Pending, error) {
	return pl.sendAsync(bufs, deltaAsyncPatch, tid, newEpoch)
}

// deltaAsync selects the delta annotation of one pipelined submit.
type deltaAsync uint8

const (
	deltaAsyncNone  deltaAsync = iota // plain request, no delta header
	deltaAsyncSync                    // full body + sync header (store as base)
	deltaAsyncPatch                   // body is a patch frame
)

func (pl *Pipeline) sendAsync(bufs net.Buffers, da deltaAsync, tid, epoch uint64) (*Pending, error) {
	select {
	case pl.slots <- struct{}{}:
	default:
		if pl.OnStall != nil {
			pl.OnStall()
		}
		select {
		case pl.slots <- struct{}{}:
		case <-pl.broken:
			return nil, pl.Err()
		}
	}
	pl.writeMu.Lock()
	if err := pl.Err(); err != nil {
		pl.writeMu.Unlock()
		// The slot taken above belongs to no request; hand it back so the
		// pipeline's accounting stays exact for any concurrent submitter
		// still racing the failure.
		<-pl.slots
		return nil, err
	}
	switch da {
	case deltaAsyncSync:
		// Header set + write happen under writeMu, so the pending header
		// cannot leak onto a concurrent submit's request. noteSync here is
		// the same write-order optimism as the serial path: the queue push
		// below is the wire order.
		b := append(pl.s.deltaHdrBuf[:0], deltaHeaderPrefix...)
		b = wire.AppendDeltaSync(b, tid, epoch)
		b = append(b, '\r', '\n')
		pl.s.deltaHdr = b
		pl.s.delta.noteSync(tid, epoch)
	case deltaAsyncPatch:
		b := append(pl.s.deltaHdrBuf[:0], deltaHeaderPrefix...)
		b = append(b, wire.DeltaValPatch...)
		b = append(b, '\r', '\n')
		pl.s.deltaHdr = b
		pl.s.delta.noteSync(tid, epoch)
	}
	if err := pl.s.writeRequest(bufs); err != nil {
		pl.fail(err)
		pl.writeMu.Unlock()
		return nil, err
	}
	p := &Pending{done: make(chan struct{})}
	pl.queue <- p // a slot is held, so the queue (cap = depth) has room
	pl.writeMu.Unlock()
	return p, nil
}

// readLoop is the ordered reader: one response per queued Pending, FIFO.
func (pl *Pipeline) readLoop() {
	defer close(pl.done)
	var resp Response // private parse state; next-read-invalidates
	for {
		select {
		case <-pl.broken:
			pl.drainFail()
			return
		case p := <-pl.queue:
			pl.s.armRead()
			if err := ReadResponseInto(pl.s.br, &resp); err != nil {
				// The response stream is gone (or desynchronized): every
				// request behind this one is undeliverable too.
				err = pl.s.noteIOErr(err, true)
				pl.fail(fmt.Errorf("transport: pipeline read: %w", err))
				pl.resolve(p, 0, pl.Err())
				pl.drainFail()
				return
			}
			var serr error
			if resp.Status/100 != 2 {
				if pl.s.opts.Delta && resp.Status == 409 &&
					resp.Headers[wire.DeltaHeaderKey] == wire.DeltaValResync {
					// The server rejected a patch and demands a full body.
					// Only this request failed — the response was fully read
					// and the connection is healthy — so clear the sync
					// optimism and let this Pending's owner resubmit in full.
					pl.s.delta.reset(true)
					serr = wire.ErrDeltaResync
				} else {
					serr = fmt.Errorf("transport: server returned %d", resp.Status)
				}
			} else if pl.s.opts.Delta {
				if v, ok := resp.Headers[wire.DeltaHeaderKey]; ok {
					if _, _, oka := wire.ParseDeltaAck(v); oka {
						pl.s.delta.noteAck()
					}
				}
			}
			pl.resolve(p, resp.Status, serr)
			<-pl.slots
		}
	}
}

func (pl *Pipeline) resolve(p *Pending, status int, err error) {
	p.complete(status, err)
	if pl.OnComplete != nil {
		pl.OnComplete()
	}
}

// drainFail fails every Pending still queued. Taking writeMu first
// serializes with a SendAsync mid-push: once drainFail holds the lock,
// any later submit sees the sticky error before writing, so no Pending
// can slip into the queue unresolved after the drain.
func (pl *Pipeline) drainFail() {
	err := pl.Err()
	pl.writeMu.Lock()
	defer pl.writeMu.Unlock()
	for {
		select {
		case p := <-pl.queue:
			pl.resolve(p, 0, err)
		default:
			return
		}
	}
}

// Close breaks the pipeline, closes the underlying connection, and waits
// for the reader goroutine to exit; every unresolved Pending completes
// with an error. The Sender itself survives — Redial gives it a fresh
// connection for a new Pipeline (or plain serial use).
func (pl *Pipeline) Close() error {
	pl.fail(ErrPipelineClosed)
	_ = pl.s.Close() // unblocks a reader mid-read
	<-pl.done
	return nil
}
