//go:build race

package transport

// raceEnabled skips the AllocsPerRun gates under the race detector,
// whose instrumentation allocates.
const raceEnabled = true
