package transport

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReadRequestContentLength(t *testing.T) {
	raw := "POST /svc HTTP/1.1\r\nHost: x\r\nContent-Type: text/xml\r\nContent-Length: 5\r\n\r\nhello"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "POST" || req.Target != "/svc" || req.Proto != "HTTP/1.1" {
		t.Fatalf("request line: %+v", req)
	}
	if req.Headers["content-type"] != "text/xml" {
		t.Fatalf("headers: %+v", req.Headers)
	}
	if string(req.Body) != "hello" {
		t.Fatalf("body: %q", req.Body)
	}
}

func TestReadRequestChunked(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Body) != "hello world" {
		t.Fatalf("body: %q", req.Body)
	}
}

func TestReadRequestChunkedWithExtensionAndTrailer(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"3;ext=1\r\nabc\r\n0\r\nX-Trailer: v\r\n\r\n"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Body) != "abc" {
		t.Fatalf("body: %q", req.Body)
	}
}

func TestReadRequestErrors(t *testing.T) {
	cases := map[string]string{
		"empty connection":      "",
		"garbage request line":  "NOT-HTTP\r\n\r\n",
		"bad header":            "POST / HTTP/1.1\r\nNoColonHere\r\n\r\n",
		"missing framing":       "POST / HTTP/1.1\r\nHost: x\r\n\r\n",
		"negative length":       "POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n",
		"truncated body":        "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
		"bad chunk size":        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
		"bad chunk terminator":  "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcXX",
		"unsupported encoding":  "POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
		"eof inside chunk body": "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nab",
	}
	for name, raw := range cases {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(""))); err != ErrConnClosed {
		t.Error("empty connection should be ErrConnClosed")
	}
}

func TestWriteAndReadResponse(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResponse(&buf, 200, "text/xml", []byte("<ok/>")); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "<ok/>" {
		t.Fatalf("resp: %+v body %q", resp, resp.Body)
	}
}

func TestSenderSendFraming(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	s := NewSender(client, SenderOptions{Target: "/svc", Host: "unit", Version: HTTP11})

	var wg sync.WaitGroup
	wg.Add(1)
	var req *Request
	var rerr error
	go func() {
		defer wg.Done()
		req, rerr = ReadRequest(bufio.NewReader(server))
	}()
	if err := s.Send(net.Buffers{[]byte("<a>"), []byte("1"), []byte("</a>")}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if req.Target != "/svc" || req.Headers["host"] != "unit" {
		t.Fatalf("framing: %+v", req)
	}
	if string(req.Body) != "<a>1</a>" {
		t.Fatalf("body: %q", req.Body)
	}
	if req.Headers["content-length"] != "8" {
		t.Fatalf("content-length: %q", req.Headers["content-length"])
	}
}

func TestSenderHTTP10KeepAlive(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	s := NewSender(client, SenderOptions{Version: HTTP10})
	var wg sync.WaitGroup
	wg.Add(1)
	var req *Request
	go func() {
		defer wg.Done()
		req, _ = ReadRequest(bufio.NewReader(server))
	}()
	if err := s.Send(net.Buffers{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if req.Proto != "HTTP/1.0" {
		t.Fatalf("proto: %q", req.Proto)
	}
	if !strings.EqualFold(req.Headers["connection"], "keep-alive") {
		t.Fatalf("connection header: %q", req.Headers["connection"])
	}
}

func TestSenderStreaming(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	s := NewSender(client, SenderOptions{Version: HTTP11})
	var wg sync.WaitGroup
	wg.Add(1)
	var req *Request
	var rerr error
	go func() {
		defer wg.Done()
		req, rerr = ReadRequest(bufio.NewReader(server))
	}()
	if err := s.BeginStream(); err != nil {
		t.Fatal(err)
	}
	for _, part := range []string{"<arr>", "<v>1</v>", "<v>2</v>", "</arr>"} {
		if err := s.StreamChunk([]byte(part)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.StreamChunk(nil); err != nil { // empty chunk must be a no-op
		t.Fatal(err)
	}
	if err := s.EndStream(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(req.Body) != "<arr><v>1</v><v>2</v></arr>" {
		t.Fatalf("streamed body: %q", req.Body)
	}
}

func TestSenderStreamStateErrors(t *testing.T) {
	client, _ := net.Pipe()
	s := NewSender(client, SenderOptions{Version: HTTP11})
	if err := s.StreamChunk([]byte("x")); err == nil {
		t.Fatal("StreamChunk outside stream accepted")
	}
	if err := s.EndStream(); err == nil {
		t.Fatal("EndStream outside stream accepted")
	}
	s10 := NewSender(client, SenderOptions{Version: HTTP10})
	if err := s10.BeginStream(); err == nil {
		t.Fatal("HTTP/1.0 stream accepted")
	}
}

func TestDiscardServerEndToEnd(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sender, err := Dial(srv.Addr(), SenderOptions{Version: HTTP11})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	for i := 0; i < 10; i++ {
		if err := sender.Send(net.Buffers{[]byte("<m>payload</m>")}); err != nil {
			t.Fatal(err)
		}
	}
	// The discard server never responds; wait for it to drain.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Requests() < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("server received %d/10 requests", srv.Requests())
		}
		time.Sleep(time.Millisecond)
	}
	if srv.Bytes() != 10*int64(len("<m>payload</m>")) {
		t.Fatalf("server bytes = %d", srv.Bytes())
	}
}

func TestServerWithHandlerAndResponse(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Respond: true,
		Handler: func(req *Request) ([]byte, error) {
			return append([]byte("echo:"), req.Body...), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sender, err := Dial(srv.Addr(), SenderOptions{Version: HTTP11})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	resp, err := sender.Roundtrip(net.Buffers{[]byte("ping")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "echo:ping" {
		t.Fatalf("resp %d %q", resp.Status, resp.Body)
	}
}

func TestServerRespondingDiscardAcks(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerOptions{Respond: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sender, err := Dial(srv.Addr(), SenderOptions{Version: HTTP11, ExpectResponse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	for i := 0; i < 5; i++ {
		if err := sender.Send(net.Buffers{[]byte("msg")}); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Requests() != 5 {
		t.Fatalf("requests = %d", srv.Requests())
	}
}

func TestDiscardSinkCounts(t *testing.T) {
	d := NewDiscardSink()
	d.Send(net.Buffers{[]byte("abc"), []byte("de")})
	d.BeginStream()
	d.StreamChunk([]byte("xyz"))
	d.EndStream()
	if d.Bytes() != 8 || d.Sends() != 2 {
		t.Fatalf("bytes=%d sends=%d", d.Bytes(), d.Sends())
	}
}

func TestWriterSink(t *testing.T) {
	var buf bytes.Buffer
	w := WriterSink{W: &buf}
	w.Send(net.Buffers{[]byte("a"), []byte("b")})
	w.BeginStream()
	w.StreamChunk([]byte("c"))
	w.EndStream()
	if buf.String() != "abc" {
		t.Fatalf("writer sink got %q", buf.String())
	}
}
