package transport

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"net"
	"strings"
	"sync"
	"testing"
)

func TestCompressedSendRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	s := NewSender(client, SenderOptions{Version: HTTP11, Compress: true})

	var wg sync.WaitGroup
	wg.Add(1)
	var req *Request
	var rerr error
	go func() {
		defer wg.Done()
		req, rerr = ReadRequest(bufio.NewReader(server))
	}()
	body := strings.Repeat("<item>1.5</item>", 500)
	if err := s.Send(net.Buffers{[]byte("<arr>"), []byte(body), []byte("</arr>")}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if req.Headers["content-encoding"] != "gzip" {
		t.Fatalf("headers: %+v", req.Headers)
	}
	if string(req.Body) != "<arr>"+body+"</arr>" {
		t.Fatalf("decoded body wrong (%d bytes)", len(req.Body))
	}
}

func TestCompressedBodyIsSmallerOnWire(t *testing.T) {
	// Repetitive SOAP payloads compress hard; verify the framing really
	// carries fewer bytes.
	var raw bytes.Buffer
	zw := gzip.NewWriter(&raw)
	payload := strings.Repeat("<item>3.141592653589793</item>", 1000)
	zw.Write([]byte(payload))
	zw.Close()
	if raw.Len() >= len(payload)/10 {
		t.Fatalf("gzip only reached %d of %d bytes", raw.Len(), len(payload))
	}
}

func TestCompressedEndToEndOverTCP(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Respond: true,
		Handler: func(req *Request) ([]byte, error) {
			return []byte(req.Body), nil // echo the decoded body
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sender, err := Dial(srv.Addr(), SenderOptions{Version: HTTP11, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	msg := strings.Repeat("<v>42</v>", 300)
	resp, err := sender.Roundtrip(net.Buffers{[]byte(msg)})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != msg {
		t.Fatalf("echo mismatch: %d vs %d bytes", len(resp.Body), len(msg))
	}
	// Repeated compressed sends over the same connection must work (the
	// gzip writer is reset per message).
	for i := 0; i < 3; i++ {
		if _, err := sender.Roundtrip(net.Buffers{[]byte(msg)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
}

func TestBadContentEncodingRejected(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nContent-Encoding: br\r\nContent-Length: 3\r\n\r\nabc"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Fatal("unknown encoding accepted")
	}
	raw = "POST / HTTP/1.1\r\nContent-Encoding: gzip\r\nContent-Length: 3\r\n\r\nabc"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}
