package transport

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bsoap/internal/trace"
	"bsoap/internal/wire"
)

// Version selects the HTTP framing used by a Sender.
type Version int

const (
	// HTTP10 frames every message with Content-Length and keeps the
	// connection alive explicitly, as the 2004 toolkits did.
	HTTP10 Version = iota
	// HTTP11 frames complete sends with Content-Length and streamed
	// sends with chunked transfer encoding.
	HTTP11
)

// SenderOptions configure a Sender.
type SenderOptions struct {
	// Target is the request target path (default "/").
	Target string
	// Host is the Host header value (default the connection's remote
	// address).
	Host string
	// Version selects HTTP/1.0-style or HTTP/1.1 framing.
	Version Version
	// ExpectResponse makes Send read (and discard) one HTTP response per
	// message. The paper's Send Time measurements do not wait for
	// responses; RPC-style examples do.
	ExpectResponse bool
	// Compress gzips complete message bodies (Content-Encoding: gzip) —
	// the bandwidth-for-CPU trade the paper's related work attributes
	// to gSOAP, complementary to (and measurable against) differential
	// serialization. Streamed (overlay) sends are never compressed.
	Compress bool
	// Dialer overrides the TCP dial used by Dial and Redial (fault
	// injection, tests, alternative transports). nil selects the default
	// dialer with the paper's socket options.
	Dialer func(network, addr string) (net.Conn, error)
	// WriteTimeout bounds the socket writes of one Send/stream operation:
	// the write deadline is re-armed at the start of each operation, so a
	// peer that stops draining cannot stall a pooled sender forever. Zero
	// disables the deadline.
	WriteTimeout time.Duration
	// ReadTimeout bounds each response read the same way. Zero disables.
	ReadTimeout time.Duration
	// Delta turns on differential-transmission negotiation: full sends
	// carry an X-BSoap-Delta sync header, and once the server
	// acknowledges one, warm calls whose template the server holds go
	// out as compact patch frames. Requires response reading (serial
	// senders need ExpectResponse; the pipelined path always reads), or
	// negotiation simply never completes and every send stays full —
	// lossless either way.
	Delta bool
}

// Sender frames serialized messages as HTTP POSTs over one persistent
// connection. It implements the engine's Sink (vectored complete sends)
// and StreamSink (chunked streaming for overlay). Not safe for
// concurrent use.
type Sender struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	opts SenderOptions

	// addr is the dial target, recorded by Dial; empty for senders
	// wrapped around an externally established connection, which
	// therefore cannot Redial.
	addr   string
	closed atomic.Bool

	// TraceSpan attributes this sender's flight-recorder events (redial,
	// deadline hits) to the call in progress, and is propagated to the
	// server as the X-BSoap-Trace request header so server-side events
	// join the same span. The pool sets it before each call; zero
	// records the events unattributed and writes no header. Written only
	// by the sender's owner (same synchronization as every send method).
	TraceSpan uint64

	// traceBuf is the persistent scratch the X-BSoap-Trace header is
	// rendered into: a field (not a stack array) so handing it to the
	// buffered writer does not force a per-send heap allocation.
	traceBuf [40]byte

	// head is the static request head (request line through SOAPAction),
	// rendered once at construction so steady-state sends write it
	// without building strings.
	head []byte

	// lenBuf is persistent scratch for the per-send variable header
	// lines (Content-Length, chunk sizes), for the same reason as
	// traceBuf.
	lenBuf [80]byte

	streaming bool
	gz        *gzip.Writer
	gzBuf     bytes.Buffer

	// resp is reused across maybeReadResponse roundtrips: the ack of a
	// warm send is parsed into recycled storage (Roundtrip, whose caller
	// keeps the response, reads into a fresh one instead).
	resp Response

	// delta holds the per-connection differential-transmission state:
	// whether the peer has acknowledged delta capability and which
	// template epochs it is believed synchronized at. Guarded by its
	// own mutex because the pipelined read loop updates it concurrently
	// with submits; on the serial path the lock is uncontended.
	delta deltaState

	// deltaHdr is the pending X-BSoap-Delta request header for the next
	// writeRequestHead (set by SendFull/SendDelta, consumed by the
	// write); deltaHdrBuf is its persistent backing.
	deltaHdr    []byte
	deltaHdrBuf [64]byte
}

// deltaState tracks what the peer holds for delta transmission.
type deltaState struct {
	mu      sync.Mutex
	capable bool
	syncs   map[uint64]uint64 // template id -> synchronized epoch
}

// maxDeltaSyncs bounds the per-connection sync map against template-id
// churn; exceeding it clears the map wholesale (every template simply
// resynchronizes with one full send).
const maxDeltaSyncs = 256

// noteSync optimistically records that the peer will hold tid at epoch
// once the bytes now being written arrive. Sound because submits happen
// in wire order: any patch referencing this base is written after it.
func (d *deltaState) noteSync(tid, epoch uint64) {
	d.mu.Lock()
	if d.syncs == nil {
		d.syncs = make(map[uint64]uint64, 8)
	} else if len(d.syncs) >= maxDeltaSyncs {
		if _, exists := d.syncs[tid]; !exists {
			clear(d.syncs)
		}
	}
	d.syncs[tid] = epoch
	d.mu.Unlock()
}

// noteAck marks the peer delta-capable (it acknowledged storing a base).
func (d *deltaState) noteAck() {
	d.mu.Lock()
	d.capable = true
	d.mu.Unlock()
}

// epoch reports the epoch the peer is believed synchronized at for tid.
func (d *deltaState) epoch(tid uint64) (uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.capable {
		return 0, false
	}
	e, ok := d.syncs[tid]
	return e, ok
}

// reset drops all synchronization state (resync demand, redial).
// Capability survives a resync — the peer is still delta-capable, it
// just lost a base — but not a redial (fresh connection, fresh
// negotiation).
func (d *deltaState) reset(keepCapable bool) {
	d.mu.Lock()
	d.capable = d.capable && keepCapable
	clear(d.syncs)
	d.mu.Unlock()
}

// NewSender wraps an established connection.
func NewSender(conn net.Conn, opts SenderOptions) *Sender {
	if opts.Target == "" {
		opts.Target = "/"
	}
	if opts.Host == "" {
		if conn.RemoteAddr() != nil {
			opts.Host = conn.RemoteAddr().String()
		} else {
			opts.Host = "bsoap"
		}
	}
	proto := "HTTP/1.1"
	if opts.Version == HTTP10 {
		proto = "HTTP/1.0"
	}
	head := "POST " + opts.Target + " " + proto + "\r\n" +
		"Host: " + opts.Host + "\r\n" +
		"Content-Type: text/xml; charset=utf-8\r\n" +
		"SOAPAction: \"\"\r\n"
	if opts.Version == HTTP10 {
		head += "Connection: Keep-Alive\r\n"
	}
	return &Sender{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 32*1024),
		br:   bufio.NewReaderSize(conn, 32*1024),
		opts: opts,
		head: []byte(head),
	}
}

// Dial connects to addr over TCP with the socket options the paper sets
// (TCP_NODELAY, 32 KiB send and receive buffers, keep-alive) and returns
// a Sender. With opts.Dialer set, that dialer establishes the connection
// instead (and is reused by Redial).
func Dial(addr string, opts SenderOptions) (*Sender, error) {
	start := time.Now()
	conn, err := dialConn(addr, opts.Dialer)
	if trace.Enabled() {
		ok := int64(1)
		if err != nil {
			ok = 0
		}
		// Fresh dials happen before a sender is bound to any call, so the
		// event is unattributed (span 0) and ordered by time.
		trace.Rec(0, trace.KindDial, ok, time.Since(start).Nanoseconds(), 0)
	}
	if err != nil {
		return nil, err
	}
	s := NewSender(conn, opts)
	s.addr = addr
	return s, nil
}

// DefaultDialer establishes one experiment-configured TCP connection:
// TCP_NODELAY, keep-alive, 32 KiB socket buffers, 10s dial timeout. It
// is the dial SenderOptions.Dialer overrides, exported so wrappers
// (fault injection) can keep the same socket configuration underneath.
func DefaultDialer(network, addr string) (net.Conn, error) {
	conn, err := net.DialTimeout(network, addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// Errors here are advisory: the experiment still runs without
		// the exact 2004 socket configuration.
		_ = tc.SetNoDelay(true)
		_ = tc.SetKeepAlive(true)
		_ = tc.SetWriteBuffer(32 * 1024)
		_ = tc.SetReadBuffer(32 * 1024)
	}
	return conn, nil
}

// dialConn dials addr through the given dialer (nil = DefaultDialer).
func dialConn(addr string, dialer func(network, addr string) (net.Conn, error)) (net.Conn, error) {
	if dialer == nil {
		dialer = DefaultDialer
	}
	conn, err := dialer("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return conn, nil
}

// Close closes the underlying connection. It is idempotent — closing an
// already-closed Sender is a no-op — and, alone among Sender methods,
// safe to call from multiple goroutines (the first call wins), so pool
// cleanup paths may Close unconditionally. Close must still not race
// Redial or a send: those need the same external synchronization as the
// rest of the Sender (the pool provides it via exclusive slot ownership).
func (s *Sender) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	return s.conn.Close()
}

// ErrNotDialed is returned by Redial on senders wrapped around an
// externally established connection (NewSender), which have no address
// to reconnect to.
var ErrNotDialed = fmt.Errorf("transport: sender was not created by Dial; cannot redial")

// Redial replaces a broken connection with a fresh one to the original
// Dial address, resetting all buffered I/O and stream state. It is the
// health-check primitive connection pools use: on a send error, Redial
// and retry (the engine preserves dirty bits across failed sends, so
// the retried call re-serializes the same changes).
func (s *Sender) Redial() error {
	if s.addr == "" {
		return ErrNotDialed
	}
	_ = s.Close()
	start := time.Now()
	conn, err := dialConn(s.addr, s.opts.Dialer)
	if trace.Enabled() {
		ok := int64(1)
		if err != nil {
			ok = 0
		}
		trace.Rec(s.TraceSpan, trace.KindRedial, ok, time.Since(start).Nanoseconds(), 0)
	}
	if err != nil {
		return err
	}
	s.conn = conn
	s.bw.Reset(conn)
	s.br.Reset(conn)
	s.closed.Store(false)
	s.streaming = false
	// A fresh connection negotiates delta from scratch: nothing the old
	// peer connection held can be assumed synchronized.
	s.delta.reset(false)
	s.deltaHdr = nil
	return nil
}

// armWrite re-arms the per-operation write deadline (no-op when
// WriteTimeout is zero). Errors are ignored: on a dead connection the
// write that follows surfaces the failure with better context.
func (s *Sender) armWrite() {
	if s.opts.WriteTimeout > 0 {
		_ = s.conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	}
}

// armRead re-arms the per-operation read deadline the same way.
func (s *Sender) armRead() {
	if s.opts.ReadTimeout > 0 {
		_ = s.conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
	}
}

// noteIOErr records a flight-recorder deadline event when err is a
// socket timeout, returning err unchanged so call sites can keep
// wrapping it.
func (s *Sender) noteIOErr(err error, read bool) error {
	if err == nil {
		return nil
	}
	if trace.Enabled() {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			rw := int64(0)
			if read {
				rw = 1
			}
			trace.Rec(s.TraceSpan, trace.KindDeadline, rw, 0, 0)
		}
	}
	return err
}

// writeRequestHead writes the request line and common headers, leaving
// body framing to the caller.
func (s *Sender) writeRequestHead() error {
	if _, err := s.bw.Write(s.head); err != nil {
		return err
	}
	if s.TraceSpan != 0 {
		b := append(s.traceBuf[:0], traceHeaderPrefix...)
		b = strconv.AppendUint(b, s.TraceSpan, 16)
		b = append(b, '\r', '\n')
		if _, err := s.bw.Write(b); err != nil {
			return err
		}
	}
	if len(s.deltaHdr) != 0 {
		// Set-then-consume: the pending delta header belongs to exactly
		// one request; a plain Send between delta sends must not carry it.
		hdr := s.deltaHdr
		s.deltaHdr = nil
		if _, err := s.bw.Write(hdr); err != nil {
			return err
		}
	}
	return nil
}

// traceHeaderPrefix starts the span-propagation header; the value is
// the client's span id in lowercase hex (see TraceHeader).
const traceHeaderPrefix = "X-BSoap-Trace: "

// TraceHeader is the canonical name of the span-propagation header.
// Servers see it lowercased ("x-bsoap-trace") in Request.Headers.
const TraceHeader = "X-BSoap-Trace"

// Send frames bufs as one POST with Content-Length and flushes it — the
// engine's complete-message path. The vector is written segment by
// segment straight out of the template chunks (scatter-gather), unless
// compression is on, in which case the whole body is gzipped first
// (compression cannot reuse template bytes: every send re-compresses).
func (s *Sender) Send(bufs net.Buffers) error {
	if err := s.writeRequest(bufs); err != nil {
		return err
	}
	return s.maybeReadResponse()
}

// writeRequest frames bufs as one POST and flushes it without touching
// the response side of the connection — the write half Send and
// Pipeline.SendAsync share. The caller owns reading (or not reading)
// the response.
func (s *Sender) writeRequest(bufs net.Buffers) error {
	if s.opts.Compress {
		return s.writeRequestCompressed(bufs)
	}
	s.armWrite()
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if err := s.writeRequestHead(); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	b := append(s.lenBuf[:0], "Content-Length: "...)
	b = strconv.AppendInt(b, int64(total), 10)
	b = append(b, '\r', '\n', '\r', '\n')
	if _, err := s.bw.Write(b); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	for _, b := range bufs {
		if _, err := s.bw.Write(b); err != nil {
			return fmt.Errorf("transport: send body: %w", s.noteIOErr(err, false))
		}
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush: %w", s.noteIOErr(err, false))
	}
	return nil
}

// writeRequestCompressed gzips the body and frames it with
// Content-Encoding, again leaving the response to the caller.
func (s *Sender) writeRequestCompressed(bufs net.Buffers) error {
	s.armWrite()
	s.gzBuf.Reset()
	if s.gz == nil {
		s.gz = gzip.NewWriter(&s.gzBuf)
	} else {
		s.gz.Reset(&s.gzBuf)
	}
	for _, b := range bufs {
		if _, err := s.gz.Write(b); err != nil {
			return fmt.Errorf("transport: compress: %w", err)
		}
	}
	if err := s.gz.Close(); err != nil {
		return fmt.Errorf("transport: compress: %w", err)
	}
	if err := s.writeRequestHead(); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	b := append(s.lenBuf[:0], "Content-Encoding: gzip\r\nContent-Length: "...)
	b = strconv.AppendInt(b, int64(s.gzBuf.Len()), 10)
	b = append(b, '\r', '\n', '\r', '\n')
	if _, err := s.bw.Write(b); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	if _, err := s.bw.Write(s.gzBuf.Bytes()); err != nil {
		return fmt.Errorf("transport: send body: %w", s.noteIOErr(err, false))
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush: %w", s.noteIOErr(err, false))
	}
	return nil
}

// BeginStream starts a chunked-transfer POST (HTTP/1.1 only).
func (s *Sender) BeginStream() error {
	if s.opts.Version != HTTP11 {
		return fmt.Errorf("transport: streaming requires HTTP/1.1")
	}
	if s.streaming {
		return fmt.Errorf("transport: BeginStream during active stream")
	}
	s.armWrite()
	if err := s.writeRequestHead(); err != nil {
		return fmt.Errorf("transport: begin stream: %w", err)
	}
	if _, err := s.bw.WriteString("Transfer-Encoding: chunked\r\n\r\n"); err != nil {
		return fmt.Errorf("transport: begin stream: %w", err)
	}
	s.streaming = true
	return nil
}

// StreamChunk emits one transfer-encoding chunk and flushes it, so the
// bytes leave as soon as they are serialized (the paper's streaming).
func (s *Sender) StreamChunk(p []byte) error {
	if !s.streaming {
		return fmt.Errorf("transport: StreamChunk outside a stream")
	}
	if len(p) == 0 {
		return nil // a zero-length chunk would terminate the body
	}
	s.armWrite()
	b := strconv.AppendInt(s.lenBuf[:0], int64(len(p)), 16)
	b = append(b, '\r', '\n')
	if _, err := s.bw.Write(b); err != nil {
		return fmt.Errorf("transport: chunk head: %w", err)
	}
	if _, err := s.bw.Write(p); err != nil {
		return fmt.Errorf("transport: chunk data: %w", err)
	}
	if _, err := s.bw.WriteString("\r\n"); err != nil {
		return fmt.Errorf("transport: chunk tail: %w", err)
	}
	return s.noteIOErr(s.bw.Flush(), false)
}

// EndStream terminates the chunked body.
func (s *Sender) EndStream() error {
	if !s.streaming {
		return fmt.Errorf("transport: EndStream outside a stream")
	}
	s.streaming = false
	s.armWrite()
	if _, err := s.bw.WriteString("0\r\n\r\n"); err != nil {
		return fmt.Errorf("transport: end stream: %w", err)
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("transport: end stream flush: %w", s.noteIOErr(err, false))
	}
	return s.maybeReadResponse()
}

// Roundtrip sends bufs and returns the response body regardless of the
// ExpectResponse option — the RPC path used by the examples.
func (s *Sender) Roundtrip(bufs net.Buffers) (*Response, error) {
	if err := s.writeRequest(bufs); err != nil {
		return nil, err
	}
	s.armRead()
	resp, err := ReadResponse(s.br)
	if err != nil {
		return nil, s.noteIOErr(err, true)
	}
	return resp, nil
}

func (s *Sender) maybeReadResponse() error {
	if !s.opts.ExpectResponse {
		return nil
	}
	s.armRead()
	if err := ReadResponseInto(s.br, &s.resp); err != nil {
		return s.noteIOErr(err, true)
	}
	if s.resp.Status/100 != 2 {
		if s.opts.Delta && s.resp.Status == 409 && s.resp.Headers[wire.DeltaHeaderKey] == wire.DeltaValResync {
			// The peer rejected a patch: drop every assumed-synchronized
			// base and let the caller resend in full. The connection
			// itself stays healthy.
			s.delta.reset(true)
			return wire.ErrDeltaResync
		}
		return fmt.Errorf("transport: server returned %d", s.resp.Status)
	}
	if s.opts.Delta {
		if v, ok := s.resp.Headers[wire.DeltaHeaderKey]; ok {
			if _, _, oka := wire.ParseDeltaAck(v); oka {
				s.delta.noteAck()
			}
		}
	}
	return nil
}

// deltaHeaderPrefix starts the differential-transmission negotiation
// header (request side).
const deltaHeaderPrefix = "X-BSoap-Delta: "

// DeltaEpoch implements core.DeltaSink: the epoch the peer is believed
// synchronized at for template tid (ok=false until the peer has
// acknowledged delta capability, or when Delta is off).
func (s *Sender) DeltaEpoch(tid uint64) (uint64, bool) {
	if !s.opts.Delta {
		return 0, false
	}
	return s.delta.epoch(tid)
}

// SendFull implements core.DeltaSink: a full-body send annotated with a
// sync header so a capable peer stores it as the patch base for tid.
// The sync map is updated optimistically at write time — submits happen
// in wire order, so any later patch against this base is written after
// it; if the write fails, redial/resync recovery clears the optimism.
func (s *Sender) SendFull(bufs net.Buffers, tid, epoch uint64) error {
	if !s.opts.Delta {
		return s.Send(bufs)
	}
	b := append(s.deltaHdrBuf[:0], deltaHeaderPrefix...)
	b = wire.AppendDeltaSync(b, tid, epoch)
	b = append(b, '\r', '\n')
	s.deltaHdr = b
	s.delta.noteSync(tid, epoch)
	return s.Send(bufs)
}

// SendDelta implements core.DeltaSink: bufs is a pre-encoded patch
// frame. A 409/resync response surfaces as wire.ErrDeltaResync (after
// clearing the sync map) so the stub falls back to SendFull on this
// same connection.
func (s *Sender) SendDelta(bufs net.Buffers, tid, newEpoch uint64) error {
	b := append(s.deltaHdrBuf[:0], deltaHeaderPrefix...)
	b = append(b, wire.DeltaValPatch...)
	b = append(b, '\r', '\n')
	s.deltaHdr = b
	s.delta.noteSync(tid, newEpoch)
	return s.Send(bufs)
}

// crlf is the HTTP line terminator.
const crlf = "\r\n"

// Fetch performs one GET request against addr and returns the response
// — the client side of WSDL retrieval.
func Fetch(addr, target string) (*Response, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if target == "" {
		target = "/"
	}
	if _, err := io.WriteString(conn, "GET "+target+" HTTP/1.1"+crlf+"Host: "+addr+crlf+crlf); err != nil {
		return nil, fmt.Errorf("transport: fetch: %w", err)
	}
	return ReadResponse(bufio.NewReader(conn))
}

// DiscardSink is the in-process sink the benchmarks use by default: it
// consumes messages without network or copies beyond reading lengths, so
// measured time is pure serialization-side cost. It is safe for
// concurrent use.
type DiscardSink struct {
	bytes atomic.Int64
	sends atomic.Int64
}

// NewDiscardSink returns a fresh sink.
func NewDiscardSink() *DiscardSink { return &DiscardSink{} }

// Send implements the engine's Sink.
func (d *DiscardSink) Send(bufs net.Buffers) error {
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	d.bytes.Add(int64(n))
	d.sends.Add(1)
	return nil
}

// BeginStream implements StreamSink.
func (d *DiscardSink) BeginStream() error { return nil }

// StreamChunk implements StreamSink.
func (d *DiscardSink) StreamChunk(p []byte) error {
	d.bytes.Add(int64(len(p)))
	return nil
}

// EndStream implements StreamSink.
func (d *DiscardSink) EndStream() error {
	d.sends.Add(1)
	return nil
}

// Bytes reports the total bytes consumed.
func (d *DiscardSink) Bytes() int64 { return d.bytes.Load() }

// Sends reports the number of messages consumed.
func (d *DiscardSink) Sends() int64 { return d.sends.Load() }

// DeltaDiscardSink is DiscardSink's delta-capable counterpart: an
// in-process sink acting as an always-capable, never-evicting peer. It
// lets benchmarks and alloc gates exercise the client's full delta
// encode path (eligibility, region walk, checksum, frame assembly)
// without a network. Safe for concurrent use.
type DeltaDiscardSink struct {
	DiscardSink
	mu         sync.Mutex
	syncs      map[uint64]uint64
	deltaSends atomic.Int64
	fullSends  atomic.Int64
}

// NewDeltaDiscardSink returns a fresh delta-capable discard sink.
func NewDeltaDiscardSink() *DeltaDiscardSink {
	return &DeltaDiscardSink{syncs: make(map[uint64]uint64, 8)}
}

// DeltaEpoch implements core.DeltaSink.
func (d *DeltaDiscardSink) DeltaEpoch(tid uint64) (uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.syncs[tid]
	return e, ok
}

// SendFull implements core.DeltaSink.
func (d *DeltaDiscardSink) SendFull(bufs net.Buffers, tid, epoch uint64) error {
	d.mu.Lock()
	d.syncs[tid] = epoch
	d.mu.Unlock()
	d.fullSends.Add(1)
	return d.Send(bufs)
}

// SendDelta implements core.DeltaSink.
func (d *DeltaDiscardSink) SendDelta(bufs net.Buffers, tid, newEpoch uint64) error {
	d.mu.Lock()
	d.syncs[tid] = newEpoch
	d.mu.Unlock()
	d.deltaSends.Add(1)
	return d.Send(bufs)
}

// DeltaSends reports patch-frame sends consumed; FullSends reports
// annotated full sends.
func (d *DeltaDiscardSink) DeltaSends() int64 { return d.deltaSends.Load() }

// FullSends reports sync-annotated full-body sends consumed.
func (d *DeltaDiscardSink) FullSends() int64 { return d.fullSends.Load() }

// WriterSink adapts any io.Writer into a Sink/StreamSink (tests, files).
type WriterSink struct{ W io.Writer }

// Send implements Sink.
func (w WriterSink) Send(bufs net.Buffers) error {
	for _, b := range bufs {
		if _, err := w.W.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// BeginStream implements StreamSink.
func (w WriterSink) BeginStream() error { return nil }

// StreamChunk implements StreamSink.
func (w WriterSink) StreamChunk(p []byte) error {
	_, err := w.W.Write(p)
	return err
}

// EndStream implements StreamSink.
func (w WriterSink) EndStream() error { return nil }
