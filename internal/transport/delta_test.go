package transport

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"bsoap/internal/wire"
)

// deltaPeer is a transport server behaving like a delta-capable
// endpoint: sync-annotated bodies are acked, patch frames are accepted
// or refused with a resync depending on the refuse flag.
func deltaPeer(t *testing.T, refuse *atomic.Bool) *Server {
	t.Helper()
	srv, err := Listen("127.0.0.1:0", ServerOptions{
		Respond: true,
		Handler: func(req *Request) ([]byte, error) {
			switch req.DeltaMode {
			case DeltaSync:
				req.DeltaAck = true
				req.DeltaAckTID = req.DeltaTID
				req.DeltaAckEpoch = req.DeltaEpoch
			case DeltaPatch:
				if refuse.Load() {
					return nil, fmt.Errorf("peer lost the base: %w", wire.ErrDeltaResync)
				}
			}
			return []byte("ok"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestSenderDeltaNegotiation drives the serial sender through the whole
// negotiation lifecycle: not capable until the first ack, synchronized
// epochs tracked per template, a 409/resync clearing the sync map (but
// not capability) and surfacing as wire.ErrDeltaResync, and a fresh
// sync restoring patch eligibility.
func TestSenderDeltaNegotiation(t *testing.T) {
	var refuse atomic.Bool
	srv := deltaPeer(t, &refuse)
	s, err := Dial(srv.Addr(), SenderOptions{Version: HTTP11, Delta: true, ExpectResponse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok := s.DeltaEpoch(5); ok {
		t.Fatal("sender believed peer capable before any ack")
	}
	if err := s.SendFull(net.Buffers{[]byte("<body/>")}, 5, 1); err != nil {
		t.Fatalf("SendFull: %v", err)
	}
	if e, ok := s.DeltaEpoch(5); !ok || e != 1 {
		t.Fatalf("after acked sync: epoch %d, ok %v, want 1/true", e, ok)
	}

	refuse.Store(true)
	err = s.SendDelta(net.Buffers{[]byte("patchbytes")}, 5, 2)
	if !errors.Is(err, wire.ErrDeltaResync) {
		t.Fatalf("refused patch returned %v, want ErrDeltaResync", err)
	}
	if _, ok := s.DeltaEpoch(5); ok {
		t.Fatal("sync map not cleared by the resync")
	}

	refuse.Store(false)
	if err := s.SendFull(net.Buffers{[]byte("<body/>")}, 5, 2); err != nil {
		t.Fatalf("SendFull after resync: %v", err)
	}
	if e, ok := s.DeltaEpoch(5); !ok || e != 2 {
		t.Fatalf("after re-sync: epoch %d, ok %v, want 2/true", e, ok)
	}
}

// TestSenderDeltaOffPassthrough: with Delta off, SendFull is a plain
// send (no header, no sync state) and DeltaEpoch never reports capable.
func TestSenderDeltaOffPassthrough(t *testing.T) {
	var refuse atomic.Bool
	srv := deltaPeer(t, &refuse)
	s, err := Dial(srv.Addr(), SenderOptions{Version: HTTP11, ExpectResponse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SendFull(net.Buffers{[]byte("<body/>")}, 5, 1); err != nil {
		t.Fatalf("SendFull: %v", err)
	}
	if _, ok := s.DeltaEpoch(5); ok {
		t.Fatal("Delta off but DeltaEpoch reported capable")
	}
}

// TestDeltaStateOverflow: the per-connection sync map is bounded; the
// entry past the cap clears the map wholesale (every template simply
// resynchronizes) rather than growing without bound.
func TestDeltaStateOverflow(t *testing.T) {
	d := &deltaState{capable: true}
	for i := uint64(0); i < maxDeltaSyncs; i++ {
		d.noteSync(i, 1)
	}
	if e, ok := d.epoch(0); !ok || e != 1 {
		t.Fatalf("epoch(0) = %d, %v before overflow", e, ok)
	}
	d.noteSync(maxDeltaSyncs, 7)
	if _, ok := d.epoch(0); ok {
		t.Fatal("overflow did not clear the sync map")
	}
	if e, ok := d.epoch(maxDeltaSyncs); !ok || e != 7 {
		t.Fatalf("overflowing entry = %d, %v, want 7/true", e, ok)
	}
	// Re-noting an existing tid at the cap must NOT clear.
	d.noteSync(maxDeltaSyncs, 8)
	if e, ok := d.epoch(maxDeltaSyncs); !ok || e != 8 {
		t.Fatalf("re-note = %d, %v, want 8/true", e, ok)
	}
}

// TestPipelineDeltaAsync is the pipelined mirror of the negotiation
// test: sync acks arrive on the read loop, a refused patch fails only
// its own pending with wire.ErrDeltaResync, and later submits on the
// same pipeline proceed.
func TestPipelineDeltaAsync(t *testing.T) {
	var refuse atomic.Bool
	srv := deltaPeer(t, &refuse)
	s, err := Dial(srv.Addr(), SenderOptions{Version: HTTP11, Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(s, 4)
	defer func() {
		pl.Close()
		s.Close()
	}()
	if pl.Sender() != s || pl.Depth() != 4 {
		t.Fatalf("accessors: sender %p depth %d", pl.Sender(), pl.Depth())
	}

	p, err := pl.SendFullAsync(net.Buffers{[]byte("<body/>")}, 9, 1)
	if err != nil {
		t.Fatalf("SendFullAsync: %v", err)
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("sync pending: %v", err)
	}
	if e, ok := s.DeltaEpoch(9); !ok || e != 1 {
		t.Fatalf("after pipelined sync: epoch %d, ok %v, want 1/true", e, ok)
	}

	refuse.Store(true)
	p, err = pl.SendDeltaAsync(net.Buffers{[]byte("patchbytes")}, 9, 2)
	if err != nil {
		t.Fatalf("SendDeltaAsync: %v", err)
	}
	if err := p.Wait(); !errors.Is(err, wire.ErrDeltaResync) {
		t.Fatalf("refused pipelined patch resolved %v, want ErrDeltaResync", err)
	}
	if _, ok := s.DeltaEpoch(9); ok {
		t.Fatal("pipelined resync did not clear the sync map")
	}

	// The connection survived the 409: a full send resynchronizes.
	refuse.Store(false)
	p, err = pl.SendFullAsync(net.Buffers{[]byte("<body/>")}, 9, 2)
	if err != nil {
		t.Fatalf("SendFullAsync after resync: %v", err)
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("re-sync pending: %v", err)
	}
	if e, ok := s.DeltaEpoch(9); !ok || e != 2 {
		t.Fatalf("after pipelined re-sync: epoch %d, ok %v, want 2/true", e, ok)
	}
}

// TestPipelineDeltaOffFallback: with Delta off, SendFullAsync degrades
// to a plain SendAsync and patch submissions are refused up front.
func TestPipelineDeltaOffFallback(t *testing.T) {
	var refuse atomic.Bool
	srv := deltaPeer(t, &refuse)
	pl := pipelineOver(t, srv, 2)
	p, err := pl.SendFullAsync(net.Buffers{[]byte("<body/>")}, 3, 1)
	if err != nil {
		t.Fatalf("SendFullAsync: %v", err)
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("pending: %v", err)
	}
	if _, ok := pl.Sender().DeltaEpoch(3); ok {
		t.Fatal("Delta off but the pipeline tracked a sync")
	}
}

// TestServerMetricsDeltaCounters exercises the serverpool-facing
// recording methods directly and reads them back through Snapshot.
func TestServerMetricsDeltaCounters(t *testing.T) {
	m := NewServerMetrics()
	m.RecordDeltaSync(100)
	m.RecordDeltaApply(40, 100)
	m.RecordDeltaBaseEviction()
	m.RecordDDSDecode(true, 3)
	m.RecordDDSDecode(false, 0)
	m.AddDDSKeyEvictions(2)
	m.AddDDSKeyEvictions(0) // no-op branch
	m.RecordReplicaEviction(true)
	m.RecordReplicaEviction(false)

	st := m.Snapshot()
	if st.DeltaSyncs != 1 || st.DeltaApplied != 1 || st.DeltaBaseEvictions != 1 {
		t.Fatalf("delta counters: %+v", st)
	}
	if st.DeltaWireBytes != 140 || st.DeltaRepresented != 200 {
		t.Fatalf("delta bytes: wire %d represented %d, want 140/200", st.DeltaWireBytes, st.DeltaRepresented)
	}
	if st.DDSFastPath != 1 || st.DDSFullParses != 1 || st.DDSValuesReparsed != 3 {
		t.Fatalf("dds counters: %+v", st)
	}
	if st.DDSKeyEvictions != 2 {
		t.Fatalf("dds key evictions: %d", st.DDSKeyEvictions)
	}
	if st.ReplicaEvictions != 2 || st.ReplicaBudgetEvictions != 1 {
		t.Fatalf("replica evictions: %d/%d", st.ReplicaEvictions, st.ReplicaBudgetEvictions)
	}
}
