package transport

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// writeOnlyConn is a fake net.Conn capturing written bytes; reads block
// forever (never used — ExpectResponse is off).
type writeOnlyConn struct{ buf *bytes.Buffer }

func (c writeOnlyConn) Read([]byte) (int, error)         { select {} }
func (c writeOnlyConn) Write(b []byte) (int, error)      { return c.buf.Write(b) }
func (c writeOnlyConn) Close() error                     { return nil }
func (c writeOnlyConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c writeOnlyConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c writeOnlyConn) SetDeadline(time.Time) error      { return nil }
func (c writeOnlyConn) SetReadDeadline(time.Time) error  { return nil }
func (c writeOnlyConn) SetWriteDeadline(time.Time) error { return nil }

// TestTraceSpanHeaderRoundTrip sends with a span id set and checks the
// X-BSoap-Trace header reaches the server-side Request parsed back into
// the same id; a second request without a span must not leak the first
// one (keep-alive reuse of the parsed Request).
func TestTraceSpanHeaderRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	s := NewSender(client, SenderOptions{Target: "/svc", Version: HTTP11})
	s.TraceSpan = 0xdeadbeefcafe

	br := bufio.NewReader(server)
	var wg sync.WaitGroup
	var req Request
	var rerr error
	read := func() {
		defer wg.Done()
		rerr = ReadRequestInto(br, &req)
	}

	wg.Add(1)
	go read()
	if err := s.Send(net.Buffers{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if req.TraceSpan != 0xdeadbeefcafe {
		t.Fatalf("TraceSpan = %#x, want 0xdeadbeefcafe (headers: %v)", req.TraceSpan, req.Headers)
	}

	// Span cleared: next request on the same connection must carry none.
	s.TraceSpan = 0
	wg.Add(1)
	go read()
	if err := s.Send(net.Buffers{[]byte("y")}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if _, ok := req.Headers["x-bsoap-trace"]; ok {
		t.Fatalf("cleared span still on the wire: %v", req.Headers)
	}
	if req.TraceSpan != 0 {
		t.Fatalf("TraceSpan leaked across keep-alive requests: %#x", req.TraceSpan)
	}
}

// TestTraceSpanHeaderParsing pins the parse: full 64-bit hex range,
// garbage ignored rather than erroring the request.
func TestTraceSpanHeaderParsing(t *testing.T) {
	read := func(hdr string) *Request {
		raw := "POST / HTTP/1.1\r\n" + hdr + "Content-Length: 1\r\n\r\nx"
		req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
		if err != nil {
			t.Fatalf("header %q: %v", hdr, err)
		}
		return req
	}
	if req := read("X-BSoap-Trace: ffffffffffffffff\r\n"); req.TraceSpan != ^uint64(0) {
		t.Fatalf("max span = %#x", req.TraceSpan)
	}
	if req := read("X-BSoap-Trace: 2a\r\n"); req.TraceSpan != 0x2a {
		t.Fatalf("small span = %#x", req.TraceSpan)
	}
	for _, bad := range []string{
		"X-BSoap-Trace: \r\n",                  // empty
		"X-BSoap-Trace: zzz\r\n",               // not hex
		"X-BSoap-Trace: 10000000000000000\r\n", // 17 digits: overflows
	} {
		if req := read(bad); req.TraceSpan != 0 {
			t.Fatalf("%q parsed to %#x, want 0", bad, req.TraceSpan)
		}
	}
}

// TestTraceHeaderWriteAllocFree gates the propagation cost: writing the
// span header must not allocate (the engines' steady-state zero-alloc
// guarantee holds with tracing enabled).
func TestTraceHeaderWriteAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	var buf bytes.Buffer
	s := NewSender(writeOnlyConn{&buf}, SenderOptions{Version: HTTP11})
	s.TraceSpan = 0x1234abcd5678
	payload := net.Buffers{[]byte("<a>1</a>")}
	if got := testing.AllocsPerRun(200, func() {
		buf.Reset()
		if err := s.Send(payload); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Send with TraceSpan allocates %v/op, want 0", got)
	}
	if !bytes.Contains(buf.Bytes(), []byte("X-BSoap-Trace: 1234abcd5678\r\n")) {
		t.Fatalf("header missing from wire bytes:\n%s", buf.Bytes())
	}
}
