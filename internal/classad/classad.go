// Package classad models the Condor flocking exchange from paper §3.4:
// flocks of Condor pools periodically exchange ClassAd descriptions of
// their resources. The static attributes (name, architecture, OS,
// CPUs, memory) rarely change, and even the dynamic ones (load, state)
// are often stable between exchanges — so consecutive flock updates are
// message content matches or sparse structural matches for bSOAP.
package classad

import (
	"fmt"

	"bsoap/internal/wire"
)

// Namespace is the flocking exchange namespace.
const Namespace = "urn:condor-flock"

// Ad describes one execution resource (a fixed-schema ClassAd).
type Ad struct {
	Cpus     int32
	MemoryMB int32
	// State is 0 = idle, 1 = busy, 2 = owner.
	State int32
	// LoadAvg is the 1-minute load average.
	LoadAvg float64
}

// AdType is the wire struct type of one ClassAd.
func AdType() *wire.Type {
	return wire.StructOf("ns1:ClassAd",
		wire.Field{Name: "cpus", Type: wire.TInt},
		wire.Field{Name: "memoryMB", Type: wire.TInt},
		wire.Field{Name: "state", Type: wire.TInt},
		wire.Field{Name: "loadAvg", Type: wire.TDouble},
	)
}

// Pool is one Condor pool whose resources are advertised to the flock.
type Pool struct {
	Name string
	Ads  []Ad
	rng  uint64
}

// NewPool builds a deterministic pool of n machines.
func NewPool(name string, n int, seed uint64) *Pool {
	p := &Pool{Name: name, Ads: make([]Ad, n), rng: seed | 1}
	for i := range p.Ads {
		p.Ads[i] = Ad{
			Cpus:     int32(1 << (p.next() % 4)), // 1..8
			MemoryMB: int32(1024 * (1 + p.next()%16)),
			State:    0,
			LoadAvg:  0,
		}
	}
	return p
}

func (p *Pool) next() uint64 {
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	return p.rng
}

// Tick advances the simulation: a churn fraction of machines change
// state and load; the rest are unchanged (the common case the paper
// argues makes flocking exchanges differential-friendly). It returns
// how many ads changed.
func (p *Pool) Tick(churn float64) int {
	k := int(float64(len(p.Ads))*churn + 0.5)
	if k > len(p.Ads) {
		k = len(p.Ads)
	}
	for i := 0; i < k; i++ {
		idx := int(p.next() % uint64(len(p.Ads)))
		ad := &p.Ads[idx]
		ad.State = int32(p.next() % 3)
		// Quantized load keeps lexical width small and realistic.
		ad.LoadAvg = float64(p.next()%800) / 100
	}
	return k
}

// Exchange binds a pool to an outgoing flock message. The update path
// writes through wire accessors, so unchanged ads never dirty the
// template.
type Exchange struct {
	Msg  *wire.Message
	pool *Pool
	arr  wire.StructArrayRef
}

// NewExchange builds the flock message for p's current resources.
func NewExchange(p *Pool) *Exchange {
	m := wire.NewMessage(Namespace, "flockUpdate")
	m.AddString("pool", p.Name)
	arr := m.AddStructArray("ads", AdType(), len(p.Ads))
	e := &Exchange{Msg: m, pool: p, arr: arr}
	e.Sync()
	m.ClearDirty()
	return e
}

// Sync copies the pool's current ads into the message; only genuinely
// changed fields become dirty.
func (e *Exchange) Sync() {
	if e.arr.Len() != len(e.pool.Ads) {
		e.arr.Resize(len(e.pool.Ads))
	}
	for i, ad := range e.pool.Ads {
		e.arr.SetInt(i, 0, ad.Cpus)
		e.arr.SetInt(i, 1, ad.MemoryMB)
		e.arr.SetInt(i, 2, ad.State)
		e.arr.SetDouble(i, 3, ad.LoadAvg)
	}
}

// DecodeAds extracts the ads from a decoded flockUpdate message.
func DecodeAds(m *wire.Message) (pool string, ads []Ad, err error) {
	params := m.Params()
	if len(params) != 2 || params[1].Type.Kind != wire.Array {
		return "", nil, fmt.Errorf("classad: unexpected message shape")
	}
	pool = m.LeafString(0)
	n := params[1].Count
	per := params[1].Type.LeavesPerValue()
	ads = make([]Ad, n)
	for i := 0; i < n; i++ {
		base := params[1].First + i*per
		ads[i] = Ad{
			Cpus:     m.LeafInt(base),
			MemoryMB: m.LeafInt(base + 1),
			State:    m.LeafInt(base + 2),
			LoadAvg:  m.LeafDouble(base + 3),
		}
	}
	return pool, ads, nil
}
