package classad

import (
	"net"
	"testing"

	"bsoap/internal/baseline"
	"bsoap/internal/core"
	"bsoap/internal/soapdec"
	"bsoap/internal/wire"
)

type captureSink struct{ data []byte }

func (c *captureSink) Send(bufs net.Buffers) error {
	c.data = c.data[:0]
	for _, b := range bufs {
		c.data = append(c.data, b...)
	}
	return nil
}

func TestNewPoolDeterministic(t *testing.T) {
	a, b := NewPool("p", 20, 9), NewPool("p", 20, 9)
	for i := range a.Ads {
		if a.Ads[i] != b.Ads[i] {
			t.Fatal("pool generation not deterministic")
		}
	}
	for _, ad := range a.Ads {
		if ad.Cpus < 1 || ad.Cpus > 8 || ad.MemoryMB < 1024 {
			t.Fatalf("implausible ad: %+v", ad)
		}
	}
}

func TestTickChurnsBoundedFraction(t *testing.T) {
	p := NewPool("p", 100, 4)
	changed := p.Tick(0.1)
	if changed != 10 {
		t.Fatalf("Tick touched %d ads, want 10", changed)
	}
	if p.Tick(0) != 0 {
		t.Fatal("zero churn changed ads")
	}
	if p.Tick(2.0) != 100 {
		t.Fatal("churn above 1 must clamp")
	}
}

func TestExchangeDirtyTracking(t *testing.T) {
	p := NewPool("p", 50, 11)
	e := NewExchange(p)
	if e.Msg.AnyDirty() {
		t.Fatal("fresh exchange dirty")
	}
	// No pool changes → sync leaves everything clean (content match).
	e.Sync()
	if e.Msg.AnyDirty() {
		t.Fatal("no-op sync dirtied the message")
	}
	// Churn a few machines: only their fields become dirty.
	p.Tick(0.1)
	e.Sync()
	dirty := e.Msg.DirtyCount()
	if dirty == 0 {
		t.Fatal("churn produced no dirty leaves")
	}
	if dirty > 5*2+2 { // ≤5 distinct machines × (state+load), allowing dup picks
		t.Fatalf("churn dirtied %d leaves", dirty)
	}
}

func TestFlockExchangeMatchesOverStub(t *testing.T) {
	p := NewPool("p", 40, 2)
	e := NewExchange(p)
	sink := &captureSink{}
	stub := core.NewStub(core.Config{Width: core.WidthPolicy{Double: core.MaxWidth, Int: core.MaxWidth}}, sink)

	if _, err := stub.Call(e.Msg); err != nil {
		t.Fatal(err)
	}
	// Quiet period: pure content matches.
	for i := 0; i < 3; i++ {
		e.Sync()
		ci, err := stub.Call(e.Msg)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Match != core.ContentMatch {
			t.Fatalf("quiet exchange %d: %v", i, ci.Match)
		}
	}
	// Load changes: structural matches with few rewrites.
	p.Tick(0.2)
	e.Sync()
	ci, err := stub.Call(e.Msg)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != core.StructuralMatch || ci.ValuesRewritten == 0 {
		t.Fatalf("churned exchange: %+v", ci)
	}
}

func TestDecodeAdsRoundTrip(t *testing.T) {
	p := NewPool("cluster-a", 15, 6)
	p.Tick(0.5)
	e := NewExchange(p)
	e.Sync()
	doc := baseline.NewGSOAPLike().Serialize(e.Msg)

	schema := &soapdec.Schema{
		Namespace: Namespace,
		Op:        "flockUpdate",
		Params: []soapdec.ParamSpec{
			{Name: "pool", Type: wire.TString},
			{Name: "ads", Type: wire.ArrayOf(AdType())},
		},
	}
	res, err := soapdec.Decode(doc, func(string) (*soapdec.Schema, bool) { return schema, true }, false)
	if err != nil {
		t.Fatal(err)
	}
	pool, ads, err := DecodeAds(res.Msg)
	if err != nil {
		t.Fatal(err)
	}
	if pool != "cluster-a" || len(ads) != 15 {
		t.Fatalf("pool %q, %d ads", pool, len(ads))
	}
	for i := range ads {
		if ads[i] != p.Ads[i] {
			t.Fatalf("ad %d: %+v != %+v", i, ads[i], p.Ads[i])
		}
	}
}

func TestDecodeAdsRejectsWrongShape(t *testing.T) {
	m := wire.NewMessage(Namespace, "flockUpdate")
	m.AddInt("x", 1)
	if _, _, err := DecodeAds(m); err == nil {
		t.Fatal("wrong shape accepted")
	}
}
