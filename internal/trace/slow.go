package trace

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Tail-based slow-call capture: a second, small ring retaining the
// *complete* event set of calls whose end-to-end latency exceeded a
// live threshold. The main flight-recorder ring keeps only the most
// recent Size events — by the time a human looks at a p99 outlier, its
// decision trail has usually been lapped. The slow ring fixes that:
// when a call completes above the threshold, every event carrying its
// span id still present in the main ring is copied into a preallocated
// slow entry, so /debug/trace/slow serves full per-call timelines long
// after the main ring has moved on.
//
// The threshold is live-adjustable two ways: an absolute duration
// (SetSlowThreshold) or a rolling quantile of observed end-to-end
// latencies (SetSlowQuantile), recomputed periodically from an internal
// power-of-two-bucket histogram. Capture itself allocates nothing — the
// entries, their event arrays, and the ring are preallocated — so a
// burst of slow calls cannot disturb the steady-state allocation
// guarantees. With capture off (the default), ObserveCall costs one
// atomic load.

const (
	// slowRingSize is how many slow calls the ring retains (newest
	// overwrite oldest).
	slowRingSize = 32
	// slowEventCap bounds the events copied per captured call; calls
	// with more matching events in the main ring are truncated
	// (Truncated marks them in the dump).
	slowEventCap = 64
	// slowRecalcMask: with quantile mode on, the threshold is
	// recomputed every (slowRecalcMask+1) observations.
	slowRecalcMask = 255

	slowModeOff      = 0
	slowModeAbsolute = 1
	slowModeQuantile = 2
)

// slowEntry is one captured slow call. The mutex serializes a writer
// (capture) against readers (SlowSnapshot) and against another writer
// that wrapped the ring.
type slowEntry struct {
	mu    sync.Mutex
	seq   uint64 // 1-based capture ordinal; 0 = never written
	span  uint64
	lat   int64 // end-to-end ns
	t     int64 // capture UnixNano
	n     int
	trunc bool
	evs   [slowEventCap]Event
}

// latDist is the internal end-to-end latency histogram feeding the
// rolling-quantile threshold (same power-of-two-ns bucketing as the
// stage histograms).
type latDist struct {
	buckets [stageBuckets]atomic.Int64
	count   atomic.Int64
	ctr     atomic.Uint64
}

// SetSlowThreshold arms slow-call capture with an absolute end-to-end
// latency threshold; d <= 0 disables capture.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if d <= 0 {
		t.slowMode.Store(slowModeOff)
		return
	}
	t.slowThresh.Store(int64(d))
	t.slowMode.Store(slowModeAbsolute)
}

// SetSlowQuantile arms slow-call capture with a rolling-quantile
// threshold: calls slower than the q-quantile of recently observed
// end-to-end latencies are captured. q outside (0,1) disables capture.
// The threshold starts unestablished (nothing captured) and is
// recomputed every few hundred observations.
func (t *Tracer) SetSlowQuantile(q float64) {
	if q <= 0 || q >= 1 {
		t.slowMode.Store(slowModeOff)
		return
	}
	t.slowQuantile.Store(math.Float64bits(q))
	t.slowThresh.Store(0)
	t.slowMode.Store(slowModeQuantile)
}

// SlowThreshold returns the currently effective capture threshold
// (zero when capture is off or a quantile threshold is not yet
// established).
func (t *Tracer) SlowThreshold() time.Duration {
	if t.slowMode.Load() == slowModeOff {
		return 0
	}
	return time.Duration(t.slowThresh.Load())
}

// ObserveCall reports one completed call's end-to-end latency. With
// capture off it is one atomic load; with capture armed it feeds the
// rolling histogram and, when the call exceeds the live threshold,
// copies the call's surviving events out of the main ring into the slow
// ring. Never allocates.
func (t *Tracer) ObserveCall(span uint64, latNs int64) {
	mode := t.slowMode.Load()
	if mode == slowModeOff || span == 0 {
		return
	}
	if mode == slowModeQuantile {
		t.observeQuantile(latNs)
	}
	thresh := t.slowThresh.Load()
	if thresh <= 0 || latNs < thresh {
		return
	}
	t.capture(span, latNs)
}

// observeQuantile updates the rolling latency histogram and
// periodically recomputes the threshold as the configured quantile's
// bucket upper bound.
func (t *Tracer) observeQuantile(latNs int64) {
	if latNs < 0 {
		latNs = 0
	}
	i := bits.Len64(uint64(latNs))
	if i >= stageBuckets {
		i = stageBuckets - 1
	}
	t.slowLat.buckets[i].Add(1)
	t.slowLat.count.Add(1)
	if t.slowLat.ctr.Add(1)&slowRecalcMask != 0 {
		return
	}
	q := math.Float64frombits(t.slowQuantile.Load())
	total := t.slowLat.count.Load()
	if total == 0 {
		return
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < stageBuckets; b++ {
		cum += t.slowLat.buckets[b].Load()
		if cum >= rank {
			t.slowThresh.Store(int64(uint64(1) << uint(b)))
			return
		}
	}
}

// capture copies every main-ring event carrying span into the next
// slow entry. It scans the whole ring under per-slot mutexes — linear
// in ring size, but only paid for calls already past the threshold.
func (t *Tracer) capture(span uint64, latNs int64) {
	ord := t.slowIdx.Add(1)
	e := &t.slow[(ord-1)%uint64(len(t.slow))]
	e.mu.Lock()
	if e.seq > ord {
		// A capture lapping this one already owns the slot: ordinals are
		// taken before slot locks, so a delayed older capture can lock
		// after a newer one. Dropping the older keeps slot seqs monotonic
		// — otherwise a snapshot would skip the slot as stale.
		e.mu.Unlock()
		t.slowCaptured.Add(1)
		return
	}
	e.seq = ord
	e.span = span
	e.lat = latNs
	e.t = time.Now().UnixNano()
	e.n = 0
	e.trunc = false
	total := t.seq.Load()
	size := uint64(len(t.slots))
	lo := uint64(0)
	if total > size {
		lo = total - size
	}
	for i := lo; i < total; i++ {
		s := &t.slots[i&t.mask]
		s.mu.Lock()
		ev := s.ev
		s.mu.Unlock()
		if ev.Seq != i || ev.Span != span {
			continue
		}
		if e.n == slowEventCap {
			e.trunc = true
			break
		}
		e.evs[e.n] = ev
		e.n++
	}
	e.mu.Unlock()
	t.slowCaptured.Add(1)
}

// SlowCall is one captured slow call in the JSON dump.
type SlowCall struct {
	Span      uint64      `json:"span"`
	LatencyNs int64       `json:"latency_ns"`
	Time      int64       `json:"t"`
	Truncated bool        `json:"truncated,omitempty"`
	Events    []EventJSON `json:"events"`
}

// SlowDump is the /debug/trace/slow payload: capture configuration,
// totals, the op-name table, and the retained slow calls oldest-first.
type SlowDump struct {
	Mode        string           `json:"mode"` // "off", "absolute", "quantile"
	ThresholdNs int64            `json:"threshold_ns"`
	Quantile    float64          `json:"quantile,omitempty"`
	Captured    uint64           `json:"captured"`
	Ops         map[int64]string `json:"ops"`
	Calls       []SlowCall       `json:"calls"`
}

// SlowSnapshot copies the retained slow calls out of the ring,
// oldest-first.
func (t *Tracer) SlowSnapshot() SlowDump {
	d := SlowDump{
		ThresholdNs: t.slowThresh.Load(),
		Captured:    t.slowCaptured.Load(),
		Ops:         make(map[int64]string),
		Calls:       make([]SlowCall, 0, len(t.slow)),
	}
	switch t.slowMode.Load() {
	case slowModeAbsolute:
		d.Mode = "absolute"
	case slowModeQuantile:
		d.Mode = "quantile"
		d.Quantile = math.Float64frombits(t.slowQuantile.Load())
	default:
		d.Mode = "off"
		d.ThresholdNs = 0
	}
	t.opsRev.Range(func(k, v any) bool {
		d.Ops[int64(k.(uint32))] = v.(string)
		return true
	})
	ord := t.slowIdx.Load()
	n := uint64(len(t.slow))
	lo := uint64(1)
	if ord > n {
		lo = ord - n + 1
	}
	for o := lo; o <= ord; o++ {
		e := &t.slow[(o-1)%n]
		e.mu.Lock()
		if e.seq != o {
			// Lapped by a newer capture (or never written); skip.
			e.mu.Unlock()
			continue
		}
		c := SlowCall{
			Span: e.span, LatencyNs: e.lat, Time: e.t,
			Truncated: e.trunc,
			Events:    make([]EventJSON, 0, e.n),
		}
		for i := 0; i < e.n; i++ {
			ev := e.evs[i]
			c.Events = append(c.Events, EventJSON{
				Seq: ev.Seq, Span: ev.Span, Time: ev.Time,
				Kind: ev.Kind.String(), A: ev.A, B: ev.B, C: ev.C,
			})
		}
		e.mu.Unlock()
		d.Calls = append(d.Calls, c)
	}
	return d
}

// ClearSlow discards all captured slow calls (the threshold
// configuration is preserved).
func (t *Tracer) ClearSlow() {
	for i := range t.slow {
		e := &t.slow[i]
		e.mu.Lock()
		e.seq = 0
		e.n = 0
		e.mu.Unlock()
	}
}

// ObserveCall reports a completed call to the default tracer's slow
// ring.
func ObserveCall(span uint64, latNs int64) { Default.ObserveCall(span, latNs) }

// SetSlowThreshold arms the default tracer's slow ring with an
// absolute threshold.
func SetSlowThreshold(d time.Duration) { Default.SetSlowThreshold(d) }

// SetSlowQuantile arms the default tracer's slow ring with a rolling
// quantile threshold.
func SetSlowQuantile(q float64) { Default.SetSlowQuantile(q) }
