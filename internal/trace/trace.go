// Package trace is the flight recorder for the differential send path:
// a preallocated, fixed-size ring of binary event records capturing, per
// call, *why* the engine classified a send the way it did and what
// repair work (rewrites, tag shifts, shifts, steals, chunk grows/splits)
// it triggered — plus the runtime around it (pool checkouts, redials,
// retries, transport dials and deadline hits).
//
// The recorder is built for production use on the zero-allocation
// steady-state path the engine guarantees:
//
//   - Recording never allocates. Events are fixed-size structs assigned
//     into a preallocated slot array; op names are interned once (cold,
//     at first-time sends) into a lock-free read table.
//   - A global on/off gate compiles call sites down to one atomic load
//     and a predictable branch when tracing is disabled — hooks wrap
//     their argument computation in `if trace.Enabled() { … }`.
//   - Per-event-kind sampling bounds the recording rate of high-volume
//     kinds (a 1000-leaf PSM send is 1000 rewrite events at rate 1):
//     kind k is recorded every Nth occurrence, deterministically, with
//     the phase seeded so tests can pin the exact recorded subset.
//   - Writers reserve a slot with one atomic increment and publish the
//     event under that slot's mutex (uncontended unless two writers
//     collide on the same slot a full ring apart), so concurrent
//     recording is race-free without a global lock on the hot path.
//
// The ring holds the most recent Size events; older ones are overwritten
// (flight-recorder semantics). Dump snapshots it oldest-first.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies what an event records. The A/B/C argument meanings are
// listed per kind; unused arguments are zero.
type Kind uint8

const (
	// KindCallStart opens a span: A=op id (see Dump.Ops), B=dirty leaf
	// count at entry, C=0.
	KindCallStart Kind = iota
	// KindMatch records the classification decision: A=core.MatchKind,
	// B=1 when the call was degraded (suspect template discarded).
	KindMatch
	// KindRewrite is one dirty-field rewrite: A=leaf index, B=old
	// serialized length, C=new serialized length.
	KindRewrite
	// KindTagShift is a closing-tag shift within a field: A=leaf index,
	// B=new serialized length, C=field width.
	KindTagShift
	// KindShift is a field expansion served by shifting the chunk tail:
	// A=leaf index, B=bytes moved, C=chunk ordinal. The deficit is the
	// growth visible in the adjacent KindRewrite event.
	KindShift
	// KindSteal is a field expansion served by stealing neighbour
	// padding: A=leaf index, B=deficit, C=donor leaf index.
	KindSteal
	// KindChunkGrow is a chunk reallocation: A=chunk length before,
	// B=bytes needed, C=chunk ordinal.
	KindChunkGrow
	// KindChunkSplit is a chunk split: A=chunk length before, B=split
	// offset, C=chunk ordinal.
	KindChunkSplit
	// KindTemplateBuild is a first-time serialization recording a new
	// template: A=op id, B=template bytes.
	KindTemplateBuild
	// KindTemplateSuspect marks a template poisoned by a failed send:
	// A=op id.
	KindTemplateSuspect
	// KindTemplateRebind is a same-structure different-message rebind
	// (all values rewritten, tags reused): A=op id.
	KindTemplateRebind
	// KindStaleRebind is a forced full value rewrite because the message
	// returned to a replica holding stale bytes: A=op id.
	KindStaleRebind
	// KindPoolCheckout is a connection checkout: A=1 when the caller had
	// to wait for a free slot.
	KindPoolCheckout
	// KindPoolRetry is a send retry after connection repair: A=attempt
	// number.
	KindPoolRetry
	// KindDial is a transport dial: A=1 on success, 0 on failure,
	// B=duration in nanoseconds.
	KindDial
	// KindRedial is a connection repair re-dial: A=1 on success, 0 on
	// failure, B=duration in nanoseconds.
	KindRedial
	// KindDeadline is a socket operation that hit its read/write
	// deadline: A=1 for read, 0 for write.
	KindDeadline
	// KindCallEnd closes a span: A=core.MatchKind, B=bytes on wire,
	// C=bytes serialized. Errors are recorded as KindCallErr instead.
	KindCallEnd
	// KindCallErr closes a span whose send failed: A=core.MatchKind,
	// B=bytes attempted.
	KindCallErr
	// KindOverlayPortion is one chunk-overlay portion streamed: A=first
	// item index, B=item count, C=portion bytes.
	KindOverlayPortion
	// KindServerDecode is one server-side request decode: A=1 on the
	// differential fast path / 0 on a full parse, B=leaf value regions
	// re-lexed, C=body bytes.
	KindServerDecode
	// KindServerRespond is one server-side differential response
	// serialization: A=core.MatchKind of the response send, B=response
	// bytes.
	KindServerRespond
	// KindAsyncSubmit is a pipelined call handed to the transport without
	// waiting for its response: A=op id, B=requests in flight on the
	// connection after the submit.
	KindAsyncSubmit
	// KindAsyncComplete resolves a pipelined call's future: A=1 on
	// success / 0 on error, B=submit-to-completion latency in
	// nanoseconds.
	KindAsyncComplete
	// KindReplicaEvict is a replica-registry eviction (client or server):
	// A=op id (0 for conn/host-keyed entries), B=reason (0 LRU count cap,
	// 1 byte budget), C=the entry's accounted bytes. Span 0: evictions
	// belong to the registry, not to any one call.
	KindReplicaEvict
	// KindServerSpan links a propagated client span to the server-local
	// sub-span handling it: Span=the client's span id (as carried in the
	// X-BSoap-Trace header), A=the server-local sub-span id, B=connection
	// id. Recorded once per traced request on the server, it is the
	// correlation anchor the inspector's -correlate mode keys on.
	KindServerSpan
	// KindStage is one per-call latency-attribution sample: A=Stage,
	// B=duration in nanoseconds. Client stages carry the client span,
	// server stages the propagated client span (or the server-local span
	// when no header was present).
	KindStage
	// KindDeltaSend is one warm call shipped as a patch frame instead of
	// the full body: A=frame bytes on wire, B=body bytes represented,
	// C=template delta id.
	KindDeltaSend
	// KindDeltaResync is a patch the peer rejected (epoch skew, checksum
	// fail, evicted base), transparently resent in full: A=template
	// delta id.
	KindDeltaResync

	kindCount = int(KindDeltaResync) + 1
)

var kindNames = [kindCount]string{
	KindCallStart:       "call-start",
	KindMatch:           "match",
	KindRewrite:         "rewrite",
	KindTagShift:        "tag-shift",
	KindShift:           "shift",
	KindSteal:           "steal",
	KindChunkGrow:       "chunk-grow",
	KindChunkSplit:      "chunk-split",
	KindTemplateBuild:   "template-build",
	KindTemplateSuspect: "template-suspect",
	KindTemplateRebind:  "template-rebind",
	KindStaleRebind:     "stale-rebind",
	KindPoolCheckout:    "pool-checkout",
	KindPoolRetry:       "pool-retry",
	KindDial:            "dial",
	KindRedial:          "redial",
	KindDeadline:        "deadline",
	KindCallEnd:         "call-end",
	KindCallErr:         "call-err",
	KindOverlayPortion:  "overlay-portion",
	KindServerDecode:    "server-decode",
	KindServerRespond:   "server-respond",
	KindAsyncSubmit:     "async-submit",
	KindAsyncComplete:   "async-complete",
	KindReplicaEvict:    "replica-evict",
	KindServerSpan:      "server-span",
	KindStage:           "stage",
	KindDeltaSend:       "delta-send",
	KindDeltaResync:     "delta-resync",
}

// String returns the kind's wire name (stable; the inspector and the
// JSON dump use it).
func (k Kind) String() string {
	if int(k) < kindCount {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString resolves a wire name back to its Kind; ok is false for
// unknown names.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one fixed-size binary record. Span groups the events of one
// call; Seq is the global ring sequence (total ordering across spans);
// Time is UnixNano at recording.
type Event struct {
	Seq  uint64
	Span uint64
	Time int64
	Kind Kind
	A    int64
	B    int64
	C    int64
}

// slot is one ring cell. The mutex makes a writer publishing an event
// and a reader (Dump) copying it race-free; it is uncontended unless two
// writers land on the same cell a whole ring apart.
type slot struct {
	mu sync.Mutex
	ev Event
}

// sampler decides, deterministically, which occurrences of one kind are
// recorded: every rate-th occurrence, with the counter's starting phase
// derived from the seed.
type sampler struct {
	rate uint64 // 0 or 1 = record all
	ctr  atomic.Uint64
}

func (s *sampler) take() bool {
	r := s.rate
	if r <= 1 {
		return true
	}
	return (s.ctr.Add(1)-1)%r == 0
}

// Tracer is a flight recorder. The zero value is unusable; call New.
// All methods are safe for concurrent use. Most programs use the
// package-level Default tracer via the package functions.
type Tracer struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	nspan   atomic.Uint64
	slots   []slot
	mask    uint64
	samp    [kindCount]sampler

	// ops interns operation names to small ids so events stay binary:
	// opID is a lock-free read on the warm path, one insert per distinct
	// operation (cold, during first-time sends).
	ops    sync.Map // string -> uint32
	nextOp atomic.Uint32
	opsRev sync.Map // uint32 -> string

	// Slow-call capture (see slow.go). slowMode gates ObserveCall down
	// to one atomic load when capture is off.
	slowMode     atomic.Int32
	slowThresh   atomic.Int64  // ns; <=0 means "not yet established"
	slowQuantile atomic.Uint64 // math.Float64bits of the rolling quantile
	slowIdx      atomic.Uint64
	slowCaptured atomic.Uint64
	slowLat      latDist
	slow         []slowEntry
}

// DefaultSize is the ring capacity tracers start with: enough for the
// full decision trail of hundreds of calls at moderate sampling.
const DefaultSize = 1 << 14

// New returns a disabled tracer whose ring holds size events (rounded up
// to a power of two; <=0 selects DefaultSize).
func New(size int) *Tracer {
	if size <= 0 {
		size = DefaultSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Tracer{
		slots: make([]slot, n),
		mask:  uint64(n - 1),
		slow:  make([]slowEntry, slowRingSize),
	}
}

// Enable turns recording on.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable turns recording off. In-flight Rec calls that already passed
// the gate may still land; subsequent ones are a single branch.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether recording is on. Hook sites test this before
// computing event arguments, so a disabled tracer costs one atomic load
// and one predictable branch per potential event.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetSampling records only every rate-th event of the given kind (1
// records all, 0 is treated as 1), with the occurrence counter's phase
// seeded for deterministic selection.
func (t *Tracer) SetSampling(k Kind, rate uint64, seed uint64) {
	s := &t.samp[k]
	s.rate = rate
	if rate > 1 {
		s.ctr.Store(seed % rate)
	} else {
		s.ctr.Store(0)
	}
}

// BeginSpan allocates a fresh span id (never zero).
func (t *Tracer) BeginSpan() uint64 { return t.nspan.Add(1) }

// OpID interns an operation name, returning its stable small id. Warm
// lookups are lock-free and allocation-free.
func (t *Tracer) OpID(op string) int64 {
	if v, ok := t.ops.Load(op); ok {
		return int64(v.(uint32))
	}
	id := t.nextOp.Add(1)
	if actual, loaded := t.ops.LoadOrStore(op, id); loaded {
		return int64(actual.(uint32))
	}
	t.opsRev.Store(id, op)
	return int64(id)
}

// Rec records one event. It is the single hot-path entry point: gate
// check, sampling decision, slot reservation, publish — no allocation on
// any branch.
func (t *Tracer) Rec(span uint64, k Kind, a, b, c int64) {
	if !t.enabled.Load() {
		return
	}
	if !t.samp[k].take() {
		return
	}
	i := t.seq.Add(1) - 1
	s := &t.slots[i&t.mask]
	s.mu.Lock()
	s.ev = Event{Seq: i, Span: span, Time: time.Now().UnixNano(), Kind: k, A: a, B: b, C: c}
	s.mu.Unlock()
}

// Dump is a point-in-time snapshot of the ring: the retained events
// oldest-first, the op-name table, and how many events the ring has
// dropped (overwritten) since the last Clear.
type Dump struct {
	// Recorded is the total number of events recorded (including
	// overwritten ones); Dropped = Recorded - len(Events).
	Recorded uint64           `json:"recorded"`
	Dropped  uint64           `json:"dropped"`
	Ops      map[int64]string `json:"ops"`
	Events   []EventJSON      `json:"events"`
	// Next is the cursor an incremental poller passes back as
	// ?since=<Next> to receive only events recorded after this snapshot
	// (it equals Recorded at snapshot time).
	Next uint64 `json:"next"`
}

// EventJSON is the JSON rendering of an Event (kind by name).
type EventJSON struct {
	Seq  uint64 `json:"seq"`
	Span uint64 `json:"span"`
	Time int64  `json:"t"`
	Kind string `json:"kind"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
	C    int64  `json:"c"`
}

// Snapshot copies the retained events out of the ring, oldest-first.
// Events recorded while the snapshot runs may be partially included (the
// ring keeps moving); each individual event is read consistently.
func (t *Tracer) Snapshot() Dump { return t.SnapshotSince(0) }

// SnapshotSince is Snapshot restricted to events with Seq >= since; it
// backs the /debug/trace?since= incremental-polling cursor. Events
// already overwritten are reported through Dropped as usual — a poller
// that falls more than a ring behind sees a gap, not stale data.
func (t *Tracer) SnapshotSince(since uint64) Dump {
	total := t.seq.Load()
	size := uint64(len(t.slots))
	lo := uint64(0)
	if total > size {
		lo = total - size
	}
	dropped := lo
	if since > lo {
		lo = since
	}
	if lo > total {
		lo = total
	}
	d := Dump{
		Recorded: total,
		Dropped:  dropped,
		Ops:      make(map[int64]string),
		Events:   make([]EventJSON, 0, total-lo),
		Next:     total,
	}
	t.opsRev.Range(func(k, v any) bool {
		d.Ops[int64(k.(uint32))] = v.(string)
		return true
	})
	for i := lo; i < total; i++ {
		s := &t.slots[i&t.mask]
		s.mu.Lock()
		ev := s.ev
		s.mu.Unlock()
		if ev.Seq != i {
			// The slot was lapped (overwritten by a newer event, or not
			// yet published); skip rather than emit a mismatched record.
			continue
		}
		d.Events = append(d.Events, EventJSON{
			Seq: ev.Seq, Span: ev.Span, Time: ev.Time,
			Kind: ev.Kind.String(), A: ev.A, B: ev.B, C: ev.C,
		})
	}
	return d
}

// Status is a cheap point-in-time summary of the tracer for health
// endpoints: a handful of atomic loads, no ring scan, no event copies.
type Status struct {
	Enabled  bool   `json:"enabled"`
	RingSize int    `json:"ring_size"`
	Recorded uint64 `json:"recorded"`
	Spans    uint64 `json:"spans"`

	SlowMode        string `json:"slow_mode"` // "off", "absolute", "quantile"
	SlowThresholdNs int64  `json:"slow_threshold_ns"`
	SlowCaptured    uint64 `json:"slow_captured"`
	SlowRingSize    int    `json:"slow_ring_size"`
}

// Status summarizes the tracer's recording and slow-ring state.
func (t *Tracer) Status() Status {
	st := Status{
		Enabled:      t.enabled.Load(),
		RingSize:     len(t.slots),
		Recorded:     t.seq.Load(),
		Spans:        t.nspan.Load(),
		SlowCaptured: t.slowCaptured.Load(),
		SlowRingSize: len(t.slow),
	}
	switch t.slowMode.Load() {
	case slowModeAbsolute:
		st.SlowMode = "absolute"
		st.SlowThresholdNs = t.slowThresh.Load()
	case slowModeQuantile:
		st.SlowMode = "quantile"
		st.SlowThresholdNs = t.slowThresh.Load()
	default:
		st.SlowMode = "off"
	}
	return st
}

// Clear discards all retained events and resets the sequence (span ids
// and op interning are preserved).
func (t *Tracer) Clear() {
	// Zero the slots under their locks so a concurrent Snapshot never
	// sees a stale event whose Seq matches a fresh sequence number.
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		s.ev = Event{Seq: ^uint64(0)}
		s.mu.Unlock()
	}
	t.seq.Store(0)
}

// Default is the process-wide flight recorder every hook in core, chunk,
// pool and transport records into. It starts disabled: until Enable is
// called the hooks cost one atomic load each.
var Default = New(DefaultSize)

// Enabled reports whether the default tracer is recording.
func Enabled() bool { return Default.Enabled() }

// Enable turns the default tracer on.
func Enable() { Default.Enable() }

// Disable turns the default tracer off.
func Disable() { Default.Disable() }

// Rec records into the default tracer.
func Rec(span uint64, k Kind, a, b, c int64) { Default.Rec(span, k, a, b, c) }

// BeginSpan allocates a span id from the default tracer.
func BeginSpan() uint64 { return Default.BeginSpan() }

// OpID interns an operation name in the default tracer.
func OpID(op string) int64 { return Default.OpID(op) }

// GetStatus summarizes the default tracer (see Tracer.Status).
func GetStatus() Status { return Default.Status() }
