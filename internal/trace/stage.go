package trace

import (
	"math/bits"
	"sync/atomic"
)

// Stage identifies one segment of a call's end-to-end latency. Client
// stages are measured by internal/pool, server stages by
// internal/transport and internal/serverpool; together they partition a
// traced call's wall-clock time so a tail outlier can be attributed to
// a specific pipeline segment (serialize vs. wire vs. decode vs.
// handler) rather than to "the call".
type Stage uint8

const (
	// StageCheckout is the client's wait for a free pooled connection.
	StageCheckout Stage = iota
	// StageSerialize is differential serialization on the client: the
	// stub's Call time minus time spent inside the transport sink.
	StageSerialize
	// StagePipelineQueue is the time a pipelined submit spent blocked on
	// the in-flight window (zero on the serial path).
	StagePipelineQueue
	// StageWire is wire time as seen by the client: the transport send
	// (serial) or submit-to-completion (pipelined), so it includes the
	// server's processing for serial calls.
	StageWire
	// StageServerQueue is server-side admission and read-ahead queueing:
	// request fully parsed to handler dispatch.
	StageServerQueue
	// StageDecode is server-side request decoding (differential fast
	// path or full parse).
	StageDecode
	// StageHandler is the application handler's own execution time.
	StageHandler
	// StageRespond is server-side differential response serialization.
	StageRespond
	// StageWrite is the server writing the response onto the socket.
	StageWrite
	// StageDeltaEncode is the client encoding a differential-transmission
	// patch frame (dirty-region walk + body checksum).
	StageDeltaEncode
	// StageDeltaApply is the server applying a patch frame to its held
	// template base (region copies + checksum verification).
	StageDeltaApply

	// StageCount is the number of stages; valid Stage values are
	// 0..StageCount-1.
	StageCount = int(StageDeltaApply) + 1
)

var stageNames = [StageCount]string{
	StageCheckout:      "checkout",
	StageSerialize:     "serialize",
	StagePipelineQueue: "pipeline_queue",
	StageWire:          "wire",
	StageServerQueue:   "server_queue",
	StageDecode:        "decode",
	StageHandler:       "handler",
	StageRespond:       "respond",
	StageWrite:         "write",
	StageDeltaEncode:   "delta_encode",
	StageDeltaApply:    "delta_apply",
}

// String returns the stage's stable wire name (used as the Prometheus
// stage label value and by the inspector).
func (s Stage) String() string {
	if int(s) < StageCount {
		return stageNames[s]
	}
	return "unknown"
}

// StageFromString resolves a wire name back to its Stage; ok is false
// for unknown names.
func StageFromString(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// stageBuckets is the per-stage histogram resolution: power-of-two
// nanosecond buckets, bucket i counting durations with
// 2^(i-1) < d <= 2^i ns (bucket 0 is <=1ns), covering ~1ns to ~9min.
const stageBuckets = 40

// StageHist is an always-on, allocation-free per-stage latency
// histogram: one power-of-two-bucket nanosecond histogram per Stage,
// all counters atomic. It is embedded in both the client and the server
// metrics registries and rendered as the bsoap_{client,server}_stage_seconds
// Prometheus families.
type StageHist struct {
	stages [StageCount]stageDist
}

type stageDist struct {
	buckets  [stageBuckets]atomic.Int64
	count    atomic.Int64
	sum      atomic.Int64 // nanoseconds
	lastSpan atomic.Uint64
	lastNs   atomic.Int64
}

// Observe records one duration for the stage; span, when non-zero, is
// retained as the stage's most recent exemplar (exposed on the +Inf
// bucket). Safe for concurrent use; never allocates.
func (h *StageHist) Observe(st Stage, ns int64, span uint64) {
	if int(st) >= StageCount {
		return
	}
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= stageBuckets {
		i = stageBuckets - 1
	}
	d := &h.stages[st]
	d.buckets[i].Add(1)
	d.count.Add(1)
	d.sum.Add(ns)
	if span != 0 {
		d.lastSpan.Store(span)
		d.lastNs.Store(ns)
	}
}

// Exemplar returns the stage's most recent traced observation (span id
// and duration); ok is false when no traced call has touched the stage.
func (h *StageHist) Exemplar(st Stage) (span uint64, ns int64, ok bool) {
	if int(st) >= StageCount {
		return 0, 0, false
	}
	d := &h.stages[st]
	span = d.lastSpan.Load()
	return span, d.lastNs.Load(), span != 0
}

// Count returns the number of observations recorded for the stage.
func (h *StageHist) Count(st Stage) int64 {
	if int(st) >= StageCount {
		return 0
	}
	return h.stages[st].count.Load()
}

// SumSeconds returns the stage's cumulative observed time in seconds.
func (h *StageHist) SumSeconds(st Stage) float64 {
	if int(st) >= StageCount {
		return 0
	}
	return float64(h.stages[st].sum.Load()) / 1e9
}

// Buckets copies the stage's per-bucket (non-cumulative) counts into
// dst, which must hold StageBucketCount entries, and returns the
// observation count at snapshot start.
func (h *StageHist) Buckets(st Stage, dst []int64) int64 {
	if int(st) >= StageCount {
		return 0
	}
	d := &h.stages[st]
	n := d.count.Load()
	for i := 0; i < stageBuckets && i < len(dst); i++ {
		dst[i] = d.buckets[i].Load()
	}
	return n
}

// StageBucketCount is the number of histogram buckets per stage.
const StageBucketCount = stageBuckets

// StageBucketUppers returns the bucket upper bounds in seconds
// (2^i nanoseconds for bucket i). The slice is freshly allocated; cold
// path only (exposition).
func StageBucketUppers() []float64 {
	u := make([]float64, stageBuckets)
	for i := range u {
		u[i] = float64(uint64(1)<<uint(i)) / 1e9
	}
	return u
}
