package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestDisabledRecordsNothing(t *testing.T) {
	tr := New(64)
	tr.Rec(1, KindCallStart, 1, 0, 0)
	if d := tr.Snapshot(); len(d.Events) != 0 || d.Recorded != 0 {
		t.Fatalf("disabled tracer recorded %d events (%d total)", len(d.Events), d.Recorded)
	}
}

func TestRecordAndSnapshotOrder(t *testing.T) {
	tr := New(64)
	tr.Enable()
	span := tr.BeginSpan()
	for i := 0; i < 10; i++ {
		tr.Rec(span, KindRewrite, int64(i), 0, 0)
	}
	d := tr.Snapshot()
	if len(d.Events) != 10 {
		t.Fatalf("got %d events, want 10", len(d.Events))
	}
	for i, ev := range d.Events {
		if ev.A != int64(i) || ev.Kind != "rewrite" || ev.Span != span {
			t.Fatalf("event %d out of order or malformed: %+v", i, ev)
		}
		if i > 0 && ev.Seq <= d.Events[i-1].Seq {
			t.Fatalf("sequence not increasing at %d", i)
		}
	}
}

// TestRingWraparound fills the ring several times over and checks the
// snapshot retains exactly the newest ring-size events, oldest-first,
// with the overwritten count reported.
func TestRingWraparound(t *testing.T) {
	tr := New(16) // rounds to 16 slots
	tr.Enable()
	const total = 100
	for i := 0; i < total; i++ {
		tr.Rec(7, KindRewrite, int64(i), 0, 0)
	}
	d := tr.Snapshot()
	if d.Recorded != total {
		t.Fatalf("recorded %d, want %d", d.Recorded, total)
	}
	if want := uint64(total - 16); d.Dropped != want {
		t.Fatalf("dropped %d, want %d", d.Dropped, want)
	}
	if len(d.Events) != 16 {
		t.Fatalf("retained %d events, want 16", len(d.Events))
	}
	for i, ev := range d.Events {
		if want := int64(total - 16 + i); ev.A != want {
			t.Fatalf("event %d: A=%d, want %d (newest ring-size events)", i, ev.A, want)
		}
	}
}

func TestClear(t *testing.T) {
	tr := New(16)
	tr.Enable()
	for i := 0; i < 40; i++ {
		tr.Rec(1, KindShift, int64(i), 0, 0)
	}
	tr.Clear()
	if d := tr.Snapshot(); len(d.Events) != 0 || d.Recorded != 0 {
		t.Fatalf("after Clear: %d events, %d recorded", len(d.Events), d.Recorded)
	}
	tr.Rec(2, KindSteal, 5, 0, 0)
	d := tr.Snapshot()
	if len(d.Events) != 1 || d.Events[0].Kind != "steal" {
		t.Fatalf("post-Clear recording broken: %+v", d.Events)
	}
}

// TestConcurrentWriters hammers one ring from many goroutines; under
// -race this proves slot publication is synchronized, and the snapshot
// taken mid-flight must contain only well-formed events.
func TestConcurrentWriters(t *testing.T) {
	tr := New(256)
	tr.Enable()
	const writers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			span := tr.BeginSpan()
			for i := 0; i < each; i++ {
				tr.Rec(span, Kind(i%kindCount), int64(w), int64(i), 0)
				if i%500 == 0 {
					tr.Snapshot() // readers race writers
				}
			}
		}(w)
	}
	wg.Wait()
	d := tr.Snapshot()
	if d.Recorded != writers*each {
		t.Fatalf("recorded %d, want %d", d.Recorded, writers*each)
	}
	if len(d.Events) != 256 {
		t.Fatalf("retained %d events, want full ring (256)", len(d.Events))
	}
	for i, ev := range d.Events {
		if ev.A < 0 || ev.A >= writers || ev.B < 0 || ev.B >= each {
			t.Fatalf("event %d torn or malformed: %+v", i, ev)
		}
	}
}

// TestSamplingDeterminism pins the exact subset a seeded sampler
// records: the same seed must select the same occurrences, a different
// seed a shifted phase.
func TestSamplingDeterminism(t *testing.T) {
	record := func(seed uint64) []int64 {
		tr := New(128)
		tr.Enable()
		tr.SetSampling(KindRewrite, 4, seed)
		for i := 0; i < 32; i++ {
			tr.Rec(1, KindRewrite, int64(i), 0, 0)
		}
		d := tr.Snapshot()
		out := make([]int64, 0, len(d.Events))
		for _, ev := range d.Events {
			out = append(out, ev.A)
		}
		return out
	}

	a, b := record(0), record(0)
	if len(a) != 8 {
		t.Fatalf("rate-4 sampling of 32 events recorded %d, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	for i, v := range a {
		if want := int64(i * 4); v != want {
			t.Fatalf("seed 0 phase: event %d = %d, want %d", i, v, want)
		}
	}
	c := record(1)
	for i, v := range c {
		if want := int64(i*4 + 3); v != want {
			t.Fatalf("seed 1 phase: event %d = %d, want %d", i, v, want)
		}
	}
	// Other kinds are unaffected by KindRewrite's sampling rate.
	tr := New(128)
	tr.Enable()
	tr.SetSampling(KindRewrite, 1000, 0)
	tr.Rec(1, KindShift, 1, 0, 0)
	tr.Rec(1, KindShift, 2, 0, 0)
	if d := tr.Snapshot(); len(d.Events) != 2 {
		t.Fatalf("unsampled kind affected: %d events", len(d.Events))
	}
}

// TestRecordingAllocFree gates the tracer's own contract: both the
// enabled-but-idle path (gate check on a disabled kind via sampling) and
// the full recording path perform zero heap allocations.
func TestRecordingAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	tr := New(1024)

	// Disabled: the gate alone.
	if got := testing.AllocsPerRun(200, func() {
		tr.Rec(1, KindRewrite, 1, 2, 3)
	}); got != 0 {
		t.Errorf("disabled Rec allocates %v/op, want 0", got)
	}

	tr.Enable()
	span := tr.BeginSpan()
	op := tr.OpID("urn:bench#echo") // interned once, cold
	if got := testing.AllocsPerRun(200, func() {
		tr.Rec(span, KindCallStart, op, 0, 0)
		tr.Rec(span, KindRewrite, 7, 12, 14)
		tr.Rec(span, KindCallEnd, 3, 96032, 14)
	}); got != 0 {
		t.Errorf("enabled Rec allocates %v/op, want 0", got)
	}

	// Warm OpID lookups are allocation-free too.
	if got := testing.AllocsPerRun(200, func() {
		tr.OpID("urn:bench#echo")
	}); got != 0 {
		t.Errorf("warm OpID allocates %v/op, want 0", got)
	}
}

func TestHTTPHandler(t *testing.T) {
	tr := New(64)
	tr.Enable()
	span := tr.BeginSpan()
	tr.Rec(span, KindCallStart, tr.OpID("echo"), 0, 0)
	tr.Rec(span, KindCallEnd, 1, 100, 0)

	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/?clear=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	var d Dump
	if err := json.NewDecoder(res.Body).Decode(&d); err != nil {
		t.Fatalf("endpoint output is not JSON: %v", err)
	}
	if len(d.Events) != 2 || d.Events[0].Kind != "call-start" || d.Events[1].Kind != "call-end" {
		t.Fatalf("unexpected dump: %+v", d.Events)
	}
	if d.Ops[d.Events[0].A] != "echo" {
		t.Fatalf("op table missing: %+v", d.Ops)
	}
	// ?clear=1 emptied the ring.
	if d2 := tr.Snapshot(); len(d2.Events) != 0 {
		t.Fatalf("clear=1 left %d events", len(d2.Events))
	}
}

func TestKindRoundTrip(t *testing.T) {
	for k := 0; k < kindCount; k++ {
		name := Kind(k).String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindFromString(name)
		if !ok || got != Kind(k) {
			t.Fatalf("round trip failed for %q", name)
		}
	}
}
