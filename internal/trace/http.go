package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler serves the tracer over HTTP — the /debug/trace endpoint:
//
//	GET  /debug/trace          dump the ring as JSON (oldest-first)
//	GET  /debug/trace?clear=1  dump, then clear the ring
//	POST /debug/trace/clear    clear without dumping
//
// net/http is used only on the debug port; the data path stays on the
// hand-rolled transport.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			t.Clear()
			w.WriteHeader(http.StatusNoContent)
			return
		}
		d := t.Snapshot()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(d); err != nil {
			http.Error(w, fmt.Sprintf("trace: %v", err), http.StatusInternalServerError)
			return
		}
		if r.URL.Query().Get("clear") == "1" {
			t.Clear()
		}
	})
}

// Handler serves the default tracer (see Tracer.Handler).
func Handler() http.Handler { return Default.Handler() }
