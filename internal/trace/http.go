package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler serves the tracer over HTTP — the /debug/trace endpoint:
//
//	GET  /debug/trace              dump the ring as JSON (oldest-first)
//	GET  /debug/trace?since=<seq>  dump only events with seq >= the cursor
//	                               (the previous dump's "next" field)
//	GET  /debug/trace?clear=1      dump, then clear the ring
//	POST /debug/trace/clear        clear without dumping
//
// net/http is used only on the debug port; the data path stays on the
// hand-rolled transport.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			t.Clear()
			w.WriteHeader(http.StatusNoContent)
			return
		}
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("trace: bad since cursor %q", s), http.StatusBadRequest)
				return
			}
			since = v
		}
		d := t.SnapshotSince(since)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(d); err != nil {
			http.Error(w, fmt.Sprintf("trace: %v", err), http.StatusInternalServerError)
			return
		}
		if r.URL.Query().Get("clear") == "1" {
			t.Clear()
		}
	})
}

// SlowHandler serves the slow-call ring — the /debug/trace/slow
// endpoint: GET dumps the captured slow calls as JSON, POST clears
// them.
func (t *Tracer) SlowHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			t.ClearSlow()
			w.WriteHeader(http.StatusNoContent)
			return
		}
		d := t.SlowSnapshot()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(d); err != nil {
			http.Error(w, fmt.Sprintf("trace: %v", err), http.StatusInternalServerError)
		}
	})
}

// Handler serves the default tracer (see Tracer.Handler).
func Handler() http.Handler { return Default.Handler() }

// SlowHandler serves the default tracer's slow ring (see
// Tracer.SlowHandler).
func SlowHandler() http.Handler { return Default.SlowHandler() }
