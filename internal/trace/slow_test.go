package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestSnapshotSinceCursor walks the ?since= contract: a poller that
// passes back Next sees each event exactly once, and a poller that
// falls more than a ring behind sees the gap via Dropped.
func TestSnapshotSinceCursor(t *testing.T) {
	tr := New(64)
	tr.Enable()
	for i := 0; i < 10; i++ {
		tr.Rec(1, KindRewrite, int64(i), 0, 0)
	}
	d1 := tr.SnapshotSince(0)
	if len(d1.Events) != 10 || d1.Next != 10 {
		t.Fatalf("first poll: %d events, next %d", len(d1.Events), d1.Next)
	}

	// Nothing new: empty incremental snapshot, cursor unchanged.
	d2 := tr.SnapshotSince(d1.Next)
	if len(d2.Events) != 0 || d2.Next != 10 {
		t.Fatalf("idle poll: %d events, next %d", len(d2.Events), d2.Next)
	}

	for i := 10; i < 15; i++ {
		tr.Rec(1, KindRewrite, int64(i), 0, 0)
	}
	d3 := tr.SnapshotSince(d2.Next)
	if len(d3.Events) != 5 || d3.Events[0].A != 10 || d3.Next != 15 {
		t.Fatalf("incremental poll: %d events (first A=%v), next %d",
			len(d3.Events), d3.Events[0].A, d3.Next)
	}

	// Laggard: the ring (64) laps the cursor; the snapshot starts at the
	// oldest retained event instead of serving stale slots.
	for i := 15; i < 200; i++ {
		tr.Rec(1, KindRewrite, int64(i), 0, 0)
	}
	d4 := tr.SnapshotSince(d3.Next)
	if len(d4.Events) != 64 {
		t.Fatalf("lapped poll retained %d events, want 64", len(d4.Events))
	}
	if first := d4.Events[0].A; first != 200-64 {
		t.Fatalf("lapped poll starts at A=%d, want %d", first, 200-64)
	}
	if d4.Dropped != 200-64 {
		t.Fatalf("lapped poll dropped %d, want %d", d4.Dropped, 200-64)
	}

	// A cursor beyond the end clamps to empty rather than panicking.
	if d5 := tr.SnapshotSince(10_000); len(d5.Events) != 0 || d5.Next != 200 {
		t.Fatalf("future cursor: %d events, next %d", len(d5.Events), d5.Next)
	}
}

func TestHandlerSinceParam(t *testing.T) {
	tr := New(64)
	tr.Enable()
	tr.Rec(1, KindRewrite, 1, 0, 0)
	tr.Rec(1, KindRewrite, 2, 0, 0)
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	get := func(path string) Dump {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var d Dump
		if err := json.NewDecoder(res.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		return d
	}
	if d := get("/?since=1"); len(d.Events) != 1 || d.Events[0].A != 2 {
		t.Fatalf("?since=1: %+v", d.Events)
	}
	res, err := srv.Client().Get(srv.URL + "/?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 400 {
		t.Fatalf("bad since: status %d, want 400", res.StatusCode)
	}
}

// TestSlowCaptureAbsolute checks the tail path end to end: only calls
// over the threshold are captured, and a captured call retains its
// complete event set from the main ring.
func TestSlowCaptureAbsolute(t *testing.T) {
	tr := New(256)
	tr.Enable()
	tr.SetSlowThreshold(time.Millisecond)

	fast := tr.BeginSpan()
	tr.Rec(fast, KindCallStart, 1, 0, 0)
	tr.Rec(fast, KindCallEnd, 1, 0, 0)
	tr.ObserveCall(fast, int64(10*time.Microsecond))

	slow := tr.BeginSpan()
	tr.Rec(slow, KindCallStart, 2, 0, 0)
	tr.Rec(slow, KindStage, int64(StageSerialize), 5000, 0)
	tr.Rec(slow, KindStage, int64(StageWire), 2_000_000, 0)
	tr.Rec(slow, KindCallEnd, 1, 64, 0)
	tr.ObserveCall(slow, int64(2*time.Millisecond))

	d := tr.SlowSnapshot()
	if d.Mode != "absolute" || d.ThresholdNs != int64(time.Millisecond) {
		t.Fatalf("dump config: %+v", d)
	}
	if d.Captured != 1 || len(d.Calls) != 1 {
		t.Fatalf("captured %d calls (%d total), want 1", len(d.Calls), d.Captured)
	}
	c := d.Calls[0]
	if c.Span != slow || c.LatencyNs != int64(2*time.Millisecond) || c.Truncated {
		t.Fatalf("captured call: %+v", c)
	}
	if len(c.Events) != 4 {
		t.Fatalf("captured %d events, want the complete set of 4: %+v", len(c.Events), c.Events)
	}
	for i, kind := range []string{"call-start", "stage", "stage", "call-end"} {
		if c.Events[i].Kind != kind {
			t.Fatalf("event %d kind %q, want %q", i, c.Events[i].Kind, kind)
		}
	}

	tr.ClearSlow()
	if d := tr.SlowSnapshot(); len(d.Calls) != 0 {
		t.Fatalf("ClearSlow left %d calls", len(d.Calls))
	}
	// Threshold configuration survives a clear.
	if tr.SlowThreshold() != time.Millisecond {
		t.Fatalf("ClearSlow dropped the threshold")
	}
}

// TestSlowCaptureOffIsFree pins the off-mode contract: no captures, and
// (without -race) zero allocations per ObserveCall.
func TestSlowCaptureOffIsFree(t *testing.T) {
	tr := New(64)
	tr.Enable()
	tr.ObserveCall(1, int64(time.Hour))
	if d := tr.SlowSnapshot(); d.Mode != "off" || len(d.Calls) != 0 {
		t.Fatalf("off mode captured: %+v", d)
	}
	if raceEnabled {
		return
	}
	if got := testing.AllocsPerRun(200, func() {
		tr.ObserveCall(1, int64(time.Hour))
	}); got != 0 {
		t.Errorf("off-mode ObserveCall allocates %v/op, want 0", got)
	}
	tr.SetSlowThreshold(time.Nanosecond)
	if got := testing.AllocsPerRun(200, func() {
		tr.ObserveCall(2, int64(time.Second)) // capture path, preallocated
	}); got != 0 {
		t.Errorf("capture path allocates %v/op, want 0", got)
	}
}

// TestSlowCaptureQuantile drives enough uniform-latency traffic through
// quantile mode for the threshold to establish, then checks an outlier
// is captured.
func TestSlowCaptureQuantile(t *testing.T) {
	tr := New(256)
	tr.Enable()
	tr.SetSlowQuantile(0.99)

	// 512 observations around 100µs establish a threshold near the top
	// bucket of that range (the recompute runs every 256).
	span := tr.BeginSpan()
	for i := 0; i < 512; i++ {
		tr.ObserveCall(span, int64(100*time.Microsecond))
	}
	if tr.SlowThreshold() == 0 {
		t.Fatal("quantile threshold never established")
	}
	out := tr.BeginSpan()
	tr.Rec(out, KindCallStart, 1, 0, 0)
	tr.ObserveCall(out, int64(time.Second))
	d := tr.SlowSnapshot()
	found := false
	for _, c := range d.Calls {
		if c.Span == out {
			found = true
			if len(c.Events) != 1 {
				t.Fatalf("outlier captured %d events, want 1", len(c.Events))
			}
		}
	}
	if !found {
		t.Fatalf("outlier not captured (threshold %v, %d calls)", tr.SlowThreshold(), len(d.Calls))
	}
}

// TestSlowRingConcurrent hammers capture and snapshot from many
// goroutines; under -race this proves the slow ring's entry locking, and
// every snapshotted call must be internally consistent (all events carry
// the call's span).
func TestSlowRingConcurrent(t *testing.T) {
	tr := New(1024)
	tr.Enable()
	tr.SetSlowThreshold(time.Nanosecond) // capture everything

	const writers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				span := tr.BeginSpan()
				tr.Rec(span, KindCallStart, int64(i), 0, 0)
				tr.Rec(span, KindStage, int64(StageWire), int64(i), 0)
				tr.Rec(span, KindCallEnd, 1, 0, 0)
				tr.ObserveCall(span, int64(time.Millisecond))
				if i%50 == 0 {
					tr.SlowSnapshot() // readers race writers
					tr.ObserveCall(0, 0)
				}
			}
		}()
	}
	wg.Wait()

	d := tr.SlowSnapshot()
	if d.Captured != writers*each {
		t.Fatalf("captured %d, want %d", d.Captured, writers*each)
	}
	if len(d.Calls) != slowRingSize {
		t.Fatalf("retained %d calls, want full ring (%d)", len(d.Calls), slowRingSize)
	}
	for _, c := range d.Calls {
		for _, ev := range c.Events {
			if ev.Span != c.Span {
				t.Fatalf("call %d holds foreign event: %+v", c.Span, ev)
			}
		}
	}
}

func TestSlowHandler(t *testing.T) {
	tr := New(64)
	tr.Enable()
	tr.SetSlowThreshold(time.Nanosecond)
	span := tr.BeginSpan()
	tr.Rec(span, KindCallStart, 1, 0, 0)
	tr.ObserveCall(span, int64(time.Millisecond))

	srv := httptest.NewServer(tr.SlowHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var d SlowDump
	if err := json.NewDecoder(res.Body).Decode(&d); err != nil {
		t.Fatalf("slow endpoint output is not JSON: %v", err)
	}
	if len(d.Calls) != 1 || d.Calls[0].Span != span {
		t.Fatalf("unexpected slow dump: %+v", d)
	}

	// POST clears the captures.
	post, err := srv.Client().Post(srv.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 204 {
		t.Fatalf("POST status %d, want 204", post.StatusCode)
	}
	if d := tr.SlowSnapshot(); len(d.Calls) != 0 {
		t.Fatalf("POST left %d calls", len(d.Calls))
	}
}
