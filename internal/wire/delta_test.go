package wire

import (
	"bytes"
	"errors"
	"testing"
)

// buildFrame assembles a frame from a base body and a patched body by
// encoding the differing runs as regions — the same shape the core
// encoder produces from dirty DUT entries.
func buildFrame(t *testing.T, tid, baseEpoch, newEpoch uint64, base, patched []byte) []byte {
	t.Helper()
	if len(base) != len(patched) {
		t.Fatalf("buildFrame: base %d bytes, patched %d", len(base), len(patched))
	}
	type run struct{ off, end int }
	var runs []run
	for i := 0; i < len(base); {
		if base[i] == patched[i] {
			i++
			continue
		}
		j := i
		for j < len(base) && base[j] != patched[j] {
			j++
		}
		runs = append(runs, run{i, j})
		i = j
	}
	frame := AppendDeltaHeader(nil, tid, baseEpoch, newEpoch, len(patched), DeltaCRC(patched), len(runs))
	for _, r := range runs {
		frame = AppendDeltaRegionHeader(frame, r.off, r.end-r.off)
		frame = append(frame, patched[r.off:r.end]...)
	}
	return frame
}

func TestDeltaFrameRoundTrip(t *testing.T) {
	base := []byte("<a><b>111</b><c>hello</c><d>222</d></a>")
	patched := []byte("<a><b>999</b><c>hello</c><d>888</d></a>")
	frame := buildFrame(t, 7, 3, 4, base, patched)

	var f DeltaFrame
	if err := ParseDeltaFrame(&f, frame); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if f.TID != 7 || f.BaseEpoch != 3 || f.NewEpoch != 4 {
		t.Fatalf("header fields: %+v", f)
	}
	if len(f.Regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(f.Regions))
	}
	work := append([]byte(nil), base...)
	if err := f.Apply(work); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !bytes.Equal(work, patched) {
		t.Fatalf("reconstructed body mismatch:\n got %q\nwant %q", work, patched)
	}
}

func TestDeltaFrameZeroRegions(t *testing.T) {
	body := []byte("<a>unchanged</a>")
	frame := AppendDeltaHeader(nil, 1, 5, 5, len(body), DeltaCRC(body), 0)
	var f DeltaFrame
	if err := ParseDeltaFrame(&f, frame); err != nil {
		t.Fatalf("parse: %v", err)
	}
	work := append([]byte(nil), body...)
	if err := f.Apply(work); err != nil {
		t.Fatalf("apply: %v", err)
	}
	// A zero-region frame against a *different* base must fail the CRC.
	bad := append([]byte(nil), body...)
	bad[3] ^= 0xff
	if err := f.Apply(bad); !errors.Is(err, ErrDeltaResync) {
		t.Fatalf("apply on mismatched base: err = %v, want ErrDeltaResync", err)
	}
}

func TestDeltaFrameRejections(t *testing.T) {
	body := []byte("<a>0123456789</a>")
	good := buildFrame(t, 1, 1, 2, []byte("<a>xxxxxxxxxx</a>"), body)

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := map[string][]byte{
		"empty":       nil,
		"short":       good[:DeltaHeaderLen-1],
		"bad magic":   mutate(func(b []byte) []byte { b[0] ^= 0xff; return b }),
		"trailing":    append(append([]byte(nil), good...), 0x00),
		"truncated":   good[:len(good)-1],
		"huge bodies": mutate(func(b []byte) []byte { b[28], b[29], b[30], b[31] = 0xff, 0xff, 0xff, 0xff; return b }),
		"huge count":  mutate(func(b []byte) []byte { b[36], b[37], b[38], b[39] = 0xff, 0xff, 0xff, 0xff; return b }),
	}
	var f DeltaFrame
	for name, b := range cases {
		if err := ParseDeltaFrame(&f, b); !errors.Is(err, ErrDeltaResync) {
			t.Errorf("%s: err = %v, want ErrDeltaResync", name, err)
		}
	}

	// Region out of bounds.
	frame := AppendDeltaHeader(nil, 1, 1, 2, 8, 0, 1)
	frame = AppendDeltaRegionHeader(frame, 6, 4)
	frame = append(frame, "abcd"...)
	if err := ParseDeltaFrame(&f, frame); !errors.Is(err, ErrDeltaResync) {
		t.Errorf("out-of-bounds region: err = %v", err)
	}

	// Overlapping / out-of-order regions.
	frame = AppendDeltaHeader(nil, 1, 1, 2, 16, 0, 2)
	frame = AppendDeltaRegionHeader(frame, 4, 4)
	frame = append(frame, "abcd"...)
	frame = AppendDeltaRegionHeader(frame, 2, 4)
	frame = append(frame, "efgh"...)
	if err := ParseDeltaFrame(&f, frame); !errors.Is(err, ErrDeltaResync) {
		t.Errorf("overlapping regions: err = %v", err)
	}

	// Empty region.
	frame = AppendDeltaHeader(nil, 1, 1, 2, 8, 0, 1)
	frame = AppendDeltaRegionHeader(frame, 0, 0)
	if err := ParseDeltaFrame(&f, frame); !errors.Is(err, ErrDeltaResync) {
		t.Errorf("empty region: err = %v", err)
	}
}

func TestDeltaFrameApplySizeMismatch(t *testing.T) {
	body := []byte("<a>12345</a>")
	frame := AppendDeltaHeader(nil, 1, 1, 1, len(body), DeltaCRC(body), 0)
	var f DeltaFrame
	if err := ParseDeltaFrame(&f, frame); err != nil {
		t.Fatal(err)
	}
	if err := f.Apply(body[:len(body)-1]); !errors.Is(err, ErrDeltaResync) {
		t.Fatalf("short base: err = %v, want ErrDeltaResync", err)
	}
}

func TestDeltaHeaderValues(t *testing.T) {
	v := string(AppendDeltaSync(nil, 0xdeadbeef, 0x2a))
	if v != "sync=deadbeef.2a" {
		t.Fatalf("sync value = %q", v)
	}
	tid, ep, ok := ParseDeltaSync(v)
	if !ok || tid != 0xdeadbeef || ep != 0x2a {
		t.Fatalf("ParseDeltaSync(%q) = %x, %x, %v", v, tid, ep, ok)
	}

	a := string(AppendDeltaAck(nil, 1, 0))
	if a != "ack=1.0" {
		t.Fatalf("ack value = %q", a)
	}
	tid, ep, ok = ParseDeltaAck(a)
	if !ok || tid != 1 || ep != 0 {
		t.Fatalf("ParseDeltaAck(%q) = %x, %x, %v", a, tid, ep, ok)
	}

	for _, bad := range []string{"", "sync=", "sync=1", "sync=.1", "sync=1.", "sync=xyz.1", "sync=1.1.1x", "ack=1.2", "sync=11111111111111111.1"} {
		if _, _, ok := ParseDeltaSync(bad); ok {
			t.Errorf("ParseDeltaSync(%q) accepted", bad)
		}
	}
	if _, _, ok := ParseDeltaAck("sync=1.2"); ok {
		t.Error("ParseDeltaAck accepted a sync value")
	}
}

// FuzzDeltaFrame feeds arbitrary bytes through the parser and, when
// parsing succeeds, applies the frame to a fresh base of the declared
// size. Invariants: never panic; on successful Apply the reconstructed
// body must actually hash to the frame's CRC (i.e. the checksum gate
// cannot be bypassed); on failed Apply the error wraps ErrDeltaResync.
func FuzzDeltaFrame(f *testing.F) {
	patched := []byte("<a><b>222</b><c>hellp</c></a>")
	var runs []byte
	runs = AppendDeltaHeader(runs, 3, 1, 2, len(patched), DeltaCRC(patched), 1)
	runs = AppendDeltaRegionHeader(runs, 6, 3)
	runs = append(runs, "222"...)
	f.Add(runs)
	f.Add(AppendDeltaHeader(nil, 1, 0, 0, 4, DeltaCRC([]byte("abcd")), 0))
	f.Add([]byte("<?xml version=\"1.0\"?><e/>"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		var fr DeltaFrame
		if err := ParseDeltaFrame(&fr, b); err != nil {
			if !errors.Is(err, ErrDeltaResync) {
				t.Fatalf("parse error not ErrDeltaResync: %v", err)
			}
			return
		}
		if fr.BodyLen > 1<<20 {
			return // cap fuzz memory; parser already bounds at MaxDeltaBodyLen
		}
		work := make([]byte, fr.BodyLen)
		for i := range work {
			work[i] = byte(i)
		}
		if err := fr.Apply(work); err != nil {
			if !errors.Is(err, ErrDeltaResync) {
				t.Fatalf("apply error not ErrDeltaResync: %v", err)
			}
			return
		}
		if DeltaCRC(work) != fr.BodyCRC {
			t.Fatalf("Apply succeeded but body CRC %08x != frame %08x", DeltaCRC(work), fr.BodyCRC)
		}
	})
}
