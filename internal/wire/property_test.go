package wire

import (
	"math/rand"
	"testing"
)

// TestRandomConstructionInvariants builds random messages and checks
// the structural invariants every serializer relies on: leaf counts
// match parameter declarations, leaf indexes are dense and in document
// order, values round-trip through the flat storage, and signatures are
// deterministic.
func TestRandomConstructionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		m := NewMessage("urn:prop", "op")
		expectedLeaves := 0
		type check func() bool
		var checks []check

		mio := StructOf("ns1:MIO",
			Field{Name: "x", Type: TInt},
			Field{Name: "y", Type: TInt},
			Field{Name: "value", Type: TDouble},
		)

		for p := rng.Intn(5) + 1; p > 0; p-- {
			switch rng.Intn(5) {
			case 0:
				v := int32(rng.Uint32())
				r := m.AddInt("i", v)
				expectedLeaves++
				checks = append(checks, func() bool { return r.Get() == v })
			case 1:
				v := rng.NormFloat64()
				r := m.AddDouble("d", v)
				expectedLeaves++
				checks = append(checks, func() bool { return r.Get() == v })
			case 2:
				n := rng.Intn(20)
				r := m.AddDoubleArray("da", n)
				expectedLeaves += n
				if n > 0 {
					i := rng.Intn(n)
					v := rng.Float64()
					r.Set(i, v)
					checks = append(checks, func() bool { return r.Get(i) == v })
				}
			case 3:
				n := rng.Intn(10)
				r := m.AddStructArray("ma", mio, n)
				expectedLeaves += 3 * n
				if n > 0 {
					i := rng.Intn(n)
					r.SetDouble(i, 2, 7.5)
					checks = append(checks, func() bool { return r.Double(i, 2) == 7.5 })
				}
			case 4:
				r := m.AddStruct("s", mio)
				expectedLeaves += 3
				r.SetInt(1, 9)
				checks = append(checks, func() bool { return r.Int(1) == 9 })
			}
		}

		if m.NumLeaves() != expectedLeaves {
			t.Fatalf("trial %d: %d leaves, expected %d", trial, m.NumLeaves(), expectedLeaves)
		}
		// Parameter leaf ranges must tile [0, NumLeaves) exactly.
		next := 0
		for _, p := range m.Params() {
			if p.First != next {
				t.Fatalf("trial %d: param %q starts at %d, expected %d", trial, p.Name, p.First, next)
			}
			next += p.Type.LeavesPerValue() * p.Count
		}
		if next != m.NumLeaves() {
			t.Fatalf("trial %d: params cover %d leaves of %d", trial, next, m.NumLeaves())
		}
		// Every leaf must have a scalar type and a tag.
		for i := 0; i < m.NumLeaves(); i++ {
			if !m.LeafType(i).Kind.Scalar() || m.LeafTag(i) == "" {
				t.Fatalf("trial %d: leaf %d malformed", trial, i)
			}
		}
		for i, c := range checks {
			if !c() {
				t.Fatalf("trial %d: value check %d failed", trial, i)
			}
		}
		if m.Signature() != m.Signature() {
			t.Fatalf("trial %d: signature unstable", trial)
		}
	}
}

// TestResizeStress randomly grows and shrinks arrays, checking data in
// surviving positions and index validity afterwards.
func TestResizeStress(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		m := NewMessage("urn:prop", "op")
		head := m.AddInt("head", 1)
		arr := m.AddDoubleArray("v", 10)
		tail := m.AddString("tail", "end")
		model := make([]float64, 10)
		for i := range model {
			v := rng.Float64()
			arr.Set(i, v)
			model[i] = v
		}
		for op := 0; op < 20; op++ {
			n := rng.Intn(30) + 1
			arr.Resize(n)
			if len(model) > n {
				model = model[:n]
			}
			for len(model) < n {
				model = append(model, 0)
			}
			// Mutate a random survivor.
			i := rng.Intn(n)
			v := rng.Float64()
			arr.Set(i, v)
			model[i] = v

			for j := 0; j < n; j++ {
				if arr.Get(j) != model[j] {
					t.Fatalf("trial %d op %d: idx %d = %g, want %g",
						trial, op, j, arr.Get(j), model[j])
				}
			}
			if head.Get() != 1 || tail.Get() != "end" {
				t.Fatalf("trial %d op %d: neighbours corrupted", trial, op)
			}
		}
	}
}
