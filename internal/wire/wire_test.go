package wire

import (
	"testing"

	"bsoap/internal/xsdlex"
)

// mioType builds the paper's Mesh Interface Object: [int, int, double].
func mioType() *Type {
	return StructOf("ns1:MIO",
		Field{Name: "x", Type: TInt},
		Field{Name: "y", Type: TInt},
		Field{Name: "value", Type: TDouble},
	)
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Int: "int", Double: "double", String: "string", Bool: "boolean",
		Struct: "struct", Array: "array",
	} {
		if k.String() != want {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), want)
		}
	}
	if !TInt.Kind.Scalar() || Struct.Scalar() || Array.Scalar() {
		t.Error("Scalar() wrong")
	}
}

func TestTypeMaxWidth(t *testing.T) {
	if TInt.MaxWidth() != xsdlex.MaxIntWidth {
		t.Error("int width")
	}
	if TDouble.MaxWidth() != xsdlex.MaxDoubleWidth {
		t.Error("double width")
	}
	if TString.MaxWidth() != 0 {
		t.Error("string width should be unbounded (0)")
	}
	if TBool.MaxWidth() != xsdlex.MaxBoolWidth {
		t.Error("bool width")
	}
}

func TestLeavesPerValue(t *testing.T) {
	mio := mioType()
	if mio.LeavesPerValue() != 3 {
		t.Fatalf("MIO leaves = %d", mio.LeavesPerValue())
	}
	if ArrayOf(mio).LeavesPerValue() != 3 {
		t.Fatalf("MIO array per-element leaves = %d", ArrayOf(mio).LeavesPerValue())
	}
	nested := StructOf("outer", Field{Name: "m", Type: mio}, Field{Name: "n", Type: TInt})
	if nested.LeavesPerValue() != 4 {
		t.Fatalf("nested leaves = %d", nested.LeavesPerValue())
	}
}

func TestStructOfValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StructOf accepted array field")
		}
	}()
	StructOf("bad", Field{Name: "a", Type: ArrayOf(TInt)})
}

func TestArrayOfValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArrayOf accepted nested array")
		}
	}()
	ArrayOf(ArrayOf(TInt))
}

func TestScalarParams(t *testing.T) {
	m := NewMessage("urn:test", "op")
	i := m.AddInt("count", 5)
	d := m.AddDouble("ratio", 0.5)
	s := m.AddString("name", "abc")
	b := m.AddBool("flag", true)

	if i.Get() != 5 || d.Get() != 0.5 || s.Get() != "abc" || b.Get() != true {
		t.Fatal("initial values wrong")
	}
	if m.AnyDirty() {
		t.Fatal("initial values must not be dirty")
	}
	i.Set(6)
	d.Set(0.25)
	s.Set("xyz")
	b.Set(false)
	if i.Get() != 6 || d.Get() != 0.25 || s.Get() != "xyz" || b.Get() != false {
		t.Fatal("updated values wrong")
	}
	if m.DirtyCount() != 4 {
		t.Fatalf("DirtyCount = %d, want 4", m.DirtyCount())
	}
}

func TestSetSameValueStaysClean(t *testing.T) {
	m := NewMessage("urn:test", "op")
	d := m.AddDouble("v", 1.5)
	d.Set(1.5)
	if m.AnyDirty() {
		t.Fatal("setting an identical value marked dirty")
	}
	arr := m.AddIntArray("a", 3)
	arr.Set(1, 0) // zero onto zero
	if m.AnyDirty() {
		t.Fatal("identical array write marked dirty")
	}
}

func TestClearAndMarkDirty(t *testing.T) {
	m := NewMessage("urn:test", "op")
	arr := m.AddDoubleArray("a", 10)
	arr.Set(3, 7)
	if !m.Dirty(arr.LeafIndex(3)) {
		t.Fatal("leaf 3 not dirty")
	}
	m.ClearDirty()
	if m.AnyDirty() {
		t.Fatal("ClearDirty left dirt")
	}
	m.MarkAllDirty()
	if m.DirtyCount() != m.NumLeaves() {
		t.Fatal("MarkAllDirty incomplete")
	}
	m.TouchLeaf(0)
	if !m.Dirty(0) {
		t.Fatal("TouchLeaf failed")
	}
}

func TestDoubleArray(t *testing.T) {
	m := NewMessage("urn:test", "send")
	arr := m.AddDoubleArray("values", 100)
	if arr.Len() != 100 || m.NumLeaves() != 100 {
		t.Fatalf("Len=%d leaves=%d", arr.Len(), m.NumLeaves())
	}
	for i := 0; i < 100; i++ {
		arr.Set(i, float64(i)/2)
	}
	for i := 0; i < 100; i++ {
		if arr.Get(i) != float64(i)/2 {
			t.Fatalf("element %d = %g", i, arr.Get(i))
		}
	}
}

func TestStructArrayMIO(t *testing.T) {
	m := NewMessage("urn:test", "sendMIOs")
	arr := m.AddStructArray("mios", mioType(), 10)
	if m.NumLeaves() != 30 {
		t.Fatalf("leaves = %d", m.NumLeaves())
	}
	for i := 0; i < 10; i++ {
		arr.SetInt(i, 0, int32(i))
		arr.SetInt(i, 1, int32(2*i))
		arr.SetDouble(i, 2, float64(i)+0.5)
	}
	for i := 0; i < 10; i++ {
		if arr.Int(i, 0) != int32(i) || arr.Int(i, 1) != int32(2*i) || arr.Double(i, 2) != float64(i)+0.5 {
			t.Fatalf("MIO %d = (%d,%d,%g)", i, arr.Int(i, 0), arr.Int(i, 1), arr.Double(i, 2))
		}
	}
	// Leaf types are in declaration order per element.
	if m.LeafType(0) != TInt || m.LeafType(2) != TDouble {
		t.Fatal("leaf types wrong")
	}
	if m.LeafTag(0) != "x" || m.LeafTag(2) != "value" {
		t.Fatalf("leaf tags: %q %q", m.LeafTag(0), m.LeafTag(2))
	}
}

func TestArrayIndexOutOfRangePanics(t *testing.T) {
	m := NewMessage("urn:test", "op")
	arr := m.AddIntArray("a", 3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range index")
		}
	}()
	arr.Set(3, 1)
}

func TestSignatureStability(t *testing.T) {
	build := func() *Message {
		m := NewMessage("urn:test", "op")
		m.AddInt("n", 1)
		m.AddDoubleArray("v", 50)
		return m
	}
	a, b := build(), build()
	if a.Signature() != b.Signature() {
		t.Fatalf("structurally identical messages differ:\n%s\n%s", a.Signature(), b.Signature())
	}
	// Value changes must not affect the signature.
	sig := a.Signature()
	m := build()
	m.Params()
	arr := m.AddDoubleArray("w", 1)
	_ = arr
	if m.Signature() == sig {
		t.Fatal("different structures share a signature")
	}
}

func TestSignatureDependsOnArrayLength(t *testing.T) {
	m1 := NewMessage("urn:test", "op")
	m1.AddDoubleArray("v", 50)
	m2 := NewMessage("urn:test", "op")
	m2.AddDoubleArray("v", 51)
	if m1.Signature() == m2.Signature() {
		t.Fatal("array length not part of signature")
	}
}

func TestSignatureDependsOnOpAndNamespace(t *testing.T) {
	m1 := NewMessage("urn:a", "op")
	m2 := NewMessage("urn:b", "op")
	m3 := NewMessage("urn:a", "op2")
	if m1.Signature() == m2.Signature() || m1.Signature() == m3.Signature() {
		t.Fatal("namespace/op not part of signature")
	}
}

func TestResizeArrayPreservesPrefix(t *testing.T) {
	m := NewMessage("urn:test", "op")
	n := m.AddInt("n", 7)
	arr := m.AddDoubleArray("v", 5)
	tail := m.AddString("tail", "end")
	for i := 0; i < 5; i++ {
		arr.Set(i, float64(i))
	}
	v0 := m.Version()
	arr.Resize(8)
	if m.Version() == v0 {
		t.Fatal("resize did not bump version")
	}
	if arr.Len() != 8 {
		t.Fatalf("Len after grow = %d", arr.Len())
	}
	for i := 0; i < 5; i++ {
		if arr.Get(i) != float64(i) {
			t.Fatalf("element %d lost: %g", i, arr.Get(i))
		}
	}
	for i := 5; i < 8; i++ {
		if arr.Get(i) != 0 {
			t.Fatalf("new element %d = %g, want 0", i, arr.Get(i))
		}
	}
	if n.Get() != 7 {
		t.Fatalf("scalar before array corrupted: %d", n.Get())
	}
	if tail.Get() != "end" {
		t.Fatalf("param after array corrupted: %q", tail.Get())
	}

	arr.Resize(2)
	if arr.Len() != 2 || arr.Get(1) != 1 {
		t.Fatalf("shrink lost data: len=%d v=%g", arr.Len(), arr.Get(1))
	}
	if tail.Get() != "end" {
		t.Fatal("param after array corrupted by shrink")
	}
}

func TestResizeChangesSignature(t *testing.T) {
	m := NewMessage("urn:test", "op")
	arr := m.AddDoubleArray("v", 5)
	s1 := m.Signature()
	arr.Resize(6)
	if m.Signature() == s1 {
		t.Fatal("signature unchanged after resize")
	}
}

func TestMIOStructParam(t *testing.T) {
	m := NewMessage("urn:test", "op")
	s := m.AddStruct("point", mioType())
	s.SetInt(0, 3)
	s.SetInt(1, 4)
	s.SetDouble(2, 5.5)
	if s.Int(0) != 3 || s.Int(1) != 4 || s.Double(2) != 5.5 {
		t.Fatal("struct field round trip failed")
	}
	if m.DirtyCount() != 3 {
		t.Fatalf("DirtyCount = %d", m.DirtyCount())
	}
}

func TestStringArray(t *testing.T) {
	m := NewMessage("urn:test", "op")
	arr := m.AddStringArray("names", 3)
	arr.Set(0, "a")
	arr.Set(2, "c")
	if arr.Get(0) != "a" || arr.Get(1) != "" || arr.Get(2) != "c" {
		t.Fatal("string array round trip failed")
	}
}

func TestFillHelpers(t *testing.T) {
	m := NewMessage("urn:test", "op")
	da := m.AddDoubleArray("d", 3)
	ia := m.AddIntArray("i", 3)
	da.Fill([]float64{1, 2, 3})
	ia.Fill([]int32{4, 5, 6})
	if da.Get(2) != 3 || ia.Get(0) != 4 {
		t.Fatal("Fill failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Fill accepted wrong length")
		}
	}()
	da.Fill([]float64{1})
}
