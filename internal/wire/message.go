package wire

import (
	"fmt"
	"strings"
)

// Param is one named parameter of a message. For arrays, Count is the
// element count; for scalars and structs it is 1. First is the index of
// the parameter's first scalar leaf in the message's flat leaf storage.
type Param struct {
	Name  string
	Type  *Type
	Count int
	First int
}

// leafSlot locates a scalar leaf: which parameter, and the offset of the
// leaf's scalar type within the element.
type leafSlot struct {
	typ *Type  // scalar type of this leaf
	tag string // innermost element tag enclosing this leaf
}

// Message is the in-memory form of one outgoing SOAP RPC call: an
// operation in a namespace plus parameters. Scalar leaves are stored in
// flat slices indexed in document order; every mutation goes through a
// Set accessor that maintains the leaf's dirty bit.
//
// A Message is not safe for concurrent use.
type Message struct {
	ns string
	op string

	params []Param

	ints    []int32
	doubles []float64
	strs    []string
	bools   []bool
	// slot i of `leaves` describes leaf i; the value lives in the
	// kind-matching flat slice at index `store[i]`.
	leaves []leafSlot
	store  []int
	dirty  []bool

	version   int // bumped on every structural change
	signature string
	sigValid  bool
}

// NewMessage returns an empty message for the given operation element.
func NewMessage(namespace, operation string) *Message {
	return &Message{ns: namespace, op: operation}
}

// Namespace returns the operation's namespace URI.
func (m *Message) Namespace() string { return m.ns }

// Operation returns the RPC operation name.
func (m *Message) Operation() string { return m.op }

// Params returns the parameter list. The slice must not be mutated.
func (m *Message) Params() []Param { return m.params }

// Version reports the structural version, bumped by AddX and Resize.
func (m *Message) Version() int { return m.version }

// NumLeaves reports the number of scalar leaves.
func (m *Message) NumLeaves() int { return len(m.leaves) }

// structural mutation helpers -----------------------------------------

func (m *Message) bumpStructure() {
	m.version++
	m.sigValid = false
}

// addLeaf registers one scalar leaf and stores its initial value.
func (m *Message) addLeaf(t *Type, tag string) int {
	idx := len(m.leaves)
	m.leaves = append(m.leaves, leafSlot{typ: t, tag: tag})
	m.dirty = append(m.dirty, false)
	switch t.Kind {
	case Int:
		m.store = append(m.store, len(m.ints))
		m.ints = append(m.ints, 0)
	case Double:
		m.store = append(m.store, len(m.doubles))
		m.doubles = append(m.doubles, 0)
	case String:
		m.store = append(m.store, len(m.strs))
		m.strs = append(m.strs, "")
	case Bool:
		m.store = append(m.store, len(m.bools))
		m.bools = append(m.bools, false)
	default:
		panic("wire: addLeaf of non-scalar")
	}
	return idx
}

// addLeavesForValue registers the leaves of one value of type t, with tag
// as the innermost enclosing element name.
func (m *Message) addLeavesForValue(t *Type, tag string) {
	switch t.Kind {
	case Struct:
		for _, f := range t.Fields {
			m.addLeavesForValue(f.Type, f.Name)
		}
	default:
		m.addLeaf(t, tag)
	}
}

// AddInt appends an int parameter and returns its accessor.
func (m *Message) AddInt(name string, v int32) IntRef {
	m.bumpStructure()
	first := len(m.leaves)
	m.params = append(m.params, Param{Name: name, Type: TInt, Count: 1, First: first})
	m.addLeaf(TInt, name)
	m.ints[m.store[first]] = v
	return IntRef{scalarRef{m: m, p: len(m.params) - 1}}
}

// AddDouble appends a double parameter and returns its accessor.
func (m *Message) AddDouble(name string, v float64) DoubleRef {
	m.bumpStructure()
	first := len(m.leaves)
	m.params = append(m.params, Param{Name: name, Type: TDouble, Count: 1, First: first})
	m.addLeaf(TDouble, name)
	m.doubles[m.store[first]] = v
	return DoubleRef{scalarRef{m: m, p: len(m.params) - 1}}
}

// AddString appends a string parameter and returns its accessor.
func (m *Message) AddString(name string, v string) StringRef {
	m.bumpStructure()
	first := len(m.leaves)
	m.params = append(m.params, Param{Name: name, Type: TString, Count: 1, First: first})
	m.addLeaf(TString, name)
	m.strs[m.store[first]] = v
	return StringRef{scalarRef{m: m, p: len(m.params) - 1}}
}

// AddBool appends a boolean parameter and returns its accessor.
func (m *Message) AddBool(name string, v bool) BoolRef {
	m.bumpStructure()
	first := len(m.leaves)
	m.params = append(m.params, Param{Name: name, Type: TBool, Count: 1, First: first})
	m.addLeaf(TBool, name)
	m.bools[m.store[first]] = v
	return BoolRef{scalarRef{m: m, p: len(m.params) - 1}}
}

// AddStruct appends a struct parameter and returns its accessor.
func (m *Message) AddStruct(name string, t *Type) StructRef {
	if t.Kind != Struct {
		panic("wire: AddStruct with non-struct type " + t.Name)
	}
	m.bumpStructure()
	first := len(m.leaves)
	m.params = append(m.params, Param{Name: name, Type: t, Count: 1, First: first})
	m.addLeavesForValue(t, name)
	return StructRef{m: m, p: len(m.params) - 1}
}

// AddIntArray appends an int-array parameter of n elements.
func (m *Message) AddIntArray(name string, n int) IntArrayRef {
	p := m.addArray(name, TInt, n)
	return IntArrayRef{arrayRef{m: m, p: p}}
}

// AddDoubleArray appends a double-array parameter of n elements.
func (m *Message) AddDoubleArray(name string, n int) DoubleArrayRef {
	p := m.addArray(name, TDouble, n)
	return DoubleArrayRef{arrayRef{m: m, p: p}}
}

// AddStringArray appends a string-array parameter of n elements.
func (m *Message) AddStringArray(name string, n int) StringArrayRef {
	p := m.addArray(name, TString, n)
	return StringArrayRef{arrayRef{m: m, p: p}}
}

// AddStructArray appends an array of struct elements (e.g. MIOs).
func (m *Message) AddStructArray(name string, elem *Type, n int) StructArrayRef {
	if elem.Kind != Struct {
		panic("wire: AddStructArray with non-struct element " + elem.Name)
	}
	p := m.addArray(name, elem, n)
	return StructArrayRef{arrayRef{m: m, p: p}}
}

func (m *Message) addArray(name string, elem *Type, n int) int {
	if n < 0 {
		panic("wire: negative array length")
	}
	m.bumpStructure()
	first := len(m.leaves)
	m.params = append(m.params, Param{Name: name, Type: ArrayOf(elem), Count: n, First: first})
	for i := 0; i < n; i++ {
		m.addLeavesForValue(elem, "item")
	}
	return len(m.params) - 1
}

// ResizeArray changes the element count of the array parameter at index
// pi. It is a structural change: leaf indexes are rebuilt and all dirty
// state cleared (the next send is necessarily a full serialization).
func (m *Message) ResizeArray(pi, n int) {
	if pi < 0 || pi >= len(m.params) || m.params[pi].Type.Kind != Array {
		panic("wire: ResizeArray of non-array parameter")
	}
	if n < 0 {
		panic("wire: negative array length")
	}
	old := m.params
	type saved struct {
		p     Param
		ints  []int32
		dbls  []float64
		strs  []string
		bools []bool
	}
	snap := make([]saved, len(old))
	for i, p := range old {
		s := saved{p: p}
		count := p.Count
		if i == pi {
			count = min(p.Count, n)
		}
		nLeaves := p.Type.LeavesPerValue() * count
		for l := p.First; l < p.First+nLeaves; l++ {
			switch m.leaves[l].typ.Kind {
			case Int:
				s.ints = append(s.ints, m.ints[m.store[l]])
			case Double:
				s.dbls = append(s.dbls, m.doubles[m.store[l]])
			case String:
				s.strs = append(s.strs, m.strs[m.store[l]])
			case Bool:
				s.bools = append(s.bools, m.bools[m.store[l]])
			}
		}
		snap[i] = s
	}

	// Rebuild from scratch, replaying parameters with preserved values.
	m.params = nil
	m.ints, m.doubles, m.strs, m.bools = nil, nil, nil, nil
	m.leaves, m.store, m.dirty = nil, nil, nil
	for i, s := range snap {
		count := s.p.Count
		if i == pi {
			count = n
		}
		first := len(m.leaves)
		p := s.p
		p.First = first
		p.Count = count
		m.params = append(m.params, p)
		if p.Type.Kind == Array {
			for e := 0; e < count; e++ {
				m.addLeavesForValue(p.Type.Elem, "item")
			}
		} else {
			m.addLeavesForValue(p.Type, p.Name)
		}
		// Replay saved values in leaf order.
		var ii, di, si, bi int
		nLeaves := len(m.leaves) - first
		for l := first; l < first+nLeaves; l++ {
			switch m.leaves[l].typ.Kind {
			case Int:
				if ii < len(s.ints) {
					m.ints[m.store[l]] = s.ints[ii]
					ii++
				}
			case Double:
				if di < len(s.dbls) {
					m.doubles[m.store[l]] = s.dbls[di]
					di++
				}
			case String:
				if si < len(s.strs) {
					m.strs[m.store[l]] = s.strs[si]
					si++
				}
			case Bool:
				if bi < len(s.bools) {
					m.bools[m.store[l]] = s.bools[bi]
					bi++
				}
			}
		}
	}
	m.bumpStructure()
}

// leaf accessors --------------------------------------------------------

// LeafType returns the scalar type of leaf i.
func (m *Message) LeafType(i int) *Type { return m.leaves[i].typ }

// LeafTag returns the innermost element tag of leaf i.
func (m *Message) LeafTag(i int) string { return m.leaves[i].tag }

// LeafInt returns the value of int leaf i.
func (m *Message) LeafInt(i int) int32 { return m.ints[m.store[i]] }

// LeafDouble returns the value of double leaf i.
func (m *Message) LeafDouble(i int) float64 { return m.doubles[m.store[i]] }

// LeafString returns the value of string leaf i.
func (m *Message) LeafString(i int) string { return m.strs[m.store[i]] }

// LeafBool returns the value of bool leaf i.
func (m *Message) LeafBool(i int) bool { return m.bools[m.store[i]] }

// SetLeafInt sets int leaf i, marking it dirty if the value changed.
func (m *Message) SetLeafInt(i int, v int32) {
	s := m.store[i]
	if m.ints[s] != v {
		m.ints[s] = v
		m.dirty[i] = true
	}
}

// SetLeafDouble sets double leaf i, marking it dirty if the value changed.
func (m *Message) SetLeafDouble(i int, v float64) {
	s := m.store[i]
	if m.doubles[s] != v {
		m.doubles[s] = v
		m.dirty[i] = true
	}
}

// SetLeafString sets string leaf i, marking it dirty if the value changed.
func (m *Message) SetLeafString(i int, v string) {
	s := m.store[i]
	if m.strs[s] != v {
		m.strs[s] = v
		m.dirty[i] = true
	}
}

// SetLeafBool sets bool leaf i, marking it dirty if the value changed.
func (m *Message) SetLeafBool(i int, v bool) {
	s := m.store[i]
	if m.bools[s] != v {
		m.bools[s] = v
		m.dirty[i] = true
	}
}

// TouchLeaf forcibly marks leaf i dirty without changing its value. The
// benchmark harness uses it to control re-serialization percentages
// exactly as the paper does (values re-serialized but unchanged in size).
func (m *Message) TouchLeaf(i int) { m.dirty[i] = true }

// Dirty reports leaf i's dirty bit.
func (m *Message) Dirty(i int) bool { return m.dirty[i] }

// AnyDirty reports whether any leaf is dirty.
func (m *Message) AnyDirty() bool {
	for _, d := range m.dirty {
		if d {
			return true
		}
	}
	return false
}

// DirtyCount reports the number of dirty leaves.
func (m *Message) DirtyCount() int {
	n := 0
	for _, d := range m.dirty {
		if d {
			n++
		}
	}
	return n
}

// ClearDirty resets every dirty bit; the template layer calls it after a
// successful send.
func (m *Message) ClearDirty() {
	for i := range m.dirty {
		m.dirty[i] = false
	}
}

// MarkAllDirty sets every dirty bit (used after structure changes and by
// the 100%-re-serialization experiments).
func (m *Message) MarkAllDirty() {
	for i := range m.dirty {
		m.dirty[i] = true
	}
}

// Signature returns a canonical description of the message structure:
// operation, parameter names, types and array lengths. Two messages with
// equal signatures are structurally identical (the precondition for the
// paper's structural matches).
func (m *Message) Signature() string {
	if m.sigValid {
		return m.signature
	}
	var b strings.Builder
	b.WriteString(m.ns)
	b.WriteByte('#')
	b.WriteString(m.op)
	for _, p := range m.params {
		fmt.Fprintf(&b, ";%s/", p.Name)
		p.Type.Signature(&b)
		if p.Type.Kind == Array {
			fmt.Fprintf(&b, "*%d", p.Count)
		}
	}
	m.signature = b.String()
	m.sigValid = true
	return m.signature
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
