// Package wire defines the type system and in-memory message model that
// the serializers operate on. A Message is an RPC operation plus a list
// of typed parameters whose scalar leaves are stored in flat slices and
// tracked with per-leaf dirty bits — the paper's requirement that all
// serializable data live behind get/set accessors "whose implementation
// will update the DUT table transparently" (§3.1).
package wire

import (
	"fmt"
	"strings"

	"bsoap/internal/xsdlex"
)

// Kind enumerates the value categories the wire format supports.
type Kind uint8

const (
	// Invalid is the zero Kind.
	Invalid Kind = iota
	// Int is xsd:int, a 32-bit signed integer.
	Int
	// Double is xsd:double, an IEEE 754 binary64.
	Double
	// String is xsd:string.
	String
	// Bool is xsd:boolean.
	Bool
	// Struct is a compound type with named, typed fields.
	Struct
	// Array is a SOAP-ENC array of a single element type.
	Array
)

// String returns a readable kind name.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Double:
		return "double"
	case String:
		return "string"
	case Bool:
		return "boolean"
	case Struct:
		return "struct"
	case Array:
		return "array"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Scalar reports whether the kind is a leaf value.
func (k Kind) Scalar() bool {
	switch k {
	case Int, Double, String, Bool:
		return true
	}
	return false
}

// Field is one named member of a struct type.
type Field struct {
	Name string
	Type *Type
}

// Type describes a wire type. Types are immutable after construction and
// may be shared freely across messages and goroutines.
type Type struct {
	Kind   Kind
	Name   string  // XSD/schema type name, e.g. "xsd:double" or "ns1:MIO"
	Elem   *Type   // element type, for Array
	Fields []Field // members, for Struct

	leaves int // cached leaf count per value of this type
}

// Singleton scalar types.
var (
	TInt    = &Type{Kind: Int, Name: "xsd:int", leaves: 1}
	TDouble = &Type{Kind: Double, Name: "xsd:double", leaves: 1}
	TString = &Type{Kind: String, Name: "xsd:string", leaves: 1}
	TBool   = &Type{Kind: Bool, Name: "xsd:boolean", leaves: 1}
)

// StructOf builds a struct type. Fields must be scalars or structs;
// arrays inside structs are not supported (the paper's workloads never
// need them, and the restriction keeps leaf indexing affine).
func StructOf(name string, fields ...Field) *Type {
	if len(fields) == 0 {
		panic("wire: struct with no fields")
	}
	n := 0
	for _, f := range fields {
		if f.Type == nil || f.Type.Kind == Array {
			panic(fmt.Sprintf("wire: struct field %q has unsupported type", f.Name))
		}
		n += f.Type.leaves
	}
	return &Type{Kind: Struct, Name: name, Fields: fields, leaves: n}
}

// ArrayOf builds an array type. Element types must be scalars or structs.
func ArrayOf(elem *Type) *Type {
	if elem == nil || elem.Kind == Array {
		panic("wire: unsupported array element type")
	}
	return &Type{Kind: Array, Name: elem.Name + "[]", Elem: elem, leaves: elem.leaves}
}

// LeavesPerValue reports how many scalar leaves one value of this type
// occupies (for arrays: per element).
func (t *Type) LeavesPerValue() int { return t.leaves }

// MaxWidth reports the maximum serialized width of a scalar type's
// lexical form, or 0 if unbounded (strings). It panics on non-scalars.
func (t *Type) MaxWidth() int {
	switch t.Kind {
	case Int:
		return xsdlex.MaxIntWidth
	case Double:
		return xsdlex.MaxDoubleWidth
	case Bool:
		return xsdlex.MaxBoolWidth
	case String:
		return 0
	}
	panic("wire: MaxWidth of non-scalar type " + t.Name)
}

// Signature appends a canonical structural description of the type,
// used for template structural matching.
func (t *Type) Signature(b *strings.Builder) {
	switch t.Kind {
	case Array:
		b.WriteString("[]")
		t.Elem.Signature(b)
	case Struct:
		b.WriteString("{")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.Name)
			b.WriteByte(':')
			f.Type.Signature(b)
		}
		b.WriteString("}")
	default:
		b.WriteString(t.Kind.String())
	}
}
