package wire

import "fmt"

// Typed accessors ("refs") are the get/set surface the paper prescribes:
// every write flows through a Set method that maintains dirty bits. Refs
// address parameters by index, so they remain valid across ResizeArray.

// scalarRef addresses a scalar parameter by parameter index, so the ref
// stays valid when an earlier array parameter is resized.
type scalarRef struct {
	m *Message
	p int
}

func (r scalarRef) leaf() int { return r.m.params[r.p].First }

// IntRef addresses a scalar int parameter.
type IntRef struct{ scalarRef }

// Get returns the current value.
func (r IntRef) Get() int32 { return r.m.LeafInt(r.leaf()) }

// Set stores v, marking the leaf dirty if it changed.
func (r IntRef) Set(v int32) { r.m.SetLeafInt(r.leaf(), v) }

// DoubleRef addresses a scalar double parameter.
type DoubleRef struct{ scalarRef }

// Get returns the current value.
func (r DoubleRef) Get() float64 { return r.m.LeafDouble(r.leaf()) }

// Set stores v, marking the leaf dirty if it changed.
func (r DoubleRef) Set(v float64) { r.m.SetLeafDouble(r.leaf(), v) }

// StringRef addresses a scalar string parameter.
type StringRef struct{ scalarRef }

// Get returns the current value.
func (r StringRef) Get() string { return r.m.LeafString(r.leaf()) }

// Set stores v, marking the leaf dirty if it changed.
func (r StringRef) Set(v string) { r.m.SetLeafString(r.leaf(), v) }

// BoolRef addresses a scalar boolean parameter.
type BoolRef struct{ scalarRef }

// Get returns the current value.
func (r BoolRef) Get() bool { return r.m.LeafBool(r.leaf()) }

// Set stores v, marking the leaf dirty if it changed.
func (r BoolRef) Set(v bool) { r.m.SetLeafBool(r.leaf(), v) }

// StructRef addresses a struct parameter; fields are addressed by their
// leaf offset within the struct (declaration order, structs flattened).
type StructRef struct {
	m *Message
	p int
}

func (r StructRef) first() int { return r.m.params[r.p].First }

// Type returns the struct type.
func (r StructRef) Type() *Type { return r.m.params[r.p].Type }

// SetInt sets the int field at leaf offset f.
func (r StructRef) SetInt(f int, v int32) { r.m.SetLeafInt(r.first()+f, v) }

// SetDouble sets the double field at leaf offset f.
func (r StructRef) SetDouble(f int, v float64) { r.m.SetLeafDouble(r.first()+f, v) }

// SetString sets the string field at leaf offset f.
func (r StructRef) SetString(f int, v string) { r.m.SetLeafString(r.first()+f, v) }

// Int returns the int field at leaf offset f.
func (r StructRef) Int(f int) int32 { return r.m.LeafInt(r.first() + f) }

// Double returns the double field at leaf offset f.
func (r StructRef) Double(f int) float64 { return r.m.LeafDouble(r.first() + f) }

// StringField returns the string field at leaf offset f.
func (r StructRef) StringField(f int) string { return r.m.LeafString(r.first() + f) }

// arrayRef is the common core of the typed array accessors.
type arrayRef struct {
	m *Message
	p int // parameter index; survives resizes
}

func (r arrayRef) param() *Param { return &r.m.params[r.p] }

// Len reports the current element count.
func (r arrayRef) Len() int { return r.param().Count }

// leaf computes the flat leaf index of element i, offset f.
func (r arrayRef) leaf(i, f int) int {
	p := r.param()
	if i < 0 || i >= p.Count {
		panic(fmt.Sprintf("wire: array index %d out of range [0,%d)", i, p.Count))
	}
	return p.First + i*p.Type.LeavesPerValue() + f
}

// Resize changes the element count (a structural change; see
// Message.ResizeArray).
func (r arrayRef) Resize(n int) { r.m.ResizeArray(r.p, n) }

// IntArrayRef addresses an int-array parameter.
type IntArrayRef struct{ arrayRef }

// Get returns element i.
func (r IntArrayRef) Get(i int) int32 { return r.m.LeafInt(r.leaf(i, 0)) }

// Set stores element i, marking it dirty if changed.
func (r IntArrayRef) Set(i int, v int32) { r.m.SetLeafInt(r.leaf(i, 0), v) }

// Fill sets every element from vals (lengths must match).
func (r IntArrayRef) Fill(vals []int32) {
	if len(vals) != r.Len() {
		panic("wire: Fill length mismatch")
	}
	for i, v := range vals {
		r.Set(i, v)
	}
}

// DoubleArrayRef addresses a double-array parameter.
type DoubleArrayRef struct{ arrayRef }

// Get returns element i.
func (r DoubleArrayRef) Get(i int) float64 { return r.m.LeafDouble(r.leaf(i, 0)) }

// Set stores element i, marking it dirty if changed.
func (r DoubleArrayRef) Set(i int, v float64) { r.m.SetLeafDouble(r.leaf(i, 0), v) }

// Fill sets every element from vals (lengths must match).
func (r DoubleArrayRef) Fill(vals []float64) {
	if len(vals) != r.Len() {
		panic("wire: Fill length mismatch")
	}
	for i, v := range vals {
		r.Set(i, v)
	}
}

// StringArrayRef addresses a string-array parameter.
type StringArrayRef struct{ arrayRef }

// Get returns element i.
func (r StringArrayRef) Get(i int) string { return r.m.LeafString(r.leaf(i, 0)) }

// Set stores element i, marking it dirty if changed.
func (r StringArrayRef) Set(i int, v string) { r.m.SetLeafString(r.leaf(i, 0), v) }

// StructArrayRef addresses an array of structs (e.g. the paper's MIOs).
// Field offsets count scalar leaves in declaration order.
type StructArrayRef struct{ arrayRef }

// ElemType returns the element struct type.
func (r StructArrayRef) ElemType() *Type { return r.param().Type.Elem }

// SetInt sets the int field at leaf offset f of element i.
func (r StructArrayRef) SetInt(i, f int, v int32) { r.m.SetLeafInt(r.leaf(i, f), v) }

// SetDouble sets the double field at leaf offset f of element i.
func (r StructArrayRef) SetDouble(i, f int, v float64) { r.m.SetLeafDouble(r.leaf(i, f), v) }

// SetString sets the string field at leaf offset f of element i.
func (r StructArrayRef) SetString(i, f int, v string) { r.m.SetLeafString(r.leaf(i, f), v) }

// Int returns the int field at leaf offset f of element i.
func (r StructArrayRef) Int(i, f int) int32 { return r.m.LeafInt(r.leaf(i, f)) }

// Double returns the double field at leaf offset f of element i.
func (r StructArrayRef) Double(i, f int) float64 { return r.m.LeafDouble(r.leaf(i, f)) }

// StringField returns the string field at leaf offset f of element i.
func (r StructArrayRef) StringField(i, f int) string { return r.m.LeafString(r.leaf(i, f)) }

// LeafIndex exposes the flat leaf index of (element, field); the
// benchmark harness uses it with TouchLeaf to dirty exact fractions.
func (r StructArrayRef) LeafIndex(i, f int) int { return r.leaf(i, f) }

// LeafIndex exposes the flat leaf index of element i.
func (r DoubleArrayRef) LeafIndex(i int) int { return r.leaf(i, 0) }

// LeafIndex exposes the flat leaf index of element i.
func (r IntArrayRef) LeafIndex(i int) int { return r.leaf(i, 0) }
