package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Differential transmission: the binary patch-frame format a delta-
// capable client sends instead of a full SOAP body when both ends hold
// the same template bytes.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "bSΔ1" (0x62 0x73 0xCE 0x94 — see deltaMagic)
//	4       8     template id (client-assigned, unique per template)
//	12      8     base epoch (content version the patch applies to)
//	20      8     new epoch (content version after the patch)
//	28      4     body length (full reconstructed body, bytes)
//	32      4     CRC32-C of the full reconstructed body
//	36      4     region count
//	40      —     regions: per region an 8-byte header (offset u32,
//	              length u32) followed by the region's bytes
//
// Regions must be strictly increasing, non-overlapping, non-empty and
// in-bounds; a zero-region frame asserts "the body equals the base"
// (the content-match case) and still carries the CRC for verification.
// The CRC, not the epoch pair, is the correctness authority: the epoch
// is a fast filter for skew, the checksum proves the reconstruction.

// DeltaHeaderLen is the fixed frame header size in bytes.
const DeltaHeaderLen = 40

// DeltaRegionHeaderLen is the per-region header size in bytes.
const DeltaRegionHeaderLen = 8

// deltaMagic guards against a delta frame being parsed out of anything
// that is not one (e.g. a stray XML body routed to the patch path).
var deltaMagic = [4]byte{0x62, 0x73, 0xCE, 0x94}

// MaxDeltaRegions bounds the region count a parser will accept; a frame
// claiming more is rejected before any region work. Real frames carry
// one region per coalesced dirty run, far below this.
const MaxDeltaRegions = 1 << 16

// MaxDeltaBodyLen bounds the reconstructed body size a parser will
// accept (matches the transport's request body cap).
const MaxDeltaBodyLen = 1 << 26

// ErrDeltaResync signals that a delta patch could not be applied (epoch
// skew, checksum mismatch, evicted base, malformed frame) and the
// sender must fall back to a full-body send and re-synchronize. It is
// a protocol-level outcome, not a connection failure: the connection
// stays usable and the template is not suspect.
var ErrDeltaResync = errors.New("wire: delta resync required")

// deltaCRC is the Castagnoli table; CRC32-C has hardware support on
// both amd64 and arm64, so checksumming a body costs well under the
// serialization it replaces.
var deltaCRC = crc32.MakeTable(crc32.Castagnoli)

// DeltaCRC returns the CRC32-C checksum of a full body.
func DeltaCRC(body []byte) uint32 { return crc32.Checksum(body, deltaCRC) }

// DeltaCRCUpdate folds more bytes into a running CRC32-C, so a chunked
// body can be checksummed without concatenation.
func DeltaCRCUpdate(crc uint32, p []byte) uint32 { return crc32.Update(crc, deltaCRC, p) }

// AppendDeltaHeader appends the 40-byte frame header to dst and returns
// the extended slice. The caller supplies the final region count and
// the CRC of the full reconstructed body.
func AppendDeltaHeader(dst []byte, tid, baseEpoch, newEpoch uint64, bodyLen int, bodyCRC uint32, regions int) []byte {
	dst = append(dst, deltaMagic[:]...)
	dst = binary.LittleEndian.AppendUint64(dst, tid)
	dst = binary.LittleEndian.AppendUint64(dst, baseEpoch)
	dst = binary.LittleEndian.AppendUint64(dst, newEpoch)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bodyLen))
	dst = binary.LittleEndian.AppendUint32(dst, bodyCRC)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(regions))
	return dst
}

// AppendDeltaRegionHeader appends one 8-byte region header; the
// region's bytes follow it on the wire (the encoder gathers them
// separately, so template bytes are never copied into the frame).
func AppendDeltaRegionHeader(dst []byte, off, length int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(off))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(length))
	return dst
}

// DeltaRegion is one contiguous dirty run of the body.
type DeltaRegion struct {
	Off   int
	Bytes []byte // aliases the frame buffer after parsing
}

// DeltaFrame is a parsed patch frame. Region byte slices alias the
// input buffer; the frame is valid only as long as that buffer is.
type DeltaFrame struct {
	TID       uint64
	BaseEpoch uint64
	NewEpoch  uint64
	BodyLen   int
	BodyCRC   uint32
	Regions   []DeltaRegion
}

// ParseDeltaFrame parses and strictly validates a patch frame into f,
// reusing f.Regions' capacity. Every structural violation — bad magic,
// short frame, region count/body length over the caps, regions out of
// order, overlapping, empty, out of bounds, or trailing garbage —
// returns an error wrapping ErrDeltaResync so the server's failure
// path is uniform.
func ParseDeltaFrame(f *DeltaFrame, b []byte) error {
	*f = DeltaFrame{Regions: f.Regions[:0]}
	if len(b) < DeltaHeaderLen {
		return fmt.Errorf("wire: delta frame short header (%d bytes): %w", len(b), ErrDeltaResync)
	}
	if [4]byte(b[0:4]) != deltaMagic {
		return fmt.Errorf("wire: delta frame bad magic: %w", ErrDeltaResync)
	}
	f.TID = binary.LittleEndian.Uint64(b[4:12])
	f.BaseEpoch = binary.LittleEndian.Uint64(b[12:20])
	f.NewEpoch = binary.LittleEndian.Uint64(b[20:28])
	bodyLen := binary.LittleEndian.Uint32(b[28:32])
	f.BodyCRC = binary.LittleEndian.Uint32(b[32:36])
	regions := binary.LittleEndian.Uint32(b[36:40])
	if bodyLen > MaxDeltaBodyLen {
		return fmt.Errorf("wire: delta frame body length %d over cap: %w", bodyLen, ErrDeltaResync)
	}
	if regions > MaxDeltaRegions {
		return fmt.Errorf("wire: delta frame region count %d over cap: %w", regions, ErrDeltaResync)
	}
	f.BodyLen = int(bodyLen)
	p := b[DeltaHeaderLen:]
	prevEnd := 0
	for i := uint32(0); i < regions; i++ {
		if len(p) < DeltaRegionHeaderLen {
			return fmt.Errorf("wire: delta frame short region header: %w", ErrDeltaResync)
		}
		off := int(binary.LittleEndian.Uint32(p[0:4]))
		n := int(binary.LittleEndian.Uint32(p[4:8]))
		p = p[DeltaRegionHeaderLen:]
		if n == 0 {
			return fmt.Errorf("wire: delta frame empty region: %w", ErrDeltaResync)
		}
		if off < prevEnd {
			return fmt.Errorf("wire: delta frame region out of order at %d: %w", off, ErrDeltaResync)
		}
		if n > f.BodyLen || off > f.BodyLen-n {
			return fmt.Errorf("wire: delta frame region [%d,%d) out of bounds: %w", off, off+n, ErrDeltaResync)
		}
		if len(p) < n {
			return fmt.Errorf("wire: delta frame short region bytes: %w", ErrDeltaResync)
		}
		f.Regions = append(f.Regions, DeltaRegion{Off: off, Bytes: p[:n:n]})
		p = p[n:]
		prevEnd = off + n
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: delta frame %d trailing bytes: %w", len(p), ErrDeltaResync)
	}
	return nil
}

// Apply patches the frame's regions into base in place and verifies the
// result against the frame's CRC. The base must already be exactly
// BodyLen bytes (delta frames never resize the body — a size change is
// structurally ineligible on the encoder side). On any failure base
// must be treated as corrupt and dropped; Apply makes no attempt to
// roll back partially applied regions.
func (f *DeltaFrame) Apply(base []byte) error {
	if len(base) != f.BodyLen {
		return fmt.Errorf("wire: delta base is %d bytes, frame wants %d: %w", len(base), f.BodyLen, ErrDeltaResync)
	}
	for i := range f.Regions {
		r := &f.Regions[i]
		copy(base[r.Off:], r.Bytes)
	}
	if crc := DeltaCRC(base); crc != f.BodyCRC {
		return fmt.Errorf("wire: delta body checksum %08x != frame %08x: %w", crc, f.BodyCRC, ErrDeltaResync)
	}
	return nil
}

// ---- X-BSoap-Delta header values ----
//
// The negotiation rides a single request/response header:
//
//	request  "sync=<tid>.<epoch>"  full body; server may store it as the
//	                               delta base for <tid> at <epoch>
//	request  "patch"               body is a patch frame, not XML
//	response "ack=<tid>.<epoch>"   server stored the base; the client
//	                               may patch this template from now on
//	response "resync"              (with status 409) patch rejected;
//	                               client clears sync state and resends
//	                               the full body
//
// tid and epoch are lowercase hex with no 0x prefix.

// DeltaHeader is the canonical header name; the transport's parser
// lower-cases incoming header keys, so lookups use DeltaHeaderKey.
const (
	DeltaHeader    = "X-BSoap-Delta"
	DeltaHeaderKey = "x-bsoap-delta"

	DeltaValPatch  = "patch"
	DeltaValResync = "resync"

	deltaSyncPrefix = "sync="
	deltaAckPrefix  = "ack="
)

// AppendDeltaSync appends a "sync=<tid>.<epoch>" header value to dst.
func AppendDeltaSync(dst []byte, tid, epoch uint64) []byte {
	dst = append(dst, deltaSyncPrefix...)
	return appendTidEpoch(dst, tid, epoch)
}

// AppendDeltaAck appends an "ack=<tid>.<epoch>" header value to dst.
func AppendDeltaAck(dst []byte, tid, epoch uint64) []byte {
	dst = append(dst, deltaAckPrefix...)
	return appendTidEpoch(dst, tid, epoch)
}

func appendTidEpoch(dst []byte, tid, epoch uint64) []byte {
	dst = appendHex(dst, tid)
	dst = append(dst, '.')
	return appendHex(dst, epoch)
}

const hexDigits = "0123456789abcdef"

// appendHex appends v as minimal lowercase hex (no 0x, "0" for zero).
func appendHex(dst []byte, v uint64) []byte {
	var buf [16]byte
	i := len(buf)
	for {
		i--
		buf[i] = hexDigits[v&0xf]
		v >>= 4
		if v == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}

// ParseDeltaSync parses a "sync=<tid>.<epoch>" header value.
func ParseDeltaSync(v string) (tid, epoch uint64, ok bool) {
	return parseTidEpoch(v, deltaSyncPrefix)
}

// ParseDeltaAck parses an "ack=<tid>.<epoch>" header value.
func ParseDeltaAck(v string) (tid, epoch uint64, ok bool) {
	return parseTidEpoch(v, deltaAckPrefix)
}

func parseTidEpoch(v, prefix string) (tid, epoch uint64, ok bool) {
	if len(v) <= len(prefix) || v[:len(prefix)] != prefix {
		return 0, 0, false
	}
	v = v[len(prefix):]
	dot := -1
	for i := 0; i < len(v); i++ {
		if v[i] == '.' {
			dot = i
			break
		}
	}
	if dot < 0 {
		return 0, 0, false
	}
	tid, ok = parseHexU64(v[:dot])
	if !ok {
		return 0, 0, false
	}
	epoch, ok = parseHexU64(v[dot+1:])
	if !ok {
		return 0, 0, false
	}
	return tid, epoch, true
}

// parseHexU64 parses 1..16 lowercase-or-uppercase hex digits.
func parseHexU64(s string) (uint64, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			return 0, false
		}
	}
	return v, true
}
