// Package lsa is a miniature Linear System Analyzer (paper §3.4): a
// problem-solving environment for Ax = b in which scientists connect
// interchangeable solver components in a cycle, repeatedly refining the
// solution vector until convergence. Each refinement produces a vector
// of the same size and form as the last — exactly the repeated
// perfect-structural-match traffic bSOAP accelerates.
package lsa

import (
	"errors"
	"fmt"
	"math"
)

// System is a dense linear system Ax = b.
type System struct {
	A [][]float64
	B []float64
}

// N returns the system dimension.
func (s *System) N() int { return len(s.B) }

// Validate checks the system is square and consistent.
func (s *System) Validate() error {
	n := len(s.B)
	if len(s.A) != n {
		return fmt.Errorf("lsa: A has %d rows for %d unknowns", len(s.A), n)
	}
	for i, row := range s.A {
		if len(row) != n {
			return fmt.Errorf("lsa: row %d has %d columns, want %d", i, len(row), n)
		}
		if row[i] == 0 {
			return fmt.Errorf("lsa: zero diagonal at row %d", i)
		}
	}
	return nil
}

// NewDiagonallyDominant builds a random diagonally dominant system of
// dimension n — guaranteed convergent for both included solvers. The
// generator is deterministic in seed.
func NewDiagonallyDominant(n int, seed uint64) *System {
	if n <= 0 {
		panic("lsa: non-positive dimension")
	}
	rng := seed | 1
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%2000)/1000 - 1 // [-1, 1)
	}
	s := &System{A: make([][]float64, n), B: make([]float64, n)}
	for i := 0; i < n; i++ {
		s.A[i] = make([]float64, n)
		sum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := next()
			s.A[i][j] = v
			sum += math.Abs(v)
		}
		s.A[i][i] = sum + 1 + math.Abs(next()) // strict dominance
		s.B[i] = next() * float64(n)
	}
	return s
}

// Solver is one interchangeable linear-solver component.
type Solver interface {
	// Name identifies the component.
	Name() string
	// Step computes the next iterate from x into next (both length n).
	Step(s *System, x, next []float64)
}

// Jacobi is the Jacobi iteration component.
type Jacobi struct{}

// Name implements Solver.
func (Jacobi) Name() string { return "jacobi" }

// Step implements Solver.
func (Jacobi) Step(s *System, x, next []float64) {
	n := s.N()
	for i := 0; i < n; i++ {
		sum := s.B[i]
		row := s.A[i]
		for j := 0; j < n; j++ {
			if j != i {
				sum -= row[j] * x[j]
			}
		}
		next[i] = sum / row[i]
	}
}

// GaussSeidel is the Gauss–Seidel iteration component, typically
// converging in fewer iterations than Jacobi.
type GaussSeidel struct{}

// Name implements Solver.
func (GaussSeidel) Name() string { return "gauss-seidel" }

// Step implements Solver.
func (GaussSeidel) Step(s *System, x, next []float64) {
	n := s.N()
	copy(next, x)
	for i := 0; i < n; i++ {
		sum := s.B[i]
		row := s.A[i]
		for j := 0; j < n; j++ {
			if j != i {
				sum -= row[j] * next[j]
			}
		}
		next[i] = sum / row[i]
	}
}

// Residual returns the infinity norm of b − Ax.
func Residual(s *System, x []float64) float64 {
	worst := 0.0
	for i := 0; i < s.N(); i++ {
		r := s.B[i]
		for j, a := range s.A[i] {
			r -= a * x[j]
		}
		if v := math.Abs(r); v > worst {
			worst = v
		}
	}
	return worst
}

// ErrNoConvergence reports that maxIter iterations did not reach the
// tolerance.
var ErrNoConvergence = errors.New("lsa: no convergence within iteration budget")

// Solve iterates the solver component until the residual's infinity
// norm falls below tol or maxIter iterations elapse. After every
// iteration onIteration (if non-nil) observes the current iterate —
// this is where the example streams the vector over bSOAP. An error
// from the callback aborts the solve.
func Solve(s *System, solver Solver, tol float64, maxIter int,
	onIteration func(iter int, x []float64, residual float64) error) ([]float64, int, error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	n := s.N()
	x := make([]float64, n)
	next := make([]float64, n)
	for iter := 1; iter <= maxIter; iter++ {
		solver.Step(s, x, next)
		x, next = next, x
		res := Residual(s, x)
		if onIteration != nil {
			if err := onIteration(iter, x, res); err != nil {
				return x, iter, fmt.Errorf("lsa: iteration callback: %w", err)
			}
		}
		if res < tol {
			return x, iter, nil
		}
	}
	return x, maxIter, ErrNoConvergence
}
