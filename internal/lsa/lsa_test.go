package lsa

import (
	"errors"
	"math"
	"testing"
)

func TestJacobiConverges(t *testing.T) {
	s := NewDiagonallyDominant(50, 7)
	x, iters, err := Solve(s, Jacobi{}, 1e-9, 1000, nil)
	if err != nil {
		t.Fatalf("Jacobi: %v after %d iters", err, iters)
	}
	if r := Residual(s, x); r >= 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestGaussSeidelConvergesFaster(t *testing.T) {
	s := NewDiagonallyDominant(50, 7)
	_, jIters, err := Solve(s, Jacobi{}, 1e-9, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, gsIters, err := Solve(s, GaussSeidel{}, 1e-9, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gsIters > jIters {
		t.Fatalf("Gauss-Seidel took %d iters, Jacobi %d", gsIters, jIters)
	}
	if r := Residual(s, x); r >= 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestSolversAgree(t *testing.T) {
	s := NewDiagonallyDominant(30, 42)
	xj, _, err := Solve(s, Jacobi{}, 1e-12, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	xg, _, err := Solve(s, GaussSeidel{}, 1e-12, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xj {
		if math.Abs(xj[i]-xg[i]) > 1e-8 {
			t.Fatalf("solutions diverge at %d: %g vs %g", i, xj[i], xg[i])
		}
	}
}

func TestResidualDecreasesMonotonically(t *testing.T) {
	s := NewDiagonallyDominant(40, 3)
	last := math.Inf(1)
	_, _, err := Solve(s, GaussSeidel{}, 1e-10, 1000, func(iter int, x []float64, res float64) error {
		if res > last*1.01 { // allow tiny numeric wobble
			t.Fatalf("iter %d: residual rose %g -> %g", iter, last, res)
		}
		last = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCallbackSeesEveryIteration(t *testing.T) {
	s := NewDiagonallyDominant(10, 1)
	var seen int
	_, iters, err := Solve(s, Jacobi{}, 1e-8, 500, func(iter int, x []float64, res float64) error {
		seen++
		if iter != seen {
			t.Fatalf("iteration numbering: got %d want %d", iter, seen)
		}
		if len(x) != 10 {
			t.Fatalf("vector length %d", len(x))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != iters {
		t.Fatalf("callback saw %d of %d iterations", seen, iters)
	}
}

func TestCallbackErrorAborts(t *testing.T) {
	s := NewDiagonallyDominant(10, 1)
	boom := errors.New("boom")
	_, iters, err := Solve(s, Jacobi{}, 1e-8, 500, func(iter int, x []float64, res float64) error {
		if iter == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || iters != 3 {
		t.Fatalf("err=%v iters=%d", err, iters)
	}
}

func TestNoConvergenceBudget(t *testing.T) {
	s := NewDiagonallyDominant(30, 9)
	_, iters, err := Solve(s, Jacobi{}, 0, 5, nil) // tol 0 is unreachable
	if !errors.Is(err, ErrNoConvergence) || iters != 5 {
		t.Fatalf("err=%v iters=%d", err, iters)
	}
}

func TestValidateRejectsBadSystems(t *testing.T) {
	bad := []*System{
		{A: [][]float64{{1}}, B: []float64{1, 2}},            // non-square
		{A: [][]float64{{1, 2}}, B: []float64{1}},            // ragged row
		{A: [][]float64{{0, 1}, {1, 0}}, B: []float64{1, 1}}, // zero diagonal
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("system %d validated", i)
		}
	}
	if _, _, err := Solve(bad[0], Jacobi{}, 1e-6, 10, nil); err == nil {
		t.Error("Solve accepted invalid system")
	}
}

func TestDeterministicGenerator(t *testing.T) {
	a := NewDiagonallyDominant(20, 5)
	b := NewDiagonallyDominant(20, 5)
	for i := range a.B {
		if a.B[i] != b.B[i] || a.A[i][0] != b.A[i][0] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestSolverNames(t *testing.T) {
	if (Jacobi{}).Name() != "jacobi" || (GaussSeidel{}).Name() != "gauss-seidel" {
		t.Fatal("component names changed")
	}
}
