// Package workload builds the messages the paper's evaluation sends:
// arrays of integers, doubles and MIOs (mesh interface objects — the
// [int,int,double] structs exchanged by PDE solvers), with value
// generators for the exact serialized widths every experiment calls for:
//
//	double: min 1 char, intermediate 18, max 24
//	int:    min 1 char, intermediate 9, max 11
//	MIO:    min 3 chars, intermediate 36 (9+9+18), max 46 (11+11+24)
//
// and mutators that dirty controlled fractions of a message.
package workload

import (
	"math"

	"bsoap/internal/wire"
	"bsoap/internal/xsdlex"
)

// Namespace is the application namespace the experiment messages use.
const Namespace = "urn:bsoap-bench"

// MIOType returns the paper's mesh interface object type.
func MIOType() *wire.Type {
	return wire.StructOf("ns1:MIO",
		wire.Field{Name: "x", Type: wire.TInt},
		wire.Field{Name: "y", Type: wire.TInt},
		wire.Field{Name: "value", Type: wire.TDouble},
	)
}

// Width-calibrated values. Each constant's serialized length is asserted
// by the package tests.
var (
	// MinDouble encodes in 1 character.
	MinDouble = 5.0
	// MinDouble2 is a second 1-character double, used to force a dirty
	// rewrite without a width change.
	MinDouble2 = 7.0
	// IntermediateDouble encodes in exactly 18 characters.
	IntermediateDouble = 0.1234567890123456
	// IntermediateDouble2 is a second 18-character double.
	IntermediateDouble2 = 0.6543210987654321
	// MaxDouble encodes in the maximal 24 characters.
	MaxDouble = -math.MaxFloat64
	// MaxDouble2 is a second 24-character double.
	MaxDouble2 = -1.5976931348623157e+308

	// MinInt encodes in 1 character.
	MinInt int32 = 3
	// IntermediateInt encodes in 9 characters.
	IntermediateInt int32 = 123456789
	// MaxInt encodes in the maximal 11 characters.
	MaxInt int32 = math.MinInt32
)

// Fill selects the value-width regime a workload starts in.
type Fill int

const (
	// FillTypical uses deterministic pseudo-random values of mixed width.
	FillTypical Fill = iota
	// FillMin uses minimal-width values (1-char doubles/ints).
	FillMin
	// FillIntermediate uses the paper's intermediate widths.
	FillIntermediate
	// FillMax uses maximal-width values.
	FillMax
)

// typicalDouble returns a deterministic value of moderate width for
// index i (an xorshift of the index mapped into [0,1)).
func typicalDouble(i int) float64 {
	x := uint64(i)*2654435761 + 1
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return float64(x%1e9) / 1e9
}

func fillDouble(f Fill, i int) float64 {
	switch f {
	case FillMin:
		return MinDouble
	case FillIntermediate:
		return IntermediateDouble
	case FillMax:
		return MaxDouble
	}
	return typicalDouble(i)
}

func fillInt(f Fill, i int) int32 {
	switch f {
	case FillMin:
		return MinInt
	case FillIntermediate:
		return IntermediateInt
	case FillMax:
		return MaxInt
	}
	return int32(i%100000 - 50000)
}

// Doubles is a message carrying one double array.
type Doubles struct {
	Msg *wire.Message
	Arr wire.DoubleArrayRef
	n   int
}

// NewDoubles builds an n-element double-array message.
func NewDoubles(n int, f Fill) *Doubles {
	m := wire.NewMessage(Namespace, "sendDoubles")
	arr := m.AddDoubleArray("values", n)
	for i := 0; i < n; i++ {
		arr.Set(i, fillDouble(f, i))
	}
	m.ClearDirty()
	return &Doubles{Msg: m, Arr: arr, n: n}
}

// TouchFraction marks the first frac of elements dirty without changing
// their serialized width (alternating between two same-width values).
func (d *Doubles) TouchFraction(frac float64) {
	k := count(d.n, frac)
	for i := 0; i < k; i++ {
		d.Arr.Set(i, flipDouble(d.Arr.Get(i)))
	}
}

// GrowFraction sets the first frac of elements to v (typically a wider
// value, forcing shifts).
func (d *Doubles) GrowFraction(frac float64, v float64) {
	k := count(d.n, frac)
	for i := 0; i < k; i++ {
		d.Arr.Set(i, v)
	}
}

// SetAll overwrites every element with v.
func (d *Doubles) SetAll(v float64) {
	for i := 0; i < d.n; i++ {
		d.Arr.Set(i, v)
	}
}

// Ints is a message carrying one int array.
type Ints struct {
	Msg *wire.Message
	Arr wire.IntArrayRef
	n   int
}

// NewInts builds an n-element int-array message.
func NewInts(n int, f Fill) *Ints {
	m := wire.NewMessage(Namespace, "sendInts")
	arr := m.AddIntArray("values", n)
	for i := 0; i < n; i++ {
		arr.Set(i, fillInt(f, i))
	}
	m.ClearDirty()
	return &Ints{Msg: m, Arr: arr, n: n}
}

// TouchFraction dirties the first frac of elements width-neutrally.
func (t *Ints) TouchFraction(frac float64) {
	k := count(t.n, frac)
	for i := 0; i < k; i++ {
		v := t.Arr.Get(i)
		if v == MinInt {
			t.Arr.Set(i, MinInt+1)
		} else {
			t.Arr.Set(i, flipIntSameWidth(v))
		}
	}
}

// MIOs is a message carrying one MIO array.
type MIOs struct {
	Msg *wire.Message
	Arr wire.StructArrayRef
	n   int
}

// NewMIOs builds an n-element MIO-array message.
func NewMIOs(n int, f Fill) *MIOs {
	m := wire.NewMessage(Namespace, "sendMIOs")
	arr := m.AddStructArray("mios", MIOType(), n)
	for i := 0; i < n; i++ {
		arr.SetInt(i, 0, fillInt(f, i))
		arr.SetInt(i, 1, fillInt(f, i+1))
		arr.SetDouble(i, 2, fillDouble(f, i))
	}
	m.ClearDirty()
	return &MIOs{Msg: m, Arr: arr, n: n}
}

// TouchDoublesFraction dirties the double field of the first frac of
// MIOs width-neutrally; the ints stay untouched, exactly Figure 4's
// setup ("the remaining portion stays the same, as do MIO integers").
func (w *MIOs) TouchDoublesFraction(frac float64) {
	k := count(w.n, frac)
	for i := 0; i < k; i++ {
		w.Arr.SetDouble(i, 2, flipDouble(w.Arr.Double(i, 2)))
	}
}

// GrowFraction sets every field of the first frac of MIOs to the given
// values (used to expand intermediate MIOs to maximal ones).
func (w *MIOs) GrowFraction(frac float64, xi, yi int32, v float64) {
	k := count(w.n, frac)
	for i := 0; i < k; i++ {
		w.Arr.SetInt(i, 0, xi)
		w.Arr.SetInt(i, 1, yi)
		w.Arr.SetDouble(i, 2, v)
	}
}

// SetAll overwrites every MIO with the given field values.
func (w *MIOs) SetAll(xi, yi int32, v float64) {
	for i := 0; i < w.n; i++ {
		w.Arr.SetInt(i, 0, xi)
		w.Arr.SetInt(i, 1, yi)
		w.Arr.SetDouble(i, 2, v)
	}
}

// count converts a fraction into an element count (round to nearest,
// minimum 1 for any positive fraction on non-empty arrays).
func count(n int, frac float64) int {
	if frac <= 0 || n == 0 {
		return 0
	}
	k := int(float64(n)*frac + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// flipDouble returns a different double with the same serialized width.
func flipDouble(v float64) float64 {
	var alt float64
	switch v {
	case MinDouble:
		return MinDouble2
	case MinDouble2:
		return MinDouble
	case IntermediateDouble:
		return IntermediateDouble2
	case IntermediateDouble2:
		return IntermediateDouble
	case MaxDouble:
		return MaxDouble2
	case MaxDouble2:
		return MaxDouble
	default:
		// Typical values: nudge the mantissa; widths may vary by a
		// character, which exact-width templates absorb as a tag shift —
		// representative of real updates.
		alt = v * (1 + 1e-9)
		if alt == v {
			alt = v + 1
		}
		return alt
	}
}

// flipIntSameWidth returns a different int with the same decimal width.
func flipIntSameWidth(v int32) int32 {
	w := xsdlex.IntLen(v)
	var alt int32
	if v == math.MaxInt32 || v == math.MinInt32 {
		alt = v - 1 // MinInt32-1 would overflow; handled below
		if v == math.MinInt32 {
			alt = v + 1
		}
	} else {
		alt = v + 1
	}
	if xsdlex.IntLen(alt) != w {
		alt = v - 1
		if xsdlex.IntLen(alt) != w {
			return v // give up; stays clean
		}
	}
	return alt
}
