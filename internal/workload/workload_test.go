package workload

import (
	"testing"

	"bsoap/internal/xsdlex"
)

func TestCalibratedDoubleWidths(t *testing.T) {
	cases := map[float64]int{
		MinDouble:           1,
		MinDouble2:          1,
		IntermediateDouble:  18,
		IntermediateDouble2: 18,
		MaxDouble:           24,
		MaxDouble2:          24,
	}
	for v, want := range cases {
		if got := xsdlex.DoubleLen(v); got != want {
			t.Errorf("double %g encodes in %d chars, want %d (%s)",
				v, got, want, xsdlex.AppendDouble(nil, v))
		}
	}
}

func TestCalibratedIntWidths(t *testing.T) {
	cases := map[int32]int{MinInt: 1, IntermediateInt: 9, MaxInt: 11}
	for v, want := range cases {
		if got := xsdlex.IntLen(v); got != want {
			t.Errorf("int %d encodes in %d chars, want %d", v, got, want)
		}
	}
}

func TestMIOWidthArithmetic(t *testing.T) {
	// min 3 = 1+1+1; intermediate 36 = 9+9+18; max 46 = 11+11+24.
	min := xsdlex.IntLen(MinInt)*2 + xsdlex.DoubleLen(MinDouble)
	mid := xsdlex.IntLen(IntermediateInt)*2 + xsdlex.DoubleLen(IntermediateDouble)
	max := xsdlex.IntLen(MaxInt)*2 + xsdlex.DoubleLen(MaxDouble)
	if min != 3 || mid != 36 || max != 46 {
		t.Fatalf("MIO widths = %d/%d/%d, want 3/36/46", min, mid, max)
	}
}

func TestNewDoublesClean(t *testing.T) {
	d := NewDoubles(100, FillTypical)
	if d.Msg.AnyDirty() {
		t.Fatal("fresh workload dirty")
	}
	if d.Arr.Len() != 100 {
		t.Fatalf("len = %d", d.Arr.Len())
	}
}

func TestTouchFractionCounts(t *testing.T) {
	for _, tc := range []struct {
		frac float64
		want int
	}{{0, 0}, {0.25, 25}, {0.5, 50}, {0.75, 75}, {1, 100}} {
		d := NewDoubles(100, FillMin)
		d.TouchFraction(tc.frac)
		if got := d.Msg.DirtyCount(); got != tc.want {
			t.Errorf("frac %.2f dirtied %d, want %d", tc.frac, got, tc.want)
		}
	}
}

func TestTouchFractionPreservesWidth(t *testing.T) {
	for _, f := range []Fill{FillMin, FillIntermediate, FillMax} {
		d := NewDoubles(10, f)
		before := xsdlex.DoubleLen(d.Arr.Get(0))
		d.TouchFraction(1)
		for i := 0; i < 10; i++ {
			if got := xsdlex.DoubleLen(d.Arr.Get(i)); got != before {
				t.Errorf("fill %v: width changed %d -> %d", f, before, got)
			}
		}
		if d.Msg.DirtyCount() != 10 {
			t.Errorf("fill %v: dirty = %d", f, d.Msg.DirtyCount())
		}
	}
}

func TestRepeatedTouchKeepsDirtying(t *testing.T) {
	d := NewDoubles(10, FillMin)
	for rep := 0; rep < 5; rep++ {
		d.TouchFraction(1)
		if d.Msg.DirtyCount() != 10 {
			t.Fatalf("rep %d: dirty = %d", rep, d.Msg.DirtyCount())
		}
		d.Msg.ClearDirty()
	}
}

func TestMIOTouchDoublesOnly(t *testing.T) {
	w := NewMIOs(40, FillIntermediate)
	w.TouchDoublesFraction(0.5)
	if got := w.Msg.DirtyCount(); got != 20 {
		t.Fatalf("dirty = %d, want 20 (doubles only)", got)
	}
	// Ints must remain clean.
	for i := 0; i < 20; i++ {
		if w.Msg.Dirty(w.Arr.LeafIndex(i, 0)) || w.Msg.Dirty(w.Arr.LeafIndex(i, 1)) {
			t.Fatalf("MIO %d int field dirtied", i)
		}
	}
}

func TestGrowFraction(t *testing.T) {
	d := NewDoubles(20, FillMin)
	d.GrowFraction(0.25, MaxDouble)
	if d.Msg.DirtyCount() != 5 {
		t.Fatalf("dirty = %d", d.Msg.DirtyCount())
	}
	if d.Arr.Get(0) != MaxDouble || d.Arr.Get(5) != MinDouble {
		t.Fatal("grow touched wrong elements")
	}

	w := NewMIOs(20, FillIntermediate)
	w.GrowFraction(1, MaxInt, MaxInt, MaxDouble)
	if w.Msg.DirtyCount() != 60 {
		t.Fatalf("MIO grow dirty = %d", w.Msg.DirtyCount())
	}
}

func TestIntsTouchFraction(t *testing.T) {
	w := NewInts(50, FillTypical)
	w.TouchFraction(0.5)
	if got := w.Msg.DirtyCount(); got == 0 || got > 25 {
		t.Fatalf("dirty = %d", got)
	}
	w2 := NewInts(50, FillMax)
	w2.TouchFraction(1)
	for i := 0; i < 50; i++ {
		if xsdlex.IntLen(w2.Arr.Get(i)) != 11 {
			t.Fatalf("max-width int touch changed width: %d", w2.Arr.Get(i))
		}
	}
}

func TestCountEdgeCases(t *testing.T) {
	if count(0, 0.5) != 0 {
		t.Error("empty array")
	}
	if count(100, 0) != 0 {
		t.Error("zero fraction")
	}
	if count(3, 0.01) != 1 {
		t.Error("tiny positive fraction must touch one element")
	}
	if count(100, 2.0) != 100 {
		t.Error("fraction above 1 must clamp")
	}
}

func TestTypicalDoubleDeterministic(t *testing.T) {
	a, b := NewDoubles(50, FillTypical), NewDoubles(50, FillTypical)
	for i := 0; i < 50; i++ {
		if a.Arr.Get(i) != b.Arr.Get(i) {
			t.Fatal("typical fill not deterministic")
		}
	}
}

func TestSetAllAndFlipCoverage(t *testing.T) {
	d := NewDoubles(8, FillMin)
	d.SetAll(MaxDouble)
	for i := 0; i < 8; i++ {
		if d.Arr.Get(i) != MaxDouble {
			t.Fatal("SetAll missed an element")
		}
	}
	w := NewMIOs(4, FillMin)
	w.SetAll(MaxInt, MaxInt, MaxDouble)
	if w.Msg.DirtyCount() != 12 {
		t.Fatalf("MIO SetAll dirtied %d", w.Msg.DirtyCount())
	}
	// flipDouble on typical (non-calibrated) values still changes them.
	td := NewDoubles(4, FillTypical)
	before := td.Arr.Get(0)
	td.TouchFraction(0.25)
	if td.Arr.Get(0) == before {
		t.Fatal("typical flip left value unchanged")
	}
	// flipDouble must alternate between the calibrated pairs.
	if flipDouble(MaxDouble) != MaxDouble2 || flipDouble(MaxDouble2) != MaxDouble {
		t.Fatal("max pair broken")
	}
	if flipDouble(IntermediateDouble2) != IntermediateDouble {
		t.Fatal("intermediate pair broken")
	}
	if flipDouble(MinDouble2) != MinDouble {
		t.Fatal("min pair broken")
	}
}
