package xmlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"bsoap/internal/xmlwr"
)

// tokens drains the parser, failing the test on error.
func tokens(t *testing.T, doc string) []Token {
	t.Helper()
	p := NewParser([]byte(doc))
	var out []Token
	for {
		tok, err := p.Next()
		if err != nil {
			t.Fatalf("Next: %v (doc %q)", err, doc)
		}
		if tok.Kind == EOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestSimpleDocument(t *testing.T) {
	toks := tokens(t, "<a><b>hi</b></a>")
	want := []Token{
		{Kind: StartElement, Name: "a"},
		{Kind: StartElement, Name: "b"},
		{Kind: CharData, Text: "hi"},
		{Kind: EndElement, Name: "b"},
		{Kind: EndElement, Name: "a"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, tok := range toks {
		if tok.Kind != want[i].Kind || tok.Name != want[i].Name || tok.Text != want[i].Text {
			t.Errorf("token %d = %+v, want %+v", i, tok, want[i])
		}
	}
}

func TestAttributes(t *testing.T) {
	toks := tokens(t, `<e a="1" b='two' c="a&amp;b"/>`)
	if toks[0].Kind != StartElement || len(toks[0].Attrs) != 3 {
		t.Fatalf("start token %+v", toks[0])
	}
	want := []Attr{{"a", "1"}, {"b", "two"}, {"c", "a&b"}}
	for i, a := range toks[0].Attrs {
		if a != want[i] {
			t.Errorf("attr %d = %+v, want %+v", i, a, want[i])
		}
	}
	if toks[1].Kind != EndElement || toks[1].Name != "e" {
		t.Fatalf("self-closing tag did not synthesize end: %+v", toks[1])
	}
}

func TestXMLDeclAndComments(t *testing.T) {
	doc := `<?xml version="1.0"?><!-- c --><r><!-- inner -->x</r>`
	toks := tokens(t, doc)
	if len(toks) != 3 || toks[1].Text != "x" {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestCDATA(t *testing.T) {
	toks := tokens(t, "<r><![CDATA[a<b&c]]></r>")
	if len(toks) != 3 || toks[1].Kind != CharData || toks[1].Text != "a<b&c" {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestEntitiesInText(t *testing.T) {
	toks := tokens(t, "<r>&lt;&amp;&gt;&#65;</r>")
	if toks[1].Text != "<&>A" {
		t.Fatalf("text: %q", toks[1].Text)
	}
}

func TestNamespacePrefixesPreserved(t *testing.T) {
	toks := tokens(t, `<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://x"><SOAP-ENV:Body/></SOAP-ENV:Envelope>`)
	if toks[0].Name != "SOAP-ENV:Envelope" {
		t.Fatalf("name: %q", toks[0].Name)
	}
	if Local(toks[0].Name) != "Envelope" {
		t.Fatalf("Local: %q", Local(toks[0].Name))
	}
}

func TestLocal(t *testing.T) {
	for in, want := range map[string]string{"a:b": "b", "b": "b", "x:y:z": "z", ":n": "n"} {
		if got := Local(in); got != want {
			t.Errorf("Local(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMismatchedTagsError(t *testing.T) {
	for _, doc := range []string{"<a></b>", "<a><b></a></b>", "</a>", "<a>", "<a><b></b>"} {
		p := NewParser([]byte(doc))
		var err error
		for err == nil {
			var tok Token
			tok, err = p.Next()
			if tok.Kind == EOF {
				break
			}
		}
		if err == nil {
			t.Errorf("document %q parsed without error", doc)
		}
	}
}

func TestMalformedMarkupErrors(t *testing.T) {
	for _, doc := range []string{
		"<a b></a>",       // attribute without value
		`<a b="1></a>`,    // unterminated attribute
		"<a><![CDATA[x]]", // unterminated CDATA
		"<!-- unclosed",   // unterminated comment
		"<?pi unclosed",   // unterminated PI
		"<a>&bogus;</a>",  // unknown entity
		"<",               // truncated
		"<a / ></a>",      // stray slash
		`<a "v"></a>`,     // missing attribute name
	} {
		p := NewParser([]byte(doc))
		sawErr := false
		for {
			tok, err := p.Next()
			if err != nil {
				sawErr = true
				break
			}
			if tok.Kind == EOF {
				break
			}
		}
		if !sawErr {
			t.Errorf("document %q parsed without error", doc)
		}
	}
}

func TestWhitespaceBetweenElements(t *testing.T) {
	p := NewParser([]byte("<r>\n  <a>1</a>\n</r>"))
	tok, err := p.ExpectStart("r")
	if err != nil {
		t.Fatal(err)
	}
	tok, err = p.ExpectStart("a")
	if err != nil || tok.Name != "a" {
		t.Fatalf("ExpectStart(a): %+v, %v", tok, err)
	}
	text, err := p.Text()
	if err != nil || text != "1" {
		t.Fatalf("Text: %q, %v", text, err)
	}
	if _, err := p.ExpectEnd(); err != nil {
		t.Fatalf("ExpectEnd: %v", err)
	}
}

func TestExpectStartRejectsWrongElement(t *testing.T) {
	p := NewParser([]byte("<a/>"))
	if _, err := p.ExpectStart("b"); err == nil {
		t.Fatal("ExpectStart accepted wrong element")
	}
	p = NewParser([]byte("text"))
	if _, err := p.ExpectStart("b"); err == nil {
		t.Fatal("ExpectStart accepted char data")
	}
}

func TestSkipElement(t *testing.T) {
	p := NewParser([]byte("<r><skip><deep>x</deep></skip><keep>y</keep></r>"))
	if _, err := p.ExpectStart("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExpectStart("skip"); err != nil {
		t.Fatal(err)
	}
	if err := p.SkipElement(); err != nil {
		t.Fatal(err)
	}
	tok, err := p.ExpectStart("keep")
	if err != nil || tok.Name != "keep" {
		t.Fatalf("after skip: %+v, %v", tok, err)
	}
}

func TestTextAcrossCDATA(t *testing.T) {
	p := NewParser([]byte("<r>ab<![CDATA[<raw>]]>cd</r>"))
	if _, err := p.ExpectStart("r"); err != nil {
		t.Fatal(err)
	}
	text, err := p.Text()
	if err != nil || text != "ab<raw>cd" {
		t.Fatalf("Text: %q, %v", text, err)
	}
}

func TestOffsetAdvances(t *testing.T) {
	doc := []byte("<a>xy</a>")
	p := NewParser(doc)
	if p.Offset() != 0 {
		t.Fatal("initial offset")
	}
	p.Next() // <a>
	after := p.Offset()
	if after != 3 {
		t.Fatalf("offset after start tag = %d", after)
	}
	p.Next() // xy
	if p.Offset() != 5 {
		t.Fatalf("offset after text = %d", p.Offset())
	}
}

func TestDepth(t *testing.T) {
	p := NewParser([]byte("<a><b></b></a>"))
	p.Next()
	if p.Depth() != 1 {
		t.Fatalf("depth after <a> = %d", p.Depth())
	}
	p.Next() // <b>
	if p.Depth() != 2 {
		t.Fatalf("depth after <b> = %d", p.Depth())
	}
	p.Next() // </b>
	p.Next() // </a>
	if p.Depth() != 0 {
		t.Fatalf("final depth = %d", p.Depth())
	}
}

// TestWriterParserRoundTrip uses random trees produced by the writer and
// checks the parser reproduces the structure and text exactly.
func TestWriterParserRoundTrip(t *testing.T) {
	f := func(texts []string) bool {
		w := xmlwr.NewWriter(256)
		w.Start("root")
		for i, s := range texts {
			// Element names must be XML names; texts are arbitrary.
			name := "e" + string(rune('a'+i%26))
			w.Start(name).Attr("attr", s).Text(s).End()
		}
		w.End()
		doc, err := w.Result()
		if err != nil {
			return false
		}
		p := NewParser(doc)
		if _, err := p.ExpectStart("root"); err != nil {
			return false
		}
		for i, s := range texts {
			tok, err := p.ExpectStart("")
			if err != nil {
				t.Logf("elem %d: %v", i, err)
				return false
			}
			if len(tok.Attrs) != 1 || tok.Attrs[0].Value != s {
				t.Logf("elem %d attr mismatch: %+v vs %q", i, tok.Attrs, s)
				return false
			}
			text, err := p.Text()
			if err != nil || text != s {
				t.Logf("elem %d text %q vs %q (%v)", i, text, s, err)
				return false
			}
		}
		_, err = p.ExpectEnd()
		return err == nil
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLargeFlatDocument(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<arr>")
	for i := 0; i < 5000; i++ {
		sb.WriteString("<v>1.5</v>")
	}
	sb.WriteString("</arr>")
	p := NewParser([]byte(sb.String()))
	count := 0
	for {
		tok, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == EOF {
			break
		}
		if tok.Kind == CharData {
			count++
		}
	}
	if count != 5000 {
		t.Fatalf("parsed %d values", count)
	}
}
