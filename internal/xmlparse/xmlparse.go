// Package xmlparse is a from-scratch, non-validating XML pull parser,
// sufficient for SOAP envelopes: elements, attributes, character data,
// comments, processing instructions, CDATA, the five predefined entities
// and numeric character references. It operates over an in-memory byte
// slice — SOAP requests arrive framed by HTTP, so the whole body is
// available — and verifies element nesting.
//
// The SOAP server's full-deserialization path is built on this package;
// its cost is exactly what the paper's differential *deserialization*
// extension (§6) avoids for unchanged message regions.
package xmlparse

import (
	"fmt"

	"bsoap/internal/xsdlex"
)

// Kind identifies a token type.
type Kind int

const (
	// EOF reports the end of the document.
	EOF Kind = iota
	// StartElement is an opening tag; Name and Attrs are set.
	StartElement
	// EndElement is a closing tag (or the synthetic close of a
	// self-closing tag); Name is set.
	EndElement
	// CharData is text content; Text is set (entities resolved).
	CharData
)

// String returns a readable token-kind name.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case CharData:
		return "CharData"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Attr is one attribute of a start tag.
type Attr struct {
	Name  string
	Value string
}

// Token is one parse event.
type Token struct {
	Kind  Kind
	Name  string // element name, prefix included, for Start/EndElement
	Attrs []Attr // attributes, for StartElement
	Text  string // character data, for CharData
}

// Parser is a pull parser over an in-memory document.
type Parser struct {
	data    []byte
	pos     int
	stack   []string
	pending *Token // synthetic EndElement after a self-closing tag
}

// NewParser returns a parser over data. The slice is not copied; the
// caller must not mutate it during parsing.
func NewParser(data []byte) *Parser {
	return &Parser{data: data}
}

// Offset reports the current byte offset into the document, used by the
// differential deserializer to record value byte-ranges.
func (p *Parser) Offset() int { return p.pos }

// Depth reports the current element nesting depth.
func (p *Parser) Depth() int { return len(p.stack) }

// Next returns the next token. After EOF or an error, subsequent calls
// repeat the result.
func (p *Parser) Next() (Token, error) {
	if p.pending != nil {
		t := *p.pending
		p.pending = nil
		return t, nil
	}
	for {
		if p.pos >= len(p.data) {
			if len(p.stack) != 0 {
				return Token{}, fmt.Errorf("xmlparse: document ended with %q unclosed", p.stack[len(p.stack)-1])
			}
			return Token{Kind: EOF}, nil
		}
		if p.data[p.pos] != '<' {
			return p.charData()
		}
		if p.pos+1 >= len(p.data) {
			return Token{}, p.errf("truncated markup")
		}
		switch p.data[p.pos+1] {
		case '?':
			if err := p.skipUntil("?>"); err != nil {
				return Token{}, err
			}
		case '!':
			if err := p.skipBang(); err != nil {
				return Token{}, err
			}
			if p.pending != nil {
				t := *p.pending
				p.pending = nil
				return t, nil
			}
		case '/':
			return p.endTag()
		default:
			return p.startTag()
		}
	}
}

// errf formats a positioned parse error.
func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("xmlparse: offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

// skipUntil advances past the next occurrence of marker.
func (p *Parser) skipUntil(marker string) error {
	for i := p.pos; i+len(marker) <= len(p.data); i++ {
		if string(p.data[i:i+len(marker)]) == marker {
			p.pos = i + len(marker)
			return nil
		}
	}
	return p.errf("unterminated construct (missing %q)", marker)
}

// skipBang handles <!-- comments -->, <![CDATA[...]]> (which it does NOT
// skip — CDATA is routed back as character data by charData) and DOCTYPE.
func (p *Parser) skipBang() error {
	rest := p.data[p.pos:]
	switch {
	case hasPrefix(rest, "<!--"):
		return p.skipUntil("-->")
	case hasPrefix(rest, "<![CDATA["):
		return p.cdata()
	default:
		// DOCTYPE etc. — skip to the matching '>' (no nested brackets
		// support; SOAP envelopes never carry a DTD).
		return p.skipUntil(">")
	}
}

// cdata consumes a CDATA section and stages its contents as a pending
// CharData token (verbatim, no entity resolution).
func (p *Parser) cdata() error {
	start := p.pos + len("<![CDATA[")
	for i := start; i+3 <= len(p.data); i++ {
		if string(p.data[i:i+3]) == "]]>" {
			text := string(p.data[start:i])
			p.pos = i + 3
			p.pending = &Token{Kind: CharData, Text: text}
			return nil
		}
	}
	return p.errf("unterminated CDATA section")
}

// charData consumes text up to the next '<' and resolves entities.
func (p *Parser) charData() (Token, error) {
	start := p.pos
	for p.pos < len(p.data) && p.data[p.pos] != '<' {
		p.pos++
	}
	raw := p.data[start:p.pos]
	text, err := xsdlex.UnescapeText(string(raw))
	if err != nil {
		return Token{}, p.errf("%v", err)
	}
	return Token{Kind: CharData, Text: text}, nil
}

// startTag parses <name attr="v" ...> or <name .../>.
func (p *Parser) startTag() (Token, error) {
	p.pos++ // consume '<'
	name, err := p.name()
	if err != nil {
		return Token{}, err
	}
	tok := Token{Kind: StartElement, Name: name}
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return Token{}, p.errf("unterminated start tag <%s", name)
		}
		switch p.data[p.pos] {
		case '>':
			p.pos++
			p.stack = append(p.stack, name)
			return tok, nil
		case '/':
			if p.pos+1 >= len(p.data) || p.data[p.pos+1] != '>' {
				return Token{}, p.errf("stray '/' in tag <%s", name)
			}
			p.pos += 2
			p.pending = &Token{Kind: EndElement, Name: name}
			return tok, nil
		default:
			attr, err := p.attr()
			if err != nil {
				return Token{}, err
			}
			tok.Attrs = append(tok.Attrs, attr)
		}
	}
}

// endTag parses </name>.
func (p *Parser) endTag() (Token, error) {
	p.pos += 2 // consume '</'
	name, err := p.name()
	if err != nil {
		return Token{}, err
	}
	p.skipSpace()
	if p.pos >= len(p.data) || p.data[p.pos] != '>' {
		return Token{}, p.errf("malformed end tag </%s", name)
	}
	p.pos++
	if len(p.stack) == 0 {
		return Token{}, p.errf("closing tag </%s> with no open element", name)
	}
	open := p.stack[len(p.stack)-1]
	if open != name {
		return Token{}, p.errf("closing tag </%s> does not match open <%s>", name, open)
	}
	p.stack = p.stack[:len(p.stack)-1]
	return Token{Kind: EndElement, Name: name}, nil
}

// name consumes an XML name (byte-oriented: any run of name characters).
func (p *Parser) name() (string, error) {
	start := p.pos
	for p.pos < len(p.data) && isNameByte(p.data[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected name")
	}
	return string(p.data[start:p.pos]), nil
}

// attr consumes name="value" or name='value'.
func (p *Parser) attr() (Attr, error) {
	name, err := p.name()
	if err != nil {
		return Attr{}, err
	}
	p.skipSpace()
	if p.pos >= len(p.data) || p.data[p.pos] != '=' {
		return Attr{}, p.errf("attribute %q missing '='", name)
	}
	p.pos++
	p.skipSpace()
	if p.pos >= len(p.data) || (p.data[p.pos] != '"' && p.data[p.pos] != '\'') {
		return Attr{}, p.errf("attribute %q missing quote", name)
	}
	quote := p.data[p.pos]
	p.pos++
	start := p.pos
	for p.pos < len(p.data) && p.data[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.data) {
		return Attr{}, p.errf("unterminated attribute %q", name)
	}
	raw := string(p.data[start:p.pos])
	p.pos++
	val, err := xsdlex.UnescapeText(raw)
	if err != nil {
		return Attr{}, p.errf("attribute %q: %v", name, err)
	}
	return Attr{Name: name, Value: val}, nil
}

func (p *Parser) skipSpace() {
	for p.pos < len(p.data) && xsdlex.IsSpace(p.data[p.pos]) {
		p.pos++
	}
}

func isNameByte(b byte) bool {
	switch {
	case 'a' <= b && b <= 'z', 'A' <= b && b <= 'Z', '0' <= b && b <= '9':
		return true
	case b == ':' || b == '_' || b == '-' || b == '.':
		return true
	case b >= 0x80: // multi-byte UTF-8 name characters, accepted wholesale
		return true
	}
	return false
}

func hasPrefix(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[:len(s)]) == s
}

// Local strips any namespace prefix from an element or attribute name.
func Local(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == ':' {
			return name[i+1:]
		}
	}
	return name
}

// --- Convenience layer used by the SOAP deserializer ---

// NextNonSpace returns the next token, transparently skipping CharData
// tokens that are entirely white space (formatting between elements).
func (p *Parser) NextNonSpace() (Token, error) {
	for {
		t, err := p.Next()
		if err != nil {
			return t, err
		}
		if t.Kind == CharData && xsdlex.TrimSpace(t.Text) == "" {
			continue
		}
		return t, nil
	}
}

// ExpectStart consumes the next non-space token and verifies it opens an
// element with the given local name (namespace prefix ignored). An empty
// local accepts any element.
func (p *Parser) ExpectStart(local string) (Token, error) {
	t, err := p.NextNonSpace()
	if err != nil {
		return t, err
	}
	if t.Kind != StartElement {
		return t, fmt.Errorf("xmlparse: expected <%s>, got %v", local, t.Kind)
	}
	if local != "" && Local(t.Name) != local {
		return t, fmt.Errorf("xmlparse: expected <%s>, got <%s>", local, t.Name)
	}
	return t, nil
}

// ExpectEnd consumes the next non-space token and verifies it closes an
// element.
func (p *Parser) ExpectEnd() (Token, error) {
	t, err := p.NextNonSpace()
	if err != nil {
		return t, err
	}
	if t.Kind != EndElement {
		return t, fmt.Errorf("xmlparse: expected end tag, got %v", t.Kind)
	}
	return t, nil
}

// Text consumes character data up to the element's closing tag and returns
// it with surrounding whitespace intact (XSD parsing trims later). It
// must be called immediately after the element's StartElement token.
func (p *Parser) Text() (string, error) {
	var text string
	for {
		t, err := p.Next()
		if err != nil {
			return "", err
		}
		switch t.Kind {
		case CharData:
			text += t.Text
		case EndElement:
			return text, nil
		default:
			return "", fmt.Errorf("xmlparse: unexpected %v inside text element", t.Kind)
		}
	}
}

// SkipElement consumes tokens until the element whose StartElement was
// just returned is closed, including nested children.
func (p *Parser) SkipElement() error {
	depth := 1
	for depth > 0 {
		t, err := p.Next()
		if err != nil {
			return err
		}
		switch t.Kind {
		case StartElement:
			depth++
		case EndElement:
			depth--
		case EOF:
			return fmt.Errorf("xmlparse: EOF inside element")
		}
	}
	return nil
}
