package xmlparse

import "testing"

// FuzzParser asserts the tokenizer never panics or loops: any input
// terminates in EOF or an error within a bounded number of tokens.
func FuzzParser(f *testing.F) {
	seeds := []string{
		"",
		"<a/>",
		"<a><b>text</b></a>",
		`<a k="v" x='y'>&lt;&#65;</a>`,
		"<?xml version=\"1.0\"?><!-- c --><r><![CDATA[x]]></r>",
		"<a><b></a></b>",
		"<a b=></a>",
		"&&&&",
		"<<<>>>",
		"<a>\xff\xfe</a>",
		"<SOAP-ENV:Envelope><SOAP-ENV:Body/></SOAP-ENV:Envelope>",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewParser(data)
		for i := 0; ; i++ {
			if i > len(data)+16 {
				t.Fatalf("parser produced more tokens than input bytes: %d", i)
			}
			tok, err := p.Next()
			if err != nil {
				return
			}
			if tok.Kind == EOF {
				return
			}
		}
	})
}
