package pool

import (
	"hash/fnv"
	"net"
	"reflect"
	"sync"

	"bsoap/internal/core"
	"bsoap/internal/wire"
)

// ShardedStore is the concurrent template store at the heart of the
// pool. Templates are keyed by (operation, structural signature) and
// grouped into shards, each guarded by its own mutex, so goroutines
// sending different operations never contend on a lock.
//
// Within one key the store holds up to Replicas independent engine
// replicas (a core.Stub with a single-template store each). A call
// checks out one replica, holds its lock across classify + diff + send
// (the template's bytes are on the wire during the send, so they cannot
// be mutated concurrently), and releases it. Replicas are what lets a
// hot operation scale: R goroutines diff and send R copies of the same
// template in parallel, while the total first-time-send cost stays
// bounded at R per structure — not one per goroutine, which is what
// naive stub-per-worker designs pay.
//
// Checkout prefers the replica a message used last (affinity by message
// identity), preserving the engine's dirty-bit classification: a message
// landing on its own replica gets content/structural matches exactly as
// a dedicated stub would; landing elsewhere costs one template rebind
// (all values rewritten, tags reused).
type ShardedStore struct {
	shards   []storeShard
	mask     uint32
	replicas int
	cfg      core.Config
	metrics  *Metrics
}

type storeShard struct {
	mu      sync.Mutex
	entries map[storeKey]*storeEntry
}

type storeKey struct {
	op  string
	sig string
}

// storeEntry is the replica set for one (operation, signature).
type storeEntry struct {
	replicas []*replica
}

// replica is one lockable differential-serialization engine: a stub
// whose sink is swapped to the checked-out connection per call.
type replica struct {
	mu   sync.Mutex
	stub *core.Stub
	sink swapSink
	// bound is the message identity currently bound to the template,
	// used to count rebinds (metrics only; the engine tracks its own
	// binding).
	bound *wire.Message
}

// swapSink routes the stub's output to whatever connection the call
// checked out. It is set while the replica lock is held.
type swapSink struct{ s core.Sink }

func (w *swapSink) Send(bufs net.Buffers) error { return w.s.Send(bufs) }

// NewShardedStore builds a store with the given shard count (rounded up
// to a power of two, default 16) and per-key replica limit (default 4).
func NewShardedStore(shards, replicas int, cfg core.Config, m *Metrics) *ShardedStore {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if replicas <= 0 {
		replicas = 4
	}
	if m == nil {
		m = NewMetrics()
	}
	s := &ShardedStore{
		shards:   make([]storeShard, n),
		mask:     uint32(n - 1),
		replicas: replicas,
		cfg:      cfg,
		metrics:  m,
	}
	for i := range s.shards {
		s.shards[i].entries = make(map[storeKey]*storeEntry)
	}
	return s
}

// keyHash distributes (op, sig) keys over shards.
func keyHash(k storeKey) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(k.op))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(k.sig))
	return h.Sum32()
}

// msgAffinity hashes a message's identity to spread messages over a
// key's replicas stably: the same message object prefers the same
// replica call after call, keeping its dirty-bit binding alive.
func msgAffinity(m *wire.Message) uint64 {
	p := uint64(reflect.ValueOf(m).Pointer())
	// Fibonacci hashing: pointer low bits are all zero from alignment.
	return (p * 0x9E3779B97F4A7C15) >> 32
}

// acquire returns a locked replica for m's operation+signature. The
// caller must release it after the call completes.
func (s *ShardedStore) acquire(m *wire.Message) *replica {
	key := storeKey{op: m.Operation(), sig: m.Signature()}
	sh := &s.shards[keyHash(key)&s.mask]
	aff := msgAffinity(m)

	sh.mu.Lock()
	e := sh.entries[key]
	if e == nil {
		e = &storeEntry{}
		sh.entries[key] = e
	}

	var r *replica
	locked := false
	if n := len(e.replicas); n > 0 {
		// Preferred replica first, then any free one.
		if pref := e.replicas[aff%uint64(n)]; pref.mu.TryLock() {
			r, locked = pref, true
		} else {
			for _, c := range e.replicas {
				if c.mu.TryLock() {
					r, locked = c, true
					break
				}
			}
		}
	}
	if r == nil && len(e.replicas) < s.replicas {
		r = &replica{}
		r.stub = core.NewStub(s.cfg, &r.sink)
		r.mu.Lock()
		locked = true
		e.replicas = append(e.replicas, r)
	}
	if r == nil {
		// Every replica busy and the set is full: queue on the preferred
		// one outside the shard lock.
		r = e.replicas[aff%uint64(len(e.replicas))]
	}
	sh.mu.Unlock()

	if !locked {
		r.mu.Lock()
	}
	if r.bound != m {
		if r.bound != nil {
			s.metrics.templateRebinds.Add(1)
		}
		r.bound = m
	}
	return r
}

// release returns a replica acquired by acquire.
func (s *ShardedStore) release(r *replica) {
	r.sink.s = nil
	r.mu.Unlock()
}

// TemplateCount sums the stored templates across every shard and
// replica (each replica's single-key store holds at most
// MaxTemplatesPerOp; in practice one).
func (s *ShardedStore) TemplateCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			for _, r := range e.replicas {
				n += r.stub.Store().TemplateCount()
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Entries reports the number of distinct (operation, signature) keys.
func (s *ShardedStore) Entries() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
