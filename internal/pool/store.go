package pool

import (
	"hash/fnv"
	"net"
	"reflect"
	"sort"
	"sync"

	"bsoap/internal/core"
	"bsoap/internal/trace"
	"bsoap/internal/wire"
)

// ShardedStore is the concurrent template store at the heart of the
// pool. Templates are keyed by (operation, structural signature) and
// grouped into shards, each guarded by its own mutex, so goroutines
// sending different operations never contend on a lock.
//
// Within one key the store holds up to Replicas independent engine
// replicas (a core.Stub with a single-template store each). A call
// checks out one replica, holds its lock across classify + diff + send
// (the template's bytes are on the wire during the send, so they cannot
// be mutated concurrently), and releases it. Replicas are what lets a
// hot operation scale: R goroutines diff and send R copies of the same
// template in parallel, while the total first-time-send cost stays
// bounded at R per structure — not one per goroutine, which is what
// naive stub-per-worker designs pay.
//
// Checkout prefers the replica a message used last (affinity by message
// identity), preserving the engine's dirty-bit classification: a message
// landing on its own replica gets content/structural matches exactly as
// a dedicated stub would; landing elsewhere costs one template rebind
// (all values rewritten, tags reused). Because dirty bits live on the
// message while template bytes live per replica, the store also tracks
// which replica served each message last: a message returning to an
// earlier replica after being served elsewhere is forced through a full
// value rewrite (see acquire), or its untouched resend would put that
// replica's stale bytes on the wire.
//
// Shards are keyed by operation; within a shard, live (operation,
// signature) replica sets are bounded per operation by the engine's
// MaxTemplatesPerOp (LRU eviction, mirroring core.Store), so a client
// cycling through many message shapes cannot grow the store without
// bound.
type ShardedStore struct {
	shards   []storeShard
	mask     uint32
	replicas int
	perOp    int
	cfg      core.Config
	metrics  *Metrics
}

type storeShard struct {
	mu      sync.Mutex
	entries map[storeKey]*storeEntry
	// sigLRU orders each operation's live signatures most-recent first;
	// the tail is evicted once an operation exceeds the per-op cap.
	sigLRU map[string][]string
}

type storeKey struct {
	op  string
	sig string
}

// maxTrackedMessages bounds each entry's last-served map. When the cap
// is hit the map is reset, which is safe: a tracked message that loses
// its record merely pays one forced full-value rewrite on its next call
// (acquire treats an unknown last server as a possible bounce).
const maxTrackedMessages = 1024

// storeEntry is the replica set for one (operation, signature).
type storeEntry struct {
	replicas []*replica
	// last records the replica that most recently served each message.
	// A message whose calls alternate between replicas has template
	// bytes in several of them, only the last of which is current.
	last map[*wire.Message]*replica
}

// replica is one lockable differential-serialization engine: a stub
// whose sink is swapped to the checked-out connection per call.
type replica struct {
	mu   sync.Mutex
	stub *core.Stub
	sink swapSink
	// bound is the message identity currently bound to the template,
	// used to count rebinds (metrics only; the engine tracks its own
	// binding).
	bound *wire.Message
}

// swapSink routes the stub's output to whatever connection the call
// checked out. It is set while the replica lock is held.
type swapSink struct{ s core.Sink }

func (w *swapSink) Send(bufs net.Buffers) error { return w.s.Send(bufs) }

// NewShardedStore builds a store with the given shard count (rounded up
// to a power of two, default 16) and per-key replica limit (default 4).
func NewShardedStore(shards, replicas int, cfg core.Config, m *Metrics) *ShardedStore {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if replicas <= 0 {
		replicas = 4
	}
	if m == nil {
		m = NewMetrics()
	}
	perOp := cfg.MaxTemplatesPerOp
	if perOp <= 0 {
		perOp = 4 // core.Config's own default
	}
	s := &ShardedStore{
		shards:   make([]storeShard, n),
		mask:     uint32(n - 1),
		replicas: replicas,
		perOp:    perOp,
		cfg:      cfg,
		metrics:  m,
	}
	for i := range s.shards {
		s.shards[i].entries = make(map[storeKey]*storeEntry)
		s.shards[i].sigLRU = make(map[string][]string)
	}
	return s
}

// opHash distributes operations over shards. Hashing the operation alone
// (not the signature) keeps all of an operation's signatures in one
// shard, so the per-op LRU cap is global — exactly core.Store's
// MaxTemplatesPerOp semantics — while goroutines sending different
// operations still never contend.
func opHash(op string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(op))
	return h.Sum32()
}

// noteKey moves key's signature to the front of its operation's LRU,
// inserting it when new and evicting the least recently used signature
// beyond perOp. The caller holds sh.mu. An evicted replica set simply
// becomes unreachable for new acquires; calls already holding one of its
// replicas complete unaffected and the memory is freed when they return.
func (sh *storeShard) noteKey(key storeKey, perOp int, m *Metrics) {
	list := sh.sigLRU[key.op]
	for i, sig := range list {
		if sig == key.sig {
			if i != 0 {
				copy(list[1:i+1], list[0:i])
				list[0] = key.sig
			}
			return
		}
	}
	list = append([]string{key.sig}, list...)
	if len(list) > perOp {
		victim := list[len(list)-1]
		list = list[:len(list)-1]
		delete(sh.entries, storeKey{op: key.op, sig: victim})
		m.evictions.Add(1)
	}
	sh.sigLRU[key.op] = list
}

// msgAffinity hashes a message's identity to spread messages over a
// key's replicas stably: the same message object prefers the same
// replica call after call, keeping its dirty-bit binding alive.
func msgAffinity(m *wire.Message) uint64 {
	p := uint64(reflect.ValueOf(m).Pointer())
	// Fibonacci hashing: pointer low bits are all zero from alignment.
	return (p * 0x9E3779B97F4A7C15) >> 32
}

// acquire returns a locked replica for m's operation+signature. The
// caller must release it after the call completes. m must not have
// another call in flight (see Pool's per-message confinement contract).
// span is the call's flight-recorder span (zero when tracing is off).
func (s *ShardedStore) acquire(m *wire.Message, span uint64) *replica {
	key := storeKey{op: m.Operation(), sig: m.Signature()}
	sh := &s.shards[opHash(key.op)&s.mask]
	aff := msgAffinity(m)

	sh.mu.Lock()
	e := sh.entries[key]
	if e == nil {
		e = &storeEntry{last: make(map[*wire.Message]*replica)}
		sh.entries[key] = e
	}
	sh.noteKey(key, s.perOp, s.metrics)

	var r *replica
	locked := false
	if n := len(e.replicas); n > 0 {
		// Preferred replica first, then any free one.
		if pref := e.replicas[aff%uint64(n)]; pref.mu.TryLock() {
			r, locked = pref, true
		} else {
			for _, c := range e.replicas {
				if c.mu.TryLock() {
					r, locked = c, true
					break
				}
			}
		}
	}
	if r == nil && len(e.replicas) < s.replicas {
		r = &replica{}
		r.stub = core.NewStub(s.cfg, &r.sink)
		r.mu.Lock()
		locked = true
		e.replicas = append(e.replicas, r)
	}
	if r == nil {
		// Every replica busy and the set is full: queue on the preferred
		// one outside the shard lock.
		r = e.replicas[aff%uint64(len(e.replicas))]
	}
	prev := e.last[m]
	if prev == nil && len(e.last) >= maxTrackedMessages {
		e.last = make(map[*wire.Message]*replica)
	}
	e.last[m] = r
	sh.mu.Unlock()

	if !locked {
		r.mu.Lock()
	}
	if r.bound != m {
		if r.bound != nil {
			s.metrics.templateRebinds.Add(1)
		}
		r.bound = m
	} else if prev != r {
		// r served m at some point, but not most recently (or the
		// tracking map was reset): values m serialized through another
		// replica since then are missing from r's template bytes, yet the
		// engine sees its own binding intact and would classify an
		// untouched m as a content match — resending the stale bytes.
		// Force every value dirty so this call rewrites the template in
		// full (tag generation is still skipped).
		m.MarkAllDirty()
		s.metrics.staleRebinds.Add(1)
		if span != 0 {
			trace.Rec(span, trace.KindStaleRebind, trace.OpID(key.op), 0, 0)
		}
	}
	return r
}

// release returns a replica acquired by acquire.
func (s *ShardedStore) release(r *replica) {
	r.sink.s = nil
	r.mu.Unlock()
}

// markSuspect poisons r's template for (op, sig), if it still holds one.
// The async call path uses it when a pipelined response fails after the
// submit succeeded: the replica was released long ago, so the suspicion
// arrives late — safe, because a first-time send serializes from live
// values regardless of dirty bits, and any call that raced in between
// diffed against bytes that genuinely made it onto the wire before the
// connection died. span tags the flight-recorder event (0 = untraced).
func (s *ShardedStore) markSuspect(r *replica, op, sig string, span uint64) {
	r.mu.Lock()
	found := r.stub.MarkSuspect(op, sig)
	r.mu.Unlock()
	if found && span != 0 {
		trace.Rec(span, trace.KindTemplateSuspect, trace.OpID(op), 0, 0)
	}
}

// TemplateCount sums the stored templates across every shard and
// replica (each replica's single-key store holds at most
// MaxTemplatesPerOp; in practice one).
func (s *ShardedStore) TemplateCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			for _, r := range e.replicas {
				n += r.stub.Store().TemplateCount()
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// TemplateInfo describes one replica of one (operation, signature) key
// for the /debug/templates view.
type TemplateInfo struct {
	Op        string `json:"op"`
	Signature string `json:"sig"`
	Replica   int    `json:"replica"`
	// Busy means the replica's lock was held mid-call when the snapshot
	// ran; its template fields are zero rather than racily read.
	Busy bool `json:"busy,omitempty"`
	// Present distinguishes "replica exists but has no template yet"
	// (never called, or its template was discarded as suspect).
	Present   bool `json:"present"`
	Bytes     int  `json:"bytes,omitempty"`
	Chunks    int  `json:"chunks,omitempty"`
	Entries   int  `json:"dut_entries,omitempty"`
	Footprint int  `json:"footprint,omitempty"`
	Suspect   bool `json:"suspect,omitempty"`
}

// DebugSnapshot walks every shard and reports the live template replicas.
// Replicas whose lock is held (a call in flight) are reported Busy with
// no template detail — the walk never blocks on a send.
func (s *ShardedStore) DebugSnapshot() []TemplateInfo {
	var out []TemplateInfo
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, e := range sh.entries {
			for ri, r := range e.replicas {
				info := TemplateInfo{Op: key.op, Signature: key.sig, Replica: ri}
				if r.mu.TryLock() {
					if tpl := r.stub.Template(key.op, key.sig); tpl != nil {
						info.Present = true
						info.Bytes = tpl.Buffer().Len()
						info.Chunks = tpl.Buffer().NumChunks()
						info.Entries = tpl.Table().Len()
						info.Footprint = tpl.MemoryFootprint()
						info.Suspect = tpl.Suspect()
					}
					r.mu.Unlock()
				} else {
					info.Busy = true
				}
				out = append(out, info)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Op != out[b].Op {
			return out[a].Op < out[b].Op
		}
		if out[a].Signature != out[b].Signature {
			return out[a].Signature < out[b].Signature
		}
		return out[a].Replica < out[b].Replica
	})
	return out
}

// Entries reports the number of distinct (operation, signature) keys.
func (s *ShardedStore) Entries() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
