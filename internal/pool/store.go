package pool

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"bsoap/internal/core"
	reg "bsoap/internal/replica"
	"bsoap/internal/trace"
	"bsoap/internal/wire"
)

// ShardedStore is the concurrent template store at the heart of the
// pool, built on the unified replica registry (internal/replica): entry
// lookup, sharding, the per-operation signature LRU, in-flight
// refcounts and the byte budget all live there; this file owns what is
// client-specific — the engine replicas inside an entry, message
// affinity, and the stale-rebind protocol.
//
// Entries are keyed by (operation, structural signature). Within one
// entry the store holds up to Replicas independent engine replicas (a
// core.Stub with a single-key store each). A call checks out one
// replica, holds its lock across classify + diff + send (the template's
// bytes are on the wire during the send, so they cannot be mutated
// concurrently), and releases it. Replicas are what lets a hot
// operation scale: R goroutines diff and send R copies of the same
// template in parallel, while the total first-time-send cost stays
// bounded at R per structure.
//
// Checkout prefers the replica a message used last (affinity by message
// identity), preserving the engine's dirty-bit classification. Because
// dirty bits live on the message while template bytes live per replica,
// the entry also tracks which replica served each message last: a
// message returning to an earlier replica after being served elsewhere
// is forced through a full value rewrite (see acquire), or its
// untouched resend would put that replica's stale bytes on the wire.
//
// Eviction — per-operation LRU cap or byte budget — condemns an entry
// in the registry; calls already holding one of its engines complete
// unaffected, and the registry releases the entry's chunk arenas when
// the last in-flight call returns (previously eviction could only drop
// references and wait for the garbage collector). A message whose entry
// was evicted simply builds a fresh one on its next call: a degraded
// first-time send, never a diff against released bytes.
type ShardedStore struct {
	reg      *reg.Registry[*storeEntry]
	replicas int
	cfg      core.Config
	metrics  *Metrics
}

// storeEntry is the replica set for one (operation, signature).
type storeEntry struct {
	mu      sync.Mutex
	engines []*engine
	// last records the engine that most recently served each message.
	// A message whose calls alternate between engines has template
	// bytes in several of them, only the last of which is current. The
	// tracker is bounded: at capacity it resets wholesale, and acquire
	// treats an unknown last server as a possible bounce.
	last *reg.Tracker[*wire.Message, *engine]
	// size caches the entry's template footprint for the registry's
	// budget accounting: updated by release while the engine lock is
	// held, read lock-free by SizeBytes under registry locks.
	size atomic.Int64
}

// SizeBytes reports the cached template footprint (replica.Entry).
func (e *storeEntry) SizeBytes() int { return int(e.size.Load()) }

// ReleaseArenas returns every engine's template arenas to the chunk
// pool (replica.Entry). The registry calls it once the evicted entry's
// last in-flight call has returned; the engine locks serialize against
// a late MarkSuspect from a pipelined response, which afterwards just
// misses its store lookup.
func (e *storeEntry) ReleaseArenas() {
	e.mu.Lock()
	engines := e.engines
	e.mu.Unlock()
	for _, r := range engines {
		r.mu.Lock()
		r.stub.Store().ReleaseAll()
		r.mu.Unlock()
	}
}

// engine is one lockable differential-serialization engine: a stub
// whose sink is swapped to the checked-out connection per call.
type engine struct {
	mu   sync.Mutex
	stub *core.Stub
	sink swapSink
	// slot is the registry slot of the entry this engine belongs to;
	// stable for the entry's lifetime, it is how release finds its way
	// back to the registry's refcount.
	slot *reg.Slot[*storeEntry]
	// bound is the message identity currently bound to the template,
	// used to count rebinds (metrics only; the engine tracks its own
	// binding).
	bound *wire.Message
	// fp is the engine's last-accounted template footprint, guarded by
	// mu; release folds the delta into the entry's cached size. gen is
	// the stub-stats generation at which fp was computed: the footprint
	// walk is skipped while the counters that can change it hold still.
	fp  int64
	gen int64
}

// footGen folds the stub counters that can change its store's
// footprint — template builds and buffer reshaping — into one
// generation number. In-place rewrites, tag shifts, shifts, and steals
// reuse existing bytes, so the steady state keeps the generation (and
// the accounted footprint) constant without walking the chunk lists on
// every release.
func footGen(cs core.Stats) int64 {
	return cs.FirstTimeSends + cs.FullSerializations + cs.Grows + cs.Splits
}

// swapSink routes the stub's output to whatever connection the call
// checked out. It is set while the replica lock is held.
type swapSink struct {
	s core.Sink
	// wireNs accumulates time spent inside the sink during the current
	// call — the wire stage of the client's latency attribution, split
	// out of the stub's total Call time. Reset by the pool before each
	// call; guarded by the engine lock like s.
	wireNs int64
}

func (w *swapSink) Send(bufs net.Buffers) error {
	start := time.Now()
	err := w.s.Send(bufs)
	w.wireNs += time.Since(start).Nanoseconds()
	return err
}

// swapSink also implements core.DeltaSink by forwarding to the
// checked-out connection when it is delta-capable. The stub probes
// capability through DeltaEpoch — a connection whose sink is not a
// DeltaSink answers false, so the stub never encodes a patch for it —
// which keeps delta strictly per-connection: a pool mixing delta and
// plain sinks degrades per call, losslessly.

func (w *swapSink) DeltaEpoch(tid uint64) (uint64, bool) {
	if ds, ok := w.s.(core.DeltaSink); ok {
		return ds.DeltaEpoch(tid)
	}
	return 0, false
}

func (w *swapSink) SendFull(bufs net.Buffers, tid, epoch uint64) error {
	ds, ok := w.s.(core.DeltaSink)
	if !ok {
		return w.Send(bufs)
	}
	start := time.Now()
	err := ds.SendFull(bufs, tid, epoch)
	w.wireNs += time.Since(start).Nanoseconds()
	return err
}

func (w *swapSink) SendDelta(bufs net.Buffers, tid, newEpoch uint64) error {
	ds, ok := w.s.(core.DeltaSink)
	if !ok {
		// Unreachable: the stub only encodes a patch after DeltaEpoch
		// answered true, which requires a DeltaSink underneath.
		return fmt.Errorf("pool: SendDelta on a non-delta sink")
	}
	start := time.Now()
	err := ds.SendDelta(bufs, tid, newEpoch)
	w.wireNs += time.Since(start).Nanoseconds()
	return err
}

// NewShardedStore builds a store with the given shard count (rounded up
// to a power of two, default 16), per-key replica limit (default 4),
// and template memory budget in bytes (0 = unbudgeted).
func NewShardedStore(shards, replicas int, maxBytes int64, cfg core.Config, m *Metrics) *ShardedStore {
	if shards <= 0 {
		shards = 16
	}
	if replicas <= 0 {
		replicas = 4
	}
	if m == nil {
		m = NewMetrics()
	}
	perOp := cfg.MaxTemplatesPerOp
	if perOp <= 0 {
		perOp = 4 // core.Config's own default
	}
	s := &ShardedStore{
		replicas: replicas,
		cfg:      cfg,
		metrics:  m,
	}
	s.reg = reg.NewRegistry(reg.RegistryOptions[*storeEntry]{
		Shards:      shards,
		MaxPerGroup: perOp,
		MaxBytes:    maxBytes,
		New: func(reg.Key) *storeEntry {
			return &storeEntry{last: reg.NewTracker[*wire.Message, *engine](0)}
		},
		OnEvict: func(key reg.Key, reason reg.Reason, bytes int64) {
			m.evictions.Add(1)
			if reason == reg.ReasonBudget {
				m.budgetEvictions.Add(1)
			}
			if trace.Enabled() {
				trace.Rec(0, trace.KindReplicaEvict, trace.OpID(key.Group), int64(reason), bytes)
			}
		},
	})
	counters := s.reg.Counters
	m.templateSource.Store(&counters)
	return s
}

// acquire returns a locked engine for m's operation+signature, with an
// in-flight reference held on its registry entry. The caller must
// release it after the call completes. m must not have another call in
// flight (see Pool's per-message confinement contract). span is the
// call's flight-recorder span (zero when tracing is off).
func (s *ShardedStore) acquire(m *wire.Message, span uint64) *engine {
	key := reg.Key{Group: m.Operation(), Sub: m.Signature()}
	slot, _ := s.reg.Acquire(key)
	e := slot.Value
	aff := reg.Affinity64(reflect.ValueOf(m).Pointer())

	e.mu.Lock()
	var r *engine
	locked := false
	if n := len(e.engines); n > 0 {
		// Preferred replica first, then any free one.
		if pref := e.engines[aff%uint64(n)]; pref.mu.TryLock() {
			r, locked = pref, true
		} else {
			for _, c := range e.engines {
				if c.mu.TryLock() {
					r, locked = c, true
					break
				}
			}
		}
	}
	if r == nil && len(e.engines) < s.replicas {
		r = &engine{slot: slot}
		r.stub = core.NewStub(s.cfg, &r.sink)
		r.mu.Lock()
		locked = true
		e.engines = append(e.engines, r)
	}
	if r == nil {
		// Every replica busy and the set is full: queue on the preferred
		// one outside the entry lock.
		r = e.engines[aff%uint64(len(e.engines))]
	}
	prev, _ := e.last.Lookup(m)
	e.last.Note(m, r)
	e.mu.Unlock()

	if !locked {
		r.mu.Lock()
	}
	if r.bound != m {
		if r.bound != nil {
			s.metrics.templateRebinds.Add(1)
		}
		r.bound = m
	} else if prev != r {
		// r served m at some point, but not most recently (or the
		// tracking map was reset): values m serialized through another
		// replica since then are missing from r's template bytes, yet the
		// engine sees its own binding intact and would classify an
		// untouched m as a content match — resending the stale bytes.
		// Force every value dirty so this call rewrites the template in
		// full (tag generation is still skipped).
		m.MarkAllDirty()
		s.metrics.staleRebinds.Add(1)
		if span != 0 {
			trace.Rec(span, trace.KindStaleRebind, trace.OpID(key.Group), 0, 0)
		}
	}
	return r
}

// release returns an engine acquired by acquire: it re-accounts the
// engine's template footprint into the entry's cached size, unlocks the
// engine, and drops the registry reference — the budget-enforcement
// point, and, for a condemned entry, possibly the release that frees
// its arenas.
func (s *ShardedStore) release(r *engine) {
	if gen := footGen(r.stub.Stats()); gen != r.gen {
		r.gen = gen
		fp := int64(r.stub.Store().Footprint())
		r.slot.Value.size.Add(fp - r.fp)
		r.fp = fp
	}
	r.sink.s = nil
	r.mu.Unlock()
	s.reg.Release(r.slot)
}

// markSuspect poisons r's template for (op, sig), if it still holds one.
// The async call path uses it when a pipelined response fails after the
// submit succeeded: the replica was released long ago, so the suspicion
// arrives late — safe, because a first-time send serializes from live
// values regardless of dirty bits, and any call that raced in between
// diffed against bytes that genuinely made it onto the wire before the
// connection died. If the entry was evicted and its arenas released in
// the meantime, the lookup simply misses. span tags the flight-recorder
// event (0 = untraced).
func (s *ShardedStore) markSuspect(r *engine, op, sig string, span uint64) {
	r.mu.Lock()
	found := r.stub.MarkSuspect(op, sig)
	r.mu.Unlock()
	if found && span != 0 {
		trace.Rec(span, trace.KindTemplateSuspect, trace.OpID(op), 0, 0)
	}
}

// TemplateCount sums the stored templates across every entry and
// replica (each replica's single-key store holds at most
// MaxTemplatesPerOp; in practice one).
func (s *ShardedStore) TemplateCount() int {
	n := 0
	s.reg.Each(func(_ reg.Key, e *storeEntry) {
		e.mu.Lock()
		for _, r := range e.engines {
			n += r.stub.Store().TemplateCount()
		}
		e.mu.Unlock()
	})
	return n
}

// DebugSnapshot dumps the registry in the uniform client/server format
// served by /debug/templates and read by `bsoap-inspect templates`. Rows
// whose engines are mid-call report the registry's accounted bytes
// without blocking on the engine locks.
func (s *ShardedStore) DebugSnapshot() reg.Dump {
	return s.reg.Dump("client", func(e *storeEntry, d *reg.DebugEntry) {
		e.mu.Lock()
		d.Replicas = len(e.engines)
		e.mu.Unlock()
	})
}

// Entries reports the number of distinct (operation, signature) keys.
func (s *ShardedStore) Entries() int {
	return s.reg.Len()
}
