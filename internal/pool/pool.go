// Package pool is the concurrent client runtime for differential
// serialization: many goroutines share one Pool and every Call still
// benefits from template reuse.
//
// The paper measures its gains through a single stub on a single
// connection. Scaling that to a production client means solving three
// problems the single-stub model sidesteps:
//
//   - Connections: a bounded sender pool with checkout/checkin, lazy
//     dialing, and automatic redial (exponential backoff + jitter) when
//     a connection breaks mid-send.
//   - Templates: a sharded store (see ShardedStore) so templates are
//     owned by the runtime, not by goroutines — a new worker's first
//     call of an operation another worker has already sent starts warm
//     instead of paying a first-time send.
//   - Observability: an atomic Metrics registry counting match-class
//     rates, bytes saved by diffing, shift/steal events, pool health
//     and latency, exposed as an expvar-style JSON endpoint.
package pool

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/replica"
	"bsoap/internal/trace"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

// Options configure a Pool.
type Options struct {
	// Addr is the endpoint to dial (lazily, one connection per pool
	// slot as load requires).
	Addr string
	// Sender configures the HTTP framing of pooled connections.
	Sender transport.SenderOptions
	// Dial overrides Addr with a custom connection factory (tests,
	// in-process benchmarking). The returned sink is closed on pool
	// shutdown when it implements io.Closer.
	Dial func() (core.Sink, error)

	// Size bounds concurrent connections (default 4).
	Size int
	// Config tunes the differential-serialization engines.
	Config core.Config
	// Shards is the template-store shard count (default 16).
	Shards int
	// Replicas bounds per-(operation,signature) engine replicas
	// (default 4): the parallelism ceiling for a single hot operation.
	Replicas int
	// MaxTemplateBytes budgets the template store's memory: the sum of
	// all replica sets' template footprints is kept at or below it by
	// evicting least-recently-used entries (with per-operation fairness
	// floors). Zero leaves template memory bounded only by the
	// per-operation count caps. See README "Sizing template memory".
	MaxTemplateBytes int64

	// MaxRetries is how many times a Call is retried on a send error
	// after repairing the connection (default 1). The engine preserves
	// dirty bits across failed sends, so retries re-serialize exactly
	// the pending changes.
	MaxRetries int
	// DialAttempts bounds connection-repair attempts per Call (default
	// 4), spaced by RedialBackoff doubling up to RedialBackoffMax with
	// 50% jitter (defaults 20ms / 1s).
	DialAttempts     int
	RedialBackoff    time.Duration
	RedialBackoffMax time.Duration
	// RetryBudget bounds the total wall-clock one Call may spend on
	// connection repair, backoff sleeps and retries (default 10s).
	// Together with MaxRetries and DialAttempts it makes every failure
	// path bounded in both count and time: when the budget runs out the
	// Call fails with ErrRetryBudgetExhausted instead of redialing on.
	RetryBudget time.Duration

	// PipelineDepth enables the pipelined async call path: each pool
	// connection keeps up to this many requests in flight (HTTP/1.x
	// pipelining — responses arrive strictly in request order), CallAsync
	// returns Futures, and Call routes through CallAsync + Wait. Zero
	// (the default) keeps the serial request/response path.
	//
	// Requires a dialed transport (Options.Addr) and a responding server:
	// every pipelined request reads exactly one response, regardless of
	// Sender.ExpectResponse. Incompatible with Options.Dial.
	PipelineDepth int

	// Delta turns on differential transmission (shorthand for
	// Sender.Delta): full sends negotiate an X-BSoap-Delta sync with the
	// server, after which warm content-match calls go out as compact
	// patch frames instead of full bodies. Negotiation needs responses —
	// a pipelined pool always reads them; a serial pool must also set
	// Sender.ExpectResponse or every send simply stays full (lossless).
	Delta bool
}

func (o Options) withDefaults() Options {
	if o.Size <= 0 {
		o.Size = 4
	}
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.Replicas <= 0 {
		o.Replicas = 4
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 1
	}
	if o.DialAttempts <= 0 {
		o.DialAttempts = 4
	}
	if o.RedialBackoff <= 0 {
		o.RedialBackoff = 20 * time.Millisecond
	}
	if o.RedialBackoffMax <= 0 {
		o.RedialBackoffMax = time.Second
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 10 * time.Second
	}
	return o
}

// Pool is a concurrent differential-serialization client. All Pool
// methods are safe for concurrent use by any number of goroutines.
//
// Messages are not: a *wire.Message carries unsynchronized values and
// dirty bits, so each message must be confined to one in-flight Call at
// a time. Goroutines share the Pool (and through it the templates), not
// message objects — give each worker its own messages, as the loadgen
// and the stress tests do. Distinct messages may be passed to Call
// concurrently without restriction.
type Pool struct {
	opts    Options
	senders *senderPool
	store   *ShardedStore
	metrics *Metrics
}

// New builds a Pool. Connections are not established until calls need
// them.
func New(opts Options) (*Pool, error) {
	o := opts.withDefaults()
	if o.Delta {
		o.Sender.Delta = true
	}
	dial := o.Dial
	if dial == nil {
		if o.Addr == "" {
			return nil, fmt.Errorf("pool: Options.Addr or Options.Dial required")
		}
		addr, sopts := o.Addr, o.Sender
		dial = func() (core.Sink, error) { return transport.Dial(addr, sopts) }
	} else if o.PipelineDepth > 0 {
		return nil, fmt.Errorf("pool: Options.PipelineDepth requires a dialed transport (Options.Addr, not Options.Dial)")
	}
	m := NewMetrics()
	m.pipelineDepth.Store(int64(o.PipelineDepth))
	return &Pool{
		opts:    o,
		senders: newSenderPool(o.Size, dial, o, m),
		store:   NewShardedStore(o.Shards, o.Replicas, o.MaxTemplateBytes, o.Config, m),
		metrics: m,
	}, nil
}

// ErrRetryBudgetExhausted is wrapped by Call when a call's repair/retry
// work exceeds Options.RetryBudget: the failure is bounded in wall-clock,
// not just attempt count.
var ErrRetryBudgetExhausted = fmt.Errorf("pool: retry budget exhausted")

// Call serializes and sends m through a pooled connection, reusing the
// shared template for m's operation and structure. On a send error the
// connection is repaired (redial with backoff) and the call retried up
// to MaxRetries times — all within the RetryBudget wall-clock bound —
// before the error is returned. A send that fails mid-template marks
// that template suspect in the engine; the retry (or the structure's
// next call) degrades to a full first-time serialization rather than
// trusting possibly half-delivered bytes.
//
// Call is safe for concurrent use with distinct messages; a given
// message must not have two Calls in flight at once (see Pool).
func (p *Pool) Call(m *wire.Message) (core.CallInfo, error) {
	if p.opts.PipelineDepth > 0 {
		// Pipelined pools route sync calls through the async path so
		// every request flows through one ordered pipeline per
		// connection. CallAsync + resolve do all the accounting.
		f, err := p.CallAsync(m)
		if err != nil {
			return core.CallInfo{}, err
		}
		return f.Wait()
	}
	start := p.senders.now()
	deadline := start.Add(p.opts.RetryBudget)
	var span uint64
	if trace.Enabled() {
		span = trace.BeginSpan()
	}
	ps, waited, err := p.senders.checkout()
	if err != nil {
		return core.CallInfo{}, err
	}
	defer p.senders.checkin(ps)
	ckNs := p.senders.now().Sub(start).Nanoseconds()
	p.metrics.Stages.Observe(trace.StageCheckout, ckNs, span)
	if span != 0 {
		w := int64(0)
		if waited {
			w = 1
		}
		trace.Rec(span, trace.KindPoolCheckout, w, 0, 0)
		trace.Rec(span, trace.KindStage, int64(trace.StageCheckout), ckNs, 0)
	}

	var ci core.CallInfo
	for attempt := 0; ; attempt++ {
		// Repair the connection before taking a template replica, so
		// redial backoff sleeps never hold a replica lock: other callers
		// of the same hot operation proceed through healthy pool slots
		// while this one dials. The replica is likewise released before
		// any retry's repair. (A retry may therefore land on a different
		// replica; acquire detects that and forces a full value rewrite.)
		var sink core.Sink
		if span != 0 {
			// Attribute a repair redial of the slot's existing connection
			// to this call's span before ensure runs.
			if ts, ok := ps.sink.(*transport.Sender); ok {
				ts.TraceSpan = span
			}
		}
		sink, err = p.senders.ensure(ps, deadline)
		if err != nil {
			break
		}
		if span != 0 {
			if ts, ok := sink.(*transport.Sender); ok {
				ts.TraceSpan = span
			}
		}
		r := p.store.acquire(m, span)
		r.sink.s = sink
		r.sink.wireNs = 0
		if span != 0 {
			r.stub.SetTraceSpan(span)
		}
		callStart := p.senders.now()
		ci, err = r.stub.Call(m)
		callNs := p.senders.now().Sub(callStart).Nanoseconds()
		wireNs := r.sink.wireNs
		p.store.release(r)
		if err == nil {
			// Attribute the stub's Call time: what was spent inside the
			// transport sink is wire, patch-frame assembly is delta encode,
			// the rest is serialization work.
			p.metrics.Stages.Observe(trace.StageSerialize, callNs-wireNs-ci.DeltaEncodeNs, span)
			p.metrics.Stages.Observe(trace.StageWire, wireNs, span)
			if ci.DeltaEncodeNs > 0 {
				p.metrics.Stages.Observe(trace.StageDeltaEncode, ci.DeltaEncodeNs, span)
			}
			if span != 0 {
				trace.Rec(span, trace.KindStage, int64(trace.StageSerialize), callNs-wireNs-ci.DeltaEncodeNs, 0)
				trace.Rec(span, trace.KindStage, int64(trace.StageWire), wireNs, 0)
				if ci.DeltaEncodeNs > 0 {
					trace.Rec(span, trace.KindStage, int64(trace.StageDeltaEncode), ci.DeltaEncodeNs, 0)
				}
			}
			break
		}
		ps.broken = true
		if attempt >= p.opts.MaxRetries {
			break
		}
		if !p.senders.now().Before(deadline) {
			err = fmt.Errorf("pool: send failed and no budget to retry: %w (last error: %v)",
				ErrRetryBudgetExhausted, err)
			break
		}
		p.metrics.retries.Add(1)
		if span != 0 {
			trace.Rec(span, trace.KindPoolRetry, int64(attempt+1), 0, 0)
		}
	}
	if errors.Is(err, ErrRetryBudgetExhausted) {
		p.metrics.retryBudgetExhausted.Add(1)
	}
	if span != 0 && err != nil && ci.Span == 0 {
		// The call never reached the engine (no healthy connection):
		// close the span from the pool layer. A=-1 marks "no match
		// classification happened".
		trace.Rec(span, trace.KindCallErr, -1, 0, 0)
	}
	elapsed := p.senders.now().Sub(start)
	p.metrics.RecordCall(ci, err, elapsed)
	if span != 0 && err == nil {
		trace.ObserveCall(span, int64(elapsed))
	}
	return ci, err
}

// Metrics exposes the pool's registry (for serving the JSON endpoint).
func (p *Pool) Metrics() *Metrics { return p.metrics }

// Stats snapshots the registry.
func (p *Pool) Stats() Stats { return p.metrics.Snapshot() }

// TemplateCount reports templates resident across all shards.
func (p *Pool) TemplateCount() int { return p.store.TemplateCount() }

// Entries reports distinct (operation, signature) keys seen.
func (p *Pool) Entries() int { return p.store.Entries() }

// DebugTemplates snapshots the live template store in the uniform
// client/server dump format (see ShardedStore.DebugSnapshot).
func (p *Pool) DebugTemplates() replica.Dump { return p.store.DebugSnapshot() }

// TemplatesHandler serves the live template store as indented JSON — the
// /debug/templates endpoint, in the same shape the server side serves
// so `bsoap-inspect templates` renders both.
func (p *Pool) TemplatesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.DebugTemplates())
	})
}

// Close shuts the pool down: blocked and future checkouts fail, idle
// connections close now, checked-out ones as they return.
func (p *Pool) Close() error {
	p.senders.close()
	return nil
}
