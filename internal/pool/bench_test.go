package pool

import (
	"sync"
	"testing"

	"bsoap/internal/core"
	"bsoap/internal/transport"
	"bsoap/internal/workload"
)

// BenchmarkPoolParallel measures pooled concurrent sends: every
// parallel goroutine owns a message and shares the Pool. Run with
// -cpu 1,2,4,8 to see scaling; compare BenchmarkSingleSenderMutex, the
// baseline a pool-less client is stuck with (one engine, one
// connection, one global lock).
func BenchmarkPoolParallel(b *testing.B) {
	sink := transport.NewDiscardSink()
	p, err := New(Options{
		Dial:     func() (core.Sink, error) { return sink, nil },
		Size:     16,
		Replicas: 16,
		Config:   core.Config{Width: core.WidthPolicy{Double: 18}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()

	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := workload.NewDoubles(1000, workload.FillIntermediate)
		if _, err := p.Call(d.Msg); err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			d.TouchFraction(0.1)
			if _, err := p.Call(d.Msg); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkSingleSenderMutex is the no-pool baseline: all goroutines
// funnel through one stub and one connection behind a mutex.
func BenchmarkSingleSenderMutex(b *testing.B) {
	sink := transport.NewDiscardSink()
	stub := core.NewStub(core.Config{Width: core.WidthPolicy{Double: 18}}, sink)
	var mu sync.Mutex

	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := workload.NewDoubles(1000, workload.FillIntermediate)
		mu.Lock()
		_, err := stub.Call(d.Msg)
		mu.Unlock()
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			d.TouchFraction(0.1)
			mu.Lock()
			_, err := stub.Call(d.Msg)
			mu.Unlock()
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}
