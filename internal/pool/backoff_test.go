package pool

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/workload"
)

// fakeClock is a manual clock for the sender pool: sleep advances time
// instantly, so backoff schedules are asserted exactly and the tests
// finish in microseconds of real time.
type fakeClock struct {
	t      time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) sleep(d time.Duration) {
	c.sleeps = append(c.sleeps, d)
	c.t = c.t.Add(d)
}

// install points a sender pool at the fake clock.
func (c *fakeClock) install(sp *senderPool) {
	sp.now = c.now
	sp.sleep = c.sleep
}

// TestBackoffGrowthAndJitter pins the redial backoff schedule: the
// pre-attempt delay doubles from RedialBackoff, caps at
// RedialBackoffMax, and carries at most +50% jitter — all observed
// through the fake clock, with zero real sleeping.
func TestBackoffGrowthAndJitter(t *testing.T) {
	const (
		base     = 10 * time.Millisecond
		max      = 80 * time.Millisecond
		attempts = 7
	)
	dialErr := errors.New("dial refused")
	opts := Options{
		DialAttempts:     attempts,
		RedialBackoff:    base,
		RedialBackoffMax: max,
	}.withDefaults()
	sp := newSenderPool(1, func() (core.Sink, error) { return nil, dialErr }, opts, NewMetrics())
	clk := newFakeClock()
	clk.install(sp)

	ps := &pooledSender{}
	_, err := sp.ensure(ps, clk.t.Add(time.Hour))
	if !errors.Is(err, dialErr) {
		t.Fatalf("ensure with failing dialer: err=%v, want wrapped dial error", err)
	}
	if errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("ensure hit the budget with an hour to spare: %v", err)
	}

	// Attempt 0 dials immediately; attempts 1..n-1 each sleep first.
	if len(clk.sleeps) != attempts-1 {
		t.Fatalf("got %d backoff sleeps, want %d", len(clk.sleeps), attempts-1)
	}
	for i, got := range clk.sleeps {
		want := base << uint(i)
		if want > max {
			want = max
		}
		lo, hi := want, want+want/2
		if got < lo || got > hi {
			t.Errorf("sleep %d = %v, want within [%v, %v] (base %v doubled, capped at %v, ≤50%% jitter)",
				i+1, got, lo, hi, base, max)
		}
	}
	if sp.metrics.dialFailures.Load() != attempts {
		t.Fatalf("dial failures = %d, want %d", sp.metrics.dialFailures.Load(), attempts)
	}
}

// TestEnsureHonorsRetryBudget shows ensure refusing to start a backoff
// sleep that would cross the call's deadline: the error wraps
// ErrRetryBudgetExhausted and no further sleeping happens.
func TestEnsureHonorsRetryBudget(t *testing.T) {
	opts := Options{
		DialAttempts:     10,
		RedialBackoff:    20 * time.Millisecond,
		RedialBackoffMax: time.Second,
	}.withDefaults()
	sp := newSenderPool(1, func() (core.Sink, error) { return nil, fmt.Errorf("down") }, opts, NewMetrics())
	clk := newFakeClock()
	clk.install(sp)

	// Budget covers the first dial and one 20–30ms sleep, never the
	// second (40–60ms) one.
	deadline := clk.t.Add(35 * time.Millisecond)
	_, err := sp.ensure(&pooledSender{}, deadline)
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("ensure past deadline: err=%v, want ErrRetryBudgetExhausted", err)
	}
	if len(clk.sleeps) != 1 {
		t.Fatalf("got %d sleeps, want exactly 1 before the budget ran out", len(clk.sleeps))
	}
	if clk.t.After(deadline) {
		t.Fatalf("clock advanced past the deadline: now=%v deadline=%v", clk.t, deadline)
	}
}

// TestCallRetryBudgetExhausted drives the budget through the public
// Pool.Call path: with every dial failing and a small budget, the call
// fails with ErrRetryBudgetExhausted and the registry counts it.
func TestCallRetryBudgetExhausted(t *testing.T) {
	p, err := New(Options{
		Size:             1,
		Replicas:         1,
		Dial:             func() (core.Sink, error) { return nil, fmt.Errorf("endpoint down") },
		DialAttempts:     100,
		RedialBackoff:    50 * time.Millisecond,
		RedialBackoffMax: 200 * time.Millisecond,
		RetryBudget:      300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	clk := newFakeClock()
	clk.install(p.senders)

	d := workload.NewDoubles(8, workload.FillMin)
	if _, err := p.Call(d.Msg); !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("Call with dead endpoint: err=%v, want ErrRetryBudgetExhausted", err)
	}
	st := p.Stats()
	if st.RetryBudgetExhausted != 1 {
		t.Fatalf("retry_budget_exhausted=%d, want 1", st.RetryBudgetExhausted)
	}
	if st.Errors != 1 {
		t.Fatalf("errors=%d, want 1", st.Errors)
	}
}
