package pool

import (
	"sync"
	"testing"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/transport"
	"bsoap/internal/workload"
)

// TestPoolStressSharedStore is the satellite stress test: N goroutines
// share one Pool (and therefore one sharded template store and one
// bounded connection pool) against a real loopback discard server,
// driving mixed content-match / structural-match / partial-match
// workloads. Run under -race it proves the runtime's synchronization;
// the counter assertions prove no call is lost or double-counted.
func TestPoolStressSharedStore(t *testing.T) {
	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p, err := New(Options{
		Addr:     srv.Addr(),
		Size:     4,
		Replicas: 4,
		Config:   core.Config{EnableStealing: true, Width: core.WidthPolicy{Double: 18, Int: 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns its messages (wire.Message is
			// single-goroutine); templates are shared through the pool.
			d := workload.NewDoubles(200, workload.FillIntermediate)
			ints := workload.NewInts(200, workload.FillIntermediate)
			mios := workload.NewMIOs(100, workload.FillIntermediate)
			for i := 0; i < iters; i++ {
				var m = d.Msg
				switch i % 3 {
				case 1:
					m = ints.Msg
				case 2:
					m = mios.Msg
				}
				// Mixed match classes: mostly untouched (content match
				// when affinity holds), some width-neutral touches
				// (structural), occasional growth (partial/steals).
				switch {
				case i%10 == 9:
					d.GrowFraction(0.05, workload.MaxDouble)
				case i%10 >= 6:
					d.TouchFraction(0.1)
					ints.TouchFraction(0.1)
					mios.TouchDoublesFraction(0.1)
				}
				if _, err := p.Call(m); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := p.Stats()
	total := workers * iters
	if st.Calls != int64(total) {
		t.Fatalf("calls = %d, want %d", st.Calls, total)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d, want 0", st.Errors)
	}
	matchSum := st.FirstTimeSends + st.ContentMatches + st.StructuralMatches +
		st.PartialMatches + st.FullSerializations
	if matchSum != st.Calls {
		t.Fatalf("match kinds sum to %d, calls %d — a call was lost or double-counted", matchSum, st.Calls)
	}

	// Template sharing: first-time sends are bounded by replicas ×
	// distinct structures (3), not by workers × structures.
	if maxFirst := int64(3 * 4); st.FirstTimeSends > maxFirst {
		t.Errorf("first-time sends = %d, want ≤ %d (templates must be shared across workers)",
			st.FirstTimeSends, maxFirst)
	}
	if warm := st.WarmCalls(); warm < int64(total)*9/10 {
		t.Errorf("warm calls = %d of %d, want ≥ 90%%", warm, total)
	}
	if st.BytesSaved <= 0 {
		t.Errorf("bytes saved = %d, want > 0", st.BytesSaved)
	}

	// Every accepted call must have reached the server.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Requests() < int64(total) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Requests(); got != int64(total) {
		t.Fatalf("server received %d requests, want %d", got, total)
	}
	if st.BytesOnWire != srv.Bytes() {
		t.Fatalf("bytes on wire %d != server body bytes %d", st.BytesOnWire, srv.Bytes())
	}
}
