package pool

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/promtext"
	"bsoap/internal/replica"
	"bsoap/internal/trace"
	"bsoap/internal/transport"
)

// errKind indexes the per-kind error counters: what stopped a failed
// call (connection never established, socket deadline, retry budget, or
// a plain send error).
const (
	errKindDial = iota
	errKindDeadline
	errKindBudget
	errKindSend
	errKindCount
)

// errKindNames are the stable label values the JSON and Prometheus
// endpoints use.
var errKindNames = [errKindCount]string{"dial", "deadline", "budget_exhausted", "send"}

// Metrics is the pool's registry: lock-free atomic counters covering the
// differential-serialization outcome of every call (per-match-kind
// counts, bytes on the wire vs. bytes actually serialized), the repair
// work done (tag shifts, shifts, steals), the connection pool's health
// (checkouts, waits, dials, redials) and a call-latency histogram.
// All methods are safe for concurrent use.
type Metrics struct {
	calls  atomic.Int64
	errors atomic.Int64

	// errorsByKind breaks failed calls down by what stopped them.
	errorsByKind [errKindCount]atomic.Int64

	// matches indexes per-kind call counts by core.MatchKind.
	matches [5]atomic.Int64

	bytesWire        atomic.Int64
	bytesRepresented atomic.Int64
	bytesSerialized  atomic.Int64

	// Differential transmission: patch frames sent instead of full
	// bodies, and server-demanded resynchronizations.
	deltaSends   atomic.Int64
	deltaResyncs atomic.Int64

	valuesRewritten atomic.Int64
	tagShifts       atomic.Int64
	shifts          atomic.Int64
	steals          atomic.Int64

	checkouts     atomic.Int64
	checkoutWaits atomic.Int64
	dials         atomic.Int64
	redials       atomic.Int64
	dialFailures  atomic.Int64
	retries       atomic.Int64

	templateRebinds atomic.Int64
	staleRebinds    atomic.Int64
	evictions       atomic.Int64
	budgetEvictions atomic.Int64

	// templateSource, when set, snapshots the replica registry's byte
	// accounting (resident bytes, high water, eviction splits) so the
	// template-memory gauges come straight from the budget enforcer.
	templateSource atomic.Pointer[func() replica.Counters]

	degradedFTS          atomic.Int64
	retryBudgetExhausted atomic.Int64

	// Async call path (zero on serial pools). pipelineDepth is a config
	// gauge set once at pool construction; futuresPending is a live gauge
	// (+1 per submitted request, -1 as each future resolves);
	// pipelineStalls counts SendAsync calls that blocked because the
	// pipeline was already at depth.
	asyncCalls     atomic.Int64
	pipelineDepth  atomic.Int64
	futuresPending atomic.Int64
	pipelineStalls atomic.Int64

	// faultSource, when set, reports how many faults an external
	// injector (faultwire) has put on this pool's wire; snapshots read
	// it so chaos runs can watch fault counts on the live endpoint.
	faultSource atomic.Pointer[func() int64]

	// Stages is the always-on per-stage latency attribution histogram
	// (client stages: checkout, serialize, pipeline_queue, wire),
	// exposed as bsoap_client_stage_seconds.
	Stages trace.StageHist

	lat histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// RecordCall folds one call's outcome into the registry. Byte and
// repair counters are recorded whether or not the call succeeded: a
// failed send may still have pushed most of the template onto the wire
// and done all its rewrite work, and dashboards under-report wire
// traffic in chaos runs if those bytes vanish. Match-kind counts and the
// latency histogram remain success-only (a failed call has no completed
// classification or meaningful service time).
func (m *Metrics) RecordCall(ci core.CallInfo, err error, d time.Duration) {
	m.calls.Add(1)
	m.bytesWire.Add(int64(ci.WireBytes))
	m.bytesRepresented.Add(int64(ci.Bytes))
	m.bytesSerialized.Add(int64(ci.BytesSerialized))
	if ci.DeltaSent {
		m.deltaSends.Add(1)
	}
	if ci.DeltaResync {
		m.deltaResyncs.Add(1)
	}
	m.valuesRewritten.Add(int64(ci.ValuesRewritten))
	m.tagShifts.Add(int64(ci.TagShifts))
	m.shifts.Add(int64(ci.Shifts))
	m.steals.Add(int64(ci.Steals))
	if err != nil {
		m.errors.Add(1)
		m.errorsByKind[classifyErr(err)].Add(1)
		return
	}
	if k := int(ci.Match); k >= 0 && k < len(m.matches) {
		m.matches[k].Add(1)
	}
	m.lat.observe(d)
	if ci.Degraded && ci.Match == core.FirstTime {
		m.degradedFTS.Add(1)
	}
}

// classifyErr maps a failed call's error to its errKind bucket. Budget
// exhaustion wins over the dial/deadline cause that consumed the budget;
// a dial sentinel beats the generic timeout check because dial errors
// can themselves be timeouts.
func classifyErr(err error) int {
	switch {
	case errors.Is(err, ErrRetryBudgetExhausted):
		return errKindBudget
	case errors.Is(err, ErrDialFailed):
		return errKindDial
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return errKindDeadline
	}
	return errKindSend
}

// RecordDeltaResync accounts a pipelined patch send the server rejected
// with 409/resync: the frame's bytes crossed the wire even though the
// call itself is re-recorded by its full-body retry, so only the wasted
// wire traffic and the resync count are folded in here.
func (m *Metrics) RecordDeltaResync(frameBytes int) {
	m.deltaResyncs.Add(1)
	m.bytesWire.Add(int64(frameBytes))
}

// SetFaultSource registers a callback reporting the running fault count
// of an external injector (e.g. faultwire.Injector.Faults). Snapshots
// include its value as faults_injected. Safe for concurrent use; pass
// nil to detach.
func (m *Metrics) SetFaultSource(f func() int64) {
	if f == nil {
		m.faultSource.Store(nil)
		return
	}
	m.faultSource.Store(&f)
}

// ErrorsByKind breaks the error count down by what stopped each failed
// call.
type ErrorsByKind struct {
	// Dial counts calls that never got a healthy connection.
	Dial int64 `json:"dial"`
	// Deadline counts calls stopped by a socket read/write deadline.
	Deadline int64 `json:"deadline"`
	// BudgetExhausted counts calls whose repair/retry work exceeded
	// Options.RetryBudget.
	BudgetExhausted int64 `json:"budget_exhausted"`
	// Send counts every other send failure (resets, broken pipes, …).
	Send int64 `json:"send"`
}

// Stats is a point-in-time snapshot of the registry, JSON-marshalable in
// the expvar style (the loadgen's -metrics endpoint serves exactly this
// object).
type Stats struct {
	Calls  int64 `json:"calls"`
	Errors int64 `json:"errors"`

	// ErrorsByKind partitions Errors by failure cause.
	ErrorsByKind ErrorsByKind `json:"errors_by_kind"`

	FirstTimeSends     int64 `json:"first_time_sends"`
	ContentMatches     int64 `json:"content_matches"`
	StructuralMatches  int64 `json:"structural_matches"`
	PartialMatches     int64 `json:"partial_matches"`
	FullSerializations int64 `json:"full_serializations"`

	// BytesOnWire is what actually crossed the wire (a patch frame counts
	// its framed size); BytesRepresented is the message bytes those sends
	// stand for (always the full body); BytesSerialized is the portion
	// the engine actually converted from memory. BytesSaved =
	// BytesRepresented − BytesSerialized is the serialization work
	// differential serialization avoided; DeltaBytesSaved =
	// BytesRepresented − BytesOnWire is the wire traffic differential
	// transmission avoided (zero with delta off, where every send's wire
	// size equals its represented size).
	BytesOnWire      int64 `json:"bytes_on_wire"`
	BytesRepresented int64 `json:"bytes_represented"`
	BytesSerialized  int64 `json:"bytes_serialized"`
	BytesSaved       int64 `json:"bytes_saved"`
	DeltaBytesSaved  int64 `json:"delta_bytes_saved"`

	// DeltaSends counts calls that went out as compact patch frames;
	// DeltaResyncs counts patch sends the server rejected with a 409
	// resync demand (each one was losslessly retried as a full body).
	DeltaSends   int64 `json:"delta_sends"`
	DeltaResyncs int64 `json:"delta_resyncs"`

	ValuesRewritten int64 `json:"values_rewritten"`
	TagShifts       int64 `json:"tag_shifts"`
	Shifts          int64 `json:"shifts"`
	Steals          int64 `json:"steals"`

	Checkouts       int64 `json:"pool_checkouts"`
	CheckoutWaits   int64 `json:"pool_checkout_waits"`
	Dials           int64 `json:"pool_dials"`
	Redials         int64 `json:"pool_redials"`
	DialFailures    int64 `json:"pool_dial_failures"`
	Retries         int64 `json:"pool_send_retries"`
	TemplateRebinds int64 `json:"template_rebinds"`

	// TemplateStaleRebinds counts calls forced through a full value
	// rewrite because the message returned to a replica it had bounced
	// away from (whose template bytes were therefore stale).
	TemplateStaleRebinds int64 `json:"template_stale_rebinds"`
	// TemplateEvictions counts (operation, signature) replica sets
	// dropped for any reason; TemplateBudgetEvictions is the subset
	// driven by the MaxTemplateBytes budget (the rest is the
	// per-operation LRU cap).
	TemplateEvictions       int64 `json:"template_evictions"`
	TemplateBudgetEvictions int64 `json:"template_budget_evictions"`

	// TemplateBytes gauges the registry's accounted template memory;
	// TemplateBytesHighWater is its lifetime maximum. Zero when the pool
	// has no template source registered (bare Metrics in tests).
	TemplateBytes          int64 `json:"template_bytes"`
	TemplateBytesHighWater int64 `json:"template_bytes_high_water"`

	// FaultsInjected is the external fault injector's running count
	// (zero unless a fault source is registered; see SetFaultSource).
	FaultsInjected int64 `json:"faults_injected"`
	// RetryBudgetExhausted counts calls that failed because repair and
	// retry work exceeded Options.RetryBudget.
	RetryBudgetExhausted int64 `json:"retry_budget_exhausted"`
	// DegradedFTS counts successful calls served as a degraded
	// first-time send because a prior failure poisoned the template.
	DegradedFTS int64 `json:"degraded_fts"`

	// AsyncCalls counts requests submitted through the pipelined path
	// (CallAsync, including Call on a pipelined pool). PipelineDepth is
	// the configured per-connection in-flight bound (0 = serial pool).
	// FuturesPending gauges requests submitted but not yet resolved;
	// PipelineStalls counts submits that blocked at full depth.
	AsyncCalls     int64 `json:"async_calls"`
	PipelineDepth  int64 `json:"pipeline_depth"`
	FuturesPending int64 `json:"futures_pending"`
	PipelineStalls int64 `json:"pipeline_stalls"`

	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP90 time.Duration `json:"latency_p90_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	LatencyMax time.Duration `json:"latency_max_ns"`

	// LatencyBuckets are the histogram's raw power-of-two buckets:
	// bucket i counts observations whose latency in nanoseconds lies in
	// [2^(i-1), 2^i). Both the Prometheus exposition and offline
	// analysis derive their views from these; the quantile fields above
	// are convenience summaries.
	LatencyBuckets []int64 `json:"latency_buckets"`
	// LatencyCount and LatencySumNs are the histogram's total
	// observation count and nanosecond sum (mean = sum/count).
	LatencyCount int64 `json:"latency_count"`
	LatencySumNs int64 `json:"latency_sum_ns"`
}

// WarmCalls counts calls served from an existing template (everything
// except first-time and diff-disabled sends).
func (s Stats) WarmCalls() int64 {
	return s.ContentMatches + s.StructuralMatches + s.PartialMatches
}

// Snapshot reads every counter. Counters are read individually (not as
// one atomic unit), so totals can be transiently off by in-flight calls;
// after quiescence they are exact.
func (m *Metrics) Snapshot() Stats {
	s := Stats{
		Calls:  m.calls.Load(),
		Errors: m.errors.Load(),

		ErrorsByKind: ErrorsByKind{
			Dial:            m.errorsByKind[errKindDial].Load(),
			Deadline:        m.errorsByKind[errKindDeadline].Load(),
			BudgetExhausted: m.errorsByKind[errKindBudget].Load(),
			Send:            m.errorsByKind[errKindSend].Load(),
		},

		FirstTimeSends:     m.matches[core.FirstTime].Load(),
		ContentMatches:     m.matches[core.ContentMatch].Load(),
		StructuralMatches:  m.matches[core.StructuralMatch].Load(),
		PartialMatches:     m.matches[core.PartialMatch].Load(),
		FullSerializations: m.matches[core.FullSerialization].Load(),

		BytesOnWire:      m.bytesWire.Load(),
		BytesRepresented: m.bytesRepresented.Load(),
		BytesSerialized:  m.bytesSerialized.Load(),
		DeltaSends:       m.deltaSends.Load(),
		DeltaResyncs:     m.deltaResyncs.Load(),

		ValuesRewritten: m.valuesRewritten.Load(),
		TagShifts:       m.tagShifts.Load(),
		Shifts:          m.shifts.Load(),
		Steals:          m.steals.Load(),

		Checkouts:       m.checkouts.Load(),
		CheckoutWaits:   m.checkoutWaits.Load(),
		Dials:           m.dials.Load(),
		Redials:         m.redials.Load(),
		DialFailures:    m.dialFailures.Load(),
		Retries:         m.retries.Load(),
		TemplateRebinds: m.templateRebinds.Load(),

		TemplateStaleRebinds:    m.staleRebinds.Load(),
		TemplateEvictions:       m.evictions.Load(),
		TemplateBudgetEvictions: m.budgetEvictions.Load(),

		RetryBudgetExhausted: m.retryBudgetExhausted.Load(),
		DegradedFTS:          m.degradedFTS.Load(),

		AsyncCalls:     m.asyncCalls.Load(),
		PipelineDepth:  m.pipelineDepth.Load(),
		FuturesPending: m.futuresPending.Load(),
		PipelineStalls: m.pipelineStalls.Load(),

		LatencyP50: m.lat.quantile(0.50),
		LatencyP90: m.lat.quantile(0.90),
		LatencyP99: m.lat.quantile(0.99),
		LatencyMax: time.Duration(m.lat.max.Load()),

		LatencyBuckets: m.lat.bucketCounts(),
		LatencyCount:   m.lat.count.Load(),
		LatencySumNs:   m.lat.sum.Load(),
	}
	if f := m.faultSource.Load(); f != nil {
		s.FaultsInjected = (*f)()
	}
	if f := m.templateSource.Load(); f != nil {
		c := (*f)()
		s.TemplateBytes = c.Bytes
		s.TemplateBytesHighWater = c.HighWater
	}
	s.BytesSaved = s.BytesRepresented - s.BytesSerialized
	s.DeltaBytesSaved = s.BytesRepresented - s.BytesOnWire
	return s
}

// WriteJSON writes the snapshot as indented JSON — the expvar-style
// payload the metrics endpoint serves.
func (m *Metrics) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format (version 0.0.4): every counter plus the latency histogram as a
// native _bucket/_sum/_count series in seconds.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	p := promtext.New(w)

	p.Counter("bsoap_client_calls_total", "Calls issued through the pool.", s.Calls)
	p.CounterWithLabel("bsoap_client_call_errors_total", "Failed calls by what stopped them.",
		"kind", []promtext.LabeledValue{
			{Label: errKindNames[errKindDial], Value: s.ErrorsByKind.Dial},
			{Label: errKindNames[errKindDeadline], Value: s.ErrorsByKind.Deadline},
			{Label: errKindNames[errKindBudget], Value: s.ErrorsByKind.BudgetExhausted},
			{Label: errKindNames[errKindSend], Value: s.ErrorsByKind.Send},
		})
	p.CounterWithLabel("bsoap_client_matches_total", "Successful calls by differential match class.",
		"kind", []promtext.LabeledValue{
			{Label: "first_time", Value: s.FirstTimeSends},
			{Label: "content", Value: s.ContentMatches},
			{Label: "structural", Value: s.StructuralMatches},
			{Label: "partial", Value: s.PartialMatches},
			{Label: "full", Value: s.FullSerializations},
		})

	p.Counter("bsoap_client_wire_bytes_total", "Bytes that crossed the wire (patch frames count their framed size).", s.BytesOnWire)
	p.Counter("bsoap_client_represented_bytes_total", "Full-body bytes the sends stand for after reconstruction.", s.BytesRepresented)
	p.Counter("bsoap_client_serialized_bytes_total", "Bytes actually converted from in-memory values.", s.BytesSerialized)
	p.Counter("bsoap_client_saved_bytes_total", "Serialization bytes avoided by diffing.", s.BytesSaved)
	// Deprecated aliases of the wire/serialized/saved families (pre-rename
	// names with the unit mid-name, kept parse-compatible for one release).
	p.Counter("bsoap_client_bytes_on_wire_total", "Deprecated: use bsoap_client_wire_bytes_total.", s.BytesOnWire)
	p.Counter("bsoap_client_bytes_serialized_total", "Deprecated: use bsoap_client_serialized_bytes_total.", s.BytesSerialized)
	p.Counter("bsoap_client_bytes_saved_total", "Deprecated: use bsoap_client_saved_bytes_total.", s.BytesSaved)

	p.Counter("bsoap_client_delta_sends_total", "Calls sent as compact patch frames (differential transmission).", s.DeltaSends)
	p.Counter("bsoap_client_delta_resyncs_total", "Patch sends rejected 409/resync and retried in full.", s.DeltaResyncs)
	p.Counter("bsoap_client_delta_bytes_saved_total", "Wire bytes avoided by differential transmission.", s.DeltaBytesSaved)

	p.Counter("bsoap_client_values_rewritten_total", "Dirty leaves re-serialized into templates.", s.ValuesRewritten)
	p.Counter("bsoap_client_tag_shifts_total", "Closing-tag shifts within a field.", s.TagShifts)
	p.Counter("bsoap_client_shifts_total", "Field expansions served by shifting.", s.Shifts)
	p.Counter("bsoap_client_steals_total", "Field expansions served by padding steals.", s.Steals)

	p.Counter("bsoap_client_pool_checkouts_total", "Connection checkouts.", s.Checkouts)
	p.Counter("bsoap_client_pool_checkout_waits_total", "Checkouts that blocked on a free slot.", s.CheckoutWaits)
	p.Counter("bsoap_client_pool_dials_total", "Fresh connections dialed.", s.Dials)
	p.Counter("bsoap_client_pool_redials_total", "Broken connections repaired in place.", s.Redials)
	p.Counter("bsoap_client_pool_dial_failures_total", "Dial and redial attempts that failed.", s.DialFailures)
	p.Counter("bsoap_client_pool_send_retries_total", "Calls retried after connection repair.", s.Retries)

	p.Counter("bsoap_client_template_rebinds_total", "Template rebinds to a different message object.", s.TemplateRebinds)
	p.Counter("bsoap_client_template_stale_rebinds_total", "Full rewrites forced by replica bounce.", s.TemplateStaleRebinds)
	p.CounterWithLabel("bsoap_client_template_evictions_total", "Replica sets evicted, by driver.",
		"reason", []promtext.LabeledValue{
			{Label: "lru", Value: s.TemplateEvictions - s.TemplateBudgetEvictions},
			{Label: "budget", Value: s.TemplateBudgetEvictions},
		})
	p.Gauge("bsoap_client_template_bytes", "Accounted template memory resident in the replica registry.", s.TemplateBytes)
	p.Gauge("bsoap_client_template_bytes_high_water", "Lifetime maximum of bsoap_client_template_bytes.", s.TemplateBytesHighWater)

	p.Counter("bsoap_client_faults_injected_total", "Faults the external injector put on the wire.", s.FaultsInjected)
	p.Counter("bsoap_client_retry_budget_exhausted_total", "Calls that ran out of retry budget.", s.RetryBudgetExhausted)
	p.Counter("bsoap_client_degraded_fts_total", "Degraded first-time sends after a poisoned template.", s.DegradedFTS)

	p.Counter("bsoap_client_async_calls_total", "Requests submitted through the pipelined path.", s.AsyncCalls)
	p.Counter("bsoap_client_pipeline_stalls_total", "Async submits that blocked at full pipeline depth.", s.PipelineStalls)
	p.Gauge("bsoap_client_pipeline_depth", "Configured per-connection in-flight bound (0 = serial).", s.PipelineDepth)
	p.Gauge("bsoap_client_futures_pending", "Requests submitted but not yet resolved.", s.FuturesPending)

	uppers := make([]float64, len(s.LatencyBuckets))
	for i := range uppers {
		uppers[i] = float64(uint64(1)<<uint(i)) / 1e9
	}
	p.Histogram("bsoap_client_call_latency_seconds", "Successful call latency (power-of-two buckets).",
		uppers, s.LatencyBuckets, float64(s.LatencySumNs)/1e9, s.LatencyCount)

	p.HistogramWithLabel("bsoap_client_stage_seconds",
		"Client-side per-call latency attribution by pipeline stage.", "stage",
		transport.StageSeconds(&m.Stages, clientStages))

	return p.Err()
}

// clientStages are the stages the client side attributes latency to.
var clientStages = []trace.Stage{
	trace.StageCheckout, trace.StageSerialize, trace.StageDeltaEncode,
	trace.StagePipelineQueue, trace.StageWire,
}

// ServeHTTP makes the registry an http.Handler so a live system can
// expose match-class rates on a debug port (net/http is used only here;
// the data path stays on the hand-rolled transport).
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := m.WriteJSON(w); err != nil {
		http.Error(w, fmt.Sprintf("metrics: %v", err), http.StatusInternalServerError)
	}
}

// PrometheusHandler serves the registry in text exposition format — the
// /metrics endpoint a Prometheus scraper points at.
func (m *Metrics) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promtext.ContentType)
		if err := m.WritePrometheus(w); err != nil {
			http.Error(w, fmt.Sprintf("metrics: %v", err), http.StatusInternalServerError)
		}
	})
}

// histogram tracks latencies in power-of-two nanosecond buckets: bucket
// i holds observations in [2^(i-1), 2^i). 40 buckets cover ~18 minutes.
type histogram struct {
	buckets [40]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// bucketCounts copies the raw bucket counters out.
func (h *histogram) bucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// quantile returns an upper bound for the q-quantile (the top of the
// bucket the quantile falls in), good to a factor of two — enough to
// tell microseconds from milliseconds in a report. The rank is the
// ceiling of q×count: the observation at or above which a fraction q of
// all observations lie, so q=0.99 over 10 observations selects the 10th
// (truncating would select the 9th — a bucket below the true quantile).
func (h *histogram) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	max := h.max.Load()
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			ub := int64(1) << uint(i)
			if ub > max {
				ub = max // never report a quantile above the observed max
			}
			return time.Duration(ub)
		}
	}
	return time.Duration(max)
}
