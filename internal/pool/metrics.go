package pool

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sync/atomic"
	"time"

	"bsoap/internal/core"
)

// Metrics is the pool's registry: lock-free atomic counters covering the
// differential-serialization outcome of every call (per-match-kind
// counts, bytes on the wire vs. bytes actually serialized), the repair
// work done (tag shifts, shifts, steals), the connection pool's health
// (checkouts, waits, dials, redials) and a call-latency histogram.
// All methods are safe for concurrent use.
type Metrics struct {
	calls  atomic.Int64
	errors atomic.Int64

	// matches indexes per-kind call counts by core.MatchKind.
	matches [5]atomic.Int64

	bytesWire       atomic.Int64
	bytesSerialized atomic.Int64

	valuesRewritten atomic.Int64
	tagShifts       atomic.Int64
	shifts          atomic.Int64
	steals          atomic.Int64

	checkouts     atomic.Int64
	checkoutWaits atomic.Int64
	dials         atomic.Int64
	redials       atomic.Int64
	dialFailures  atomic.Int64
	retries       atomic.Int64

	templateRebinds atomic.Int64
	staleRebinds    atomic.Int64
	evictions       atomic.Int64

	degradedFTS          atomic.Int64
	retryBudgetExhausted atomic.Int64

	// faultSource, when set, reports how many faults an external
	// injector (faultwire) has put on this pool's wire; snapshots read
	// it so chaos runs can watch fault counts on the live endpoint.
	faultSource atomic.Pointer[func() int64]

	lat histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// RecordCall folds one call's outcome into the registry.
func (m *Metrics) RecordCall(ci core.CallInfo, err error, d time.Duration) {
	m.calls.Add(1)
	if err != nil {
		m.errors.Add(1)
		return
	}
	if k := int(ci.Match); k >= 0 && k < len(m.matches) {
		m.matches[k].Add(1)
	}
	m.bytesWire.Add(int64(ci.Bytes))
	m.bytesSerialized.Add(int64(ci.BytesSerialized))
	m.valuesRewritten.Add(int64(ci.ValuesRewritten))
	m.tagShifts.Add(int64(ci.TagShifts))
	m.shifts.Add(int64(ci.Shifts))
	m.steals.Add(int64(ci.Steals))
	m.lat.observe(d)
	if ci.Degraded && ci.Match == core.FirstTime {
		m.degradedFTS.Add(1)
	}
}

// SetFaultSource registers a callback reporting the running fault count
// of an external injector (e.g. faultwire.Injector.Faults). Snapshots
// include its value as faults_injected. Safe for concurrent use; pass
// nil to detach.
func (m *Metrics) SetFaultSource(f func() int64) {
	if f == nil {
		m.faultSource.Store(nil)
		return
	}
	m.faultSource.Store(&f)
}

// Stats is a point-in-time snapshot of the registry, JSON-marshalable in
// the expvar style (the loadgen's -metrics endpoint serves exactly this
// object).
type Stats struct {
	Calls  int64 `json:"calls"`
	Errors int64 `json:"errors"`

	FirstTimeSends     int64 `json:"first_time_sends"`
	ContentMatches     int64 `json:"content_matches"`
	StructuralMatches  int64 `json:"structural_matches"`
	PartialMatches     int64 `json:"partial_matches"`
	FullSerializations int64 `json:"full_serializations"`

	// BytesOnWire is what left through the sink; BytesSerialized is the
	// portion the engine actually converted from memory. The difference
	// is the serialization work differential serialization avoided.
	BytesOnWire     int64 `json:"bytes_on_wire"`
	BytesSerialized int64 `json:"bytes_serialized"`
	BytesSaved      int64 `json:"bytes_saved"`

	ValuesRewritten int64 `json:"values_rewritten"`
	TagShifts       int64 `json:"tag_shifts"`
	Shifts          int64 `json:"shifts"`
	Steals          int64 `json:"steals"`

	Checkouts       int64 `json:"pool_checkouts"`
	CheckoutWaits   int64 `json:"pool_checkout_waits"`
	Dials           int64 `json:"pool_dials"`
	Redials         int64 `json:"pool_redials"`
	DialFailures    int64 `json:"pool_dial_failures"`
	Retries         int64 `json:"pool_send_retries"`
	TemplateRebinds int64 `json:"template_rebinds"`

	// TemplateStaleRebinds counts calls forced through a full value
	// rewrite because the message returned to a replica it had bounced
	// away from (whose template bytes were therefore stale).
	TemplateStaleRebinds int64 `json:"template_stale_rebinds"`
	// TemplateEvictions counts (operation, signature) replica sets
	// dropped by the per-operation LRU cap.
	TemplateEvictions int64 `json:"template_evictions"`

	// FaultsInjected is the external fault injector's running count
	// (zero unless a fault source is registered; see SetFaultSource).
	FaultsInjected int64 `json:"faults_injected"`
	// RetryBudgetExhausted counts calls that failed because repair and
	// retry work exceeded Options.RetryBudget.
	RetryBudgetExhausted int64 `json:"retry_budget_exhausted"`
	// DegradedFTS counts successful calls served as a degraded
	// first-time send because a prior failure poisoned the template.
	DegradedFTS int64 `json:"degraded_fts"`

	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP90 time.Duration `json:"latency_p90_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	LatencyMax time.Duration `json:"latency_max_ns"`
}

// WarmCalls counts calls served from an existing template (everything
// except first-time and diff-disabled sends).
func (s Stats) WarmCalls() int64 {
	return s.ContentMatches + s.StructuralMatches + s.PartialMatches
}

// Snapshot reads every counter. Counters are read individually (not as
// one atomic unit), so totals can be transiently off by in-flight calls;
// after quiescence they are exact.
func (m *Metrics) Snapshot() Stats {
	s := Stats{
		Calls:  m.calls.Load(),
		Errors: m.errors.Load(),

		FirstTimeSends:     m.matches[core.FirstTime].Load(),
		ContentMatches:     m.matches[core.ContentMatch].Load(),
		StructuralMatches:  m.matches[core.StructuralMatch].Load(),
		PartialMatches:     m.matches[core.PartialMatch].Load(),
		FullSerializations: m.matches[core.FullSerialization].Load(),

		BytesOnWire:     m.bytesWire.Load(),
		BytesSerialized: m.bytesSerialized.Load(),

		ValuesRewritten: m.valuesRewritten.Load(),
		TagShifts:       m.tagShifts.Load(),
		Shifts:          m.shifts.Load(),
		Steals:          m.steals.Load(),

		Checkouts:       m.checkouts.Load(),
		CheckoutWaits:   m.checkoutWaits.Load(),
		Dials:           m.dials.Load(),
		Redials:         m.redials.Load(),
		DialFailures:    m.dialFailures.Load(),
		Retries:         m.retries.Load(),
		TemplateRebinds: m.templateRebinds.Load(),

		TemplateStaleRebinds: m.staleRebinds.Load(),
		TemplateEvictions:    m.evictions.Load(),

		RetryBudgetExhausted: m.retryBudgetExhausted.Load(),
		DegradedFTS:          m.degradedFTS.Load(),

		LatencyP50: m.lat.quantile(0.50),
		LatencyP90: m.lat.quantile(0.90),
		LatencyP99: m.lat.quantile(0.99),
		LatencyMax: time.Duration(m.lat.max.Load()),
	}
	if f := m.faultSource.Load(); f != nil {
		s.FaultsInjected = (*f)()
	}
	s.BytesSaved = s.BytesOnWire - s.BytesSerialized
	return s
}

// WriteJSON writes the snapshot as indented JSON — the expvar-style
// payload the metrics endpoint serves.
func (m *Metrics) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// ServeHTTP makes the registry an http.Handler so a live system can
// expose match-class rates on a debug port (net/http is used only here;
// the data path stays on the hand-rolled transport).
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := m.WriteJSON(w); err != nil {
		http.Error(w, fmt.Sprintf("metrics: %v", err), http.StatusInternalServerError)
	}
}

// histogram tracks latencies in power-of-two nanosecond buckets: bucket
// i holds observations in [2^(i-1), 2^i). 40 buckets cover ~18 minutes.
type histogram struct {
	buckets [40]atomic.Int64
	count   atomic.Int64
	max     atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// quantile returns an upper bound for the q-quantile (the top of the
// bucket the quantile falls in), good to a factor of two — enough to
// tell microseconds from milliseconds in a report.
func (h *histogram) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	max := h.max.Load()
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			ub := int64(1) << uint(i)
			if ub > max {
				ub = max // never report a quantile above the observed max
			}
			return time.Duration(ub)
		}
	}
	return time.Duration(max)
}
