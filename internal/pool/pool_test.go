package pool

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"

	"bsoap/internal/core"
	"bsoap/internal/transport"
	"bsoap/internal/workload"
)

// discardDial returns a dial function handing out the shared in-process
// sink.
func discardDial(sink *transport.DiscardSink) func() (core.Sink, error) {
	return func() (core.Sink, error) { return sink, nil }
}

func newDiscardPool(t *testing.T, opts Options) (*Pool, *transport.DiscardSink) {
	t.Helper()
	sink := transport.NewDiscardSink()
	opts.Dial = discardDial(sink)
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, sink
}

func TestPoolTemplateReuseAcrossMessages(t *testing.T) {
	// One replica forces both messages onto the same engine: the second
	// message's first call must find the first message's template (warm
	// start), not pay a first-time send.
	p, _ := newDiscardPool(t, Options{Replicas: 1})

	m1 := workload.NewDoubles(64, workload.FillIntermediate)
	ci, err := p.Call(m1.Msg)
	if err != nil || ci.Match != core.FirstTime {
		t.Fatalf("call 1: %v %v, want first-time", ci.Match, err)
	}

	m2 := workload.NewDoubles(64, workload.FillIntermediate)
	ci, err = p.Call(m2.Msg)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != core.StructuralMatch {
		t.Fatalf("call 2 (new message, same structure): %v, want structural match (warm template)", ci.Match)
	}
	if got := p.Stats().TemplateRebinds; got != 1 {
		t.Fatalf("template rebinds = %d, want 1", got)
	}
}

func TestPoolContentMatchAffinity(t *testing.T) {
	p, _ := newDiscardPool(t, Options{Replicas: 1})
	d := workload.NewDoubles(64, workload.FillIntermediate)

	if ci, err := p.Call(d.Msg); err != nil || ci.Match != core.FirstTime {
		t.Fatalf("call 1: %v %v", ci.Match, err)
	}
	// Untouched resend through the pool must classify as a content
	// match, exactly as a dedicated stub would.
	if ci, err := p.Call(d.Msg); err != nil || ci.Match != core.ContentMatch {
		t.Fatalf("call 2: %v %v, want content match", ci.Match, err)
	}
	d.TouchFraction(0.25)
	if ci, err := p.Call(d.Msg); err != nil || ci.Match != core.StructuralMatch {
		t.Fatalf("call 3: %v %v, want structural match", ci.Match, err)
	}
}

func TestPoolDistinctOperationsDistinctTemplates(t *testing.T) {
	p, _ := newDiscardPool(t, Options{Replicas: 1})
	d := workload.NewDoubles(16, workload.FillIntermediate)
	i := workload.NewInts(16, workload.FillIntermediate)
	w := workload.NewMIOs(16, workload.FillIntermediate)
	if _, err := p.Call(d.Msg); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call(i.Msg); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call(w.Msg); err != nil {
		t.Fatal(err)
	}
	if got := p.Entries(); got != 3 {
		t.Fatalf("entries = %d, want 3", got)
	}
	if got := p.TemplateCount(); got != 3 {
		t.Fatalf("templates = %d, want 3", got)
	}
}

// scriptedSink fails every send once armed; pool repair must replace it.
type scriptedSink struct {
	okSends int
	sends   int
}

func (s *scriptedSink) Send(net.Buffers) error {
	s.sends++
	if s.sends > s.okSends {
		return fmt.Errorf("scripted failure on send %d", s.sends)
	}
	return nil
}

func TestPoolRetriesBrokenConnection(t *testing.T) {
	first := &scriptedSink{okSends: 2}
	dials := 0
	p, err := New(Options{
		Size:     1,
		Replicas: 1,
		Dial: func() (core.Sink, error) {
			dials++
			if dials == 1 {
				return first, nil
			}
			return transport.NewDiscardSink(), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	d := workload.NewDoubles(32, workload.FillIntermediate)
	if _, err := p.Call(d.Msg); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	d.TouchFraction(0.5)
	if _, err := p.Call(d.Msg); err != nil {
		t.Fatalf("call 2: %v", err)
	}
	// Third call hits the scripted failure, repairs the slot with a
	// fresh dial, and retries — the caller never sees the error.
	d.TouchFraction(0.5)
	ci, err := p.Call(d.Msg)
	if err != nil {
		t.Fatalf("call 3 should have been retried transparently: %v", err)
	}
	// The failed send poisoned the template, so the transparent retry is
	// a degraded first-time send — never a diff against bytes the server
	// may have half-received.
	if ci.Match != core.FirstTime || !ci.Degraded {
		t.Fatalf("retried call: match=%v degraded=%v, want degraded first-time send", ci.Match, ci.Degraded)
	}
	st := p.Stats()
	if st.Errors != 0 || st.Retries != 1 || st.Dials != 2 {
		t.Fatalf("stats after retry: errors=%d retries=%d dials=%d, want 0/1/2",
			st.Errors, st.Retries, st.Dials)
	}
	if st.DegradedFTS != 1 {
		t.Fatalf("degraded_fts=%d, want 1", st.DegradedFTS)
	}
}

func TestPoolCallAfterCloseFails(t *testing.T) {
	p, _ := newDiscardPool(t, Options{})
	p.Close()
	d := workload.NewDoubles(8, workload.FillMin)
	if _, err := p.Call(d.Msg); err == nil {
		t.Fatal("Call after Close succeeded")
	}
}

func TestPoolRequiresEndpoint(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without Addr or Dial succeeded")
	}
}

func TestMetricsJSON(t *testing.T) {
	p, _ := newDiscardPool(t, Options{Replicas: 1})
	d := workload.NewDoubles(64, workload.FillIntermediate)
	for i := 0; i < 5; i++ {
		if _, err := p.Call(d.Msg); err != nil {
			t.Fatal(err)
		}
		d.TouchFraction(0.1)
	}

	var sb strings.Builder
	if err := p.Metrics().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("endpoint output is not JSON: %v", err)
	}
	for _, key := range []string{
		"calls", "content_matches", "bytes_on_wire", "bytes_saved",
		"pool_checkouts", "latency_p99_ns",
	} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON missing %q: %s", key, sb.String())
		}
	}
	if decoded["calls"].(float64) != 5 {
		t.Errorf("calls = %v, want 5", decoded["calls"])
	}
	// 1 first-time send serialized everything; the 4 warm calls
	// rewrote at most a few values each: savings must be visible.
	if decoded["bytes_saved"].(float64) <= 0 {
		t.Errorf("bytes_saved = %v, want > 0", decoded["bytes_saved"])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 0; i < 90; i++ {
		h.observe(1000) // 1µs
	}
	for i := 0; i < 10; i++ {
		h.observe(1000000) // 1ms
	}
	if q := h.quantile(0.50); q > 2048 {
		t.Errorf("p50 = %v, want ~1µs bucket", q)
	}
	if q := h.quantile(0.99); q < 500000 {
		t.Errorf("p99 = %v, want ~1ms bucket", q)
	}
}
