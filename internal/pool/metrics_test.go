package pool

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/promtext"
)

// timeoutErr satisfies net.Error with Timeout() true — a socket deadline
// as the transport surfaces it.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestClassifyErr pins the bucket precedence: budget exhaustion wins
// over the dial/deadline cause that consumed it, the dial sentinel wins
// over the generic timeout check (dial errors can themselves be
// timeouts), and anything else is a plain send error.
func TestClassifyErr(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"budget", fmt.Errorf("pool: no budget: %w (last error: reset)", ErrRetryBudgetExhausted), errKindBudget},
		{"dial", fmt.Errorf("pool: unavailable after 4 attempts: %w: %w", ErrDialFailed, timeoutErr{}), errKindDial},
		{"budget-over-dial", fmt.Errorf("%w: %w", ErrRetryBudgetExhausted, ErrDialFailed), errKindBudget},
		{"deadline", fmt.Errorf("transport: write body: %w", timeoutErr{}), errKindDeadline},
		{"send", fmt.Errorf("transport: connection reset"), errKindSend},
	}
	for _, c := range cases {
		if got := classifyErr(c.err); got != c.want {
			t.Errorf("classifyErr(%s) = %s, want %s", c.name, errKindNames[got], errKindNames[c.want])
		}
	}
}

// TestRecordCallFailure asserts a failed call still contributes its byte
// and repair counters (a failed send may have pushed most of the
// template onto the wire) while match counts and the latency histogram
// stay success-only.
func TestRecordCallFailure(t *testing.T) {
	m := NewMetrics()
	ci := core.CallInfo{
		Match: core.PartialMatch, Bytes: 1234, WireBytes: 1234, BytesSerialized: 120,
		ValuesRewritten: 7, TagShifts: 2, Shifts: 1, Steals: 3,
	}
	m.RecordCall(ci, fmt.Errorf("wrapped: %w", timeoutErr{}), 5*time.Millisecond)

	s := m.Snapshot()
	if s.Calls != 1 || s.Errors != 1 {
		t.Fatalf("calls/errors = %d/%d, want 1/1", s.Calls, s.Errors)
	}
	if s.ErrorsByKind.Deadline != 1 {
		t.Errorf("errors_by_kind = %+v, want deadline=1", s.ErrorsByKind)
	}
	if s.BytesOnWire != 1234 || s.BytesSerialized != 120 {
		t.Errorf("bytes = %d/%d, want 1234/120 (failed calls must keep their bytes)",
			s.BytesOnWire, s.BytesSerialized)
	}
	if s.ValuesRewritten != 7 || s.TagShifts != 2 || s.Shifts != 1 || s.Steals != 3 {
		t.Errorf("repair counters = %d/%d/%d/%d, want 7/2/1/3",
			s.ValuesRewritten, s.TagShifts, s.Shifts, s.Steals)
	}
	if s.PartialMatches != 0 {
		t.Errorf("partial matches = %d, want 0 (match counts are success-only)", s.PartialMatches)
	}
	if s.LatencyCount != 0 {
		t.Errorf("latency count = %d, want 0 (histogram is success-only)", s.LatencyCount)
	}
}

// TestHistogramQuantileRank pins the ceiling rank: q=0.99 over 10
// observations must select the 10th (the lone slow one), not truncate to
// the 9th and report a bucket below the true quantile.
func TestHistogramQuantileRank(t *testing.T) {
	var h histogram
	for i := 0; i < 9; i++ {
		h.observe(1 * time.Microsecond)
	}
	h.observe(100 * time.Millisecond)

	if p99 := h.quantile(0.99); p99 < 100*time.Millisecond {
		t.Errorf("p99 = %v, want >= 100ms (rank must be ceil(0.99*10)=10)", p99)
	}
	if p50 := h.quantile(0.50); p50 > 10*time.Microsecond {
		t.Errorf("p50 = %v, want within the fast bucket", p50)
	}
	// The reported quantile is clamped to the observed max.
	if p100 := h.quantile(1.0); p100 != 100*time.Millisecond {
		t.Errorf("p100 = %v, want exactly the observed max", p100)
	}
}

// TestStatsExposesRawBuckets asserts the JSON snapshot carries the raw
// histogram (buckets + count + sum), so offline analysis is not limited
// to the three convenience quantiles.
func TestStatsExposesRawBuckets(t *testing.T) {
	m := NewMetrics()
	m.RecordCall(core.CallInfo{Match: core.ContentMatch}, nil, 3*time.Millisecond)
	m.RecordCall(core.CallInfo{Match: core.ContentMatch}, nil, 7*time.Millisecond)

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Buckets []int64 `json:"latency_buckets"`
		Count   int64   `json:"latency_count"`
		SumNs   int64   `json:"latency_sum_ns"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Count != 2 {
		t.Fatalf("latency_count = %d, want 2", got.Count)
	}
	if got.SumNs != int64(10*time.Millisecond) {
		t.Errorf("latency_sum_ns = %d, want %d", got.SumNs, int64(10*time.Millisecond))
	}
	var total int64
	for _, b := range got.Buckets {
		total += b
	}
	if total != got.Count {
		t.Errorf("bucket counts sum to %d, want latency_count %d", total, got.Count)
	}
}

// TestWritePrometheusValid runs the client exposition through the strict
// text-format parser: every family well-formed, histogram cumulative and
// +Inf-terminated.
func TestWritePrometheusValid(t *testing.T) {
	m := NewMetrics()
	m.RecordCall(core.CallInfo{Match: core.ContentMatch, Bytes: 100, BytesSerialized: 10}, nil, time.Millisecond)
	m.RecordCall(core.CallInfo{}, fmt.Errorf("boom"), time.Millisecond)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := promtext.Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, buf.Bytes())
	}
	for _, name := range []string{
		"bsoap_client_calls_total",
		"bsoap_client_call_errors_total",
		"bsoap_client_matches_total",
		"bsoap_client_call_latency_seconds_bucket",
		"bsoap_client_call_latency_seconds_count",
	} {
		if !st.Names[name] {
			t.Errorf("exposition missing %s", name)
		}
	}
}
