package pool

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/trace"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

// ErrNotPipelined is returned by CallAsync on pools configured without a
// pipeline (Options.PipelineDepth == 0).
var ErrNotPipelined = fmt.Errorf("pool: CallAsync requires Options.PipelineDepth > 0")

// Future is the completion handle of a pipelined call: the request is on
// the wire (serialized through the shared template and submitted), the
// template replica is already released, and the response has not
// necessarily arrived yet. Every Future resolves — a broken connection
// fails its in-flight futures rather than leaving a waiter blocked.
//
// A Future is safe for concurrent use; Wait may be called any number of
// times and returns the same outcome.
type Future struct {
	p     *Pool
	pd    *transport.Pending
	r     *engine
	m     *wire.Message
	op    string
	sig   string
	ci    core.CallInfo
	span  uint64
	start time.Time
	// submitted is when SendAsync returned: the request is fully on the
	// wire (or buffered behind it), so submitted→resolve is the call's
	// wire stage.
	submitted time.Time

	once sync.Once
	err  error
}

// Done returns a channel closed once the call's response (or the
// pipeline's failure) has arrived; Wait then returns without blocking.
func (f *Future) Done() <-chan struct{} { return f.pd.Done() }

// Wait blocks until the call's response has been read in order off the
// connection and returns the call's serialization info and outcome. On a
// response failure (transport error, non-2xx status, pipeline torn down)
// the template that produced the request is marked suspect — the bytes
// left this client but their delivery is unconfirmed, so the structure's
// next call degrades to a full first-time send instead of diffing
// against them. Response failures are not retried: requests behind this
// one are already on the wire, so a replay would arrive out of order.
func (f *Future) Wait() (core.CallInfo, error) {
	f.once.Do(f.resolve)
	return f.ci, f.err
}

func (f *Future) resolve() {
	err := f.pd.Wait()
	now := f.p.senders.now()
	elapsed := now.Sub(f.start)
	if errors.Is(err, wire.ErrDeltaResync) {
		// The server rejected this call's patch frame and demands a full
		// body. The response was read in order and the connection is
		// healthy, so this is a protocol state mismatch, not a delivery
		// failure: the template is NOT suspect (its bytes match what the
		// diff computed — the server just lost its base), and the call is
		// transparently retried as a full send. The pipeline's read loop
		// already cleared the sender's sync map, so the retry cannot
		// encode another patch; a full send can never draw a second
		// resync, which is what bounds the recursion.
		f.p.metrics.RecordDeltaResync(f.ci.WireBytes)
		if f.span != 0 {
			trace.Rec(f.span, trace.KindDeltaResync, 0, int64(f.ci.WireBytes), 0)
		}
		retry, rerr := f.p.CallAsync(f.m)
		if rerr != nil {
			// The resubmit itself failed; CallAsync recorded that failure,
			// so this future just adopts it.
			f.ci, f.err = core.CallInfo{}, rerr
			return
		}
		ci, werr := retry.Wait()
		ci.DeltaResync = true
		f.ci, f.err = ci, werr
		return
	}
	if err != nil {
		f.p.store.markSuspect(f.r, f.op, f.sig, f.span)
		err = fmt.Errorf("pool: pipelined call: %w", err)
	}
	if err == nil {
		wireNs := now.Sub(f.submitted).Nanoseconds()
		f.p.metrics.Stages.Observe(trace.StageWire, wireNs, f.span)
		if f.span != 0 {
			trace.Rec(f.span, trace.KindStage, int64(trace.StageWire), wireNs, 0)
		}
	}
	if f.span != 0 {
		ok := int64(1)
		if err != nil {
			ok = 0
		}
		trace.Rec(f.span, trace.KindAsyncComplete, ok, int64(elapsed), 0)
	}
	f.p.metrics.RecordCall(f.ci, err, elapsed)
	if f.span != 0 && err == nil {
		trace.ObserveCall(f.span, int64(elapsed))
	}
	f.err = err
}

// submitSink adapts Pipeline.SendAsync to the engine's Sink: the request
// write happens here, under the replica lock (template bytes are only
// stable while it is held), while the response is left to the Future.
type submitSink struct {
	pl *transport.Pipeline
	pd *transport.Pending
	// ns accumulates time spent inside SendAsync — the pipeline-queue
	// stage (depth-stall wait plus the request write) of the call's
	// latency attribution.
	ns int64
}

func (ss *submitSink) Send(bufs net.Buffers) error {
	start := time.Now()
	pd, err := ss.pl.SendAsync(bufs)
	ss.ns += time.Since(start).Nanoseconds()
	ss.pd = pd
	return err
}

// submitSink also implements core.DeltaSink, so pipelined pools
// negotiate and send patch frames exactly like serial ones: the epoch
// view lives on the underlying Sender (shared with the pipeline's read
// loop), and the delta-annotated writes go through the pipeline to keep
// wire order equal to completion order.

func (ss *submitSink) DeltaEpoch(tid uint64) (uint64, bool) {
	return ss.pl.Sender().DeltaEpoch(tid)
}

func (ss *submitSink) SendFull(bufs net.Buffers, tid, epoch uint64) error {
	start := time.Now()
	pd, err := ss.pl.SendFullAsync(bufs, tid, epoch)
	ss.ns += time.Since(start).Nanoseconds()
	ss.pd = pd
	return err
}

func (ss *submitSink) SendDelta(bufs net.Buffers, tid, newEpoch uint64) error {
	start := time.Now()
	pd, err := ss.pl.SendDeltaAsync(bufs, tid, newEpoch)
	ss.ns += time.Since(start).Nanoseconds()
	ss.pd = pd
	return err
}

// newPipeline wraps a freshly ensured sender for pipelined use, wiring
// the pool's gauges into the pipeline's completion hooks.
func (p *Pool) newPipeline(ts *transport.Sender) *transport.Pipeline {
	pl := transport.NewPipeline(ts, p.opts.PipelineDepth)
	pl.OnStall = func() { p.metrics.pipelineStalls.Add(1) }
	pl.OnComplete = func() { p.metrics.futuresPending.Add(-1) }
	return pl
}

// ensurePipeline hands back a healthy pipeline for the slot, tearing a
// broken one down (its reader goroutine shares the sender's buffered
// reader, which Redial resets — the old pipeline must fully wind down,
// failing any still-queued pendings, before the connection is repaired
// underneath it) and building a fresh one over the repaired connection.
func (p *Pool) ensurePipeline(ps *pooledSender, deadline time.Time) (*transport.Pipeline, error) {
	if ps.pipeline != nil && (ps.broken || ps.pipeline.Broken()) {
		_ = ps.pipeline.Close()
		ps.pipeline = nil
		ps.broken = true // the connection was closed with it: ensure redials
	}
	sink, err := p.senders.ensure(ps, deadline)
	if err != nil {
		return nil, err
	}
	ts, ok := sink.(*transport.Sender)
	if !ok {
		return nil, fmt.Errorf("pool: pipelining requires a dialed transport (Options.Addr, not Options.Dial)")
	}
	if ps.pipeline != nil && ps.pipeline.Sender() != ts {
		// ensure swapped the slot's sink out from under an old pipeline.
		_ = ps.pipeline.Close()
		ps.pipeline = nil
	}
	if ps.pipeline == nil {
		ps.pipeline = p.newPipeline(ts)
	}
	return ps.pipeline, nil
}

// CallAsync serializes and submits m through a pooled pipelined
// connection and returns a Future resolving when the in-order response
// arrives. The template replica is held only across classify + diff +
// write — it is released before the response returns, so a hot
// operation's replica is never pinned for a round trip (the point of
// pipelining differential sends: serialization overlaps transmission).
//
// Submit-side failures (dial, write) are repaired and retried exactly
// like Pool.Call, within MaxRetries and the RetryBudget; once the
// request is on the wire the call's failure mode moves to the Future
// (see Future.Wait). The per-message confinement contract extends to
// futures: a message must not be mutated or resubmitted until its
// previous call's Future has resolved.
//
// Pipelined calls always read one response per request, regardless of
// Sender.ExpectResponse — HTTP pipelining needs the response stream to
// stay in lockstep — so the server must respond (bsoap-server does in
// every SOAP mode).
func (p *Pool) CallAsync(m *wire.Message) (*Future, error) {
	if p.opts.PipelineDepth <= 0 {
		return nil, ErrNotPipelined
	}
	start := p.senders.now()
	deadline := start.Add(p.opts.RetryBudget)
	var span uint64
	if trace.Enabled() {
		span = trace.BeginSpan()
	}
	ps, waited, err := p.senders.checkout()
	if err != nil {
		return nil, err
	}
	ckNs := p.senders.now().Sub(start).Nanoseconds()
	p.metrics.Stages.Observe(trace.StageCheckout, ckNs, span)
	if span != 0 {
		w := int64(0)
		if waited {
			w = 1
		}
		trace.Rec(span, trace.KindPoolCheckout, w, 0, 0)
		trace.Rec(span, trace.KindStage, int64(trace.StageCheckout), ckNs, 0)
	}

	var (
		fut *Future
		ci  core.CallInfo
	)
	for attempt := 0; ; attempt++ {
		var pl *transport.Pipeline
		if span != 0 {
			if ts, ok := ps.sink.(*transport.Sender); ok {
				ts.TraceSpan = span
			}
		}
		pl, err = p.ensurePipeline(ps, deadline)
		if err != nil {
			break
		}
		if span != 0 {
			pl.Sender().TraceSpan = span
		}
		ss := submitSink{pl: pl}
		r := p.store.acquire(m, span)
		r.sink.s = &ss
		if span != 0 {
			r.stub.SetTraceSpan(span)
		}
		p.metrics.futuresPending.Add(1)
		callStart := p.senders.now()
		ci, err = r.stub.Call(m)
		callNs := p.senders.now().Sub(callStart).Nanoseconds()
		op, sig := m.Operation(), m.Signature()
		p.store.release(r)
		if err == nil {
			submitted := p.senders.now()
			// Attribute the submit: SendAsync time (stall + write) is the
			// pipeline-queue stage, patch-frame assembly is delta encode,
			// the rest of Call is serialization.
			p.metrics.Stages.Observe(trace.StagePipelineQueue, ss.ns, span)
			p.metrics.Stages.Observe(trace.StageSerialize, callNs-ss.ns-ci.DeltaEncodeNs, span)
			if ci.DeltaEncodeNs > 0 {
				p.metrics.Stages.Observe(trace.StageDeltaEncode, ci.DeltaEncodeNs, span)
			}
			if span != 0 {
				trace.Rec(span, trace.KindStage, int64(trace.StagePipelineQueue), ss.ns, 0)
				trace.Rec(span, trace.KindStage, int64(trace.StageSerialize), callNs-ss.ns-ci.DeltaEncodeNs, 0)
				if ci.DeltaEncodeNs > 0 {
					trace.Rec(span, trace.KindStage, int64(trace.StageDeltaEncode), ci.DeltaEncodeNs, 0)
				}
			}
			fut = &Future{p: p, pd: ss.pd, r: r, m: m, op: op, sig: sig, ci: ci, span: span, start: start, submitted: submitted}
			p.metrics.asyncCalls.Add(1)
			if span != 0 {
				trace.Rec(span, trace.KindAsyncSubmit, trace.OpID(op), int64(pl.InFlight()), 0)
			}
			break
		}
		p.metrics.futuresPending.Add(-1)
		ps.broken = true
		if attempt >= p.opts.MaxRetries {
			break
		}
		if !p.senders.now().Before(deadline) {
			err = fmt.Errorf("pool: send failed and no budget to retry: %w (last error: %v)",
				ErrRetryBudgetExhausted, err)
			break
		}
		p.metrics.retries.Add(1)
		if span != 0 {
			trace.Rec(span, trace.KindPoolRetry, int64(attempt+1), 0, 0)
		}
	}
	p.senders.checkin(ps)
	if err != nil {
		if errors.Is(err, ErrRetryBudgetExhausted) {
			p.metrics.retryBudgetExhausted.Add(1)
		}
		if span != 0 && ci.Span == 0 {
			trace.Rec(span, trace.KindCallErr, -1, 0, 0)
		}
		p.metrics.RecordCall(ci, err, p.senders.now().Sub(start))
		return nil, err
	}
	return fut, nil
}
