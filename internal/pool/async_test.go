package pool

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/transport"
	"bsoap/internal/workload"
)

// newPipelinedPool dials a pipelined pool at a responding ack server.
func newPipelinedPool(t *testing.T, depth int, opts Options) (*Pool, *transport.Server) {
	t.Helper()
	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{Respond: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	opts.Addr = srv.Addr()
	opts.PipelineDepth = depth
	opts.Sender.ReadTimeout = 5 * time.Second
	opts.Sender.WriteTimeout = 5 * time.Second
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, srv
}

func TestCallAsyncRequiresPipelineDepth(t *testing.T) {
	p, _ := newDiscardPool(t, Options{})
	d := workload.NewDoubles(8, workload.FillIntermediate)
	if _, err := p.CallAsync(d.Msg); !errors.Is(err, ErrNotPipelined) {
		t.Fatalf("err = %v, want ErrNotPipelined", err)
	}
}

func TestNewRejectsPipelineOverCustomDial(t *testing.T) {
	sink := transport.NewDiscardSink()
	_, err := New(Options{Dial: discardDial(sink), PipelineDepth: 4})
	if err == nil {
		t.Fatal("New accepted PipelineDepth with a custom Dial")
	}
}

func TestCallAsyncWarmPath(t *testing.T) {
	p, srv := newPipelinedPool(t, 4, Options{Size: 1, Replicas: 1})
	d := workload.NewDoubles(64, workload.FillIntermediate)

	f, err := p.CallAsync(d.Msg)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := f.Wait()
	if err != nil || ci.Match != core.FirstTime {
		t.Fatalf("call 1: %v %v, want first-time", ci.Match, err)
	}

	// Warm calls: mutate → wait each future before touching the message
	// again (per-message confinement extends to futures).
	for i := 0; i < 8; i++ {
		d.TouchFraction(0.25)
		f, err := p.CallAsync(d.Msg)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if ci, err = f.Wait(); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if ci.Match != core.StructuralMatch && ci.Match != core.PartialMatch {
			t.Fatalf("warm call %d classified %v", i, ci.Match)
		}
	}

	s := p.Stats()
	if s.AsyncCalls != 9 {
		t.Fatalf("async_calls = %d, want 9", s.AsyncCalls)
	}
	if s.PipelineDepth != 4 {
		t.Fatalf("pipeline_depth = %d, want 4", s.PipelineDepth)
	}
	if s.FuturesPending != 0 {
		t.Fatalf("futures_pending = %d after quiescence", s.FuturesPending)
	}
	if s.Calls != 9 || s.Errors != 0 {
		t.Fatalf("calls=%d errors=%d", s.Calls, s.Errors)
	}
	if srv.Requests() != 9 {
		t.Fatalf("server saw %d requests", srv.Requests())
	}
}

func TestCallRoutesThroughPipeline(t *testing.T) {
	p, _ := newPipelinedPool(t, 2, Options{Size: 1})
	d := workload.NewDoubles(32, workload.FillIntermediate)
	for i := 0; i < 3; i++ {
		if _, err := p.Call(d.Msg); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		d.TouchFraction(0.5)
	}
	if s := p.Stats(); s.AsyncCalls != 3 || s.Calls != 3 {
		t.Fatalf("async_calls=%d calls=%d, want 3/3 (Call must route through the pipeline)", s.AsyncCalls, s.Calls)
	}
}

func TestCallAsyncManyInFlight(t *testing.T) {
	p, _ := newPipelinedPool(t, 8, Options{Size: 1, Replicas: 4})
	// Distinct messages may have concurrent futures; keep a window of 8.
	msgs := make([]*workload.Doubles, 8)
	for i := range msgs {
		msgs[i] = workload.NewDoubles(16+4*i, workload.FillIntermediate)
	}
	futures := make([]*Future, len(msgs))
	for round := 0; round < 20; round++ {
		for i, m := range msgs {
			if futures[i] != nil {
				if _, err := futures[i].Wait(); err != nil {
					t.Fatalf("round %d msg %d: %v", round, i, err)
				}
				m.TouchFraction(0.3)
			}
			f, err := p.CallAsync(m.Msg)
			if err != nil {
				t.Fatalf("round %d msg %d submit: %v", round, i, err)
			}
			futures[i] = f
		}
	}
	for _, f := range futures {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Stats(); s.FuturesPending != 0 || s.Errors != 0 {
		t.Fatalf("pending=%d errors=%d after drain", s.FuturesPending, s.Errors)
	}
}

// flakyAckServer answers requests with 202s; its first connection
// answers exactly one request, reads one more, then hangs up without
// answering it. Later connections answer everything.
func flakyAckServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var conns atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			first := conns.Add(1) == 1
			go func(c net.Conn, first bool) {
				defer c.Close()
				br := bufio.NewReader(c)
				for n := 0; ; n++ {
					if _, err := transport.ReadRequest(br); err != nil {
						return
					}
					if first && n == 1 {
						return // swallow the second request: its response never comes
					}
					if err := transport.WriteResponse(c, 202, "", nil); err != nil {
						return
					}
				}
			}(c, first)
		}
	}()
	return ln.Addr().String()
}

func TestResponseFailureMarksTemplateSuspect(t *testing.T) {
	addr := flakyAckServer(t)
	p, err := New(Options{
		Addr: addr, Size: 1, Replicas: 1, PipelineDepth: 4,
		Sender: transport.SenderOptions{ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	d := workload.NewDoubles(64, workload.FillIntermediate)
	f1, err := p.CallAsync(d.Msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Wait(); err != nil {
		t.Fatalf("call 1: %v", err)
	}

	d.TouchFraction(0.25)
	f2, err := p.CallAsync(d.Msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Wait(); err == nil {
		t.Fatal("call 2 resolved nil; the server swallowed its response")
	}

	// The template is suspect: the next call must rebuild from live
	// values (degraded first-time send) over a repaired connection.
	d.TouchFraction(0.25)
	ci, err := p.Call(d.Msg)
	if err != nil {
		t.Fatalf("call 3: %v", err)
	}
	if ci.Match != core.FirstTime || !ci.Degraded {
		t.Fatalf("call 3 classified %v degraded=%v, want degraded first-time", ci.Match, ci.Degraded)
	}
	if got := p.Stats().DegradedFTS; got != 1 {
		t.Fatalf("degraded_fts = %d, want 1", got)
	}
}

func TestPoolCloseFailsPendingFutures(t *testing.T) {
	// A discard server that never responds leaves futures in flight
	// forever; Close must resolve them with an error, not strand them.
	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := New(Options{Addr: srv.Addr(), Size: 1, PipelineDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := workload.NewDoubles(16, workload.FillIntermediate)
	f, err := p.CallAsync(d.Msg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := f.Wait()
		done <- err
	}()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending future resolved nil across pool Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending future never resolved after pool Close")
	}
	if got := p.Stats().FuturesPending; got != 0 {
		t.Fatalf("futures_pending = %d after Close", got)
	}
}
