package pool

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/transport"
)

// errPoolClosed is returned by checkout after Close.
var errPoolClosed = fmt.Errorf("pool: closed")

// ErrDialFailed is wrapped by Call errors whose cause was never getting
// a healthy connection (all dial/redial attempts failed). Metrics use it
// to separate dial failures from send and deadline errors.
var ErrDialFailed = fmt.Errorf("pool: dial failed")

// pooledSender is one slot of the connection pool: an (initially
// undialed) sink plus its health state. It is owned exclusively by the
// goroutine that checked it out.
type pooledSender struct {
	sink   core.Sink
	broken bool
	// pipeline wraps sink for the async call path (nil on serial pools
	// and until the slot's first CallAsync). It must be closed before
	// the sink is redialed or closed: its reader goroutine shares the
	// sender's buffered reader, and closing fails any pending futures.
	pipeline *transport.Pipeline
}

// senderPool is a bounded set of connections with checkout/checkin
// semantics. Slots start undialed; the first checkout that uses a slot
// dials it (lazy dial). A send error marks the slot broken, and the
// next use repairs it — Sender.Redial for dialed transports, close +
// fresh dial otherwise — under exponential backoff with jitter.
type senderPool struct {
	slots chan *pooledSender
	dial  func() (core.Sink, error)

	size         int
	dialAttempts int
	backoffBase  time.Duration
	backoffMax   time.Duration

	// now and sleep are the pool's clock, injectable so backoff growth,
	// jitter bounds and the retry budget are testable without real
	// sleeps. Defaults: time.Now / time.Sleep.
	now   func() time.Time
	sleep func(time.Duration)

	metrics *Metrics

	mu     sync.Mutex
	closed bool

	// rng drives backoff jitter; guarded by rngMu (math/rand's global
	// source would serialize all pools).
	rngMu sync.Mutex
	rng   *rand.Rand
}

func newSenderPool(size int, dial func() (core.Sink, error), opts Options, m *Metrics) *senderPool {
	sp := &senderPool{
		slots:        make(chan *pooledSender, size),
		dial:         dial,
		size:         size,
		dialAttempts: opts.DialAttempts,
		backoffBase:  opts.RedialBackoff,
		backoffMax:   opts.RedialBackoffMax,
		now:          time.Now,
		sleep:        time.Sleep,
		metrics:      m,
		rng:          rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for i := 0; i < size; i++ {
		sp.slots <- &pooledSender{}
	}
	return sp
}

// checkout removes a slot from the pool, blocking when all slots are in
// use (the blocked case is counted as a checkout wait and reported via
// waited, which the flight recorder tags the checkout event with).
func (sp *senderPool) checkout() (ps *pooledSender, waited bool, err error) {
	sp.mu.Lock()
	if sp.closed {
		sp.mu.Unlock()
		return nil, false, errPoolClosed
	}
	sp.mu.Unlock()

	sp.metrics.checkouts.Add(1)
	select {
	case ps, ok := <-sp.slots:
		if !ok {
			return nil, false, errPoolClosed
		}
		return ps, false, nil
	default:
	}
	sp.metrics.checkoutWaits.Add(1)
	ps, ok := <-sp.slots
	if !ok {
		return nil, true, errPoolClosed
	}
	return ps, true, nil
}

// checkin returns a slot. The channel has capacity for every slot, so
// this never blocks; after Close the slot's connection is torn down
// instead.
func (sp *senderPool) checkin(ps *pooledSender) {
	sp.mu.Lock()
	if sp.closed {
		sp.mu.Unlock()
		teardown(ps)
		return
	}
	sp.slots <- ps
	sp.mu.Unlock()
}

// ensure hands back a healthy sink for the slot, lazily dialing or
// repairing it with backoff, never sleeping past deadline (the Call's
// retry budget). It runs on the slot owner's goroutine, and Pool.Call
// invokes it before acquiring a template replica so the backoff sleeps
// here only ever hold the pool slot — never a replica lock that other
// callers of a hot operation could be queued on.
func (sp *senderPool) ensure(ps *pooledSender, deadline time.Time) (core.Sink, error) {
	if ps.sink != nil && !ps.broken {
		return ps.sink, nil
	}
	var lastErr error
	for attempt := 0; attempt < sp.dialAttempts; attempt++ {
		if attempt > 0 {
			d := sp.backoff(attempt)
			if sp.now().Add(d).After(deadline) {
				return nil, fmt.Errorf("pool: connection unavailable: %w (after %d attempts, last error: %v)",
					ErrRetryBudgetExhausted, attempt, lastErr)
			}
			sp.sleep(d)
		}
		if ps.broken {
			if s, ok := ps.sink.(*transport.Sender); ok {
				err := s.Redial()
				if err == nil {
					ps.broken = false
					sp.metrics.redials.Add(1)
					return ps.sink, nil
				}
				sp.metrics.dialFailures.Add(1)
				if !errors.Is(err, transport.ErrNotDialed) {
					lastErr = err
					continue
				}
				// Wrapped connection with no redial address: fall
				// through to a fresh dial.
			}
			closeSink(ps.sink)
			ps.sink = nil
			ps.broken = false
		}
		if ps.sink == nil {
			s, err := sp.dial()
			if err != nil {
				lastErr = err
				sp.metrics.dialFailures.Add(1)
				continue
			}
			ps.sink = s
			sp.metrics.dials.Add(1)
		}
		return ps.sink, nil
	}
	return nil, fmt.Errorf("pool: connection unavailable after %d attempts: %w: %w", sp.dialAttempts, ErrDialFailed, lastErr)
}

// backoff computes the pre-attempt delay: base doubled per attempt,
// capped, with up to 50% random jitter so redial storms decorrelate.
func (sp *senderPool) backoff(attempt int) time.Duration {
	d := sp.backoffBase << uint(attempt-1)
	if d > sp.backoffMax || d <= 0 {
		d = sp.backoffMax
	}
	sp.rngMu.Lock()
	j := time.Duration(sp.rng.Int63n(int64(d)/2 + 1))
	sp.rngMu.Unlock()
	return d + j
}

// close tears the pool down: no new checkouts, every idle connection
// closed, and the slot channel closed so blocked checkouts return
// errPoolClosed. Slots still checked out are closed on checkin.
func (sp *senderPool) close() {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return
	}
	sp.closed = true
	for {
		select {
		case ps := <-sp.slots:
			teardown(ps)
		default:
			close(sp.slots)
			return
		}
	}
}

// teardown closes a slot's pipeline (failing its pending futures and
// waiting for the reader goroutine) before the underlying connection.
func teardown(ps *pooledSender) {
	if ps.pipeline != nil {
		_ = ps.pipeline.Close()
		ps.pipeline = nil
	}
	closeSink(ps.sink)
}

func closeSink(s core.Sink) {
	if c, ok := s.(io.Closer); ok {
		_ = c.Close()
	}
}
