package pool

import (
	"bytes"
	"testing"

	"bsoap/internal/core"
	"bsoap/internal/transport"
	"bsoap/internal/workload"
)

// TestReplicaBounceForcesRewrite is the regression test for the stale
// payload bug: dirty bits live on the message but template bytes live
// per replica, so a message whose call bounces to a fallback replica
// (preferred one busy) and then returns must not be classified as a
// content match — the original replica's bytes predate the bounce.
func TestReplicaBounceForcesRewrite(t *testing.T) {
	st := NewShardedStore(1, 2, core.Config{}, nil)
	d := workload.NewDoubles(8, workload.FillIntermediate)
	m := d.Msg

	call := func() (core.CallInfo, []byte, *replica) {
		t.Helper()
		r := st.acquire(m, 0)
		var buf bytes.Buffer
		r.sink.s = transport.WriterSink{W: &buf}
		ci, err := r.stub.Call(m)
		st.release(r)
		if err != nil {
			t.Fatal(err)
		}
		return ci, buf.Bytes(), r
	}

	ci1, b1, r1 := call()
	if ci1.Match != core.FirstTime {
		t.Fatalf("call 1 match = %v, want first-time", ci1.Match)
	}

	// Call 2 carries new values and is forced onto a second replica by
	// holding the first one busy (the TryLock fallback path).
	d.SetAll(4242.5)
	r1.mu.Lock()
	_, _, r2 := call()
	r1.mu.Unlock()
	if r2 == r1 {
		t.Fatal("call 2 was expected to bounce to a second replica")
	}

	// Call 3 is untouched and returns to the first replica (the second
	// is held busy). Its template bytes still hold call 1's values, so
	// the call must be forced through a full rewrite, not resend them.
	r2.mu.Lock()
	ci3, b3, r3 := call()
	r2.mu.Unlock()
	if r3 != r1 {
		t.Fatal("call 3 was expected to return to the first replica")
	}
	if ci3.Match == core.ContentMatch {
		t.Fatalf("call 3 classified as content match on a stale template")
	}
	if bytes.Equal(b3, b1) {
		t.Fatal("call 3 resent call 1's stale payload")
	}
	if !bytes.Contains(b3, []byte("4242.5")) {
		t.Fatalf("call 3 payload missing current values:\n%s", b3)
	}
	if got := st.metrics.staleRebinds.Load(); got != 1 {
		t.Fatalf("stale rebinds = %d, want 1", got)
	}
}

// TestShardedStoreEvictsColdSignatures proves the per-operation LRU cap:
// cold (operation, signature) replica sets are dropped, recently used
// ones stay warm, so the store cannot grow without bound under varying
// message shapes.
func TestShardedStoreEvictsColdSignatures(t *testing.T) {
	p, _ := newDiscardPool(t, Options{
		Replicas: 1,
		Config:   core.Config{MaxTemplatesPerOp: 2},
	})

	// Each array length is a distinct structural signature of the same
	// operation.
	dA := workload.NewDoubles(4, workload.FillIntermediate)
	dB := workload.NewDoubles(5, workload.FillIntermediate)
	dC := workload.NewDoubles(6, workload.FillIntermediate)

	for _, m := range []*workload.Doubles{dA, dB} {
		if ci, err := p.Call(m.Msg); err != nil || ci.Match != core.FirstTime {
			t.Fatalf("warmup: %v %v", ci.Match, err)
		}
	}
	// Touch A so B becomes the LRU tail, then push C in: B is evicted.
	if ci, err := p.Call(dA.Msg); err != nil || ci.Match != core.ContentMatch {
		t.Fatalf("recency touch: %v %v", ci.Match, err)
	}
	if ci, err := p.Call(dC.Msg); err != nil || ci.Match != core.FirstTime {
		t.Fatalf("insert C: %v %v", ci.Match, err)
	}

	if got := p.Entries(); got != 2 {
		t.Fatalf("entries = %d, want 2 (per-op cap)", got)
	}
	if ci, err := p.Call(dA.Msg); err != nil || ci.Match == core.FirstTime {
		t.Fatalf("A went cold despite recency: %v %v", ci.Match, err)
	}
	if ci, err := p.Call(dB.Msg); err != nil || ci.Match != core.FirstTime {
		t.Fatalf("B expected to have been evicted: %v %v", ci.Match, err)
	}
	if got := p.Stats().TemplateEvictions; got != 2 {
		t.Fatalf("evictions = %d, want 2 (B then C)", got)
	}
}
