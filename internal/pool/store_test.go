package pool

import (
	"bytes"
	"testing"

	"bsoap/internal/core"
	"bsoap/internal/transport"
	"bsoap/internal/workload"
)

// TestReplicaBounceForcesRewrite is the regression test for the stale
// payload bug: dirty bits live on the message but template bytes live
// per replica, so a message whose call bounces to a fallback replica
// (preferred one busy) and then returns must not be classified as a
// content match — the original replica's bytes predate the bounce.
func TestReplicaBounceForcesRewrite(t *testing.T) {
	st := NewShardedStore(1, 2, 0, core.Config{}, nil)
	d := workload.NewDoubles(8, workload.FillIntermediate)
	m := d.Msg

	call := func() (core.CallInfo, []byte, *engine) {
		t.Helper()
		r := st.acquire(m, 0)
		var buf bytes.Buffer
		r.sink.s = transport.WriterSink{W: &buf}
		ci, err := r.stub.Call(m)
		st.release(r)
		if err != nil {
			t.Fatal(err)
		}
		return ci, buf.Bytes(), r
	}

	ci1, b1, r1 := call()
	if ci1.Match != core.FirstTime {
		t.Fatalf("call 1 match = %v, want first-time", ci1.Match)
	}

	// Call 2 carries new values and is forced onto a second replica by
	// holding the first one busy (the TryLock fallback path).
	d.SetAll(4242.5)
	r1.mu.Lock()
	_, _, r2 := call()
	r1.mu.Unlock()
	if r2 == r1 {
		t.Fatal("call 2 was expected to bounce to a second replica")
	}

	// Call 3 is untouched and returns to the first replica (the second
	// is held busy). Its template bytes still hold call 1's values, so
	// the call must be forced through a full rewrite, not resend them.
	r2.mu.Lock()
	ci3, b3, r3 := call()
	r2.mu.Unlock()
	if r3 != r1 {
		t.Fatal("call 3 was expected to return to the first replica")
	}
	if ci3.Match == core.ContentMatch {
		t.Fatalf("call 3 classified as content match on a stale template")
	}
	if bytes.Equal(b3, b1) {
		t.Fatal("call 3 resent call 1's stale payload")
	}
	if !bytes.Contains(b3, []byte("4242.5")) {
		t.Fatalf("call 3 payload missing current values:\n%s", b3)
	}
	if got := st.metrics.staleRebinds.Load(); got != 1 {
		t.Fatalf("stale rebinds = %d, want 1", got)
	}
}

// TestShardedStoreEvictsColdSignatures proves the per-operation LRU cap:
// cold (operation, signature) replica sets are dropped, recently used
// ones stay warm, so the store cannot grow without bound under varying
// message shapes.
func TestShardedStoreEvictsColdSignatures(t *testing.T) {
	p, _ := newDiscardPool(t, Options{
		Replicas: 1,
		Config:   core.Config{MaxTemplatesPerOp: 2},
	})

	// Each array length is a distinct structural signature of the same
	// operation.
	dA := workload.NewDoubles(4, workload.FillIntermediate)
	dB := workload.NewDoubles(5, workload.FillIntermediate)
	dC := workload.NewDoubles(6, workload.FillIntermediate)

	for _, m := range []*workload.Doubles{dA, dB} {
		if ci, err := p.Call(m.Msg); err != nil || ci.Match != core.FirstTime {
			t.Fatalf("warmup: %v %v", ci.Match, err)
		}
	}
	// Touch A so B becomes the LRU tail, then push C in: B is evicted.
	if ci, err := p.Call(dA.Msg); err != nil || ci.Match != core.ContentMatch {
		t.Fatalf("recency touch: %v %v", ci.Match, err)
	}
	if ci, err := p.Call(dC.Msg); err != nil || ci.Match != core.FirstTime {
		t.Fatalf("insert C: %v %v", ci.Match, err)
	}

	if got := p.Entries(); got != 2 {
		t.Fatalf("entries = %d, want 2 (per-op cap)", got)
	}
	if ci, err := p.Call(dA.Msg); err != nil || ci.Match == core.FirstTime {
		t.Fatalf("A went cold despite recency: %v %v", ci.Match, err)
	}
	if ci, err := p.Call(dB.Msg); err != nil || ci.Match != core.FirstTime {
		t.Fatalf("B expected to have been evicted: %v %v", ci.Match, err)
	}
	if got := p.Stats().TemplateEvictions; got != 2 {
		t.Fatalf("evictions = %d, want 2 (B then C)", got)
	}
}

// TestBudgetEvictionDegradesToFTS is the client half of the
// eviction-under-budget-pressure contract: a replica set evicted by the
// byte budget is rebuilt from scratch on its message's next call — a
// degraded first-time send carrying the message's current values, never
// a diff against released template bytes.
func TestBudgetEvictionDegradesToFTS(t *testing.T) {
	// A 1-byte budget admits each entry only by self-exemption and
	// condemns everything else at every release.
	st := NewShardedStore(1, 1, 1, core.Config{}, nil)
	dA := workload.NewDoubles(8, workload.FillIntermediate)
	dB := workload.NewDoubles(9, workload.FillIntermediate)

	call := func(d *workload.Doubles) (core.CallInfo, []byte) {
		t.Helper()
		r := st.acquire(d.Msg, 0)
		var buf bytes.Buffer
		r.sink.s = transport.WriterSink{W: &buf}
		ci, err := r.stub.Call(d.Msg)
		st.release(r)
		if err != nil {
			t.Fatal(err)
		}
		return ci, buf.Bytes()
	}

	if ci, _ := call(dA); ci.Match != core.FirstTime {
		t.Fatalf("call A1 match = %v, want first-time", ci.Match)
	}
	if ci, _ := call(dB); ci.Match != core.FirstTime {
		t.Fatalf("call B match = %v, want first-time", ci.Match)
	}
	if got := st.metrics.budgetEvictions.Load(); got == 0 {
		t.Fatal("expected a budget eviction after B's release")
	}
	if c := st.reg.Counters(); c.Pending != 0 {
		t.Fatalf("pending releases = %d, want 0 (no call in flight)", c.Pending)
	}

	// A's entry is gone and its arenas released: the next call must be a
	// fresh first-time send with A's current values, not a diff.
	dA.SetAll(777.25)
	ci, b := call(dA)
	if ci.Match != core.FirstTime {
		t.Fatalf("call A2 match = %v, want degraded first-time", ci.Match)
	}
	if !bytes.Contains(b, []byte("777.25")) {
		t.Fatalf("call A2 payload missing current values:\n%s", b)
	}
}

// TestBudgetEvictionWithInFlightCall condemns an entry while a call
// holds one of its engines: the call must finish serializing against
// live arenas (under -tags membufpoison a use-after-release would put
// 0xDB poison bytes on the wire), and the arenas are released only when
// the in-flight reference returns.
func TestBudgetEvictionWithInFlightCall(t *testing.T) {
	st := NewShardedStore(1, 1, 1, core.Config{}, nil)
	dA := workload.NewDoubles(8, workload.FillIntermediate)
	dB := workload.NewDoubles(9, workload.FillIntermediate)

	call := func(d *workload.Doubles) core.CallInfo {
		t.Helper()
		r := st.acquire(d.Msg, 0)
		var buf bytes.Buffer
		r.sink.s = transport.WriterSink{W: &buf}
		ci, err := r.stub.Call(d.Msg)
		st.release(r)
		if err != nil {
			t.Fatal(err)
		}
		return ci
	}

	// Warm A, then take its engine as an in-flight call would.
	if ci := call(dA); ci.Match != core.FirstTime {
		t.Fatalf("warmup match = %v", ci.Match)
	}
	rA := st.acquire(dA.Msg, 0)

	// B's release must chase the budget; with A in flight only the
	// last-resort tier can pay, condemning A's entry under our feet.
	call(dB)
	if got := st.metrics.budgetEvictions.Load(); got == 0 {
		t.Fatal("expected a budget eviction while A was in flight")
	}
	if c := st.reg.Counters(); c.Pending == 0 {
		t.Fatal("condemned in-flight entry should be pending arena release")
	}

	// The held engine still diffs and sends against live template bytes.
	var buf bytes.Buffer
	rA.sink.s = transport.WriterSink{W: &buf}
	dA.SetAll(4321.5)
	if _, err := rA.stub.Call(dA.Msg); err != nil {
		t.Fatal(err)
	}
	st.release(rA)
	out := buf.Bytes()
	if !bytes.Contains(out, []byte("4321.5")) {
		t.Fatalf("in-flight call payload missing current values:\n%s", out)
	}
	for _, c := range out {
		if c == 0xDB {
			t.Fatal("poison byte on the wire: template arenas were released under an in-flight call")
		}
	}
	if c := st.reg.Counters(); c.Pending != 0 {
		t.Fatalf("pending releases = %d, want 0 after the in-flight call returned", c.Pending)
	}

	// The condemned entry is gone: A's next call rebuilds fresh.
	if ci := call(dA); ci.Match != core.FirstTime {
		t.Fatalf("post-eviction match = %v, want first-time", ci.Match)
	}
}
