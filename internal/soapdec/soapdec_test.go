package soapdec

import (
	"math"
	"strings"
	"testing"

	"bsoap/internal/baseline"
	"bsoap/internal/wire"
)

func mioType() *wire.Type {
	return wire.StructOf("ns1:MIO",
		wire.Field{Name: "x", Type: wire.TInt},
		wire.Field{Name: "y", Type: wire.TInt},
		wire.Field{Name: "value", Type: wire.TDouble},
	)
}

// schemaFor builds the schema matching a message's current shape.
func schemaFor(m *wire.Message) *Schema {
	s := &Schema{Namespace: m.Namespace(), Op: m.Operation()}
	for _, p := range m.Params() {
		s.Params = append(s.Params, ParamSpec{Name: p.Name, Type: p.Type})
	}
	return s
}

// decodeRoundTrip serializes m with the gSOAP-like baseline and decodes
// it back, comparing every leaf.
func decodeRoundTrip(t *testing.T, m *wire.Message, record bool) *Result {
	t.Helper()
	doc := baseline.NewGSOAPLike().Serialize(m)
	schema := schemaFor(m)
	res, err := Decode(doc, func(op string) (*Schema, bool) {
		if op == schema.Op {
			return schema, true
		}
		return nil, false
	}, record)
	if err != nil {
		t.Fatalf("Decode: %v\ndoc: %.800s", err, doc)
	}
	got := res.Msg
	if got.NumLeaves() != m.NumLeaves() {
		t.Fatalf("decoded %d leaves, want %d", got.NumLeaves(), m.NumLeaves())
	}
	for i := 0; i < m.NumLeaves(); i++ {
		switch m.LeafType(i).Kind {
		case wire.Int:
			if got.LeafInt(i) != m.LeafInt(i) {
				t.Fatalf("leaf %d: %d != %d", i, got.LeafInt(i), m.LeafInt(i))
			}
		case wire.Double:
			gv, wv := got.LeafDouble(i), m.LeafDouble(i)
			if gv != wv && !(math.IsNaN(gv) && math.IsNaN(wv)) {
				t.Fatalf("leaf %d: %g != %g", i, gv, wv)
			}
		case wire.String:
			if got.LeafString(i) != m.LeafString(i) {
				t.Fatalf("leaf %d: %q != %q", i, got.LeafString(i), m.LeafString(i))
			}
		case wire.Bool:
			if got.LeafBool(i) != m.LeafBool(i) {
				t.Fatalf("leaf %d: %v != %v", i, got.LeafBool(i), m.LeafBool(i))
			}
		}
	}
	return res
}

func TestDecodeScalars(t *testing.T) {
	m := wire.NewMessage("urn:dec", "scalars")
	m.AddInt("i", -123)
	m.AddDouble("d", 3.25)
	m.AddString("s", "hello <world> & co")
	m.AddBool("b", true)
	decodeRoundTrip(t, m, false)
}

func TestDecodeDoubleArray(t *testing.T) {
	m := wire.NewMessage("urn:dec", "arr")
	a := m.AddDoubleArray("v", 100)
	for i := 0; i < 100; i++ {
		a.Set(i, float64(i)*0.5)
	}
	decodeRoundTrip(t, m, false)
}

func TestDecodeMIOArray(t *testing.T) {
	m := wire.NewMessage("urn:dec", "mios")
	a := m.AddStructArray("m", mioType(), 20)
	for i := 0; i < 20; i++ {
		a.SetInt(i, 0, int32(i))
		a.SetInt(i, 1, int32(-i))
		a.SetDouble(i, 2, float64(i)+0.5)
	}
	decodeRoundTrip(t, m, false)
}

func TestDecodeStructParam(t *testing.T) {
	m := wire.NewMessage("urn:dec", "one")
	s := m.AddStruct("point", mioType())
	s.SetInt(0, 7)
	s.SetInt(1, 8)
	s.SetDouble(2, 9.5)
	decodeRoundTrip(t, m, false)
}

func TestDecodeSpecialDoubles(t *testing.T) {
	m := wire.NewMessage("urn:dec", "spec")
	a := m.AddDoubleArray("v", 3)
	a.Set(0, math.Inf(1))
	a.Set(1, math.Inf(-1))
	a.Set(2, math.NaN())
	decodeRoundTrip(t, m, false)
}

func TestDecodeEmptyArray(t *testing.T) {
	m := wire.NewMessage("urn:dec", "empty")
	m.AddDoubleArray("v", 0)
	decodeRoundTrip(t, m, false)
}

func TestRangesCoverEveryLeaf(t *testing.T) {
	m := wire.NewMessage("urn:dec", "mios")
	a := m.AddStructArray("m", mioType(), 5)
	for i := 0; i < 5; i++ {
		a.SetDouble(i, 2, 1.5)
	}
	doc := baseline.NewGSOAPLike().Serialize(m)
	res := decodeRoundTrip(t, m, true)
	if len(res.Ranges) != m.NumLeaves() {
		t.Fatalf("ranges = %d, leaves = %d", len(res.Ranges), m.NumLeaves())
	}
	prev := 0
	for i, r := range res.Ranges {
		if r.Start < prev || r.End < r.Start || r.End > len(doc) {
			t.Fatalf("range %d = %+v out of order (prev end %d, len %d)", i, r, prev, len(doc))
		}
		// Each region must start with the value and contain the close tag.
		seg := string(doc[r.Start:r.End])
		if !strings.Contains(seg, "</") {
			t.Fatalf("range %d (%q) missing closing tag", i, seg)
		}
		prev = r.End
	}
}

func TestDecodeUnknownOperation(t *testing.T) {
	m := wire.NewMessage("urn:dec", "mystery")
	m.AddInt("x", 1)
	doc := baseline.NewGSOAPLike().Serialize(m)
	_, err := Decode(doc, func(string) (*Schema, bool) { return nil, false }, false)
	if err == nil || !strings.Contains(err.Error(), "unknown operation") {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeMalformedEnvelopes(t *testing.T) {
	schema := &Schema{Namespace: "urn:x", Op: "op", Params: []ParamSpec{{Name: "v", Type: wire.TInt}}}
	lookup := func(string) (*Schema, bool) { return schema, true }
	for name, doc := range map[string]string{
		"not xml":          "garbage",
		"no body":          `<SOAP-ENV:Envelope><Other/></SOAP-ENV:Envelope>`,
		"wrong param name": `<E:Envelope><E:Body><ns1:op><w>1</w></ns1:op></E:Body></E:Envelope>`,
		"bad int":          `<E:Envelope><E:Body><ns1:op><v>xyz</v></ns1:op></E:Body></E:Envelope>`,
		"truncated":        `<E:Envelope><E:Body><ns1:op><v>1</v>`,
	} {
		if _, err := Decode([]byte(doc), lookup, false); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecodeSkipsSOAPHeader(t *testing.T) {
	doc := `<E:Envelope xmlns:E="http://schemas.xmlsoap.org/soap/envelope/">` +
		`<E:Header><routing>x</routing></E:Header>` +
		`<E:Body><ns1:op><v>42</v></ns1:op></E:Body></E:Envelope>`
	schema := &Schema{Namespace: "urn:x", Op: "op", Params: []ParamSpec{{Name: "v", Type: wire.TInt}}}
	res, err := Decode([]byte(doc), func(string) (*Schema, bool) { return schema, true }, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.LeafInt(0) != 42 {
		t.Fatalf("leaf = %d", res.Msg.LeafInt(0))
	}
}

func TestDecodeBadArrayType(t *testing.T) {
	schema := &Schema{Namespace: "urn:x", Op: "op",
		Params: []ParamSpec{{Name: "v", Type: wire.ArrayOf(wire.TInt)}}}
	lookup := func(string) (*Schema, bool) { return schema, true }
	for name, attr := range map[string]string{
		"missing":   ``,
		"malformed": ` SOAP-ENC:arrayType="xsd:int"`,
		"negative":  ` SOAP-ENC:arrayType="xsd:int[-2]"`,
		"nonnum":    ` SOAP-ENC:arrayType="xsd:int[x]"`,
	} {
		doc := `<E:Envelope><E:Body><ns1:op><v` + attr + `></v></ns1:op></E:Body></E:Envelope>`
		if _, err := Decode([]byte(doc), lookup, false); err == nil {
			t.Errorf("%s arrayType: decoded without error", name)
		}
	}
}

func TestDecodeRespectsStuffedPadding(t *testing.T) {
	// Messages from a stuffing client carry whitespace after close tags.
	doc := `<E:Envelope><E:Body><ns1:op>` +
		`<v xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:double[2]">` +
		`<item>1.5</item>        <item>2.5</item>     ` +
		`</v></ns1:op></E:Body></E:Envelope>`
	schema := &Schema{Namespace: "urn:x", Op: "op",
		Params: []ParamSpec{{Name: "v", Type: wire.ArrayOf(wire.TDouble)}}}
	res, err := Decode([]byte(doc), func(string) (*Schema, bool) { return schema, true }, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.LeafDouble(0) != 1.5 || res.Msg.LeafDouble(1) != 2.5 {
		t.Fatalf("values: %g %g", res.Msg.LeafDouble(0), res.Msg.LeafDouble(1))
	}
	// The first leaf's region must absorb the padding after its tag.
	seg := doc[res.Ranges[0].Start:res.Ranges[0].End]
	if seg != "1.5</item>        " {
		t.Fatalf("region = %q", seg)
	}
}

func TestDecodeNestedStructs(t *testing.T) {
	inner := wire.StructOf("ns1:Point",
		wire.Field{Name: "px", Type: wire.TInt},
		wire.Field{Name: "py", Type: wire.TInt},
	)
	outer := wire.StructOf("ns1:Segment",
		wire.Field{Name: "a", Type: inner},
		wire.Field{Name: "b", Type: inner},
		wire.Field{Name: "weight", Type: wire.TDouble},
	)
	m := wire.NewMessage("urn:dec", "nest")
	arr := m.AddStructArray("segs", outer, 3)
	for i := 0; i < 3; i++ {
		arr.SetInt(i, 0, int32(i))
		arr.SetInt(i, 1, int32(i+1))
		arr.SetInt(i, 2, int32(i+2))
		arr.SetInt(i, 3, int32(i+3))
		arr.SetDouble(i, 4, float64(i)+0.5)
	}
	decodeRoundTrip(t, m, true)
}

func TestDecodeBoolAndStringArrays(t *testing.T) {
	m := wire.NewMessage("urn:dec", "mixed")
	sa := m.AddStringArray("names", 3)
	sa.Set(0, "first value")
	sa.Set(2, "third <escaped> & co")
	m.AddBool("flag", true)
	ia := m.AddIntArray("nums", 4)
	ia.Fill([]int32{1, -2, 3, -4})
	decodeRoundTrip(t, m, false)
}

func TestDecodeWrongFieldOrderErrors(t *testing.T) {
	schema := &Schema{Namespace: "urn:x", Op: "op", Params: []ParamSpec{
		{Name: "m", Type: mioType()},
	}}
	lookup := func(string) (*Schema, bool) { return schema, true }
	// Fields out of declaration order must be rejected by the
	// schema-driven decoder.
	doc := `<E:Envelope><E:Body><ns1:op><m><y>1</y><x>2</x><value>3</value></m></ns1:op></E:Body></E:Envelope>`
	if _, err := Decode([]byte(doc), lookup, false); err == nil {
		t.Fatal("out-of-order fields accepted")
	}
	// Non-item array children are rejected too.
	schema2 := &Schema{Namespace: "urn:x", Op: "op", Params: []ParamSpec{
		{Name: "v", Type: wire.ArrayOf(wire.TInt)},
	}}
	doc2 := `<E:Envelope><E:Body><ns1:op><v SOAP-ENC:arrayType="xsd:int[1]"><other>1</other></v></ns1:op></E:Body></E:Envelope>`
	if _, err := Decode([]byte(doc2), func(string) (*Schema, bool) { return schema2, true }, false); err == nil {
		t.Fatal("non-item array child accepted")
	}
}
