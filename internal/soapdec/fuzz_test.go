package soapdec

import (
	"testing"

	"bsoap/internal/wire"
)

// FuzzDecode asserts schema-driven envelope decoding never panics on
// arbitrary input, with and without range recording.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"",
		`<E:Envelope><E:Body><ns1:op><v>1</v></ns1:op></E:Body></E:Envelope>`,
		`<E:Envelope><E:Body><ns1:op><a xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:double[2]"><item>1</item><item>2</item></a></ns1:op></E:Body></E:Envelope>`,
		`<E:Envelope><E:Header><h/></E:Header><E:Body><ns1:op><v>1</v></ns1:op></E:Body></E:Envelope>`,
		`<E:Envelope><E:Body><ns1:op><a SOAP-ENC:arrayType="xsd:double[99999]"></a></ns1:op></E:Body></E:Envelope>`,
		`<E:Envelope><E:Body><ns1:op><v>not-a-number</v></ns1:op></E:Body></E:Envelope>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	mio := wire.StructOf("ns1:MIO",
		wire.Field{Name: "x", Type: wire.TInt},
		wire.Field{Name: "value", Type: wire.TDouble},
	)
	schemas := map[string]*Schema{
		"op": {Namespace: "urn:f", Op: "op", Params: []ParamSpec{
			{Name: "v", Type: wire.TInt},
			{Name: "a", Type: wire.ArrayOf(wire.TDouble)},
			{Name: "m", Type: mio},
		}},
	}
	lookup := func(op string) (*Schema, bool) {
		s, ok := schemas[op]
		return s, ok
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, record := range []bool{false, true} {
			res, err := Decode(data, lookup, record)
			if err == nil && res.Msg == nil {
				t.Fatal("nil message without error")
			}
			if err == nil && record && len(res.Ranges) != res.Msg.NumLeaves() {
				t.Fatalf("ranges %d vs leaves %d", len(res.Ranges), res.Msg.NumLeaves())
			}
		}
	})
}
