// Package soapdec decodes SOAP request/response envelopes into wire
// messages, driven by per-operation schemas. It is the server-side
// mirror of the client serializers and the substrate for differential
// deserialization: when asked, it records each scalar leaf's *variable
// byte region* — value, floating closing tag, and whitespace padding —
// so a later request can be diffed region-wise instead of re-parsed.
package soapdec

import (
	"fmt"
	"strconv"
	"strings"

	"bsoap/internal/wire"
	"bsoap/internal/xmlparse"
	"bsoap/internal/xsdlex"
)

// ParamSpec declares one expected parameter: its element name and type.
// Array lengths are dynamic (read from the SOAP-ENC:arrayType
// attribute).
type ParamSpec struct {
	Name string
	Type *wire.Type
}

// Schema declares an operation's expected parameters.
type Schema struct {
	Namespace string
	Op        string
	Params    []ParamSpec
}

// LeafRange is the variable byte region of one scalar leaf within the
// message body: from right after the element's opening '>' to the start
// of the next tag after the value's padding.
type LeafRange struct {
	Start, End int
}

// Result is a decoded message, with leaf ranges when requested.
type Result struct {
	Msg    *wire.Message
	Ranges []LeafRange
}

// Lookup resolves an operation's local name to its schema.
type Lookup func(opLocal string) (*Schema, bool)

// Decode parses one SOAP envelope. With recordRanges set, Result.Ranges
// holds one entry per scalar leaf, in leaf order.
func Decode(body []byte, lookup Lookup, recordRanges bool) (*Result, error) {
	p := xmlparse.NewParser(body)
	if _, err := p.ExpectStart("Envelope"); err != nil {
		return nil, fmt.Errorf("soapdec: %w", err)
	}
	tok, err := p.NextNonSpace()
	if err != nil {
		return nil, fmt.Errorf("soapdec: %w", err)
	}
	// An optional SOAP Header is skipped wholesale.
	if tok.Kind == xmlparse.StartElement && xmlparse.Local(tok.Name) == "Header" {
		if err := p.SkipElement(); err != nil {
			return nil, fmt.Errorf("soapdec: skipping header: %w", err)
		}
		tok, err = p.NextNonSpace()
		if err != nil {
			return nil, fmt.Errorf("soapdec: %w", err)
		}
	}
	if tok.Kind != xmlparse.StartElement || xmlparse.Local(tok.Name) != "Body" {
		return nil, fmt.Errorf("soapdec: expected Body, got %v %q", tok.Kind, tok.Name)
	}
	opTok, err := p.ExpectStart("")
	if err != nil {
		return nil, fmt.Errorf("soapdec: reading operation: %w", err)
	}
	opLocal := xmlparse.Local(opTok.Name)
	schema, ok := lookup(opLocal)
	if !ok {
		return nil, fmt.Errorf("soapdec: unknown operation %q", opLocal)
	}

	d := &decoder{p: p, body: body, record: recordRanges}
	msg := wire.NewMessage(schema.Namespace, schema.Op)
	for _, spec := range schema.Params {
		if err := d.param(msg, spec); err != nil {
			return nil, fmt.Errorf("soapdec: parameter %q: %w", spec.Name, err)
		}
	}
	// Close operation, body, envelope.
	for i := 0; i < 3; i++ {
		if _, err := p.ExpectEnd(); err != nil {
			return nil, fmt.Errorf("soapdec: closing envelope: %w", err)
		}
	}
	msg.ClearDirty()
	return &Result{Msg: msg, Ranges: d.ranges}, nil
}

type decoder struct {
	p      *xmlparse.Parser
	body   []byte
	record bool
	ranges []LeafRange
}

// param decodes one parameter element according to its spec.
func (d *decoder) param(msg *wire.Message, spec ParamSpec) error {
	tok, err := d.p.ExpectStart(spec.Name)
	if err != nil {
		return err
	}
	switch spec.Type.Kind {
	case wire.Array:
		n, err := arrayCount(tok.Attrs)
		if err != nil {
			return err
		}
		return d.array(msg, spec, n)
	case wire.Struct:
		leaf := msg.NumLeaves()
		msg.AddStruct(spec.Name, spec.Type)
		if _, err := d.structFields(msg, spec.Type, leaf); err != nil {
			return err
		}
		_, err := d.p.ExpectEnd()
		return err
	default:
		return d.scalarParam(msg, spec)
	}
}

// scalarParam decodes a scalar parameter (its element is already open).
func (d *decoder) scalarParam(msg *wire.Message, spec ParamSpec) error {
	switch spec.Type.Kind {
	case wire.Int:
		ref := msg.AddInt(spec.Name, 0)
		v, err := d.leafText(wire.TInt)
		if err != nil {
			return err
		}
		ref.Set(v.(int32))
	case wire.Double:
		ref := msg.AddDouble(spec.Name, 0)
		v, err := d.leafText(wire.TDouble)
		if err != nil {
			return err
		}
		ref.Set(v.(float64))
	case wire.String:
		ref := msg.AddString(spec.Name, "")
		v, err := d.leafText(wire.TString)
		if err != nil {
			return err
		}
		ref.Set(v.(string))
	case wire.Bool:
		ref := msg.AddBool(spec.Name, false)
		v, err := d.leafText(wire.TBool)
		if err != nil {
			return err
		}
		ref.Set(v.(bool))
	default:
		return fmt.Errorf("unsupported scalar kind %v", spec.Type.Kind)
	}
	return nil
}

// array decodes n items of the array whose open tag has been consumed.
func (d *decoder) array(msg *wire.Message, spec ParamSpec, n int) error {
	elem := spec.Type.Elem
	var first int
	switch elem.Kind {
	case wire.Int:
		first = msg.NumLeaves()
		msg.AddIntArray(spec.Name, n)
	case wire.Double:
		first = msg.NumLeaves()
		msg.AddDoubleArray(spec.Name, n)
	case wire.String:
		first = msg.NumLeaves()
		msg.AddStringArray(spec.Name, n)
	case wire.Struct:
		first = msg.NumLeaves()
		msg.AddStructArray(spec.Name, elem, n)
	default:
		return fmt.Errorf("unsupported array element kind %v", elem.Kind)
	}
	leaf := first
	for i := 0; i < n; i++ {
		if _, err := d.p.ExpectStart("item"); err != nil {
			return fmt.Errorf("item %d: %w", i, err)
		}
		var err error
		leaf, err = d.value(msg, elem, leaf, true)
		if err != nil {
			return fmt.Errorf("item %d: %w", i, err)
		}
	}
	_, err := d.p.ExpectEnd() // array close
	return err
}

// value decodes one value of type t into leaf slot(s) starting at leaf.
// The enclosing element is already open when elemOpen is true.
func (d *decoder) value(msg *wire.Message, t *wire.Type, leaf int, elemOpen bool) (int, error) {
	if !elemOpen {
		if _, err := d.p.ExpectStart(""); err != nil {
			return leaf, err
		}
	}
	if t.Kind == wire.Struct {
		leaf, err := d.structFields(msg, t, leaf)
		if err != nil {
			return leaf, err
		}
		_, err = d.p.ExpectEnd()
		return leaf, err
	}
	return d.scalarInto(msg, t, leaf)
}

// structFields decodes the fields of an open struct element.
func (d *decoder) structFields(msg *wire.Message, t *wire.Type, leaf int) (int, error) {
	for _, f := range t.Fields {
		if _, err := d.p.ExpectStart(f.Name); err != nil {
			return leaf, err
		}
		var err error
		if f.Type.Kind == wire.Struct {
			leaf, err = d.structFields(msg, f.Type, leaf)
			if err != nil {
				return leaf, err
			}
			if _, err = d.p.ExpectEnd(); err != nil {
				return leaf, err
			}
		} else {
			leaf, err = d.scalarInto(msg, f.Type, leaf)
			if err != nil {
				return leaf, err
			}
		}
	}
	return leaf, nil
}

// scalarInto parses the open element's text into leaf and records its
// variable region.
func (d *decoder) scalarInto(msg *wire.Message, t *wire.Type, leaf int) (int, error) {
	v, err := d.leafText(t)
	if err != nil {
		return leaf, err
	}
	switch t.Kind {
	case wire.Int:
		msg.SetLeafInt(leaf, v.(int32))
	case wire.Double:
		msg.SetLeafDouble(leaf, v.(float64))
	case wire.String:
		msg.SetLeafString(leaf, v.(string))
	case wire.Bool:
		msg.SetLeafBool(leaf, v.(bool))
	}
	return leaf + 1, nil
}

// leafText consumes the current element's text and closing tag, parses
// it per type, and (when recording) captures the variable byte region.
func (d *decoder) leafText(t *wire.Type) (any, error) {
	start := d.p.Offset()
	text, err := d.p.Text()
	if err != nil {
		return nil, err
	}
	if d.record {
		// Extend past the closing tag and any padding to the next '<'.
		end := d.p.Offset()
		for end < len(d.body) && d.body[end] != '<' {
			end++
		}
		d.ranges = append(d.ranges, LeafRange{Start: start, End: end})
	}
	return ParseScalar(t, text)
}

// ParseScalar parses one lexical value per its wire type.
func ParseScalar(t *wire.Type, text string) (any, error) {
	switch t.Kind {
	case wire.Int:
		return parseIntText(text)
	case wire.Double:
		return parseDoubleText(text)
	case wire.String:
		return text, nil
	case wire.Bool:
		return parseBoolText(text)
	}
	return nil, fmt.Errorf("soapdec: non-scalar type %v", t.Kind)
}

// arrayCount extracts the element count from SOAP-ENC:arrayType.
func arrayCount(attrs []xmlparse.Attr) (int, error) {
	for _, a := range attrs {
		if xmlparse.Local(a.Name) != "arrayType" {
			continue
		}
		open := strings.IndexByte(a.Value, '[')
		closeB := strings.IndexByte(a.Value, ']')
		if open < 0 || closeB <= open {
			return 0, fmt.Errorf("soapdec: malformed arrayType %q", a.Value)
		}
		n, err := strconv.Atoi(a.Value[open+1 : closeB])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("soapdec: bad array length in %q", a.Value)
		}
		return n, nil
	}
	return 0, fmt.Errorf("soapdec: array element missing arrayType attribute")
}

func parseIntText(s string) (int32, error)      { return xsdlex.ParseInt(s) }
func parseDoubleText(s string) (float64, error) { return xsdlex.ParseDouble(s) }
func parseBoolText(s string) (bool, error)      { return xsdlex.ParseBool(s) }
