package promtext

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Stats summarizes a validated exposition: how many metric families and
// samples it carried, and which family names were seen.
type Stats struct {
	Families int
	Samples  int
	Names    map[string]bool
}

// Validate parses r as Prometheus text format (version 0.0.4), returning
// an error on the first malformed line. It checks the grammar a scraper
// enforces — comment structure, metric-name charset, label syntax, float
// sample values — plus the structural rules scrapers reject expositions
// over: no family may be TYPE-declared twice, and histogram bucket
// series must have strictly increasing le bounds with non-decreasing
// cumulative counts. Exemplars (`# {k="v"} value [ts]` after a _bucket
// sample) are parsed and syntax-checked. check.sh and `bsoap-inspect
// metrics` use it to assert the endpoints stay scrapable.
func Validate(r io.Reader) (Stats, error) {
	st := Stats{Names: map[string]bool{}}
	declared := map[string]bool{}     // TYPE-declared family names
	histograms := map[string]bool{}   // families declared histogram
	buckets := map[string]bucketSeq{} // per bucket series: last le / cum
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return st, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !validName(fields[2]) {
				return st, fmt.Errorf("line %d: bad metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return st, fmt.Errorf("line %d: TYPE missing type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return st, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if declared[fields[2]] {
					return st, fmt.Errorf("line %d: duplicate family %q", lineNo, fields[2])
				}
				declared[fields[2]] = true
				if fields[3] == "histogram" {
					histograms[fields[2]] = true
				}
				st.Families++
			}
			continue
		}
		name, labels, rest, err := splitSample(line)
		if err != nil {
			return st, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !validName(name) {
			return st, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		// rest is "value", "value timestamp", or (bucket lines only)
		// either followed by an exemplar.
		rest, exemplar, hasEx := strings.Cut(rest, " # ")
		if hasEx {
			if !strings.HasSuffix(name, "_bucket") {
				return st, fmt.Errorf("line %d: exemplar on non-bucket sample %q", lineNo, name)
			}
			if err := validExemplar(exemplar); err != nil {
				return st, fmt.Errorf("line %d: bad exemplar %q: %v", lineNo, exemplar, err)
			}
		}
		parts := strings.Fields(rest)
		if len(parts) == 0 || len(parts) > 2 {
			return st, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		value, err := parseValue(parts[0])
		if err != nil {
			return st, fmt.Errorf("line %d: bad value %q: %v", lineNo, parts[0], err)
		}
		if len(parts) == 2 {
			if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
				return st, fmt.Errorf("line %d: bad timestamp %q", lineNo, parts[1])
			}
		}
		if fam, ok := strings.CutSuffix(name, "_bucket"); ok && histograms[fam] {
			if err := checkBucket(buckets, name, labels, value); err != nil {
				return st, fmt.Errorf("line %d: %v", lineNo, err)
			}
		}
		st.Names[name] = true
		st.Samples++
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	if st.Samples == 0 {
		return st, fmt.Errorf("no samples found")
	}
	return st, nil
}

// bucketSeq tracks one histogram bucket series' running order state.
type bucketSeq struct {
	lastLe  float64
	lastCum float64
	inf     bool
}

// checkBucket enforces per-series bucket ordering: le strictly
// increasing (with "+Inf" last) and cumulative counts non-decreasing.
// A series is the bucket sample's label set minus the le pair.
func checkBucket(seqs map[string]bucketSeq, name, labels string, value float64) error {
	var le string
	var others []string
	for _, pair := range splitLabelPairs(strings.TrimSuffix(labels, ",")) {
		if v, ok := strings.CutPrefix(pair, "le="); ok {
			le = strings.Trim(v, `"`)
			continue
		}
		others = append(others, pair)
	}
	if le == "" {
		return fmt.Errorf("bucket sample %q without le label", name)
	}
	key := name + "{" + strings.Join(others, ",") + "}"
	seq, seen := seqs[key]
	if seq.inf {
		return fmt.Errorf("bucket after +Inf in series %s", key)
	}
	if le == "+Inf" {
		seq.inf = true
	} else {
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("bad le bound %q in series %s", le, key)
		}
		if seen && bound <= seq.lastLe {
			return fmt.Errorf("out-of-order bucket le=%q in series %s", le, key)
		}
		seq.lastLe = bound
	}
	if seen && value < seq.lastCum {
		return fmt.Errorf("decreasing cumulative bucket count at le=%q in series %s", le, key)
	}
	seq.lastCum = value
	seqs[key] = seq
	return nil
}

// validExemplar checks `{k="v",...} value [timestamp]` exemplar syntax.
func validExemplar(s string) error {
	if len(s) == 0 || s[0] != '{' {
		return fmt.Errorf("missing label set")
	}
	end := strings.IndexByte(s, '}')
	if end < 0 {
		return fmt.Errorf("unterminated label set")
	}
	if err := validLabels(s[1:end]); err != nil {
		return err
	}
	parts := strings.Fields(s[end+1:])
	if len(parts) == 0 || len(parts) > 2 {
		return fmt.Errorf("missing value")
	}
	if _, err := parseValue(parts[0]); err != nil {
		return fmt.Errorf("bad value %q", parts[0])
	}
	if len(parts) == 2 {
		if _, err := strconv.ParseFloat(parts[1], 64); err != nil {
			return fmt.Errorf("bad timestamp %q", parts[1])
		}
	}
	return nil
}

// ReadValues parses r as Prometheus text format and returns each
// metric's sample value under two keys: the bare name (labels ignored;
// for a name with several labeled samples the last one wins) and, for
// labeled samples, the full `name{label="value"}` key exactly as
// exposed — so callers can assert on one series of a labeled family
// (e.g. `..._evictions_total{reason="budget"}`). It is the scrape-side
// complement of Validate: loadgen uses it to judge a server's
// differential fast-path rate from its /metrics page.
func ReadValues(r io.Reader) (map[string]float64, error) {
	vals := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, rest, err := splitSample(line)
		if err != nil {
			return vals, fmt.Errorf("line %d: %v", lineNo, err)
		}
		parts := strings.Fields(rest)
		if len(parts) == 0 {
			return vals, fmt.Errorf("line %d: sample without value", lineNo)
		}
		v, err := parseValue(parts[0])
		if err != nil {
			return vals, fmt.Errorf("line %d: bad value %q: %v", lineNo, parts[0], err)
		}
		vals[name] = v
		if labels != "" {
			vals[name+"{"+labels+"}"] = v
		}
	}
	if err := sc.Err(); err != nil {
		return vals, err
	}
	return vals, nil
}

// splitSample splits a sample line into metric name, the raw label-set
// text between the braces (empty for unlabeled samples, syntax-checked
// otherwise) and the remainder after the name/labels.
func splitSample(line string) (name, labels, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", "", "", fmt.Errorf("sample without value: %q", line)
		}
		return line[:sp], "", line[sp+1:], nil
	}
	name = line[:brace]
	end := strings.IndexByte(line, '}')
	if end < brace {
		return "", "", "", fmt.Errorf("unterminated label set: %q", line)
	}
	labels = line[brace+1 : end]
	if err := validLabels(labels); err != nil {
		return "", "", "", err
	}
	rest = strings.TrimPrefix(line[end+1:], " ")
	return name, labels, rest, nil
}

// validLabels checks `k="v",k2="v2"` syntax (values must be quoted; a
// trailing comma is permitted by the format).
func validLabels(s string) error {
	s = strings.TrimSuffix(s, ",")
	if s == "" {
		return nil
	}
	for _, pair := range splitLabelPairs(s) {
		eq := strings.IndexByte(pair, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		if !validName(pair[:eq]) {
			return fmt.Errorf("bad label name %q", pair[:eq])
		}
		v := pair[eq+1:]
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted label value in %q", pair)
		}
	}
	return nil
}

// splitLabelPairs splits on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// parseValue accepts Prometheus sample values: Go floats plus +Inf,
// -Inf, NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// validName checks the metric/label name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
