package promtext

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Stats summarizes a validated exposition: how many metric families and
// samples it carried, and which family names were seen.
type Stats struct {
	Families int
	Samples  int
	Names    map[string]bool
}

// Validate parses r as Prometheus text format (version 0.0.4), returning
// an error on the first malformed line. It checks the grammar a scraper
// enforces — comment structure, metric-name charset, label syntax, float
// sample values — without interpreting the metrics. check.sh and
// `bsoap-inspect metrics` use it to assert the endpoints stay scrapable.
func Validate(r io.Reader) (Stats, error) {
	st := Stats{Names: map[string]bool{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return st, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !validName(fields[2]) {
				return st, fmt.Errorf("line %d: bad metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return st, fmt.Errorf("line %d: TYPE missing type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return st, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				st.Families++
			}
			continue
		}
		name, _, rest, err := splitSample(line)
		if err != nil {
			return st, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !validName(name) {
			return st, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		// rest is "value" or "value timestamp".
		parts := strings.Fields(rest)
		if len(parts) == 0 || len(parts) > 2 {
			return st, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		if _, err := parseValue(parts[0]); err != nil {
			return st, fmt.Errorf("line %d: bad value %q: %v", lineNo, parts[0], err)
		}
		if len(parts) == 2 {
			if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
				return st, fmt.Errorf("line %d: bad timestamp %q", lineNo, parts[1])
			}
		}
		st.Names[name] = true
		st.Samples++
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	if st.Samples == 0 {
		return st, fmt.Errorf("no samples found")
	}
	return st, nil
}

// ReadValues parses r as Prometheus text format and returns each
// metric's sample value under two keys: the bare name (labels ignored;
// for a name with several labeled samples the last one wins) and, for
// labeled samples, the full `name{label="value"}` key exactly as
// exposed — so callers can assert on one series of a labeled family
// (e.g. `..._evictions_total{reason="budget"}`). It is the scrape-side
// complement of Validate: loadgen uses it to judge a server's
// differential fast-path rate from its /metrics page.
func ReadValues(r io.Reader) (map[string]float64, error) {
	vals := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, rest, err := splitSample(line)
		if err != nil {
			return vals, fmt.Errorf("line %d: %v", lineNo, err)
		}
		parts := strings.Fields(rest)
		if len(parts) == 0 {
			return vals, fmt.Errorf("line %d: sample without value", lineNo)
		}
		v, err := parseValue(parts[0])
		if err != nil {
			return vals, fmt.Errorf("line %d: bad value %q: %v", lineNo, parts[0], err)
		}
		vals[name] = v
		if labels != "" {
			vals[name+"{"+labels+"}"] = v
		}
	}
	if err := sc.Err(); err != nil {
		return vals, err
	}
	return vals, nil
}

// splitSample splits a sample line into metric name, the raw label-set
// text between the braces (empty for unlabeled samples, syntax-checked
// otherwise) and the remainder after the name/labels.
func splitSample(line string) (name, labels, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", "", "", fmt.Errorf("sample without value: %q", line)
		}
		return line[:sp], "", line[sp+1:], nil
	}
	name = line[:brace]
	end := strings.IndexByte(line, '}')
	if end < brace {
		return "", "", "", fmt.Errorf("unterminated label set: %q", line)
	}
	labels = line[brace+1 : end]
	if err := validLabels(labels); err != nil {
		return "", "", "", err
	}
	rest = strings.TrimPrefix(line[end+1:], " ")
	return name, labels, rest, nil
}

// validLabels checks `k="v",k2="v2"` syntax (values must be quoted; a
// trailing comma is permitted by the format).
func validLabels(s string) error {
	s = strings.TrimSuffix(s, ",")
	if s == "" {
		return nil
	}
	for _, pair := range splitLabelPairs(s) {
		eq := strings.IndexByte(pair, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		if !validName(pair[:eq]) {
			return fmt.Errorf("bad label name %q", pair[:eq])
		}
		v := pair[eq+1:]
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted label value in %q", pair)
		}
	}
	return nil
}

// splitLabelPairs splits on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// parseValue accepts Prometheus sample values: Go floats plus +Inf,
// -Inf, NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// validName checks the metric/label name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
