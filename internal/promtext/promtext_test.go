package promtext

import (
	"strings"
	"testing"
)

func TestWriterRoundTrip(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	w.Counter("bsoap_calls_total", "Total calls.", 42)
	w.Gauge("bsoap_active_conns", "Open connections.", 3)
	w.CounterWithLabel("bsoap_errors_total", "Errors by kind.", "kind", []LabeledValue{
		{Label: "dial", Value: 1},
		{Label: "deadline", Value: 2},
	})
	w.Histogram("bsoap_latency_seconds", "Call latency.",
		[]float64{0.001, 0.01, 0.1}, []int64{5, 3, 1}, 0.123, 9)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	st, err := Validate(strings.NewReader(out))
	if err != nil {
		t.Fatalf("self-emitted output fails validation: %v\n%s", err, out)
	}
	if st.Families != 4 {
		t.Errorf("families = %d, want 4", st.Families)
	}
	for _, want := range []string{
		"bsoap_calls_total 42",
		"bsoap_active_conns 3",
		`bsoap_errors_total{kind="dial"} 1`,
		`bsoap_latency_seconds_bucket{le="0.001"} 5`,
		`bsoap_latency_seconds_bucket{le="0.01"} 8`, // cumulative
		`bsoap_latency_seconds_bucket{le="0.1"} 9`,  // cumulative
		`bsoap_latency_seconds_bucket{le="+Inf"} 9`, // implicit
		"bsoap_latency_seconds_sum 0.123",
		"bsoap_latency_seconds_count 9",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"9metric 1",              // name starts with digit
		"m{le=unquoted} 1",       // unquoted label value
		"m 1 2 3",                // extra fields
		"m notanumber",           // bad value
		"# BOGUS m counter\nm 1", // unknown comment keyword
		"# TYPE m flavor\nm 1",   // unknown type
		"",                       // no samples at all
	} {
		if _, err := Validate(strings.NewReader(bad)); err == nil {
			t.Errorf("Validate accepted %q", bad)
		}
	}
}

func TestValidateAcceptsSpecials(t *testing.T) {
	good := "# HELP m A help \\\\ with escapes.\n# TYPE m gauge\nm +Inf\nm{a=\"b,c\",d=\"e\"} -Inf 1234567\n"
	st, err := Validate(strings.NewReader(good))
	if err != nil {
		t.Fatalf("Validate rejected valid input: %v", err)
	}
	if st.Samples != 2 {
		t.Errorf("samples = %d, want 2", st.Samples)
	}
}

func TestExemplarRoundTrip(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	w.HistogramWithLabel("bsoap_stage_seconds", "Stage latency.", "stage", []LabeledHistogram{
		{
			Label:  "serialize",
			Uppers: []float64{0.001, 0.01},
			Counts: []int64{4, 2},
			Sum:    0.05,
			Count:  7,
			Exemplar: &Exemplar{
				LabelKey: "span", LabelValue: "af3", Value: 0.00042,
			},
		},
		{
			Label:  "wire",
			Uppers: []float64{0.001, 0.01},
			Counts: []int64{1, 1},
			Sum:    0.02,
			Count:  2,
		},
	})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if _, err := Validate(strings.NewReader(out)); err != nil {
		t.Fatalf("exemplar output fails strict validation: %v\n%s", err, out)
	}
	for _, want := range []string{
		`bsoap_stage_seconds_bucket{stage="serialize",le="0.001"} 4`,
		`bsoap_stage_seconds_bucket{stage="serialize",le="+Inf"} 7 # {span="af3"} 0.00042`,
		`bsoap_stage_seconds_bucket{stage="wire",le="+Inf"} 2`,
		`bsoap_stage_seconds_sum{stage="serialize"} 0.05`,
		`bsoap_stage_seconds_count{stage="wire"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE bsoap_stage_seconds") != 1 {
		t.Errorf("labeled family should emit exactly one TYPE header:\n%s", out)
	}
}

func TestValidateRejectsDuplicateFamily(t *testing.T) {
	dup := "# HELP m One.\n# TYPE m counter\nm 1\n# HELP m Again.\n# TYPE m counter\nm 2\n"
	if _, err := Validate(strings.NewReader(dup)); err == nil {
		t.Fatal("Validate accepted a twice-declared family")
	} else if !strings.Contains(err.Error(), "duplicate family") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateRejectsBadBucketOrder(t *testing.T) {
	head := "# HELP h H.\n# TYPE h histogram\n"
	for name, bad := range map[string]string{
		"out-of-order le": head +
			"h_bucket{le=\"0.01\"} 1\nh_bucket{le=\"0.001\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.1\nh_count 2\n",
		"bucket after +Inf": head +
			"h_bucket{le=\"+Inf\"} 2\nh_bucket{le=\"0.5\"} 1\nh_sum 0.1\nh_count 2\n",
		"decreasing cumulative": head +
			"h_bucket{le=\"0.001\"} 5\nh_bucket{le=\"0.01\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 0.1\nh_count 5\n",
	} {
		if _, err := Validate(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: Validate accepted malformed buckets", name)
		}
	}
	// Ordering is per series: two labeled series may interleave bounds.
	good := head +
		"h_bucket{stage=\"a\",le=\"0.001\"} 1\nh_bucket{stage=\"a\",le=\"+Inf\"} 1\n" +
		"h_bucket{stage=\"b\",le=\"0.001\"} 2\nh_bucket{stage=\"b\",le=\"+Inf\"} 2\n" +
		"h_sum{stage=\"a\"} 0.1\nh_count{stage=\"a\"} 1\n"
	if _, err := Validate(strings.NewReader(good)); err != nil {
		t.Errorf("Validate rejected interleaved labeled series: %v", err)
	}
}

func TestValidateRejectsExemplarOffBuckets(t *testing.T) {
	for name, bad := range map[string]string{
		"on counter":   "# HELP m M.\n# TYPE m counter\nm 1 # {span=\"a\"} 2\n",
		"bad labels":   "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {span=a} 2\n",
		"no value":     "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {span=\"a\"}\n",
		"unterminated": "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {span=\"a\" 2\n",
	} {
		if _, err := Validate(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: Validate accepted malformed exemplar", name)
		}
	}
}

func TestReadValuesLabeledHistogram(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	w.HistogramWithLabel("bsoap_stage_seconds", "Stage latency.", "stage", []LabeledHistogram{
		{Label: "decode", Uppers: []float64{0.001}, Counts: []int64{3}, Sum: 0.004, Count: 3,
			Exemplar: &Exemplar{LabelKey: "span", LabelValue: "7", Value: 0.002}},
		{Label: "handler", Uppers: []float64{0.001}, Counts: []int64{1}, Sum: 0.2, Count: 5},
	})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	vals, err := ReadValues(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		`bsoap_stage_seconds_count{stage="decode"}`:             3,
		`bsoap_stage_seconds_count{stage="handler"}`:            5,
		`bsoap_stage_seconds_sum{stage="handler"}`:              0.2,
		`bsoap_stage_seconds_bucket{stage="decode",le="0.001"}`: 3,
	} {
		if got := vals[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	var sb strings.Builder
	New(&sb).Counter("m_total", "line\nbreak \\ slash", 1)
	out := sb.String()
	if !strings.Contains(out, `line\nbreak \\ slash`) {
		t.Errorf("help not escaped: %q", out)
	}
	if _, err := Validate(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
}
