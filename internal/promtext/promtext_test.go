package promtext

import (
	"strings"
	"testing"
)

func TestWriterRoundTrip(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	w.Counter("bsoap_calls_total", "Total calls.", 42)
	w.Gauge("bsoap_active_conns", "Open connections.", 3)
	w.CounterWithLabel("bsoap_errors_total", "Errors by kind.", "kind", []LabeledValue{
		{Label: "dial", Value: 1},
		{Label: "deadline", Value: 2},
	})
	w.Histogram("bsoap_latency_seconds", "Call latency.",
		[]float64{0.001, 0.01, 0.1}, []int64{5, 3, 1}, 0.123, 9)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	st, err := Validate(strings.NewReader(out))
	if err != nil {
		t.Fatalf("self-emitted output fails validation: %v\n%s", err, out)
	}
	if st.Families != 4 {
		t.Errorf("families = %d, want 4", st.Families)
	}
	for _, want := range []string{
		"bsoap_calls_total 42",
		"bsoap_active_conns 3",
		`bsoap_errors_total{kind="dial"} 1`,
		`bsoap_latency_seconds_bucket{le="0.001"} 5`,
		`bsoap_latency_seconds_bucket{le="0.01"} 8`, // cumulative
		`bsoap_latency_seconds_bucket{le="0.1"} 9`,  // cumulative
		`bsoap_latency_seconds_bucket{le="+Inf"} 9`, // implicit
		"bsoap_latency_seconds_sum 0.123",
		"bsoap_latency_seconds_count 9",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"9metric 1",              // name starts with digit
		"m{le=unquoted} 1",       // unquoted label value
		"m 1 2 3",                // extra fields
		"m notanumber",           // bad value
		"# BOGUS m counter\nm 1", // unknown comment keyword
		"# TYPE m flavor\nm 1",   // unknown type
		"",                       // no samples at all
	} {
		if _, err := Validate(strings.NewReader(bad)); err == nil {
			t.Errorf("Validate accepted %q", bad)
		}
	}
}

func TestValidateAcceptsSpecials(t *testing.T) {
	good := "# HELP m A help \\\\ with escapes.\n# TYPE m gauge\nm +Inf\nm{a=\"b,c\",d=\"e\"} -Inf 1234567\n"
	st, err := Validate(strings.NewReader(good))
	if err != nil {
		t.Fatalf("Validate rejected valid input: %v", err)
	}
	if st.Samples != 2 {
		t.Errorf("samples = %d, want 2", st.Samples)
	}
}

func TestHelpEscaping(t *testing.T) {
	var sb strings.Builder
	New(&sb).Counter("m_total", "line\nbreak \\ slash", 1)
	out := sb.String()
	if !strings.Contains(out, `line\nbreak \\ slash`) {
		t.Errorf("help not escaped: %q", out)
	}
	if _, err := Validate(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
}
