// Package promtext emits the Prometheus text exposition format
// (text/plain; version=0.0.4): HELP/TYPE comments, counter and gauge
// samples, and native histograms as cumulative _bucket/_sum/_count
// series. Both metrics registries (the client pool's and the server
// transport's) render through it, so the two endpoints agree on format
// details a scraper is strict about — label escaping, bucket cumulation,
// the +Inf bucket, and the trailing newline per sample.
package promtext

import (
	"fmt"
	"io"
	"strconv"
)

// ContentType is the exposition content type scrapers expect.
const ContentType = "text/plain; version=0.0.4"

// Writer accumulates exposition lines onto an io.Writer. Errors are
// sticky: after the first write error every method is a no-op and Err
// reports the failure.
type Writer struct {
	w   io.Writer
	err error
}

// New returns a Writer emitting to w.
func New(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, if any.
func (p *Writer) Err() error { return p.err }

func (p *Writer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the HELP and TYPE comment lines for a metric.
func (p *Writer) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Counter emits one counter metric (name should end in _total by
// convention).
func (p *Writer) Counter(name, help string, value int64) {
	p.header(name, help, "counter")
	p.printf("%s %d\n", name, value)
}

// Gauge emits one gauge metric.
func (p *Writer) Gauge(name, help string, value int64) {
	p.header(name, help, "gauge")
	p.printf("%s %d\n", name, value)
}

// CounterWithLabel emits a counter family with one label across several
// values (e.g. errors_total{kind="dial"}).
func (p *Writer) CounterWithLabel(name, help, label string, values []LabeledValue) {
	p.header(name, help, "counter")
	for _, v := range values {
		p.printf("%s{%s=%q} %d\n", name, label, v.Label, v.Value)
	}
}

// LabeledValue is one sample of a labeled family.
type LabeledValue struct {
	Label string
	Value int64
}

// Histogram emits a native histogram: per-bucket cumulative counts with
// le upper bounds, the implicit +Inf bucket, _sum and _count. uppers[i]
// is bucket i's inclusive upper bound; counts[i] its (non-cumulative)
// observation count. sum is in the same unit as the bounds.
func (p *Writer) Histogram(name, help string, uppers []float64, counts []int64, sum float64, count int64) {
	p.header(name, help, "histogram")
	p.histogramSeries(name, "", uppers, counts, count, nil)
	p.printf("%s_sum %s\n", name, strconv.FormatFloat(sum, 'g', -1, 64))
	p.printf("%s_count %d\n", name, count)
}

// Exemplar is an OpenMetrics-style exemplar attached to a histogram
// bucket line: one label pair (typically a trace/span id) and the
// exemplified observation value.
type Exemplar struct {
	LabelKey   string
	LabelValue string
	Value      float64
}

// LabeledHistogram is one series of a label-partitioned histogram
// family (see HistogramWithLabel). Exemplar, when non-nil, is attached
// to the +Inf bucket line (the bucket every observation falls into).
type LabeledHistogram struct {
	Label    string
	Uppers   []float64
	Counts   []int64
	Sum      float64
	Count    int64
	Exemplar *Exemplar
}

// HistogramWithLabel emits a histogram family partitioned by one label
// (e.g. stage="serialize"): one HELP/TYPE header, then per series the
// cumulative buckets, +Inf, _sum and _count, each carrying the label.
func (p *Writer) HistogramWithLabel(name, help, label string, series []LabeledHistogram) {
	p.header(name, help, "histogram")
	for _, s := range series {
		pair := label + "=" + strconv.Quote(s.Label)
		p.histogramSeries(name, pair, s.Uppers, s.Counts, s.Count, s.Exemplar)
		p.printf("%s_sum{%s} %s\n", name, pair, strconv.FormatFloat(s.Sum, 'g', -1, 64))
		p.printf("%s_count{%s} %d\n", name, pair, s.Count)
	}
}

// histogramSeries emits one series' bucket lines. pair is the extra
// label pair ("" for unlabeled); ex, when non-nil, rides the +Inf line.
func (p *Writer) histogramSeries(name, pair string, uppers []float64, counts []int64, count int64, ex *Exemplar) {
	sep := ""
	if pair != "" {
		sep = ","
	}
	var cum int64
	for i, ub := range uppers {
		cum += counts[i]
		p.printf("%s_bucket{%s%sle=%q} %d\n", name, pair, sep, formatBound(ub), cum)
	}
	if ex != nil {
		p.printf("%s_bucket{%s%sle=\"+Inf\"} %d # {%s=%q} %s\n",
			name, pair, sep, count, ex.LabelKey, ex.LabelValue,
			strconv.FormatFloat(ex.Value, 'g', -1, 64))
		return
	}
	p.printf("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, pair, sep, count)
}

// formatBound renders a bucket boundary the way Prometheus does: shortest
// float representation.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the format spec.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
