// Package serverpool is the concurrent SOAP server runtime. Where
// server.SOAP serializes every request behind one mutex, Runtime keeps
// a sharded pool of per-connection (or per-client) replicas, each with
// its own differential deserializer and differential response stub —
// the server-side mirror of the client's pool.ShardedStore. Requests
// from the same connection land on the same replica, so its stored
// templates track that client's message shapes: concurrent clients with
// different shapes no longer thrash a shared template set, and decodes
// proceed in parallel with no cross-connection lock.
package serverpool

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"bsoap/internal/core"
	"bsoap/internal/diffdeser"
	"bsoap/internal/multiref"
	"bsoap/internal/server"
	"bsoap/internal/soapdec"
	"bsoap/internal/trace"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

// Handler is the per-operation callback, identical to server.Handler.
type Handler = server.Handler

// HandlerFactory builds one handler instance. Each replica gets its own
// instance, so handlers may keep per-instance state — in particular a
// reused response wire.Message, which is exactly what makes the
// response-side differential stub effective and is not safe to share
// across replicas.
type HandlerFactory func() Handler

// Affinity selects how requests are grouped onto replicas.
type Affinity int

const (
	// AffinityConn gives every transport connection its own replica.
	// Keep-alive clients (the paper's model) see perfect template
	// locality; the replica dies with the connection's LRU slot.
	AffinityConn Affinity = iota
	// AffinityClient groups by remote host instead, so a client that
	// reconnects (or opens several connections) keeps its templates.
	// Replicas are then contended locks, not exclusive owners.
	AffinityClient
)

// Options configure a Runtime.
type Options struct {
	// DifferentialDeserialization enables the per-replica diffdeser fast
	// path; off, every request is a full schema-driven parse.
	DifferentialDeserialization bool
	// Core configures each replica's response-side differential stub.
	Core core.Config
	// Shards is the number of replica-registry shards (rounded up to a
	// power of two; default 16). More shards means less registry-lock
	// contention; replicas themselves are never shared across requests
	// of different connections under AffinityConn.
	Shards int
	// MaxReplicas bounds resident replicas across all shards (default
	// 256). The bound is enforced per shard as max(1, MaxReplicas/Shards)
	// with LRU eviction, mirroring pool.ShardedStore.
	MaxReplicas int
	// MaxKeysPerReplica bounds operation keys inside each replica's
	// deserializer (0 = diffdeser.DefaultMaxKeys).
	MaxKeysPerReplica int
	// Affinity selects the replica grouping key (default AffinityConn).
	Affinity Affinity
	// SelfCheck re-decodes every differential fast-path result with a
	// from-scratch parse and compares leaf values — the conformance
	// paranoid mode. A mismatch fails the request and is counted.
	SelfCheck bool
	// Metrics receives DDS and eviction counters; nil gets a private
	// registry. Pass the same registry as the transport.Server to export
	// everything on one /metrics page.
	Metrics *transport.ServerMetrics
}

// Runtime dispatches SOAP requests across replica deserializer/stub
// pairs. Register all operations before serving; Register is not safe
// to call concurrently with request handling.
type Runtime struct {
	opts    Options
	metrics *transport.ServerMetrics
	ops     map[string]*operation
	shards  []shard
	mask    uint32

	wsdlMu sync.Mutex
	wsdl   []byte

	requests         atomic.Int64
	fullParses       atomic.Int64
	diffDecodes      atomic.Int64
	valuesReparsed   atomic.Int64
	multiRefInlined  atomic.Int64
	selfCheckFails   atomic.Int64
	replicaEvictions atomic.Int64
	ddsKeyEvictions  atomic.Int64
}

type operation struct {
	schema  *soapdec.Schema
	factory HandlerFactory
}

// replicaKey identifies one replica: the connection ID under
// AffinityConn, the remote host under AffinityClient.
type replicaKey struct {
	conn uint64
	host string
}

type shard struct {
	mu       sync.Mutex
	replicas map[replicaKey]*replica
	lru      []replicaKey // front = most recently used
	max      int
}

// replica is one client's private decode/encode state: a bounded
// differential deserializer whose templates track that client's request
// shapes, a differential response stub, and per-replica handler
// instances (handlers reuse response messages, so instances cannot be
// shared). The mutex serializes the rare case of two requests mapping
// to one replica (AffinityClient, or an evicted key recreated while its
// old request still runs).
type replica struct {
	mu           sync.Mutex
	differ       *diffdeser.Deserializer
	keyEvictions int64 // last value drained into metrics
	handlers     map[string]Handler
	respBuf      bytes.Buffer
	stub         *core.Stub
}

// Stats is a point-in-time snapshot of runtime counters.
type Stats struct {
	Requests         int64
	FullParses       int64
	DiffDecodes      int64
	ValuesReparsed   int64
	MultiRefInlined  int64
	SelfCheckFails   int64
	Replicas         int // currently resident
	ReplicaEvictions int64
	DDSKeyEvictions  int64
}

// New returns an empty runtime.
func New(opts Options) *Runtime {
	nshards := opts.Shards
	if nshards <= 0 {
		nshards = 16
	}
	// Round up to a power of two so the shard index is a mask.
	n := 1
	for n < nshards {
		n <<= 1
	}
	maxReplicas := opts.MaxReplicas
	if maxReplicas <= 0 {
		maxReplicas = 256
	}
	perShard := maxReplicas / n
	if perShard < 1 {
		perShard = 1
	}
	m := opts.Metrics
	if m == nil {
		m = transport.NewServerMetrics()
	}
	rt := &Runtime{
		opts:    opts,
		metrics: m,
		ops:     make(map[string]*operation),
		shards:  make([]shard, n),
		mask:    uint32(n - 1),
	}
	for i := range rt.shards {
		rt.shards[i].replicas = make(map[replicaKey]*replica)
		rt.shards[i].max = perShard
	}
	return rt
}

// Register adds an operation. The factory runs once per replica that
// sees the operation. Not safe concurrently with request handling.
func (rt *Runtime) Register(schema *soapdec.Schema, factory HandlerFactory) {
	rt.ops[schema.Op] = &operation{schema: schema, factory: factory}
}

// RegisterShared adds an operation whose single handler is shared by
// every replica. Only safe for handlers that build a fresh response
// message per call (forfeiting response-side differential matches) or
// are otherwise concurrency-safe.
func (rt *Runtime) RegisterShared(schema *soapdec.Schema, h Handler) {
	rt.Register(schema, func() Handler { return h })
}

func (rt *Runtime) lookupSchema(opLocal string) (*soapdec.Schema, bool) {
	op, ok := rt.ops[opLocal]
	if !ok {
		return nil, false
	}
	return op.schema, true
}

// SetWSDL installs the service description served on GET requests.
func (rt *Runtime) SetWSDL(doc []byte) {
	rt.wsdlMu.Lock()
	rt.wsdl = append([]byte(nil), doc...)
	rt.wsdlMu.Unlock()
}

// Stats returns runtime counters.
func (rt *Runtime) Stats() Stats {
	st := Stats{
		Requests:         rt.requests.Load(),
		FullParses:       rt.fullParses.Load(),
		DiffDecodes:      rt.diffDecodes.Load(),
		ValuesReparsed:   rt.valuesReparsed.Load(),
		MultiRefInlined:  rt.multiRefInlined.Load(),
		SelfCheckFails:   rt.selfCheckFails.Load(),
		ReplicaEvictions: rt.replicaEvictions.Load(),
		DDSKeyEvictions:  rt.ddsKeyEvictions.Load(),
	}
	for i := range rt.shards {
		sh := &rt.shards[i]
		sh.mu.Lock()
		st.Replicas += len(sh.replicas)
		sh.mu.Unlock()
	}
	return st
}

// ResponseStats sums the response stubs' differential counters across
// resident replicas (evicted replicas take their counts with them).
func (rt *Runtime) ResponseStats() core.Stats {
	var sum core.Stats
	for i := range rt.shards {
		sh := &rt.shards[i]
		sh.mu.Lock()
		reps := make([]*replica, 0, len(sh.replicas))
		for _, r := range sh.replicas {
			reps = append(reps, r)
		}
		sh.mu.Unlock()
		for _, r := range reps {
			r.mu.Lock()
			cs := r.stub.Stats()
			r.mu.Unlock()
			sum.Calls += cs.Calls
			sum.FirstTimeSends += cs.FirstTimeSends
			sum.ContentMatches += cs.ContentMatches
			sum.StructuralMatches += cs.StructuralMatches
			sum.PartialMatches += cs.PartialMatches
			sum.FullSerializations += cs.FullSerializations
			sum.DegradedFTS += cs.DegradedFTS
			sum.BytesSent += cs.BytesSent
			sum.BytesSerialized += cs.BytesSerialized
			sum.ValuesRewritten += cs.ValuesRewritten
			sum.TagShifts += cs.TagShifts
			sum.Shifts += cs.Shifts
			sum.Steals += cs.Steals
			sum.Grows += cs.Grows
			sum.Splits += cs.Splits
		}
	}
	return sum
}

// HTTPHandler adapts the runtime to the transport server: POSTs are
// dispatched as SOAP calls on the caller's replica, GETs answered with
// the WSDL when one is installed.
func (rt *Runtime) HTTPHandler() transport.Handler {
	return func(req *transport.Request) ([]byte, error) {
		if req.Method == "GET" {
			rt.wsdlMu.Lock()
			doc := rt.wsdl
			rt.wsdlMu.Unlock()
			if doc == nil {
				return nil, fmt.Errorf("serverpool: no WSDL installed")
			}
			return doc, nil
		}
		r := rt.acquire(rt.keyFor(req))
		defer r.mu.Unlock()
		return rt.handle(r, req.Body)
	}
}

// Handle decodes and dispatches one envelope for the given connection
// identity, for callers not going through transport.Server.
func (rt *Runtime) Handle(connID uint64, remoteAddr string, body []byte) ([]byte, error) {
	r := rt.acquire(rt.keyFor(&transport.Request{ConnID: connID, RemoteAddr: remoteAddr}))
	defer r.mu.Unlock()
	return rt.handle(r, body)
}

func (rt *Runtime) keyFor(req *transport.Request) replicaKey {
	if rt.opts.Affinity == AffinityClient {
		host := req.RemoteAddr
		if c := strings.LastIndexByte(host, ':'); c >= 0 {
			host = host[:c]
		}
		return replicaKey{host: host}
	}
	return replicaKey{conn: req.ConnID}
}

func (rt *Runtime) shardFor(key replicaKey) *shard {
	var h uint32
	if key.host != "" {
		h = 2166136261 // FNV-1a
		for i := 0; i < len(key.host); i++ {
			h ^= uint32(key.host[i])
			h *= 16777619
		}
	} else {
		h = uint32(key.conn*2654435761) ^ uint32(key.conn>>32)
	}
	return &rt.shards[h&rt.mask]
}

// acquire returns the key's replica with its mutex held. Finding or
// creating the replica holds only the shard lock; the replica lock is
// taken outside it, so a slow request on one replica never blocks
// lookups of its shard siblings.
func (rt *Runtime) acquire(key replicaKey) *replica {
	sh := rt.shardFor(key)
	sh.mu.Lock()
	r, ok := sh.replicas[key]
	if ok {
		sh.touch(key)
	} else {
		r = rt.newReplica()
		sh.replicas[key] = r
		sh.lru = append(sh.lru, replicaKey{})
		copy(sh.lru[1:], sh.lru)
		sh.lru[0] = key
		if len(sh.replicas) > sh.max {
			victim := sh.lru[len(sh.lru)-1]
			sh.lru = sh.lru[:len(sh.lru)-1]
			delete(sh.replicas, victim)
			// The evicted replica is not torn down: a request already
			// holding it finishes normally, and its arenas stay valid for
			// any in-flight response bytes (same rule as ShardedStore).
			rt.replicaEvictions.Add(1)
			rt.metrics.RecordReplicaEviction()
		}
	}
	sh.mu.Unlock()
	r.mu.Lock()
	return r
}

// touch moves key to the LRU front. Caller holds sh.mu.
func (sh *shard) touch(key replicaKey) {
	for i, k := range sh.lru {
		if k == key {
			copy(sh.lru[1:i+1], sh.lru[:i])
			sh.lru[0] = key
			return
		}
	}
}

func (rt *Runtime) newReplica() *replica {
	r := &replica{handlers: make(map[string]Handler)}
	if rt.opts.DifferentialDeserialization {
		r.differ = diffdeser.NewBounded(rt.lookupSchema, rt.opts.MaxKeysPerReplica)
	}
	r.stub = core.NewStub(rt.opts.Core, transport.WriterSink{W: &r.respBuf})
	return r
}

// handle runs one request on r. Caller holds r.mu.
func (rt *Runtime) handle(r *replica, body []byte) ([]byte, error) {
	rt.requests.Add(1)

	var span uint64
	traced := trace.Enabled()
	if traced {
		span = trace.BeginSpan()
	}

	if multiref.HasRefs(body) {
		inlined, err := multiref.Inline(body)
		if err != nil {
			return nil, fmt.Errorf("serverpool: multi-ref: %w", err)
		}
		body = inlined
		rt.multiRefInlined.Add(1)
	}

	var msg *wire.Message
	if r.differ != nil {
		opLocal, perr := server.PeekOperation(body)
		if perr != nil {
			return nil, perr
		}
		var info diffdeser.Info
		var err error
		msg, info, err = r.differ.Decode(opLocal, body)
		if err != nil {
			return nil, fmt.Errorf("serverpool: decode: %w", err)
		}
		rt.metrics.RecordDDSDecode(!info.FullParse, info.ValuesReparsed)
		if d := r.differ.Evictions() - r.keyEvictions; d > 0 {
			r.keyEvictions += d
			rt.ddsKeyEvictions.Add(d)
			rt.metrics.AddDDSKeyEvictions(d)
		}
		var fast int64
		if info.FullParse {
			rt.fullParses.Add(1)
		} else {
			fast = 1
			rt.diffDecodes.Add(1)
			rt.valuesReparsed.Add(int64(info.ValuesReparsed))
		}
		if traced {
			trace.Rec(span, trace.KindServerDecode, fast, int64(info.ValuesReparsed), int64(len(body)))
		}
		if rt.opts.SelfCheck && !info.FullParse {
			if err := rt.selfCheck(body, msg); err != nil {
				rt.selfCheckFails.Add(1)
				return nil, err
			}
		}
	} else {
		res, derr := soapdec.Decode(body, rt.lookupSchema, false)
		if derr != nil {
			return nil, fmt.Errorf("serverpool: decode: %w", derr)
		}
		msg = res.Msg
		rt.fullParses.Add(1)
		rt.metrics.RecordDDSDecode(false, 0)
		if traced {
			trace.Rec(span, trace.KindServerDecode, 0, 0, int64(len(body)))
		}
	}

	opLocal := msg.Operation()
	h := r.handlers[opLocal]
	if h == nil {
		op := rt.ops[opLocal]
		if op == nil {
			return nil, fmt.Errorf("serverpool: no handler for %s", opLocal)
		}
		h = op.factory()
		r.handlers[opLocal] = h
	}
	resp, err := h(msg)
	if err != nil {
		return nil, fmt.Errorf("serverpool: %s: %w", opLocal, err)
	}
	if resp == nil {
		return nil, nil
	}

	r.respBuf.Reset()
	ci, err := r.stub.Call(resp)
	if err != nil {
		return nil, fmt.Errorf("serverpool: response serialization: %w", err)
	}
	if traced {
		trace.Rec(span, trace.KindServerRespond, int64(ci.Match), int64(r.respBuf.Len()), 0)
	}
	out := make([]byte, r.respBuf.Len())
	copy(out, r.respBuf.Bytes())
	return out, nil
}

// selfCheck re-decodes body from scratch and compares every leaf with
// the fast-path result. The reference parse shares no state with the
// differential one, so agreement means the region diff reconstructed
// the exact message a cold parse would have produced.
func (rt *Runtime) selfCheck(body []byte, got *wire.Message) error {
	res, err := soapdec.Decode(body, rt.lookupSchema, false)
	if err != nil {
		return fmt.Errorf("serverpool: self-check reference parse: %w", err)
	}
	want := res.Msg
	if got.Operation() != want.Operation() {
		return fmt.Errorf("serverpool: self-check: operation %q != %q", got.Operation(), want.Operation())
	}
	if got.NumLeaves() != want.NumLeaves() {
		return fmt.Errorf("serverpool: self-check: %d leaves != %d", got.NumLeaves(), want.NumLeaves())
	}
	for i := 0; i < want.NumLeaves(); i++ {
		if got.LeafTag(i) != want.LeafTag(i) {
			return fmt.Errorf("serverpool: self-check: leaf %d tag %q != %q", i, got.LeafTag(i), want.LeafTag(i))
		}
		gk, wk := got.LeafType(i).Kind, want.LeafType(i).Kind
		if gk != wk {
			return fmt.Errorf("serverpool: self-check: leaf %d kind %v != %v", i, gk, wk)
		}
		var same bool
		switch wk {
		case wire.Int:
			same = got.LeafInt(i) == want.LeafInt(i)
		case wire.Double:
			same = got.LeafDouble(i) == want.LeafDouble(i)
		case wire.String:
			same = got.LeafString(i) == want.LeafString(i)
		case wire.Bool:
			same = got.LeafBool(i) == want.LeafBool(i)
		}
		if !same {
			return fmt.Errorf("serverpool: self-check: leaf %d (%s) value mismatch", i, want.LeafTag(i))
		}
	}
	return nil
}
