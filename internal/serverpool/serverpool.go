// Package serverpool is the concurrent SOAP server runtime. Where
// server.SOAP serializes every request behind one mutex, Runtime keeps
// a pool of per-connection (or per-client) replicas, each with its own
// differential deserializer and differential response stub — the
// server-side mirror of the client's pool.ShardedStore. Requests from
// the same connection land on the same replica, so its stored templates
// track that client's message shapes: concurrent clients with different
// shapes no longer thrash a shared template set, and decodes proceed in
// parallel with no cross-connection lock.
//
// Replicas live in the unified replica registry (internal/replica),
// which owns sharding, the recency list, in-flight refcounts and the
// MaxTemplateBytes budget; this package owns what is server-specific —
// the decode fast path, handler dispatch and response serialization.
package serverpool

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/diffdeser"
	"bsoap/internal/multiref"
	reg "bsoap/internal/replica"
	"bsoap/internal/server"
	"bsoap/internal/soapdec"
	"bsoap/internal/trace"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

// Handler is the per-operation callback, identical to server.Handler.
type Handler = server.Handler

// HandlerFactory builds one handler instance. Each replica gets its own
// instance, so handlers may keep per-instance state — in particular a
// reused response wire.Message, which is exactly what makes the
// response-side differential stub effective and is not safe to share
// across replicas.
type HandlerFactory func() Handler

// Affinity selects how requests are grouped onto replicas.
type Affinity int

const (
	// AffinityConn gives every transport connection its own replica.
	// Keep-alive clients (the paper's model) see perfect template
	// locality; the replica dies with the connection's LRU slot.
	AffinityConn Affinity = iota
	// AffinityClient groups by remote host instead, so a client that
	// reconnects (or opens several connections) keeps its templates.
	// Replicas are then contended locks, not exclusive owners.
	AffinityClient
)

// Options configure a Runtime.
type Options struct {
	// DifferentialDeserialization enables the per-replica diffdeser fast
	// path; off, every request is a full schema-driven parse.
	DifferentialDeserialization bool
	// Core configures each replica's response-side differential stub.
	Core core.Config
	// Shards is the number of replica-registry shards (rounded up to a
	// power of two; default 16). More shards means less registry-lock
	// contention; replicas themselves are never shared across requests
	// of different connections under AffinityConn.
	Shards int
	// MaxReplicas bounds resident replicas across all shards (default
	// 256). The bound is enforced per shard as max(1, MaxReplicas/Shards)
	// with LRU eviction, mirroring pool.ShardedStore.
	MaxReplicas int
	// MaxTemplateBytes budgets the replicas' aggregate template memory
	// (request deserializer templates, response stub templates and the
	// response buffer): the registry evicts least-recently-used replicas
	// to stay at or below it. Zero leaves memory bounded only by
	// MaxReplicas and the per-replica key caps. See README "Sizing
	// template memory".
	MaxTemplateBytes int64
	// MaxKeysPerReplica bounds operation keys inside each replica's
	// deserializer (0 = diffdeser.DefaultMaxKeys).
	MaxKeysPerReplica int
	// Affinity selects the replica grouping key (default AffinityConn).
	Affinity Affinity
	// SelfCheck re-decodes every differential fast-path result with a
	// from-scratch parse and compares leaf values — the conformance
	// paranoid mode. A mismatch fails the request and is counted.
	SelfCheck bool
	// Delta accepts differential-transmission requests: sync-annotated
	// full bodies are stored as per-replica patch bases (and
	// acknowledged, which is what turns the client's patch sends on),
	// and patch frames are applied to the held base before decoding.
	// Any mismatch is answered 409/resync and the client falls back to a
	// full-body send — off or on, reconstructed bodies are byte-identical
	// to what the client would have sent in full.
	Delta bool
	// Metrics receives DDS and eviction counters; nil gets a private
	// registry. Pass the same registry as the transport.Server to export
	// everything on one /metrics page.
	Metrics *transport.ServerMetrics
}

// Runtime dispatches SOAP requests across replica deserializer/stub
// pairs. Register all operations before serving; Register is not safe
// to call concurrently with request handling.
type Runtime struct {
	opts    Options
	metrics *transport.ServerMetrics
	ops     map[string]*operation
	reg     *reg.Registry[*replica]

	wsdlMu sync.Mutex
	wsdl   []byte

	requests         atomic.Int64
	fullParses       atomic.Int64
	diffDecodes      atomic.Int64
	valuesReparsed   atomic.Int64
	multiRefInlined  atomic.Int64
	selfCheckFails   atomic.Int64
	replicaEvictions atomic.Int64
	ddsKeyEvictions  atomic.Int64
	deltaApplied     atomic.Int64
	deltaSyncs       atomic.Int64
	deltaResyncs     atomic.Int64
}

type operation struct {
	schema  *soapdec.Schema
	factory HandlerFactory
}

// replica is one client's private decode/encode state: a bounded
// differential deserializer whose templates track that client's request
// shapes, a differential response stub, and per-replica handler
// instances (handlers reuse response messages, so instances cannot be
// shared). The mutex serializes the rare case of two requests mapping
// to one replica (AffinityClient, or an evicted key recreated while its
// old request still runs).
type replica struct {
	mu           sync.Mutex
	differ       *diffdeser.Deserializer
	keyEvictions int64 // last value drained into metrics
	// handlers maps operation to this replica's handler instance. The
	// tracker is the same bounded map the client pool uses for message
	// affinity: at capacity it resets wholesale and the next request of
	// a forgotten operation just re-runs its factory.
	handlers *reg.Tracker[string, Handler]
	respBuf  bytes.Buffer
	stub     *core.Stub
	// size caches the replica's memory footprint for the registry's
	// budget accounting: stored by release while the replica lock is
	// held, read lock-free by SizeBytes under registry locks.
	size atomic.Int64
	// stubFP is the last-walked response-stub footprint and stubGen the
	// stub-stats generation it was computed at (both guarded by mu):
	// release skips the chunk-list walk while the counters that can
	// change the footprint hold still.
	stubFP  int64
	stubGen int64
	// bases holds this replica's differential-transmission patch bases
	// (template id -> last synchronized body), nil until the first sync;
	// deltaBytes tracks their aggregate capacity for the footprint, and
	// frame is the reused patch-parse scratch. All guarded by mu.
	bases      *reg.LRU[uint64, *deltaBase]
	deltaBytes int64
	frame      wire.DeltaFrame
}

// SizeBytes reports the cached footprint (replica.Entry).
func (r *replica) SizeBytes() int { return int(r.size.Load()) }

// ReleaseArenas returns the response stub's template arenas to the
// chunk pool (replica.Entry). The registry calls it once the evicted
// replica's last in-flight request has finished; taking the replica
// lock serializes against that request's final response bytes.
func (r *replica) ReleaseArenas() {
	r.mu.Lock()
	r.stub.Store().ReleaseAll()
	r.mu.Unlock()
}

// Stats is a point-in-time snapshot of runtime counters.
type Stats struct {
	Requests         int64
	FullParses       int64
	DiffDecodes      int64
	ValuesReparsed   int64
	MultiRefInlined  int64
	SelfCheckFails   int64
	Replicas         int // currently resident
	ReplicaEvictions int64
	DDSKeyEvictions  int64

	// Differential transmission: patch frames applied, full bodies stored
	// as bases, and 409/resync answers.
	DeltaApplied int64
	DeltaSyncs   int64
	DeltaResyncs int64
}

// New returns an empty runtime.
func New(opts Options) *Runtime {
	nshards := opts.Shards
	if nshards <= 0 {
		nshards = 16
	}
	maxReplicas := opts.MaxReplicas
	if maxReplicas <= 0 {
		maxReplicas = 256
	}
	m := opts.Metrics
	if m == nil {
		m = transport.NewServerMetrics()
	}
	rt := &Runtime{
		opts:    opts,
		metrics: m,
		ops:     make(map[string]*operation),
	}
	rt.reg = reg.NewRegistry(reg.RegistryOptions[*replica]{
		Shards:     nshards,
		MaxEntries: maxReplicas,
		MaxBytes:   opts.MaxTemplateBytes,
		New:        func(reg.Key) *replica { return rt.newReplica() },
		OnEvict: func(key reg.Key, reason reg.Reason, bytes int64) {
			// The evicted replica is not torn down here: a request
			// already holding it finishes normally, and the registry
			// releases its arenas after the last in-flight reference.
			rt.replicaEvictions.Add(1)
			m.RecordReplicaEviction(reason == reg.ReasonBudget)
			if trace.Enabled() {
				trace.Rec(0, trace.KindReplicaEvict, trace.OpID(key.String()), int64(reason), bytes)
			}
		},
	})
	m.SetTemplateSource(rt.reg.Counters)
	return rt
}

// Register adds an operation. The factory runs once per replica that
// sees the operation. Not safe concurrently with request handling.
func (rt *Runtime) Register(schema *soapdec.Schema, factory HandlerFactory) {
	rt.ops[schema.Op] = &operation{schema: schema, factory: factory}
}

// RegisterShared adds an operation whose single handler is shared by
// every replica. Only safe for handlers that build a fresh response
// message per call (forfeiting response-side differential matches) or
// are otherwise concurrency-safe.
func (rt *Runtime) RegisterShared(schema *soapdec.Schema, h Handler) {
	rt.Register(schema, func() Handler { return h })
}

func (rt *Runtime) lookupSchema(opLocal string) (*soapdec.Schema, bool) {
	op, ok := rt.ops[opLocal]
	if !ok {
		return nil, false
	}
	return op.schema, true
}

// SetWSDL installs the service description served on GET requests.
func (rt *Runtime) SetWSDL(doc []byte) {
	rt.wsdlMu.Lock()
	rt.wsdl = append([]byte(nil), doc...)
	rt.wsdlMu.Unlock()
}

// Stats returns runtime counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Requests:         rt.requests.Load(),
		FullParses:       rt.fullParses.Load(),
		DiffDecodes:      rt.diffDecodes.Load(),
		ValuesReparsed:   rt.valuesReparsed.Load(),
		MultiRefInlined:  rt.multiRefInlined.Load(),
		SelfCheckFails:   rt.selfCheckFails.Load(),
		Replicas:         rt.reg.Len(),
		ReplicaEvictions: rt.replicaEvictions.Load(),
		DDSKeyEvictions:  rt.ddsKeyEvictions.Load(),
		DeltaApplied:     rt.deltaApplied.Load(),
		DeltaSyncs:       rt.deltaSyncs.Load(),
		DeltaResyncs:     rt.deltaResyncs.Load(),
	}
}

// ResponseStats sums the response stubs' differential counters across
// resident replicas (evicted replicas take their counts with them).
func (rt *Runtime) ResponseStats() core.Stats {
	var sum core.Stats
	rt.reg.Each(func(_ reg.Key, r *replica) {
		r.mu.Lock()
		cs := r.stub.Stats()
		r.mu.Unlock()
		sum.Calls += cs.Calls
		sum.FirstTimeSends += cs.FirstTimeSends
		sum.ContentMatches += cs.ContentMatches
		sum.StructuralMatches += cs.StructuralMatches
		sum.PartialMatches += cs.PartialMatches
		sum.FullSerializations += cs.FullSerializations
		sum.DegradedFTS += cs.DegradedFTS
		sum.BytesSent += cs.BytesSent
		sum.BytesSerialized += cs.BytesSerialized
		sum.ValuesRewritten += cs.ValuesRewritten
		sum.TagShifts += cs.TagShifts
		sum.Shifts += cs.Shifts
		sum.Steals += cs.Steals
		sum.Grows += cs.Grows
		sum.Splits += cs.Splits
	})
	return sum
}

// DebugTemplates snapshots the replica registry in the uniform
// client/server dump format served by /debug/templates and read by
// `bsoap-inspect templates`. Each server entry is a single replica; the
// affinity column carries the conn:N or host:X grouping key.
func (rt *Runtime) DebugTemplates() reg.Dump {
	return rt.reg.Dump("server", nil)
}

// TemplatesHandler serves DebugTemplates as indented JSON — the
// server-side /debug/templates endpoint.
func (rt *Runtime) TemplatesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rt.DebugTemplates())
	})
}

// HTTPHandler adapts the runtime to the transport server: POSTs are
// dispatched as SOAP calls on the caller's replica, GETs answered with
// the WSDL when one is installed.
func (rt *Runtime) HTTPHandler() transport.Handler {
	return func(req *transport.Request) ([]byte, error) {
		if req.Method == "GET" {
			rt.wsdlMu.Lock()
			doc := rt.wsdl
			rt.wsdlMu.Unlock()
			if doc == nil {
				return nil, fmt.Errorf("serverpool: no WSDL installed")
			}
			return doc, nil
		}
		slot, r := rt.acquire(rt.keyFor(req))
		defer rt.release(slot)
		body := req.Body
		if rt.opts.Delta {
			switch req.DeltaMode {
			case transport.DeltaPatch:
				reconstructed, err := rt.applyDelta(r, req)
				if err != nil {
					return nil, err
				}
				body = reconstructed
			case transport.DeltaSync:
				rt.storeDeltaBase(r, req)
			}
		} else if req.DeltaMode == transport.DeltaPatch {
			// A patch arrived but delta is off (e.g. disabled after a
			// restart): demand a full body rather than failing the call.
			rt.deltaResyncs.Add(1)
			return nil, fmt.Errorf("serverpool: delta disabled: %w", wire.ErrDeltaResync)
		}
		return rt.handle(r, body, req.TraceSpan, req.ConnID)
	}
}

// Handle decodes and dispatches one envelope for the given connection
// identity, for callers not going through transport.Server.
func (rt *Runtime) Handle(connID uint64, remoteAddr string, body []byte) ([]byte, error) {
	slot, r := rt.acquire(rt.keyFor(&transport.Request{ConnID: connID, RemoteAddr: remoteAddr}))
	defer rt.release(slot)
	return rt.handle(r, body, 0, connID)
}

func (rt *Runtime) keyFor(req *transport.Request) reg.Key {
	if rt.opts.Affinity == AffinityClient {
		host := req.RemoteAddr
		if c := strings.LastIndexByte(host, ':'); c >= 0 {
			host = host[:c]
		}
		return reg.Key{Sub: host}
	}
	return reg.Key{Conn: req.ConnID}
}

// acquire returns the key's replica with its mutex held and an
// in-flight reference on its registry slot. Finding or creating the
// replica holds only registry locks; the replica lock is taken outside
// them, so a slow request on one replica never blocks lookups of its
// shard siblings.
func (rt *Runtime) acquire(key reg.Key) (*reg.Slot[*replica], *replica) {
	slot, _ := rt.reg.Acquire(key)
	r := slot.Value
	r.mu.Lock()
	return slot, r
}

// release re-accounts the replica's footprint into its cached size,
// unlocks it, and drops the registry reference — the budget-enforcement
// point, and, for an evicted replica, possibly the release that frees
// its arenas. Caller holds r.mu.
func (rt *Runtime) release(slot *reg.Slot[*replica]) {
	r := slot.Value
	if gen := footGen(r.stub.Stats()); gen != r.stubGen {
		r.stubGen = gen
		r.stubFP = int64(r.stub.Store().Footprint())
	}
	fp := r.stubFP + int64(r.respBuf.Cap()) + r.deltaBytes
	if r.differ != nil {
		fp += int64(r.differ.SizeBytes())
	}
	r.size.Store(fp)
	r.mu.Unlock()
	rt.reg.Release(slot)
}

// footGen folds the stub counters that can change its store's footprint
// — template builds and buffer reshaping — into one generation number,
// so the steady state (in-place rewrites, tag shifts) skips the
// chunk-list walk entirely.
func footGen(cs core.Stats) int64 {
	return cs.FirstTimeSends + cs.FullSerializations + cs.Grows + cs.Splits
}

func (rt *Runtime) newReplica() *replica {
	r := &replica{handlers: reg.NewTracker[string, Handler](0)}
	if rt.opts.DifferentialDeserialization {
		r.differ = diffdeser.NewBounded(rt.lookupSchema, rt.opts.MaxKeysPerReplica)
	}
	r.stub = core.NewStub(rt.opts.Core, transport.WriterSink{W: &r.respBuf})
	return r
}

// handle runs one request on r. Caller holds r.mu. clientSpan is the
// span id propagated from the client over the X-BSoap-Trace header (0 =
// untraced caller): when present, every event this request records
// carries the client's id, so `bsoap-inspect trace -correlate` can
// merge the two rings into one cross-process timeline.
func (rt *Runtime) handle(r *replica, body []byte, clientSpan, connID uint64) ([]byte, error) {
	rt.requests.Add(1)

	var span uint64
	traced := trace.Enabled()
	if traced {
		if clientSpan != 0 {
			// Adopt the client's span and link a server-local sub-span id
			// to it: the sub-span (A) disambiguates re-sent client spans,
			// the conn id (B) ties the timeline to a transport connection.
			span = clientSpan
			trace.Rec(span, trace.KindServerSpan, int64(trace.BeginSpan()), int64(connID), 0)
		} else {
			span = trace.BeginSpan()
		}
	}
	decodeStart := time.Now()

	if multiref.HasRefs(body) {
		inlined, err := multiref.Inline(body)
		if err != nil {
			return nil, fmt.Errorf("serverpool: multi-ref: %w", err)
		}
		body = inlined
		rt.multiRefInlined.Add(1)
	}

	var msg *wire.Message
	if r.differ != nil {
		opLocal, perr := server.PeekOperation(body)
		if perr != nil {
			return nil, perr
		}
		var info diffdeser.Info
		var err error
		msg, info, err = r.differ.Decode(opLocal, body)
		if err != nil {
			return nil, fmt.Errorf("serverpool: decode: %w", err)
		}
		rt.metrics.RecordDDSDecode(!info.FullParse, info.ValuesReparsed)
		if d := r.differ.Evictions() - r.keyEvictions; d > 0 {
			r.keyEvictions += d
			rt.ddsKeyEvictions.Add(d)
			rt.metrics.AddDDSKeyEvictions(d)
		}
		var fast int64
		if info.FullParse {
			rt.fullParses.Add(1)
		} else {
			fast = 1
			rt.diffDecodes.Add(1)
			rt.valuesReparsed.Add(int64(info.ValuesReparsed))
		}
		if traced {
			trace.Rec(span, trace.KindServerDecode, fast, int64(info.ValuesReparsed), int64(len(body)))
		}
		if rt.opts.SelfCheck && !info.FullParse {
			if err := rt.selfCheck(body, msg); err != nil {
				rt.selfCheckFails.Add(1)
				return nil, err
			}
		}
	} else {
		res, derr := soapdec.Decode(body, rt.lookupSchema, false)
		if derr != nil {
			return nil, fmt.Errorf("serverpool: decode: %w", derr)
		}
		msg = res.Msg
		rt.fullParses.Add(1)
		rt.metrics.RecordDDSDecode(false, 0)
		if traced {
			trace.Rec(span, trace.KindServerDecode, 0, 0, int64(len(body)))
		}
	}

	handlerStart := time.Now()
	decodeNs := handlerStart.Sub(decodeStart).Nanoseconds()
	rt.metrics.Stages.Observe(trace.StageDecode, decodeNs, span)
	if traced {
		trace.Rec(span, trace.KindStage, int64(trace.StageDecode), decodeNs, 0)
	}

	opLocal := msg.Operation()
	h, ok := r.handlers.Lookup(opLocal)
	if !ok {
		op := rt.ops[opLocal]
		if op == nil {
			return nil, fmt.Errorf("serverpool: no handler for %s", opLocal)
		}
		h = op.factory()
		r.handlers.Note(opLocal, h)
	}
	resp, err := h(msg)
	respondStart := time.Now()
	handlerNs := respondStart.Sub(handlerStart).Nanoseconds()
	rt.metrics.Stages.Observe(trace.StageHandler, handlerNs, span)
	if traced {
		trace.Rec(span, trace.KindStage, int64(trace.StageHandler), handlerNs, 0)
	}
	if err != nil {
		return nil, fmt.Errorf("serverpool: %s: %w", opLocal, err)
	}
	if resp == nil {
		return nil, nil
	}

	r.respBuf.Reset()
	if span != 0 {
		// The response stub's serialization events join this request's
		// span instead of allocating their own.
		r.stub.SetTraceSpan(span)
	}
	ci, err := r.stub.Call(resp)
	respondNs := time.Since(respondStart).Nanoseconds()
	rt.metrics.Stages.Observe(trace.StageRespond, respondNs, span)
	if err != nil {
		return nil, fmt.Errorf("serverpool: response serialization: %w", err)
	}
	if traced {
		trace.Rec(span, trace.KindStage, int64(trace.StageRespond), respondNs, 0)
		trace.Rec(span, trace.KindServerRespond, int64(ci.Match), int64(r.respBuf.Len()), 0)
	}
	out := make([]byte, r.respBuf.Len())
	copy(out, r.respBuf.Bytes())
	return out, nil
}

// selfCheck re-decodes body from scratch and compares every leaf with
// the fast-path result. The reference parse shares no state with the
// differential one, so agreement means the region diff reconstructed
// the exact message a cold parse would have produced.
func (rt *Runtime) selfCheck(body []byte, got *wire.Message) error {
	res, err := soapdec.Decode(body, rt.lookupSchema, false)
	if err != nil {
		return fmt.Errorf("serverpool: self-check reference parse: %w", err)
	}
	want := res.Msg
	if got.Operation() != want.Operation() {
		return fmt.Errorf("serverpool: self-check: operation %q != %q", got.Operation(), want.Operation())
	}
	if got.NumLeaves() != want.NumLeaves() {
		return fmt.Errorf("serverpool: self-check: %d leaves != %d", got.NumLeaves(), want.NumLeaves())
	}
	for i := 0; i < want.NumLeaves(); i++ {
		if got.LeafTag(i) != want.LeafTag(i) {
			return fmt.Errorf("serverpool: self-check: leaf %d tag %q != %q", i, got.LeafTag(i), want.LeafTag(i))
		}
		gk, wk := got.LeafType(i).Kind, want.LeafType(i).Kind
		if gk != wk {
			return fmt.Errorf("serverpool: self-check: leaf %d kind %v != %v", i, gk, wk)
		}
		var same bool
		switch wk {
		case wire.Int:
			same = got.LeafInt(i) == want.LeafInt(i)
		case wire.Double:
			same = got.LeafDouble(i) == want.LeafDouble(i)
		case wire.String:
			same = got.LeafString(i) == want.LeafString(i)
		case wire.Bool:
			same = got.LeafBool(i) == want.LeafBool(i)
		}
		if !same {
			return fmt.Errorf("serverpool: self-check: leaf %d (%s) value mismatch", i, want.LeafTag(i))
		}
	}
	return nil
}
