package serverpool

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"bsoap/internal/core"
	reg "bsoap/internal/replica"
	"bsoap/internal/soapdec"
	"bsoap/internal/trace"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

type captureSink struct{ data []byte }

func (c *captureSink) Send(bufs net.Buffers) error {
	c.data = c.data[:0]
	for _, b := range bufs {
		c.data = append(c.data, b...)
	}
	return nil
}

// sumSchema declares sum(values: double[]) -> sumResponse(total: double).
func sumSchema() *soapdec.Schema {
	return &soapdec.Schema{
		Namespace: "urn:calc",
		Op:        "sum",
		Params:    []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
	}
}

// sumFactory builds a per-replica handler that reuses one response
// message, the pattern that makes response-side differential matches.
func sumFactory() Handler {
	resp := wire.NewMessage("urn:calc", "sumResponse")
	total := resp.AddDouble("total", 0)
	return func(req *wire.Message) (*wire.Message, error) {
		var sum float64
		for i := 0; i < req.NumLeaves(); i++ {
			sum += req.LeafDouble(i)
		}
		total.Set(sum)
		return resp, nil
	}
}

func newSumRuntime(opts Options) *Runtime {
	rt := New(opts)
	rt.Register(sumSchema(), sumFactory)
	return rt
}

// client renders sum requests through its own bSOAP stub, like one
// remote caller with a keep-alive connection.
type client struct {
	msg  *wire.Message
	arr  wire.DoubleArrayRef
	sink *captureSink
	stub *core.Stub
}

func newClient(n int) *client {
	c := &client{sink: &captureSink{}}
	c.stub = core.NewStub(core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}}, c.sink)
	c.msg = wire.NewMessage("urn:calc", "sum")
	c.arr = c.msg.AddDoubleArray("values", n)
	for i := 0; i < n; i++ {
		c.arr.Set(i, float64(i))
	}
	return c
}

func (c *client) body(t testing.TB) []byte {
	t.Helper()
	if _, err := c.stub.Call(c.msg); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), c.sink.data...)
}

func TestPerConnectionTemplateLocality(t *testing.T) {
	rt := newSumRuntime(Options{DifferentialDeserialization: true, SelfCheck: true})
	// Two connections with different array shapes: on a shared decoder
	// they would compete for templates; per-connection replicas keep
	// both on the fast path after each one's first request.
	a, b := newClient(8), newClient(13)
	for round := 0; round < 3; round++ {
		a.arr.Set(0, float64(round))
		b.arr.Set(1, float64(round*7))
		ra, err := rt.Handle(1, "10.0.0.1:500", a.body(t))
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 && !strings.Contains(string(ra), "sumResponse") {
			t.Fatalf("response: %s", ra)
		}
		if _, err := rt.Handle(2, "10.0.0.2:500", b.body(t)); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Stats()
	if st.Requests != 6 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.FullParses != 2 || st.DiffDecodes != 4 {
		t.Fatalf("full=%d diff=%d, want 2/4", st.FullParses, st.DiffDecodes)
	}
	if st.SelfCheckFails != 0 {
		t.Fatalf("self-check fails: %d", st.SelfCheckFails)
	}
	if st.Replicas != 2 {
		t.Fatalf("replicas = %d, want 2", st.Replicas)
	}
}

func TestHandlerValuesDecodeCorrectly(t *testing.T) {
	rt := newSumRuntime(Options{DifferentialDeserialization: true, SelfCheck: true})
	c := newClient(4)
	c.arr.Fill([]float64{1, 2, 3, 4.5})
	resp, err := rt.Handle(1, "", c.body(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp), ">10.5<") {
		t.Fatalf("response: %s", resp)
	}
	// Change one value: the fast path must deliver the new sum.
	c.arr.Set(0, 100)
	resp, err = rt.Handle(1, "", c.body(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp), ">109.5<") {
		t.Fatalf("fast-path response: %s", resp)
	}
	if st := rt.Stats(); st.DiffDecodes != 1 || st.SelfCheckFails != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReplicaLRUEviction(t *testing.T) {
	m := transport.NewServerMetrics()
	rt := newSumRuntime(Options{
		DifferentialDeserialization: true,
		Shards:                      1,
		MaxReplicas:                 2,
		Metrics:                     m,
	})
	clients := []*client{newClient(4), newClient(5), newClient(6)}
	for i, c := range clients {
		if _, err := rt.Handle(uint64(i+1), "", c.body(t)); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Stats()
	if st.Replicas != 2 {
		t.Fatalf("replicas = %d, want 2", st.Replicas)
	}
	if st.ReplicaEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.ReplicaEvictions)
	}
	if n := m.Snapshot().ReplicaEvictions; n != 1 {
		t.Fatalf("metrics evictions = %d, want 1", n)
	}
	// Conn 1 was the LRU victim; coming back it full-parses again, while
	// conn 3 (resident) stays on the fast path.
	before := rt.Stats().FullParses
	if _, err := rt.Handle(3, "", clients[2].body(t)); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().FullParses != before {
		t.Fatal("resident replica lost its template")
	}
	if _, err := rt.Handle(1, "", clients[0].body(t)); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().FullParses != before+1 {
		t.Fatal("evicted replica should have full-parsed")
	}
}

func TestClientAffinityGroupsConnections(t *testing.T) {
	rt := newSumRuntime(Options{DifferentialDeserialization: true, Affinity: AffinityClient})
	c := newClient(9)
	// Same host, different ports and conn IDs: one replica, so the
	// second connection inherits the first one's template.
	if _, err := rt.Handle(1, "10.1.1.1:1111", c.body(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Handle(2, "10.1.1.1:2222", c.body(t)); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Replicas != 1 {
		t.Fatalf("replicas = %d, want 1", st.Replicas)
	}
	if st.DiffDecodes != 1 {
		t.Fatalf("diff decodes = %d, want 1 (template shared across conns)", st.DiffDecodes)
	}
}

func TestHTTPHandlerServesWSDLAndPosts(t *testing.T) {
	rt := newSumRuntime(Options{})
	h := rt.HTTPHandler()
	if _, err := h(&transport.Request{Method: "GET"}); err == nil {
		t.Fatal("GET without WSDL should error")
	}
	rt.SetWSDL([]byte("<definitions/>"))
	doc, err := h(&transport.Request{Method: "GET"})
	if err != nil || string(doc) != "<definitions/>" {
		t.Fatalf("GET: %q, %v", doc, err)
	}
	c := newClient(3)
	resp, err := h(&transport.Request{Method: "POST", ConnID: 7, Body: c.body(t)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp), "sumResponse") {
		t.Fatalf("POST response: %s", resp)
	}
}

func TestDDSKeyEvictionsReachMetrics(t *testing.T) {
	m := transport.NewServerMetrics()
	rt := New(Options{DifferentialDeserialization: true, MaxKeysPerReplica: 1, Metrics: m})
	rt.Register(sumSchema(), sumFactory)
	mean := &soapdec.Schema{
		Namespace: "urn:calc",
		Op:        "mean",
		Params:    []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
	}
	rt.Register(mean, sumFactory)

	sumClient := newClient(4)
	meanClient := &client{sink: &captureSink{}}
	meanClient.stub = core.NewStub(core.Config{}, meanClient.sink)
	meanClient.msg = wire.NewMessage("urn:calc", "mean")
	meanClient.arr = meanClient.msg.AddDoubleArray("values", 4)

	// One replica, two ops, key bound 1: alternating ops evicts the
	// other's key every time.
	if _, err := rt.Handle(1, "", sumClient.body(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Handle(1, "", meanClient.body(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Handle(1, "", sumClient.body(t)); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.DDSKeyEvictions != 2 {
		t.Fatalf("key evictions = %d, want 2", st.DDSKeyEvictions)
	}
	if n := m.Snapshot().DDSKeyEvictions; n != 2 {
		t.Fatalf("metrics key evictions = %d, want 2", n)
	}
}

func TestConcurrentClientsRace(t *testing.T) {
	m := transport.NewServerMetrics()
	rt := newSumRuntime(Options{DifferentialDeserialization: true, SelfCheck: true, Metrics: m})
	const clients = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 1; id <= clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Each client alternates two shapes of its own: both fit the
			// replica's per-key template set, so after two full parses the
			// whole interleaving rides the fast path.
			shapes := [2]*client{newClient(4 + id), newClient(40 + id)}
			for r := 0; r < rounds; r++ {
				c := shapes[r%2]
				c.arr.Set(r%c.msg.NumLeaves(), float64(id*1000+r))
				resp, err := rt.Handle(uint64(id), fmt.Sprintf("10.0.0.%d:99", id), c.body(t))
				if err != nil {
					errs <- err
					return
				}
				if !strings.Contains(string(resp), "sumResponse") {
					errs <- fmt.Errorf("client %d: bad response %q", id, resp)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Requests != clients*rounds {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.SelfCheckFails != 0 {
		t.Fatalf("self-check fails: %d", st.SelfCheckFails)
	}
	// Each client full-parses once per shape, then rides the fast path.
	if st.FullParses != clients*2 {
		t.Fatalf("full parses = %d, want %d", st.FullParses, clients*2)
	}
	snap := m.Snapshot()
	if snap.DDSFastPath != int64(clients*(rounds-2)) {
		t.Fatalf("metrics fast path = %d, want %d", snap.DDSFastPath, clients*(rounds-2))
	}
	if rate := float64(st.DiffDecodes) / float64(st.Requests); rate < 0.9 {
		t.Fatalf("fast-path rate %.2f < 0.90", rate)
	}
}

func TestResponseStatsAggregate(t *testing.T) {
	rt := newSumRuntime(Options{})
	c := newClient(4)
	for i := 0; i < 3; i++ {
		if _, err := rt.Handle(1, "", c.body(t)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Handle(2, "", c.body(t)); err != nil {
		t.Fatal(err)
	}
	rs := rt.ResponseStats()
	if rs.Calls != 4 {
		t.Fatalf("response calls = %d", rs.Calls)
	}
	if rs.FirstTimeSends != 2 { // one per replica
		t.Fatalf("first-time sends = %d, want 2", rs.FirstTimeSends)
	}
	// Identical totals: repeats on conn 1's stub are content matches.
	if rs.ContentMatches != 2 {
		t.Fatalf("content matches = %d, want 2", rs.ContentMatches)
	}
}

// TestBudgetEvictionWithInFlightRequest is the server half of the
// eviction-under-budget-pressure contract: a replica condemned by the
// byte budget while its request is still decoding finishes on live
// arenas (under -tags membufpoison a use-after-release would corrupt
// the response), and its arenas are released only after that request's
// reference returns.
func TestBudgetEvictionWithInFlightRequest(t *testing.T) {
	m := transport.NewServerMetrics()
	// A 1-byte budget admits each replica only by self-exemption and
	// condemns everything else at every release.
	rt := newSumRuntime(Options{
		DifferentialDeserialization: true,
		SelfCheck:                   true,
		Shards:                      1,
		MaxTemplateBytes:            1,
		Metrics:                     m,
	})
	a, b := newClient(6), newClient(7)

	// Warm conn 1, then take its replica as an in-flight request would.
	if _, err := rt.Handle(1, "", a.body(t)); err != nil {
		t.Fatal(err)
	}
	slot, r := rt.acquire(reg.Key{Conn: 1})

	// Conn 2's release must chase the budget; with conn 1 in flight only
	// the last-resort tier can pay, condemning its replica under us.
	if _, err := rt.Handle(2, "", b.body(t)); err != nil {
		t.Fatal(err)
	}
	if n := m.Snapshot().ReplicaBudgetEvictions; n == 0 {
		t.Fatal("expected a budget eviction while conn 1 was in flight")
	}
	if c := rt.reg.Counters(); c.Pending == 0 {
		t.Fatal("condemned in-flight replica should be pending arena release")
	}

	// The held replica still decodes differentially and serializes its
	// response on live arenas; SelfCheck re-verifies the decode.
	a.arr.Set(0, 1234.5)
	resp, err := rt.handle(r, a.body(t), 0, 0)
	rt.release(slot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp), "sumResponse") {
		t.Fatalf("in-flight response: %s", resp)
	}
	for _, c := range resp {
		if c == 0xDB {
			t.Fatal("poison byte in response: replica arenas were released under an in-flight request")
		}
	}
	if st := rt.Stats(); st.SelfCheckFails != 0 {
		t.Fatalf("self-check fails: %d", st.SelfCheckFails)
	}
	if c := rt.reg.Counters(); c.Pending != 0 {
		t.Fatalf("pending releases = %d, want 0 after the in-flight request returned", c.Pending)
	}

	// Conn 1 returns on a fresh replica: a full parse, then correct sums.
	before := rt.Stats().FullParses
	if _, err := rt.Handle(1, "", a.body(t)); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().FullParses != before+1 {
		t.Fatal("fresh replica should have full-parsed")
	}
}

// TestTemplateBytesNeverExceedBudget hammers one runtime from several
// connections under a small budget and asserts the exported gauge never
// reads above it (the reservation-first admission contract).
func TestTemplateBytesNeverExceedBudget(t *testing.T) {
	m := transport.NewServerMetrics()
	// Each replica's footprint is ~36 KB (template arena, DUT, differ
	// state, response buffer): the budget holds a few of them but not
	// the twelve-connection working set, so eviction churns continuously
	// while no single replica triggers the oversized-entry exemption.
	const budget = 128 << 10
	rt := newSumRuntime(Options{
		DifferentialDeserialization: true,
		Shards:                      2,
		MaxTemplateBytes:            budget,
		Metrics:                     m,
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if b := m.Snapshot().TemplateBytes; b > budget {
				t.Errorf("template bytes %d exceed budget %d", b, budget)
				return
			}
		}
	}()
	var cwg sync.WaitGroup
	for id := 1; id <= 12; id++ {
		cwg.Add(1)
		go func(id int) {
			defer cwg.Done()
			c := newClient(32 + id)
			for r := 0; r < 60; r++ {
				c.arr.Set(r%c.msg.NumLeaves(), float64(id*100+r))
				if _, err := rt.Handle(uint64(id), "", c.body(t)); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	cwg.Wait()
	close(stop)
	wg.Wait()
	if hw := m.Snapshot().TemplateBytesHighWater; hw > budget {
		t.Fatalf("high water %d exceeds budget %d", hw, budget)
	}
	if c := rt.reg.Counters(); c.Pending != 0 {
		t.Fatalf("pending releases = %d, want 0 after quiesce", c.Pending)
	}
}

// TestDebugTemplatesDump drives a couple of connections and asserts the
// uniform dump — directly and through the /debug/templates handler —
// carries the registry's accounting: affinity keys, per-entry bytes,
// in-flight counts, and the budget fields bsoap-inspect renders.
func TestDebugTemplatesDump(t *testing.T) {
	const budget = 1 << 20
	rt := newSumRuntime(Options{
		DifferentialDeserialization: true,
		MaxTemplateBytes:            budget,
	})
	a, b := newClient(8), newClient(12)
	for r := 0; r < 3; r++ {
		if _, err := rt.Handle(1, "", a.body(t)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Handle(2, "", b.body(t)); err != nil {
		t.Fatal(err)
	}

	check := func(d reg.Dump) {
		t.Helper()
		if d.Side != "server" {
			t.Fatalf("side = %q, want server", d.Side)
		}
		if d.Entries != 2 || len(d.Templates) != 2 {
			t.Fatalf("entries = %d (%d rows), want 2", d.Entries, len(d.Templates))
		}
		if d.BudgetBytes != budget {
			t.Fatalf("budget = %d, want %d", d.BudgetBytes, budget)
		}
		if d.Bytes <= 0 || d.HighWaterBytes < d.Bytes {
			t.Fatalf("bytes = %d, high water = %d", d.Bytes, d.HighWaterBytes)
		}
		seen := map[string]bool{}
		var sum int64
		for _, e := range d.Templates {
			seen[e.Affinity] = true
			if e.Bytes <= 0 || e.Replicas != 1 || e.InFlight != 0 {
				t.Fatalf("row %+v: want positive bytes, 1 replica, 0 in flight", e)
			}
			if e.LastUseNS == 0 {
				t.Fatalf("row %s: zero last-use", e.Affinity)
			}
			sum += e.Bytes
		}
		if !seen["conn:1"] || !seen["conn:2"] {
			t.Fatalf("affinity keys = %v, want conn:1 and conn:2", seen)
		}
		if sum != d.Bytes {
			t.Fatalf("row bytes sum %d != dump bytes %d", sum, d.Bytes)
		}
	}
	check(rt.DebugTemplates())

	rec := httptest.NewRecorder()
	rt.TemplatesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/templates", nil))
	if rec.Code != 200 {
		t.Fatalf("handler status %d", rec.Code)
	}
	var d reg.Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("handler body: %v", err)
	}
	check(d)
}

// TestRegisterShared routes every replica through one shared handler
// instance.
func TestRegisterShared(t *testing.T) {
	rt := New(Options{DifferentialDeserialization: true})
	calls := 0
	resp := wire.NewMessage("urn:calc", "sumResponse")
	resp.AddDouble("total", 0)
	rt.RegisterShared(sumSchema(), func(req *wire.Message) (*wire.Message, error) {
		calls++
		return resp, nil
	})
	a := newClient(4)
	for conn := uint64(1); conn <= 2; conn++ {
		if _, err := rt.Handle(conn, "", a.body(t)); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Fatalf("shared handler ran %d times, want 2", calls)
	}
}

// TestSpanAdoptionRecordsServerEvents drives the HTTP handler with a
// propagated client span: the runtime must adopt it — recording a
// server-span anchor carrying a server-local sub-span and the
// connection id — and attribute decode/handler/respond stage events
// under the client's id. A request without a span must record no
// anchor (locally numbered spans of untraced clients would otherwise
// correlate by coincidence).
func TestSpanAdoptionRecordsServerEvents(t *testing.T) {
	trace.Enable()
	defer trace.Disable()
	trace.Default.Clear()

	rt := newSumRuntime(Options{DifferentialDeserialization: true})
	h := rt.HTTPHandler()
	c := newClient(4)

	const clientSpan = 0xbeef
	if _, err := h(&transport.Request{Method: "POST", Body: c.body(t), TraceSpan: clientSpan, ConnID: 7}); err != nil {
		t.Fatal(err)
	}

	var anchor *trace.EventJSON
	stages := map[trace.Stage]bool{}
	for _, ev := range trace.Default.Snapshot().Events {
		if ev.Span != clientSpan {
			continue
		}
		switch ev.Kind {
		case "server-span":
			e := ev
			anchor = &e
		case "stage":
			stages[trace.Stage(ev.A)] = true
		}
	}
	if anchor == nil {
		t.Fatal("no server-span anchor recorded for the propagated span")
	}
	if anchor.A == 0 || anchor.B != 7 {
		t.Fatalf("anchor sub-span %d, conn %d; want nonzero sub-span, conn 7", anchor.A, anchor.B)
	}
	for _, st := range []trace.Stage{trace.StageDecode, trace.StageHandler, trace.StageRespond} {
		if !stages[st] {
			t.Errorf("stage %v not attributed to the client span (got %v)", st, stages)
		}
	}

	// No propagated span: the server numbers its own span, no anchor.
	trace.Default.Clear()
	c.arr.Set(0, 9)
	if _, err := h(&transport.Request{Method: "POST", Body: c.body(t), ConnID: 7}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range trace.Default.Snapshot().Events {
		if ev.Kind == "server-span" {
			t.Fatalf("anchor recorded without a propagated span: %+v", ev)
		}
	}
}
