package serverpool

import (
	"bytes"
	"errors"
	"testing"

	reg "bsoap/internal/replica"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

// FuzzDeltaFrame is the runtime-level half of the patch-frame fuzz: the
// wire-level target (internal/wire) proves the codec, this one proves
// the replica. A synchronized base is planted and arbitrary bytes are
// dispatched as a patch frame against the live replica. Invariants:
// never panic; every refusal wraps wire.ErrDeltaResync; every accepted
// reconstruction hashes to the frame's declared checksum; and whatever
// the frame did, the replica must afterwards serve a fresh sync, an
// identity patch reconstructing the base byte-for-byte, and a
// self-checked full-body call — a fuzz input may desynchronize delta
// state, but never corrupt the runtime.
func FuzzDeltaFrame(f *testing.F) {
	base := newClient(8).body(f)
	identity := func() []byte {
		p := wire.AppendDeltaHeader(nil, 3, 1, 2, len(base), wire.DeltaCRC(base), 1)
		p = wire.AppendDeltaRegionHeader(p, 10, 5)
		return append(p, base[10:15]...)
	}

	// Seeds: a valid identity patch against the planted base, its bare
	// header, a zero-region frame at the wrong epoch, and the raw body.
	f.Add(identity())
	f.Add(identity()[:wire.DeltaHeaderLen])
	f.Add(wire.AppendDeltaHeader(nil, 3, 9, 10, len(base), wire.DeltaCRC(base), 0))
	f.Add(base)

	f.Fuzz(func(t *testing.T, b []byte) {
		rt := newSumRuntime(Options{Delta: true, DifferentialDeserialization: true, SelfCheck: true})
		h := rt.HTTPHandler()

		sync := func() {
			req := &transport.Request{Method: "POST", ConnID: 7, Body: base,
				DeltaMode: transport.DeltaSync, DeltaTID: 3, DeltaEpoch: 1}
			if _, err := h(req); err != nil {
				t.Fatalf("sync store: %v", err)
			}
			if !req.DeltaAck || req.DeltaAckTID != 3 || req.DeltaAckEpoch != 1 {
				t.Fatalf("sync not acked: tid %d epoch %d", req.DeltaAckTID, req.DeltaAckEpoch)
			}
		}
		sync()

		slot, r := rt.acquire(reg.Key{Conn: 7})
		got, err := rt.applyDelta(r, &transport.Request{ConnID: 7, Body: b})
		switch {
		case err != nil && !errors.Is(err, wire.ErrDeltaResync):
			rt.release(slot)
			t.Fatalf("refusal does not wrap ErrDeltaResync: %v", err)
		case err == nil && wire.DeltaCRC(got) != r.frame.BodyCRC:
			rt.release(slot)
			t.Fatalf("accepted body CRC %08x != frame %08x", wire.DeltaCRC(got), r.frame.BodyCRC)
		}
		rt.release(slot)

		// Recovery: re-sync, reconstruct the base through an identity
		// patch, then run a checked full decode on the same replica.
		sync()
		slot, r = rt.acquire(reg.Key{Conn: 7})
		got, err = rt.applyDelta(r, &transport.Request{ConnID: 7, Body: identity()})
		if err != nil {
			rt.release(slot)
			t.Fatalf("identity patch refused after fuzz frame: %v", err)
		}
		if !bytes.Equal(got, base) {
			rt.release(slot)
			t.Fatalf("identity patch reconstructed %d bytes != base %d", len(got), len(base))
		}
		rt.release(slot)
		if _, err := h(&transport.Request{Method: "POST", ConnID: 7, Body: base}); err != nil {
			t.Fatalf("full-body call after fuzz frame: %v", err)
		}
		if st := rt.Stats(); st.SelfCheckFails != 0 {
			t.Fatalf("self-check fails: %d", st.SelfCheckFails)
		}
	})
}
