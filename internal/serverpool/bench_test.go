package serverpool

import (
	"sync/atomic"
	"testing"

	"bsoap/internal/server"
)

// The scaling benchmark: 8 concurrent clients, each with its own stable
// request shape, against (a) the single-mutex server.SOAP endpoint with
// one shared deserializer and (b) the sharded runtime with a replica
// per connection. The shared decoder holds at most
// diffdeser.MaxTemplatesPerKey templates per operation, so eight
// distinct shapes thrash it into constant full parses on top of the
// dispatch lock convoy; per-connection replicas keep every client on
// the differential fast path with no shared lock.

const benchClients = 8

func benchBodies(b *testing.B) [][]byte {
	bodies := make([][]byte, benchClients)
	for i := range bodies {
		c := newClient(64 + 8*i) // distinct stable shape per client
		bodies[i] = c.body(b)
	}
	return bodies
}

func BenchmarkLockedEndpoint8Clients(b *testing.B) {
	endpoint := server.New(server.Options{DifferentialDeserialization: true})
	endpoint.Register(sumSchema(), sumFactory())
	bodies := benchBodies(b)
	var next atomic.Int64
	b.SetParallelism(benchClients)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(next.Add(1)-1) % benchClients
		body := bodies[id]
		for pb.Next() {
			if _, err := endpoint.Handle(body); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkShardedRuntime8Clients(b *testing.B) {
	rt := newSumRuntime(Options{DifferentialDeserialization: true})
	bodies := benchBodies(b)
	var next atomic.Int64
	b.SetParallelism(benchClients)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(next.Add(1)-1) % benchClients
		body := bodies[id]
		connID := uint64(id + 1)
		for pb.Next() {
			if _, err := rt.Handle(connID, "", body); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := rt.Stats()
	if st.Requests > 0 {
		b.ReportMetric(float64(st.DiffDecodes)/float64(st.Requests)*100, "fastpath%")
	}
}
