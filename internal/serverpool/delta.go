package serverpool

import (
	"fmt"
	"time"

	reg "bsoap/internal/replica"
	"bsoap/internal/trace"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

// maxDeltaBases bounds the patch bases one replica holds, LRU-evicted by
// template id. A client whose working set exceeds the cap just resends
// full bodies for the evicted templates — the same lossless degradation
// as every other delta failure.
const maxDeltaBases = 32

// deltaBase is one held patch base: the template body as last
// synchronized by the client, at the epoch the client labeled it with.
// Patch frames rewrite body in place; the client's CRC over the whole
// reconstructed body is what proves the rewrite landed on the right
// bytes.
type deltaBase struct {
	epoch uint64
	body  []byte
}

// storeDeltaBase records a sync-annotated full body as the patch base
// for its template, and asks the transport to acknowledge the store (the
// ack is what flips the client delta-capable). Caller holds r.mu.
func (rt *Runtime) storeDeltaBase(r *replica, req *transport.Request) {
	if r.bases == nil {
		r.bases = reg.NewLRU[uint64, *deltaBase]()
	}
	base, ok := r.bases.Get(req.DeltaTID)
	if !ok {
		if r.bases.Len() >= maxDeltaBases {
			if _, old, evicted := r.bases.RemoveTail(); evicted {
				r.deltaBytes -= int64(cap(old.body))
				rt.metrics.RecordDeltaBaseEviction()
			}
		}
		base = &deltaBase{}
		r.bases.PushFront(req.DeltaTID, base)
	}
	r.deltaBytes -= int64(cap(base.body))
	base.epoch = req.DeltaEpoch
	base.body = append(base.body[:0], req.Body...)
	r.deltaBytes += int64(cap(base.body))
	rt.deltaSyncs.Add(1)
	rt.metrics.RecordDeltaSync(len(req.Body))
	req.DeltaAck = true
	req.DeltaAckTID = req.DeltaTID
	req.DeltaAckEpoch = req.DeltaEpoch
}

// applyDelta reconstructs a request body from a patch frame and the held
// base. Every failure — unknown template, epoch skew, malformed frame,
// checksum mismatch — returns an error wrapping wire.ErrDeltaResync,
// which the transport answers as 409/resync; the client then resends in
// full and resynchronizes. A checksum failure additionally drops the
// base: its bytes can no longer be trusted as anyone's patch target.
// Caller holds r.mu.
func (rt *Runtime) applyDelta(r *replica, req *transport.Request) ([]byte, error) {
	start := time.Now()
	if err := wire.ParseDeltaFrame(&r.frame, req.Body); err != nil {
		rt.deltaResyncs.Add(1)
		return nil, err
	}
	f := &r.frame
	var base *deltaBase
	if r.bases != nil {
		base, _ = r.bases.Get(f.TID)
	}
	if base == nil {
		rt.deltaResyncs.Add(1)
		return nil, fmt.Errorf("serverpool: no base for template %d: %w", f.TID, wire.ErrDeltaResync)
	}
	if base.epoch != f.BaseEpoch {
		rt.deltaResyncs.Add(1)
		return nil, fmt.Errorf("serverpool: template %d at epoch %d, patch expects %d: %w",
			f.TID, base.epoch, f.BaseEpoch, wire.ErrDeltaResync)
	}
	if err := f.Apply(base.body); err != nil {
		// The regions may have been copied in before the checksum failed:
		// the base is poisoned either way, so drop it rather than letting
		// a later patch build on unverified bytes.
		if _, ok := r.bases.Remove(f.TID); ok {
			r.deltaBytes -= int64(cap(base.body))
			rt.metrics.RecordDeltaBaseEviction()
		}
		rt.deltaResyncs.Add(1)
		return nil, err
	}
	base.epoch = f.NewEpoch
	rt.deltaApplied.Add(1)
	rt.metrics.RecordDeltaApply(len(req.Body), len(base.body))
	ns := time.Since(start).Nanoseconds()
	rt.metrics.Stages.Observe(trace.StageDeltaApply, ns, req.TraceSpan)
	if req.TraceSpan != 0 && trace.Enabled() {
		trace.Rec(req.TraceSpan, trace.KindStage, int64(trace.StageDeltaApply), ns, 0)
	}
	return base.body, nil
}
