// Package multiref implements SOAP 1.1 multi-reference accessors —
// "identifiers that refer to previously serialized instances of
// specific elements of the SOAP call". The paper's related work notes
// they "can be included within our serialized messages to further
// improve serialization performance", and its footnote records that
// gSOAP supports them while bSOAP does not; accordingly, this package
// provides multi-ref for the *full-serialization* path (an encoder in
// the gSOAP style) and a resolver the server runs before decoding.
// Differential templates never emit multi-refs, matching the paper.
//
// Encoding: string leaves whose escaped value is at least MinLength
// bytes and occurs more than once are serialized once, as trailing
//
//	<multiRef id="mrN">value</multiRef>
//
// siblings of the operation element, and referenced everywhere as
// <tag href="#mrN"/>. Inline reverses the transformation, yielding a
// plain envelope any decoder understands.
package multiref

import (
	"fmt"
	"strconv"
	"strings"

	"bsoap/internal/soapenv"
	"bsoap/internal/wire"
	"bsoap/internal/xmlparse"
	"bsoap/internal/xsdlex"
)

// MinLength is the smallest escaped string value worth deduplicating:
// below it, the href markup outweighs the value.
const MinLength = 12

// Encoder is a full serializer with multi-ref string deduplication.
// Not safe for concurrent use (the buffer is reused).
type Encoder struct {
	buf  []byte
	ids  map[string]int // escaped value → id number
	uses map[string]int // escaped value → occurrence count
}

// NewEncoder returns a ready encoder.
func NewEncoder() *Encoder {
	return &Encoder{buf: make([]byte, 0, 4096)}
}

// Serialize renders m fully with multi-ref encoding. The returned
// slice is valid until the next call.
func (e *Encoder) Serialize(m *wire.Message) []byte {
	// Pass 1: count repeated string values.
	e.uses = make(map[string]int)
	for i := 0; i < m.NumLeaves(); i++ {
		if m.LeafType(i).Kind != wire.String {
			continue
		}
		esc := string(xsdlex.EscapeText(nil, m.LeafString(i)))
		if len(esc) >= MinLength {
			e.uses[esc]++
		}
	}
	e.ids = make(map[string]int)

	b := e.buf[:0]
	b = append(b, soapenv.EnvelopeStart(m.Namespace())...)
	b = append(b, soapenv.OperationStart(m.Operation())...)
	leaf := 0
	for _, p := range m.Params() {
		b, leaf = e.param(b, m, &p, leaf)
	}
	b = append(b, soapenv.OperationEnd(m.Operation())...)

	// Trailing multiRef elements, in first-use order (ids ascend).
	refs := make([]string, len(e.ids))
	for esc, id := range e.ids {
		refs[id] = esc
	}
	for id, esc := range refs {
		b = append(b, `<multiRef id="mr`...)
		b = strconv.AppendInt(b, int64(id), 10)
		b = append(b, `">`...)
		b = append(b, esc...)
		b = append(b, "</multiRef>"...)
	}

	b = append(b, soapenv.EnvelopeEnd...)
	e.buf = b
	return b
}

func (e *Encoder) param(b []byte, m *wire.Message, p *wire.Param, leaf int) ([]byte, int) {
	switch p.Type.Kind {
	case wire.Array:
		b = append(b, soapenv.ArrayStart(p.Name, p.Type.Elem, p.Count)...)
		for i := 0; i < p.Count; i++ {
			b, leaf = e.value(b, m, p.Type.Elem, soapenv.ItemTag, leaf)
		}
		b = append(b, soapenv.ArrayEnd(p.Name)...)
	case wire.Struct:
		b = append(b, soapenv.StructStart(p.Name, p.Type)...)
		for _, f := range p.Type.Fields {
			b, leaf = e.value(b, m, f.Type, f.Name, leaf)
		}
		b = append(b, soapenv.CloseTag(p.Name)...)
	default:
		b, leaf = e.value(b, m, p.Type, p.Name, leaf)
	}
	return b, leaf
}

func (e *Encoder) value(b []byte, m *wire.Message, t *wire.Type, tag string, leaf int) ([]byte, int) {
	if t.Kind == wire.Struct {
		b = append(b, soapenv.OpenTag(tag)...)
		for _, f := range t.Fields {
			b, leaf = e.value(b, m, f.Type, f.Name, leaf)
		}
		b = append(b, soapenv.CloseTag(tag)...)
		return b, leaf
	}
	if t.Kind == wire.String {
		esc := string(xsdlex.EscapeText(nil, m.LeafString(leaf)))
		if e.uses[esc] > 1 {
			id, ok := e.ids[esc]
			if !ok {
				id = len(e.ids)
				e.ids[esc] = id
			}
			b = append(b, '<')
			b = append(b, tag...)
			b = append(b, ` href="#mr`...)
			b = strconv.AppendInt(b, int64(id), 10)
			b = append(b, `"/>`...)
			return b, leaf + 1
		}
	}
	b = append(b, soapenv.OpenTag(tag)...)
	switch t.Kind {
	case wire.Int:
		b = xsdlex.AppendInt(b, m.LeafInt(leaf))
	case wire.Double:
		b = xsdlex.AppendDouble(b, m.LeafDouble(leaf))
	case wire.Bool:
		b = xsdlex.AppendBool(b, m.LeafBool(leaf))
	case wire.String:
		b = xsdlex.EscapeText(b, m.LeafString(leaf))
	}
	b = append(b, soapenv.CloseTag(tag)...)
	return b, leaf + 1
}

// HasRefs cheaply detects whether a body uses multi-ref encoding.
func HasRefs(body []byte) bool {
	return strings.Contains(string(body), `href="#`)
}

// Inline resolves every href reference in body against its multiRef
// definitions and strips the multiRef section, producing a plain
// envelope for the ordinary decoders. The input is not modified.
func Inline(body []byte) ([]byte, error) {
	refs, err := collectRefs(body)
	if err != nil {
		return nil, err
	}

	out := make([]byte, 0, len(body))
	rest := string(body)
	for {
		// Replace <tag href="#id"/> with <tag>value</tag>.
		idx := strings.Index(rest, `href="#`)
		if idx < 0 {
			break
		}
		open := strings.LastIndexByte(rest[:idx], '<')
		if open < 0 {
			return nil, fmt.Errorf("multiref: href outside an element")
		}
		tagEnd := open + 1
		for tagEnd < len(rest) && isNameByte(rest[tagEnd]) {
			tagEnd++
		}
		tag := rest[open+1 : tagEnd]
		idStart := idx + len(`href="#`)
		idEnd := strings.IndexByte(rest[idStart:], '"')
		if idEnd < 0 {
			return nil, fmt.Errorf("multiref: unterminated href")
		}
		id := rest[idStart : idStart+idEnd]
		after := rest[idStart+idEnd:]
		close := strings.Index(after, "/>")
		// The /> must terminate THIS element: no '<' may precede it.
		if lt := strings.IndexByte(after, '<'); close < 0 || (lt >= 0 && lt < close) {
			return nil, fmt.Errorf("multiref: href element %q not self-closing", tag)
		}
		val, ok := refs[id]
		if !ok {
			return nil, fmt.Errorf("multiref: undefined reference %q", id)
		}
		out = append(out, rest[:open]...)
		out = append(out, '<')
		out = append(out, tag...)
		out = append(out, '>')
		out = append(out, val...)
		out = append(out, "</"...)
		out = append(out, tag...)
		out = append(out, '>')
		rest = rest[idStart+idEnd+close+2:]
	}
	out = append(out, rest...)

	// Strip the multiRef definitions.
	return stripMultiRefs(out)
}

// collectRefs gathers id → raw escaped content of multiRef elements.
func collectRefs(body []byte) (map[string]string, error) {
	refs := make(map[string]string)
	s := string(body)
	for {
		idx := strings.Index(s, "<multiRef ")
		if idx < 0 {
			return refs, nil
		}
		s = s[idx:]
		gt := strings.IndexByte(s, '>')
		if gt < 0 {
			return nil, fmt.Errorf("multiref: unterminated multiRef tag")
		}
		attrs := s[len("<multiRef "):gt]
		idIdx := strings.Index(attrs, `id="`)
		if idIdx < 0 {
			return nil, fmt.Errorf("multiref: multiRef without id")
		}
		idRest := attrs[idIdx+len(`id="`):]
		q := strings.IndexByte(idRest, '"')
		if q < 0 {
			return nil, fmt.Errorf("multiref: unterminated id")
		}
		id := idRest[:q]
		end := strings.Index(s[gt:], "</multiRef>")
		if end < 0 {
			return nil, fmt.Errorf("multiref: unterminated multiRef %q", id)
		}
		if _, dup := refs[id]; dup {
			return nil, fmt.Errorf("multiref: duplicate id %q", id)
		}
		refs[id] = s[gt+1 : gt+end]
		s = s[gt+end+len("</multiRef>"):]
	}
}

// stripMultiRefs removes every multiRef element from the document.
func stripMultiRefs(body []byte) ([]byte, error) {
	s := string(body)
	var out []byte
	for {
		idx := strings.Index(s, "<multiRef ")
		if idx < 0 {
			out = append(out, s...)
			return out, nil
		}
		out = append(out, s[:idx]...)
		end := strings.Index(s[idx:], "</multiRef>")
		if end < 0 {
			return nil, fmt.Errorf("multiref: unterminated multiRef during strip")
		}
		s = s[idx+end+len("</multiRef>"):]
	}
}

// isNameByte mirrors the XML name byte class used by the parser.
func isNameByte(b byte) bool {
	switch {
	case 'a' <= b && b <= 'z', 'A' <= b && b <= 'Z', '0' <= b && b <= '9':
		return true
	case b == ':' || b == '_' || b == '-' || b == '.':
		return true
	}
	return false
}

// Verify checks that an inlined document still parses; used by tests
// and available to servers that want defence in depth.
func Verify(body []byte) error {
	p := xmlparse.NewParser(body)
	for {
		tok, err := p.Next()
		if err != nil {
			return err
		}
		if tok.Kind == xmlparse.EOF {
			return nil
		}
	}
}
