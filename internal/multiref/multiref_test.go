package multiref

import (
	"strings"
	"testing"

	"bsoap/internal/baseline"
	"bsoap/internal/soapdec"
	"bsoap/internal/wire"
)

// catalogMessage builds a message with heavily repeated strings — the
// shape multi-ref pays off on (e.g. metadata attribute values).
func catalogMessage() *wire.Message {
	m := wire.NewMessage("urn:mr", "register")
	m.AddString("owner", "high-energy-physics-group")
	arr := m.AddStringArray("files", 20)
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			arr.Set(i, "/data/experiment-2026/run-alpha.h5")
		} else {
			arr.Set(i, "/data/experiment-2026/run-beta.h5")
		}
	}
	m.AddString("ownerAgain", "high-energy-physics-group")
	return m
}

func schemaFor(m *wire.Message) soapdec.Lookup {
	s := &soapdec.Schema{Namespace: m.Namespace(), Op: m.Operation()}
	for _, p := range m.Params() {
		s.Params = append(s.Params, soapdec.ParamSpec{Name: p.Name, Type: p.Type})
	}
	return func(op string) (*soapdec.Schema, bool) {
		if op == s.Op {
			return s, true
		}
		return nil, false
	}
}

func TestEncodeDeduplicatesRepeatedStrings(t *testing.T) {
	m := catalogMessage()
	enc := NewEncoder()
	doc := enc.Serialize(m)
	text := string(doc)

	if !HasRefs(doc) {
		t.Fatal("no hrefs emitted")
	}
	// Each repeated value must be serialized exactly once.
	if n := strings.Count(text, "run-alpha.h5"); n != 1 {
		t.Fatalf("alpha serialized %d times", n)
	}
	if n := strings.Count(text, "run-beta.h5"); n != 1 {
		t.Fatalf("beta serialized %d times", n)
	}
	if n := strings.Count(text, "high-energy-physics-group"); n != 1 {
		t.Fatalf("owner serialized %d times", n)
	}
	// And the message must be meaningfully smaller than the plain form.
	plain := baseline.NewGSOAPLike().Serialize(m)
	if len(doc) >= len(plain) {
		t.Fatalf("multi-ref (%d bytes) not smaller than plain (%d)", len(doc), len(plain))
	}
}

func TestInlineRestoresPlainEnvelope(t *testing.T) {
	m := catalogMessage()
	doc := NewEncoder().Serialize(m)
	inlined, err := Inline(doc)
	if err != nil {
		t.Fatal(err)
	}
	if HasRefs(inlined) {
		t.Fatal("hrefs survive inlining")
	}
	if strings.Contains(string(inlined), "multiRef") {
		t.Fatal("multiRef section survives inlining")
	}
	if err := Verify(inlined); err != nil {
		t.Fatalf("inlined document malformed: %v\n%s", err, inlined)
	}

	// The inlined document must decode to exactly the original values.
	res, err := soapdec.Decode(inlined, schemaFor(m), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NumLeaves(); i++ {
		if res.Msg.LeafString(i) != m.LeafString(i) {
			t.Fatalf("leaf %d: %q != %q", i, res.Msg.LeafString(i), m.LeafString(i))
		}
	}
}

func TestShortAndUniqueStringsStayInline(t *testing.T) {
	m := wire.NewMessage("urn:mr", "op")
	m.AddString("a", "tiny") // short: below MinLength
	m.AddString("b", "tiny") // repeated but short
	m.AddString("c", "a unique and long enough value")
	doc := NewEncoder().Serialize(m)
	if HasRefs(doc) {
		t.Fatalf("hrefs for short/unique strings:\n%s", doc)
	}
}

func TestEscapedValuesRoundTrip(t *testing.T) {
	m := wire.NewMessage("urn:mr", "op")
	v := "needs <escaping> & \"quotes\" galore"
	m.AddString("a", v)
	m.AddString("b", v)
	doc := NewEncoder().Serialize(m)
	if !HasRefs(doc) {
		t.Fatal("repeated escaped value not deduplicated")
	}
	inlined, err := Inline(doc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := soapdec.Decode(inlined, schemaFor(m), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.LeafString(0) != v || res.Msg.LeafString(1) != v {
		t.Fatalf("escaped values corrupted: %q / %q", res.Msg.LeafString(0), res.Msg.LeafString(1))
	}
}

func TestMixedTypesUnaffected(t *testing.T) {
	m := wire.NewMessage("urn:mr", "op")
	m.AddInt("n", 42)
	m.AddDouble("d", 2.5)
	arr := m.AddStringArray("s", 4)
	for i := 0; i < 4; i++ {
		arr.Set(i, "the same repeated value")
	}
	doc := NewEncoder().Serialize(m)
	inlined, err := Inline(doc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := soapdec.Decode(inlined, schemaFor(m), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.LeafInt(0) != 42 || res.Msg.LeafDouble(1) != 2.5 {
		t.Fatal("numeric leaves corrupted")
	}
}

func TestInlineErrors(t *testing.T) {
	cases := map[string]string{
		"undefined ref":   `<a><b href="#mr9"/></a>`,
		"unterminated":    `<a><b href="#mr0></a>`,
		"not selfclosing": `<a><b href="#mr0">x</b><multiRef id="mr0">v</multiRef></a>`,
		"dup id":          `<a><b href="#mr0"/><multiRef id="mr0">v</multiRef><multiRef id="mr0">w</multiRef></a>`,
		"open multiRef":   `<a><b href="#mr0"/><multiRef id="mr0">v</a>`,
	}
	for name, doc := range cases {
		if _, err := Inline([]byte(doc)); err == nil {
			t.Errorf("%s: inlined without error", name)
		}
	}
}

func TestHasRefs(t *testing.T) {
	if HasRefs([]byte("<plain/>")) {
		t.Error("false positive")
	}
	if !HasRefs([]byte(`<a href="#x"/>`)) {
		t.Error("false negative")
	}
}

func TestInlineOnPlainDocumentIsIdentity(t *testing.T) {
	doc := []byte(`<E:Envelope><E:Body><op><v>1</v></op></E:Body></E:Envelope>`)
	out, err := Inline(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(doc) {
		t.Fatal("plain document altered")
	}
}

func TestSerializeIsRepeatable(t *testing.T) {
	m := catalogMessage()
	e := NewEncoder()
	first := append([]byte(nil), e.Serialize(m)...)
	second := e.Serialize(m)
	if string(first) != string(second) {
		t.Fatal("repeated serialization differs")
	}
}
