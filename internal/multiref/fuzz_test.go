package multiref

import "testing"

// FuzzInline asserts multi-ref resolution never panics and that its
// output, when produced without error, contains no unresolved refs.
func FuzzInline(f *testing.F) {
	seeds := []string{
		``,
		`<a href="#mr0"/><multiRef id="mr0">v</multiRef>`,
		`<a href="#mr0"/>`,
		`<multiRef id="mr0">v</multiRef>`,
		`<a href="#`,
		`href="#x"`,
		`<a href="#mr0"/><multiRef id="mr0">nested &lt;x&gt;</multiRef>`,
		`<a><b href="#m"/><c href="#m"/><multiRef id="m">shared</multiRef></a>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Inline(data)
		if err != nil {
			return
		}
		if HasRefs(out) {
			t.Fatalf("inlined output still has refs: %q", out)
		}
	})
}
