package xsdlex

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppendIntBasic(t *testing.T) {
	cases := map[int32]string{
		0:           "0",
		1:           "1",
		-1:          "-1",
		13902:       "13902",
		2147483647:  "2147483647",
		-2147483648: "-2147483648",
	}
	for v, want := range cases {
		if got := string(AppendInt(nil, v)); got != want {
			t.Errorf("AppendInt(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestMaxIntWidthIsTight(t *testing.T) {
	if got := len(AppendInt(nil, math.MinInt32)); got != MaxIntWidth {
		t.Fatalf("len(encode(MinInt32)) = %d, want MaxIntWidth = %d", got, MaxIntWidth)
	}
}

func TestMaxLongWidthIsTight(t *testing.T) {
	if got := len(AppendLong(nil, math.MinInt64)); got != MaxLongWidth {
		t.Fatalf("len(encode(MinInt64)) = %d, want MaxLongWidth = %d", got, MaxLongWidth)
	}
}

func TestAppendDoubleBasic(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{-1, "-1"},
		{0.5, "0.5"},
		{1e21, "1E+21"},
		{math.Inf(1), "INF"},
		{math.Inf(-1), "-INF"},
	}
	for _, c := range cases {
		if got := string(AppendDouble(nil, c.v)); got != c.want {
			t.Errorf("AppendDouble(%g) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := string(AppendDouble(nil, math.NaN())); got != "NaN" {
		t.Errorf("AppendDouble(NaN) = %q", got)
	}
}

func TestMaxDoubleWidthIsTight(t *testing.T) {
	// The paper's 24-character bound is achieved by the most negative
	// finite double.
	got := len(AppendDouble(nil, -math.MaxFloat64))
	if got != MaxDoubleWidth {
		t.Fatalf("len(encode(-MaxFloat64)) = %d, want MaxDoubleWidth = %d", got, MaxDoubleWidth)
	}
}

func TestIntLenMatchesEncoding(t *testing.T) {
	f := func(v int32) bool {
		return IntLen(v) == len(AppendInt(nil, v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, v := range []int32{0, -1, 1, math.MinInt32, math.MaxInt32, 9, 10, -9, -10} {
		if IntLen(v) != len(AppendInt(nil, v)) {
			t.Errorf("IntLen(%d) = %d, encoding is %d chars", v, IntLen(v), len(AppendInt(nil, v)))
		}
	}
}

func TestDoubleLenMatchesEncoding(t *testing.T) {
	f := func(v float64) bool {
		return DoubleLen(v) == len(AppendDouble(nil, v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDoubleEncodingNeverExceedsMaxWidth(t *testing.T) {
	f := func(v float64) bool {
		return len(AppendDouble(nil, v)) <= MaxDoubleWidth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestIntEncodingNeverExceedsMaxWidth(t *testing.T) {
	f := func(v int32) bool {
		return len(AppendInt(nil, v)) <= MaxIntWidth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDoubleRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		got, err := ParseDouble(string(AppendDouble(nil, v)))
		if err != nil {
			return false
		}
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		return got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestIntRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		got, err := ParseInt(string(AppendInt(nil, v)))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseAcceptsSurroundingWhitespace(t *testing.T) {
	if v, err := ParseInt("  \t42\n"); err != nil || v != 42 {
		t.Errorf("ParseInt with space = %d, %v", v, err)
	}
	if v, err := ParseDouble(" 2.5 "); err != nil || v != 2.5 {
		t.Errorf("ParseDouble with space = %g, %v", v, err)
	}
	if v, err := ParseDouble("   -INF"); err != nil || !math.IsInf(v, -1) {
		t.Errorf("ParseDouble(-INF with space) = %g, %v", v, err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParseInt("12x"); err == nil {
		t.Error("ParseInt accepted 12x")
	}
	if _, err := ParseInt(""); err == nil {
		t.Error("ParseInt accepted empty string")
	}
	if _, err := ParseInt("99999999999"); err == nil {
		t.Error("ParseInt accepted out-of-range value")
	}
	if _, err := ParseDouble("1..2"); err == nil {
		t.Error("ParseDouble accepted 1..2")
	}
	if _, err := ParseBool("yes"); err == nil {
		t.Error("ParseBool accepted yes")
	}
}

func TestParseBool(t *testing.T) {
	for s, want := range map[string]bool{"true": true, "1": true, "false": false, "0": false, " true ": true} {
		got, err := ParseBool(s)
		if err != nil || got != want {
			t.Errorf("ParseBool(%q) = %v, %v", s, got, err)
		}
	}
}

func TestAppendBool(t *testing.T) {
	if got := string(AppendBool(nil, true)); got != "true" {
		t.Errorf("AppendBool(true) = %q", got)
	}
	if got := string(AppendBool(nil, false)); got != "false" {
		t.Errorf("AppendBool(false) = %q", got)
	}
	if len("false") != MaxBoolWidth {
		t.Error("MaxBoolWidth mismatch")
	}
}

func TestEscapeText(t *testing.T) {
	cases := map[string]string{
		"plain":          "plain",
		"a<b":            "a&lt;b",
		"a&b":            "a&amp;b",
		`"quoted"`:       "&quot;quoted&quot;",
		"it's":           "it&apos;s",
		"x>y":            "x&gt;y",
		"<&>":            "&lt;&amp;&gt;",
		"":               "",
		"tail<":          "tail&lt;",
		"<head":          "&lt;head",
		"unicode: héllo": "unicode: héllo",
	}
	for in, want := range cases {
		if got := string(EscapeText(nil, in)); got != want {
			t.Errorf("EscapeText(%q) = %q, want %q", in, got, want)
		}
		if got := EscapedLen(in); got != len(want) {
			t.Errorf("EscapedLen(%q) = %d, want %d", in, got, len(want))
		}
	}
}

func TestUnescapeText(t *testing.T) {
	cases := map[string]string{
		"plain":              "plain",
		"a&lt;b":             "a<b",
		"&amp;&lt;&gt;":      "&<>",
		"&quot;q&quot;":      `"q"`,
		"&apos;s":            "'s",
		"&#65;BC":            "ABC",
		"&#x41;BC":           "ABC",
		"mixed &amp; &#x2F;": "mixed & /",
	}
	for in, want := range cases {
		got, err := UnescapeText(in)
		if err != nil || got != want {
			t.Errorf("UnescapeText(%q) = %q, %v, want %q", in, got, err, want)
		}
	}
}

func TestUnescapeTextErrors(t *testing.T) {
	for _, in := range []string{"&unknown;", "&amp", "&#xZZ;", "&#99999999;", "&;"} {
		if _, err := UnescapeText(in); err == nil {
			t.Errorf("UnescapeText(%q) succeeded, want error", in)
		}
	}
}

func TestEscapeUnescapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		got, err := UnescapeText(string(EscapeText(nil, s)))
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTrimSpace(t *testing.T) {
	cases := map[string]string{
		"":        "",
		"   ":     "",
		" a ":     "a",
		"\t\na\r": "a",
		"a b":     "a b",
	}
	for in, want := range cases {
		if got := TrimSpace(in); got != want {
			t.Errorf("TrimSpace(%q) = %q, want %q", in, got, want)
		}
	}
	// Unlike strings.TrimSpace, only the four XML space chars are trimmed.
	if got := TrimSpace(" a "); got != " a " {
		t.Errorf("TrimSpace trimmed non-XML whitespace: %q", got)
	}
}

func TestDoubleLexicalStyleIsUppercaseE(t *testing.T) {
	s := string(AppendDouble(nil, 1.5e-300))
	if strings.ContainsRune(s, 'e') {
		t.Errorf("lexical form %q uses lower-case exponent", s)
	}
	if _, err := strconv.ParseFloat(s, 64); err != nil {
		t.Errorf("lexical form %q not parseable: %v", s, err)
	}
}
