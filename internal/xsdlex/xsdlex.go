// Package xsdlex implements the XSD lexical forms used on the SOAP wire:
// encoding and parsing of xsd:int, xsd:double, xsd:string and xsd:boolean
// values, the maximum serialized widths the paper's stuffing technique
// relies on, and the XML character-data escaping rules.
//
// The width constants are load-bearing for the reproduction: the paper's
// worst-case shifting experiments grow a double from its smallest lexical
// form (1 character, e.g. "5") to its largest (24 characters, e.g.
// "-1.7976931348623157E+308"), and an MIO — a struct of two ints and a
// double — from 3 to 46 characters (11+11+24).
package xsdlex

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Maximum number of characters any value of the given XSD type can occupy
// in the lexical form produced by this package. Strings have no bound
// (the paper notes strings cannot take advantage of stuffing).
const (
	// MaxIntWidth is len("-2147483648"): xsd:int is a 32-bit integer.
	MaxIntWidth = 11
	// MaxLongWidth is len("-9223372036854775808") for xsd:long.
	MaxLongWidth = 20
	// MaxDoubleWidth is len("-1.7976931348623157E+308"), the longest
	// shortest-round-trip representation of an IEEE 754 binary64.
	MaxDoubleWidth = 24
	// MaxBoolWidth is len("false").
	MaxBoolWidth = 5
	// MinIntWidth, MinDoubleWidth are the smallest possible lexical forms
	// ("0" .. "9"), used by the shifting experiments.
	MinIntWidth    = 1
	MinDoubleWidth = 1
)

// AppendInt appends the canonical lexical form of a 32-bit integer to dst.
// The result is at most MaxIntWidth bytes.
func AppendInt(dst []byte, v int32) []byte {
	return strconv.AppendInt(dst, int64(v), 10)
}

// AppendLong appends the canonical lexical form of a 64-bit integer to dst.
func AppendLong(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// AppendDouble appends the shortest lexical form of v that parses back to
// exactly v, using the XSD double style (decimal or exponent notation with
// an upper-case E). Special values use the XSD lexical names INF, -INF and
// NaN. The result is at most MaxDoubleWidth bytes.
func AppendDouble(dst []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(dst, "INF"...)
	case math.IsInf(v, -1):
		return append(dst, "-INF"...)
	case math.IsNaN(v):
		return append(dst, "NaN"...)
	}
	return strconv.AppendFloat(dst, v, 'G', -1, 64)
}

// AppendBool appends "true" or "false".
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// IntLen reports the exact encoded length of v without allocating.
func IntLen(v int32) int {
	n := 1
	u := uint64(v)
	if v < 0 {
		n++
		u = uint64(-int64(v))
	}
	for u >= 10 {
		u /= 10
		n++
	}
	return n
}

// DoubleLen reports the exact encoded length of v. It is used by the
// differential engine to decide whether a dirty value still fits its field
// width before touching the template bytes. It encodes into a stack buffer,
// which escape analysis keeps off the heap.
func DoubleLen(v float64) int {
	var buf [MaxDoubleWidth]byte
	return len(AppendDouble(buf[:0], v))
}

// ParseInt parses the lexical form of an xsd:int, accepting surrounding
// XML whitespace (the collapse facet).
func ParseInt(s string) (int32, error) {
	s = TrimSpace(s)
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("xsdlex: invalid int %q: %w", s, err)
	}
	return int32(v), nil
}

// ParseLong parses the lexical form of an xsd:long.
func ParseLong(s string) (int64, error) {
	s = TrimSpace(s)
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("xsdlex: invalid long %q: %w", s, err)
	}
	return v, nil
}

// ParseDouble parses the lexical form of an xsd:double, accepting
// surrounding whitespace and the special names INF, -INF and NaN.
func ParseDouble(s string) (float64, error) {
	s = TrimSpace(s)
	switch s {
	case "INF", "+INF":
		return math.Inf(1), nil
	case "-INF":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("xsdlex: invalid double %q: %w", s, err)
	}
	return v, nil
}

// ParseBool parses the XSD boolean lexical space: true, false, 1, 0.
func ParseBool(s string) (bool, error) {
	switch TrimSpace(s) {
	case "true", "1":
		return true, nil
	case "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("xsdlex: invalid boolean %q", s)
}

// IsSpace reports whether b is an XML white-space character.
func IsSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// TrimSpace trims XML white space from both ends of s. It differs from
// strings.TrimSpace in trimming exactly the four XML space characters,
// nothing Unicode.
func TrimSpace(s string) string {
	for len(s) > 0 && IsSpace(s[0]) {
		s = s[1:]
	}
	for len(s) > 0 && IsSpace(s[len(s)-1]) {
		s = s[:len(s)-1]
	}
	return s
}

// EscapeText appends s to dst with the five XML character entities applied
// to the characters that are not allowed to appear literally in character
// data or attribute values.
func EscapeText(dst []byte, s string) []byte {
	last := 0
	for i := 0; i < len(s); i++ {
		var ent string
		switch s[i] {
		case '&':
			ent = "&amp;"
		case '<':
			ent = "&lt;"
		case '>':
			ent = "&gt;"
		case '"':
			ent = "&quot;"
		case '\'':
			ent = "&apos;"
		default:
			continue
		}
		dst = append(dst, s[last:i]...)
		dst = append(dst, ent...)
		last = i + 1
	}
	return append(dst, s[last:]...)
}

// EscapedLen reports len(EscapeText(nil, s)) without allocating.
func EscapedLen(s string) int {
	n := len(s)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			n += 4
		case '<', '>':
			n += 3
		case '"', '\'':
			n += 5
		}
	}
	return n
}

// UnescapeText resolves the five predefined entities plus decimal and
// hexadecimal character references in s. Unknown entities are an error.
func UnescapeText(s string) (string, error) {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for {
		b.WriteString(s[:amp])
		s = s[amp:]
		semi := strings.IndexByte(s, ';')
		if semi < 0 {
			return "", fmt.Errorf("xsdlex: unterminated entity in %q", s)
		}
		ent := s[1:semi]
		switch ent {
		case "amp":
			b.WriteByte('&')
		case "lt":
			b.WriteByte('<')
		case "gt":
			b.WriteByte('>')
		case "quot":
			b.WriteByte('"')
		case "apos":
			b.WriteByte('\'')
		default:
			if len(ent) > 1 && ent[0] == '#' {
				r, err := parseCharRef(ent[1:])
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			} else {
				return "", fmt.Errorf("xsdlex: unknown entity &%s;", ent)
			}
		}
		s = s[semi+1:]
		amp = strings.IndexByte(s, '&')
		if amp < 0 {
			b.WriteString(s)
			return b.String(), nil
		}
	}
}

func parseCharRef(s string) (rune, error) {
	base := 10
	if len(s) > 0 && (s[0] == 'x' || s[0] == 'X') {
		base = 16
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, base, 32)
	if err != nil || v > 0x10FFFF {
		return 0, fmt.Errorf("xsdlex: bad character reference &#%s;", s)
	}
	return rune(v), nil
}
