package xsdlex

import "testing"

// FuzzUnescape asserts entity resolution never panics, and that any
// successfully unescaped string re-escapes to something that resolves
// back to itself.
func FuzzUnescape(f *testing.F) {
	for _, s := range []string{"", "&amp;", "&#65;", "&#x41;", "a&lt;b", "&bogus;", "&", "&;", "&#xFFFFFFFFFF;"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out, err := UnescapeText(s)
		if err != nil {
			return
		}
		re, err := UnescapeText(string(EscapeText(nil, out)))
		if err != nil || re != out {
			t.Fatalf("escape/unescape unstable: %q -> %q (%v)", out, re, err)
		}
	})
}

// FuzzParseDouble asserts the lexical parser never panics and that any
// accepted value re-encodes to a form it accepts again.
func FuzzParseDouble(f *testing.F) {
	for _, s := range []string{"0", "-1.5", "INF", "-INF", "NaN", "1e309", "..", "1E+21"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseDouble(s)
		if err != nil {
			return
		}
		if _, err := ParseDouble(string(AppendDouble(nil, v))); err != nil {
			t.Fatalf("canonical form of %q rejected: %v", s, err)
		}
	})
}
