package faultwire

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoListener accepts connections and echoes every byte back.
func echoListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(c)
		}
	}()
	return ln
}

func TestScriptedWriteReset(t *testing.T) {
	ln := echoListener(t)
	defer ln.Close()

	var seen []Kind
	in := NewScripted(Options{OnFault: func(k Kind) { seen = append(seen, k) }},
		Step{Op: OpWrite, Skip: 2, Kind: Reset},
	)
	c, err := in.Dial(nil)("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	msg := []byte("hello")
	for i := 0; i < 2; i++ {
		if _, err := c.Write(msg); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := c.Write(msg); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write: got %v, want injected reset", err)
	}
	// The underlying connection is closed: further writes fail too.
	if _, err := c.Write(msg); err == nil {
		t.Fatal("write after injected reset succeeded")
	}
	if in.Faults() != 1 || len(seen) != 1 || seen[0] != Reset {
		t.Fatalf("faults=%d seen=%v, want one reset", in.Faults(), seen)
	}
	if got := in.FaultsByKind()["reset"]; got != 1 {
		t.Fatalf("FaultsByKind[reset]=%d, want 1", got)
	}
}

func TestScriptedPartialWrite(t *testing.T) {
	ln := echoListener(t)
	defer ln.Close()

	in := NewScripted(Options{}, Step{Op: OpWrite, Kind: PartialWrite})
	c, err := in.Dial(nil)("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	n, err := c.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write error: %v", err)
	}
	if n >= 10 || n == 0 {
		t.Fatalf("partial write delivered %d bytes, want a strict nonzero prefix", n)
	}
}

func TestScriptedDialErrorRepeat(t *testing.T) {
	ln := echoListener(t)
	defer ln.Close()

	in := NewScripted(Options{}, Step{Op: OpDial, Kind: DialError, Repeat: 1})
	dial := in.Dial(nil)
	for i := 0; i < 2; i++ {
		if _, err := dial("tcp", ln.Addr().String()); !errors.Is(err, ErrInjected) {
			t.Fatalf("dial %d: got %v, want injected", i, err)
		}
	}
	c, err := dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("third dial: %v", err)
	}
	c.Close()
	if in.Faults() != 2 {
		t.Fatalf("faults=%d, want 2", in.Faults())
	}
}

func TestScriptedMidStreamClose(t *testing.T) {
	ln := echoListener(t)
	defer ln.Close()

	in := NewScripted(Options{}, Step{Op: OpWrite, Kind: MidStreamClose})
	c, err := in.Dial(nil)("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The faulted write itself succeeds; the connection dies after it.
	if _, err := c.Write([]byte("bye")); err != nil {
		t.Fatalf("mid-stream-close write: %v", err)
	}
	if _, err := c.Write([]byte("more")); err == nil {
		t.Fatal("write after mid-stream close succeeded")
	}
}

func TestScriptedDelayAndPassthrough(t *testing.T) {
	ln := echoListener(t)
	defer ln.Close()

	in := NewScripted(Options{Delay: 5 * time.Millisecond},
		Step{Op: OpWrite, Kind: WriteDelay},
		Step{Op: OpRead, Kind: ReadDelay},
	)
	c, err := in.Dial(nil)("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("delayed write: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("delayed read: %v", err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo got %q", buf)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("round trip took %v, want ≥ 2 injected 5ms delays", d)
	}
	if in.Faults() != 2 {
		t.Fatalf("faults=%d, want 2 delays", in.Faults())
	}
}

func TestProbabilisticRates(t *testing.T) {
	// A pipe with a discarding reader on the far end; the plan decides
	// before touching the conn, so fault accounting is exact.
	in := New(Options{Seed: 42, Probs: Probabilities{Reset: 0.5}})
	const trials = 400
	faulted := 0
	for i := 0; i < trials; i++ {
		c1, c2 := net.Pipe()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = io.Copy(io.Discard, c2)
		}()
		w := in.Wrap(c1)
		if _, err := w.Write([]byte("x")); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("trial %d: non-injected error %v", i, err)
			}
			faulted++
		}
		c1.Close()
		c2.Close()
		wg.Wait()
	}
	if faulted != int(in.Faults()) {
		t.Fatalf("observed %d faults, injector counted %d", faulted, in.Faults())
	}
	// 50% ± generous slack for 400 seeded trials.
	if faulted < trials/4 || faulted > trials*3/4 {
		t.Fatalf("reset rate %d/%d far from configured 50%%", faulted, trials)
	}
}

func TestZeroProbabilitiesInjectNothing(t *testing.T) {
	in := New(Options{Seed: 7})
	c1, c2 := net.Pipe()
	defer c2.Close()
	go func() { _, _ = io.Copy(io.Discard, c2) }()
	w := in.Wrap(c1)
	defer w.Close()
	for i := 0; i < 50; i++ {
		if _, err := w.Write([]byte("y")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if in.Faults() != 0 {
		t.Fatalf("faults=%d, want 0", in.Faults())
	}
}

func TestWrappedConnKeepsDeadlines(t *testing.T) {
	ln := echoListener(t)
	defer ln.Close()

	in := New(Options{Seed: 1})
	c, err := in.Dial(nil)("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetReadDeadline(time.Now().Add(10 * time.Millisecond)); err != nil {
		t.Fatalf("SetReadDeadline through wrapper: %v", err)
	}
	buf := make([]byte, 1)
	_, err = c.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read past deadline: got %v, want timeout", err)
	}
}
