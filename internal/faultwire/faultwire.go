// Package faultwire injects network failures underneath the transport:
// a net.Conn / dialer wrapper that can reset connections, truncate
// writes, delay reads and writes, close a stream mid-send, and fail
// dials — everything a flaky production network does to a long-lived
// SOAP connection pool.
//
// The differential protocol's core guarantee (a resent or patched
// template is byte-equivalent to a from-scratch serialization) is
// easiest to break silently on exactly these paths: a send dies halfway
// through a template, the pool redials and retries, and any stale state
// would go out on the repaired socket. faultwire makes those sequences
// reproducible, in two modes:
//
//   - Probabilistic (New): every dial/read/write rolls seeded dice —
//     chaos testing, as the conformance suite and `bsoap-loadgen -chaos`
//     use it.
//   - Scripted (NewScripted): an ordered list of Steps pinning the exact
//     operation a fault fires on — deterministic regression tests.
//
// An Injector wraps connections via Wrap or an entire dial function via
// Dial; it counts every injected fault (Faults, FaultsByKind) so
// harnesses can assert faults actually happened.
package faultwire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// DialError fails a dial attempt before any connection is made.
	DialError Kind = iota
	// Reset fails a read or write immediately and closes the underlying
	// connection — the peer-reset / broken-pipe case.
	Reset
	// PartialWrite delivers only a prefix of the buffer, then closes the
	// connection and errors — a send dying mid-template.
	PartialWrite
	// MidStreamClose lets the current write complete, then closes the
	// connection so the *next* operation fails — the silent hangup.
	MidStreamClose
	// ReadDelay and WriteDelay inject a latency spike before the
	// operation, which otherwise proceeds normally.
	ReadDelay
	WriteDelay

	nKinds
)

// String names the fault kind in errors, metrics and logs.
func (k Kind) String() string {
	switch k {
	case DialError:
		return "dial-error"
	case Reset:
		return "reset"
	case PartialWrite:
		return "partial-write"
	case MidStreamClose:
		return "mid-stream-close"
	case ReadDelay:
		return "read-delay"
	case WriteDelay:
		return "write-delay"
	}
	return "unknown"
}

// Op classifies the operation a fault decision applies to.
type Op int

const (
	// OpDial is a connection attempt.
	OpDial Op = iota
	// OpRead is one Read call on a wrapped connection.
	OpRead
	// OpWrite is one Write call on a wrapped connection.
	OpWrite
)

// ErrInjected is wrapped by every error faultwire fabricates, so tests
// can tell injected failures from real ones with errors.Is.
var ErrInjected = errors.New("faultwire: injected fault")

func injectedErr(k Kind) error {
	return fmt.Errorf("faultwire: injected %s: %w", k, ErrInjected)
}

// plan decides, per operation, whether to inject a fault. Implementations
// are called under the Injector's lock.
type plan interface {
	decide(op Op) (Kind, bool)
}

// Probabilities give the per-operation chance of each fault kind.
// Reset applies to both reads and writes; PartialWrite and
// MidStreamClose to writes; ReadDelay/WriteDelay to their operation;
// DialError to dials. Zero-value probabilities inject nothing.
type Probabilities struct {
	DialError      float64
	Reset          float64
	PartialWrite   float64
	MidStreamClose float64
	ReadDelay      float64
	WriteDelay     float64
}

// Options configure an Injector.
type Options struct {
	// Seed makes the probabilistic dice reproducible (0 picks 1).
	Seed int64
	// Probs are the probabilistic-mode fault rates; ignored in scripted
	// mode.
	Probs Probabilities
	// Delay is the latency injected by ReadDelay/WriteDelay (default
	// 1ms).
	Delay time.Duration
	// OnFault, when non-nil, observes every injected fault (e.g. to feed
	// a metrics registry). Called synchronously on the faulting
	// goroutine; keep it cheap.
	OnFault func(Kind)
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Delay <= 0 {
		o.Delay = time.Millisecond
	}
	return o
}

// probPlan rolls seeded dice per operation.
type probPlan struct {
	rng *rand.Rand
	p   Probabilities
}

func (pl *probPlan) decide(op Op) (Kind, bool) {
	roll := func(p float64) bool { return p > 0 && pl.rng.Float64() < p }
	switch op {
	case OpDial:
		if roll(pl.p.DialError) {
			return DialError, true
		}
	case OpRead:
		if roll(pl.p.Reset) {
			return Reset, true
		}
		if roll(pl.p.ReadDelay) {
			return ReadDelay, true
		}
	case OpWrite:
		if roll(pl.p.Reset) {
			return Reset, true
		}
		if roll(pl.p.PartialWrite) {
			return PartialWrite, true
		}
		if roll(pl.p.MidStreamClose) {
			return MidStreamClose, true
		}
		if roll(pl.p.WriteDelay) {
			return WriteDelay, true
		}
	}
	return 0, false
}

// Step is one scripted fault: after Skip untouched operations of class
// Op, inject Kind; Repeat controls how many further matching operations
// also fault (0 = fire once, n > 0 = fire 1+n times, negative = fire on
// every matching operation from then on).
type Step struct {
	Op     Op
	Skip   int
	Kind   Kind
	Repeat int
}

// scriptPlan consumes steps strictly in order: only the head step is
// armed; operations of other classes pass through untouched. Operation
// counting is global across every connection the Injector wraps, so
// scripted tests should drive a single connection (or accept
// scheduling-dependent attribution across several).
type scriptPlan struct {
	steps []Step
	seen  int // untouched matching ops seen for the head step
	fired int // times the head step has fired
}

func (pl *scriptPlan) decide(op Op) (Kind, bool) {
	if len(pl.steps) == 0 {
		return 0, false
	}
	s := &pl.steps[0]
	if op != s.Op {
		return 0, false
	}
	if pl.seen < s.Skip {
		pl.seen++
		return 0, false
	}
	k := s.Kind
	pl.fired++
	if s.Repeat >= 0 && pl.fired > s.Repeat {
		pl.steps = pl.steps[1:]
		pl.seen, pl.fired = 0, 0
	}
	return k, true
}

// Injector decides and counts faults for every connection it wraps. All
// methods are safe for concurrent use.
type Injector struct {
	mu sync.Mutex
	pl plan

	delay   time.Duration
	onFault func(Kind)

	counts [nKinds]atomic.Int64
	total  atomic.Int64
}

// New returns a probabilistic injector.
func New(opts Options) *Injector {
	o := opts.withDefaults()
	return &Injector{
		pl:      &probPlan{rng: rand.New(rand.NewSource(o.Seed)), p: o.Probs},
		delay:   o.Delay,
		onFault: o.OnFault,
	}
}

// NewScripted returns an injector that fires the given steps in order
// (Options.Probs is ignored).
func NewScripted(opts Options, steps ...Step) *Injector {
	o := opts.withDefaults()
	return &Injector{
		pl:      &scriptPlan{steps: append([]Step(nil), steps...)},
		delay:   o.Delay,
		onFault: o.OnFault,
	}
}

// decide consults the plan and records any injected fault.
func (in *Injector) decide(op Op) (Kind, bool) {
	in.mu.Lock()
	k, ok := in.pl.decide(op)
	in.mu.Unlock()
	if !ok {
		return 0, false
	}
	in.counts[k].Add(1)
	in.total.Add(1)
	if in.onFault != nil {
		in.onFault(k)
	}
	return k, true
}

// Faults reports the total number of injected faults.
func (in *Injector) Faults() int64 { return in.total.Load() }

// FaultsByKind reports per-kind injection counts, keyed by Kind.String.
func (in *Injector) FaultsByKind() map[string]int64 {
	m := make(map[string]int64, int(nKinds))
	for k := Kind(0); k < nKinds; k++ {
		if n := in.counts[k].Load(); n > 0 {
			m[k.String()] = n
		}
	}
	return m
}

// Wrap returns c with fault injection applied to its reads and writes.
func (in *Injector) Wrap(c net.Conn) net.Conn { return &conn{Conn: c, in: in} }

// DialFunc matches the transport's pluggable dialer signature.
type DialFunc func(network, addr string) (net.Conn, error)

// Dial wraps a dial function with dial-failure injection and returns
// connections wrapped by this injector. A nil base uses a plain
// net.DialTimeout (10s); pass the transport's dialer to keep its socket
// options.
func (in *Injector) Dial(base DialFunc) DialFunc {
	if base == nil {
		base = func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, 10*time.Second)
		}
	}
	return func(network, addr string) (net.Conn, error) {
		if _, ok := in.decide(OpDial); ok {
			return nil, injectedErr(DialError)
		}
		c, err := base(network, addr)
		if err != nil {
			return nil, err
		}
		return in.Wrap(c), nil
	}
}

// conn is one fault-injected connection. Deadline and address methods
// delegate to the embedded net.Conn, so transports can keep using
// SetReadDeadline/SetWriteDeadline through the wrapper.
type conn struct {
	net.Conn
	in *Injector
}

func (c *conn) Read(p []byte) (int, error) {
	switch k, ok := c.in.decide(OpRead); {
	case !ok:
	case k == Reset:
		_ = c.Conn.Close()
		return 0, injectedErr(k)
	case k == ReadDelay:
		time.Sleep(c.in.delay)
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	switch k, ok := c.in.decide(OpWrite); {
	case !ok:
	case k == Reset:
		_ = c.Conn.Close()
		return 0, injectedErr(k)
	case k == PartialWrite:
		// Deliver a strict prefix, then kill the connection: the peer
		// sees a truncated frame, the sender sees an error.
		n := len(p) / 2
		if n > 0 {
			n, _ = c.Conn.Write(p[:n])
		}
		_ = c.Conn.Close()
		return n, injectedErr(k)
	case k == MidStreamClose:
		n, err := c.Conn.Write(p)
		_ = c.Conn.Close()
		return n, err
	case k == WriteDelay:
		time.Sleep(c.in.delay)
	}
	return c.Conn.Write(p)
}
