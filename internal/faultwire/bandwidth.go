package faultwire

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Throttle is a shared token-bucket bandwidth limiter for wrapped
// connections: every byte written to (or read from) a wrapped conn
// consumes tokens from one bucket refilled at the configured rate, so
// all connections together behave like one link of that capacity. It is
// the benchmark's constrained-network model — the regime where
// differential transmission's smaller frames translate directly into
// latency — and composes with an Injector by stacking Wrap/Dial.
// All methods are safe for concurrent use; a nil *Throttle is unlimited.
type Throttle struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bucket capacity in bytes
	tokens float64
	last   time.Time

	bytes  atomic.Int64
	waitNs atomic.Int64
}

// Bandwidth returns a throttle limiting aggregate throughput to
// bytesPerSec, with a burst bucket of bytesPerSec/8 (at least 8 KiB) so
// short messages pass unshaped. bytesPerSec <= 0 returns nil — the
// unlimited throttle, safe to use everywhere a real one is.
func Bandwidth(bytesPerSec int64) *Throttle {
	if bytesPerSec <= 0 {
		return nil
	}
	burst := float64(bytesPerSec) / 8
	if burst < 8*1024 {
		burst = 8 * 1024
	}
	return &Throttle{
		rate:   float64(bytesPerSec),
		burst:  burst,
		tokens: burst,
		last:   time.Now(),
	}
}

// take consumes n tokens, sleeping for the deficit when the bucket runs
// dry. Tokens may go negative under the lock — the debt shapes later
// callers too, which is what holds concurrent connections to the
// aggregate rate.
func (t *Throttle) take(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	now := time.Now()
	t.tokens += now.Sub(t.last).Seconds() * t.rate
	t.last = now
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	t.tokens -= float64(n)
	var wait time.Duration
	if t.tokens < 0 {
		wait = time.Duration(-t.tokens / t.rate * float64(time.Second))
	}
	t.mu.Unlock()
	t.bytes.Add(int64(n))
	if wait > 0 {
		t.waitNs.Add(int64(wait))
		time.Sleep(wait)
	}
}

// Bytes reports total bytes accounted through the throttle.
func (t *Throttle) Bytes() int64 {
	if t == nil {
		return 0
	}
	return t.bytes.Load()
}

// WaitTime reports cumulative time spent sleeping on the bucket.
func (t *Throttle) WaitTime() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.waitNs.Load())
}

// Wrap returns c with its reads and writes drawing on the shared bucket.
func (t *Throttle) Wrap(c net.Conn) net.Conn {
	if t == nil {
		return c
	}
	return &throttledConn{Conn: c, t: t}
}

// Dial wraps a dial function so every returned connection is throttled.
// A nil base uses a plain net.DialTimeout (10s), mirroring Injector.Dial.
func (t *Throttle) Dial(base DialFunc) DialFunc {
	if base == nil {
		base = func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, 10*time.Second)
		}
	}
	if t == nil {
		return base
	}
	return func(network, addr string) (net.Conn, error) {
		c, err := base(network, addr)
		if err != nil {
			return nil, err
		}
		return t.Wrap(c), nil
	}
}

// throttledConn shapes one connection against the shared bucket: writes
// pay before transmitting (the bytes cannot leave faster than the
// link), reads pay for what actually arrived.
type throttledConn struct {
	net.Conn
	t *Throttle
}

func (c *throttledConn) Write(p []byte) (int, error) {
	c.t.take(len(p))
	return c.Conn.Write(p)
}

func (c *throttledConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.t.take(n)
	return n, err
}
