package faultwire

import (
	"net"
	"testing"
	"time"
)

// TestBandwidthShapesWrites pushes more than one burst through a
// throttled pipe and asserts the transfer takes at least the token
// deficit's worth of time. Bounds are loose (half the ideal) so a slow
// CI scheduler cannot flake the test, only an absent throttle fails it.
func TestBandwidthShapesWrites(t *testing.T) {
	const rate = 256 * 1024 // 32 KiB burst
	th := Bandwidth(rate)

	client, server := net.Pipe()
	defer server.Close()
	c := th.Wrap(client)
	defer c.Close()

	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()

	// 96 KiB against a 32 KiB bucket leaves a 64 KiB deficit: >= 250ms
	// of sleep at 256 KiB/s. Require half of that.
	const total = 96 * 1024
	payload := make([]byte, 4096)
	start := time.Now()
	for sent := 0; sent < total; sent += len(payload) {
		if _, err := c.Write(payload); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	elapsed := time.Since(start)

	if want := 125 * time.Millisecond; elapsed < want {
		t.Errorf("sent %d bytes at %d B/s in %v, want >= %v", total, rate, elapsed, want)
	}
	if got := th.Bytes(); got != total {
		t.Errorf("accounted bytes = %d, want %d", got, total)
	}
	if th.WaitTime() == 0 {
		t.Error("throttle reports zero wait time despite deficit")
	}
}

// TestBandwidthReadsShareBucket asserts the receive side draws on the
// same bucket: bytes read through a wrapped conn are accounted.
func TestBandwidthReadsShareBucket(t *testing.T) {
	th := Bandwidth(1 << 20)
	client, server := net.Pipe()
	defer server.Close()
	c := th.Wrap(client)
	defer c.Close()

	go server.Write(make([]byte, 2048))

	buf := make([]byte, 2048)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := th.Bytes(); got != int64(n) {
		t.Errorf("accounted bytes = %d, want %d", got, n)
	}
}

// TestBandwidthNilUnlimited pins the nil contract: Bandwidth(0) is nil,
// and a nil throttle wraps to the original conn with zero-value stats.
func TestBandwidthNilUnlimited(t *testing.T) {
	th := Bandwidth(0)
	if th != nil {
		t.Fatal("Bandwidth(0) should be nil (unlimited)")
	}
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	if c := th.Wrap(client); c != client {
		t.Error("nil throttle must return the conn unchanged")
	}
	if th.Bytes() != 0 || th.WaitTime() != 0 {
		t.Error("nil throttle stats must be zero")
	}
	th.take(100) // must not panic
}

// TestBandwidthDialWraps asserts the dial decorator throttles the
// resulting connection and passes dial errors through.
func TestBandwidthDialWraps(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	th := Bandwidth(1 << 20)
	dial := th.Dial(nil)
	c, err := dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, ok := c.(*throttledConn); !ok {
		t.Errorf("dialed conn is %T, want *throttledConn", c)
	}

	if _, err := dial("tcp", "127.0.0.1:1"); err == nil {
		t.Error("dial to closed port should fail")
	}
}
