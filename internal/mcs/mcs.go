// Package mcs is a miniature Metadata Catalog Service (paper §3.4): a
// service managing metadata attributes of files produced by
// data-intensive applications. A general metadata schema fixes the
// attributes of every entry, so every add/query request has the same
// SOAP payload shape — the perfect-structural-match traffic the paper
// highlights. The paper's MySQL backend is replaced by an in-memory
// indexed store (the payload shape, not the storage engine, is what the
// experiments exercise).
package mcs

import (
	"fmt"
	"sort"
	"sync"

	"bsoap/internal/server"
	"bsoap/internal/serverpool"
	"bsoap/internal/soapdec"
	"bsoap/internal/wire"
)

// Namespace is the MCS service namespace.
const Namespace = "urn:mcs"

// Catalog is the in-memory metadata store: logical file name → attribute
// values under a fixed schema. All operations are safe for concurrent
// use — the serverpool runtime dispatches handlers from many replicas
// at once against one shared catalog.
type Catalog struct {
	mu     sync.Mutex
	schema []string // attribute names, fixed at construction
	byName map[string][]string
	// byAttr[i][value] = set of logical names with schema[i] == value.
	byAttr []map[string]map[string]bool
}

// NewCatalog creates a catalog over the given attribute schema.
func NewCatalog(schema []string) *Catalog {
	if len(schema) == 0 {
		panic("mcs: empty schema")
	}
	c := &Catalog{
		schema: append([]string(nil), schema...),
		byName: make(map[string][]string),
		byAttr: make([]map[string]map[string]bool, len(schema)),
	}
	for i := range c.byAttr {
		c.byAttr[i] = make(map[string]map[string]bool)
	}
	return c
}

// Schema returns the attribute names.
func (c *Catalog) Schema() []string { return c.schema }

// Len reports the number of entries.
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byName)
}

// attrIndex resolves an attribute name.
func (c *Catalog) attrIndex(attr string) (int, error) {
	for i, a := range c.schema {
		if a == attr {
			return i, nil
		}
	}
	return 0, fmt.Errorf("mcs: attribute %q not in schema", attr)
}

// Add inserts or replaces the entry for name. values must match the
// schema length.
func (c *Catalog) Add(name string, values []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(values) != len(c.schema) {
		return fmt.Errorf("mcs: %d values for %d-attribute schema", len(values), len(c.schema))
	}
	if old, ok := c.byName[name]; ok {
		c.unindex(name, old)
	}
	stored := append([]string(nil), values...)
	c.byName[name] = stored
	for i, v := range stored {
		set := c.byAttr[i][v]
		if set == nil {
			set = make(map[string]bool)
			c.byAttr[i][v] = set
		}
		set[name] = true
	}
	return nil
}

// Delete removes an entry, reporting whether it existed.
func (c *Catalog) Delete(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	vals, ok := c.byName[name]
	if !ok {
		return false
	}
	c.unindex(name, vals)
	delete(c.byName, name)
	return true
}

func (c *Catalog) unindex(name string, vals []string) {
	for i, v := range vals {
		if set := c.byAttr[i][v]; set != nil {
			delete(set, name)
			if len(set) == 0 {
				delete(c.byAttr[i], v)
			}
		}
	}
}

// Get returns the attribute values of name. The returned slice is the
// catalog's storage and must not be modified.
func (c *Catalog) Get(name string) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.byName[name]
	return v, ok
}

// Query returns the logical names whose attribute attr equals value,
// sorted for determinism.
func (c *Catalog) Query(attr, value string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, err := c.attrIndex(attr)
	if err != nil {
		return nil, err
	}
	set := c.byAttr[i][value]
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// --- SOAP binding -----------------------------------------------------

// QueryPageSize fixes the response shape: a query response always
// carries this many name slots (empty strings pad short result pages),
// so consecutive responses are perfect structural matches for the
// server's differential response stub.
const QueryPageSize = 16

// AddSchema is the mcsAdd operation: logicalName plus one string array
// holding the schema's attribute values.
func AddSchema() *soapdec.Schema {
	return &soapdec.Schema{
		Namespace: Namespace,
		Op:        "mcsAdd",
		Params: []soapdec.ParamSpec{
			{Name: "logicalName", Type: wire.TString},
			{Name: "values", Type: wire.ArrayOf(wire.TString)},
		},
	}
}

// QuerySchema is the mcsQuery operation: attribute name and value.
func QuerySchema() *soapdec.Schema {
	return &soapdec.Schema{
		Namespace: Namespace,
		Op:        "mcsQuery",
		Params: []soapdec.ParamSpec{
			{Name: "attribute", Type: wire.TString},
			{Name: "value", Type: wire.TString},
		},
	}
}

// DeleteSchema is the mcsDelete operation.
func DeleteSchema() *soapdec.Schema {
	return &soapdec.Schema{
		Namespace: Namespace,
		Op:        "mcsDelete",
		Params:    []soapdec.ParamSpec{{Name: "logicalName", Type: wire.TString}},
	}
}

// addFactory builds an mcsAdd handler with its own reused response
// message (fixed shape → structural matches on the response stub).
func addFactory(c *Catalog) func() server.Handler {
	return func() server.Handler {
		addResp := wire.NewMessage(Namespace, "mcsAddResponse")
		addOK := addResp.AddBool("ok", true)
		return func(req *wire.Message) (*wire.Message, error) {
			name := req.LeafString(0)
			vals := make([]string, req.NumLeaves()-1)
			for i := range vals {
				vals[i] = req.LeafString(i + 1)
			}
			err := c.Add(name, vals)
			addOK.Set(err == nil)
			if err != nil {
				return nil, err
			}
			return addResp, nil
		}
	}
}

// queryFactory builds an mcsQuery handler with its own padded response
// page.
func queryFactory(c *Catalog) func() server.Handler {
	return func() server.Handler {
		queryResp := wire.NewMessage(Namespace, "mcsQueryResponse")
		count := queryResp.AddInt("count", 0)
		page := queryResp.AddStringArray("names", QueryPageSize)
		return func(req *wire.Message) (*wire.Message, error) {
			names, err := c.Query(req.LeafString(0), req.LeafString(1))
			if err != nil {
				return nil, err
			}
			count.Set(int32(len(names)))
			for i := 0; i < QueryPageSize; i++ {
				if i < len(names) {
					page.Set(i, names[i])
				} else {
					page.Set(i, "")
				}
			}
			return queryResp, nil
		}
	}
}

// deleteFactory builds an mcsDelete handler.
func deleteFactory(c *Catalog) func() server.Handler {
	return func() server.Handler {
		delResp := wire.NewMessage(Namespace, "mcsDeleteResponse")
		existed := delResp.AddBool("existed", false)
		return func(req *wire.Message) (*wire.Message, error) {
			existed.Set(c.Delete(req.LeafString(0)))
			return delResp, nil
		}
	}
}

// Bind registers the MCS operations on a single-lock SOAP endpoint.
// Responses reuse fixed-shape message objects so the endpoint's
// differential response stub gets structural matches.
func Bind(ep *server.SOAP, c *Catalog) {
	ep.Register(AddSchema(), addFactory(c)())
	ep.Register(QuerySchema(), queryFactory(c)())
	ep.Register(DeleteSchema(), deleteFactory(c)())
}

// BindRuntime registers the MCS operations on the concurrent serverpool
// runtime: every replica gets private response messages, all sharing
// the one catalog (which locks internally).
func BindRuntime(rt *serverpool.Runtime, c *Catalog) {
	rt.Register(AddSchema(), addFactory(c))
	rt.Register(QuerySchema(), queryFactory(c))
	rt.Register(DeleteSchema(), deleteFactory(c))
}
