package mcs

import (
	"net"
	"strings"
	"testing"

	"bsoap/internal/core"
	"bsoap/internal/server"
	"bsoap/internal/wire"
)

var testSchema = []string{"owner", "experiment", "format"}

func TestAddGetDelete(t *testing.T) {
	c := NewCatalog(testSchema)
	if err := c.Add("file1", []string{"alice", "climate", "hdf5"}); err != nil {
		t.Fatal(err)
	}
	vals, ok := c.Get("file1")
	if !ok || vals[0] != "alice" || vals[2] != "hdf5" {
		t.Fatalf("Get: %v %v", vals, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !c.Delete("file1") {
		t.Fatal("Delete failed")
	}
	if c.Delete("file1") {
		t.Fatal("double delete succeeded")
	}
	if _, ok := c.Get("file1"); ok {
		t.Fatal("deleted entry still present")
	}
}

func TestAddValidatesArity(t *testing.T) {
	c := NewCatalog(testSchema)
	if err := c.Add("f", []string{"too", "few"}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestQueryByAttribute(t *testing.T) {
	c := NewCatalog(testSchema)
	c.Add("f1", []string{"alice", "climate", "hdf5"})
	c.Add("f2", []string{"bob", "climate", "netcdf"})
	c.Add("f3", []string{"alice", "fusion", "hdf5"})

	names, err := c.Query("experiment", "climate")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "f1" || names[1] != "f2" {
		t.Fatalf("query: %v", names)
	}
	names, _ = c.Query("owner", "alice")
	if len(names) != 2 {
		t.Fatalf("owner query: %v", names)
	}
	if _, err := c.Query("nosuch", "x"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	names, _ = c.Query("owner", "nobody")
	if len(names) != 0 {
		t.Fatalf("empty query: %v", names)
	}
}

func TestReplaceReindexes(t *testing.T) {
	c := NewCatalog(testSchema)
	c.Add("f1", []string{"alice", "climate", "hdf5"})
	c.Add("f1", []string{"bob", "climate", "hdf5"}) // replace
	if names, _ := c.Query("owner", "alice"); len(names) != 0 {
		t.Fatalf("stale index: %v", names)
	}
	if names, _ := c.Query("owner", "bob"); len(names) != 1 {
		t.Fatalf("new index: %v", names)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestDeleteCleansIndexes(t *testing.T) {
	c := NewCatalog(testSchema)
	c.Add("f1", []string{"alice", "climate", "hdf5"})
	c.Delete("f1")
	if names, _ := c.Query("format", "hdf5"); len(names) != 0 {
		t.Fatalf("index survived delete: %v", names)
	}
}

// --- SOAP binding ------------------------------------------------------

type captureSink struct{ data []byte }

func (c *captureSink) Send(bufs net.Buffers) error {
	c.data = c.data[:0]
	for _, b := range bufs {
		c.data = append(c.data, b...)
	}
	return nil
}

// call renders m with a differential stub and dispatches it.
func call(t *testing.T, ep *server.SOAP, stub *core.Stub, sink *captureSink, m *wire.Message) []byte {
	t.Helper()
	if _, err := stub.Call(m); err != nil {
		t.Fatal(err)
	}
	resp, err := ep.Handle(sink.data)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSOAPBindingEndToEnd(t *testing.T) {
	c := NewCatalog(testSchema)
	ep := server.New(server.Options{DifferentialDeserialization: true})
	Bind(ep, c)

	sink := &captureSink{}
	stub := core.NewStub(core.Config{}, sink)

	// Add two files through the fixed-schema add message, reusing one
	// message object (the paper's repeated-similar-requests pattern).
	addMsg := wire.NewMessage(Namespace, "mcsAdd")
	name := addMsg.AddString("logicalName", "")
	vals := addMsg.AddStringArray("values", len(testSchema))

	name.Set("exp-run-001.h5")
	vals.Set(0, "alice")
	vals.Set(1, "climate")
	vals.Set(2, "hdf5")
	resp := call(t, ep, stub, sink, addMsg)
	if !strings.Contains(string(resp), ">true<") {
		t.Fatalf("add response: %s", resp)
	}

	name.Set("exp-run-002.h5")
	vals.Set(0, "bob00")
	resp = call(t, ep, stub, sink, addMsg)
	if !strings.Contains(string(resp), ">true<") {
		t.Fatalf("second add response: %s", resp)
	}
	if c.Len() != 2 {
		t.Fatalf("catalog has %d entries", c.Len())
	}

	// Query by experiment.
	qMsg := wire.NewMessage(Namespace, "mcsQuery")
	attr := qMsg.AddString("attribute", "experiment")
	qMsg.AddString("value", "climate")
	resp = call(t, ep, stub, sink, qMsg)
	if !strings.Contains(string(resp), ">2<") ||
		!strings.Contains(string(resp), "exp-run-001.h5") {
		t.Fatalf("query response: %s", resp)
	}
	_ = attr

	// Delete and re-query.
	dMsg := wire.NewMessage(Namespace, "mcsDelete")
	dMsg.AddString("logicalName", "exp-run-001.h5")
	resp = call(t, ep, stub, sink, dMsg)
	if !strings.Contains(string(resp), ">true<") {
		t.Fatalf("delete response: %s", resp)
	}
	resp = call(t, ep, stub, sink, qMsg)
	if !strings.Contains(string(resp), ">1<") {
		t.Fatalf("post-delete query: %s", resp)
	}
}

func TestResponsePageIsFixedShape(t *testing.T) {
	c := NewCatalog(testSchema)
	ep := server.New(server.Options{})
	Bind(ep, c)
	sink := &captureSink{}
	stub := core.NewStub(core.Config{}, sink)

	qMsg := wire.NewMessage(Namespace, "mcsQuery")
	qMsg.AddString("attribute", "owner")
	val := qMsg.AddString("value", "alice")

	r1 := append([]byte(nil), call(t, ep, stub, sink, qMsg)...)
	val.Set("bob") // different query, same shape
	r2 := call(t, ep, stub, sink, qMsg)
	if len(r1) != len(r2) {
		t.Fatalf("response sizes differ: %d vs %d", len(r1), len(r2))
	}
	// The server's response stub must be reusing its template.
	rs := ep.ResponseStats()
	if rs.FirstTimeSends != 1 {
		t.Fatalf("response stats: %+v", rs)
	}
}
