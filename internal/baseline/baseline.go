// Package baseline implements the full-serialization SOAP toolkits the
// paper compares against. Both produce the same wire format as the
// differential engine, so measured differences come from strategy, not
// from message size.
//
//   - GSOAPLike reproduces gSOAP's approach: a single streaming pass over
//     the data into one reusable growing buffer, with tight inline
//     value-conversion loops. This is the fastest way to serialize a
//     message *from scratch*; differential serialization wins by not
//     serializing from scratch.
//
//   - XSOAPLike reproduces why the Java XSOAP toolkit measures slower:
//     serialization first builds an object tree (one allocation per
//     element, values boxed to strings), then stringifies it in a second
//     pass — the document-object style RMI serializers of the era.
package baseline

import (
	"net"
	"strconv"

	"bsoap/internal/fastconv"
	"bsoap/internal/soapenv"
	"bsoap/internal/wire"
	"bsoap/internal/xsdlex"
)

// Serializer turns a message into its complete wire form. Implementations
// may reuse an internal buffer: the returned slice is valid until the
// next Serialize call.
type Serializer interface {
	// Name identifies the implementation in benchmark output.
	Name() string
	// Serialize renders m fully.
	Serialize(m *wire.Message) []byte
}

// Client couples a Serializer with a Sink, giving the baselines the same
// call surface as the differential stub.
type Client struct {
	ser  Serializer
	sink Sink
}

// Sink matches core.Sink without importing it (the consumer defines the
// interface; transports satisfy both).
type Sink interface {
	Send(bufs net.Buffers) error
}

// NewClient returns a client sending through sink.
func NewClient(ser Serializer, sink Sink) *Client {
	return &Client{ser: ser, sink: sink}
}

// Call serializes and sends m, returning the byte count.
func (c *Client) Call(m *wire.Message) (int, error) {
	data := c.ser.Serialize(m)
	if err := c.sink.Send(net.Buffers{data}); err != nil {
		return 0, err
	}
	return len(data), nil
}

// ---------------------------------------------------------------------
// gSOAP-like: one streaming pass, reused buffer, inline conversions.
// ---------------------------------------------------------------------

// GSOAPLike is a single-pass full serializer in the style of gSOAP.
// Not safe for concurrent use (the buffer is reused across calls).
type GSOAPLike struct {
	buf []byte
}

// NewGSOAPLike returns a serializer with a small initial buffer.
func NewGSOAPLike() *GSOAPLike { return &GSOAPLike{buf: make([]byte, 0, 4096)} }

// Name implements Serializer.
func (g *GSOAPLike) Name() string { return "gSOAP-like" }

// Serialize implements Serializer.
func (g *GSOAPLike) Serialize(m *wire.Message) []byte {
	b := g.buf[:0]
	b = append(b, soapenv.EnvelopeStart(m.Namespace())...)
	b = append(b, soapenv.OperationStart(m.Operation())...)
	leaf := 0
	for _, p := range m.Params() {
		switch p.Type.Kind {
		case wire.Array:
			b = append(b, soapenv.ArrayStart(p.Name, p.Type.Elem, p.Count)...)
			for i := 0; i < p.Count; i++ {
				b, leaf = g.value(b, m, p.Type.Elem, soapenv.ItemTag, leaf)
			}
			b = append(b, soapenv.ArrayEnd(p.Name)...)
		case wire.Struct:
			b = append(b, soapenv.StructStart(p.Name, p.Type)...)
			for _, f := range p.Type.Fields {
				b, leaf = g.value(b, m, f.Type, f.Name, leaf)
			}
			b = append(b, soapenv.CloseTag(p.Name)...)
		default:
			b = append(b, soapenv.ScalarStart(p.Name, p.Type)...)
			b, leaf = g.scalar(b, m, p.Type, leaf)
			b = append(b, soapenv.CloseTag(p.Name)...)
		}
	}
	b = append(b, soapenv.OperationEnd(m.Operation())...)
	b = append(b, soapenv.EnvelopeEnd...)
	g.buf = b
	return b
}

func (g *GSOAPLike) value(b []byte, m *wire.Message, t *wire.Type, tag string, leaf int) ([]byte, int) {
	b = append(b, '<')
	b = append(b, tag...)
	b = append(b, '>')
	if t.Kind == wire.Struct {
		for _, f := range t.Fields {
			b, leaf = g.value(b, m, f.Type, f.Name, leaf)
		}
	} else {
		b, leaf = g.scalar(b, m, t, leaf)
	}
	b = append(b, '<', '/')
	b = append(b, tag...)
	b = append(b, '>')
	return b, leaf
}

func (g *GSOAPLike) scalar(b []byte, m *wire.Message, t *wire.Type, leaf int) ([]byte, int) {
	switch t.Kind {
	case wire.Int:
		var tmp [xsdlex.MaxIntWidth]byte
		n := fastconv.WriteInt(tmp[:], m.LeafInt(leaf))
		b = append(b, tmp[:n]...)
	case wire.Double:
		var tmp [xsdlex.MaxDoubleWidth]byte
		n := fastconv.WriteDouble(tmp[:], m.LeafDouble(leaf))
		b = append(b, tmp[:n]...)
	case wire.Bool:
		b = xsdlex.AppendBool(b, m.LeafBool(leaf))
	case wire.String:
		b = xsdlex.EscapeText(b, m.LeafString(leaf))
	}
	return b, leaf + 1
}

// ---------------------------------------------------------------------
// XSOAP-like: build a document object tree, then stringify it.
// ---------------------------------------------------------------------

// node is one element of the intermediate document tree.
type node struct {
	tag      string
	attrs    []string // pre-rendered ` k="v"` fragments
	text     string   // leaf text (boxed value)
	children []*node
}

// XSOAPLike is a DOM-building full serializer in the style of the Java
// XSOAP/SoapRMI implementations: every element is an allocated object
// and every value is boxed into a string before the output pass.
type XSOAPLike struct{}

// NewXSOAPLike returns the serializer.
func NewXSOAPLike() *XSOAPLike { return &XSOAPLike{} }

// Name implements Serializer.
func (x *XSOAPLike) Name() string { return "XSOAP-like" }

// Serialize implements Serializer.
func (x *XSOAPLike) Serialize(m *wire.Message) []byte {
	op := &node{tag: "ns1:" + m.Operation()}
	leaf := 0
	for _, p := range m.Params() {
		var pn *node
		switch p.Type.Kind {
		case wire.Array:
			pn = &node{tag: p.Name, attrs: []string{
				` xsi:type="SOAP-ENC:Array"`,
				` SOAP-ENC:arrayType="` + p.Type.Elem.Name + `[` + strconv.Itoa(p.Count) + `]"`,
			}}
			for i := 0; i < p.Count; i++ {
				var c *node
				c, leaf = x.valueNode(m, p.Type.Elem, soapenv.ItemTag, leaf)
				pn.children = append(pn.children, c)
			}
		case wire.Struct:
			pn = &node{tag: p.Name, attrs: []string{` xsi:type="` + p.Type.Name + `"`}}
			for _, f := range p.Type.Fields {
				var c *node
				c, leaf = x.valueNode(m, f.Type, f.Name, leaf)
				pn.children = append(pn.children, c)
			}
		default:
			var c *node
			c, leaf = x.valueNode(m, p.Type, p.Name, leaf)
			c.attrs = []string{` xsi:type="` + p.Type.Name + `"`}
			pn = c
		}
		op.children = append(op.children, pn)
	}

	// Second pass: stringify the tree.
	out := make([]byte, 0, 4096)
	out = append(out, soapenv.EnvelopeStart(m.Namespace())...)
	out = render(out, op)
	out = append(out, soapenv.EnvelopeEnd...)
	return out
}

// valueNode boxes one value (or struct of values) into tree nodes.
func (x *XSOAPLike) valueNode(m *wire.Message, t *wire.Type, tag string, leaf int) (*node, int) {
	n := &node{tag: tag}
	if t.Kind == wire.Struct {
		for _, f := range t.Fields {
			var c *node
			c, leaf = x.valueNode(m, f.Type, f.Name, leaf)
			n.children = append(n.children, c)
		}
		return n, leaf
	}
	// Box the value into a string, as a Java serializer converts each
	// primitive to java.lang.String before writing.
	switch t.Kind {
	case wire.Int:
		n.text = strconv.FormatInt(int64(m.LeafInt(leaf)), 10)
	case wire.Double:
		var tmp [xsdlex.MaxDoubleWidth]byte
		w := fastconv.WriteDouble(tmp[:], m.LeafDouble(leaf))
		n.text = string(tmp[:w])
	case wire.Bool:
		n.text = strconv.FormatBool(m.LeafBool(leaf))
	case wire.String:
		n.text = string(xsdlex.EscapeText(nil, m.LeafString(leaf)))
	}
	return n, leaf + 1
}

// render stringifies the node tree depth-first.
func render(out []byte, n *node) []byte {
	out = append(out, '<')
	out = append(out, n.tag...)
	for _, a := range n.attrs {
		out = append(out, a...)
	}
	out = append(out, '>')
	for _, c := range n.children {
		out = render(out, c)
	}
	out = append(out, n.text...)
	out = append(out, '<', '/')
	out = append(out, n.tag...)
	out = append(out, '>')
	return out
}
