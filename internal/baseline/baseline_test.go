package baseline

import (
	"net"
	"strings"
	"testing"

	"bsoap/internal/core"
	"bsoap/internal/wire"
	"bsoap/internal/xmlparse"
	"bsoap/internal/xsdlex"
)

type captureSink struct{ data []byte }

func (c *captureSink) Send(bufs net.Buffers) error {
	c.data = c.data[:0]
	for _, b := range bufs {
		c.data = append(c.data, b...)
	}
	return nil
}

func sampleMessage() *wire.Message {
	m := wire.NewMessage("urn:base", "sample")
	m.AddInt("n", -7)
	m.AddString("who", "a<b")
	mio := wire.StructOf("ns1:MIO",
		wire.Field{Name: "x", Type: wire.TInt},
		wire.Field{Name: "y", Type: wire.TInt},
		wire.Field{Name: "value", Type: wire.TDouble},
	)
	arr := m.AddStructArray("mios", mio, 10)
	for i := 0; i < 10; i++ {
		arr.SetInt(i, 0, int32(i))
		arr.SetInt(i, 1, int32(-i))
		arr.SetDouble(i, 2, float64(i)*0.5)
	}
	da := m.AddDoubleArray("vec", 5)
	for i := 0; i < 5; i++ {
		da.Set(i, float64(i)+0.125)
	}
	return m
}

// leafTexts mirrors the extraction used by the core tests.
func leafTexts(t *testing.T, doc []byte) []string {
	t.Helper()
	p := xmlparse.NewParser(doc)
	var out []string
	type frame struct {
		text     strings.Builder
		children int
	}
	var stack []*frame
	for {
		tok, err := p.Next()
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		switch tok.Kind {
		case xmlparse.EOF:
			return out
		case xmlparse.StartElement:
			if len(stack) > 0 {
				stack[len(stack)-1].children++
			}
			stack = append(stack, &frame{})
		case xmlparse.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text.WriteString(tok.Text)
			}
		case xmlparse.EndElement:
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if f.children == 0 {
				out = append(out, xsdlex.TrimSpace(f.text.String()))
			}
		}
	}
}

func TestGSOAPLikeMatchesDifferentialFirstSend(t *testing.T) {
	m := sampleMessage()
	g := NewGSOAPLike()
	got := append([]byte(nil), g.Serialize(m)...)

	sink := &captureSink{}
	stub := core.NewStub(core.Config{}, sink)
	if _, err := stub.Call(m); err != nil {
		t.Fatal(err)
	}
	// With exact widths the differential first-time send and the gSOAP
	// baseline must be byte-identical: same grammar, same conversions.
	if string(got) != string(sink.data) {
		t.Fatalf("baselines diverge:\n gsoap: %.400s\n bsoap: %.400s", got, sink.data)
	}
}

func TestXSOAPLikeSameValues(t *testing.T) {
	m := sampleMessage()
	x := NewXSOAPLike()
	xd := x.Serialize(m)
	g := NewGSOAPLike()
	gd := g.Serialize(m)
	xs, gs := leafTexts(t, xd), leafTexts(t, gd)
	if len(xs) != len(gs) {
		t.Fatalf("leaf counts differ: %d vs %d", len(xs), len(gs))
	}
	for i := range xs {
		if xs[i] != gs[i] {
			t.Fatalf("leaf %d differs: %q vs %q", i, xs[i], gs[i])
		}
	}
}

func TestSerializersAreReusable(t *testing.T) {
	m := sampleMessage()
	for _, ser := range []Serializer{NewGSOAPLike(), NewXSOAPLike()} {
		first := append([]byte(nil), ser.Serialize(m)...)
		second := ser.Serialize(m)
		if string(first) != string(second) {
			t.Fatalf("%s: repeated serialization differs", ser.Name())
		}
	}
}

func TestSerializerNames(t *testing.T) {
	if NewGSOAPLike().Name() != "gSOAP-like" || NewXSOAPLike().Name() != "XSOAP-like" {
		t.Fatal("names changed; benchmark output depends on them")
	}
}

func TestClientCall(t *testing.T) {
	m := sampleMessage()
	sink := &captureSink{}
	c := NewClient(NewGSOAPLike(), sink)
	n, err := c.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(sink.data) || n == 0 {
		t.Fatalf("Call reported %d bytes, sink got %d", n, len(sink.data))
	}
}

func TestValueUpdatesAreReflected(t *testing.T) {
	// Full serializers read the live message every call: no staleness.
	m := wire.NewMessage("urn:base", "op")
	d := m.AddDouble("v", 1.5)
	g := NewGSOAPLike()
	if !strings.Contains(string(g.Serialize(m)), ">1.5<") {
		t.Fatal("value missing")
	}
	d.Set(2.5)
	if !strings.Contains(string(g.Serialize(m)), ">2.5<") {
		t.Fatal("update not reflected")
	}
}

func BenchmarkGSOAPLikeDoubles1K(b *testing.B) {
	m := wire.NewMessage("urn:base", "op")
	arr := m.AddDoubleArray("v", 1000)
	for i := 0; i < 1000; i++ {
		arr.Set(i, float64(i)*1.0001)
	}
	g := NewGSOAPLike()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Serialize(m)
	}
}

func BenchmarkXSOAPLikeDoubles1K(b *testing.B) {
	m := wire.NewMessage("urn:base", "op")
	arr := m.AddDoubleArray("v", 1000)
	for i := 0; i < 1000; i++ {
		arr.Set(i, float64(i)*1.0001)
	}
	x := NewXSOAPLike()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Serialize(m)
	}
}
