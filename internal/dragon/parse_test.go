package dragon

import (
	"math"
	"math/big"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// checkParse compares against strconv.ParseFloat, the correctly rounded
// oracle.
func checkParse(t *testing.T, s string) {
	t.Helper()
	want, werr := strconv.ParseFloat(s, 64)
	got, gerr := Parse(s)
	if werr != nil {
		if gerr == nil {
			t.Fatalf("Parse(%q) = %v, oracle rejects (%v)", s, got, werr)
		}
		return
	}
	if gerr != nil {
		t.Fatalf("Parse(%q): %v, oracle accepts %v", s, gerr, want)
	}
	if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
		t.Fatalf("Parse(%q) = %x, want %x", s, math.Float64bits(got), math.Float64bits(want))
	}
}

func TestParseBasics(t *testing.T) {
	for _, s := range []string{
		"0", "-0", "1", "-1", "0.5", "2.5", "1e10", "1E-10", "+3.25",
		"123456789012345678901234567890", "0.000000000000000000001",
		"1.7976931348623157e308", "1.7976931348623159e308", // max, overflow
		"4.9e-324", "2.47e-324", "2.4e-324", "1e-400", // denormal edge
		"2.2250738585072014e-308", "2.2250738585072011e-308",
		"9007199254740993", "9007199254740992", "9007199254740991",
		"1e309", "1e-309", "1e400",
		"0.1", "0.2", "0.3", "0.7",
		"5e-324", "1.5e-323",
	} {
		checkParse(t, s)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "-", "+", ".", "1..2", "1e", "1e+", "abc", "1x", "--1", "1.2.3", "1e5x"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestParseSpecials(t *testing.T) {
	if v, err := Parse("INF"); err != nil || !math.IsInf(v, 1) {
		t.Fatalf("INF: %v, %v", v, err)
	}
	if v, err := Parse("-INF"); err != nil || !math.IsInf(v, -1) {
		t.Fatalf("-INF: %v, %v", v, err)
	}
	if v, err := Parse("NaN"); err != nil || !math.IsNaN(v) {
		t.Fatalf("NaN: %v, %v", v, err)
	}
}

func TestParseRoundTripsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := math.Float64frombits(rng.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		s := string(AppendShortest(nil, v))
		got, err := Parse(s)
		if err != nil || got != v {
			t.Fatalf("Parse(AppendShortest(%x)) = %x, %v",
				math.Float64bits(v), math.Float64bits(got), err)
		}
	}
}

func TestParseRandomDecimalStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10000; i++ {
		// Random digit strings with random points and exponents,
		// stressing the correctly-rounded path (17+ digits).
		nd := rng.Intn(25) + 1
		b := make([]byte, 0, 40)
		if rng.Intn(2) == 0 {
			b = append(b, '-')
		}
		point := rng.Intn(nd + 1)
		for j := 0; j < nd; j++ {
			if j == point {
				b = append(b, '.')
			}
			b = append(b, byte('0'+rng.Intn(10)))
		}
		if rng.Intn(2) == 0 {
			b = append(b, 'e')
			b = strconv.AppendInt(b, int64(rng.Intn(700)-350), 10)
		}
		checkParse(t, string(b))
	}
}

func TestParseHalfwayCases(t *testing.T) {
	// Exact midpoints between adjacent floats must round to even.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		v := math.Float64frombits(rng.Uint64() & (1<<63 - 1)) // positive
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		next := math.Nextafter(v, math.Inf(1))
		if math.IsInf(next, 1) {
			continue
		}
		// Midpoint = (v + next) / 2, exactly representable in decimal.
		checkParse(t, midpointDecimal(v, next))
	}
}

// midpointDecimal renders the exact decimal expansion of the midpoint
// of two adjacent positive floats (always a finite decimal: m × 2^e).
func midpointDecimal(v, next float64) string {
	decompose := func(f float64) (uint64, int) {
		bits := math.Float64bits(f)
		frac := bits & (1<<52 - 1)
		be := int(bits >> 52 & 0x7FF)
		if be == 0 {
			return frac, -1074
		}
		return frac | 1<<52, be - 1075
	}
	m, e := decompose(v)
	nm, ne := decompose(next)
	// Align exponents and average:
	// mid = (m·2^(e−min) + nm·2^(ne−min)) · 2^(min−1).
	min := e
	if ne < min {
		min = ne
	}
	sum := m<<uint(e-min) + nm<<uint(ne-min) // both < 2^54
	return exactDecimalBig(sum, min-1)
}

// exactDecimalBig renders m × 2^e exactly as a plain decimal string
// (binary fractions always terminate: m·2^−k = m·5^k / 10^k).
func exactDecimalBig(m uint64, e int) string {
	n := new(big.Int).SetUint64(m)
	if e >= 0 {
		n.Lsh(n, uint(e))
		return n.String()
	}
	k := -e
	n.Mul(n, new(big.Int).Exp(big.NewInt(5), big.NewInt(int64(k)), nil))
	s := n.String()
	if len(s) <= k {
		s = strings.Repeat("0", k-len(s)+1) + s
	}
	return s[:len(s)-k] + "." + s[len(s)-k:]
}

func TestParseVersusOracleQuick(t *testing.T) {
	// Cross-check the internal exactDecimalBig helper too.
	if got := exactDecimalBig(3, 1); got != "6" {
		t.Fatalf("exactDecimalBig(3,1) = %q", got)
	}
	if got := exactDecimalBig(1, -1); got != "0.5" {
		t.Fatalf("exactDecimalBig(1,-1) = %q", got)
	}
	checkParse(t, exactDecimalBig(1, -1074))
	checkParse(t, exactDecimalBig((1<<53)+1, -1)) // midpoint above 2^52 scale
}

func BenchmarkDragonParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("3.141592653589793"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrconvParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := strconv.ParseFloat("3.141592653589793", 64); err != nil {
			b.Fatal(err)
		}
	}
}
