// Package dragon is a from-scratch, exact shortest-round-trip printer
// for IEEE 754 binary64 values, implementing the Steele–White /
// Burger–Dybvig free-format algorithm ("Dragon4") over math/big
// integers.
//
// The paper identifies the conversion between doubles and their ASCII
// forms as *the* SOAP bottleneck (~90 % of end-to-end time in 2004).
// This package serves two purposes in the reproduction:
//
//   - It is the hand-rolled conversion substrate: byte-for-byte equal
//     to strconv's shortest 'G' formatting (property-tested), derived
//     from first principles rather than the standard library.
//
//   - It is deliberately *slow* — exact big-integer arithmetic, like
//     the printf-family conversions SOAP toolkits used in 2004. The
//     benchmark harness can swap it in (fastconv.SetDoubleConverter)
//     to emulate 2004-era conversion/transport cost ratios and recover
//     the paper's original speedup magnitudes.
package dragon

import (
	"math"
	"math/big"
)

// AppendShortest appends the shortest decimal representation of v that
// round-trips to exactly v, formatted identically to
// strconv.AppendFloat(dst, v, 'G', -1, 64).
func AppendShortest(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	neg := bits>>63 != 0
	be := int(bits >> 52 & 0x7FF)
	frac := bits & (1<<52 - 1)

	switch {
	case be == 0x7FF:
		if frac != 0 {
			return append(dst, "NaN"...)
		}
		if neg {
			return append(dst, "-Inf"...)
		}
		return append(dst, "+Inf"...)
	case be == 0 && frac == 0:
		if neg {
			dst = append(dst, '-')
		}
		return append(dst, '0')
	}

	var mant uint64
	var exp int
	if be == 0 {
		mant = frac
		exp = -1074
	} else {
		mant = frac | 1<<52
		exp = be - 1075
	}
	// The gap to the predecessor halves exactly when the mantissa sits
	// on a power-of-two boundary (and the predecessor is still normal).
	boundary := frac == 0 && be > 1

	digits, dp := shortestDigits(mant, exp, boundary)
	if neg {
		dst = append(dst, '-')
	}
	return formatG(dst, digits, dp)
}

// shortestDigits produces the shortest digit string d and decimal
// point position dp with value == 0.d × 10^dp, free-format per
// Burger & Dybvig. even-mantissa values own their interval endpoints
// (IEEE round-to-nearest-even).
func shortestDigits(mant uint64, exp int, boundary bool) (digits []byte, dp int) {
	inclusive := mant&1 == 0

	// Value = mant × 2^exp = r/s; m⁺/s and m⁻/s are the half-gaps to
	// the neighbouring floats.
	r := new(big.Int).SetUint64(mant)
	s := big.NewInt(1)
	mPlus := big.NewInt(1)
	mMinus := big.NewInt(1)
	if exp >= 0 {
		bexp := new(big.Int).Lsh(big.NewInt(1), uint(exp))
		if !boundary {
			r.Lsh(r, uint(exp)+1) // r = mant·2^exp·2
			s.SetInt64(2)
			mPlus.Set(bexp)
			mMinus.Set(bexp)
		} else {
			r.Lsh(r, uint(exp)+2) // r = mant·2^exp·4
			s.SetInt64(4)
			mPlus.Lsh(bexp, 1)
			mMinus.Set(bexp)
		}
	} else {
		if !boundary {
			r.Lsh(r, 1) // r = mant·2
			s.Lsh(s, uint(-exp)+1)
			// mPlus = mMinus = 1
		} else {
			r.Lsh(r, 2) // r = mant·4
			s.Lsh(s, uint(-exp)+2)
			mPlus.SetInt64(2)
			// mMinus = 1
		}
	}

	// within reports whether x (compared against limit) is inside the
	// rounding interval on this side.
	moreThan := func(x, limit *big.Int) bool {
		if inclusive {
			return x.Cmp(limit) >= 0
		}
		return x.Cmp(limit) > 0
	}

	// Scale so that the first generated digit is in [1, 10): find dp
	// with s·10^(dp-1) ≤ r+m⁺ < s·10^dp (with inclusivity).
	sum := new(big.Int)
	dp = 0
	for {
		sum.Add(r, mPlus)
		if moreThan(sum, s) {
			s.Mul(s, ten)
			dp++
		} else {
			sum.Mul(sum, ten)
			if moreThan(sum, s) {
				break
			}
			r.Mul(r, ten)
			mPlus.Mul(mPlus, ten)
			mMinus.Mul(mMinus, ten)
			dp--
		}
	}

	// Generate digits until the value so far uniquely identifies mant.
	q := new(big.Int)
	for {
		r.Mul(r, ten)
		mPlus.Mul(mPlus, ten)
		mMinus.Mul(mMinus, ten)
		q.QuoRem(r, s, r)
		d := byte(q.Int64())

		low := func() bool {
			if inclusive {
				return r.Cmp(mMinus) <= 0
			}
			return r.Cmp(mMinus) < 0
		}()
		high := func() bool {
			sum.Add(r, mPlus)
			return moreThan(sum, s)
		}()

		switch {
		case !low && !high:
			digits = append(digits, '0'+d)
		case low && !high:
			digits = append(digits, '0'+d)
			return digits, dp
		case high && !low:
			digits = append(digits, '0'+d+1)
			return digits, dp
		default:
			// Both ends reachable: round to the nearer candidate,
			// breaking exact ties to the even digit (matching
			// strconv's decimal rounding).
			r.Lsh(r, 1)
			switch cmp := r.Cmp(s); {
			case cmp > 0:
				d++
			case cmp == 0 && d%2 == 1:
				d++
			}
			digits = append(digits, '0'+d)
			return digits, dp
		}
	}
}

var ten = big.NewInt(10)

// formatG renders digits/dp in Go's shortest %G style: fixed notation
// when −4 ≤ dp−1 < 6 (the shortest-mode threshold Go uses for %g),
// exponent notation otherwise, with an upper-case E and a two-digit
// minimum exponent.
func formatG(dst []byte, digits []byte, dp int) []byte {
	exp := dp - 1
	if exp < -4 || exp >= 6 {
		// d.dddE±XX
		dst = append(dst, digits[0])
		if len(digits) > 1 {
			dst = append(dst, '.')
			dst = append(dst, digits[1:]...)
		}
		dst = append(dst, 'E')
		if exp >= 0 {
			dst = append(dst, '+')
		} else {
			dst = append(dst, '-')
			exp = -exp
		}
		if exp < 10 {
			dst = append(dst, '0', byte('0'+exp))
			return dst
		}
		var tmp [4]byte
		i := len(tmp)
		for exp > 0 {
			i--
			tmp[i] = byte('0' + exp%10)
			exp /= 10
		}
		return append(dst, tmp[i:]...)
	}

	switch {
	case dp <= 0:
		// 0.000ddd
		dst = append(dst, '0', '.')
		for i := 0; i < -dp; i++ {
			dst = append(dst, '0')
		}
		dst = append(dst, digits...)
	case dp >= len(digits):
		// ddd000
		dst = append(dst, digits...)
		for i := len(digits); i < dp; i++ {
			dst = append(dst, '0')
		}
	default:
		// dd.ddd
		dst = append(dst, digits[:dp]...)
		dst = append(dst, '.')
		dst = append(dst, digits[dp:]...)
	}
	return dst
}
