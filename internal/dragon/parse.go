package dragon

import (
	"fmt"
	"math"
	"math/big"
	"strings"
)

// Parse converts a decimal string to the nearest IEEE 754 binary64,
// correctly rounded (round-to-nearest, ties-to-even), using exact
// big-integer arithmetic — the decode-side counterpart of
// AppendShortest, and like it independent of strconv.
//
// The accepted grammar matches the XSD double lexical space handled by
// xsdlex: optional sign, decimal digits with an optional point, an
// optional e/E exponent, and the special names INF, +INF, -INF, NaN.
func Parse(s string) (float64, error) {
	switch s {
	case "INF", "+INF", "Inf", "+Inf":
		return math.Inf(1), nil
	case "-INF", "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}

	rest := s
	neg := false
	if len(rest) > 0 && (rest[0] == '+' || rest[0] == '-') {
		neg = rest[0] == '-'
		rest = rest[1:]
	}

	// Split mantissa digits and decimal exponent.
	var digits strings.Builder
	exp10 := 0
	sawDigit := false
	sawPoint := false
	i := 0
	for ; i < len(rest); i++ {
		c := rest[i]
		switch {
		case c >= '0' && c <= '9':
			sawDigit = true
			digits.WriteByte(c)
			if sawPoint {
				exp10--
			}
		case c == '.':
			if sawPoint {
				return 0, fmt.Errorf("dragon: two decimal points in %q", s)
			}
			sawPoint = true
		default:
			goto expPart
		}
	}
expPart:
	if i < len(rest) {
		if rest[i] != 'e' && rest[i] != 'E' {
			return 0, fmt.Errorf("dragon: invalid character %q in %q", rest[i], s)
		}
		i++
		eneg := false
		if i < len(rest) && (rest[i] == '+' || rest[i] == '-') {
			eneg = rest[i] == '-'
			i++
		}
		if i >= len(rest) {
			return 0, fmt.Errorf("dragon: empty exponent in %q", s)
		}
		e := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("dragon: invalid exponent in %q", s)
			}
			if e < 1<<30 { // saturate; |e| beyond this is ±Inf/0 anyway
				e = e*10 + int(c-'0')
			}
		}
		if eneg {
			e = -e
		}
		exp10 += e
	}
	if !sawDigit {
		return 0, fmt.Errorf("dragon: no digits in %q", s)
	}

	d, ok := new(big.Int).SetString(digits.String(), 10)
	if !ok {
		return 0, fmt.Errorf("dragon: internal digit parse of %q", s)
	}
	v := roundDecimal(d, exp10)
	if neg {
		v = -v
	}
	if math.IsInf(v, 0) {
		// Mirror strconv: overflow yields ±Inf together with a range
		// error.
		return v, fmt.Errorf("dragon: %q out of range", s)
	}
	return v, nil
}

// roundDecimal returns the binary64 nearest to d × 10^exp10 (d ≥ 0).
func roundDecimal(d *big.Int, exp10 int) float64 {
	if d.Sign() == 0 {
		return 0
	}
	// Clamp absurd exponents cheaply: the value is certainly 0 or +Inf.
	if exp10 > 400 {
		return math.Inf(1)
	}
	if exp10 < -400-len(d.Text(10)) {
		return 0
	}

	// value = num / den exactly.
	num := new(big.Int).Set(d)
	den := big.NewInt(1)
	if exp10 > 0 {
		num.Mul(num, new(big.Int).Exp(ten, big.NewInt(int64(exp10)), nil))
	} else if exp10 < 0 {
		den.Exp(ten, big.NewInt(int64(-exp10)), nil)
	}

	// Normalize so that 2^52 ≤ num/den < 2^53; e2 tracks the binary
	// exponent of the units place.
	e2 := 0
	if shift := num.BitLen() - den.BitLen() - 54; shift > 0 {
		den.Lsh(den, uint(shift))
		e2 += shift
	} else if shift < 0 {
		num.Lsh(num, uint(-shift))
		e2 += shift
	}
	two53 := new(big.Int).Lsh(big.NewInt(1), 53)
	two52 := new(big.Int).Lsh(big.NewInt(1), 52)
	q := new(big.Int)
	for q.Quo(num, den); q.Cmp(two53) >= 0; q.Quo(num, den) {
		den.Lsh(den, 1)
		e2++
	}
	for ; q.Cmp(two52) < 0; q.Quo(num, den) {
		num.Lsh(num, 1)
		e2--
	}

	// Denormal range: the quotient must be taken at the fixed binary
	// exponent −1074 with fewer mantissa bits, so the single rounding
	// below happens at the right position (no double rounding).
	if e2 < -1074 {
		den.Lsh(den, uint(-1074-e2))
		e2 = -1074
	}

	r := new(big.Int)
	q.QuoRem(num, den, r)
	// Round half to even.
	r.Lsh(r, 1)
	switch cmp := r.Cmp(den); {
	case cmp > 0:
		q.Add(q, one)
	case cmp == 0 && q.Bit(0) == 1:
		q.Add(q, one)
	}
	if q.Cmp(two53) >= 0 { // rounding overflowed the mantissa
		q.Rsh(q, 1)
		e2++
	}
	if q.Sign() == 0 {
		return 0
	}

	// Assemble: value = q × 2^e2 with q < 2^53 exactly representable;
	// Ldexp saturates overflow to ±Inf per IEEE.
	return math.Ldexp(float64(q.Uint64()), e2)
}

var one = big.NewInt(1)
