package dragon

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// ref is the oracle: Go's strconv shortest %G formatting.
func ref(v float64) string {
	return strconv.FormatFloat(v, 'G', -1, 64)
}

func check(t *testing.T, v float64) {
	t.Helper()
	got := string(AppendShortest(nil, v))
	want := ref(v)
	if got != want {
		t.Fatalf("AppendShortest(%b / %x) = %q, want %q",
			v, math.Float64bits(v), got, want)
	}
}

func TestSpecialValues(t *testing.T) {
	for _, v := range []float64{
		0, math.Copysign(0, -1),
		math.Inf(1), math.Inf(-1), math.NaN(),
		1, -1, 10, 100, 0.1, 0.5, 2.5, -2.5,
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.Pi, math.E, math.Sqrt2,
		5e-324, 2.2250738585072014e-308, // smallest denormal & normal
		1.7976931348623157e308,
		123456, 1234567, // around the %f / %E threshold
		1e-4, 1e-5, 9.999e5, 1e6,
		1e21, 1e20, 1e22,
	} {
		check(t, v)
	}
}

func TestPowersOfTwo(t *testing.T) {
	for e := -1074; e <= 1023; e++ {
		check(t, math.Ldexp(1, e))
	}
}

func TestPowersOfTen(t *testing.T) {
	for e := -308; e <= 308; e++ {
		check(t, math.Pow(10, float64(e)))
	}
}

func TestMantissaBoundaries(t *testing.T) {
	// Values just above/below powers of two exercise the unequal-gap
	// boundary logic.
	for e := -1000; e <= 1000; e += 7 {
		v := math.Ldexp(1, e)
		check(t, math.Nextafter(v, math.Inf(1)))
		check(t, math.Nextafter(v, math.Inf(-1)))
	}
}

func TestSmallIntegers(t *testing.T) {
	for i := -2000; i <= 2000; i++ {
		check(t, float64(i))
	}
}

func TestRandomBitPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		v := math.Float64frombits(rng.Uint64())
		check(t, v)
	}
}

func TestRandomDenormals(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		bits := rng.Uint64() & (1<<52 - 1) // biased exponent 0
		if bits == 0 {
			continue
		}
		check(t, math.Float64frombits(bits))
		check(t, math.Float64frombits(bits|1<<63))
	}
}

func TestQuickEquality(t *testing.T) {
	f := func(v float64) bool {
		return string(AppendShortest(nil, v)) == ref(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripsThroughParse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		v := math.Float64frombits(rng.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		got, err := strconv.ParseFloat(string(AppendShortest(nil, v)), 64)
		if err != nil || got != v {
			t.Fatalf("round trip of %x failed: %v, %v", math.Float64bits(v), got, err)
		}
	}
}

func TestShortness(t *testing.T) {
	// The output must never be longer than strconv's shortest form —
	// equality tests imply this, but assert the 24-char bound directly.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		v := math.Float64frombits(rng.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if n := len(AppendShortest(nil, v)); n > 24 {
			t.Fatalf("%x encodes in %d chars", math.Float64bits(v), n)
		}
	}
}

func BenchmarkDragonShortest(b *testing.B) {
	var buf [32]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AppendShortest(buf[:0], 3.141592653589793)
	}
}

func BenchmarkStrconvShortest(b *testing.B) {
	var buf [32]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		strconv.AppendFloat(buf[:0], 3.141592653589793, 'G', -1, 64)
	}
}
