package replica

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// testEntry is an Entry with an owner-maintained atomic size and a
// double-release detector.
type testEntry struct {
	size     atomic.Int64
	released atomic.Int32
}

func (e *testEntry) SizeBytes() int { return int(e.size.Load()) }
func (e *testEntry) ReleaseArenas() {
	if e.released.Add(1) != 1 {
		panic("testEntry released twice")
	}
}

type evictRec struct {
	key    Key
	reason Reason
	bytes  int64
}

type evictLog struct {
	mu   sync.Mutex
	recs []evictRec
}

func (l *evictLog) hook(key Key, reason Reason, bytes int64) {
	l.mu.Lock()
	l.recs = append(l.recs, evictRec{key, reason, bytes})
	l.mu.Unlock()
}

func (l *evictLog) byReason(r Reason) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, rec := range l.recs {
		if rec.reason == r {
			n++
		}
	}
	return n
}

func newTestRegistry(opts RegistryOptions[*testEntry]) *Registry[*testEntry] {
	if opts.New == nil {
		opts.New = func(Key) *testEntry { return &testEntry{} }
	}
	return NewRegistry(opts)
}

// checkout acquires, sets the size, releases.
func checkout(r *Registry[*testEntry], key Key, size int64) *Slot[*testEntry] {
	s, _ := r.Acquire(key)
	s.Value.size.Store(size)
	r.Release(s)
	return s
}

func TestAcquireReleaseAccounting(t *testing.T) {
	r := newTestRegistry(RegistryOptions[*testEntry]{Shards: 2})
	s, created := r.Acquire(Key{Group: "op", Sub: "sig"})
	if !created {
		t.Fatal("first Acquire did not create")
	}
	s2, created := r.Acquire(Key{Group: "op", Sub: "sig"})
	if created || s2 != s {
		t.Fatal("second Acquire did not find the entry")
	}
	s.Value.size.Store(100)
	r.Release(s)
	r.Release(s2)
	if got := r.Bytes(); got != 100 {
		t.Fatalf("Bytes = %d, want 100", got)
	}
	c := r.Counters()
	if c.Entries != 1 || c.HighWater != 100 || c.Pending != 0 {
		t.Fatalf("counters = %+v", c)
	}
	// Shrink re-accounts downward but high water stays.
	s3, _ := r.Acquire(Key{Group: "op", Sub: "sig"})
	s3.Value.size.Store(40)
	r.Release(s3)
	c = r.Counters()
	if c.Bytes != 40 || c.HighWater != 100 {
		t.Fatalf("after shrink: %+v", c)
	}
}

func TestPerGroupCountCap(t *testing.T) {
	var log evictLog
	r := newTestRegistry(RegistryOptions[*testEntry]{
		Shards: 1, MaxPerGroup: 2, OnEvict: log.hook,
	})
	a := checkout(r, Key{Group: "op", Sub: "a"}, 10)
	checkout(r, Key{Group: "op", Sub: "b"}, 10)
	checkout(r, Key{Group: "other", Sub: "x"}, 10)
	// Touch a so b is the op-group tail.
	checkout(r, Key{Group: "op", Sub: "a"}, 10)
	checkout(r, Key{Group: "op", Sub: "c"}, 10)
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if n := log.byReason(ReasonLRU); n != 1 {
		t.Fatalf("LRU evictions = %d, want 1", n)
	}
	log.mu.Lock()
	victim := log.recs[0].key
	log.mu.Unlock()
	if victim != (Key{Group: "op", Sub: "b"}) {
		t.Fatalf("evicted %v, want op/b (group tail)", victim)
	}
	// The other group was untouched; a was kept (touched).
	if s, created := r.Acquire(Key{Group: "op", Sub: "a"}); created {
		t.Fatal("a was evicted")
	} else if s != a {
		t.Fatal("a's slot changed identity")
	} else {
		r.Release(s)
	}
	if c := r.Counters(); c.EvictionsLRU != 1 || c.EvictionsBudget != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestPerShardCountCap(t *testing.T) {
	r := newTestRegistry(RegistryOptions[*testEntry]{Shards: 1, MaxEntries: 3})
	var entries []*testEntry
	for i := 0; i < 5; i++ {
		s, _ := r.Acquire(Key{Conn: uint64(i + 1)})
		entries = append(entries, s.Value)
		r.Release(s)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	// The two oldest were evicted and, being idle, released immediately.
	if entries[0].released.Load() != 1 || entries[1].released.Load() != 1 {
		t.Fatal("evicted idle entries were not released")
	}
	if entries[4].released.Load() != 0 {
		t.Fatal("resident entry was released")
	}
}

func TestBudgetEvictsIdleColdestFirst(t *testing.T) {
	var log evictLog
	r := newTestRegistry(RegistryOptions[*testEntry]{
		Shards: 1, MaxBytes: 250, MinBytesPerGroup: 1, OnEvict: log.hook,
	})
	checkout(r, Key{Group: "a", Sub: "1"}, 100)
	checkout(r, Key{Group: "b", Sub: "1"}, 100)
	if r.Bytes() != 200 {
		t.Fatalf("Bytes = %d", r.Bytes())
	}
	// Third entry pushes past 250: the coldest (a/1) must go.
	checkout(r, Key{Group: "c", Sub: "1"}, 100)
	if got := r.Bytes(); got != 200 {
		t.Fatalf("Bytes after budget eviction = %d, want 200", got)
	}
	if n := log.byReason(ReasonBudget); n != 1 {
		t.Fatalf("budget evictions = %d, want 1", n)
	}
	log.mu.Lock()
	victim := log.recs[0]
	log.mu.Unlock()
	if victim.key != (Key{Group: "a", Sub: "1"}) || victim.bytes != 100 {
		t.Fatalf("victim = %+v, want a/1 @100", victim)
	}
	if c := r.Counters(); c.HighWater > 250 {
		t.Fatalf("high water %d exceeded budget 250", c.HighWater)
	}
}

func TestBudgetFairnessFloorSkipsSmallGroups(t *testing.T) {
	var log evictLog
	r := newTestRegistry(RegistryOptions[*testEntry]{
		Shards: 1, MaxBytes: 400, MinBytesPerGroup: 50, OnEvict: log.hook,
	})
	// small group sits at the LRU tail but under the floor; big is above.
	checkout(r, Key{Group: "small", Sub: "1"}, 40)
	checkout(r, Key{Group: "big", Sub: "1"}, 150)
	checkout(r, Key{Group: "big", Sub: "2"}, 150)
	// +100 would hit 440 > 400: tier-0 must skip small (40 <= floor 50)
	// and evict big/1 even though small is colder.
	checkout(r, Key{Group: "other", Sub: "1"}, 100)
	log.mu.Lock()
	victim := log.recs[0].key
	log.mu.Unlock()
	if victim != (Key{Group: "big", Sub: "1"}) {
		t.Fatalf("victim = %v, want big/1 (small group is floor-protected)", victim)
	}
	if _, created := r.Acquire(Key{Group: "small", Sub: "1"}); created {
		t.Fatal("floor-protected entry was evicted")
	}
}

func TestBudgetCondemnsInFlightAsLastResort(t *testing.T) {
	var log evictLog
	r := newTestRegistry(RegistryOptions[*testEntry]{
		Shards: 1, MaxBytes: 100, MinBytesPerGroup: 1, OnEvict: log.hook,
	})
	// Pin the only entry in flight while it grows past the budget, then
	// admit a second entry: tier 2 must condemn the pinned one.
	pinned, _ := r.Acquire(Key{Group: "op", Sub: "pin"})
	pinned.Value.size.Store(90)
	r.Release(pinned)
	again, _ := r.Acquire(Key{Group: "op", Sub: "pin"}) // hold in flight
	checkout(r, Key{Group: "op", Sub: "new"}, 90)
	if n := log.byReason(ReasonBudget); n != 1 {
		t.Fatalf("budget evictions = %d, want 1 (condemned in-flight)", n)
	}
	if pinned.Value.released.Load() != 0 {
		t.Fatal("in-flight entry's arenas were released while pinned")
	}
	c := r.Counters()
	if c.Pending != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending)
	}
	if c.Bytes > 100 {
		t.Fatalf("bytes gauge %d exceeds budget 100", c.Bytes)
	}
	// A fresh Acquire of the condemned key builds a new entry.
	fresh, created := r.Acquire(Key{Group: "op", Sub: "pin"})
	if !created {
		t.Fatal("condemned key still resident")
	}
	r.Release(fresh)
	// Last Release of the condemned slot frees the arenas.
	r.Release(again)
	if pinned.Value.released.Load() != 1 {
		t.Fatal("final Release did not free the condemned entry")
	}
	if c := r.Counters(); c.Pending != 0 {
		t.Fatalf("pending = %d after final release", c.Pending)
	}
}

func TestOversizedEntryAdmittedOverBudget(t *testing.T) {
	r := newTestRegistry(RegistryOptions[*testEntry]{Shards: 1, MaxBytes: 100})
	checkout(r, Key{Group: "op", Sub: "huge"}, 500)
	if r.Len() != 1 {
		t.Fatal("oversized entry was not admitted")
	}
	if r.Bytes() != 500 {
		t.Fatalf("Bytes = %d, want 500 (documented oversize exception)", r.Bytes())
	}
}

func TestEachAndDump(t *testing.T) {
	r := newTestRegistry(RegistryOptions[*testEntry]{Shards: 4, MaxBytes: 1 << 20})
	checkout(r, Key{Group: "mul", Sub: "s1"}, 10)
	checkout(r, Key{Group: "add", Sub: "s1"}, 20)
	checkout(r, Key{Conn: 7}, 30)
	seen := 0
	r.Each(func(key Key, e *testEntry) {
		seen++
		if e == nil {
			t.Fatalf("nil entry for %v", key)
		}
	})
	if seen != 3 {
		t.Fatalf("Each visited %d, want 3", seen)
	}
	d := r.Dump("client", func(e *testEntry, row *DebugEntry) {
		row.Replicas = 2
	})
	if d.Side != "client" || d.Entries != 3 || d.BudgetBytes != 1<<20 {
		t.Fatalf("dump header = %+v", d)
	}
	if d.Bytes != 60 {
		t.Fatalf("dump bytes = %d, want 60", d.Bytes)
	}
	// Sorted: empty-op conn row first, then add, then mul.
	if d.Templates[0].Affinity != "conn:7" || d.Templates[1].Op != "add" || d.Templates[2].Op != "mul" {
		t.Fatalf("dump order: %+v", d.Templates)
	}
	for _, row := range d.Templates {
		if row.Replicas != 2 {
			t.Fatalf("fill not applied: %+v", row)
		}
		if row.LastUseNS == 0 {
			t.Fatalf("missing last-use: %+v", row)
		}
	}
	if d.Templates[1].Signature != "s1" || d.Templates[1].Bytes != 20 {
		t.Fatalf("add row = %+v", d.Templates[1])
	}
}

func TestKeyStringAndReason(t *testing.T) {
	cases := []struct {
		key  Key
		want string
	}{
		{Key{Group: "mul", Sub: "sig"}, "op:mul"},
		{Key{Sub: "10.0.0.1"}, "host:10.0.0.1"},
		{Key{Conn: 17}, "conn:17"},
	}
	for _, c := range cases {
		if got := c.key.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.key, got, c.want)
		}
	}
	if ReasonLRU.String() != "lru" || ReasonBudget.String() != "budget" {
		t.Fatal("reason labels changed; metrics depend on them")
	}
}

func TestRegistryRequiresNew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRegistry without New did not panic")
		}
	}()
	NewRegistry(RegistryOptions[*testEntry]{})
}

// TestConcurrentChurnUnderBudget hammers a small-budget registry from
// many goroutines and checks the invariants the production runtimes
// rely on: the bytes gauge never exceeds the budget, no entry is
// released twice or while in flight, and after quiescing nothing is
// left pending.
func TestConcurrentChurnUnderBudget(t *testing.T) {
	const budget = 1000
	var log evictLog
	r := newTestRegistry(RegistryOptions[*testEntry]{
		Shards: 4, MaxBytes: budget, MinBytesPerGroup: 1, OnEvict: log.hook,
	})
	var over atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := Key{Group: fmt.Sprintf("op%d", i%5), Sub: fmt.Sprintf("s%d", (g+i)%7)}
				s, _ := r.Acquire(key)
				if s.Value.released.Load() != 0 {
					panic("acquired a released entry")
				}
				s.Value.size.Store(int64(50 + (i%3)*25))
				r.Release(s)
				if b := r.Bytes(); b > budget {
					over.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if over.Load() != 0 {
		t.Fatalf("bytes gauge exceeded budget %d times", over.Load())
	}
	c := r.Counters()
	if c.Bytes > budget {
		t.Fatalf("final bytes %d > budget", c.Bytes)
	}
	if c.Pending != 0 {
		t.Fatalf("pending = %d after quiesce", c.Pending)
	}
	if c.EvictionsBudget == 0 {
		t.Fatal("no budget evictions under sustained pressure")
	}
	// Every evicted entry must have been released exactly once — the
	// double-release panic in testEntry guards the "exactly", this
	// guards the "once happened at all".
	log.mu.Lock()
	evictions := len(log.recs)
	log.mu.Unlock()
	if evictions == 0 {
		t.Fatal("no evictions recorded by hook")
	}
}
