package replica

// DefaultTrackerCap bounds a Tracker's map before it resets wholesale.
// The value matches the historical caps that pool/store.go and the
// serverpool handler table each hand-rolled before they were unified
// here: large enough that a steady working set never resets, small
// enough that a pathological workload cycling through fresh identities
// (new message structs every call, one-shot connections) cannot grow
// the map without bound.
const DefaultTrackerCap = 1024

// Tracker is the one bounded last-served affinity map: the client pool
// keys it by message pointer to remember which engine last served a
// message (a change of engine means the template no longer matches the
// message's dirty bits and every region must be re-serialized), the
// server side bounds per-replica key tables with it. When the map hits
// its cap it is reset wholesale — affinity is a hint, and forgetting it
// costs one degraded call per entry, which is far cheaper than an
// unbounded map. Not safe for concurrent use; callers hold the
// enclosing entry lock.
type Tracker[K comparable, V any] struct {
	m      map[K]V
	cap    int
	resets int64
}

// NewTracker returns a tracker bounded at capacity (DefaultTrackerCap
// if capacity <= 0).
func NewTracker[K comparable, V any](capacity int) *Tracker[K, V] {
	if capacity <= 0 {
		capacity = DefaultTrackerCap
	}
	return &Tracker[K, V]{m: make(map[K]V), cap: capacity}
}

// Lookup returns the tracked value for key.
func (t *Tracker[K, V]) Lookup(key K) (V, bool) {
	v, ok := t.m[key]
	return v, ok
}

// Note records key → value, resetting the map first if it is at
// capacity and key would grow it.
func (t *Tracker[K, V]) Note(key K, value V) {
	if len(t.m) >= t.cap {
		if _, ok := t.m[key]; !ok {
			t.m = make(map[K]V)
			t.resets++
		}
	}
	t.m[key] = value
}

// Forget removes key.
func (t *Tracker[K, V]) Forget(key K) { delete(t.m, key) }

// Len reports the number of tracked keys.
func (t *Tracker[K, V]) Len() int { return len(t.m) }

// Resets reports how many times the map has been reset at capacity.
func (t *Tracker[K, V]) Resets() int64 { return t.resets }
