package replica

import "testing"

// TestTrackerCapReset is the single regression test replacing the two
// hand-rolled 1024-entry reset copies that used to live in pool/store.go
// and the serverpool handler table: at capacity the map resets wholesale
// rather than growing without bound, and re-noting an existing key never
// triggers a reset.
func TestTrackerCapReset(t *testing.T) {
	tr := NewTracker[int, string](4)
	for i := 0; i < 4; i++ {
		tr.Note(i, "v")
	}
	if tr.Len() != 4 || tr.Resets() != 0 {
		t.Fatalf("len=%d resets=%d, want 4,0", tr.Len(), tr.Resets())
	}
	// Existing key at capacity: overwrite in place, no reset.
	tr.Note(2, "w")
	if tr.Len() != 4 || tr.Resets() != 0 {
		t.Fatalf("after overwrite: len=%d resets=%d, want 4,0", tr.Len(), tr.Resets())
	}
	if v, ok := tr.Lookup(2); !ok || v != "w" {
		t.Fatalf("Lookup(2) = %q,%v", v, ok)
	}
	// New key at capacity: wholesale reset, then the new key alone.
	tr.Note(99, "x")
	if tr.Len() != 1 || tr.Resets() != 1 {
		t.Fatalf("after reset: len=%d resets=%d, want 1,1", tr.Len(), tr.Resets())
	}
	if _, ok := tr.Lookup(0); ok {
		t.Fatal("old key survived the reset")
	}
	if v, ok := tr.Lookup(99); !ok || v != "x" {
		t.Fatalf("Lookup(99) = %q,%v", v, ok)
	}
	tr.Forget(99)
	if tr.Len() != 0 {
		t.Fatalf("len after Forget = %d", tr.Len())
	}
}

func TestTrackerDefaultCap(t *testing.T) {
	tr := NewTracker[int, int](0)
	for i := 0; i < DefaultTrackerCap; i++ {
		tr.Note(i, i)
	}
	if tr.Len() != DefaultTrackerCap || tr.Resets() != 0 {
		t.Fatalf("len=%d resets=%d before overflow", tr.Len(), tr.Resets())
	}
	tr.Note(DefaultTrackerCap, 0)
	if tr.Len() != 1 || tr.Resets() != 1 {
		t.Fatalf("len=%d resets=%d after overflow, want 1,1", tr.Len(), tr.Resets())
	}
}
