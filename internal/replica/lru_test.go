package replica

import "testing"

func TestLRUOrderAndTouch(t *testing.T) {
	l := NewLRU[string, int]()
	l.PushFront("a", 1)
	l.PushFront("b", 2)
	l.PushFront("c", 3)
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if k, _ := l.Tail(); k != "a" {
		t.Fatalf("tail = %q, want a", k)
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if k, _ := l.Tail(); k != "b" {
		t.Fatalf("tail after touch = %q, want b", k)
	}
	if v, ok := l.Peek("b"); !ok || v != 2 {
		t.Fatalf("Peek(b) = %d,%v", v, ok)
	}
	if k, _ := l.Tail(); k != "b" {
		t.Fatalf("Peek must not touch; tail = %q", k)
	}
	l.Touch("b")
	if k, _ := l.Tail(); k != "c" {
		t.Fatalf("tail after Touch(b) = %q, want c", k)
	}
}

func TestLRURemoveAndWalks(t *testing.T) {
	l := NewLRU[string, int]()
	for i, k := range []string{"a", "b", "c", "d"} {
		l.PushFront(k, i)
	}
	if _, ok := l.Remove("c"); !ok {
		t.Fatal("Remove(c) missed")
	}
	if _, ok := l.Remove("c"); ok {
		t.Fatal("Remove(c) twice should miss")
	}
	var fromTail, fromFront []string
	l.FromTail(func(k string, _ int) bool { fromTail = append(fromTail, k); return true })
	l.FromFront(func(k string, _ int) bool { fromFront = append(fromFront, k); return true })
	if got := join(fromTail); got != "a,b,d" {
		t.Fatalf("FromTail = %s", got)
	}
	if got := join(fromFront); got != "d,b,a" {
		t.Fatalf("FromFront = %s", got)
	}
	// Early-exit walks.
	n := 0
	l.FromTail(func(string, int) bool { n++; return false })
	l.FromFront(func(string, int) bool { n++; return false })
	if n != 2 {
		t.Fatalf("early-exit walks visited %d entries, want 2", n)
	}
	// Drain through RemoveTail.
	var drained []string
	for {
		k, _, ok := l.RemoveTail()
		if !ok {
			break
		}
		drained = append(drained, k)
	}
	if got := join(drained); got != "a,b,d" {
		t.Fatalf("drain order = %s", got)
	}
	if l.Len() != 0 {
		t.Fatalf("Len after drain = %d", l.Len())
	}
	if _, ok := l.Tail(); ok {
		t.Fatal("Tail on empty list reported ok")
	}
	if _, _, ok := l.RemoveTail(); ok {
		t.Fatal("RemoveTail on empty list reported ok")
	}
	if _, ok := l.Get("a"); ok {
		t.Fatal("Get on empty list reported ok")
	}
}

func TestLRUPushFrontUpdatesExisting(t *testing.T) {
	l := NewLRU[string, int]()
	l.PushFront("a", 1)
	l.PushFront("b", 2)
	l.PushFront("a", 10)
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if v, _ := l.Peek("a"); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
	if k, _ := l.Tail(); k != "b" {
		t.Fatalf("tail = %q, want b", k)
	}
}

func TestLRUGetDoesNotAllocate(t *testing.T) {
	l := NewLRU[int, int]()
	for i := 0; i < 64; i++ {
		l.PushFront(i, i)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		l.Get(13)
		l.Touch(57)
		l.Peek(2)
		l.Tail()
	})
	if allocs != 0 {
		t.Fatalf("warm-path LRU ops allocate: %v allocs/op", allocs)
	}
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
