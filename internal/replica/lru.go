package replica

// LRU is the one recency list in the tree: a map-indexed intrusive
// doubly-linked list with O(1) touch, lookup, insert and tail removal.
// Touching or reading never allocates — nodes are allocated only on
// insert, which keeps the client pool's steady state at zero allocs per
// call. Not safe for concurrent use; callers hold their own shard or
// entry lock.
type LRU[K comparable, V any] struct {
	index      map[K]*node[K, V]
	head, tail *node[K, V]
}

type node[K comparable, V any] struct {
	key        K
	value      V
	prev, next *node[K, V]
}

// NewLRU returns an empty list.
func NewLRU[K comparable, V any]() *LRU[K, V] {
	return &LRU[K, V]{index: make(map[K]*node[K, V])}
}

// Len reports the number of entries.
func (l *LRU[K, V]) Len() int { return len(l.index) }

// Get returns the value for key and marks it most recently used.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	n, ok := l.index[key]
	if !ok {
		var zero V
		return zero, false
	}
	l.moveToFront(n)
	return n.value, true
}

// Peek returns the value for key without touching recency.
func (l *LRU[K, V]) Peek(key K) (V, bool) {
	n, ok := l.index[key]
	if !ok {
		var zero V
		return zero, false
	}
	return n.value, true
}

// Touch marks key most recently used if present.
func (l *LRU[K, V]) Touch(key K) {
	if n, ok := l.index[key]; ok {
		l.moveToFront(n)
	}
}

// PushFront inserts key at the front, or updates and touches it if
// already present.
func (l *LRU[K, V]) PushFront(key K, value V) {
	if n, ok := l.index[key]; ok {
		n.value = value
		l.moveToFront(n)
		return
	}
	n := &node[K, V]{key: key, value: value}
	l.index[key] = n
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

// Remove deletes key, reporting whether it was present.
func (l *LRU[K, V]) Remove(key K) (V, bool) {
	n, ok := l.index[key]
	if !ok {
		var zero V
		return zero, false
	}
	l.unlink(n)
	delete(l.index, key)
	return n.value, true
}

// Tail returns the least recently used key without removing it.
func (l *LRU[K, V]) Tail() (K, bool) {
	if l.tail == nil {
		var zero K
		return zero, false
	}
	return l.tail.key, true
}

// RemoveTail evicts and returns the least recently used entry.
func (l *LRU[K, V]) RemoveTail() (K, V, bool) {
	n := l.tail
	if n == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	l.unlink(n)
	delete(l.index, n.key)
	return n.key, n.value, true
}

// FromTail visits entries least-recently-used first until yield returns
// false. The list must not be mutated during the walk.
func (l *LRU[K, V]) FromTail(yield func(key K, value V) bool) {
	for n := l.tail; n != nil; n = n.prev {
		if !yield(n.key, n.value) {
			return
		}
	}
}

// FromFront visits entries most-recently-used first until yield returns
// false. The list must not be mutated during the walk.
func (l *LRU[K, V]) FromFront(yield func(key K, value V) bool) {
	for n := l.head; n != nil; n = n.next {
		if !yield(n.key, n.value) {
			return
		}
	}
}

func (l *LRU[K, V]) moveToFront(n *node[K, V]) {
	if l.head == n {
		return
	}
	l.unlinkOnly(n)
	n.prev = nil
	n.next = l.head
	l.head.prev = n
	l.head = n
}

func (l *LRU[K, V]) unlink(n *node[K, V]) {
	l.unlinkOnly(n)
	n.prev, n.next = nil, nil
}

func (l *LRU[K, V]) unlinkOnly(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
}
