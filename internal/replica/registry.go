package replica

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RegistryOptions configures a Registry over entry type E.
type RegistryOptions[E Entry] struct {
	// Shards is the number of lock shards (rounded up to a power of
	// two, default 8). Keys are spread by Key.hash; all entries of a
	// Group land in one shard.
	Shards int
	// MaxEntries caps the total entry count; the cap is applied per
	// shard as max(1, MaxEntries/Shards). 0 means uncapped.
	MaxEntries int
	// MaxPerGroup caps the number of entries per Group (the historical
	// per-operation signature cap). 0 means uncapped.
	MaxPerGroup int
	// MaxBytes is the registry's memory budget: the sum of accounted
	// entry sizes is kept at or below it by evicting least-recently-
	// used entries. 0 means unbudgeted.
	MaxBytes int64
	// MinBytesPerGroup is the fairness floor: budget eviction skips
	// entries whose group's resident bytes are at or below the floor
	// while any group above its floor can pay instead. Defaults to
	// MaxBytes/64 when a budget is set.
	MinBytesPerGroup int64
	// New constructs the entry for a key on first Acquire. It is called
	// under the shard lock and must not call back into the registry.
	New func(Key) E
	// OnEvict observes every eviction (metrics, tracing). It is called
	// outside registry locks; bytes is the entry's accounted size at
	// condemnation time.
	OnEvict func(key Key, reason Reason, bytes int64)
}

// Slot is a registry entry plus its runtime state. Callers read Key and
// Value freely (Value's own synchronization is the owner's business);
// the remaining fields are guarded by the shard lock.
type Slot[E Entry] struct {
	Key   Key
	Value E

	refs    int32 // in-flight Acquires not yet Released
	bytes   int64 // accounted size
	evicted bool  // condemned: out of the maps, awaiting last Release
	lastUse int64 // unix nanos of the last Acquire
}

// Counters is a point-in-time snapshot of a registry's accounting.
type Counters struct {
	Entries         int
	Bytes           int64
	HighWater       int64
	Pending         int64 // condemned entries whose arenas are not yet released
	EvictionsLRU    int64
	EvictionsBudget int64
}

// Registry is the sharded, budget-bounded replica store.
type Registry[E Entry] struct {
	opts     RegistryOptions[E]
	shards   []rshard[E]
	mask     uint32
	perShard int

	bytes           atomic.Int64
	reserved        atomic.Int64
	highWater       atomic.Int64
	pending         atomic.Int64
	evictionsLRU    atomic.Int64
	evictionsBudget atomic.Int64
	cursor          atomic.Uint32
}

type rshard[E Entry] struct {
	mu      sync.Mutex
	entries *LRU[Key, *Slot[E]]
	groups  map[string]*groupStats
	_       [24]byte // soften false sharing between adjacent shard locks
}

type groupStats struct {
	count int
	bytes int64
}

// NewRegistry builds a registry. opts.New is required.
func NewRegistry[E Entry](opts RegistryOptions[E]) *Registry[E] {
	if opts.New == nil {
		panic("replica: RegistryOptions.New is required")
	}
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	shards := 1
	for shards < opts.Shards {
		shards <<= 1
	}
	if opts.MaxBytes > 0 && opts.MinBytesPerGroup == 0 {
		opts.MinBytesPerGroup = opts.MaxBytes / 64
	}
	r := &Registry[E]{
		opts:   opts,
		shards: make([]rshard[E], shards),
		mask:   uint32(shards - 1),
	}
	if opts.MaxEntries > 0 {
		r.perShard = opts.MaxEntries / shards
		if r.perShard < 1 {
			r.perShard = 1
		}
	}
	for i := range r.shards {
		r.shards[i].entries = NewLRU[Key, *Slot[E]]()
		r.shards[i].groups = make(map[string]*groupStats)
	}
	return r
}

func (r *Registry[E]) shardFor(key Key) *rshard[E] {
	return &r.shards[key.hash()&r.mask]
}

// Acquire returns the slot for key, creating it if absent, with the
// in-flight refcount incremented. Callers must pair every Acquire with
// exactly one Release. created reports whether the entry was built by
// this call.
func (r *Registry[E]) Acquire(key Key) (s *Slot[E], created bool) {
	sh := r.shardFor(key)
	now := time.Now().UnixNano()
	sh.mu.Lock()
	if s, ok := sh.entries.Get(key); ok {
		s.refs++
		s.lastUse = now
		sh.mu.Unlock()
		return s, false
	}
	s = &Slot[E]{Key: key, refs: 1, lastUse: now}
	s.Value = r.opts.New(key)

	// Count caps: condemn victims under the lock, finalize outside it.
	var victims []*Slot[E]
	if key.Group != "" && r.opts.MaxPerGroup > 0 {
		if g := sh.groups[key.Group]; g != nil && g.count >= r.opts.MaxPerGroup {
			if v := sh.tailOfGroup(key.Group); v != nil {
				r.condemnLocked(sh, v)
				victims = append(victims, v)
			}
		}
	}
	if r.perShard > 0 && sh.entries.Len() >= r.perShard {
		if _, v, ok := sh.entries.RemoveTail(); ok {
			r.condemnRemovedLocked(sh, v)
			victims = append(victims, v)
		}
	}

	sh.entries.PushFront(key, s)
	if key.Group != "" {
		g := sh.groups[key.Group]
		if g == nil {
			g = &groupStats{}
			sh.groups[key.Group] = g
		}
		g.count++
	}
	sh.mu.Unlock()

	for _, v := range victims {
		r.sweep(v, ReasonLRU)
	}
	return s, true
}

// Release drops one in-flight reference and re-accounts the entry's
// size. It is the registry's budget-enforcement point: growth is
// admitted reservation-first, evicting cold entries until the budget
// fits, so the exported bytes gauge never exceeds MaxBytes (except for
// a single entry larger than the whole budget, which is admitted
// regardless). If the slot was condemned while in flight, the last
// Release frees its arenas.
func (r *Registry[E]) Release(s *Slot[E]) {
	sh := r.shardFor(s.Key)
	sh.mu.Lock()
	if s.evicted {
		s.refs--
		free := s.refs == 0
		sh.mu.Unlock()
		if free {
			r.finalize(s)
		}
		return
	}
	size := int64(s.Value.SizeBytes())
	delta := size - s.bytes
	if delta <= 0 {
		r.commitLocked(sh, s, size)
		s.refs--
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()

	// Growth: reserve the delta, make room for budget + reservations,
	// then commit. Concurrent growers each reserve their own observed
	// delta; commits telescope to at most the sum of reservations, so
	// the gauge stays under budget.
	r.reserved.Add(delta)
	r.makeRoom(s)
	sh.mu.Lock()
	if s.evicted {
		r.reserved.Add(-delta)
		s.refs--
		free := s.refs == 0
		sh.mu.Unlock()
		if free {
			r.finalize(s)
		}
		return
	}
	size = int64(s.Value.SizeBytes())
	if !r.tryCommitGrowthLocked(sh, s, size) {
		// makeRoom gave up (nothing evictable was left, or racing
		// commits claimed the freed space first) and admitting this
		// growth would push the gauge past the budget. Condemn the
		// entry instead of overshooting: the caller's bytes are
		// already serialized, only the cached template is lost, and
		// the next call on this key degrades to a first-time send /
		// full parse.
		r.condemnLocked(sh, s)
		r.reserved.Add(-delta)
		s.refs--
		free := s.refs == 0
		sh.mu.Unlock()
		r.evictionsBudget.Add(1)
		if r.opts.OnEvict != nil {
			r.opts.OnEvict(s.Key, ReasonBudget, s.bytes)
		}
		if free {
			r.finalize(s)
		}
		return
	}
	// Un-reserve only after the commit: a delta must never be absent
	// from both counters at once, or a concurrent grower's makeRoom
	// would miss it, stop evicting early, and let this commit push the
	// gauge past the budget.
	r.reserved.Add(-delta)
	s.refs--
	sh.mu.Unlock()
}

// commitLocked re-accounts s at size. Caller holds the shard lock.
func (r *Registry[E]) commitLocked(sh *rshard[E], s *Slot[E], size int64) {
	delta := size - s.bytes
	if delta == 0 {
		return
	}
	nb := r.bytes.Add(delta)
	r.noteCommitLocked(sh, s, size, nb)
}

// tryCommitGrowthLocked is the admission gate that makes the bytes
// gauge's budget contract unconditional: growth lands on the gauge via
// a compare-and-swap that refuses to move it past MaxBytes while any
// other entry's bytes are resident. makeRoom is best-effort — it can
// give up with the budget still exceeded (every other slot condemned
// or uncommitted), and two growers in different shards can each pass a
// lock-protected check yet overshoot together — so the final add must
// carry the check atomically. The one admitted excess is a slot with
// no other resident bytes (cur == s.bytes): a single entry larger than
// the whole budget is cached rather than thrashed. Caller holds the
// shard lock. Returns false when the growth was refused.
func (r *Registry[E]) tryCommitGrowthLocked(sh *rshard[E], s *Slot[E], size int64) bool {
	delta := size - s.bytes
	if delta <= 0 {
		r.commitLocked(sh, s, size)
		return true
	}
	for {
		cur := r.bytes.Load()
		if r.opts.MaxBytes > 0 && cur+delta > r.opts.MaxBytes && cur > s.bytes {
			return false
		}
		if r.bytes.CompareAndSwap(cur, cur+delta) {
			r.noteCommitLocked(sh, s, size, cur+delta)
			return true
		}
	}
}

// noteCommitLocked finishes a commit whose gauge movement already
// happened: per-group bytes, the slot's accounted size, and the
// high-water mark. Caller holds the shard lock.
func (r *Registry[E]) noteCommitLocked(sh *rshard[E], s *Slot[E], size, nb int64) {
	if s.Key.Group != "" {
		if g := sh.groups[s.Key.Group]; g != nil {
			g.bytes += size - s.bytes
		}
	}
	s.bytes = size
	for {
		hw := r.highWater.Load()
		if nb <= hw || r.highWater.CompareAndSwap(hw, nb) {
			break
		}
	}
}

// makeRoom evicts until accounted bytes plus outstanding reservations
// fit the budget, or until nothing evictable remains. self — the slot
// whose growth is being admitted — is never its own victim: evicting
// the entry we are about to account would throw away the freshest
// template for nothing, and exempting it is what admits a single entry
// larger than the whole budget.
func (r *Registry[E]) makeRoom(self *Slot[E]) {
	if r.opts.MaxBytes <= 0 {
		return
	}
	// Read reserved before bytes: a concurrent committer moves its delta
	// reserved → bytes (in that order), so this read order can at worst
	// double-count an in-transition delta — an overestimate that evicts
	// a little extra, never an undercount that overshoots the budget.
	for r.reserved.Load()+r.bytes.Load() > r.opts.MaxBytes {
		if !r.evictOneForBudget(self) {
			return
		}
	}
}

// evictOneForBudget condemns one victim, relaxing its standards in
// three tiers: (0) idle entries from groups above the fairness floor,
// (1) any idle entry, (2) condemn an in-flight entry — its bytes leave
// the accounting now and its arenas are freed by the last Release.
// Shards are scanned round-robin from a moving cursor, one lock at a
// time; locks are never nested.
func (r *Registry[E]) evictOneForBudget(self *Slot[E]) bool {
	n := len(r.shards)
	for relax := 0; relax <= 2; relax++ {
		start := int(r.cursor.Add(1))
		for i := 0; i < n; i++ {
			sh := &r.shards[(start+i)%n]
			if v := r.tryEvictLocked(sh, relax, self); v != nil {
				r.sweep(v, ReasonBudget)
				return true
			}
		}
	}
	return false
}

// tryEvictLocked scans one shard's recency list from the tail for a
// victim admissible at the given relaxation tier and condemns it.
func (r *Registry[E]) tryEvictLocked(sh *rshard[E], relax int, self *Slot[E]) *Slot[E] {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var victim *Slot[E]
	sh.entries.FromTail(func(_ Key, s *Slot[E]) bool {
		if s == self {
			return true
		}
		if relax < 2 && s.refs > 0 {
			return true
		}
		if relax < 1 && s.Key.Group != "" && r.opts.MinBytesPerGroup > 0 {
			if g := sh.groups[s.Key.Group]; g != nil && g.bytes <= r.opts.MinBytesPerGroup {
				return true
			}
		}
		victim = s
		return false
	})
	if victim == nil {
		return nil
	}
	r.condemnLocked(sh, victim)
	return victim
}

// condemnLocked removes s from the shard maps and the accounting.
// Caller holds the shard lock.
func (r *Registry[E]) condemnLocked(sh *rshard[E], s *Slot[E]) {
	sh.entries.Remove(s.Key)
	r.condemnRemovedLocked(sh, s)
}

// condemnRemovedLocked is condemnLocked for a slot already unlinked
// from the recency list (RemoveTail).
func (r *Registry[E]) condemnRemovedLocked(sh *rshard[E], s *Slot[E]) {
	s.evicted = true
	r.bytes.Add(-s.bytes)
	r.pending.Add(1)
	if s.Key.Group != "" {
		if g := sh.groups[s.Key.Group]; g != nil {
			g.count--
			g.bytes -= s.bytes
			if g.count == 0 {
				delete(sh.groups, s.Key.Group)
			}
		}
	}
}

// sweep runs the outside-the-lock half of an eviction: the observer
// hook and, if no call holds the entry, the arena release. refs is read
// under the shard lock to decide who frees — either this sweep (refs
// already zero) or the final Release.
func (r *Registry[E]) sweep(s *Slot[E], reason Reason) {
	if reason == ReasonBudget {
		r.evictionsBudget.Add(1)
	} else {
		r.evictionsLRU.Add(1)
	}
	if r.opts.OnEvict != nil {
		r.opts.OnEvict(s.Key, reason, s.bytes)
	}
	sh := r.shardFor(s.Key)
	sh.mu.Lock()
	free := s.refs == 0
	sh.mu.Unlock()
	if free {
		r.finalize(s)
	}
}

// finalize frees a condemned slot's arenas, exactly once, outside
// registry locks.
func (r *Registry[E]) finalize(s *Slot[E]) {
	s.Value.ReleaseArenas()
	r.pending.Add(-1)
}

// tailOfGroup finds the least recently used entry of a group. Caller
// holds the shard lock.
func (sh *rshard[E]) tailOfGroup(group string) *Slot[E] {
	var victim *Slot[E]
	sh.entries.FromTail(func(_ Key, s *Slot[E]) bool {
		if s.Key.Group == group {
			victim = s
			return false
		}
		return true
	})
	return victim
}

// Len reports the number of resident entries.
func (r *Registry[E]) Len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += sh.entries.Len()
		sh.mu.Unlock()
	}
	return n
}

// MaxBytes reports the configured budget (0 = unbudgeted).
func (r *Registry[E]) MaxBytes() int64 { return r.opts.MaxBytes }

// Bytes reports the accounted resident size.
func (r *Registry[E]) Bytes() int64 { return r.bytes.Load() }

// Counters snapshots the registry's accounting.
func (r *Registry[E]) Counters() Counters {
	return Counters{
		Entries:         r.Len(),
		Bytes:           r.bytes.Load(),
		HighWater:       r.highWater.Load(),
		Pending:         r.pending.Load(),
		EvictionsLRU:    r.evictionsLRU.Load(),
		EvictionsBudget: r.evictionsBudget.Load(),
	}
}

// Each visits every resident entry. Values are snapshotted under the
// shard lock and visited outside it, so visit may take entry locks.
func (r *Registry[E]) Each(visit func(key Key, e E)) {
	var snap []*Slot[E]
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.entries.FromFront(func(_ Key, s *Slot[E]) bool {
			snap = append(snap, s)
			return true
		})
		sh.mu.Unlock()
	}
	for _, s := range snap {
		visit(s.Key, s.Value)
	}
}

// DebugEntry is one row of the uniform /debug/templates dump shared by
// the client and server registries.
type DebugEntry struct {
	Op        string `json:"op,omitempty"`
	Signature string `json:"sig,omitempty"`
	Affinity  string `json:"affinity"`
	Replicas  int    `json:"replicas"`
	Bytes     int64  `json:"bytes"`
	InFlight  int    `json:"in_flight"`
	LastUseNS int64  `json:"last_use_unix_ns"`
	IdleMS    int64  `json:"idle_ms"`
}

// Dump is the uniform /debug/templates document.
type Dump struct {
	Side            string       `json:"side"`
	Entries         int          `json:"entries"`
	Bytes           int64        `json:"bytes"`
	BudgetBytes     int64        `json:"budget_bytes"`
	HighWaterBytes  int64        `json:"high_water_bytes"`
	EvictionsLRU    int64        `json:"evictions_lru"`
	EvictionsBudget int64        `json:"evictions_budget"`
	Templates       []DebugEntry `json:"templates"`
}

// Dump builds the uniform debug document. fill, called outside shard
// locks, decorates each row with entry-specific fields (replica count);
// it may take entry locks.
func (r *Registry[E]) Dump(side string, fill func(e E, d *DebugEntry)) Dump {
	now := time.Now().UnixNano()
	type row struct {
		d DebugEntry
		e E
	}
	var rows []row
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.entries.FromFront(func(_ Key, s *Slot[E]) bool {
			rows = append(rows, row{
				d: DebugEntry{
					Op:        s.Key.Group,
					Signature: s.Key.Sub,
					Affinity:  s.Key.String(),
					Replicas:  1,
					Bytes:     s.bytes,
					InFlight:  int(s.refs),
					LastUseNS: s.lastUse,
					IdleMS:    (now - s.lastUse) / int64(time.Millisecond),
				},
				e: s.Value,
			})
			return true
		})
		sh.mu.Unlock()
	}
	out := Dump{
		Side:            side,
		Entries:         len(rows),
		Bytes:           r.bytes.Load(),
		BudgetBytes:     r.opts.MaxBytes,
		HighWaterBytes:  r.highWater.Load(),
		EvictionsLRU:    r.evictionsLRU.Load(),
		EvictionsBudget: r.evictionsBudget.Load(),
		Templates:       make([]DebugEntry, 0, len(rows)),
	}
	for i := range rows {
		if fill != nil {
			fill(rows[i].e, &rows[i].d)
		}
		out.Templates = append(out.Templates, rows[i].d)
	}
	sort.Slice(out.Templates, func(i, j int) bool {
		a, b := &out.Templates[i], &out.Templates[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Signature != b.Signature {
			return a.Signature < b.Signature
		}
		return a.Affinity < b.Affinity
	})
	return out
}
