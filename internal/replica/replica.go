// Package replica is the unified replica runtime: one sharded,
// affinity-aware, budget-bounded registry of engine replicas shared by
// the client pool (per-(operation,signature) template replica sets) and
// the server runtime (per-connection decode/respond replicas).
//
// Before this package existed the tree carried four bespoke copies of
// the same machinery — pool.ShardedStore's per-op signature LRU, the
// serverpool replica LRU, diffdeser's operation-key LRU and core.Store's
// in-slice rotation — each with its own sharding, eviction counters and
// in-flight protection story. They are all ports of the three pieces
// here:
//
//   - LRU: the one recency list (map-indexed intrusive doubly-linked
//     list, O(1) touch, allocation-free on the warm path).
//   - Tracker: the one bounded last-served affinity map (message-,
//     connection- or client-keyed) with wholesale reset at capacity.
//   - Registry: the sharded entry store, parameterized over the entry
//     type, owning count caps (per shard and per group), an in-flight
//     refcount protocol, and byte-accurate memory budgeting.
//
// # Ownership and refcounts
//
// Every Acquire increments the entry's in-flight refcount; every
// Release decrements it. An evicted entry is condemned — removed from
// the maps and the recency list, its bytes subtracted from the
// registry's accounting — but its arena-backed memory (Entry.
// ReleaseArenas) is only freed once the refcount reaches zero. That is
// the protocol that lets the client pool release template arenas at
// all: the old ShardedStore could never call membuf release on eviction
// because a concurrent call might still be diffing against the bytes,
// so evicted replica sets were left for the garbage collector. With
// refcounts the registry knows when the last in-flight call returns and
// releases exactly then.
//
// # Budgets
//
// A registry with Options.MaxBytes > 0 keeps the sum of its entries'
// accounted sizes at or below the budget. Sizes are reported by the
// entries (Entry.SizeBytes, which must be cheap and race-free — owners
// cache sizes in atomics and update them while holding their own entry
// locks) and re-read at every Release. Growth is admitted
// reservation-first: the releasing call reserves its delta, evicts
// least-recently-used entries until budget + reservations fit, then
// commits — so the exported bytes gauge never exceeds the budget. (The
// one documented exception: a single entry larger than the whole budget
// is admitted anyway, since evicting everything else still could not
// make it fit.) Budget eviction respects per-group fairness floors: a
// group (operation) whose resident bytes are at or below the floor is
// skipped while any group above its floor can pay instead.
package replica

import "strconv"

// Key identifies one registry entry. Exactly one grouping is used per
// registry: the client pool keys by (Group=operation, Sub=signature),
// the server runtime by Conn (AffinityConn) or Sub=remote host
// (AffinityClient). Group, when set, names the fairness-accounting
// group and pins all of a group's entries to one shard so per-group
// caps and floors need no cross-shard coordination.
type Key struct {
	// Group is the operation name (client registries) or "" (server
	// registries, which have no per-group semantics).
	Group string
	// Sub distinguishes entries within a group (the structural
	// signature) or names the client host under host affinity.
	Sub string
	// Conn is the transport connection ID under connection affinity.
	Conn uint64
}

// String renders the key as the uniform affinity-key column of the
// /debug/templates dump.
func (k Key) String() string {
	switch {
	case k.Group != "":
		return "op:" + k.Group
	case k.Sub != "":
		return "host:" + k.Sub
	default:
		return "conn:" + strconv.FormatUint(k.Conn, 10)
	}
}

// hash spreads keys over shards. Group-keyed entries hash the group
// alone, keeping every signature of an operation in one shard (the
// per-group LRU cap and fairness floor are therefore global for the
// operation while different operations never contend).
func (k Key) hash() uint32 {
	if k.Group != "" {
		return fnv32(k.Group)
	}
	if k.Sub != "" {
		return fnv32(k.Sub)
	}
	return uint32(k.Conn*2654435761) ^ uint32(k.Conn>>32)
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Affinity64 hashes a pointer-derived identity to spread it stably over
// a small set of replicas (Fibonacci hashing; pointer low bits are all
// zero from alignment). The client pool uses it to give each message a
// preferred replica within an entry.
func Affinity64(p uintptr) uint64 {
	return (uint64(p) * 0x9E3779B97F4A7C15) >> 32
}

// Entry is what a Registry stores. Implementations are the pool's
// replica set and the server's per-connection replica.
type Entry interface {
	// SizeBytes reports the entry's current resident cost. It is called
	// under registry locks and must be cheap and race-free: owners keep
	// a cached atomic size, updated while holding their own entry lock.
	SizeBytes() int
	// ReleaseArenas frees the entry's arena-backed memory. The registry
	// calls it exactly once, outside its own locks, after the entry has
	// been evicted and its in-flight refcount has dropped to zero.
	ReleaseArenas()
}

// Reason classifies an eviction.
type Reason int

const (
	// ReasonLRU marks a count-cap eviction (per-group or per-shard).
	ReasonLRU Reason = iota
	// ReasonBudget marks an eviction driven by Options.MaxBytes.
	ReasonBudget
)

// String returns the stable label value used by metrics.
func (r Reason) String() string {
	if r == ReasonBudget {
		return "budget"
	}
	return "lru"
}
