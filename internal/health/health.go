// Package health serves the /debug/health endpoint mounted by both
// bsoap binaries: build identity (module version, Go version, VCS
// revision), process uptime, goroutine count, and the flight recorder's
// recording and slow-ring state. It is the first endpoint to hit when a
// process misbehaves — one GET says what is running, for how long, and
// whether tracing is armed — and `bsoap-inspect health` renders it.
package health

import (
	"encoding/json"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"bsoap/internal/trace"
)

// Report is the /debug/health payload.
type Report struct {
	// Program is the role string the binary registered ("bsoap-server",
	// "bsoap-loadgen", ...).
	Program string `json:"program"`
	// Module and GoVersion come from the build info baked into the
	// binary; Revision and DirtyBuild from its VCS stamp when present.
	Module     string `json:"module,omitempty"`
	Version    string `json:"version,omitempty"`
	GoVersion  string `json:"go_version"`
	Revision   string `json:"revision,omitempty"`
	DirtyBuild bool   `json:"dirty_build,omitempty"`

	PID           int     `json:"pid"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`

	Trace trace.Status `json:"trace"`
}

// Probe builds Reports for one process; construct it at startup so
// uptime is measured from process birth, not first scrape.
type Probe struct {
	program string
	start   time.Time
	pid     int
}

// NewProbe returns a probe reporting under the given program name.
func NewProbe(program string) *Probe {
	return &Probe{program: program, start: time.Now(), pid: os.Getpid()}
}

// Report snapshots the process.
func (p *Probe) Report() Report {
	r := Report{
		Program:       p.program,
		GoVersion:     runtime.Version(),
		PID:           p.pid,
		UptimeSeconds: time.Since(p.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		Trace:         trace.GetStatus(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		r.Module = bi.Main.Path
		r.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				r.Revision = s.Value
			case "vcs.modified":
				r.DirtyBuild = s.Value == "true"
			}
		}
	}
	return r
}

// Handler serves the report as indented JSON — the /debug/health
// endpoint.
func (p *Probe) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.Report())
	})
}
