package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns options that make every figure run in milliseconds.
func tiny() Options { return Options{Reps: 2, MaxSize: 200} }

func TestAllFiguresRun(t *testing.T) {
	for _, id := range FigureIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			fig, err := Figures()[id](tiny())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if fig.ID != id {
				t.Fatalf("figure ID %q", fig.ID)
			}
			if len(fig.Series) < 3 {
				t.Fatalf("%s: only %d series", id, len(fig.Series))
			}
			for _, s := range fig.Series {
				if len(s.Points) == 0 {
					t.Fatalf("%s: series %q has no points", id, s.Label)
				}
				for _, p := range s.Points {
					if p.Millis < 0 {
						t.Fatalf("%s/%s: negative time", id, s.Label)
					}
				}
			}
		})
	}
}

func TestFigureIDsMatchRunners(t *testing.T) {
	rs := Figures()
	// Twelve paper figures plus the extension figures.
	if len(rs) != 14 || len(FigureIDs()) != 14 {
		t.Fatalf("figure count: %d runners, %d IDs", len(rs), len(FigureIDs()))
	}
	for _, id := range FigureIDs() {
		if rs[id] == nil {
			t.Fatalf("no runner for %s", id)
		}
	}
}

func TestFig01SeriesLabels(t *testing.T) {
	fig, err := Fig01(tiny())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{lblGSOAP, lblFull, lblMCM}
	for i, s := range fig.Series {
		if s.Label != want[i] {
			t.Fatalf("series %d = %q, want %q", i, s.Label, want[i])
		}
	}
}

func TestFig02IncludesXSOAP(t *testing.T) {
	fig, err := Fig02(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if fig.Series[0].Label != lblXSOAP {
		t.Fatalf("first series %q", fig.Series[0].Label)
	}
}

func TestContentMatchBeatsFullSerialization(t *testing.T) {
	// The headline claim, at a size big enough to dominate overheads.
	fig, err := Fig02(Options{Reps: 5, MaxSize: 10000})
	if err != nil {
		t.Fatal(err)
	}
	ratio, ok := fig.Ratio(lblFull, lblMCM)
	if !ok {
		t.Fatal("missing series")
	}
	if ratio < 2 {
		t.Fatalf("full/MCM ratio = %.2f; differential serialization is not winning", ratio)
	}
}

func TestShiftingCostsMoreThanNoShift(t *testing.T) {
	fig, err := Fig07(Options{Reps: 3, MaxSize: 5000})
	if err != nil {
		t.Fatal(err)
	}
	ratio, ok := fig.Ratio(lblShift32K, lblNoShift)
	if !ok {
		t.Fatal("missing series")
	}
	if ratio < 1.2 {
		t.Fatalf("shift/no-shift ratio = %.2f; shifting should cost more", ratio)
	}
}

func TestWriteTextAndCSV(t *testing.T) {
	fig := &Figure{
		ID: "figXX", Title: "Test", XLabel: "size", YLabel: "Send Time",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Sample: Sample{Millis: 0.5}}, {X: 10, Sample: Sample{Millis: 5}}}},
			{Label: "b", Points: []Point{{X: 1, Sample: Sample{Millis: 1.5}}}},
		},
	}
	var txt bytes.Buffer
	if err := fig.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"figXX", "size", "a", "b", "0.5000", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := fig.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), `figXX,1,"a",0.500000`) {
		t.Errorf("csv output:\n%s", csv.String())
	}
}

func TestRatio(t *testing.T) {
	fig := &Figure{Series: []Series{
		{Label: "slow", Points: []Point{{X: 10, Sample: Sample{Millis: 10}}, {X: 100, Sample: Sample{Millis: 100}}}},
		{Label: "fast", Points: []Point{{X: 10, Sample: Sample{Millis: 1}}, {X: 100, Sample: Sample{Millis: 10}}}},
	}}
	r, ok := fig.Ratio("slow", "fast")
	if !ok || r != 10 {
		t.Fatalf("ratio = %v, %v", r, ok)
	}
	if _, ok := fig.Ratio("slow", "missing"); ok {
		t.Fatal("ratio with missing series succeeded")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Reps != 25 || o.MaxSize != 10000 || o.Sink == nil || o.StreamSink == nil {
		t.Fatalf("defaults: %+v", o)
	}
	sizes := o.logSizes()
	if sizes[len(sizes)-1] != 10000 {
		t.Fatalf("log sizes: %v", sizes)
	}
	lin := o.linearSizes()
	if len(lin) != 10 || lin[9] != 10000 {
		t.Fatalf("linear sizes: %v", lin)
	}
}
