package bench

import (
	"fmt"
	"net"

	"bsoap/internal/core"
	"bsoap/internal/diffdeser"
	"bsoap/internal/fastconv"
	"bsoap/internal/soapdec"
	"bsoap/internal/wire"
	"bsoap/internal/workload"
)

// Extension figures go beyond the paper's twelve: they measure the
// future-work systems the paper sketches in §6 with the same
// methodology.

// ExtD1 measures differential deserialization (the server-side mirror
// of Figures 4–5): Receive Time — bytes in, decoded message out — for a
// full schema-driven parse versus the differential fast path at various
// changed-value percentages, over double arrays from a max-width
// stuffing client.
func ExtD1(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID:     "extD1",
		Title:  "Differential Deserialization: Doubles (extension)",
		XLabel: "array size",
		YLabel: "Receive Time",
	}

	schema := &soapdec.Schema{
		Namespace: workload.Namespace,
		Op:        "sendDoubles",
		Params:    []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
	}
	lookup := func(op string) (*soapdec.Schema, bool) {
		if op == schema.Op {
			return schema, true
		}
		return nil, false
	}

	sFull := Series{Label: "Full Parse"}
	fracs := []int{100, 25}
	sFrac := make([]Series, len(fracs))
	for i, pct := range fracs {
		sFrac[i].Label = fmt.Sprintf("Differential, %d%% Values Changed", pct)
	}
	sSame := Series{Label: "Differential, Identical Resend"}

	for _, n := range o.logSizes() {
		w := workload.NewDoubles(n, workload.FillIntermediate)
		sink := &renderSink{}
		stub := core.NewStub(core.Config{
			Width: core.WidthPolicy{Double: core.MaxWidth},
		}, sink)
		if _, err := stub.Call(w.Msg); err != nil {
			return nil, err
		}
		body := append([]byte(nil), sink.data...)

		// Full parse of the same body every repetition.
		ms, err := timeCalls(o.Reps, func() error {
			_, err := soapdec.Decode(body, lookup, false)
			return err
		})
		if err != nil {
			return nil, err
		}
		sFull.Points = append(sFull.Points, Point{n, ms})

		// Differential with a fraction of values changed per arrival;
		// the client-side mutation and re-serialization happen outside
		// the timer — only the decode is Receive Time.
		for i, pct := range fracs {
			frac := float64(pct) / 100
			d := diffdeser.New(lookup)
			if _, _, err := d.Decode("k", sink.data); err != nil {
				return nil, err
			}
			ms, err := timePrepared(o.Reps,
				func() error {
					w.TouchFraction(frac)
					_, err := stub.Call(w.Msg)
					return err
				},
				func() error {
					_, _, err := d.Decode("k", sink.data)
					return err
				})
			if err != nil {
				return nil, err
			}
			sFrac[i].Points = append(sFrac[i].Points, Point{n, ms})
		}

		// Identical resend: pure byte comparison.
		d := diffdeser.New(lookup)
		if _, _, err := d.Decode("k", sink.data); err != nil {
			return nil, err
		}
		ms, err = timeCalls(o.Reps, func() error {
			_, _, err := d.Decode("k", sink.data)
			return err
		})
		if err != nil {
			return nil, err
		}
		sSame.Points = append(sSame.Points, Point{n, ms})
	}

	fig.Series = append(fig.Series, sFull)
	fig.Series = append(fig.Series, sFrac...)
	fig.Series = append(fig.Series, sSame)
	return fig, nil
}

// ExtC1 replays Figure 2's comparison (message content matches on
// double arrays) with 2004-era conversion costs emulated: the exact
// big-integer dragon printer replaces the modern shortest-float code in
// every serializer. The paper's original 10× MCM speedup was measured
// when conversions cost this much; with them restored, the compressed
// modern ratios widen back toward the paper's.
func ExtC1(o Options) (*Figure, error) {
	restore := fastconv.SetDoubleConverter(fastconv.DragonDoubleConverter)
	defer restore()
	fig, err := mcmFigure(o, "extC1",
		"Message Content Matches: Doubles, 2004-era conversion costs (extension)",
		"double", buildDoubleMsg, false)
	return fig, err
}

// renderSink captures the stub's last serialized message.
type renderSink struct{ data []byte }

// Send implements core.Sink.
func (r *renderSink) Send(bufs net.Buffers) error {
	r.data = r.data[:0]
	for _, b := range bufs {
		r.data = append(r.data, b...)
	}
	return nil
}
