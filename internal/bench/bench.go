// Package bench regenerates the paper's evaluation: one function per
// figure (1–12), each producing the same series the paper plots. The
// timed quantity is the paper's Send Time — the interval from preparing
// the message for sending until the final write to the transport
// completes — averaged over repetitions.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/transport"
)

// Sample aggregates what one timed measurement observed per call:
// wall-clock and — since the buffer-ownership refactor made steady-state
// sends allocation-free — the heap traffic, so regressions show up in
// the recorded artifacts, not just in ns.
type Sample struct {
	Millis      float64 `json:"millis"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Point is one measurement: array size → per-call sample.
type Point struct {
	X int `json:"x"`
	Sample
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string  `json:"label"`
	Points []Point `json:"points"`
}

// Figure is one reproduced evaluation figure.
type Figure struct {
	ID     string   `json:"id"` // "fig01" … "fig12"
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []Series `json:"series"`
}

// Options configure a run.
type Options struct {
	// Reps is the number of timed repetitions per data point (paper:
	// 100). Zero selects 25.
	Reps int
	// MaxSize caps the array sizes swept (paper: 100000). Zero selects
	// 10000, which keeps a full run under a minute on a laptop.
	MaxSize int
	// Sink receives every send. Nil selects an in-process discard sink;
	// cmd/bsoap-bench can substitute a TCP sender to a discard server.
	Sink core.Sink
	// StreamSink receives overlay sends (Figure 12). Nil selects the
	// discard sink.
	StreamSink core.StreamSink
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 25
	}
	if o.MaxSize <= 0 {
		o.MaxSize = 10000
	}
	if o.Sink == nil {
		d := transport.NewDiscardSink()
		o.Sink = d
		if o.StreamSink == nil {
			o.StreamSink = d
		}
	}
	if o.StreamSink == nil {
		o.StreamSink = transport.NewDiscardSink()
	}
	return o
}

// paperSizes is the evaluation's log-scale sweep.
var paperSizes = []int{1, 100, 500, 1000, 10000, 50000, 100000}

// logSizes returns the paper's sizes clipped to MaxSize.
func (o Options) logSizes() []int {
	var out []int
	for _, s := range paperSizes {
		if s <= o.MaxSize {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = []int{o.MaxSize}
	}
	return out
}

// linearSizes returns ten evenly spaced sizes up to MaxSize (the
// paper's linear-axis figures sweep 0–100K).
func (o Options) linearSizes() []int {
	out := make([]int, 0, 10)
	step := o.MaxSize / 10
	if step < 1 {
		step = 1
	}
	for s := step; s <= o.MaxSize; s += step {
		out = append(out, s)
	}
	return out
}

// timeCalls measures the average wall time of reps invocations of f.
func timeCalls(reps int, f func() error) (Sample, error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var total time.Duration
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return Sample{}, err
		}
		total += time.Since(start)
	}
	runtime.ReadMemStats(&m1)
	return newSample(total, reps, &m0, &m1), nil
}

// newSample folds a timing total and the MemStats delta around it into
// per-call figures.
func newSample(total time.Duration, reps int, m0, m1 *runtime.MemStats) Sample {
	r := float64(reps)
	return Sample{
		Millis:      float64(total.Microseconds()) / r / 1000.0,
		NsPerOp:     float64(total.Nanoseconds()) / r,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / r,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / r,
	}
}

// timePrepared measures reps rounds of (untimed prepare, timed send) —
// used when each repetition must reset template state (worst-case
// shifting, stuffing tag shifts).
func timePrepared(reps int, prepare func() error, send func() error) (Sample, error) {
	// The allocation window brackets only the timed sends; prepare runs
	// between ReadMemStats... which would charge its garbage to the
	// sample, so instead each rep measures around the send alone.
	var total time.Duration
	var allocs, bytes uint64
	var m0, m1 runtime.MemStats
	for i := 0; i < reps; i++ {
		if err := prepare(); err != nil {
			return Sample{}, err
		}
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if err := send(); err != nil {
			return Sample{}, err
		}
		total += time.Since(start)
		runtime.ReadMemStats(&m1)
		allocs += m1.Mallocs - m0.Mallocs
		bytes += m1.TotalAlloc - m0.TotalAlloc
	}
	r := float64(reps)
	return Sample{
		Millis:      float64(total.Microseconds()) / r / 1000.0,
		NsPerOp:     float64(total.Nanoseconds()) / r,
		AllocsPerOp: float64(allocs) / r,
		BytesPerOp:  float64(bytes) / r,
	}, nil
}

// WriteText renders the figure as an aligned table: one row per size,
// one column per series — the same rows/series the paper plots.
func (f *Figure) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s vs %s (milliseconds per call)\n", f.YLabel, f.XLabel); err != nil {
		return err
	}
	fmt.Fprintf(w, "%12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "  %28s", s.Label)
	}
	fmt.Fprintln(w)
	for _, x := range f.xs() {
		fmt.Fprintf(w, "%12d", x)
		for _, s := range f.Series {
			if ms, ok := s.at(x); ok {
				fmt.Fprintf(w, "  %28.4f", ms)
			} else {
				fmt.Fprintf(w, "  %28s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the figure as size,series,millis rows.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "figure,size,series,millis\n"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%d,%q,%.6f\n", f.ID, p.X, s.Label, p.Millis); err != nil {
				return err
			}
		}
	}
	return nil
}

// xs returns the union of x values across series, ascending.
func (f *Figure) xs() []int {
	seen := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			seen[p.X] = true
		}
	}
	out := make([]int, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// at looks up the series value at x.
func (s *Series) at(x int) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Millis, true
		}
	}
	return 0, false
}

// Ratio reports series a's value divided by series b's at the largest
// common size — the "how many times faster" numbers the paper quotes.
func (f *Figure) Ratio(labelA, labelB string) (float64, bool) {
	var a, b *Series
	for i := range f.Series {
		switch f.Series[i].Label {
		case labelA:
			a = &f.Series[i]
		case labelB:
			b = &f.Series[i]
		}
	}
	if a == nil || b == nil {
		return 0, false
	}
	xs := f.xs()
	for j := len(xs) - 1; j >= 0; j-- {
		av, aok := a.at(xs[j])
		bv, bok := b.at(xs[j])
		if aok && bok && bv != 0 {
			return av / bv, true
		}
	}
	return 0, false
}

// Runner maps figure IDs to their functions.
type Runner func(Options) (*Figure, error)

// Figures lists every reproduction in paper order.
func Figures() map[string]Runner {
	return map[string]Runner{
		"fig01": Fig01, "fig02": Fig02, "fig03": Fig03,
		"fig04": Fig04, "fig05": Fig05,
		"fig06": Fig06, "fig07": Fig07,
		"fig08": Fig08, "fig09": Fig09,
		"fig10": Fig10, "fig11": Fig11,
		"fig12": Fig12,
		"extD1": ExtD1, "extC1": ExtC1,
	}
}

// FigureIDs returns the paper figures in order, followed by the
// extension figures.
func FigureIDs() []string {
	return []string{"fig01", "fig02", "fig03", "fig04", "fig05", "fig06",
		"fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
		"extD1", "extC1"}
}
