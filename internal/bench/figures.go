package bench

import (
	"fmt"

	"bsoap/internal/baseline"
	"bsoap/internal/chunk"
	"bsoap/internal/core"
	"bsoap/internal/wire"
	"bsoap/internal/workload"
)

// Series labels, matching the paper's legends.
const (
	lblGSOAP     = "gSOAP"
	lblXSOAP     = "XSOAP"
	lblFull      = "bSOAP Full Serialization"
	lblMCM       = "bSOAP Message Content Match"
	lblMCMShort  = "Message Content Match"
	lblNoShift   = "100% Value Re-serialization, No Shifting"
	lblShift32K  = "Worst Case (100%) Shifting with 32K Chunks"
	lblShift8K   = "Worst Case (100%) Shifting with 8K Chunks"
	lblMaxTag    = "Max Field Width: Full Closing Tag Shift"
	lblMaxNoTag  = "Max Field Width: No Closing Tag Shift"
	lblInterWide = "Intermediate Field Width: No Closing Tag Shift"
	lblMinWide   = "Min Field Width: No Closing Tag Shift"
)

func reserLabel(pct int) string {
	return fmt.Sprintf("%d%% Value Re-serialization", pct)
}

func reserShiftLabel(pct int) string {
	return fmt.Sprintf("%d%% Value Re-serialization with Shifting", pct)
}

// chunk32K is the default template chunk configuration (the paper's
// SO_SNDBUF-matching 32 KiB).
func chunk32K() chunk.Config { return chunk.Config{ChunkSize: 32 * 1024} }

func chunk8K() chunk.Config { return chunk.Config{ChunkSize: 8 * 1024} }

// ---------------------------------------------------------------------
// Figures 1–3: Message Content Matches.
// ---------------------------------------------------------------------

// mcmBuilder abstracts the element type swept by Figures 1–3.
type mcmBuilder func(n int) *wire.Message

func buildMIOMsg(n int) *wire.Message { return workload.NewMIOs(n, workload.FillIntermediate).Msg }
func buildDoubleMsg(n int) *wire.Message {
	return workload.NewDoubles(n, workload.FillIntermediate).Msg
}
func buildIntMsg(n int) *wire.Message { return workload.NewInts(n, workload.FillIntermediate).Msg }

// mcmFigure measures gSOAP (and optionally XSOAP) full serialization,
// bSOAP with differential serialization off, and bSOAP message content
// matches for resends of an unchanged message.
func mcmFigure(o Options, id, title, elem string, build mcmBuilder, withXSOAP bool) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "array size",
		YLabel: "Send Time",
	}
	var sXSOAP, sGSOAP, sFull, sMCM Series
	sXSOAP.Label, sGSOAP.Label, sFull.Label, sMCM.Label = lblXSOAP, lblGSOAP, lblFull, lblMCM

	for _, n := range o.logSizes() {
		m := build(n)

		if withXSOAP {
			cl := baseline.NewClient(baseline.NewXSOAPLike(), o.Sink)
			ms, err := timeCalls(o.Reps, func() error { _, err := cl.Call(m); return err })
			if err != nil {
				return nil, err
			}
			sXSOAP.Points = append(sXSOAP.Points, Point{n, ms})
		}

		cl := baseline.NewClient(baseline.NewGSOAPLike(), o.Sink)
		ms, err := timeCalls(o.Reps, func() error { _, err := cl.Call(m); return err })
		if err != nil {
			return nil, err
		}
		sGSOAP.Points = append(sGSOAP.Points, Point{n, ms})

		full := core.NewStub(core.Config{Chunk: chunk32K(), DisableDiff: true}, o.Sink)
		ms, err = timeCalls(o.Reps, func() error { _, err := full.Call(m); return err })
		if err != nil {
			return nil, err
		}
		sFull.Points = append(sFull.Points, Point{n, ms})

		diff := core.NewStub(core.Config{Chunk: chunk32K()}, o.Sink)
		if _, err := diff.Call(m); err != nil { // first-time send, untimed
			return nil, err
		}
		ms, err = timeCalls(o.Reps, func() error { _, err := diff.Call(m); return err })
		if err != nil {
			return nil, err
		}
		sMCM.Points = append(sMCM.Points, Point{n, ms})
		if st := diff.Stats(); st.ContentMatches != int64(o.Reps) {
			return nil, fmt.Errorf("bench %s: expected %d content matches for %s size %d, got %+v",
				id, o.Reps, elem, n, st)
		}
	}
	if withXSOAP {
		fig.Series = append(fig.Series, sXSOAP)
	}
	fig.Series = append(fig.Series, sGSOAP, sFull, sMCM)
	return fig, nil
}

// Fig01 reproduces Figure 1: message content matches, MIO arrays.
func Fig01(o Options) (*Figure, error) {
	return mcmFigure(o, "fig01", "Message Content Matches: MIO's", "MIO", buildMIOMsg, false)
}

// Fig02 reproduces Figure 2: message content matches, double arrays,
// with the XSOAP baseline added.
func Fig02(o Options) (*Figure, error) {
	return mcmFigure(o, "fig02", "Message Content Matches: Doubles", "double", buildDoubleMsg, true)
}

// Fig03 reproduces Figure 3: message content matches, integer arrays.
func Fig03(o Options) (*Figure, error) {
	return mcmFigure(o, "fig03", "Message Content Matches: Integers", "int", buildIntMsg, false)
}

// ---------------------------------------------------------------------
// Figures 4–5: Perfect Structural Matches.
// ---------------------------------------------------------------------

// psmFigure measures full serialization, re-serialization of 100/75/
// 50/25% of values (width-neutral updates, no shifting), and content
// matches, over a linear size sweep.
func psmFigure(o Options, id, title string, newMsg func(n int) (*wire.Message, func(frac float64))) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{ID: id, Title: title, XLabel: "array size", YLabel: "Send Time"}

	sFull := Series{Label: lblFull}
	fracs := []int{100, 75, 50, 25}
	sFrac := make([]Series, len(fracs))
	for i, pct := range fracs {
		sFrac[i].Label = reserLabel(pct)
	}
	sMCM := Series{Label: lblMCMShort}

	for _, n := range o.linearSizes() {
		m, touch := newMsg(n)

		full := core.NewStub(core.Config{Chunk: chunk32K(), DisableDiff: true}, o.Sink)
		ms, err := timeCalls(o.Reps, func() error { _, err := full.Call(m); return err })
		if err != nil {
			return nil, err
		}
		sFull.Points = append(sFull.Points, Point{n, ms})

		for i, pct := range fracs {
			frac := float64(pct) / 100
			stub := core.NewStub(core.Config{Chunk: chunk32K()}, o.Sink)
			if _, err := stub.Call(m); err != nil {
				return nil, err
			}
			ms, err := timeCalls(o.Reps, func() error {
				touch(frac)
				_, err := stub.Call(m)
				return err
			})
			if err != nil {
				return nil, err
			}
			if st := stub.Stats(); st.Shifts != 0 {
				return nil, fmt.Errorf("bench %s: PSM series shifted (%+v)", id, st)
			}
			sFrac[i].Points = append(sFrac[i].Points, Point{n, ms})
		}

		stub := core.NewStub(core.Config{Chunk: chunk32K()}, o.Sink)
		if _, err := stub.Call(m); err != nil {
			return nil, err
		}
		ms, err = timeCalls(o.Reps, func() error { _, err := stub.Call(m); return err })
		if err != nil {
			return nil, err
		}
		sMCM.Points = append(sMCM.Points, Point{n, ms})
	}
	fig.Series = append(fig.Series, sFull)
	fig.Series = append(fig.Series, sFrac...)
	fig.Series = append(fig.Series, sMCM)
	return fig, nil
}

// Fig04 reproduces Figure 4: perfect structural matches on MIO arrays —
// only the MIO doubles are re-serialized, the integers stay unchanged.
func Fig04(o Options) (*Figure, error) {
	return psmFigure(o, "fig04", "Perfect Structural Matches: MIO's", func(n int) (*wire.Message, func(float64)) {
		w := workload.NewMIOs(n, workload.FillIntermediate)
		return w.Msg, w.TouchDoublesFraction
	})
}

// Fig05 reproduces Figure 5: perfect structural matches on double
// arrays.
func Fig05(o Options) (*Figure, error) {
	return psmFigure(o, "fig05", "Perfect Structural Matches: Doubles", func(n int) (*wire.Message, func(float64)) {
		w := workload.NewDoubles(n, workload.FillIntermediate)
		return w.Msg, w.TouchFraction
	})
}

// ---------------------------------------------------------------------
// Figures 6–7: worst-case shifting.
// ---------------------------------------------------------------------

// worstShiftFigure measures expanding every value from its minimal to
// its maximal width (forcing a shift per value) at 32K and 8K chunk
// sizes, against the no-shift 100% re-serialization baseline.
func worstShiftFigure(o Options, id, title string,
	prepareMin func(n int) (*wire.Message, func()), // message at min widths + grow-all
	newMaxTouch func(n int) (*wire.Message, func()), // message at max widths + width-neutral touch-all
) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{ID: id, Title: title, XLabel: "array size", YLabel: "Send Time"}

	for _, variant := range []struct {
		label string
		cfg   chunk.Config
	}{{lblShift32K, chunk32K()}, {lblShift8K, chunk8K()}} {
		s := Series{Label: variant.label}
		for _, n := range o.logSizes() {
			var stub *core.Stub
			var grow func()
			var m *wire.Message
			ms, err := timePrepared(o.Reps,
				func() error {
					// Fresh template at minimal widths each repetition.
					stub = core.NewStub(core.Config{Chunk: variant.cfg}, o.Sink)
					m, grow = prepareMin(n)
					_, err := stub.Call(m)
					return err
				},
				func() error {
					grow()
					_, err := stub.Call(m)
					return err
				})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{n, ms})
		}
		fig.Series = append(fig.Series, s)
	}

	s := Series{Label: lblNoShift}
	for _, n := range o.logSizes() {
		m, touch := newMaxTouch(n)
		stub := core.NewStub(core.Config{Chunk: chunk32K()}, o.Sink)
		if _, err := stub.Call(m); err != nil {
			return nil, err
		}
		ms, err := timeCalls(o.Reps, func() error {
			touch()
			_, err := stub.Call(m)
			return err
		})
		if err != nil {
			return nil, err
		}
		if st := stub.Stats(); st.Shifts != 0 {
			return nil, fmt.Errorf("bench %s: no-shift baseline shifted (%+v)", id, st)
		}
		s.Points = append(s.Points, Point{n, ms})
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// Fig06 reproduces Figure 6: worst-case shifting on MIO arrays — every
// MIO expands from 3 to 46 characters.
func Fig06(o Options) (*Figure, error) {
	return worstShiftFigure(o, "fig06", "Worst Case Shifting: MIO's",
		func(n int) (*wire.Message, func()) {
			w := workload.NewMIOs(n, workload.FillMin)
			return w.Msg, func() { w.SetAll(workload.MaxInt, workload.MaxInt, workload.MaxDouble) }
		},
		func(n int) (*wire.Message, func()) {
			w := workload.NewMIOs(n, workload.FillMax)
			return w.Msg, func() { w.TouchDoublesFraction(1); touchMIOIntsMax(w) }
		})
}

// touchMIOIntsMax flips every max-width int field width-neutrally.
func touchMIOIntsMax(w *workload.MIOs) {
	for i := 0; i < w.Arr.Len(); i++ {
		for f := 0; f < 2; f++ {
			v := w.Arr.Int(i, f)
			if v == workload.MaxInt {
				w.Arr.SetInt(i, f, workload.MaxInt+1) // still 11 chars
			} else {
				w.Arr.SetInt(i, f, workload.MaxInt)
			}
		}
	}
}

// Fig07 reproduces Figure 7: worst-case shifting on double arrays —
// every double expands from 1 to 24 characters.
func Fig07(o Options) (*Figure, error) {
	return worstShiftFigure(o, "fig07", "Worst Case Shifting: Doubles",
		func(n int) (*wire.Message, func()) {
			w := workload.NewDoubles(n, workload.FillMin)
			return w.Msg, func() { w.SetAll(workload.MaxDouble) }
		},
		func(n int) (*wire.Message, func()) {
			w := workload.NewDoubles(n, workload.FillMax)
			return w.Msg, func() { w.TouchFraction(1) }
		})
}

// ---------------------------------------------------------------------
// Figures 8–9: shifting at partial re-serialization percentages.
// ---------------------------------------------------------------------

// shiftPercentFigure expands a fraction of intermediate-width values to
// maximal width per send (fresh template per repetition), against the
// no-shift baseline.
func shiftPercentFigure(o Options, id, title string,
	prepareInter func(n int) (*wire.Message, func(frac float64)),
	newInterTouch func(n int) (*wire.Message, func()),
) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{ID: id, Title: title, XLabel: "array size", YLabel: "Send Time"}

	for _, pct := range []int{100, 75, 50, 25} {
		frac := float64(pct) / 100
		s := Series{Label: reserShiftLabel(pct)}
		for _, n := range o.logSizes() {
			var stub *core.Stub
			var m *wire.Message
			var grow func(float64)
			ms, err := timePrepared(o.Reps,
				func() error {
					stub = core.NewStub(core.Config{Chunk: chunk32K()}, o.Sink)
					m, grow = prepareInter(n)
					_, err := stub.Call(m)
					return err
				},
				func() error {
					grow(frac)
					_, err := stub.Call(m)
					return err
				})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{n, ms})
		}
		fig.Series = append(fig.Series, s)
	}

	s := Series{Label: lblNoShift}
	for _, n := range o.logSizes() {
		m, touch := newInterTouch(n)
		stub := core.NewStub(core.Config{Chunk: chunk32K()}, o.Sink)
		if _, err := stub.Call(m); err != nil {
			return nil, err
		}
		ms, err := timeCalls(o.Reps, func() error {
			touch()
			_, err := stub.Call(m)
			return err
		})
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{n, ms})
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// Fig08 reproduces Figure 8: percentages of an array of 36-character
// MIOs expand to maximal 46-character MIOs.
func Fig08(o Options) (*Figure, error) {
	return shiftPercentFigure(o, "fig08", "Shifting Performance: MIO's",
		func(n int) (*wire.Message, func(float64)) {
			w := workload.NewMIOs(n, workload.FillIntermediate)
			return w.Msg, func(frac float64) {
				w.GrowFraction(frac, workload.MaxInt, workload.MaxInt, workload.MaxDouble)
			}
		},
		func(n int) (*wire.Message, func()) {
			w := workload.NewMIOs(n, workload.FillIntermediate)
			return w.Msg, func() { w.TouchDoublesFraction(1) }
		})
}

// Fig09 reproduces Figure 9: percentages of an array of 18-character
// doubles expand to maximal 24-character doubles.
func Fig09(o Options) (*Figure, error) {
	return shiftPercentFigure(o, "fig09", "Shifting Performance: Doubles",
		func(n int) (*wire.Message, func(float64)) {
			w := workload.NewDoubles(n, workload.FillIntermediate)
			return w.Msg, func(frac float64) { w.GrowFraction(frac, workload.MaxDouble) }
		},
		func(n int) (*wire.Message, func()) {
			w := workload.NewDoubles(n, workload.FillIntermediate)
			return w.Msg, func() { w.TouchFraction(1) }
		})
}

// ---------------------------------------------------------------------
// Figures 10–11: stuffing.
// ---------------------------------------------------------------------

// stuffingFigure measures minimal values written into fields stuffed to
// max, intermediate and exact widths, plus the worst case: minimal
// values written over maximal ones in max-width fields, forcing the
// longest possible closing-tag shift.
func stuffingFigure(o Options, id, title string,
	maxPolicy, interPolicy core.WidthPolicy,
	newMin func(n int) (*wire.Message, func()), // min-value message + width-neutral touch-all
	newMax func(n int) (*wire.Message, func()), // max-value message + shrink-all-to-min
) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{ID: id, Title: title, XLabel: "array size", YLabel: "Send Time"}

	// Worst case: full closing-tag shift on every value.
	s := Series{Label: lblMaxTag}
	for _, n := range o.logSizes() {
		var stub *core.Stub
		var m *wire.Message
		var shrink func()
		ms, err := timePrepared(o.Reps,
			func() error {
				stub = core.NewStub(core.Config{Chunk: chunk32K(), Width: maxPolicy}, o.Sink)
				m, shrink = newMax(n)
				_, err := stub.Call(m)
				return err
			},
			func() error {
				shrink()
				_, err := stub.Call(m)
				return err
			})
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{n, ms})
	}
	fig.Series = append(fig.Series, s)

	for _, variant := range []struct {
		label  string
		policy core.WidthPolicy
	}{
		{lblMaxNoTag, maxPolicy},
		{lblInterWide, interPolicy},
		{lblMinWide, core.WidthPolicy{}},
	} {
		s := Series{Label: variant.label}
		for _, n := range o.logSizes() {
			m, touch := newMin(n)
			stub := core.NewStub(core.Config{Chunk: chunk32K(), Width: variant.policy}, o.Sink)
			if _, err := stub.Call(m); err != nil {
				return nil, err
			}
			ms, err := timeCalls(o.Reps, func() error {
				touch()
				_, err := stub.Call(m)
				return err
			})
			if err != nil {
				return nil, err
			}
			if st := stub.Stats(); st.TagShifts != 0 || st.Shifts != 0 {
				return nil, fmt.Errorf("bench %s (%s): unexpected tag shifts (%+v)", id, variant.label, st)
			}
			s.Points = append(s.Points, Point{n, ms})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig10 reproduces Figure 10: stuffing MIOs to 46 (max), 36
// (intermediate) and 3 (min) characters, plus the full closing-tag
// shift of writing 3-character MIOs over 46-character ones.
func Fig10(o Options) (*Figure, error) {
	return stuffingFigure(o, "fig10", "Stuffing Performance: MIO's",
		core.WidthPolicy{Int: core.MaxWidth, Double: core.MaxWidth},
		core.WidthPolicy{Int: 9, Double: 18},
		func(n int) (*wire.Message, func()) {
			w := workload.NewMIOs(n, workload.FillMin)
			return w.Msg, func() { w.TouchDoublesFraction(1); touchMIOIntsMin(w) }
		},
		func(n int) (*wire.Message, func()) {
			w := workload.NewMIOs(n, workload.FillMax)
			return w.Msg, func() { w.SetAll(workload.MinInt, workload.MinInt, workload.MinDouble) }
		})
}

// touchMIOIntsMin flips every 1-character int field width-neutrally.
func touchMIOIntsMin(w *workload.MIOs) {
	for i := 0; i < w.Arr.Len(); i++ {
		for f := 0; f < 2; f++ {
			if w.Arr.Int(i, f) == workload.MinInt {
				w.Arr.SetInt(i, f, workload.MinInt+1)
			} else {
				w.Arr.SetInt(i, f, workload.MinInt)
			}
		}
	}
}

// Fig11 reproduces Figure 11: stuffing one-character doubles to 24
// (max), 18 (intermediate) and 1 (min) characters, plus the full
// closing-tag shift of writing 1-character doubles over 24-character
// ones.
func Fig11(o Options) (*Figure, error) {
	return stuffingFigure(o, "fig11", "Stuffing Performance: Doubles",
		core.WidthPolicy{Double: core.MaxWidth},
		core.WidthPolicy{Double: 18},
		func(n int) (*wire.Message, func()) {
			w := workload.NewDoubles(n, workload.FillMin)
			return w.Msg, func() { w.TouchFraction(1) }
		},
		func(n int) (*wire.Message, func()) {
			w := workload.NewDoubles(n, workload.FillMax)
			return w.Msg, func() { w.SetAll(workload.MinDouble) }
		})
}

// ---------------------------------------------------------------------
// Figure 12: chunk overlaying.
// ---------------------------------------------------------------------

// Fig12 reproduces Figure 12: sending large arrays from a single
// overlaid 32K chunk versus re-serializing 100% of values in a fully
// resident template.
func Fig12(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{ID: "fig12", Title: "Chunk Overlaying Performance",
		XLabel: "array size", YLabel: "Send Time"}

	cfg := core.Config{Chunk: chunk32K(), Width: core.WidthPolicy{Int: core.MaxWidth, Double: core.MaxWidth}}

	// Doubles.
	ovD := Series{Label: "Chunk Overlay for Double Array"}
	fuD := Series{Label: "100% Value Serialization for Double Array"}
	for _, n := range o.linearSizes() {
		w := workload.NewDoubles(n, workload.FillMax)
		stub := core.NewStub(cfg, o.Sink)
		if _, err := stub.CallOverlay(w.Msg, o.StreamSink); err != nil {
			return nil, err
		}
		ms, err := timeCalls(o.Reps, func() error {
			w.TouchFraction(1)
			_, err := stub.CallOverlay(w.Msg, o.StreamSink)
			return err
		})
		if err != nil {
			return nil, err
		}
		ovD.Points = append(ovD.Points, Point{n, ms})

		w2 := workload.NewDoubles(n, workload.FillMax)
		stub2 := core.NewStub(cfg, o.Sink)
		if _, err := stub2.Call(w2.Msg); err != nil {
			return nil, err
		}
		ms, err = timeCalls(o.Reps, func() error {
			w2.TouchFraction(1)
			_, err := stub2.Call(w2.Msg)
			return err
		})
		if err != nil {
			return nil, err
		}
		fuD.Points = append(fuD.Points, Point{n, ms})
	}

	// MIOs.
	ovM := Series{Label: "Chunk Overlay for MIO Array"}
	fuM := Series{Label: "100% Value Serialization for MIO Array"}
	for _, n := range o.linearSizes() {
		w := workload.NewMIOs(n, workload.FillMax)
		stub := core.NewStub(cfg, o.Sink)
		if _, err := stub.CallOverlay(w.Msg, o.StreamSink); err != nil {
			return nil, err
		}
		ms, err := timeCalls(o.Reps, func() error {
			w.TouchDoublesFraction(1)
			touchMIOIntsMax(w)
			_, err := stub.CallOverlay(w.Msg, o.StreamSink)
			return err
		})
		if err != nil {
			return nil, err
		}
		ovM.Points = append(ovM.Points, Point{n, ms})

		w2 := workload.NewMIOs(n, workload.FillMax)
		stub2 := core.NewStub(cfg, o.Sink)
		if _, err := stub2.Call(w2.Msg); err != nil {
			return nil, err
		}
		ms, err = timeCalls(o.Reps, func() error {
			w2.TouchDoublesFraction(1)
			touchMIOIntsMax(w2)
			_, err := stub2.Call(w2.Msg)
			return err
		})
		if err != nil {
			return nil, err
		}
		fuM.Points = append(fuM.Points, Point{n, ms})
	}

	fig.Series = append(fig.Series, ovD, fuD, ovM, fuM)
	return fig, nil
}
