// Package soapenv defines the SOAP 1.1 envelope grammar shared by every
// serializer in the repository: the differential engine, the gSOAP-like
// and XSOAP-like baselines, and the server's response writer all emit
// byte-identical framing, so their send times differ only by strategy.
package soapenv

import (
	"fmt"

	"bsoap/internal/wire"
)

// Namespace URIs of SOAP 1.1 and XML Schema.
const (
	NSEnvelope = "http://schemas.xmlsoap.org/soap/envelope/"
	NSEncoding = "http://schemas.xmlsoap.org/soap/encoding/"
	NSXSI      = "http://www.w3.org/2001/XMLSchema-instance"
	NSXSD      = "http://www.w3.org/2001/XMLSchema"
)

// Prologue is the XML declaration that starts every message.
const Prologue = `<?xml version="1.0" encoding="UTF-8"?>` + "\n"

// EnvelopeStart returns the envelope and body opening, binding ns1 to the
// application namespace.
func EnvelopeStart(appNS string) string {
	return Prologue +
		`<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + NSEnvelope +
		`" xmlns:SOAP-ENC="` + NSEncoding +
		`" xmlns:xsi="` + NSXSI +
		`" xmlns:xsd="` + NSXSD +
		`" xmlns:ns1="` + appNS + `">` + "\n<SOAP-ENV:Body>\n"
}

// EnvelopeEnd closes the body and envelope.
const EnvelopeEnd = "\n</SOAP-ENV:Body>\n</SOAP-ENV:Envelope>\n"

// OperationStart opens the RPC wrapper element for an operation.
func OperationStart(op string) string { return "<ns1:" + op + ">" }

// OperationEnd closes the RPC wrapper element.
func OperationEnd(op string) string { return "</ns1:" + op + ">" }

// ResponseName is the conventional wrapper name for an RPC response.
func ResponseName(op string) string { return op + "Response" }

// ScalarTypeName maps a scalar wire type to its xsi:type name.
func ScalarTypeName(t *wire.Type) string { return t.Name }

// ArrayStart opens an array-valued parameter with its SOAP-ENC arrayType
// attribute, e.g. <values xsi:type="SOAP-ENC:Array"
// SOAP-ENC:arrayType="xsd:double[100]">.
func ArrayStart(name string, elem *wire.Type, n int) string {
	return fmt.Sprintf(`<%s xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="%s[%d]">`,
		name, elem.Name, n)
}

// ArrayEnd closes an array-valued parameter.
func ArrayEnd(name string) string { return "</" + name + ">" }

// ScalarStart opens a scalar parameter element carrying its xsi:type.
func ScalarStart(name string, t *wire.Type) string {
	return `<` + name + ` xsi:type="` + t.Name + `">`
}

// StructStart opens a struct-valued parameter element.
func StructStart(name string, t *wire.Type) string {
	return `<` + name + ` xsi:type="` + t.Name + `">`
}

// OpenTag returns <tag>; array items and struct fields use bare tags (the
// enclosing arrayType/xsi:type already fixes their types, and lean item
// framing matches the per-element overhead the paper measures).
func OpenTag(tag string) string { return "<" + tag + ">" }

// CloseTag returns </tag>.
func CloseTag(tag string) string { return "</" + tag + ">" }

// ItemTag is the element name of array items.
const ItemTag = "item"

// Fault renders a SOAP 1.1 fault body.
func Fault(code, message string) string {
	return EnvelopeStart("urn:fault") +
		"<SOAP-ENV:Fault><faultcode>" + code + "</faultcode><faultstring>" +
		message + "</faultstring></SOAP-ENV:Fault>" + EnvelopeEnd
}
