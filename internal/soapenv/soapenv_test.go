package soapenv

import (
	"strings"
	"testing"

	"bsoap/internal/wire"
	"bsoap/internal/xmlparse"
)

func TestEnvelopeRoundTrips(t *testing.T) {
	doc := EnvelopeStart("urn:app") + OperationStart("op") +
		ScalarStart("v", wire.TInt) + "42" + CloseTag("v") +
		OperationEnd("op") + EnvelopeEnd
	p := xmlparse.NewParser([]byte(doc))
	if _, err := p.ExpectStart("Envelope"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExpectStart("Body"); err != nil {
		t.Fatal(err)
	}
	tok, err := p.ExpectStart("op")
	if err != nil || tok.Name != "ns1:op" {
		t.Fatalf("op: %+v, %v", tok, err)
	}
	if _, err := p.ExpectStart("v"); err != nil {
		t.Fatal(err)
	}
	text, err := p.Text()
	if err != nil || text != "42" {
		t.Fatalf("text %q, %v", text, err)
	}
}

func TestEnvelopeDeclaresAllNamespaces(t *testing.T) {
	env := EnvelopeStart("urn:app")
	for _, ns := range []string{NSEnvelope, NSEncoding, NSXSI, NSXSD, "urn:app"} {
		if !strings.Contains(env, ns) {
			t.Errorf("envelope missing namespace %q", ns)
		}
	}
	if !strings.HasPrefix(env, Prologue) {
		t.Error("envelope missing XML declaration")
	}
}

func TestArrayStart(t *testing.T) {
	got := ArrayStart("vals", wire.TDouble, 100)
	want := `<vals xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:double[100]">`
	if got != want {
		t.Fatalf("ArrayStart = %q", got)
	}
	if ArrayEnd("vals") != "</vals>" {
		t.Fatal("ArrayEnd wrong")
	}
}

func TestTagHelpers(t *testing.T) {
	if OpenTag("x") != "<x>" || CloseTag("x") != "</x>" {
		t.Fatal("tag helpers wrong")
	}
	if OperationStart("f") != "<ns1:f>" || OperationEnd("f") != "</ns1:f>" {
		t.Fatal("operation helpers wrong")
	}
	if ResponseName("f") != "fResponse" {
		t.Fatal("ResponseName wrong")
	}
	if ScalarTypeName(wire.TDouble) != "xsd:double" {
		t.Fatal("ScalarTypeName wrong")
	}
}

func TestFaultParses(t *testing.T) {
	doc := Fault("SOAP-ENV:Server", "exploded")
	p := xmlparse.NewParser([]byte(doc))
	sawFault := false
	for {
		tok, err := p.Next()
		if err != nil {
			t.Fatalf("fault does not parse: %v\n%s", err, doc)
		}
		if tok.Kind == xmlparse.EOF {
			break
		}
		if tok.Kind == xmlparse.StartElement && xmlparse.Local(tok.Name) == "Fault" {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("no Fault element")
	}
	if !strings.Contains(doc, "exploded") {
		t.Fatal("fault message missing")
	}
}
